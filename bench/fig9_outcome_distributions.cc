/**
 * Fig. 9 — injection outcome distributions (Masked / SDC / Crash /
 * Timeout) per benchmark under the DA/IA/WA models at VR15 and VR20,
 * plus the per-cell AVM values shown above the paper's bars.
 *
 * This is the headline experiment: the full (7 benchmarks x 3 models x
 * 2 VR levels) microarchitectural injection campaign. The per-cell run
 * count defaults to a laptop-friendly value; REPRO_FULL=1 selects the
 * paper's 1068 runs (3% margin, 95% confidence).
 */

#include <cmath>

#include "bench_common.hh"
#include "core/results.hh"
#include "fleet/coordinator.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using models::ModelKind;

namespace {

/**
 * Percent cell that renders the no-classified-runs NaN as "n/a"
 * instead of a confusing "nan%".
 */
std::string
pctOrNa(double v01)
{
    return std::isnan(v01) ? "n/a" : Table::pct(v01);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Injection outcome distributions", "Fig. 9");

    Toolflow tf;
    std::printf("runs per cell: %d (paper: %d); threads: %u\n\n",
                tf.options().runsPerCell, inject::kStatisticalRuns,
                tf.pool().numThreads());
    bench::WallTimer timer;
    // REPRO_FLEET_WORKERS>0 farms the grid across tea-worker
    // processes; results are byte-identical either way.
    fleet::FleetOptions fopt = fleet::fleetOptionsFromEnv();
    EvaluationGrid grid =
        fopt.workers > 0
            ? fleet::runFleetGrid(tf.options(), fopt)
            : runEvaluationGrid(tf);
    uint64_t totalRuns = 0;
    for (const auto &cell : grid.cells)
        totalRuns += cell.result.runs;
    timer.report("injection runs", totalRuns);

    // The ± column only appears in adaptive mode: classic fixed-size
    // reproductions keep byte-identical output.
    const bool adaptive = tf.options().adaptive();
    const double conf = tf.options().ciConf;
    for (double vr : tf.options().vrLevels) {
        std::printf("---- VR%.0f ----\n", vr * 100);
        std::vector<std::string> headers = {"Benchmark", "Model",
                                            "Masked",    "SDC",
                                            "Crash",     "Timeout",
                                            "AVM"};
        if (adaptive)
            headers.push_back("AVM +/-");
        Table t(headers);
        for (const auto &name : workloads::workloadNames()) {
            for (ModelKind mk :
                 {ModelKind::DA, ModelKind::IA, ModelKind::WA}) {
                const auto *r = grid.find(name, mk, vr);
                if (!r)
                    continue;
                std::vector<std::string> row = {
                    name, models::modelKindName(mk),
                    pctOrNa(r->fraction(inject::Outcome::Masked)),
                    pctOrNa(r->fraction(inject::Outcome::SDC)),
                    pctOrNa(r->fraction(inject::Outcome::Crash)),
                    pctOrNa(r->fraction(inject::Outcome::Timeout)),
                    pctOrNa(r->avm())};
                if (adaptive) {
                    row.push_back(
                        r->classified() == 0
                            ? "n/a"
                            : Table::pct(
                                  r->avmInterval(conf).halfWidth()));
                }
                t.addRow(std::move(row));
            }
        }
        std::printf("%s\n", t.render().c_str());
    }

    if (grid.interrupted) {
        std::printf("(interrupted — the tables above cover the %zu "
                    "completed cell(s); rerun with REPRO_RESUME=1 to "
                    "finish)\n",
                    grid.cells.size());
        return 130;
    }

    // The paper's cg/hotspot/k-means observations.
    auto masked = [&](const char *wl, ModelKind mk, double vr) {
        const auto *r = grid.find(wl, mk, vr);
        return r ? r->fraction(inject::Outcome::Masked) : -1.0;
    };
    std::printf(
        "Key observations to compare with the paper:\n"
        " - DA-model paints catastrophic corruption everywhere (its\n"
        "   masked fractions: hotspot VR15 %.0f%%, k-means VR15 %.0f%%),\n"
        "   while the WA-model shows these programs can tolerate the\n"
        "   reduced voltage (masked: hotspot VR15 %.0f%%, k-means VR15\n"
        "   %.0f%%) — DA hides real power-saving opportunities.\n"
        " - AVM summarises each cell; Section V.C uses it for voltage\n"
        "   guidance (see bench/avm_energy_analysis).\n",
        100 * masked("hotspot", ModelKind::DA, 0.15),
        100 * masked("k-means", ModelKind::DA, 0.15),
        100 * masked("hotspot", ModelKind::WA, 0.15),
        100 * masked("k-means", ModelKind::WA, 0.15));
    return 0;
}
