/**
 * @file
 * Campaign-service throughput ladder (BENCH_daemon.json).
 *
 * Starts an in-process tea-daemon on a Unix-domain socket and drives
 * it with real protocol clients:
 *
 *  1. **Request latency** — STATUS round-trips per second on an idle
 *     daemon (pure framing + dispatch cost).
 *  2. **Campaign throughput** — N distinct small campaigns submitted
 *     at once and watched to completion, at scheduler concurrency 1,
 *     2 and 4, with speedup vs concurrency 1.
 *  3. **Dedup fan-out** — the same plan submitted by many clients:
 *     one execution, every watcher streamed the full cell set.
 *
 * `--json <path>` writes the machine-readable report
 * (scripts/bench_snapshot.sh records it as BENCH_daemon.json).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/results.hh"
#include "core/toolflow.hh"
#include "obs/json.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using namespace tea::service;

namespace {

ToolflowOptions
benchOptions(const std::string &cacheDir, uint64_t seed)
{
    ToolflowOptions opt = optionsFromEnv();
    if (!std::getenv("REPRO_RUNS"))
        opt.runsPerCell = 6;
    opt.threads = 1;
    opt.seed = seed;
    opt.cacheDir = cacheDir;
    return opt;
}

fleet::FleetPlan
benchPlan(const std::string &cacheDir, uint64_t seed)
{
    GridSpec spec;
    spec.workloads = {"sobel"};
    return fleet::FleetPlan{benchOptions(cacheDir, seed), spec};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    std::string jsonPath =
        bench::consumeFlagValue(argc, argv, "--json");
    bench::banner("campaign-service throughput ladder",
                  "daemon scheduling over the fleet substrate");

    std::string cacheDir = std::getenv("REPRO_CACHE")
                               ? std::getenv("REPRO_CACHE")
                               : "/tmp/tea_bench_daemon_cache";
    std::string sock = "/tmp/tea_bench_daemon.sock";
    const int campaigns = 4;

    // Warm the characterization caches once so the ladder times
    // campaign scheduling and execution, not gate-level simulation.
    std::filesystem::create_directories(cacheDir);
    setQuiet(true);
    {
        fleet::FleetPlan warm = benchPlan(cacheDir, 1);
        Toolflow tf(warm.opt);
        GridSpec spec = warm.spec;
        spec.useCache = false;
        runEvaluationGrid(tf, spec);
    }
    setQuiet(false);

    // ---- 1. request latency ----------------------------------------
    double reqPerSec = 0;
    {
        DaemonOptions opt;
        opt.socketPath = sock;
        opt.cacheDir = cacheDir;
        opt.fleet.workers = 0;
        ServiceDaemon daemon(opt);
        if (!daemon.start()) {
            std::printf("daemon_throughput: cannot bind %s\n",
                        sock.c_str());
            return 2;
        }
        auto client = Client::connectUnix(sock, "bench");
        if (!client) {
            std::printf("daemon_throughput: cannot connect\n");
            return 2;
        }
        const int reqs = 2000;
        Client::Status st;
        bench::WallTimer t;
        for (int i = 0; i < reqs; ++i)
            client->status(999999, st); // NOT_FOUND round-trip
        double sec = t.seconds();
        reqPerSec = sec > 0 ? reqs / sec : 0;
        daemon.stop();
        std::printf("request latency: %d STATUS round-trips in "
                    "%.3f s (%.0f req/s)\n\n",
                    reqs, sec, reqPerSec);
    }

    // ---- 2. campaign throughput ladder -----------------------------
    Table table(
        {"concurrency", "seconds", "campaigns/s", "speedup"});
    obs::json::Array rows;
    double oneSec = 0;
    for (int conc : {1, 2, 4}) {
        // Distinct seeds per rung so every campaign re-executes its
        // cells instead of loading a cached grid.
        uint64_t seedBase = 100 * conc;
        DaemonOptions opt;
        opt.socketPath = sock;
        opt.cacheDir = cacheDir;
        opt.concurrency = conc;
        opt.queueCap = campaigns + 1;
        opt.clientInflight = campaigns + 1;
        opt.fleet.workers = 0;
        ServiceDaemon daemon(opt);
        if (!daemon.start()) {
            std::printf("daemon_throughput: cannot bind %s\n",
                        sock.c_str());
            return 2;
        }
        setQuiet(true);
        auto client = Client::connectUnix(sock, "bench");
        bench::WallTimer t;
        std::vector<uint64_t> ids;
        for (int i = 0; i < campaigns; ++i) {
            Client::Submitted sub;
            if (!client->submit(
                    benchPlan(cacheDir, seedBase + i).serialize(),
                    sub)) {
                setQuiet(false);
                std::printf("daemon_throughput: submit failed: %s\n",
                            client->lastError().detail.c_str());
                return 1;
            }
            ids.push_back(sub.id);
        }
        Client::Status fin;
        for (uint64_t id : ids)
            client->watch(id, nullptr, fin);
        double sec = t.seconds();
        daemon.stop();
        setQuiet(false);
        if (conc == 1)
            oneSec = sec;
        double speedup = sec > 0 && oneSec > 0 ? oneSec / sec : 0;
        table.addRow({std::to_string(conc), Table::num(sec, 2),
                      Table::num(sec > 0 ? campaigns / sec : 0, 2),
                      Table::num(speedup, 2)});
        rows.push_back(obs::json::Object{
            {"concurrency", static_cast<int64_t>(conc)},
            {"seconds", sec},
            {"campaignsPerSec", sec > 0 ? campaigns / sec : 0.0},
            {"speedupVsConc1", speedup},
        });
    }
    std::printf("%s\n", table.render("campaign throughput").c_str());
    std::printf("%d campaigns (sobel grid, distinct seeds) per rung; "
                "speedup vs concurrency 1\n\n",
                campaigns);

    // ---- 3. dedup fan-out ------------------------------------------
    double dedupSec = 0;
    bool dedupOk = true;
    {
        DaemonOptions opt;
        opt.socketPath = sock;
        opt.cacheDir = cacheDir;
        opt.fleet.workers = 0;
        ServiceDaemon daemon(opt);
        if (!daemon.start())
            return 2;
        setQuiet(true);
        std::string plan = benchPlan(cacheDir, 999).serialize();
        const int watchers = 4;
        std::vector<Client> clients;
        std::vector<uint64_t> ids;
        bench::WallTimer t;
        for (int i = 0; i < watchers; ++i) {
            auto c = Client::connectUnix(
                sock, "w" + std::to_string(i));
            if (!c)
                return 2;
            Client::Submitted sub;
            if (!c->submit(plan, sub))
                return 1;
            dedupOk = dedupOk && (i == 0 ? !sub.deduped : sub.deduped);
            ids.push_back(sub.id);
            clients.push_back(std::move(*c));
        }
        for (int i = 0; i < watchers; ++i) {
            size_t cells = 0;
            Client::Status fin;
            clients[i].watch(
                ids[i],
                [&cells](const CampaignCell &) { ++cells; },
                fin);
            dedupOk = dedupOk && fin.state == "done" &&
                      cells == fin.cellsTotal;
        }
        dedupSec = t.seconds();
        daemon.stop();
        setQuiet(false);
        std::printf("dedup fan-out: %d watchers, one execution, "
                    "%.2f s (%s)\n",
                    watchers, dedupSec, dedupOk ? "ok" : "FAIL");
    }

    if (!jsonPath.empty()) {
        obs::json::Object report{
            {"schema", "tea-bench-daemon-v1"},
            {"git", obs::gitDescribe()},
            {"statusReqPerSec", reqPerSec},
            {"campaignsPerRung", static_cast<int64_t>(campaigns)},
            {"ladder", std::move(rows)},
            {"dedupFanoutSec", dedupSec},
            {"dedupFanoutOk", dedupOk},
        };
        std::string text =
            obs::json::Value(std::move(report)).dump(2);
        if (!atomicWriteFile(jsonPath, text + "\n")) {
            std::printf("cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    std::filesystem::remove(sock);
    return dedupOk ? 0 : 1;
}
