/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 */

#ifndef TEA_BENCH_BENCH_COMMON_HH
#define TEA_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/obs.hh"
#include "util/threadpool.hh"

namespace tea::bench {

inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("reproduces: %s\n", paperRef.c_str());
    std::printf("(scale via REPRO_RUNS=<n> / REPRO_FULL=1; seed via REPRO_SEED;\n");
    std::printf(" worker threads via REPRO_THREADS, default hardware: %u;\n",
                ThreadPool::defaultThreads());
    std::printf(" observability via REPRO_METRICS/REPRO_TRACE or --metrics/--trace)\n");
    std::printf("==============================================================\n\n");
}

/**
 * Arm the observability exporters: consume `--metrics <path>` and
 * `--trace <path>` from argv (removing them so the binary's own flag
 * parsing never sees them), then fall back to REPRO_METRICS /
 * REPRO_TRACE. Call first thing in every bench/example main.
 */
inline void
initObs(int &argc, char **argv)
{
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        bool metrics = !std::strcmp(argv[i], "--metrics");
        bool trace = !std::strcmp(argv[i], "--trace");
        if ((metrics || trace) && i + 1 < argc) {
            if (metrics)
                obs::setMetricsPath(argv[i + 1]);
            else
                obs::setTracePath(argv[i + 1]);
            ++i;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    argv[argc] = nullptr;
    obs::configureFromEnv();
}

/**
 * Consume `flag <value>` from argv (after initObs), returning the
 * value or "" when the flag is absent.
 */
inline std::string
consumeFlagValue(int &argc, char **argv, const char *flag)
{
    std::string value;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], flag) && i + 1 < argc) {
            value = argv[i + 1];
            ++i;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    argv[argc] = nullptr;
    return value;
}

/** Wall-clock stopwatch for the campaign throughput printouts. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const
    {
        auto dt = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(dt).count();
    }

    /** "ran N <what> in S s (R what/s)" on one line. */
    void report(const char *what, uint64_t n) const
    {
        double s = seconds();
        std::printf("wall-clock: %llu %s in %.2f s (%.0f %s/s)\n",
                    static_cast<unsigned long long>(n), what, s,
                    s > 0 ? static_cast<double>(n) / s : 0.0, what);
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace tea::bench

#endif // TEA_BENCH_BENCH_COMMON_HH
