/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 */

#ifndef TEA_BENCH_BENCH_COMMON_HH
#define TEA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

namespace tea::bench {

inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("reproduces: %s\n", paperRef.c_str());
    std::printf("(scale via REPRO_RUNS=<n> / REPRO_FULL=1; seed via REPRO_SEED)\n");
    std::printf("==============================================================\n\n");
}

} // namespace tea::bench

#endif // TEA_BENCH_BENCH_COMMON_HH
