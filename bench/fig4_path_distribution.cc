/**
 * Fig. 4 — distribution of the 1000 longest (lowest-slack) timing paths
 * across the pipeline units of the post-P&R core: only FPU arithmetic
 * paths are timing-critical; integer-side logic has ample slack.
 */

#include <algorithm>
#include <map>

#include "bench_common.hh"
#include "fpu/fpu_core.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::fpu;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Longest-path distribution across pipeline units",
                  "Fig. 4 (plus the Section IV.B clock derivation)");

    FpuCore core;
    std::printf("clock period (Eq. 1): %.0f ps  (paper: 4.5 ns @ 45 nm)\n",
                core.clockPs());
    std::printf("total FPU gates: %zu\n\n", core.totalCells());

    auto report = core.pathReport();
    size_t top = std::min<size_t>(1000, report.size());

    // Group the 1000 longest paths by owning unit.
    std::map<std::string, size_t> byUnit;
    size_t fpuCount = 0;
    for (size_t i = 0; i < top; ++i) {
        // Strip the stage suffix for unit-level grouping.
        std::string unit = report[i].unit;
        auto dot = unit.rfind(".s");
        if (dot != std::string::npos)
            unit = unit.substr(0, dot);
        ++byUnit[unit];
        fpuCount += report[i].isFpu;
    }

    Table t({"Unit", "#paths in top-1000", "share"});
    for (const auto &[unit, n] : byUnit)
        t.addRow({unit, std::to_string(n),
                  Table::pct(static_cast<double>(n) / top)});
    std::printf("%s\n", t.render().c_str());
    std::printf("FPU paths among the 1000 longest: %zu / %zu\n\n",
                fpuCount, top);

    // Slack summary per unit family (including the integer side).
    std::map<std::string, double> worstByUnit;
    for (const auto &p : report) {
        std::string unit = p.unit;
        auto dot = unit.rfind(".s");
        if (dot != std::string::npos)
            unit = unit.substr(0, dot);
        worstByUnit[unit] =
            std::max(worstByUnit[unit], p.pathDelayPs);
    }
    Table s({"Unit", "worst path (ps)", "slack at CLK (ps)",
             "slack (%)"});
    std::vector<std::pair<std::string, double>> rows(worstByUnit.begin(),
                                                     worstByUnit.end());
    std::sort(rows.begin(), rows.end(), [](auto &a, auto &b) {
        return a.second > b.second;
    });
    for (const auto &[unit, worst] : rows) {
        double slack = core.clockPs() - worst;
        s.addRow({unit, Table::num(worst, 0), Table::num(slack, 0),
                  Table::pct(slack / core.clockPs())});
    }
    std::printf("%s\n", s.render().c_str());
    std::printf("Expected shape: fpu-mul.d sets the clock; fpu-div.d and\n"
                "fpu-addsub.d sit just below; conversions, single-precision\n"
                "units and all integer-side logic have large slack (so only\n"
                "FP arithmetic can fail at VR15/VR20, as in the paper).\n");
    return 0;
}
