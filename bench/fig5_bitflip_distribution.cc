/**
 * Fig. 5 — distribution of the number of bit flips at faulty
 * instruction outputs under 15% and 20% supply-voltage reduction:
 * timing errors are mostly multi-bit (64.5% on average in the paper),
 * unlike particle-strike soft errors.
 */

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Bit flips per faulty instruction output",
                  "Fig. 5");

    Toolflow tf;
    Table t({"VR level", "faulty ops", "1 bit", "2 bits", "3-4 bits",
             "5-8 bits", ">8 bits", "multi-bit share"});
    double multiShare[2] = {0, 0};
    int vi = 0;
    for (double vr : tf.options().vrLevels) {
        // Merge the DA calibration stats (benchmark-extracted ops) with
        // the IA random-op stats for a broad sample of faulty ops.
        tf.daErrorRatio(vr); // ensures the benchmark-sample stats exist
        const auto &stats = tf.iaStats(vr);
        auto hist = stats.flipCountHistogram(16);
        uint64_t faulty = 0;
        for (auto h : hist)
            faulty += h;
        if (faulty == 0) {
            t.addRow({Table::pct(vr, 0), "0", "-", "-", "-", "-", "-",
                      "-"});
            ++vi;
            continue;
        }
        uint64_t b1 = hist[1], b2 = hist[2];
        uint64_t b34 = hist[3] + hist[4];
        uint64_t b58 = hist[5] + hist[6] + hist[7] + hist[8];
        uint64_t rest = faulty - b1 - b2 - b34 - b58;
        double multi =
            static_cast<double>(faulty - b1) / static_cast<double>(faulty);
        multiShare[vi] = multi;
        t.addRow({Table::pct(vr, 0), std::to_string(faulty),
                  Table::pct(static_cast<double>(b1) / faulty),
                  Table::pct(static_cast<double>(b2) / faulty),
                  Table::pct(static_cast<double>(b34) / faulty),
                  Table::pct(static_cast<double>(b58) / faulty),
                  Table::pct(static_cast<double>(rest) / faulty),
                  Table::pct(multi)});
        ++vi;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("average multi-bit share: %.1f%%  (paper: 64.5%% across\n"
                "the two VR levels; the headline is that timing errors are\n"
                "mostly multi-bit, which the DA single-bit model cannot\n"
                "represent)\n",
                (multiShare[0] + multiShare[1]) / 2 * 100);
    return 0;
}
