/**
 * Micro-performance benchmarks (google-benchmark) of the framework's
 * hot paths: soft-float arithmetic, levelized netlist evaluation, the
 * two DTA engines, gate-level FPU execution, and the two simulators.
 *
 * `microbench --thread-sweep` instead runs the parallel campaign
 * engine at each thread count in REPRO_THREADS (comma-separated,
 * default "1,2,4") and prints a throughput table — ops/sec for the
 * random DTA campaign, runs/sec for the injection campaign, and the
 * speedup over the first (baseline) entry. Campaign results are
 * bit-identical across the sweep; the sweep asserts that too.
 *
 * `microbench --lane-sweep` sweeps the batched DTA lane width (1, 8,
 * 16, 32, 64 — extended to 128/256/512 when REPRO_DTA_BACKEND selects
 * a SIMD-wide backend) at each REPRO_THREADS count, printing
 * samples/s and the speedup over the scalar (lanes=1) row at the same
 * thread count, and asserting that the campaign statistics are
 * bit-identical across the whole sweep.
 *
 * `microbench --backend-sweep` races the three batched-DTA backends
 * (levelized / lane / compiled, the latter at 64, 256 and 512 lanes)
 * through the same random campaign at each REPRO_THREADS count,
 * asserting byte-identical per-instruction CSVs across every cell and
 * >= 5x single-thread compiled throughput over the 64-lane
 * interpreter.
 *
 * `microbench --adaptive-sweep` compares fixed-N against adaptive
 * (confidence-driven) campaign sizing at the same target half-width:
 * a VR15 DTA cell and a sobel injection cell, printing trial counts,
 * wall time, and the adaptive intervals, and asserting >= 2x savings
 * with intervals that contain the fixed-N point estimates.
 *
 * `--json <path>` (with any of the sweeps) additionally writes the
 * machine-readable BENCH_*.json results: per-backend throughput and
 * speedup, and the adaptive sweep's trial savings.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/builders.hh"
#include "circuit/celllib.hh"
#include "circuit/compiled_dta.hh"
#include "circuit/dta.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "fpu/fpu_core.hh"
#include "inject/campaign.hh"
#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "softfloat/softfloat.hh"
#include "stats/intervals.hh"
#include "stats/planner.hh"
#include "timing/ber_csv.hh"
#include "timing/dta_campaign.hh"
#include "bench_common.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/table.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace tea;

static void
BM_SoftFloatMul64(benchmark::State &state)
{
    Rng rng(1);
    uint64_t a = sf::fromDouble(1.23456), b = sf::fromDouble(7.89);
    for (auto _ : state) {
        a ^= rng.next() & 0xffff;
        benchmark::DoNotOptimize(sf::mul64(a, b));
    }
}
BENCHMARK(BM_SoftFloatMul64);

static void
BM_SoftFloatDiv64(benchmark::State &state)
{
    Rng rng(2);
    uint64_t a = sf::fromDouble(1.23456), b = sf::fromDouble(7.89);
    for (auto _ : state) {
        a ^= rng.next() & 0xffff;
        benchmark::DoNotOptimize(sf::div64(a, b));
    }
}
BENCHMARK(BM_SoftFloatDiv64);

namespace {

struct AdderFixture
{
    circuit::Netlist nl{"adder32"};
    circuit::Bus ia, ib;

    AdderFixture()
    {
        circuit::Builder b(nl);
        ia = nl.addInputBus("a", 32);
        ib = nl.addInputBus("b", 32);
        auto add = b.rippleAdd(ia, ib);
        nl.addOutputBus("s", add.sum);
    }

    std::vector<bool>
    inputs(uint64_t a, uint64_t bv) const
    {
        std::vector<bool> in(nl.numInputs());
        for (int i = 0; i < 32; ++i) {
            in[ia[i]] = (a >> i) & 1;
            in[ib[i]] = (bv >> i) & 1;
        }
        return in;
    }
};

} // namespace

static void
BM_NetlistEvaluate(benchmark::State &state)
{
    AdderFixture f;
    Rng rng(3);
    for (auto _ : state) {
        auto in = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(circuit::evaluate(f.nl, in));
    }
}
BENCHMARK(BM_NetlistEvaluate);

static void
BM_DtaLevelized(benchmark::State &state)
{
    AdderFixture f;
    circuit::DelayAnnotation annot(
        f.nl, circuit::CellLibrary::nangate45Like(), 1);
    circuit::LevelizedDta dta(f.nl, annot);
    Rng rng(4);
    auto prev = f.inputs(rng.next(), rng.next());
    for (auto _ : state) {
        auto cur = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(dta.run(prev, cur, 1000.0));
        prev = cur;
    }
}
BENCHMARK(BM_DtaLevelized);

static void
BM_DtaEventDriven(benchmark::State &state)
{
    AdderFixture f;
    circuit::DelayAnnotation annot(
        f.nl, circuit::CellLibrary::nangate45Like(), 1);
    circuit::EventDrivenDta dta(f.nl, annot);
    Rng rng(5);
    auto prev = f.inputs(rng.next(), rng.next());
    for (auto _ : state) {
        auto cur = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(dta.run(prev, cur, 1000.0));
        prev = cur;
    }
}
BENCHMARK(BM_DtaEventDriven);

static void
BM_FpuGateLevelMul(benchmark::State &state)
{
    static fpu::FpuCore core;
    static size_t point = core.addOperatingPoint(1.2);
    Rng rng(6);
    for (auto _ : state) {
        uint64_t a, b;
        timing::randomOperands(fpu::FpuOp::MulD, rng, a, b);
        benchmark::DoNotOptimize(
            core.execute(point, fpu::FpuOp::MulD, a, b));
    }
}
BENCHMARK(BM_FpuGateLevelMul);

static void
BM_FuncSimSobel(benchmark::State &state)
{
    auto w = workloads::buildWorkload("sobel", 1);
    uint64_t instr = 0;
    for (auto _ : state) {
        sim::FuncSim sim(w.program);
        auto r = sim.run();
        instr = r.instructions;
        benchmark::DoNotOptimize(r);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instr) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuncSimSobel);

static void
BM_OooSimSobel(benchmark::State &state)
{
    auto w = workloads::buildWorkload("sobel", 1);
    uint64_t instr = 0;
    for (auto _ : state) {
        sim::OooSim sim(w.program);
        auto r = sim.run(~0ULL);
        instr = r.committed;
        benchmark::DoNotOptimize(r);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instr) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooSimSobel);

namespace {

/**
 * Sections of the machine-readable report `--json <path>` writes
 * (BENCH_*.json). Sweeps append what they measured; main() dumps the
 * accumulated object once on exit, so one invocation can combine e.g.
 * --backend-sweep and --adaptive-sweep into a single file.
 */
obs::json::Object gJsonReport;

void
addJsonSection(const char *name, obs::json::Value v)
{
    gJsonReport.emplace_back(name, std::move(v));
}

std::vector<unsigned>
sweepThreadCounts()
{
    std::vector<unsigned> counts;
    const char *env = std::getenv("REPRO_THREADS");
    std::string spec = env ? env : "1,2,4";
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        long n = std::strtol(spec.substr(pos, comma - pos).c_str(),
                             nullptr, 10);
        if (n > 0)
            counts.push_back(static_cast<unsigned>(n));
        pos = comma + 1;
    }
    if (counts.empty())
        counts = {1, 2, 4};
    return counts;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

timing::CampaignStats
aggressiveWaStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(fpu::FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100;
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    return stats;
}

/**
 * Thread sweep of the two campaign layers. Wall-clock includes only
 * campaign execution; the gate-level FPU, its per-worker operating
 * points, and the golden injection reference are built up front.
 */
int
runThreadSweep()
{
    auto counts = sweepThreadCounts();
    unsigned maxThreads = 1;
    for (unsigned c : counts)
        maxThreads = std::max(maxThreads, c);

    const uint64_t dtaOpsPerType = [] {
        const char *runs = std::getenv("REPRO_RUNS");
        long n = runs ? std::strtol(runs, nullptr, 10) : 0;
        return n > 0 ? static_cast<uint64_t>(n) : 400;
    }();
    const int injectionRuns = 16;

    std::printf("parallel campaign engine thread sweep\n");
    std::printf("(REPRO_THREADS=<a,b,c,...> selects the sweep; "
                "hardware threads: %u)\n\n",
                std::thread::hardware_concurrency());

    std::printf("building gate-level FPU + golden reference...\n");
    fpu::FpuCore core;
    size_t point = core.addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    core.workerPoints(point, maxThreads); // pre-build replica points
    inject::InjectionCampaign campaign(
        workloads::buildWorkload("sobel", 1));
    models::WaModel model("hot", aggressiveWaStats());

    const uint64_t dtaOps = dtaOpsPerType * fpu::kNumFpuOps;
    Table table({"threads", "DTA ops/s", "DTA s", "DTA speedup",
                 "inject runs/s", "inject s", "inject speedup"});
    double dtaBase = 0, injBase = 0;
    uint64_t refFaulty = 0, refSdc = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        ThreadPool pool(counts[i]);

        auto t0 = std::chrono::steady_clock::now();
        Rng dtaRng(1);
        auto stats = timing::runRandomCampaign(core, point,
                                               dtaOpsPerType, dtaRng,
                                               &pool);
        double dtaSec = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        Rng injRng(2);
        auto result = campaign.run(model, injectionRuns, injRng, &pool);
        double injSec = secondsSince(t0);

        // The determinism guarantee, checked while we are at it.
        if (i == 0) {
            refFaulty = stats.totalFaulty();
            refSdc = result.sdc;
        } else if (stats.totalFaulty() != refFaulty ||
                   result.sdc != refSdc) {
            std::printf("FAIL: results differ across thread counts\n");
            return 1;
        }

        if (i == 0) {
            dtaBase = dtaSec;
            injBase = injSec;
        }
        table.addRow({std::to_string(counts[i]),
                      Table::num(dtaSec > 0 ? dtaOps / dtaSec : 0, 0),
                      Table::num(dtaSec, 2),
                      Table::num(dtaSec > 0 ? dtaBase / dtaSec : 0, 2),
                      Table::num(injSec > 0 ? injectionRuns / injSec : 0,
                                 2),
                      Table::num(injSec, 2),
                      Table::num(injSec > 0 ? injBase / injSec : 0, 2)});
    }
    std::printf("\n%s\n", table.render("campaign throughput").c_str());
    std::printf("DTA cell: %llu random ops (%llu/type); injection "
                "cell: %d runs of sobel under an aggressive WA model\n",
                static_cast<unsigned long long>(dtaOps),
                static_cast<unsigned long long>(dtaOpsPerType),
                injectionRuns);
    return 0;
}

/**
 * Lane sweep of the bit-parallel DTA engine: the random campaign at
 * every (thread count, lane width) pair, with the lanes=1 row at each
 * thread count as the speedup baseline. The rendered fig7-style CSV
 * must be byte-identical across the whole sweep.
 */
int
runLaneSweep()
{
    auto counts = sweepThreadCounts();
    unsigned maxThreads = 1;
    for (unsigned c : counts)
        maxThreads = std::max(maxThreads, c);

    // A full shard per op type so even the widest batches form.
    const uint64_t dtaOpsPerType = [] {
        const char *runs = std::getenv("REPRO_RUNS");
        long n = runs ? std::strtol(runs, nullptr, 10) : 0;
        return n > 0 ? static_cast<uint64_t>(n)
                     : timing::kDtaShardOps;
    }();
    std::vector<unsigned> laneWidths = {1, 8, 16, 32, 64};
    if (circuit::dtaBackend() != circuit::DtaBackend::Lane)
        laneWidths.insert(laneWidths.end(), {128, 256, 512});

    std::printf("bit-parallel DTA lane sweep\n");
    std::printf("(REPRO_DTA_LANES routes campaigns through the lane "
                "engine; this sweep\n overrides it per cell. "
                "REPRO_THREADS=<a,b,c,...> selects thread counts.)\n\n");

    std::printf("building gate-level FPU...\n");
    fpu::FpuCore core;
    size_t point = core.addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    core.workerPoints(point, maxThreads); // pre-build replica points

    const uint64_t dtaOps = dtaOpsPerType * fpu::kNumFpuOps;
    Table table({"threads", "lanes", "samples/s", "s", "speedup"});
    std::string refCsv;
    double singleThreadSpeedup = 0;
    for (unsigned threads : counts) {
        double base = 0;
        for (unsigned lanes : laneWidths) {
            timing::setDtaLanes(lanes);
            ThreadPool pool(threads);
            auto t0 = std::chrono::steady_clock::now();
            Rng rng(1);
            auto stats = timing::runRandomCampaign(
                core, point, dtaOpsPerType, rng, &pool);
            double sec = secondsSince(t0);

            // The exactness guarantee: every cell of the sweep must
            // produce byte-identical per-instruction statistics.
            std::string csv = timing::berCsv(stats);
            if (refCsv.empty()) {
                refCsv = csv;
            } else if (csv != refCsv) {
                timing::setDtaLanes(0);
                std::printf("FAIL: stats differ at threads=%u "
                            "lanes=%u\n",
                            threads, lanes);
                return 1;
            }

            if (lanes == 1)
                base = sec;
            double speedup = sec > 0 ? base / sec : 0;
            if (threads == 1)
                singleThreadSpeedup =
                    std::max(singleThreadSpeedup, speedup);
            table.addRow({std::to_string(threads),
                          std::to_string(lanes),
                          Table::num(sec > 0 ? dtaOps / sec : 0, 0),
                          Table::num(sec, 2), Table::num(speedup, 2)});
        }
    }
    timing::setDtaLanes(0); // back to the REPRO_DTA_LANES default
    std::printf("\n%s\n", table.render("lane-batch throughput").c_str());
    std::printf("cell: %llu random ops (%llu/type) at VR20; speedup "
                "is vs lanes=1\nat the same thread count; stats "
                "verified bit-identical across the sweep\n",
                static_cast<unsigned long long>(dtaOps),
                static_cast<unsigned long long>(dtaOpsPerType));
    if (counts.front() == 1 && singleThreadSpeedup < 5.0) {
        std::printf("FAIL: single-thread lane speedup %.2fx below the "
                    "5x target\n",
                    singleThreadSpeedup);
        return 1;
    }
    return 0;
}

struct BackendCell
{
    circuit::DtaBackend backend;
    unsigned lanes;
};

constexpr BackendCell kBackendCells[] = {
    {circuit::DtaBackend::Levelized, 64},
    {circuit::DtaBackend::Lane, 64},
    {circuit::DtaBackend::Compiled, 64},
    {circuit::DtaBackend::Compiled, 256},
    {circuit::DtaBackend::Compiled, 512},
};

/**
 * Sustained single-thread DTA samples/s of one backend cell on the
 * mul.d unit (the paper's hottest pipeline): repeated
 * FpuUnit::executeBatch calls over pre-packed operand planes, with
 * one warmup batch outside the timed region so program compilation
 * and scratch sizing amortize the way they do in a real campaign.
 */
double
measureUnitThroughput(fpu::FpuCore &core, size_t point,
                      const BackendCell &cell)
{
    circuit::setDtaBackend(cell.backend);
    timing::setDtaLanes(cell.lanes);
    fpu::FpuUnit &u = core.unit(fpu::FpuUnitKind::MulD);
    const unsigned W = circuit::CompiledDta::wordsFor(cell.lanes);

    // A pool of pre-packed plane blocks, cycled so consecutive
    // batches see fresh transitions rather than one repeated input.
    Rng rng(11);
    constexpr unsigned kBlocks = 8;
    std::vector<std::vector<uint64_t>> blocks(kBlocks);
    for (auto &planes : blocks) {
        planes.assign(u.stage(0).numInputs() * size_t{W}, 0);
        for (unsigned l = 0; l < cell.lanes; ++l) {
            uint64_t a, b;
            timing::randomOperands(fpu::FpuOp::MulD, rng, a, b);
            auto in = u.packInputs(fpu::FpuOp::MulD, a, b);
            for (size_t i = 0; i < in.size(); ++i)
                if (in[i])
                    planes[i * W + l / 64] |= 1ULL << (l % 64);
        }
    }

    std::vector<fpu::FpuUnit::Exec> execs(cell.lanes);
    double cap = core.captureTimePs();
    u.reset(point);
    u.executeBatch(point, blocks[0], cell.lanes, cap, execs.data());

    auto t0 = std::chrono::steady_clock::now();
    uint64_t done = 0, batch = 0;
    double sec = 0;
    while (sec < 0.3 || batch < 4) {
        u.executeBatch(point, blocks[batch % kBlocks], cell.lanes,
                       cap, execs.data());
        done += cell.lanes;
        ++batch;
        sec = secondsSince(t0);
    }
    return done / sec;
}

/**
 * Backend sweep, two phases. Phase 1 measures sustained single-thread
 * DTA throughput per backend cell — levelized (the scalar oracle),
 * the 64-lane SWAR interpreter, and the compiled engine at 64/256/512
 * lanes — with the interpreter as the speedup baseline; the best
 * compiled cell must beat it by >= 5x. Phase 2 runs the random
 * campaign through every (cell, REPRO_THREADS count) pair and asserts
 * every one renders a byte-identical fig7-style CSV.
 */
int
runBackendSweep()
{
    auto counts = sweepThreadCounts();
    unsigned maxThreads = 1;
    for (unsigned c : counts)
        maxThreads = std::max(maxThreads, c);

    std::printf("batched-DTA backend sweep (SIMD: %s)\n",
                simd::isaName(simd::activeIsa()));
    std::printf("(REPRO_DTA_BACKEND routes campaigns; this sweep "
                "overrides it per cell.\n REPRO_THREADS=<a,b,c,...> "
                "selects the identity check's thread counts.)\n\n");

    std::printf("building gate-level FPU...\n");
    fpu::FpuCore core;
    size_t point = core.addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    core.workerPoints(point, maxThreads); // pre-build replica points

    // ---- phase 1: sustained DTA throughput (single thread) ---------
    Table table({"backend", "lanes", "samples/s", "speedup"});
    obs::json::Array rows;
    double rates[std::size(kBackendCells)];
    double laneBase = 0, bestCompiled = 0;
    for (size_t i = 0; i < std::size(kBackendCells); ++i) {
        rates[i] = measureUnitThroughput(core, point, kBackendCells[i]);
        if (kBackendCells[i].backend == circuit::DtaBackend::Lane)
            laneBase = rates[i];
    }
    for (size_t i = 0; i < std::size(kBackendCells); ++i) {
        const BackendCell &cell = kBackendCells[i];
        double speedup = laneBase > 0 ? rates[i] / laneBase : 0;
        if (cell.backend == circuit::DtaBackend::Compiled)
            bestCompiled = std::max(bestCompiled, speedup);
        table.addRow({circuit::dtaBackendName(cell.backend),
                      std::to_string(cell.lanes),
                      Table::num(rates[i], 0), Table::num(speedup, 2)});
        rows.push_back(obs::json::Object{
            {"backend", circuit::dtaBackendName(cell.backend)},
            {"lanes", static_cast<int64_t>(cell.lanes)},
            {"samplesPerSec", rates[i]},
            {"speedupVsLane64", speedup},
        });
    }
    std::printf("\n%s\n",
                table.render("DTA throughput (mul.d, 1 thread)")
                    .c_str());
    std::printf("speedup is vs the 64-lane interpreter at the same "
                "thread count\n\n");

    // ---- phase 2: campaign identity across cells and threads -------
    // One full shard per op type so even 512-lane batches form.
    const uint64_t opsPerType = timing::kDtaShardOps;
    std::string refCsv;
    unsigned checked = 0;
    for (unsigned threads : counts) {
        for (const BackendCell &cell : kBackendCells) {
            circuit::setDtaBackend(cell.backend);
            timing::setDtaLanes(cell.lanes);
            ThreadPool pool(threads);
            Rng rng(1);
            auto stats = timing::runRandomCampaign(core, point,
                                                   opsPerType, rng,
                                                   &pool);
            std::string csv = timing::berCsv(stats);
            if (refCsv.empty()) {
                refCsv = csv;
            } else if (csv != refCsv) {
                circuit::resetDtaBackend();
                timing::setDtaLanes(0);
                std::printf("FAIL: stats differ at threads=%u "
                            "backend=%s lanes=%u\n",
                            threads,
                            circuit::dtaBackendName(cell.backend),
                            cell.lanes);
                return 1;
            }
            ++checked;
        }
    }
    circuit::resetDtaBackend(); // back to the REPRO_DTA_BACKEND default
    timing::setDtaLanes(0);     // back to the REPRO_DTA_LANES default
    std::printf("campaign identity: %u (backend, lanes, threads) "
                "cells x %llu ops/type,\nall CSVs byte-identical\n",
                checked,
                static_cast<unsigned long long>(opsPerType));

    addJsonSection(
        "backendSweep",
        obs::json::Object{
            {"simd", simd::isaName(simd::activeIsa())},
            {"unit", "mul.d"},
            {"bestCompiledSpeedupVsLane64", bestCompiled},
            {"identityCellsChecked", static_cast<int64_t>(checked)},
            {"csvIdentical", true},
            {"rows", std::move(rows)},
        });
    if (bestCompiled < 5.0) {
        std::printf("FAIL: single-thread compiled speedup %.2fx below "
                    "the 5x target\n",
                    bestCompiled);
        return 1;
    }
    return 0;
}

/**
 * Adaptive-vs-fixed sweep: at an equal target half-width, how many
 * trials does the confidence-driven planner spend compared with the
 * classic worst-case-sized campaign — and do the adaptive intervals
 * contain the fixed-N point estimates?
 *
 * Cell 1 (DTA): random characterization at VR15, per-op-type strata,
 * target Wilson half-width REPRO_CI_TARGET (default 0.01, the
 * acceptance bar) at 95% — fixed-N is the worst-case n = (z/2h)^2 per
 * type. Cell 2 (injection): the sobel campaign under an aggressive WA
 * model at the paper's 3%/95% sizing (fixed-N 1068 runs).
 *
 * Exit status: 0 when at least one cell shows >= 2x fewer runs AND
 * every early-stopped stratum's interval contains the fixed-N point
 * estimate; 1 otherwise.
 */
int
runAdaptiveSweep()
{
    double hwDta = 0.01, conf = 0.95;
    if (const char *e = std::getenv("REPRO_CI_TARGET")) {
        double v = std::strtod(e, nullptr);
        if (v > 0.0 && v < 0.5)
            hwDta = v;
    }
    if (const char *e = std::getenv("REPRO_CI_CONF")) {
        double v = std::strtod(e, nullptr);
        if (v > 0.5 && v < 1.0)
            conf = v;
    }
    const uint64_t fixedPerOp = stats::worstCaseTrials(hwDta, conf);
    const unsigned threads = ThreadPool::defaultThreads();

    std::printf("adaptive vs fixed-N campaign sizing "
                "(half-width %.4g at %.0f%%, %u threads)\n\n",
                hwDta, conf * 100, threads);

    // ---- cell 1: DTA characterization at VR15 ----------------------
    std::printf("building gate-level FPU (VR15 point)...\n");
    fpu::FpuCore core;
    size_t point = core.addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR15));
    ThreadPool pool(threads);
    core.workerPoints(point, threads);

    auto t0 = std::chrono::steady_clock::now();
    Rng fixedRng(1);
    auto fixed = timing::runRandomCampaign(core, point, fixedPerOp,
                                           fixedRng, &pool);
    double fixedSec = secondsSince(t0);

    stats::PlannerConfig cfg;
    cfg.ciTarget = hwDta;
    cfg.ciConf = conf;
    cfg.maxPerStratum = fixedPerOp;
    t0 = std::chrono::steady_clock::now();
    Rng adptRng(1);
    auto adpt = timing::runAdaptiveRandomCampaign(core, point, cfg,
                                                  adptRng, &pool);
    double adptSec = secondsSince(t0);

    Table dta({"op", "fixed n", "adaptive n", "fixed ER",
               "adaptive ER +/-", "contained"});
    bool dtaContained = true;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        auto op = static_cast<fpu::FpuOp>(o);
        const auto &fs = fixed.of(op);
        const auto &as = adpt.of(op);
        auto ci = as.errorInterval(conf);
        bool contained = ci.contains(fs.errorRatio());
        dtaContained = dtaContained && contained;
        char pm[48];
        std::snprintf(pm, sizeof(pm), "%.4f +/- %.4f", as.errorRatio(),
                      ci.halfWidth());
        dta.addRow({fpu::fpuOpName(op), std::to_string(fs.total),
                    std::to_string(as.total),
                    Table::num(fs.errorRatio(), 4), pm,
                    contained ? "yes" : "NO"});
    }
    std::printf("\n%s\n", dta.render("DTA @ VR15").c_str());
    double dtaRatio =
        adpt.totalOps()
            ? static_cast<double>(fixed.totalOps()) /
                  static_cast<double>(adpt.totalOps())
            : 0.0;
    std::printf("DTA trials: fixed %llu (%.1fs)  adaptive %llu "
                "(%.1fs)  ratio %.2fx\n\n",
                static_cast<unsigned long long>(fixed.totalOps()),
                fixedSec,
                static_cast<unsigned long long>(adpt.totalOps()),
                adptSec, dtaRatio);
    bool dtaPass = dtaRatio >= 2.0 && dtaContained;

    // ---- cell 2: injection campaign (sobel, paper 3%/95%) ----------
    const double hwInj = 0.03;
    const int injFixed =
        static_cast<int>(stats::worstCaseTrials(hwInj, conf));
    std::printf("building sobel golden reference (%d fixed runs)...\n",
                injFixed);
    inject::InjectionCampaign campaign(
        workloads::buildWorkload("sobel", 1));
    models::WaModel model("hot", aggressiveWaStats());

    inject::InjectionCampaign::RunOptions fo;
    fo.pool = &pool;
    t0 = std::chrono::steady_clock::now();
    Rng injFixedRng(2);
    auto injF = campaign.run(model, injFixed, injFixedRng, fo);
    double injFixedSec = secondsSince(t0);

    inject::InjectionCampaign::RunOptions ao = fo;
    ao.ciTarget = hwInj;
    ao.ciConf = conf;
    t0 = std::chrono::steady_clock::now();
    Rng injAdptRng(2);
    auto injA = campaign.run(model, injFixed, injAdptRng, ao);
    double injAdptSec = secondsSince(t0);

    auto injCi = injA.avmInterval(conf);
    bool injContained = injCi.contains(injF.avm());
    double injRatio = injA.runs ? static_cast<double>(injF.runs) /
                                      static_cast<double>(injA.runs)
                                : 0.0;
    Table inj({"campaign", "runs", "s", "AVM", "+/-"});
    inj.addRow({"fixed", std::to_string(injF.runs),
                Table::num(injFixedSec, 1), Table::num(injF.avm(), 4),
                Table::num(injF.avmInterval(conf).halfWidth(), 4)});
    inj.addRow({"adaptive", std::to_string(injA.runs),
                Table::num(injAdptSec, 1), Table::num(injA.avm(), 4),
                Table::num(injCi.halfWidth(), 4)});
    std::printf("\n%s\n",
                inj.render("injection (sobel, hw 0.03)").c_str());
    std::printf("injection runs: fixed %llu  adaptive %llu  ratio "
                "%.2fx  fixed AVM in adaptive interval: %s\n\n",
                static_cast<unsigned long long>(injF.runs),
                static_cast<unsigned long long>(injA.runs), injRatio,
                injContained ? "yes" : "NO");
    bool injPass = injRatio >= 2.0 && injContained;

    addJsonSection(
        "adaptiveSweep",
        obs::json::Object{
            {"dtaFixedTrials", fixed.totalOps()},
            {"dtaAdaptiveTrials", adpt.totalOps()},
            {"dtaTrialsSaved",
             static_cast<int64_t>(fixed.totalOps()) -
                 static_cast<int64_t>(adpt.totalOps())},
            {"dtaSavingsRatio", dtaRatio},
            {"injFixedRuns", injF.runs},
            {"injAdaptiveRuns", injA.runs},
            {"injRunsSaved", static_cast<int64_t>(injF.runs) -
                                 static_cast<int64_t>(injA.runs)},
            {"injSavingsRatio", injRatio},
        });

    if (!dtaPass && !injPass) {
        std::printf("FAIL: no cell reached >= 2x savings with "
                    "contained intervals (DTA %.2fx/%s, inject "
                    "%.2fx/%s)\n",
                    dtaRatio, dtaContained ? "contained" : "escaped",
                    injRatio, injContained ? "contained" : "escaped");
        return 1;
    }
    std::printf("PASS: adaptive sizing saves >= 2x at equal target "
                "half-width (DTA %s, inject %s)\n",
                dtaPass ? "pass" : "miss", injPass ? "pass" : "miss");
    return 0;
}

/**
 * Wraps an inner model and throws from plan() on a deterministic
 * fraction of calls, exercising the containment/retry machinery.
 */
class FaultyModel final : public models::ErrorModel
{
  public:
    FaultyModel(const models::ErrorModel &inner, unsigned faultPercent)
        : inner_(inner), faultPercent_(faultPercent)
    {
    }

    models::ModelKind kind() const override { return inner_.kind(); }
    std::string describe() const override
    {
        return inner_.describe() + "+faults";
    }
    std::vector<sim::InjectionEvent>
    plan(const models::ProgramProfile &profile, Rng &rng) const override
    {
        unsigned c = calls_.fetch_add(1);
        if (faultPercent_ && (c * faultPercent_) % 100 >=
                                 (100 - faultPercent_))
            throw std::runtime_error("synthetic model fault");
        return inner_.plan(profile, rng);
    }
    double
    expectedErrors(const models::ProgramProfile &profile) const override
    {
        return inner_.expectedErrors(profile);
    }

  private:
    const models::ErrorModel &inner_;
    unsigned faultPercent_;
    mutable std::atomic<unsigned> calls_{0};
};

/**
 * Containment-overhead stress: the sobel campaign under a model that
 * throws on 0%, 25% and 50% of plan() calls. Measures how much
 * throughput run-level containment costs when faults are absent and
 * how gracefully it degrades when they are common.
 */
int
runFaultStress()
{
    const int runs = 48;
    std::printf("run-level containment stress (sobel, %d runs, "
                "%u threads)\n\n",
                runs, ThreadPool::defaultThreads());
    setQuiet(true); // the 50% row would drown the table in warns
    inject::InjectionCampaign campaign(
        workloads::buildWorkload("sobel", 1));
    models::WaModel inner("hot", aggressiveWaStats());

    Table table({"fault rate", "runs/s", "s", "enginefault", "retries",
                 "overhead"});
    double baseSec = 0;
    for (unsigned pct : {0u, 25u, 50u}) {
        FaultyModel model(inner, pct);
        ThreadPool pool(ThreadPool::defaultThreads());
        inject::InjectionCampaign::RunOptions opts;
        opts.pool = &pool;
        auto t0 = std::chrono::steady_clock::now();
        Rng rng(2);
        auto result = campaign.run(model, runs, rng, opts);
        double sec = secondsSince(t0);
        if (pct == 0)
            baseSec = sec;
        char pctBuf[16];
        std::snprintf(pctBuf, sizeof(pctBuf), "%u%%", pct);
        table.addRow(
            {pctBuf, Table::num(sec > 0 ? runs / sec : 0, 2),
             Table::num(sec, 2), std::to_string(result.engineFault),
             std::to_string(result.retries),
             Table::num(baseSec > 0 ? sec / baseSec : 0, 2)});
    }
    setQuiet(false);
    std::printf("%s\n", table.render("containment overhead").c_str());
    std::printf("overhead = wall-clock vs the fault-free row; "
                "enginefault counts runs dropped after %d attempts\n",
                inject::kDefaultRunAttempts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tea::bench::initObs(argc, argv);
    std::string jsonPath =
        tea::bench::consumeFlagValue(argc, argv, "--json");
    // Sweeps run in the order requested and combine into one JSON
    // report; the worst exit status wins.
    int rc = 0;
    bool ranSweep = false;
    for (int i = 1; i < argc; ++i) {
        int r = -1;
        if (std::strcmp(argv[i], "--thread-sweep") == 0)
            r = runThreadSweep();
        else if (std::strcmp(argv[i], "--lane-sweep") == 0)
            r = runLaneSweep();
        else if (std::strcmp(argv[i], "--backend-sweep") == 0)
            r = runBackendSweep();
        else if (std::strcmp(argv[i], "--adaptive-sweep") == 0)
            r = runAdaptiveSweep();
        else if (std::strcmp(argv[i], "--fault-stress") == 0)
            r = runFaultStress();
        if (r >= 0) {
            ranSweep = true;
            rc = std::max(rc, r);
        }
    }
    if (ranSweep) {
        if (!jsonPath.empty()) {
            obs::json::Object report{
                {"schema", "tea-bench-v1"},
                {"git", obs::gitDescribe()},
                {"passed", rc == 0},
            };
            for (auto &kv : gJsonReport)
                report.push_back(std::move(kv));
            FILE *f = std::fopen(jsonPath.c_str(), "w");
            if (!f) {
                std::printf("cannot write %s\n", jsonPath.c_str());
                return 1;
            }
            std::string text =
                obs::json::Value(std::move(report)).dump(2);
            std::fwrite(text.data(), 1, text.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("wrote %s\n", jsonPath.c_str());
        }
        return rc;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
