/**
 * Micro-performance benchmarks (google-benchmark) of the framework's
 * hot paths: soft-float arithmetic, levelized netlist evaluation, the
 * two DTA engines, gate-level FPU execution, and the two simulators.
 */

#include <benchmark/benchmark.h>

#include "circuit/builders.hh"
#include "circuit/dta.hh"
#include "fpu/fpu_core.hh"
#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "softfloat/softfloat.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

using namespace tea;

static void
BM_SoftFloatMul64(benchmark::State &state)
{
    Rng rng(1);
    uint64_t a = sf::fromDouble(1.23456), b = sf::fromDouble(7.89);
    for (auto _ : state) {
        a ^= rng.next() & 0xffff;
        benchmark::DoNotOptimize(sf::mul64(a, b));
    }
}
BENCHMARK(BM_SoftFloatMul64);

static void
BM_SoftFloatDiv64(benchmark::State &state)
{
    Rng rng(2);
    uint64_t a = sf::fromDouble(1.23456), b = sf::fromDouble(7.89);
    for (auto _ : state) {
        a ^= rng.next() & 0xffff;
        benchmark::DoNotOptimize(sf::div64(a, b));
    }
}
BENCHMARK(BM_SoftFloatDiv64);

namespace {

struct AdderFixture
{
    circuit::Netlist nl{"adder32"};
    circuit::Bus ia, ib;

    AdderFixture()
    {
        circuit::Builder b(nl);
        ia = nl.addInputBus("a", 32);
        ib = nl.addInputBus("b", 32);
        auto add = b.rippleAdd(ia, ib);
        nl.addOutputBus("s", add.sum);
    }

    std::vector<bool>
    inputs(uint64_t a, uint64_t bv) const
    {
        std::vector<bool> in(nl.numInputs());
        for (int i = 0; i < 32; ++i) {
            in[ia[i]] = (a >> i) & 1;
            in[ib[i]] = (bv >> i) & 1;
        }
        return in;
    }
};

} // namespace

static void
BM_NetlistEvaluate(benchmark::State &state)
{
    AdderFixture f;
    Rng rng(3);
    for (auto _ : state) {
        auto in = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(circuit::evaluate(f.nl, in));
    }
}
BENCHMARK(BM_NetlistEvaluate);

static void
BM_DtaLevelized(benchmark::State &state)
{
    AdderFixture f;
    circuit::DelayAnnotation annot(
        f.nl, circuit::CellLibrary::nangate45Like(), 1);
    circuit::LevelizedDta dta(f.nl, annot);
    Rng rng(4);
    auto prev = f.inputs(rng.next(), rng.next());
    for (auto _ : state) {
        auto cur = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(dta.run(prev, cur, 1000.0));
        prev = cur;
    }
}
BENCHMARK(BM_DtaLevelized);

static void
BM_DtaEventDriven(benchmark::State &state)
{
    AdderFixture f;
    circuit::DelayAnnotation annot(
        f.nl, circuit::CellLibrary::nangate45Like(), 1);
    circuit::EventDrivenDta dta(f.nl, annot);
    Rng rng(5);
    auto prev = f.inputs(rng.next(), rng.next());
    for (auto _ : state) {
        auto cur = f.inputs(rng.next(), rng.next());
        benchmark::DoNotOptimize(dta.run(prev, cur, 1000.0));
        prev = cur;
    }
}
BENCHMARK(BM_DtaEventDriven);

static void
BM_FpuGateLevelMul(benchmark::State &state)
{
    static fpu::FpuCore core;
    static size_t point = core.addOperatingPoint(1.2);
    Rng rng(6);
    for (auto _ : state) {
        uint64_t a, b;
        timing::randomOperands(fpu::FpuOp::MulD, rng, a, b);
        benchmark::DoNotOptimize(
            core.execute(point, fpu::FpuOp::MulD, a, b));
    }
}
BENCHMARK(BM_FpuGateLevelMul);

static void
BM_FuncSimSobel(benchmark::State &state)
{
    auto w = workloads::buildWorkload("sobel", 1);
    uint64_t instr = 0;
    for (auto _ : state) {
        sim::FuncSim sim(w.program);
        auto r = sim.run();
        instr = r.instructions;
        benchmark::DoNotOptimize(r);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instr) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuncSimSobel);

static void
BM_OooSimSobel(benchmark::State &state)
{
    auto w = workloads::buildWorkload("sobel", 1);
    uint64_t instr = 0;
    for (auto _ : state) {
        sim::OooSim sim(w.program);
        auto r = sim.run(~0ULL);
        instr = r.committed;
        benchmark::DoNotOptimize(r);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instr) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooSimSobel);

BENCHMARK_MAIN();
