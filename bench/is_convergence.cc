/**
 * @file
 * Importance-sampling convergence ladder (BENCH_is.json).
 *
 * IS earns its keep in the *rare-event* regime — when a campaign run
 * only occasionally sees an injection, plain Monte Carlo spends most
 * runs observing nothing. At the paper's VR15/VR20 operating points
 * the characterized error ratios are high enough that every run is
 * saturated with injections, so this bench constructs the rare regime
 * explicitly: it takes the real VR15 WA characterization and scales
 * each op's `total` up until a run expects ~0.05 injections, the same
 * per-run statistics a deeper voltage ladder or a larger workload
 * would produce. Both arms — plain (target-measure) proposal and the
 * surrogate-tilted IS proposal — run against the SAME scaled model, so
 * the comparison isolates the proposal.
 *
 * Both campaigns use the adaptive planner's early stopping: the plain
 * one stops on the Wilson interval of the integer counts, the weighted
 * one on the variance-matched Wilson interval
 * (stats::selfNormalizedWilson), so the run-count ratio is exactly the
 * paper-style "runs to equal-width CI" comparison. ESS/n (Kish) is
 * reported as the weight-dispersion diagnostic.
 *
 * `--json <path>` writes the machine-readable report
 * (scripts/bench_snapshot.sh records it as BENCH_is.json).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "obs/json.hh"
#include "surrogate/importance.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;

namespace {

/** Target expected injections per run for the rare-regime model. */
constexpr double kTargetInjectionsPerRun = 0.05;

struct Arm
{
    uint64_t runs = 0;
    double avm = 0.0;
    double half = 0.0;
    double essFrac = 1.0;
};

/**
 * Runs this arm would have needed to hit exactly the target interval
 * width: the planner stops on doubling round boundaries, so the raw
 * count overshoots by up to 2x; half-width scales as 1/sqrt(n), so
 * runs * (half/target)^2 removes the quantization from the
 * equal-width comparison (for a capped arm that never reached the
 * target, half > target and the correction extrapolates *upward*).
 */
double
runsToTarget(const Arm &a, double ciTarget)
{
    return static_cast<double>(a.runs) * (a.half / ciTarget) *
           (a.half / ciTarget);
}

Arm
runArm(Toolflow &tf, const std::string &workload,
       const models::ErrorModel &model, uint64_t cap, double ciTarget)
{
    auto &camp = tf.campaign(workload);
    inject::InjectionCampaign::RunOptions opts;
    opts.pool = &tf.pool();
    opts.cancel = &CancelToken::processWide();
    opts.ciTarget = ciTarget;
    opts.ciConf = 0.95;
    Rng rng(tf.options().seed);
    auto r = camp.run(model, static_cast<int>(cap), rng, opts);
    Arm arm;
    arm.runs = r.runs;
    if (r.weightedModel) {
        arm.avm = r.avmWeighted();
        arm.half = r.avmWeightedInterval().halfWidth();
        arm.essFrac = r.classified() > 0
                          ? r.ess() / static_cast<double>(r.classified())
                          : 0.0;
    } else {
        arm.avm = r.avm();
        arm.half = r.avmInterval().halfWidth();
    }
    return arm;
}

/**
 * Uniformly deflate the per-op error ratios until the workload expects
 * ~kTargetInjectionsPerRun injections per campaign run. Returns the
 * applied scale (1 = the characterization was already rare).
 */
double
scaleToRareRegime(timing::CampaignStats &stats,
                  const models::ProgramProfile &profile)
{
    double expected = 0.0;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &s = stats.perOp[o];
        if (s.total > 0)
            expected += static_cast<double>(profile.fpOpCounts[o]) *
                        static_cast<double>(s.faulty) /
                        static_cast<double>(s.total);
    }
    double scale = std::max(1.0, expected / kTargetInjectionsPerRun);
    if (scale > 1.0)
        for (auto &s : stats.perOp)
            if (s.total > 0)
                s.total = static_cast<uint64_t>(
                    std::llround(static_cast<double>(s.total) * scale));
    return scale;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    std::string jsonPath = bench::consumeFlagValue(argc, argv, "--json");
    bench::banner("importance-sampling convergence ladder",
                  "methodology Sec. IV (AVM estimation cost); knobs "
                  "REPRO_IS_BOOST/REPRO_IS_FLOOR/REPRO_IS_CORPUS");

    ToolflowOptions opt = optionsFromEnv();
    // Campaigns run at VR15; the deeper VR25 point exists only so the
    // surrogate's training corpus contains actual timing errors (VR is
    // a feature, so the learned ranking transfers to VR15 — at VR15
    // alone the random corpus is all-negative and the tilt is blind).
    opt.vrLevels = {circuit::kVR15, 0.25};
    if (!std::getenv("REPRO_CACHE"))
        opt.cacheDir = "/tmp/tea_bench_is_cache";
    // Characterization sized like the fleet ladder: small but real.
    if (!std::getenv("REPRO_RUNS"))
        opt.waMaxOps = 4000;
    opt.isEnable = true; // surrogate training obeys REPRO_IS_CORPUS
    // In the rare regime a strong tilt pays; the production default is
    // tuned for safety, not for this bench's operating point. At 16x
    // over ~0.05 expected injections the tilted expectation is ~0.8,
    // inside the REPRO_IS_MAXTILT=2 guard — no truncation.
    if (!std::getenv("REPRO_IS_BOOST"))
        opt.isBoost = 16.0;

    const uint64_t cap =
        opt.maxAdaptiveRuns ? opt.maxAdaptiveRuns : 4000;
    const double ciTarget = opt.ciTarget > 0.0 ? opt.ciTarget : 0.01;
    // k-means is absent (its rare-regime injections are fully
    // masked, AVM identically 0) and so are hotspot/mg (their VR15
    // characterization is already rarer than the target — no events
    // for either arm to estimate). cg stays although its measured
    // gain trails the others': the bench reports losses as honestly
    // as wins.
    std::vector<std::string> workloadSet = {"sobel", "cg", "srad_v1",
                                            "is"};
    if (std::string ws =
            bench::consumeFlagValue(argc, argv, "--workloads");
        !ws.empty()) {
        workloadSet.clear();
        for (size_t pos = 0; pos < ws.size();) {
            size_t comma = ws.find(',', pos);
            if (comma == std::string::npos)
                comma = ws.size();
            if (comma > pos)
                workloadSet.push_back(ws.substr(pos, comma - pos));
            pos = comma + 1;
        }
    }

    Toolflow tf(opt);
    std::printf("surrogate: held-out AUC %.3f over %llu DTA ops\n\n",
                tf.surrogate().heldOutAuc(),
                static_cast<unsigned long long>(
                    tf.surrogate().corpusOps()));

    Table table({"workload", "rare /", "plain runs", "IS runs",
                 "ratio", "eq-width", "plain AVM", "IS AVM", "ESS/n",
                 "agree"});
    obs::json::Array rows;
    bool allAgree = true;
    double ratioSum = 0.0;
    double eqRatioSum = 0.0;
    for (const auto &w : workloadSet) {
        timing::CampaignStats rare = tf.waStats(w, opt.vrLevels[0]);
        double rareScale =
            scaleToRareRegime(rare, tf.campaign(w).profile());
        models::WaModel plain("wa_" + w + "_rare", rare);
        surrogate::ImportanceModel tilted(
            plain, tf.surrogate(), tf.trace(w), opt.vrLevels[0],
            opt.isBoost, opt.isFloor, opt.isMaxTilted);

        setQuiet(true);
        Arm p = runArm(tf, w, plain, cap, ciTarget);
        Arm is = runArm(tf, w, tilted, cap, ciTarget);
        setQuiet(false);

        double ratio = is.runs > 0 ? static_cast<double>(p.runs) /
                                         static_cast<double>(is.runs)
                                   : 0.0;
        ratioSum += ratio;
        double isToTarget = runsToTarget(is, ciTarget);
        double eqRatio = isToTarget > 0.0
                             ? runsToTarget(p, ciTarget) / isToTarget
                             : 0.0;
        eqRatioSum += eqRatio;
        // Same estimand: the arms must agree within their combined
        // 95% intervals (3 sigma of the pooled standard error).
        double se = std::sqrt(p.half * p.half + is.half * is.half) /
                    1.96;
        bool agree = !std::isnan(p.avm) && !std::isnan(is.avm) &&
                     std::fabs(p.avm - is.avm) <=
                         (se > 0 ? 3.0 * se : 1e-9);
        allAgree = allAgree && agree;

        table.addRow({w, Table::num(rareScale, 0),
                      std::to_string(p.runs),
                      std::to_string(is.runs), Table::num(ratio, 2),
                      Table::num(eqRatio, 2), Table::num(p.avm, 4),
                      Table::num(is.avm, 4),
                      Table::num(is.essFrac, 2),
                      agree ? "yes" : "NO"});
        rows.push_back(obs::json::Object{
            {"workload", w},
            {"rareScale", rareScale},
            {"plainRuns", static_cast<int64_t>(p.runs)},
            {"isRuns", static_cast<int64_t>(is.runs)},
            {"runRatio", ratio},
            {"plainAvm", p.avm},
            {"plainHalfWidth", p.half},
            {"isAvm", is.avm},
            {"isHalfWidth", is.half},
            {"equalWidthRatio", eqRatio},
            {"essFraction", is.essFrac},
            {"agree", agree},
        });
    }

    std::printf("%s\n",
                table
                    .render("rare-regime (VR15 / scale) runs to a +-" +
                            Table::num(ciTarget, 3) +
                            " AVM interval (95%)")
                    .c_str());
    std::printf("'rare /' divides the characterized error ratios so a "
                "run expects ~%.2f\ninjections; 'ratio' compares raw "
                "run counts (quantized to planner rounds);\n"
                "'eq-width' compares runs extrapolated to exactly the "
                "target width via the\n1/sqrt(n) law; 'agree' checks "
                "the two estimates within pooled 3 sigma\n",
                kTargetInjectionsPerRun);
    if (!allAgree)
        std::printf("FAIL: an IS estimate diverged from plain MC\n");

    if (!jsonPath.empty()) {
        obs::json::Object report{
            {"schema", "tea-bench-is-v1"},
            {"git", obs::gitDescribe()},
            {"passed", allAgree},
            {"ciTarget", ciTarget},
            {"runCap", static_cast<int64_t>(cap)},
            {"boost", opt.isBoost},
            {"floor", opt.isFloor},
            {"maxTilted", opt.isMaxTilted},
            {"targetInjectionsPerRun", kTargetInjectionsPerRun},
            {"surrogateAuc", tf.surrogate().heldOutAuc()},
            {"meanRunRatio",
             workloadSet.empty()
                 ? 0.0
                 : ratioSum / static_cast<double>(workloadSet.size())},
            {"meanEqualWidthRatio",
             workloadSet.empty()
                 ? 0.0
                 : eqRatioSum /
                       static_cast<double>(workloadSet.size())},
            {"workloads", std::move(rows)},
        };
        std::string text = obs::json::Value(std::move(report)).dump(2);
        if (!atomicWriteFile(jsonPath, text + "\n")) {
            std::printf("cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return allAgree ? 0 : 1;
}
