/**
 * Fig. 10 — timing-error injection ratios per benchmark under the three
 * models at VR15/VR20, and the paper's headline accuracy numbers: the
 * DA-model's ratio is off by ~250x on average from the realistic
 * WA-model ratio (IA by ~230x).
 *
 * The injection ratio is a property of the models themselves (expected
 * injected errors / dynamic instructions), so this bench needs only the
 * characterizations, not full campaigns.
 */

#include <cmath>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "models/error_models.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Error injection ratios per model", "Fig. 10");

    Toolflow tf;
    double daMisSum = 0, iaMisSum = 0;
    int cells = 0, waZeroCells = 0;

    for (double vr : tf.options().vrLevels) {
        std::printf("---- VR%.0f ----\n", vr * 100);
        models::DaModel da = tf.daModel(vr);
        models::IaModel ia = tf.iaModel(vr);
        Table t({"Benchmark", "DA ER", "IA ER", "WA ER",
                 "DA/WA factor", "IA/WA factor"});
        for (const auto &name : workloads::workloadNames()) {
            auto &campaign = tf.campaign(name);
            const auto &profile = campaign.profile();
            auto total = static_cast<double>(profile.totalInstructions);
            models::WaModel wa = tf.waModel(name, vr);
            double daEr = da.expectedErrors(profile) / total;
            double iaEr = ia.expectedErrors(profile) / total;
            double waEr = wa.expectedErrors(profile) / total;
            std::string daF = "-", iaF = "-";
            if (waEr > 0) {
                double df = daEr > waEr ? daEr / waEr : waEr / daEr;
                double ifa = iaEr > 0
                                 ? (iaEr > waEr ? iaEr / waEr
                                                : waEr / iaEr)
                                 : INFINITY;
                daF = Table::num(df, 1) + "x";
                iaF = std::isinf(ifa) ? "inf"
                                      : Table::num(ifa, 1) + "x";
                daMisSum += df;
                if (!std::isinf(ifa))
                    iaMisSum += ifa;
                ++cells;
            } else {
                ++waZeroCells;
            }
            t.addRow({name, Table::sci(daEr), Table::sci(iaEr),
                      Table::sci(waEr), daF, iaF});
        }
        std::printf("%s\n", t.render().c_str());
    }

    if (cells) {
        std::printf(
            "average |DA/WA| divergence over cells with WA errors: %.0fx\n"
            "average |IA/WA| divergence:                            %.0fx\n"
            "(paper: ~250x for DA, ~230x for IA on average)\n",
            daMisSum / cells, iaMisSum / cells);
    }
    if (waZeroCells) {
        std::printf(
            "cells where the WA-model injects zero errors: %d — there the\n"
            "fixed-rate DA-model still injects at 1e-3/1e-2, an unbounded\n"
            "overestimate (the paper's hotspot/k-means VR15 cases).\n",
            waZeroCells);
    }
    std::printf("\nShape to check: every model injects more at VR20 than\n"
                "VR15 (the timing-wall effect); different applications see\n"
                "different WA ratios; DA/IA are orders of magnitude off.\n");
    return 0;
}
