/**
 * Table II — benchmark inputs, dynamic instruction counts and
 * classification criteria, measured on the functional simulator.
 * (Inputs are scaled down from the paper's so that statistically
 * significant injection campaigns complete on one core.)
 */

#include "bench_common.hh"
#include "sim/func_sim.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Benchmark inputs, sizes and classification criteria",
                  "Table II");

    Table t({"App", "Input", "Instructions", "FP instructions",
             "Classification criteria"});
    for (const auto &name : workloads::workloadNames()) {
        auto w = workloads::buildWorkload(name, 1);
        sim::FuncSim sim(w.program);
        auto r = sim.run();
        if (r.status != sim::FuncSim::Status::Halted) {
            logWarn("%s did not halt!", name.c_str());
            return 1;
        }
        t.addRow({w.name, w.inputDesc, std::to_string(r.instructions),
                  std::to_string(sim.fpArithCount()),
                  w.classification});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper inputs run 36e6 .. 35.5e9 instructions on gem5;\n"
                "ours are scaled so that 1068-run campaigns per cell are\n"
                "tractable (grow them back with the workload scale knob).\n");
    return 0;
}
