/**
 * Ablation (ours) — exact event-driven vs. fast levelized dynamic
 * timing analysis: agreement on settled values (must be total), on
 * error detection, on dynamic arrival estimates, and the speedup that
 * justifies using the levelized engine for campaign-scale model
 * development. Run on the DP add/sub unit (the glitchiest datapath:
 * a 57-bit ripple carry chain) at a deep voltage reduction; the DP
 * multiply array is too glitchy for exact transport-delay simulation
 * at scale, which is precisely why the levelized engine exists.
 */

#include <chrono>

#include "bench_common.hh"
#include "circuit/celllib.hh"
#include "fpu/fpu_core.hh"
#include "timing/dta_campaign.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::fpu;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("DTA engine ablation: exact vs levelized",
                  "DESIGN.md ablation (methodology validation)");

    circuit::VoltageModel vm;
    // Deeper than VR20 so the shallower add/sub unit shows errors.
    double scale = vm.delayFactorAtReduction(0.32);

    FpuCore exactCore, fastCore;
    size_t pe = exactCore.addOperatingPoint(scale, /*exact=*/true);
    size_t pf = fastCore.addOperatingPoint(scale, /*exact=*/false);

    const int N = 1500;
    Rng rng(42);
    std::vector<std::pair<uint64_t, uint64_t>> ops;
    for (int i = 0; i < N; ++i) {
        uint64_t a, b;
        timing::randomOperands(FpuOp::AddD, rng, a, b);
        ops.push_back({a, b});
    }

    int settledMismatch = 0;
    int exactErr = 0, fastErr = 0, bothErr = 0;
    tea::StreamingStats arrRatio;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<FpuCore::Exec> exactRes;
    for (auto [a, b] : ops)
        exactRes.push_back(exactCore.execute(pe, FpuOp::AddD, a, b));
    auto t1 = std::chrono::steady_clock::now();
    std::vector<FpuCore::Exec> fastRes;
    for (auto [a, b] : ops)
        fastRes.push_back(fastCore.execute(pf, FpuOp::AddD, a, b));
    auto t2 = std::chrono::steady_clock::now();

    for (int i = 0; i < N; ++i) {
        const auto &re = exactRes[i];
        const auto &rl = fastRes[i];
        if (re.golden != rl.golden)
            ++settledMismatch;
        exactErr += re.timingError;
        fastErr += rl.timingError;
        bothErr += re.timingError && rl.timingError;
        if (re.maxArrivalPs > 1.0)
            arrRatio.sample(rl.maxArrivalPs / re.maxArrivalPs);
    }

    double exactMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double fastMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();

    Table t({"metric", "exact (event-driven)", "levelized"});
    t.addRow({"ops", std::to_string(N), std::to_string(N)});
    t.addRow({"settled-value mismatches", "0 (reference)",
              std::to_string(settledMismatch)});
    t.addRow({"ops with timing errors", std::to_string(exactErr),
              std::to_string(fastErr)});
    t.addRow({"errors found by both", std::to_string(bothErr), "-"});
    t.addRow({"time (ms)", Table::num(exactMs, 1),
              Table::num(fastMs, 1)});
    t.addRow({"throughput (ops/s)", Table::num(N / exactMs * 1000, 0),
              Table::num(N / fastMs * 1000, 0)});
    std::printf("%s\n", t.render().c_str());

    std::printf("levelized/exact arrival ratio: mean %.2f (sd %.2f)\n",
                arrRatio.mean(), arrRatio.stddev());
    std::printf("speedup: %.1fx\n\n", exactMs / fastMs);
    std::printf(
        "Interpretation: the two engines agree bit-exactly on settled\n"
        "values (the hard correctness bar). Their error sets differ in\n"
        "the tail because the levelized engine is both hazard-blind (it\n"
        "misses glitch-capture errors, underestimating on ripple-carry\n"
        "logic) and path-insensitive (it takes the slowest *changed*\n"
        "fanin rather than the sensitized one, overestimating on mux-\n"
        "heavy datapaths). The speedup is what makes 100k-op WA-model\n"
        "characterizations tractable — the paper's equivalent trade-off\n"
        "is full ModelSim gate simulation vs statistical sampling.\n");
    return settledMismatch == 0 ? 0 : 1;
}
