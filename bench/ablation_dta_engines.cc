/**
 * Ablation (ours) — the full DTA engine ladder: exact event-driven
 * vs. fast levelized vs. 64-lane interpreted vs. compiled SIMD-wide
 * batches. Agreement on settled values (must be total), on error
 * detection, on dynamic arrival estimates, and the speedups that
 * justify each rung for campaign-scale model development. The two
 * batched engines must match the levelized oracle bit-for-bit per op
 * — their rows ablate pure execution strategy, not semantics. Run on
 * the DP add/sub unit (the glitchiest datapath: a 57-bit ripple carry
 * chain) at a deep voltage reduction; the DP multiply array is too
 * glitchy for exact transport-delay simulation at scale, which is
 * precisely why the fast engines exist.
 */

#include <chrono>

#include "bench_common.hh"
#include "circuit/celllib.hh"
#include "circuit/compiled_dta.hh"
#include "fpu/fpu_core.hh"
#include "timing/dta_campaign.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::fpu;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("DTA engine ablation: exact vs levelized",
                  "DESIGN.md ablation (methodology validation)");

    circuit::VoltageModel vm;
    // Deeper than VR20 so the shallower add/sub unit shows errors.
    double scale = vm.delayFactorAtReduction(0.32);

    FpuCore exactCore, fastCore;
    size_t pe = exactCore.addOperatingPoint(scale, /*exact=*/true);
    size_t pf = fastCore.addOperatingPoint(scale, /*exact=*/false);

    const int N = 1500;
    Rng rng(42);
    std::vector<std::pair<uint64_t, uint64_t>> ops;
    for (int i = 0; i < N; ++i) {
        uint64_t a, b;
        timing::randomOperands(FpuOp::AddD, rng, a, b);
        ops.push_back({a, b});
    }

    int settledMismatch = 0;
    int exactErr = 0, fastErr = 0, bothErr = 0;
    tea::StreamingStats arrRatio;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<FpuCore::Exec> exactRes;
    for (auto [a, b] : ops)
        exactRes.push_back(exactCore.execute(pe, FpuOp::AddD, a, b));
    auto t1 = std::chrono::steady_clock::now();
    std::vector<FpuCore::Exec> fastRes;
    for (auto [a, b] : ops)
        fastRes.push_back(fastCore.execute(pf, FpuOp::AddD, a, b));
    auto t2 = std::chrono::steady_clock::now();

    // Batched engines: the same op stream through executeBatch
    // blocks, which reproduce sequential pipeline history exactly.
    // One shared core (built and warmed outside the timed regions,
    // so program compilation does not distort the throughput rows)
    // with a fresh operating point per engine.
    FpuCore batchCore;
    size_t pl = batchCore.addOperatingPoint(scale);
    size_t pc = batchCore.addOperatingPoint(scale);
    auto runBatched = [&](circuit::DtaBackend backend, size_t pt,
                          unsigned lanes) {
        circuit::setDtaBackend(backend);
        batchCore.reset(pt); // sequential-from-scratch every run
        std::vector<FpuCore::Exec> res(N);
        std::vector<uint64_t> av(lanes), bv(lanes);
        for (int i = 0; i < N;) {
            unsigned n =
                std::min<unsigned>(lanes, static_cast<unsigned>(N - i));
            for (unsigned l = 0; l < n; ++l) {
                av[l] = ops[i + l].first;
                bv[l] = ops[i + l].second;
            }
            batchCore.executeBatch(pt, FpuOp::AddD, av.data(),
                                   bv.data(), n, res.data() + i);
            i += n;
        }
        circuit::resetDtaBackend();
        return res;
    };
    // Untimed warmup compiles the programs and sizes scratch.
    runBatched(circuit::DtaBackend::Compiled, pc, 512);
    runBatched(circuit::DtaBackend::Lane, pl, 64);
    auto t2b = std::chrono::steady_clock::now();
    auto laneRes = runBatched(circuit::DtaBackend::Lane, pl, 64);
    auto t3 = std::chrono::steady_clock::now();
    auto compRes = runBatched(circuit::DtaBackend::Compiled, pc, 512);
    auto t4 = std::chrono::steady_clock::now();

    int laneMismatch = 0, compMismatch = 0;
    for (int i = 0; i < N; ++i) {
        const auto &re = exactRes[i];
        const auto &rl = fastRes[i];
        if (re.golden != rl.golden)
            ++settledMismatch;
        exactErr += re.timingError;
        fastErr += rl.timingError;
        bothErr += re.timingError && rl.timingError;
        if (re.maxArrivalPs > 1.0)
            arrRatio.sample(rl.maxArrivalPs / re.maxArrivalPs);
        // The batched engines must be bit-for-bit the levelized
        // oracle per op (arrivals excluded: their cone-only estimate
        // is exact for faulty ops but a lower bound otherwise).
        auto same = [&](const FpuCore::Exec &x) {
            return x.golden == rl.golden && x.faulty == rl.faulty &&
                   x.errorMask == rl.errorMask &&
                   x.goldenFlags == rl.goldenFlags &&
                   x.faultyFlags == rl.faultyFlags &&
                   x.timingError == rl.timingError;
        };
        laneMismatch += !same(laneRes[i]);
        compMismatch += !same(compRes[i]);
    }

    double exactMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double fastMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    double laneMs =
        std::chrono::duration<double, std::milli>(t3 - t2b).count();
    double compMs =
        std::chrono::duration<double, std::milli>(t4 - t3).count();

    Table t({"metric", "exact (event-driven)", "levelized",
             "lane (64)", "compiled (512)"});
    t.addRow({"ops", std::to_string(N), std::to_string(N),
              std::to_string(N), std::to_string(N)});
    t.addRow({"settled-value mismatches", "0 (reference)",
              std::to_string(settledMismatch), "-", "-"});
    t.addRow({"per-op mismatches vs levelized", "-", "0 (oracle)",
              std::to_string(laneMismatch),
              std::to_string(compMismatch)});
    t.addRow({"ops with timing errors", std::to_string(exactErr),
              std::to_string(fastErr), std::to_string(fastErr),
              std::to_string(fastErr)});
    t.addRow({"errors found by both", std::to_string(bothErr), "-",
              "-", "-"});
    t.addRow({"time (ms)", Table::num(exactMs, 1),
              Table::num(fastMs, 1), Table::num(laneMs, 1),
              Table::num(compMs, 1)});
    t.addRow({"throughput (ops/s)", Table::num(N / exactMs * 1000, 0),
              Table::num(N / fastMs * 1000, 0),
              Table::num(N / laneMs * 1000, 0),
              Table::num(N / compMs * 1000, 0)});
    std::printf("%s\n", t.render().c_str());

    std::printf("levelized/exact arrival ratio: mean %.2f (sd %.2f)\n",
                arrRatio.mean(), arrRatio.stddev());
    std::printf("speedups vs exact: levelized %.1fx, lane %.1fx, "
                "compiled %.1fx\n\n",
                exactMs / fastMs, exactMs / laneMs, exactMs / compMs);
    std::printf(
        "Interpretation: the two engines agree bit-exactly on settled\n"
        "values (the hard correctness bar). Their error sets differ in\n"
        "the tail because the levelized engine is both hazard-blind (it\n"
        "misses glitch-capture errors, underestimating on ripple-carry\n"
        "logic) and path-insensitive (it takes the slowest *changed*\n"
        "fanin rather than the sensitized one, overestimating on mux-\n"
        "heavy datapaths). The speedup is what makes 100k-op WA-model\n"
        "characterizations tractable — the paper's equivalent trade-off\n"
        "is full ModelSim gate simulation vs statistical sampling.\n"
        "The lane and compiled rows change only the execution\n"
        "strategy — 64-lane SWAR interpretation and compiled SIMD-wide\n"
        "plane programs — so they must (and do) reproduce the\n"
        "levelized results bit-for-bit.\n");
    return settledMismatch == 0 && laneMismatch == 0 &&
                   compMismatch == 0
               ? 0
               : 1;
}
