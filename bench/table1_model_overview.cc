/**
 * Table I — overview of the supported timing-error injection models and
 * their awareness features, generated from the model implementations.
 */

#include "bench_common.hh"
#include "models/error_models.hh"
#include "util/table.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Error injection model overview",
                  "Table I (IISWC'21 paper)");

    Table t({"Model", "Injection technique", "Voltage aware",
             "Instruction aware", "Workload aware",
             "Microarchitecture aware"});
    t.addRow({"DA-model", "fixed probability", "yes", "no", "no", "no"});
    t.addRow({"IA-model", "statistical", "yes", "yes", "no", "no"});
    t.addRow({"WA-model (proposed)", "statistical", "yes", "yes", "yes",
              "yes"});
    std::printf("%s\n", t.render().c_str());

    std::printf("All three models are implemented in src/models and are\n"
                "evaluated through the same microarchitectural injector\n"
                "(src/inject), as the paper's toolflow requires.\n");
    return 0;
}
