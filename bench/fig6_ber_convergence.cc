/**
 * Fig. 6 — convergence of the fp-mul bit error ratio of `is` with the
 * number of characterized instructions: the BER measured on K sampled
 * instructions approaches the full-trace BER as K grows (the paper uses
 * K = 10K/100K/1M against the full trace; we scale to our trace size).
 * Reports the average absolute error (Eq. 3) per K.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "timing/dta_campaign.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using fpu::FpuOp;

namespace {

/** Average absolute relative error between two BER vectors (Eq. 3). */
double
averageAbsError(const timing::OpErrorStats &full,
                const timing::OpErrorStats &sample)
{
    double sum = 0.0;
    int n = 0;
    for (unsigned b = 0; b < 64; ++b) {
        double bf = full.ber(b);
        if (bf <= 0.0)
            continue;
        sum += std::fabs((bf - sample.ber(b)) / bf);
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("BER convergence vs. number of fp-mul instructions",
                  "Fig. 6 (is program, fp-mul, VR20)");

    Toolflow tf;
    const double vr = circuit::kVR20;
    size_t point = tf.pointFor(vr);

    // Extract the fp-mul instruction stream of `is`.
    const auto &trace = tf.trace("is");
    std::vector<sim::FpTraceEntry> muls;
    for (const auto &e : trace)
        if (e.op == FpuOp::MulD)
            muls.push_back(e);
    std::printf("fp-mul instructions in the is trace: %zu\n\n",
                muls.size());

    // Full-trace reference.
    auto &core = tf.fpuCore();
    auto runOver = [&](uint64_t k) {
        timing::DtaCampaign c(core, point);
        for (uint64_t i = 0; i < std::min<uint64_t>(k, muls.size());
             ++i)
            c.execute(FpuOp::MulD, muls[i].a, muls[i].b);
        return c.stats().of(FpuOp::MulD);
    };
    auto full = runOver(muls.size());
    std::printf("full-trace fp-mul error ratio: %s\n\n",
                Table::sci(full.errorRatio()).c_str());

    Table t({"K (sampled fp-mul)", "ER", "ER +/- (Wilson 95%)",
             "avg abs BER error (Eq. 3)"});
    for (uint64_t k :
         {muls.size() / 32, muls.size() / 8, muls.size() / 2,
          muls.size()}) {
        if (k == 0)
            continue;
        auto s = runOver(k);
        t.addRow({std::to_string(k), Table::sci(s.errorRatio()),
                  Table::sci(s.errorInterval().halfWidth()),
                  Table::num(averageAbsError(full, s), 3)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (paper): AE shrinks monotonically with K\n"
                "and is ~0 when K covers the trace — justifying the 1M-\n"
                "operand characterization budget for the IA/WA models.\n");

    // Bonus: the mantissa vs exponent split of the full-trace BER.
    double manMax = 0, expMax = 0;
    for (unsigned b = 0; b < 52; ++b)
        manMax = std::max(manMax, full.ber(b));
    for (unsigned b = 52; b < 63; ++b)
        expMax = std::max(expMax, full.ber(b));
    std::printf("\nmax mantissa-bit BER: %s   max exponent-bit BER: %s\n"
                "(paper Fig. 8 observation: mantissa bits are more prone\n"
                "to timing errors than exponent bits)\n",
                Table::sci(manMax).c_str(), Table::sci(expMax).c_str());
    return 0;
}
