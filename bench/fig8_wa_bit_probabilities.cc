/**
 * Fig. 8 — WA-model bit error-injection probabilities per benchmark at
 * VR15 and VR20: different workloads exhibit vastly different BER
 * profiles because their operand distributions excite different paths.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "timing/ber_csv.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using fpu::FpuOp;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    // `--csv <path>` additionally writes the per-bit probabilities as
    // a machine-readable artifact (one section per workload x VR).
    std::string csvPath = bench::consumeFlagValue(argc, argv, "--csv");
    bench::banner(
        "WA-model per-benchmark bit error probabilities",
        "Fig. 8 (plus the mantissa-vs-exponent observation)");

    std::string csv;
    Toolflow tf;
    for (double vr : tf.options().vrLevels) {
        std::printf("---- VR%.0f ----\n", vr * 100);
        Table t({"Benchmark", "ER(all FP)", "worst op", "worst-op ER",
                 "max mantissa BER", "max exponent BER", "sign BER"});
        for (const auto &name : workloads::workloadNames()) {
            const auto &stats = tf.waStats(name, vr);
            if (!csvPath.empty()) {
                char hdr[96];
                std::snprintf(hdr, sizeof(hdr), "# %s VR%.0f\n",
                              name.c_str(), vr * 100);
                csv += hdr;
                csv += timing::berCsv(stats);
            }
            double worstEr = 0;
            const char *worstOp = "-";
            for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
                double er = stats.perOp[o].errorRatio();
                if (er > worstEr) {
                    worstEr = er;
                    worstOp = fpu::fpuOpName(static_cast<FpuOp>(o));
                }
            }
            // Merge per-bit stats over all DP ops.
            double manMax = 0, expMax = 0, sign = 0;
            for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
                const auto &s = stats.perOp[o];
                for (unsigned b = 0; b < 52; ++b)
                    manMax = std::max(manMax, s.ber(b));
                for (unsigned b = 52; b < 63; ++b)
                    expMax = std::max(expMax, s.ber(b));
                sign = std::max(sign, s.ber(63));
            }
            t.addRow({name, Table::sci(stats.errorRatio()), worstOp,
                      Table::sci(worstEr), Table::sci(manMax),
                      Table::sci(expMax), Table::sci(sign)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf(
        "Expected shape (paper): per-benchmark BERs differ by orders of\n"
        "magnitude at the same voltage (e.g. mg vs srad); every bit has\n"
        "its own error ratio; mantissa bits are more error-prone than\n"
        "exponent bits.\n");
    if (!csvPath.empty()) {
        FILE *f = std::fopen(csvPath.c_str(), "w");
        if (!f) {
            std::printf("cannot write CSV to %s\n", csvPath.c_str());
            return 1;
        }
        std::fwrite(csv.data(), 1, csv.size(), f);
        std::fclose(f);
        std::printf("wrote bit probabilities to %s\n", csvPath.c_str());
    }
    return 0;
}
