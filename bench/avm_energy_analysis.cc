/**
 * Section V.C — Application Vulnerability Metric analysis and
 * energy-efficiency guidance:
 *  - AVM per benchmark/model/VR (Eq. 4);
 *  - divergence of the DA/IA AVM estimates from the WA reference
 *    (paper: 49.8% on average);
 *  - AVM-guided voltage selection and the resulting power savings
 *    (paper: k-means safe down to 0.88 V -> up to 56% power, while the
 *    DA-model would forbid it);
 *  - energy savings from a timing-error prevention technique
 *    (instruction-aware clock stretching, paper: up to 20%).
 */

#include <cmath>

#include "bench_common.hh"
#include "core/energy.hh"
#include "core/results.hh"
#include "fleet/coordinator.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using models::ModelKind;

namespace {

/** NaN (no classified runs) renders as "n/a", never "nan%". */
std::string
pctOrNa(double v01)
{
    return std::isnan(v01) ? "n/a" : Table::pct(v01);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Application Vulnerability Metric & energy guidance",
                  "Section V.C (incl. Eq. 4)");

    Toolflow tf;
    // REPRO_FLEET_WORKERS>0 farms the grid across tea-worker
    // processes; results are byte-identical either way.
    fleet::FleetOptions fopt = fleet::fleetOptionsFromEnv();
    EvaluationGrid grid =
        fopt.workers > 0
            ? fleet::runFleetGrid(tf.options(), fopt)
            : runEvaluationGrid(tf);
    if (grid.interrupted) {
        std::printf("(interrupted with %zu completed cell(s); rerun "
                    "with REPRO_RESUME=1 to finish the grid)\n",
                    grid.cells.size());
        return 130;
    }
    circuit::VoltageModel vm;

    // ---- AVM table -----------------------------------------------------
    const double conf = tf.options().ciConf;
    Table t({"Benchmark", "VR", "AVM(DA)", "AVM(IA)", "AVM(WA)",
             "AVM(WA) +/-"});
    double divDa = 0, divIa = 0;
    int cells = 0;
    for (const auto &name : workloads::workloadNames()) {
        for (double vr : tf.options().vrLevels) {
            const auto *da = grid.find(name, ModelKind::DA, vr);
            const auto *ia = grid.find(name, ModelKind::IA, vr);
            const auto *wa = grid.find(name, ModelKind::WA, vr);
            if (!da || !ia || !wa)
                continue;
            t.addRow({name, Table::pct(vr, 0), pctOrNa(da->avm()),
                      pctOrNa(ia->avm()), pctOrNa(wa->avm()),
                      wa->classified() == 0
                          ? "n/a"
                          : Table::pct(
                                wa->avmInterval(conf).halfWidth())});
            // A cell with no classified runs has no AVM to diverge
            // from; it must not poison the paper's mean with NaN.
            if (std::isnan(da->avm()) || std::isnan(ia->avm()) ||
                std::isnan(wa->avm()))
                continue;
            divDa += std::fabs(da->avm() - wa->avm());
            divIa += std::fabs(ia->avm() - wa->avm());
            ++cells;
        }
    }
    std::printf("%s\n", t.render().c_str());
    if (cells > 0)
        std::printf("mean |AVM(DA) - AVM(WA)|: %.1f%%   mean |AVM(IA) - "
                    "AVM(WA)|: %.1f%%\n"
                    "(paper: existing models' AVM differs from the "
                    "workload-aware one by 49.8%% on average)\n\n",
                    100 * divDa / cells, 100 * divIa / cells);
    else
        std::printf("mean AVM divergence: n/a (no cell produced "
                    "classified runs)\n\n");

    // ---- AVM-guided voltage selection -----------------------------------
    Table g({"Benchmark", "max safe VR (WA)", "power saving (WA)",
             "max safe VR (DA)", "power saving (DA)"});
    for (const auto &name : workloads::workloadNames()) {
        std::map<double, double> waAvm, daAvm;
        for (double vr : tf.options().vrLevels) {
            if (const auto *r = grid.find(name, ModelKind::WA, vr))
                waAvm[vr] = r->avm();
            if (const auto *r = grid.find(name, ModelKind::DA, vr))
                daAvm[vr] = r->avm();
        }
        auto gw = guideVoltage(waAvm, vm);
        auto gd = guideVoltage(daAvm, vm);
        g.addRow({name,
                  gw.found ? Table::pct(gw.maxSafeVr, 0) : "none",
                  Table::pct(gw.powerSaving),
                  gd.found ? Table::pct(gd.maxSafeVr, 0) : "none",
                  Table::pct(gd.powerSaving)});
    }
    std::printf("%s\n", g.render().c_str());
    std::printf("Shape to check: programs the WA-model shows to be robust\n"
                "(AVM = 0) can be undervolted for real power savings, while\n"
                "the pessimistic DA-model forbids any reduction (its random\n"
                "flips corrupt every program).\n\n");

    // ---- CI-aware guidance ----------------------------------------------
    // "Zero corruptions observed" out of a handful of runs is weak
    // evidence: the CI-aware guidance only calls a level safe when the
    // AVM's upper confidence bound (rule-of-three for zero events)
    // clears the bound below.
    const double kAvmBound = 0.05;
    Table ci({"Benchmark", "max safe VR (CI)", "AVM upper bound",
              "power saving"});
    for (const auto &name : workloads::workloadNames()) {
        std::map<double, AvmObservation> waObs;
        for (double vr : tf.options().vrLevels) {
            if (const auto *r = grid.find(name, ModelKind::WA, vr))
                waObs[vr] = {r->sdc + r->crash + r->timeout,
                             r->classified()};
        }
        auto gc = guideVoltage(waObs, kAvmBound, conf, vm);
        ci.addRow({name,
                   gc.found ? Table::pct(gc.maxSafeVr, 0) : "none",
                   gc.found ? Table::pct(gc.avmUpperBound) : "n/a",
                   Table::pct(gc.powerSaving)});
    }
    std::printf("%s\n", ci.render().c_str());
    std::printf("CI-aware guidance (AVM upper bound at %.0f%% confidence "
                "must clear %.0f%%):\nwith few runs per cell the "
                "rule-of-three bound 3/n keeps weakly-tested levels\n"
                "out; raise REPRO_RUNS (or set REPRO_CI_TARGET) until "
                "bounds tighten.\n\n",
                conf * 100, kAvmBound * 100);

    // ---- prevention-technique analysis ----------------------------------
    Table p({"Benchmark", "VR", "stretched instr", "energy factor",
             "saving vs nominal", "extra vs AVM-guided"});
    double bestExtra = 0;
    for (const auto &name : workloads::workloadNames()) {
        std::map<double, double> waAvm;
        for (double vr : tf.options().vrLevels)
            if (const auto *r = grid.find(name, ModelKind::WA, vr))
                waAvm[vr] = r->avm();
        auto guided = guideVoltage(waAvm, vm);
        double deepest = tf.options().vrLevels.back();
        auto wa = tf.waModel(name, deepest);
        auto pa = analyzePrevention(tf.campaign(name).profile(), wa,
                                    deepest, guided.powerSaving, vm);
        bestExtra = std::max(bestExtra, pa.extraSavingVsGuided);
        p.addRow({name, Table::pct(deepest, 0),
                  Table::pct(pa.stretchOverhead),
                  Table::num(pa.energyFactor, 3),
                  Table::pct(1.0 - pa.energyFactor),
                  Table::pct(pa.extraSavingVsGuided)});
    }
    std::printf("%s\n", p.render().c_str());
    std::printf("best extra energy saving from the prevention technique:\n"
                "%.1f%% (paper: up to 20%% when AVM guidance is combined\n"
                "with a timing-error prevention technique)\n",
                100 * bestExtra);
    return 0;
}
