/**
 * Section V.C — Application Vulnerability Metric analysis and
 * energy-efficiency guidance:
 *  - AVM per benchmark/model/VR (Eq. 4);
 *  - divergence of the DA/IA AVM estimates from the WA reference
 *    (paper: 49.8% on average);
 *  - AVM-guided voltage selection and the resulting power savings
 *    (paper: k-means safe down to 0.88 V -> up to 56% power, while the
 *    DA-model would forbid it);
 *  - energy savings from a timing-error prevention technique
 *    (instruction-aware clock stretching, paper: up to 20%).
 */

#include <cmath>

#include "bench_common.hh"
#include "core/energy.hh"
#include "core/results.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using models::ModelKind;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::banner("Application Vulnerability Metric & energy guidance",
                  "Section V.C (incl. Eq. 4)");

    Toolflow tf;
    EvaluationGrid grid = runEvaluationGrid(tf);
    if (grid.interrupted) {
        std::printf("(interrupted with %zu completed cell(s); rerun "
                    "with REPRO_RESUME=1 to finish the grid)\n",
                    grid.cells.size());
        return 130;
    }
    circuit::VoltageModel vm;

    // ---- AVM table -----------------------------------------------------
    Table t({"Benchmark", "VR", "AVM(DA)", "AVM(IA)", "AVM(WA)"});
    double divDa = 0, divIa = 0;
    int cells = 0;
    for (const auto &name : workloads::workloadNames()) {
        for (double vr : tf.options().vrLevels) {
            const auto *da = grid.find(name, ModelKind::DA, vr);
            const auto *ia = grid.find(name, ModelKind::IA, vr);
            const auto *wa = grid.find(name, ModelKind::WA, vr);
            if (!da || !ia || !wa)
                continue;
            t.addRow({name, Table::pct(vr, 0), Table::pct(da->avm()),
                      Table::pct(ia->avm()), Table::pct(wa->avm())});
            divDa += std::fabs(da->avm() - wa->avm());
            divIa += std::fabs(ia->avm() - wa->avm());
            ++cells;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("mean |AVM(DA) - AVM(WA)|: %.1f%%   mean |AVM(IA) - "
                "AVM(WA)|: %.1f%%\n"
                "(paper: existing models' AVM differs from the workload-"
                "aware one by 49.8%% on average)\n\n",
                100 * divDa / cells, 100 * divIa / cells);

    // ---- AVM-guided voltage selection -----------------------------------
    Table g({"Benchmark", "max safe VR (WA)", "power saving (WA)",
             "max safe VR (DA)", "power saving (DA)"});
    for (const auto &name : workloads::workloadNames()) {
        std::map<double, double> waAvm, daAvm;
        for (double vr : tf.options().vrLevels) {
            if (const auto *r = grid.find(name, ModelKind::WA, vr))
                waAvm[vr] = r->avm();
            if (const auto *r = grid.find(name, ModelKind::DA, vr))
                daAvm[vr] = r->avm();
        }
        auto gw = guideVoltage(waAvm, vm);
        auto gd = guideVoltage(daAvm, vm);
        g.addRow({name, Table::pct(gw.maxSafeVr, 0),
                  Table::pct(gw.powerSaving),
                  Table::pct(gd.maxSafeVr, 0),
                  Table::pct(gd.powerSaving)});
    }
    std::printf("%s\n", g.render().c_str());
    std::printf("Shape to check: programs the WA-model shows to be robust\n"
                "(AVM = 0) can be undervolted for real power savings, while\n"
                "the pessimistic DA-model forbids any reduction (its random\n"
                "flips corrupt every program).\n\n");

    // ---- prevention-technique analysis ----------------------------------
    Table p({"Benchmark", "VR", "stretched instr", "energy factor",
             "saving vs nominal", "extra vs AVM-guided"});
    double bestExtra = 0;
    for (const auto &name : workloads::workloadNames()) {
        std::map<double, double> waAvm;
        for (double vr : tf.options().vrLevels)
            if (const auto *r = grid.find(name, ModelKind::WA, vr))
                waAvm[vr] = r->avm();
        auto guided = guideVoltage(waAvm, vm);
        double deepest = tf.options().vrLevels.back();
        auto wa = tf.waModel(name, deepest);
        auto pa = analyzePrevention(tf.campaign(name).profile(), wa,
                                    deepest, guided.powerSaving, vm);
        bestExtra = std::max(bestExtra, pa.extraSavingVsGuided);
        p.addRow({name, Table::pct(deepest, 0),
                  Table::pct(pa.stretchOverhead),
                  Table::num(pa.energyFactor, 3),
                  Table::pct(1.0 - pa.energyFactor),
                  Table::pct(pa.extraSavingVsGuided)});
    }
    std::printf("%s\n", p.render().c_str());
    std::printf("best extra energy saving from the prevention technique:\n"
                "%.1f%% (paper: up to 20%% when AVM guidance is combined\n"
                "with a timing-error prevention technique)\n",
                100 * bestExtra);
    return 0;
}
