/**
 * @file
 * Multi-core injection scaling ladder (BENCH_mc.json).
 *
 * Runs DA-model campaigns on the threaded workloads (k-means-mt,
 * hotspot-mt) at 2 and 4 cores and records the multi-core outcome
 * refinement (DESIGN.md §15): how many masked runs were coherence-
 * masked, how the SDCs split between same-core and cross-core
 * propagation, and how many crashes/timeouts were synchronization
 * faults or barrier deadlocks — plus campaign throughput per cell.
 *
 * The error ratio is synthetic and deliberately elevated far above
 * any characterized operating point: the ladder's purpose is not an
 * AVM estimate but coverage of the refined taxonomy, and the gate is
 * that cross-core SDC propagation is OBSERVED (nonzero across the
 * ladder). The subsystem exists to measure that escape channel; a
 * zero means the taint plumbing regressed, and the bench exits 1.
 *
 * `--json <path>` writes the machine-readable report
 * (scripts/bench_snapshot.sh records it as BENCH_mc.json).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "inject/campaign.hh"
#include "models/error_models.hh"
#include "obs/json.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

using namespace tea;

namespace {

/**
 * Synthetic DA error ratio. Calibrated so a default-sized cell
 * populates the whole refined taxonomy: at 2e-5 a k-means-mt run
 * expects a handful of injections — enough that some corrupt shared
 * data another core consumes (cross-core SDC), some die under later
 * clean stores (coherence-masked), and some derail synchronization,
 * while a large masked fraction survives.
 */
constexpr double kErrorRatio = 2e-5;

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    std::string jsonPath = bench::consumeFlagValue(argc, argv, "--json");
    bench::banner("multi-core injection scaling ladder",
                  "DESIGN.md Sec. 15 (cross-core SDC classification); "
                  "knobs REPRO_MC_CORES/REPRO_MC_QUANTUM");

    core::ToolflowOptions opt = core::optionsFromEnv();
    // Enough runs that the rarest refined classes are populated even
    // at the laptop-friendly default cell size.
    const int runs = std::max(80, opt.runsPerCell);
    std::printf("runs per cell: %d; DA error ratio %g (synthetic, "
                "taxonomy-coverage regime)\n\n",
                runs, kErrorRatio);

    const std::vector<std::string> workloadSet = {"k-means-mt",
                                                  "hotspot-mt"};
    const std::vector<unsigned> coreSet = {2, 4};
    models::DaModel model(kErrorRatio);

    Table table({"workload", "cores", "runs", "masked", "coh-mask",
                 "sdc-same", "sdc-cross", "crash", "sync", "dead",
                 "timeout", "runs/s"});
    obs::json::Array cells;
    uint64_t totalCrossCore = 0;
    uint64_t totalRuns = 0;
    bench::WallTimer ladder;
    for (const auto &w : workloadSet) {
        for (unsigned cores : coreSet) {
            mc::McConfig mcCfg;
            mcCfg.cores = cores;
            setQuiet(true);
            inject::InjectionCampaign camp(
                workloads::buildWorkload(w, opt.seed,
                                         opt.workloadScale),
                sim::OooConfig{}, mcCfg);
            Rng rng(opt.seed);
            bench::WallTimer timer;
            inject::CampaignResult r =
                camp.run(model, runs, rng, nullptr);
            setQuiet(false);
            double secs = timer.seconds();
            double rps = secs > 0
                             ? static_cast<double>(r.runs) / secs
                             : 0.0;
            totalCrossCore += r.mcSdcCrossCore;
            totalRuns += r.runs;

            table.addRow({w, std::to_string(cores),
                          std::to_string(r.runs),
                          std::to_string(r.masked),
                          std::to_string(r.mcCoherenceMasked),
                          std::to_string(r.mcSdcSameCore),
                          std::to_string(r.mcSdcCrossCore),
                          std::to_string(r.crash),
                          std::to_string(r.mcSyncCrash),
                          std::to_string(r.mcDeadlock),
                          std::to_string(r.timeout),
                          Table::num(rps, 1)});
            cells.push_back(obs::json::Object{
                {"workload", w},
                {"cores", static_cast<int64_t>(cores)},
                {"runs", static_cast<int64_t>(r.runs)},
                {"masked", static_cast<int64_t>(r.masked)},
                {"coherenceMasked",
                 static_cast<int64_t>(r.mcCoherenceMasked)},
                {"sdc", static_cast<int64_t>(r.sdc)},
                {"sdcSameCore",
                 static_cast<int64_t>(r.mcSdcSameCore)},
                {"sdcCrossCore",
                 static_cast<int64_t>(r.mcSdcCrossCore)},
                {"crash", static_cast<int64_t>(r.crash)},
                {"syncCrash", static_cast<int64_t>(r.mcSyncCrash)},
                {"deadlock", static_cast<int64_t>(r.mcDeadlock)},
                {"timeout", static_cast<int64_t>(r.timeout)},
                {"engineFault", static_cast<int64_t>(r.engineFault)},
                {"avm", r.avm()},
                {"runsPerSec", rps},
            });
        }
    }
    ladder.report("injection runs", totalRuns);

    const bool passed = totalCrossCore > 0;
    std::printf(
        "%s\n",
        table
            .render("DA(" + Table::num(kErrorRatio, 6) +
                    ") outcome refinement per (workload, cores) cell")
            .c_str());
    std::printf("'coh-mask' of 'masked', 'sdc-same'+'sdc-cross' = SDC, "
                "'sync' of 'crash',\n'dead' of 'timeout' "
                "(DESIGN.md Sec. 15 refinement partitions)\n");
    if (!passed)
        std::printf("FAIL: no cross-core SDC observed anywhere in the "
                    "ladder — taint tracking regressed\n");

    if (!jsonPath.empty()) {
        obs::json::Object report{
            {"schema", "tea-bench-mc-v1"},
            {"git", obs::gitDescribe()},
            {"passed", passed},
            {"runsPerCell", static_cast<int64_t>(runs)},
            {"errorRatio", kErrorRatio},
            {"seed", static_cast<int64_t>(opt.seed)},
            {"crossCoreSdcTotal",
             static_cast<int64_t>(totalCrossCore)},
            {"cells", std::move(cells)},
        };
        std::string text = obs::json::Value(std::move(report)).dump(2);
        if (!atomicWriteFile(jsonPath, text + "\n")) {
            std::printf("cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return passed ? 0 : 1;
}
