/**
 * Fig. 7 — IA-model bit error-injection probabilities per instruction
 * type at VR15 and VR20, characterized by DTA over random operands.
 * The paper's shape: fp-mul is the most error-prone instruction; only a
 * subset of types fail at VR15; conversions and all single-precision
 * instructions never fail.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "core/toolflow.hh"
#include "timing/ber_csv.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;
using fpu::FpuOp;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    // `--csv <path>` additionally writes the per-bit probabilities as
    // a machine-readable artifact (one section per voltage level).
    std::string csvPath = bench::consumeFlagValue(argc, argv, "--csv");
    bench::banner("IA-model per-instruction bit error probabilities",
                  "Fig. 7");

    std::string csv;
    Toolflow tf;
    for (double vr : tf.options().vrLevels) {
        bench::WallTimer timer;
        const auto &stats = tf.iaStats(vr);
        timer.report("characterization ops", stats.totalOps());
        if (!csvPath.empty()) {
            char hdr[32];
            std::snprintf(hdr, sizeof(hdr), "# VR%.0f\n", vr * 100);
            csv += hdr;
            csv += timing::berCsv(stats);
        }
        std::printf("---- VR%.0f ----\n", vr * 100);
        Table t({"Instruction", "ER", "max BER", "S", "E(max)",
                 "M[51:40]", "M[39:20]", "M[19:0]"});
        for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
            const auto &s = stats.perOp[o];
            auto groupMax = [&](unsigned lo, unsigned hi) {
                double m = 0;
                for (unsigned b = lo; b <= hi; ++b)
                    m = std::max(m, s.ber(b));
                return m;
            };
            double maxBer = groupMax(0, 63);
            t.addRow({fpu::fpuOpName(static_cast<FpuOp>(o)),
                      Table::sci(s.errorRatio()), Table::sci(maxBer),
                      Table::sci(s.ber(63)), Table::sci(groupMax(52, 62)),
                      Table::sci(groupMax(40, 51)),
                      Table::sci(groupMax(20, 39)),
                      Table::sci(groupMax(0, 19))});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Expected shape: fp-mul.d most error-prone (it sets the\n"
                "clock); fp-div.d joins at VR20; i2f/f2i and all single-\n"
                "precision types show zero probabilities at both levels.\n"
                "Deviation vs the paper: our characterized design keeps\n"
                "fp-add/fp-sub error-free on random operands (their deep\n"
                "carry chains are rarely excited) — see EXPERIMENTS.md.\n");
    if (!csvPath.empty()) {
        FILE *f = std::fopen(csvPath.c_str(), "w");
        if (!f) {
            std::printf("cannot write CSV to %s\n", csvPath.c_str());
            return 1;
        }
        std::fwrite(csv.data(), 1, csv.size(), f);
        std::fclose(f);
        std::printf("wrote bit probabilities to %s\n", csvPath.c_str());
    }
    return 0;
}
