/**
 * @file
 * Fleet worker-count scaling ladder (BENCH_fleet.json).
 *
 * Runs the same evaluation grid at 1, 2, 4 and 8 worker processes and
 * reports wall-clock, throughput and speedup vs the 1-worker fleet —
 * after verifying that every rung's grid CSV is byte-identical to the
 * single-process reference (scaling that changed the answer would not
 * be a result).
 *
 * Characterization caches are warmed by the reference run, so the
 * ladder times injection-campaign execution, not characterization.
 *
 * `--json <path>` writes the machine-readable report
 * (scripts/bench_snapshot.sh records it as BENCH_fleet.json).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/results.hh"
#include "core/toolflow.hh"
#include "fleet/coordinator.hh"
#include "obs/json.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;

#ifndef TEA_WORKER_BIN
#define TEA_WORKER_BIN ""
#endif

namespace {

/** Delete the grid CSV and per-cell manifests so the next campaign
 * re-executes instead of loading the cache; characterization caches
 * stay warm. */
void
clearGridArtifacts(const ToolflowOptions &opt, const GridSpec &spec)
{
    std::filesystem::remove(gridCachePath(opt));
    for (const CellPlan &cp : planEvaluationGrid(opt, spec))
        std::filesystem::remove(
            cellManifestPath(opt, cp.workload, cp.model, cp.vrFrac));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    std::string jsonPath = bench::consumeFlagValue(argc, argv, "--json");
    bench::banner("fleet worker-count scaling ladder",
                  "methodology Sec. III (multi-process campaigns)");

    ToolflowOptions opt = optionsFromEnv();
    if (!std::getenv("REPRO_RUNS"))
        opt.runsPerCell = 8; // ladder default: small but real cells
    opt.threads = 1;         // scaling comes from processes, not threads
    if (!std::getenv("REPRO_CACHE"))
        opt.cacheDir = "/tmp/tea_bench_fleet_cache";

    GridSpec spec; // all workloads x models x vrLevels
    std::vector<CellPlan> cells = planEvaluationGrid(opt, spec);
    std::printf("grid: %zu cells x %d runs, cache %s\n\n",
                cells.size(), opt.runsPerCell, opt.cacheDir.c_str());

    fleet::FleetOptions fopt = fleet::fleetOptionsFromEnv();
    if (fopt.workerBin.empty())
        fopt.workerBin = TEA_WORKER_BIN;
    if (fopt.workerBin.empty() ||
        !std::filesystem::exists(fopt.workerBin)) {
        std::printf("fleet_scaling: no tea-worker binary (set "
                    "REPRO_FLEET_WORKER_BIN)\n");
        return 2;
    }

    // Single-process reference: warms every characterization cache and
    // pins the bytes each ladder rung must reproduce.
    setQuiet(true);
    clearGridArtifacts(opt, spec);
    double refSec;
    {
        Toolflow tf(opt);
        bench::WallTimer t;
        runEvaluationGrid(tf, spec);
        refSec = t.seconds();
    }
    std::string refCsv = readFileToString(gridCachePath(opt)).value_or("");
    setQuiet(false);
    if (refCsv.empty()) {
        std::printf("fleet_scaling: reference grid produced no CSV\n");
        return 1;
    }
    std::printf("single-process reference: %.2f s\n\n", refSec);

    Table table({"workers", "seconds", "cells/s", "speedup", "identical"});
    obs::json::Array rows;
    bool passed = true;
    double oneWorkerSec = 0;
    for (int workers : {1, 2, 4, 8}) {
        setQuiet(true);
        clearGridArtifacts(opt, spec);
        fleet::FleetOptions f = fopt;
        f.workers = workers;
        f.spoolDir = opt.cacheDir + "/fleet_bench_w" +
                     std::to_string(workers);
        std::filesystem::remove_all(f.spoolDir);
        bench::WallTimer t;
        runFleetGrid(opt, f, spec);
        double sec = t.seconds();
        std::string csv =
            readFileToString(gridCachePath(opt)).value_or("");
        setQuiet(false);
        bool identical = csv == refCsv;
        passed = passed && identical;
        if (workers == 1)
            oneWorkerSec = sec;
        double speedup = sec > 0 && oneWorkerSec > 0
                             ? oneWorkerSec / sec
                             : 0;
        table.addRow({std::to_string(workers), Table::num(sec, 2),
                      Table::num(sec > 0 ? cells.size() / sec : 0, 2),
                      Table::num(speedup, 2),
                      identical ? "yes" : "NO"});
        rows.push_back(obs::json::Object{
            {"workers", static_cast<int64_t>(workers)},
            {"seconds", sec},
            {"cellsPerSec", sec > 0 ? cells.size() / sec : 0.0},
            {"speedupVs1Worker", speedup},
            {"byteIdentical", identical},
        });
    }
    std::printf("%s\n", table.render("fleet scaling").c_str());
    std::printf("speedup is vs the 1-worker fleet; 'identical' "
                "compares each rung's grid CSV\nbyte-for-byte against "
                "the single-process reference (%.2f s)\n",
                refSec);
    if (!passed)
        std::printf("FAIL: a ladder rung diverged from the reference\n");

    if (!jsonPath.empty()) {
        obs::json::Object report{
            {"schema", "tea-bench-fleet-v1"},
            {"git", obs::gitDescribe()},
            {"passed", passed},
            {"cells", static_cast<int64_t>(cells.size())},
            {"runsPerCell", static_cast<int64_t>(opt.runsPerCell)},
            {"singleProcessSec", refSec},
            {"fleetScaling", std::move(rows)},
        };
        std::string text = obs::json::Value(std::move(report)).dump(2);
        if (!atomicWriteFile(jsonPath, text + "\n")) {
            std::printf("cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return passed ? 0 : 1;
}
