file(REMOVE_RECURSE
  "CMakeFiles/fpu_inspector.dir/fpu_inspector.cpp.o"
  "CMakeFiles/fpu_inspector.dir/fpu_inspector.cpp.o.d"
  "fpu_inspector"
  "fpu_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpu_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
