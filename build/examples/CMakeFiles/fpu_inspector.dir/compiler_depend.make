# Empty compiler generated dependencies file for fpu_inspector.
# This may be replaced when dependencies are built.
