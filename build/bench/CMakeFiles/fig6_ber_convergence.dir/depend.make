# Empty dependencies file for fig6_ber_convergence.
# This may be replaced when dependencies are built.
