file(REMOVE_RECURSE
  "CMakeFiles/table1_model_overview.dir/table1_model_overview.cc.o"
  "CMakeFiles/table1_model_overview.dir/table1_model_overview.cc.o.d"
  "table1_model_overview"
  "table1_model_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_model_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
