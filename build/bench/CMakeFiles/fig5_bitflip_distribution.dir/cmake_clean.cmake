file(REMOVE_RECURSE
  "CMakeFiles/fig5_bitflip_distribution.dir/fig5_bitflip_distribution.cc.o"
  "CMakeFiles/fig5_bitflip_distribution.dir/fig5_bitflip_distribution.cc.o.d"
  "fig5_bitflip_distribution"
  "fig5_bitflip_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bitflip_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
