# Empty dependencies file for fig5_bitflip_distribution.
# This may be replaced when dependencies are built.
