file(REMOVE_RECURSE
  "CMakeFiles/ablation_dta_engines.dir/ablation_dta_engines.cc.o"
  "CMakeFiles/ablation_dta_engines.dir/ablation_dta_engines.cc.o.d"
  "ablation_dta_engines"
  "ablation_dta_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dta_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
