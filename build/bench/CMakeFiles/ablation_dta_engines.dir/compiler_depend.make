# Empty compiler generated dependencies file for ablation_dta_engines.
# This may be replaced when dependencies are built.
