file(REMOVE_RECURSE
  "CMakeFiles/fig8_wa_bit_probabilities.dir/fig8_wa_bit_probabilities.cc.o"
  "CMakeFiles/fig8_wa_bit_probabilities.dir/fig8_wa_bit_probabilities.cc.o.d"
  "fig8_wa_bit_probabilities"
  "fig8_wa_bit_probabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wa_bit_probabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
