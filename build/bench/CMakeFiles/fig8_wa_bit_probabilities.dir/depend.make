# Empty dependencies file for fig8_wa_bit_probabilities.
# This may be replaced when dependencies are built.
