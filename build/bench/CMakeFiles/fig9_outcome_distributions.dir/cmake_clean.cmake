file(REMOVE_RECURSE
  "CMakeFiles/fig9_outcome_distributions.dir/fig9_outcome_distributions.cc.o"
  "CMakeFiles/fig9_outcome_distributions.dir/fig9_outcome_distributions.cc.o.d"
  "fig9_outcome_distributions"
  "fig9_outcome_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_outcome_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
