# Empty dependencies file for fig9_outcome_distributions.
# This may be replaced when dependencies are built.
