file(REMOVE_RECURSE
  "CMakeFiles/fig10_error_ratios.dir/fig10_error_ratios.cc.o"
  "CMakeFiles/fig10_error_ratios.dir/fig10_error_ratios.cc.o.d"
  "fig10_error_ratios"
  "fig10_error_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_error_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
