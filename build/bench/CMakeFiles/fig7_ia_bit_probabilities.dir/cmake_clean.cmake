file(REMOVE_RECURSE
  "CMakeFiles/fig7_ia_bit_probabilities.dir/fig7_ia_bit_probabilities.cc.o"
  "CMakeFiles/fig7_ia_bit_probabilities.dir/fig7_ia_bit_probabilities.cc.o.d"
  "fig7_ia_bit_probabilities"
  "fig7_ia_bit_probabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ia_bit_probabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
