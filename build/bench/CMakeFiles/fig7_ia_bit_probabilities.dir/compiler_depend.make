# Empty compiler generated dependencies file for fig7_ia_bit_probabilities.
# This may be replaced when dependencies are built.
