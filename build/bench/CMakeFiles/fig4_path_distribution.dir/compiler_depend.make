# Empty compiler generated dependencies file for fig4_path_distribution.
# This may be replaced when dependencies are built.
