file(REMOVE_RECURSE
  "CMakeFiles/fig4_path_distribution.dir/fig4_path_distribution.cc.o"
  "CMakeFiles/fig4_path_distribution.dir/fig4_path_distribution.cc.o.d"
  "fig4_path_distribution"
  "fig4_path_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_path_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
