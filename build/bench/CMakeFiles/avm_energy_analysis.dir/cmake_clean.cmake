file(REMOVE_RECURSE
  "CMakeFiles/avm_energy_analysis.dir/avm_energy_analysis.cc.o"
  "CMakeFiles/avm_energy_analysis.dir/avm_energy_analysis.cc.o.d"
  "avm_energy_analysis"
  "avm_energy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_energy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
