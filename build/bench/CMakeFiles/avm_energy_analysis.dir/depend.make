# Empty dependencies file for avm_energy_analysis.
# This may be replaced when dependencies are built.
