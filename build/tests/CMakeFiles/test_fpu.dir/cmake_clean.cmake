file(REMOVE_RECURSE
  "CMakeFiles/test_fpu.dir/fpu/test_fpu_equivalence.cc.o"
  "CMakeFiles/test_fpu.dir/fpu/test_fpu_equivalence.cc.o.d"
  "CMakeFiles/test_fpu.dir/fpu/test_fpu_pipeline.cc.o"
  "CMakeFiles/test_fpu.dir/fpu/test_fpu_pipeline.cc.o.d"
  "test_fpu"
  "test_fpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
