file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_bitops.cc.o"
  "CMakeFiles/test_util.dir/util/test_bitops.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cc.o"
  "CMakeFiles/test_util.dir/util/test_rng.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cc.o"
  "CMakeFiles/test_util.dir/util/test_stats.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cc.o"
  "CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
