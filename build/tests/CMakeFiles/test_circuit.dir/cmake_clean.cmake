file(REMOVE_RECURSE
  "CMakeFiles/test_circuit.dir/circuit/test_builders.cc.o"
  "CMakeFiles/test_circuit.dir/circuit/test_builders.cc.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_dta.cc.o"
  "CMakeFiles/test_circuit.dir/circuit/test_dta.cc.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_netlist.cc.o"
  "CMakeFiles/test_circuit.dir/circuit/test_netlist.cc.o.d"
  "test_circuit"
  "test_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
