
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/test_builders.cc" "tests/CMakeFiles/test_circuit.dir/circuit/test_builders.cc.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_builders.cc.o.d"
  "/root/repo/tests/circuit/test_dta.cc" "tests/CMakeFiles/test_circuit.dir/circuit/test_dta.cc.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_dta.cc.o.d"
  "/root/repo/tests/circuit/test_netlist.cc" "tests/CMakeFiles/test_circuit.dir/circuit/test_netlist.cc.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_netlist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/tea_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
