file(REMOVE_RECURSE
  "CMakeFiles/test_timing.dir/timing/test_dta_campaign.cc.o"
  "CMakeFiles/test_timing.dir/timing/test_dta_campaign.cc.o.d"
  "test_timing"
  "test_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
