file(REMOVE_RECURSE
  "CMakeFiles/test_softfloat.dir/softfloat/test_softfloat.cc.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_softfloat.cc.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_softfloat_random.cc.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_softfloat_random.cc.o.d"
  "test_softfloat"
  "test_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
