# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_softfloat "/root/repo/build/tests/test_softfloat")
set_tests_properties(test_softfloat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fpu "/root/repo/build/tests/test_fpu")
set_tests_properties(test_fpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;30;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;36;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_circuit "/root/repo/build/tests/test_circuit")
set_tests_properties(test_circuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;42;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;49;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_timing "/root/repo/build/tests/test_timing")
set_tests_properties(test_timing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;54;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_models "/root/repo/build/tests/test_models")
set_tests_properties(test_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;59;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_inject "/root/repo/build/tests/test_inject")
set_tests_properties(test_inject PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;64;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;69;tea_add_test;/root/repo/tests/CMakeLists.txt;0;")
