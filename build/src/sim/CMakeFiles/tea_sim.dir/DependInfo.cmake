
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/func_sim.cc" "src/sim/CMakeFiles/tea_sim.dir/func_sim.cc.o" "gcc" "src/sim/CMakeFiles/tea_sim.dir/func_sim.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/tea_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/tea_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/ooo_sim.cc" "src/sim/CMakeFiles/tea_sim.dir/ooo_sim.cc.o" "gcc" "src/sim/CMakeFiles/tea_sim.dir/ooo_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tea_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/fpu/CMakeFiles/tea_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/tea_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
