# Empty compiler generated dependencies file for tea_sim.
# This may be replaced when dependencies are built.
