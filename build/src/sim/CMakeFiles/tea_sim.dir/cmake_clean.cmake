file(REMOVE_RECURSE
  "CMakeFiles/tea_sim.dir/func_sim.cc.o"
  "CMakeFiles/tea_sim.dir/func_sim.cc.o.d"
  "CMakeFiles/tea_sim.dir/memory.cc.o"
  "CMakeFiles/tea_sim.dir/memory.cc.o.d"
  "CMakeFiles/tea_sim.dir/ooo_sim.cc.o"
  "CMakeFiles/tea_sim.dir/ooo_sim.cc.o.d"
  "libtea_sim.a"
  "libtea_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
