file(REMOVE_RECURSE
  "libtea_sim.a"
)
