file(REMOVE_RECURSE
  "CMakeFiles/tea_models.dir/error_models.cc.o"
  "CMakeFiles/tea_models.dir/error_models.cc.o.d"
  "libtea_models.a"
  "libtea_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
