file(REMOVE_RECURSE
  "libtea_models.a"
)
