# Empty dependencies file for tea_models.
# This may be replaced when dependencies are built.
