file(REMOVE_RECURSE
  "libtea_isa.a"
)
