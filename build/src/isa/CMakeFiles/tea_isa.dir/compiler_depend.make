# Empty compiler generated dependencies file for tea_isa.
# This may be replaced when dependencies are built.
