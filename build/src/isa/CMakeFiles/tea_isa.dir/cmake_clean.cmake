file(REMOVE_RECURSE
  "CMakeFiles/tea_isa.dir/asmbuilder.cc.o"
  "CMakeFiles/tea_isa.dir/asmbuilder.cc.o.d"
  "CMakeFiles/tea_isa.dir/assembler.cc.o"
  "CMakeFiles/tea_isa.dir/assembler.cc.o.d"
  "CMakeFiles/tea_isa.dir/isa.cc.o"
  "CMakeFiles/tea_isa.dir/isa.cc.o.d"
  "CMakeFiles/tea_isa.dir/program.cc.o"
  "CMakeFiles/tea_isa.dir/program.cc.o.d"
  "libtea_isa.a"
  "libtea_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
