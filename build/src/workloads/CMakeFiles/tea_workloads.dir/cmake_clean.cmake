file(REMOVE_RECURSE
  "CMakeFiles/tea_workloads.dir/cg.cc.o"
  "CMakeFiles/tea_workloads.dir/cg.cc.o.d"
  "CMakeFiles/tea_workloads.dir/factory.cc.o"
  "CMakeFiles/tea_workloads.dir/factory.cc.o.d"
  "CMakeFiles/tea_workloads.dir/hotspot.cc.o"
  "CMakeFiles/tea_workloads.dir/hotspot.cc.o.d"
  "CMakeFiles/tea_workloads.dir/is.cc.o"
  "CMakeFiles/tea_workloads.dir/is.cc.o.d"
  "CMakeFiles/tea_workloads.dir/kmeans.cc.o"
  "CMakeFiles/tea_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/tea_workloads.dir/mg.cc.o"
  "CMakeFiles/tea_workloads.dir/mg.cc.o.d"
  "CMakeFiles/tea_workloads.dir/sobel.cc.o"
  "CMakeFiles/tea_workloads.dir/sobel.cc.o.d"
  "CMakeFiles/tea_workloads.dir/srad.cc.o"
  "CMakeFiles/tea_workloads.dir/srad.cc.o.d"
  "libtea_workloads.a"
  "libtea_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
