
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cg.cc" "src/workloads/CMakeFiles/tea_workloads.dir/cg.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/cg.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/tea_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/workloads/CMakeFiles/tea_workloads.dir/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/hotspot.cc.o.d"
  "/root/repo/src/workloads/is.cc" "src/workloads/CMakeFiles/tea_workloads.dir/is.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/is.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/tea_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/mg.cc" "src/workloads/CMakeFiles/tea_workloads.dir/mg.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/mg.cc.o.d"
  "/root/repo/src/workloads/sobel.cc" "src/workloads/CMakeFiles/tea_workloads.dir/sobel.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/sobel.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/workloads/CMakeFiles/tea_workloads.dir/srad.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/srad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fpu/CMakeFiles/tea_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/tea_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tea_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
