file(REMOVE_RECURSE
  "libtea_workloads.a"
)
