file(REMOVE_RECURSE
  "libtea_inject.a"
)
