file(REMOVE_RECURSE
  "CMakeFiles/tea_inject.dir/campaign.cc.o"
  "CMakeFiles/tea_inject.dir/campaign.cc.o.d"
  "libtea_inject.a"
  "libtea_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
