
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inject/campaign.cc" "src/inject/CMakeFiles/tea_inject.dir/campaign.cc.o" "gcc" "src/inject/CMakeFiles/tea_inject.dir/campaign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/tea_models.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tea_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/tea_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fpu/CMakeFiles/tea_fpu.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tea_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/tea_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
