# Empty dependencies file for tea_inject.
# This may be replaced when dependencies are built.
