file(REMOVE_RECURSE
  "libtea_timing.a"
)
