# Empty dependencies file for tea_timing.
# This may be replaced when dependencies are built.
