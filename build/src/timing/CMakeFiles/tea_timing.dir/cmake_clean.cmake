file(REMOVE_RECURSE
  "CMakeFiles/tea_timing.dir/dta_campaign.cc.o"
  "CMakeFiles/tea_timing.dir/dta_campaign.cc.o.d"
  "libtea_timing.a"
  "libtea_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
