file(REMOVE_RECURSE
  "CMakeFiles/tea_core.dir/energy.cc.o"
  "CMakeFiles/tea_core.dir/energy.cc.o.d"
  "CMakeFiles/tea_core.dir/results.cc.o"
  "CMakeFiles/tea_core.dir/results.cc.o.d"
  "CMakeFiles/tea_core.dir/toolflow.cc.o"
  "CMakeFiles/tea_core.dir/toolflow.cc.o.d"
  "libtea_core.a"
  "libtea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
