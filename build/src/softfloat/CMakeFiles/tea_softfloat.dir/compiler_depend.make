# Empty compiler generated dependencies file for tea_softfloat.
# This may be replaced when dependencies are built.
