file(REMOVE_RECURSE
  "libtea_softfloat.a"
)
