file(REMOVE_RECURSE
  "CMakeFiles/tea_softfloat.dir/softfloat.cc.o"
  "CMakeFiles/tea_softfloat.dir/softfloat.cc.o.d"
  "libtea_softfloat.a"
  "libtea_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
