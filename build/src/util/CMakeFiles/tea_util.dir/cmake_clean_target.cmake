file(REMOVE_RECURSE
  "libtea_util.a"
)
