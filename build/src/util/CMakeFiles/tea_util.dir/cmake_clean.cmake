file(REMOVE_RECURSE
  "CMakeFiles/tea_util.dir/logging.cc.o"
  "CMakeFiles/tea_util.dir/logging.cc.o.d"
  "CMakeFiles/tea_util.dir/rng.cc.o"
  "CMakeFiles/tea_util.dir/rng.cc.o.d"
  "CMakeFiles/tea_util.dir/stats.cc.o"
  "CMakeFiles/tea_util.dir/stats.cc.o.d"
  "CMakeFiles/tea_util.dir/table.cc.o"
  "CMakeFiles/tea_util.dir/table.cc.o.d"
  "libtea_util.a"
  "libtea_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
