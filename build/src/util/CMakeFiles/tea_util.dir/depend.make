# Empty dependencies file for tea_util.
# This may be replaced when dependencies are built.
