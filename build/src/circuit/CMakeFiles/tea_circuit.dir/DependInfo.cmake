
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/builders.cc" "src/circuit/CMakeFiles/tea_circuit.dir/builders.cc.o" "gcc" "src/circuit/CMakeFiles/tea_circuit.dir/builders.cc.o.d"
  "/root/repo/src/circuit/celllib.cc" "src/circuit/CMakeFiles/tea_circuit.dir/celllib.cc.o" "gcc" "src/circuit/CMakeFiles/tea_circuit.dir/celllib.cc.o.d"
  "/root/repo/src/circuit/dta.cc" "src/circuit/CMakeFiles/tea_circuit.dir/dta.cc.o" "gcc" "src/circuit/CMakeFiles/tea_circuit.dir/dta.cc.o.d"
  "/root/repo/src/circuit/netlist.cc" "src/circuit/CMakeFiles/tea_circuit.dir/netlist.cc.o" "gcc" "src/circuit/CMakeFiles/tea_circuit.dir/netlist.cc.o.d"
  "/root/repo/src/circuit/sta.cc" "src/circuit/CMakeFiles/tea_circuit.dir/sta.cc.o" "gcc" "src/circuit/CMakeFiles/tea_circuit.dir/sta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
