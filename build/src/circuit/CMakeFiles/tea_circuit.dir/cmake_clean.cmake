file(REMOVE_RECURSE
  "CMakeFiles/tea_circuit.dir/builders.cc.o"
  "CMakeFiles/tea_circuit.dir/builders.cc.o.d"
  "CMakeFiles/tea_circuit.dir/celllib.cc.o"
  "CMakeFiles/tea_circuit.dir/celllib.cc.o.d"
  "CMakeFiles/tea_circuit.dir/dta.cc.o"
  "CMakeFiles/tea_circuit.dir/dta.cc.o.d"
  "CMakeFiles/tea_circuit.dir/netlist.cc.o"
  "CMakeFiles/tea_circuit.dir/netlist.cc.o.d"
  "CMakeFiles/tea_circuit.dir/sta.cc.o"
  "CMakeFiles/tea_circuit.dir/sta.cc.o.d"
  "libtea_circuit.a"
  "libtea_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
