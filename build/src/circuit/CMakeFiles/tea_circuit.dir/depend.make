# Empty dependencies file for tea_circuit.
# This may be replaced when dependencies are built.
