file(REMOVE_RECURSE
  "libtea_circuit.a"
)
