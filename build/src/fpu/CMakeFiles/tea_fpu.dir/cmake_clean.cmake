file(REMOVE_RECURSE
  "CMakeFiles/tea_fpu.dir/fpu_circuits.cc.o"
  "CMakeFiles/tea_fpu.dir/fpu_circuits.cc.o.d"
  "CMakeFiles/tea_fpu.dir/fpu_core.cc.o"
  "CMakeFiles/tea_fpu.dir/fpu_core.cc.o.d"
  "CMakeFiles/tea_fpu.dir/fpu_types.cc.o"
  "CMakeFiles/tea_fpu.dir/fpu_types.cc.o.d"
  "CMakeFiles/tea_fpu.dir/fpu_unit.cc.o"
  "CMakeFiles/tea_fpu.dir/fpu_unit.cc.o.d"
  "CMakeFiles/tea_fpu.dir/pipebuilder.cc.o"
  "CMakeFiles/tea_fpu.dir/pipebuilder.cc.o.d"
  "libtea_fpu.a"
  "libtea_fpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
