# Empty compiler generated dependencies file for tea_fpu.
# This may be replaced when dependencies are built.
