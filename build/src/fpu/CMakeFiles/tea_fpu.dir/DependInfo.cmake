
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpu/fpu_circuits.cc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_circuits.cc.o" "gcc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_circuits.cc.o.d"
  "/root/repo/src/fpu/fpu_core.cc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_core.cc.o" "gcc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_core.cc.o.d"
  "/root/repo/src/fpu/fpu_types.cc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_types.cc.o" "gcc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_types.cc.o.d"
  "/root/repo/src/fpu/fpu_unit.cc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_unit.cc.o" "gcc" "src/fpu/CMakeFiles/tea_fpu.dir/fpu_unit.cc.o.d"
  "/root/repo/src/fpu/pipebuilder.cc" "src/fpu/CMakeFiles/tea_fpu.dir/pipebuilder.cc.o" "gcc" "src/fpu/CMakeFiles/tea_fpu.dir/pipebuilder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/tea_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tea_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
