file(REMOVE_RECURSE
  "libtea_fpu.a"
)
