/**
 * FPU inspector — poke the gate-level FPU directly: print its pipeline
 * structure and static timing, then trace a single operation through
 * the stages at nominal and reduced voltage, showing how a timing error
 * is born (stale captured bits) and which result bits it corrupts.
 *
 * Usage:  ./build/examples/fpu_inspector [vr_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "circuit/celllib.hh"
#include "fpu/fpu_core.hh"
#include "obs/obs.hh"
#include "softfloat/softfloat.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::fpu;

int
main(int argc, char **argv)
{
    obs::configureFromEnv(); // REPRO_METRICS / REPRO_TRACE
    double vrFrac = (argc > 1 ? std::atof(argv[1]) : 20.0) / 100.0;

    FpuCore core;
    circuit::VoltageModel vm;
    std::printf("Gate-level FPU: %zu cells, clock %.0f ps\n\n",
                core.totalCells(), core.clockPs());

    Table t({"Unit", "stages", "gates", "worst stage (ps)",
             "slack (%)"});
    for (unsigned u = 0; u < kNumFpuUnits; ++u) {
        const FpuUnit &un = core.unit(static_cast<FpuUnitKind>(u));
        double worst = un.worstStagePathPs();
        t.addRow({un.name(), std::to_string(un.numStages()),
                  std::to_string(un.totalCells()),
                  Table::num(worst, 0),
                  Table::pct((core.clockPs() - worst) / core.clockPs())});
    }
    std::printf("%s\n", t.render().c_str());

    double scale = vm.delayFactorAtReduction(vrFrac);
    std::printf("operating point: VR%.0f -> %.3f V, delay factor %.3f\n\n",
                vrFrac * 100, vm.voltageFor(vrFrac), scale);
    size_t point = core.addOperatingPoint(scale);

    // Hunt for an operand pair whose multiply fails at this point.
    Rng rng(2026);
    uint64_t pa = 0, pb = 0;
    for (int i = 0; i < 50000; ++i) {
        uint64_t a, b;
        timing::randomOperands(FpuOp::MulD, rng, a, b);
        auto r = core.execute(point, FpuOp::MulD, a, b);
        if (r.timingError) {
            std::printf("timing error after %d ops!\n", i + 1);
            std::printf("  prev op : %.17g * %.17g\n", sf::toDouble(pa),
                        sf::toDouble(pb));
            std::printf("  this op : %.17g * %.17g\n", sf::toDouble(a),
                        sf::toDouble(b));
            std::printf("  golden  : %016llx  (%.17g)\n",
                        static_cast<unsigned long long>(r.golden),
                        sf::toDouble(r.golden));
            std::printf("  faulty  : %016llx  (%.17g)\n",
                        static_cast<unsigned long long>(r.faulty),
                        sf::toDouble(r.faulty));
            std::printf("  mask    : %016llx  (%d bits flipped)\n",
                        static_cast<unsigned long long>(r.errorMask),
                        __builtin_popcountll(r.errorMask));
            std::printf("  worst dynamic arrival: %.0f ps vs capture "
                        "%.0f ps\n",
                        r.maxArrivalPs, core.captureTimePs());
            return 0;
        }
        pa = a;
        pb = b;
    }
    std::printf("no timing error within 50000 random multiplies at "
                "VR%.0f —\ntry a deeper reduction (e.g. "
                "./fpu_inspector 22)\n",
                vrFrac * 100);
    return 0;
}
