/**
 * Quickstart — the framework in five minutes:
 *  1. assemble a small TRISC-64 program,
 *  2. run it on the functional and the cycle-level OoO simulators,
 *  3. characterize the gate-level FPU at a reduced voltage,
 *  4. inject one realistic timing error and watch it corrupt (or not)
 *     the program output.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "circuit/celllib.hh"
#include "fpu/fpu_core.hh"
#include "isa/assembler.hh"
#include "obs/obs.hh"
#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "softfloat/softfloat.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"

using namespace tea;

namespace {

const char *kProgram = R"(
# Dot product of two 8-element vectors, then a scale by the result.
.data
xs:  .double 1.5, 2.0, -0.5, 3.25, 4.0, -1.25, 0.75, 2.5
ys:  .double 0.5, 1.0,  2.0, -1.0, 0.25, 3.0, -2.0, 1.5
out: .space 8
.text
main:
    la   x5, xs
    la   x6, ys
    li   x7, 8
    fmv.d.x f1, x0          # acc = 0
loop:
    fld  f2, 0(x5)
    fld  f3, 0(x6)
    fmul.d f4, f2, f3
    fadd.d f1, f1, f4
    addi x5, x5, 8
    addi x6, x6, 8
    addi x7, x7, -1
    bne  x7, x0, loop
    la   x8, out
    fsd  f1, 0(x8)
    print.fp f1
    halt
)";

} // namespace

int
main()
{
    obs::configureFromEnv(); // REPRO_METRICS / REPRO_TRACE
    std::printf("== 1. Assemble ==\n");
    isa::Program prog = isa::assemble(kProgram, "quickstart");
    std::printf("assembled %zu instructions, %zu data segments\n\n",
                prog.code.size(), prog.data.size());

    std::printf("== 2. Simulate ==\n");
    sim::FuncSim fsim(prog);
    auto fres = fsim.run();
    std::printf("functional: %llu instructions, result = %.6f\n",
                static_cast<unsigned long long>(fres.instructions),
                sf::toDouble(fsim.console()[0]));

    sim::OooSim osim(prog);
    auto ores = osim.run(1'000'000);
    std::printf("OoO: %llu cycles, IPC %.2f, %llu mispredicts\n\n",
                static_cast<unsigned long long>(ores.cycles),
                static_cast<double>(ores.committed) / ores.cycles,
                static_cast<unsigned long long>(ores.branchMispredicts));

    std::printf("== 3. Characterize the FPU at 20%% undervolt ==\n");
    fpu::FpuCore core;
    circuit::VoltageModel vm;
    size_t vr20 =
        core.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    std::printf("clock period: %.0f ps, FPU gates: %zu\n",
                core.clockPs(), core.totalCells());

    Rng rng(1);
    timing::DtaCampaign campaign(core, vr20);
    for (int i = 0; i < 2000; ++i) {
        uint64_t a, b;
        timing::randomOperands(fpu::FpuOp::MulD, rng, a, b);
        campaign.execute(fpu::FpuOp::MulD, a, b);
    }
    const auto &stats = campaign.stats().of(fpu::FpuOp::MulD);
    std::printf("fp-mul.d error ratio at VR20: %.4f (%llu faulty of "
                "%llu)\n\n",
                stats.errorRatio(),
                static_cast<unsigned long long>(stats.faulty),
                static_cast<unsigned long long>(stats.total));

    std::printf("== 4. Inject a timing error ==\n");
    uint64_t mask = stats.maskPool.empty() ? 0xff00000000ULL
                                           : stats.maskPool.front();
    std::vector<sim::InjectionEvent> events{
        {sim::InjectionEvent::Kind::FpOp, fpu::FpuOp::MulD, 3, mask},
    };
    sim::OooSim faulty(prog, sim::OooConfig{},
                       sim::InjectionPlan(events));
    auto fres2 = faulty.run(1'000'000);
    std::printf("injected mask 0x%llx into the 4th executed fp-mul\n",
                static_cast<unsigned long long>(mask));
    if (fres2.status != sim::OooSim::Status::Halted) {
        std::printf("outcome: the run crashed or hung -> Crash/Timeout\n");
    } else if (faulty.console() == osim.console()) {
        std::printf("outcome: output identical -> Masked\n");
    } else {
        std::printf("outcome: silent data corruption -> SDC "
                    "(%.17g instead of %.17g)\n",
                    sf::toDouble(faulty.console()[0]),
                    sf::toDouble(osim.console()[0]));
    }
    return 0;
}
