/**
 * Voltage explorer — sweep the supply-voltage reduction from mild to
 * aggressive for one workload and watch the timing wall: the FPU error
 * ratio stays at zero until the first paths run out of slack, then
 * grows steeply (the paper's Fig. 10 VR15 -> VR20 jump, at finer
 * granularity). Uses circuit-level DTA only (no injection runs), so it
 * is fast.
 *
 * Usage:  ./build/examples/voltage_explorer [workload]
 */

#include <cstdio>
#include <string>

#include "core/energy.hh"
#include "core/toolflow.hh"
#include "util/table.hh"

using namespace tea;
using namespace tea::core;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "srad_v1";

    ToolflowOptions opt = optionsFromEnv();
    opt.waMaxOps = 4000; // keep the sweep quick
    opt.vrLevels.clear();
    for (double vr = 0.05; vr < 0.26; vr += 0.025)
        opt.vrLevels.push_back(vr);
    Toolflow tf(opt);
    circuit::VoltageModel vm;

    std::printf("Timing-wall sweep for '%s' (gate-level DTA on the "
                "workload's own operand trace)\n\n",
                name.c_str());
    std::printf("FPU clock: %.0f ps; VR failure threshold: paths with "
                "less than ~%.0f%%/%.0f%% slack fail at VR15/VR20\n\n",
                tf.fpuCore().clockPs(),
                100 * (1 - 1 / vm.delayFactorAtReduction(0.15)),
                100 * (1 - 1 / vm.delayFactorAtReduction(0.20)));

    Table t({"VR", "supply (V)", "delay factor", "FP error ratio",
             "power saving"});
    for (double vr : opt.vrLevels) {
        const auto &stats = tf.waStats(name, vr);
        t.addRow({Table::pct(vr, 1), Table::num(vm.voltageFor(vr), 3),
                  Table::num(vm.delayFactorAtReduction(vr), 3),
                  Table::sci(stats.errorRatio()),
                  Table::pct(powerSavingAt(vr, vm))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The error ratio is exactly zero until the workload's\n"
                "excited paths cross the shrinking timing budget, then\n"
                "climbs by orders of magnitude within a few percent of\n"
                "voltage — the 'timing wall' that makes guardbands so\n"
                "expensive and workload-aware models so valuable.\n");
    return 0;
}
