/**
 * Pipeline-level behaviour of the gate FPU: stage I/O contracts, clock
 * derivation, operating points, timing-error onset under voltage
 * scaling, and the Fig. 4 path-report shape.
 */

#include <gtest/gtest.h>

#include "circuit/celllib.hh"
#include "fpu/fpu_core.hh"
#include "softfloat/softfloat.hh"
#include "util/rng.hh"

using namespace tea;
using namespace tea::fpu;

namespace {

FpuCore &
core()
{
    static FpuCore c;
    return c;
}

} // namespace

TEST(FpuPipeline, StageIOContract)
{
    // Every stage's input count equals the previous stage's output
    // count, for every unit.
    for (unsigned u = 0; u < kNumFpuUnits; ++u) {
        const FpuUnit &un = core().unit(static_cast<FpuUnitKind>(u));
        for (size_t s = 1; s < un.numStages(); ++s) {
            EXPECT_EQ(un.stage(s).numInputs(),
                      un.stage(s - 1).numOutputBits())
                << un.name() << " stage " << s;
        }
        // Final stage: result + 5 flags.
        EXPECT_EQ(un.stage(un.numStages() - 1).numOutputBits(),
                  un.resultBits() + 5u)
            << un.name();
    }
}

TEST(FpuPipeline, ClockSetByWorstStage)
{
    double worst = 0;
    for (unsigned u = 0; u < kNumFpuUnits; ++u)
        worst = std::max(
            worst,
            core().unit(static_cast<FpuUnitKind>(u)).worstStagePathPs());
    EXPECT_DOUBLE_EQ(core().clockPs(), worst);
    EXPECT_LT(core().captureTimePs(), core().clockPs());
    // Same order of magnitude as the paper's 4.5 ns 45 nm FPU.
    EXPECT_GT(core().clockPs(), 2000.0);
    EXPECT_LT(core().clockPs(), 10000.0);
}

TEST(FpuPipeline, MultiplierArrayIsCritical)
{
    // The paper's Fig. 4: FPU arithmetic paths dominate; in our design
    // the DP multiply array sets the clock.
    EXPECT_DOUBLE_EQ(core().unit(FpuUnitKind::MulD).worstStagePathPs(),
                     core().clockPs());
}

TEST(FpuPipeline, PathReportShape)
{
    auto report = core().pathReport();
    ASSERT_GT(report.size(), 1000u);
    // Sorted descending.
    for (size_t i = 1; i < report.size(); ++i)
        EXPECT_GE(report[i - 1].pathDelayPs, report[i].pathDelayPs);
    // The 1000 longest paths are all FPU paths (Fig. 4's headline).
    int fpuIn1000 = 0;
    for (size_t i = 0; i < 1000; ++i)
        fpuIn1000 += report[i].isFpu;
    EXPECT_EQ(fpuIn1000, 1000);
    // Integer-side paths exist and are comfortably short.
    double worstInt = 0;
    for (const auto &p : report)
        if (!p.isFpu)
            worstInt = std::max(worstInt, p.pathDelayPs);
    EXPECT_GT(worstInt, 0.0);
    EXPECT_LT(worstInt, 0.6 * core().clockPs());
}

TEST(FpuPipeline, ConversionUnitsHaveAmpleSlack)
{
    // Fig. 7: I2F/F2I never fail at the studied VR levels; their static
    // paths sit far below the VR20 failure threshold.
    circuit::VoltageModel vm;
    double threshold = core().clockPs() / vm.delayFactorAtReduction(0.20);
    EXPECT_LT(core().unit(FpuUnitKind::I2FD).worstStagePathPs(),
              threshold);
    EXPECT_LT(core().unit(FpuUnitKind::F2ID).worstStagePathPs(),
              threshold);
    // Single-precision ops (paper: no SP errors observed).
    EXPECT_LT(core().unit(FpuUnitKind::AddSubS).worstStagePathPs(),
              threshold);
    EXPECT_LT(core().unit(FpuUnitKind::MulS).worstStagePathPs(),
              threshold);
    EXPECT_LT(core().unit(FpuUnitKind::DivS).worstStagePathPs(),
              threshold);
}

TEST(FpuPipeline, TimingErrorsAppearUnderVoltageReduction)
{
    FpuCore c;
    circuit::VoltageModel vm;
    size_t nominal = c.addOperatingPoint(1.0);
    size_t vr20 = c.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    Rng rng(5);
    int nominalErrors = 0, vr20Errors = 0;
    const int N = 600;
    for (int t = 0; t < N; ++t) {
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 700 + rng.nextBounded(600);
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        uint64_t a = sign | (exp << 52) | man;
        exp = 700 + rng.nextBounded(600);
        man = rng.next() & ((1ULL << 52) - 1);
        uint64_t b = (rng.next() & (1ULL << 63)) | (exp << 52) | man;
        auto rn = c.execute(nominal, FpuOp::MulD, a, b);
        auto rv = c.execute(vr20, FpuOp::MulD, a, b);
        nominalErrors += rn.timingError;
        vr20Errors += rv.timingError;
        // The golden (settled) result is voltage-independent.
        EXPECT_EQ(rn.golden, rv.golden);
    }
    EXPECT_EQ(nominalErrors, 0);
    EXPECT_GT(vr20Errors, 0);
}

TEST(FpuPipeline, ErrorsAreMultiBit)
{
    // Fig. 5: timing errors flip multiple bits in most cases.
    FpuCore c;
    circuit::VoltageModel vm;
    size_t vr20 = c.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    Rng rng(6);
    int faulty = 0, multiBit = 0;
    for (int t = 0; t < 4000 && faulty < 25; ++t) {
        uint64_t a = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        uint64_t b = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        auto r = c.execute(vr20, FpuOp::MulD, a, b);
        if (r.errorMask != 0) {
            ++faulty;
            if (__builtin_popcountll(r.errorMask) > 1)
                ++multiBit;
        }
    }
    ASSERT_GT(faulty, 5);
    EXPECT_GT(multiBit * 2, faulty); // majority multi-bit
}

TEST(FpuPipeline, HistoryDependence)
{
    // The same operation can pass or fail depending on the previous
    // operation in the pipeline: reset changes outcomes.
    FpuCore c;
    circuit::VoltageModel vm;
    size_t vr20 = c.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    Rng rng(7);
    // Find an operand pair that errors after some predecessor.
    uint64_t prevA = 0, prevB = 0, curA = 0, curB = 0;
    bool found = false;
    for (int t = 0; t < 5000 && !found; ++t) {
        uint64_t a = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        uint64_t b = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        auto r = c.execute(vr20, FpuOp::MulD, a, b);
        if (r.timingError && prevA) {
            curA = a;
            curB = b;
            found = true;
        } else {
            prevA = a;
            prevB = b;
        }
    }
    ASSERT_TRUE(found);
    // Replaying (prev -> cur) reproduces the error deterministically...
    c.reset(vr20);
    c.execute(vr20, FpuOp::MulD, prevA, prevB);
    auto r1 = c.execute(vr20, FpuOp::MulD, curA, curB);
    EXPECT_TRUE(r1.timingError);
    // ...while cur with no transition (fresh pipeline) cannot fail.
    c.reset(vr20);
    auto r2 = c.execute(vr20, FpuOp::MulD, curA, curB);
    EXPECT_FALSE(r2.timingError);
}

TEST(FpuPipeline, DeterministicAcrossInstances)
{
    FpuCore c1, c2;
    circuit::VoltageModel vm;
    size_t p1 = c1.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    size_t p2 = c2.addOperatingPoint(vm.delayFactorAtReduction(0.20));
    Rng rng(8);
    for (int t = 0; t < 100; ++t) {
        uint64_t a = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        uint64_t b = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        auto r1 = c1.execute(p1, FpuOp::MulD, a, b);
        auto r2 = c2.execute(p2, FpuOp::MulD, a, b);
        EXPECT_EQ(r1.faulty, r2.faulty);
        EXPECT_EQ(r1.errorMask, r2.errorMask);
    }
}

TEST(FpuPipeline, ExactEngineAgreesOnSettledValues)
{
    FpuCore c;
    size_t exact = c.addOperatingPoint(1.0, /*exactEngine=*/true);
    Rng rng(9);
    for (int t = 0; t < 30; ++t) {
        uint64_t a = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        uint64_t b = (rng.next() & (1ULL << 63)) |
                     ((700 + rng.nextBounded(600)) << 52) |
                     (rng.next() & ((1ULL << 52) - 1));
        auto r = c.execute(exact, FpuOp::AddD, a, b);
        EXPECT_EQ(r.golden, sf::add64(a, b));
        EXPECT_FALSE(r.timingError); // nominal voltage
    }
}
