/**
 * Bit-exact equivalence of the gate-level FPU against the soft-float
 * reference model at the nominal operating point (where, by
 * construction, every path settles before capture).
 */

#include <gtest/gtest.h>

#include "fpu/fpu_core.hh"
#include "softfloat/softfloat.hh"
#include "util/rng.hh"

using namespace tea;
using namespace tea::fpu;

namespace {

/** Shared core: building the netlists once keeps the suite fast. */
FpuCore &
core()
{
    static FpuCore c;
    static size_t nominal = c.addOperatingPoint(1.0);
    (void)nominal;
    return c;
}

constexpr size_t kNominal = 0;

uint64_t
randomDouble(Rng &rng)
{
    // Mostly normal values in a wide exponent range, with a sprinkle of
    // specials.
    switch (rng.nextBounded(16)) {
      case 0: return 0;                          // +0
      case 1: return 0x8000000000000000ULL;      // -0
      case 2: return 0x7ff0000000000000ULL;      // +inf
      case 3: return 0xfff0000000000000ULL;      // -inf
      case 4: return sf::qnan64;                 // NaN
      case 5: return rng.next() & 0x000fffffffffffffULL; // subnormal
      default: {
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 400 + rng.nextBounded(1250);
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        return sign | (exp << 52) | man;
      }
    }
}

uint32_t
randomFloat(Rng &rng)
{
    switch (rng.nextBounded(16)) {
      case 0: return 0;
      case 1: return 0x80000000u;
      case 2: return 0x7f800000u;
      case 3: return 0xff800000u;
      case 4: return sf::qnan32;
      case 5: return static_cast<uint32_t>(rng.next()) & 0x007fffffu;
      default: {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 30 + static_cast<uint32_t>(rng.nextBounded(196));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        return sign | (exp << 23) | man;
      }
    }
}

uint8_t
packFlags(const sf::Flags &f)
{
    return static_cast<uint8_t>(f.invalid) |
           (static_cast<uint8_t>(f.divByZero) << 1) |
           (static_cast<uint8_t>(f.overflow) << 2) |
           (static_cast<uint8_t>(f.underflow) << 3) |
           (static_cast<uint8_t>(f.inexact) << 4);
}

} // namespace

TEST(FpuEquivalence, NominalHasNoTimingErrors)
{
    Rng rng(101);
    for (int t = 0; t < 200; ++t) {
        uint64_t a = randomDouble(rng), b = randomDouble(rng);
        auto r = core().execute(kNominal, FpuOp::MulD, a, b);
        EXPECT_FALSE(r.timingError);
        EXPECT_EQ(r.golden, r.faulty);
    }
}

struct BinOpCase
{
    FpuOp op;
    uint64_t (*ref)(uint64_t, uint64_t, sf::Flags *);
};

class FpuBinOpD : public ::testing::TestWithParam<BinOpCase>
{
};

TEST_P(FpuBinOpD, MatchesSoftFloat)
{
    auto [op, ref] = GetParam();
    Rng rng(7000 + static_cast<int>(op));
    for (int t = 0; t < 1500; ++t) {
        uint64_t a = randomDouble(rng), b = randomDouble(rng);
        sf::Flags fl;
        uint64_t expect = ref(a, b, &fl);
        auto r = core().execute(kNominal, op, a, b);
        ASSERT_EQ(r.golden, expect)
            << fpuOpName(op) << " a=0x" << std::hex << a << " b=0x" << b;
        ASSERT_EQ(r.goldenFlags, packFlags(fl))
            << fpuOpName(op) << " flags, a=0x" << std::hex << a << " b=0x"
            << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, FpuBinOpD,
    ::testing::Values(BinOpCase{FpuOp::AddD, sf::add64},
                      BinOpCase{FpuOp::SubD, sf::sub64},
                      BinOpCase{FpuOp::MulD, sf::mul64},
                      BinOpCase{FpuOp::DivD, sf::div64}),
    [](const auto &info) {
        switch (info.param.op) {
          case FpuOp::AddD: return "add";
          case FpuOp::SubD: return "sub";
          case FpuOp::MulD: return "mul";
          default: return info.param.op == FpuOp::DivD ? "div" : "x";
        }
    });

TEST(FpuEquivalence, I2FDMatchesSoftFloat)
{
    Rng rng(42);
    for (int t = 0; t < 2000; ++t) {
        int64_t v = static_cast<int64_t>(rng.next());
        if (t % 3 == 0)
            v = rng.nextRange(-100000, 100000);
        if (t == 0)
            v = 0;
        if (t == 1)
            v = INT64_MIN;
        sf::Flags fl;
        uint64_t expect = sf::i2f64(v, &fl);
        auto r = core().execute(kNominal, FpuOp::I2FD,
                                static_cast<uint64_t>(v));
        ASSERT_EQ(r.golden, expect) << "v=" << v;
        ASSERT_EQ(r.goldenFlags, packFlags(fl)) << "v=" << v;
    }
}

TEST(FpuEquivalence, F2IDMatchesSoftFloat)
{
    Rng rng(43);
    for (int t = 0; t < 2000; ++t) {
        uint64_t a = randomDouble(rng);
        if (t % 4 == 0) {
            // Bias toward convertible magnitudes.
            double mag = (rng.nextDouble() - 0.5) * 1e15;
            a = sf::fromDouble(mag);
        }
        sf::Flags fl;
        int64_t expect = sf::f2i64(a, &fl);
        auto r = core().execute(kNominal, FpuOp::F2ID, a);
        ASSERT_EQ(static_cast<int64_t>(r.golden), expect)
            << "a=0x" << std::hex << a;
        ASSERT_EQ(r.goldenFlags, packFlags(fl)) << "a=0x" << std::hex << a;
    }
}

TEST(FpuEquivalence, SinglePrecisionBinOps)
{
    Rng rng(44);
    struct Case
    {
        FpuOp op;
        uint32_t (*ref)(uint32_t, uint32_t, sf::Flags *);
    };
    const Case cases[] = {
        {FpuOp::AddS, sf::add32},
        {FpuOp::SubS, sf::sub32},
        {FpuOp::MulS, sf::mul32},
        {FpuOp::DivS, sf::div32},
    };
    for (const auto &c : cases) {
        for (int t = 0; t < 800; ++t) {
            uint32_t a = randomFloat(rng), b = randomFloat(rng);
            sf::Flags fl;
            uint32_t expect = c.ref(a, b, &fl);
            auto r = core().execute(kNominal, c.op, a, b);
            ASSERT_EQ(r.golden, expect)
                << fpuOpName(c.op) << " a=0x" << std::hex << a << " b=0x"
                << b;
            ASSERT_EQ(r.goldenFlags, packFlags(fl)) << fpuOpName(c.op);
        }
    }
}

TEST(FpuEquivalence, SinglePrecisionConversions)
{
    Rng rng(45);
    for (int t = 0; t < 1500; ++t) {
        auto v = static_cast<int32_t>(rng.next());
        if (t % 3 == 0)
            v = static_cast<int32_t>(rng.nextRange(-1000, 1000));
        sf::Flags fl;
        uint32_t expect = sf::i2f32(v, &fl);
        auto r = core().execute(kNominal, FpuOp::I2FS,
                                static_cast<uint32_t>(v));
        ASSERT_EQ(r.golden, expect) << "v=" << v;
        ASSERT_EQ(r.goldenFlags, packFlags(fl)) << "v=" << v;
    }
    for (int t = 0; t < 1500; ++t) {
        uint32_t a = randomFloat(rng);
        sf::Flags fl;
        int32_t expect = sf::f2i32(a, &fl);
        auto r = core().execute(kNominal, FpuOp::F2IS, a);
        ASSERT_EQ(static_cast<int32_t>(static_cast<uint32_t>(r.golden)),
                  expect)
            << "a=0x" << std::hex << a;
        ASSERT_EQ(r.goldenFlags, packFlags(fl)) << "a=0x" << std::hex << a;
    }
}

TEST(FpuEquivalence, DirectedCornerCases)
{
    auto d = [](double v) { return sf::fromDouble(v); };
    struct C
    {
        FpuOp op;
        uint64_t a, b;
    };
    const C cases[] = {
        {FpuOp::AddD, d(1.0), d(-1.0)},
        {FpuOp::AddD, d(1.0), d(1e-300)},
        {FpuOp::SubD, d(1.0), sf::fromDouble(1.0) + 1},
        {FpuOp::AddD, d(1.7e308), d(1.7e308)},
        {FpuOp::MulD, d(1e-200), d(1e-200)},
        {FpuOp::MulD, d(1e200), d(1e200)},
        {FpuOp::DivD, d(1.0), d(0.0)},
        {FpuOp::DivD, d(0.0), d(0.0)},
        {FpuOp::DivD, d(1.0), d(3.0)},
        {FpuOp::AddD, 0x7ff0000000000000ULL, 0xfff0000000000000ULL},
        {FpuOp::MulD, 0x7ff0000000000000ULL, 0},
        {FpuOp::SubD, 0x8000000000000000ULL, 0},
    };
    for (const auto &c : cases) {
        sf::Flags fl;
        uint64_t expect;
        switch (c.op) {
          case FpuOp::AddD: expect = sf::add64(c.a, c.b, &fl); break;
          case FpuOp::SubD: expect = sf::sub64(c.a, c.b, &fl); break;
          case FpuOp::MulD: expect = sf::mul64(c.a, c.b, &fl); break;
          default: expect = sf::div64(c.a, c.b, &fl); break;
        }
        auto r = core().execute(kNominal, c.op, c.a, c.b);
        EXPECT_EQ(r.golden, expect)
            << fpuOpName(c.op) << " a=0x" << std::hex << c.a << " b=0x"
            << c.b;
        EXPECT_EQ(r.goldenFlags, packFlags(fl)) << fpuOpName(c.op);
    }
}
