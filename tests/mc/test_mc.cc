/**
 * @file
 * The multi-core injection contract: the spawn/join/barrier ABI works
 * on both multi-core simulators (and faults deterministically when
 * misused), the cycle-level McSim agrees with the functional McFuncSim
 * on the threaded workloads, per-core injection plans land on their
 * target core only, the outcome-taxonomy refinement is consistent,
 * and an N-core campaign's journal is byte-identical across host
 * thread counts and through the fleet worker path (ctest -L tier1mc).
 *
 * The worker binary is injected at compile time (TEA_WORKER_BIN).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/journal.hh"
#include "core/results.hh"
#include "core/toolflow.hh"
#include "fleet/coordinator.hh"
#include "isa/asmbuilder.hh"
#include "isa/isa.hh"
#include "mc/mc_func_sim.hh"
#include "mc/mc_sim.hh"
#include "models/error_models.hh"
#include "util/fsatomic.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::mc;
using inject::InjectionCampaign;
using inject::McClass;

namespace {

namespace fs = std::filesystem;

/**
 * SPMD probe program: every core (main included) stores id+100 into
 * its slot, a barrier separates the writes from core 0's read-back,
 * workers halt, and core 0 joins then prints the slot sum.
 */
isa::Program
buildProbe()
{
    isa::AsmBuilder b("mc-probe");
    uint64_t slots = b.dataI64("slots", std::vector<int64_t>(
                                            isa::kMcMaxCores, 0));
    auto body = b.newLabel();
    auto workerHalt = b.newLabel();
    auto sumLoop = b.newLabel();
    auto sumDone = b.newLabel();
    auto spawnLoop = b.newLabel();
    auto spawnDone = b.newLabel();

    b.mcNumCores(21);
    b.laCode(22, body);
    b.li(11, 1);
    b.bind(spawnLoop);
    b.bge(11, 21, spawnDone);
    b.spawn(22);
    b.addi(11, 11, 1);
    b.j(spawnLoop);
    b.bind(spawnDone);

    b.bind(body);
    b.mcCoreId(22);
    b.mcNumCores(21);
    b.li(5, static_cast<int64_t>(slots));
    b.slli(6, 22, 3);
    b.add(6, 5, 6);
    b.addi(7, 22, 100);
    b.sd(7, 6, 0);
    b.barrier();
    b.bne(22, 0, workerHalt);

    b.join();
    b.li(10, 0); // sum
    b.li(11, 0); // index
    b.bind(sumLoop);
    b.bge(11, 21, sumDone);
    b.slli(6, 11, 3);
    b.add(6, 5, 6);
    b.ld(7, 6, 0);
    b.add(10, 10, 7);
    b.addi(11, 11, 1);
    b.j(sumLoop);
    b.bind(sumDone);
    b.printInt(10);
    b.halt();

    b.bind(workerHalt);
    b.halt();
    return b.build();
}

uint64_t
probeSum(unsigned cores)
{
    uint64_t sum = 0;
    for (unsigned k = 0; k < cores; ++k)
        sum += 100 + k;
    return sum;
}

std::vector<uint8_t>
outputBytes(const sim::Memory &mem, const workloads::Workload &w)
{
    std::vector<uint8_t> out;
    for (const auto &sym : w.outputSymbols) {
        auto blk = mem.readBlock(w.program.symbol(sym),
                                 w.program.symbolSize(sym));
        out.insert(out.end(), blk.begin(), blk.end());
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Spawn / join / barrier ABI
// ---------------------------------------------------------------------

TEST(McAbi, SpawnJoinBarrierOnBothSimulators)
{
    isa::Program prog = buildProbe();
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        McFuncSim::Config fcfg;
        fcfg.cores = cores;
        McFuncSim fsim(prog, fcfg);
        auto fr = fsim.run();
        ASSERT_EQ(fr.status, McFuncSim::Status::Halted)
            << cores << " cores, trap " << sim::trapName(fr.trap);
        ASSERT_EQ(fsim.console().size(), 1u);
        EXPECT_EQ(fsim.console()[0], probeSum(cores)) << cores;

        McConfig mcfg;
        mcfg.cores = cores;
        McSim msim(prog, mcfg);
        auto mr = msim.run(10'000'000);
        ASSERT_EQ(mr.status, McSim::Status::Halted)
            << cores << " cores, trap " << sim::trapName(mr.trap);
        ASSERT_EQ(msim.console().size(), 1u);
        EXPECT_EQ(msim.console()[0], probeSum(cores)) << cores;
        EXPECT_EQ(mr.committed, fr.instructions) << cores;
        EXPECT_EQ(mr.coh.spawns, cores - 1);
        if (cores > 1) {
            EXPECT_GE(mr.coh.barriers, 1u);
            EXPECT_GE(mr.coh.joins, 1u);
        }
        ASSERT_EQ(mr.perCoreCommitted.size(), cores);
        uint64_t total = 0;
        for (unsigned k = 0; k < cores; ++k) {
            EXPECT_GT(mr.perCoreCommitted[k], 0u)
                << "core " << k << " of " << cores;
            total += mr.perCoreCommitted[k];
        }
        EXPECT_EQ(total, mr.committed);
    }
}

TEST(McAbi, InvalidSpawnTargetIsSyncFault)
{
    isa::AsmBuilder b("mc-bad-spawn");
    b.li(5, static_cast<int64_t>(isa::kCodeBase) + 2); // misaligned
    b.spawn(5);
    b.halt();
    isa::Program prog = b.build();

    McFuncSim::Config fcfg;
    fcfg.cores = 2;
    McFuncSim fsim(prog, fcfg);
    auto fr = fsim.run();
    EXPECT_EQ(fr.status, McFuncSim::Status::Trapped);
    EXPECT_EQ(fr.trap, sim::TrapKind::SyncFault);
    EXPECT_EQ(fr.trapCore, 0);

    McConfig mcfg;
    mcfg.cores = 2;
    McSim msim(prog, mcfg);
    auto mr = msim.run(1'000'000);
    EXPECT_EQ(mr.status, McSim::Status::Crashed);
    EXPECT_EQ(mr.trap, sim::TrapKind::SyncFault);
    EXPECT_EQ(mr.trapCore, 0);
}

TEST(McAbi, SpawnWithNoParkedCoreIsSyncFault)
{
    // A 1-core machine has nothing to wake: the same program that
    // works at 2 cores faults deterministically at 1.
    isa::AsmBuilder b("mc-overspawn");
    auto worker = b.newLabel();
    b.laCode(5, worker);
    b.spawn(5);
    b.join();
    b.halt();
    b.bind(worker);
    b.halt();
    isa::Program prog = b.build();

    McFuncSim::Config ok;
    ok.cores = 2;
    McFuncSim fok(prog, ok);
    EXPECT_EQ(fok.run().status, McFuncSim::Status::Halted);

    McFuncSim::Config bad;
    bad.cores = 1;
    McFuncSim fbad(prog, bad);
    auto fr = fbad.run();
    EXPECT_EQ(fr.status, McFuncSim::Status::Trapped);
    EXPECT_EQ(fr.trap, sim::TrapKind::SyncFault);
}

TEST(McAbi, JoinBarrierMismatchDeadlocks)
{
    // Core 0 joins while its worker waits at a barrier core 0 never
    // reaches: no core can make progress. The functional simulator
    // detects the stall directly; the cycle-level one through its
    // bounded-progress watchdog.
    isa::AsmBuilder b("mc-deadlock");
    auto worker = b.newLabel();
    b.laCode(5, worker);
    b.spawn(5);
    b.join();
    b.halt();
    b.bind(worker);
    b.barrier();
    b.halt();
    isa::Program prog = b.build();

    McFuncSim::Config fcfg;
    fcfg.cores = 2;
    McFuncSim fsim(prog, fcfg);
    EXPECT_EQ(fsim.run().status, McFuncSim::Status::Deadlock);

    McConfig mcfg;
    mcfg.cores = 2;
    mcfg.deadlockWindow = 20'000;
    McSim msim(prog, mcfg);
    EXPECT_EQ(msim.run(10'000'000).status, McSim::Status::Deadlock);
}

// ---------------------------------------------------------------------
// Threaded workloads
// ---------------------------------------------------------------------

class McWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(McWorkloadTest, ThreadedFlagAndGoldenRun)
{
    EXPECT_TRUE(workloads::isThreadedWorkload(GetParam()));
    workloads::Workload w = workloads::buildWorkload(GetParam(), 1);
    EXPECT_TRUE(w.threaded);

    McFuncSim::Config fcfg;
    fcfg.cores = 2;
    McFuncSim fsim(w.program, fcfg);
    auto fr = fsim.run();
    ASSERT_EQ(fr.status, McFuncSim::Status::Halted)
        << "trap: " << sim::trapName(fr.trap);
    EXPECT_GT(fr.instructions, 10'000u);
    EXPECT_FALSE(fsim.console().empty());
    // Both cores executed real work, and FP work reached both.
    EXPECT_GT(fsim.instructions(0), 1000u);
    EXPECT_GT(fsim.instructions(1), 1000u);
    uint64_t fp1 = 0;
    for (size_t op = 0; op < isa::kNumOps; ++op)
        if (isa::isFpArith(static_cast<isa::Op>(op)))
            fp1 += fsim.opCount(1, static_cast<isa::Op>(op));
    EXPECT_GT(fp1, 100u) << "worker core saw no FP arithmetic";
}

TEST_P(McWorkloadTest, CycleSimMatchesFunctional)
{
    workloads::Workload w = workloads::buildWorkload(GetParam(), 1);
    for (unsigned cores : {1u, 2u, 3u}) {
        McFuncSim::Config fcfg;
        fcfg.cores = cores;
        McFuncSim fsim(w.program, fcfg);
        auto fr = fsim.run();
        ASSERT_EQ(fr.status, McFuncSim::Status::Halted) << cores;

        McConfig mcfg;
        mcfg.cores = cores;
        McSim msim(w.program, mcfg);
        auto mr = msim.run(200'000'000);
        ASSERT_EQ(mr.status, McSim::Status::Halted)
            << cores << " cores, trap " << sim::trapName(mr.trap);
        EXPECT_EQ(mr.committed, fr.instructions) << cores;
        EXPECT_EQ(msim.console(), fsim.console()) << cores;
        EXPECT_EQ(outputBytes(msim.memory(), w),
                  outputBytes(fsim.memory(), w))
            << cores;
    }
}

TEST_P(McWorkloadTest, DeterministicAcrossRebuilds)
{
    workloads::Workload w1 = workloads::buildWorkload(GetParam(), 1);
    workloads::Workload w2 = workloads::buildWorkload(GetParam(), 1);
    McConfig cfg;
    cfg.cores = 2;
    McSim s1(w1.program, cfg), s2(w2.program, cfg);
    auto r1 = s1.run(200'000'000);
    auto r2 = s2.run(200'000'000);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.committed, r2.committed);
    EXPECT_EQ(s1.console(), s2.console());
    EXPECT_EQ(outputBytes(s1.memory(), w1),
              outputBytes(s2.memory(), w2));
}

INSTANTIATE_TEST_SUITE_P(All, McWorkloadTest,
                         ::testing::Values("k-means-mt", "hotspot-mt"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-' || c == '_')
                                     c = 'X';
                             return n;
                         });

TEST(McWorkloads, SingleCoreWorkloadsAreNotThreaded)
{
    for (const auto &name : workloads::workloadNames())
        EXPECT_FALSE(workloads::isThreadedWorkload(name)) << name;
}

TEST(McWorkloads, CoherenceTrafficObserved)
{
    workloads::Workload w = workloads::buildWorkload("k-means-mt", 1);
    McConfig cfg;
    cfg.cores = 2;
    McSim sim(w.program, cfg);
    auto r = sim.run(200'000'000);
    ASSERT_EQ(r.status, McSim::Status::Halted);
    EXPECT_EQ(r.coh.spawns, 1u);
    EXPECT_EQ(r.coh.joins, 1u);
    EXPECT_GT(r.coh.barriers, 0u);
    EXPECT_GT(r.coh.l2Accesses, 0u);
    EXPECT_GT(r.coh.l2Misses, 0u);
    EXPECT_GT(r.coh.invalidations, 0u)
        << "shared centroids / partial sums never caused an invalidate";
}

// ---------------------------------------------------------------------
// Per-core injection targeting
// ---------------------------------------------------------------------

TEST(McInject, PlansTargetTheirCoreOnly)
{
    workloads::Workload w = workloads::buildWorkload("k-means-mt", 1);
    McFuncSim::Config fcfg;
    fcfg.cores = 2;
    McFuncSim fsim(w.program, fcfg);
    ASSERT_EQ(fsim.run().status, McFuncSim::Status::Halted);
    ASSERT_GT(fsim.opCount(1, isa::Op::FADD_D), 10u);

    // One low-order-bit flip on core 1's 5th committed FADD.
    sim::InjectionEvent e;
    e.kind = sim::InjectionEvent::Kind::FpOp;
    e.op = isa::fpuOpFor(isa::Op::FADD_D);
    e.index = 5;
    e.mask = 1;
    e.core = 1;
    std::vector<sim::InjectionPlan> plans(2);
    plans[1] = sim::InjectionPlan({e});

    McConfig cfg;
    cfg.cores = 2;
    McSim sim(w.program, cfg, plans);
    auto r = sim.run(200'000'000);
    EXPECT_EQ(r.injectionsApplied, 1u);
    ASSERT_EQ(r.perCoreInjected.size(), 2u);
    EXPECT_EQ(r.perCoreInjected[0], 0u);
    EXPECT_EQ(r.perCoreInjected[1], 1u);

    // The same event addressed to core 0 lands on core 0 instead.
    e.core = 0;
    std::vector<sim::InjectionPlan> plans0(2);
    plans0[0] = sim::InjectionPlan({e});
    McSim sim0(w.program, cfg, plans0);
    auto r0 = sim0.run(200'000'000);
    EXPECT_EQ(r0.injectionsApplied, 1u);
    EXPECT_EQ(r0.perCoreInjected[0], 1u);
    EXPECT_EQ(r0.perCoreInjected[1], 0u);
}

// ---------------------------------------------------------------------
// Campaign taxonomy and journal format
// ---------------------------------------------------------------------

TEST(McCampaign, TaxonomyRefinesBaseOutcomes)
{
    workloads::Workload w = workloads::buildWorkload("k-means-mt", 1);
    InjectionCampaign campaign(std::move(w));
    // ~1.5 injections per run: enough masked runs to see coherence
    // masking and enough corrupt ones to see both SDC flavours.
    models::DaModel model(0.00002);
    Rng rng(11);
    inject::CampaignResult res = campaign.run(model, 80, rng, nullptr);

    EXPECT_EQ(res.runs, 80u);
    EXPECT_EQ(res.engineFault, 0u);
    EXPECT_GT(res.injectedErrors, 0u);
    // Refinements never exceed — and SDC exactly partitions into —
    // their base classes.
    EXPECT_EQ(res.mcSdcSameCore + res.mcSdcCrossCore, res.sdc);
    EXPECT_LE(res.mcCoherenceMasked, res.masked);
    EXPECT_LE(res.mcSyncCrash, res.crash);
    EXPECT_LE(res.mcDeadlock, res.timeout);
    EXPECT_GT(res.sdc, 0u) << "elevated ER produced no SDC at all";
    EXPECT_GT(res.mcSdcCrossCore, 0u)
        << "no cross-core propagation in " << res.sdc << " SDCs";
    EXPECT_GT(res.mcCoherenceMasked, 0u)
        << "no overwrite-masked run in " << res.masked << " masked";
}

TEST(McCampaign, SingleCoreRunsRecordNone)
{
    workloads::Workload w = workloads::buildWorkload("k-means", 1);
    InjectionCampaign campaign(std::move(w));
    models::DaModel model(0.001);
    Rng rng(3);
    auto rec = campaign.executeOne(model, rng);
    EXPECT_EQ(rec.mcClass, McClass::None);
}

TEST(McCampaign, JournalRoundTripsMcClass)
{
    std::string dir = "/tmp/tea_mc_test_journal";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = dir + "/cell.jnl";
    InjectionCampaign::RunRecord rec;
    rec.outcome = inject::Outcome::SDC;
    rec.injected = 3;
    rec.committed = 12345;
    rec.mcClass = McClass::SdcCrossCore;
    {
        core::ShardJournal j(path);
        ASSERT_EQ(j.open("mc identity", false), 0u);
        j.append(7, rec);
    }
    core::ShardJournal j(path);
    ASSERT_EQ(j.open("mc identity", true), 1u);
    InjectionCampaign::RunRecord back;
    ASSERT_TRUE(j.tryReplay(7, back));
    EXPECT_EQ(back.outcome, inject::Outcome::SDC);
    EXPECT_EQ(back.mcClass, McClass::SdcCrossCore);
    EXPECT_EQ(back.committed, 12345u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Chaos determinism: journals byte-identical across REPRO_THREADS and
// through the fleet worker path
// ---------------------------------------------------------------------

namespace {

core::ToolflowOptions
mcTinyOptions(const std::string &cacheDir, unsigned threads)
{
    core::ToolflowOptions opt;
    opt.iaCountPerOp = 200;
    opt.waMaxOps = 500;
    opt.daSampleOps = 700;
    opt.runsPerCell = 6;
    opt.vrLevels = {0.20};
    opt.threads = threads;
    opt.mcCores = 2;
    opt.cacheDir = cacheDir;
    return opt;
}

/** Run the 3-model grid for k-means-mt; return each cell's journal
 * bytes (journals persist until the grid CSV caches them). */
std::vector<std::string>
runAndCaptureJournals(const core::ToolflowOptions &opt)
{
    core::GridSpec spec;
    spec.workloads = {"k-means-mt"};
    core::Toolflow tf(opt);
    std::vector<std::string> journals;
    for (const core::CellPlan &cp :
         core::planEvaluationGrid(opt, spec)) {
        core::CampaignCell cell = core::runGridCell(tf, cp, "");
        EXPECT_EQ(cell.result.runs,
                  static_cast<uint64_t>(opt.runsPerCell));
        std::string jp = core::cellJournalPath(opt, cp.workload,
                                               cp.model, cp.vrFrac);
        auto bytes = readFileToString(jp);
        EXPECT_TRUE(bytes.has_value()) << jp;
        journals.push_back(bytes.value_or(""));
        core::ShardJournal(jp).remove();
    }
    return journals;
}

} // namespace

TEST(McChaos, JournalsByteIdenticalAcrossThreadCounts)
{
    std::string dir = "/tmp/tea_mc_test_threads";
    fs::remove_all(dir);
    std::vector<std::string> ref =
        runAndCaptureJournals(mcTinyOptions(dir, 1));
    ASSERT_EQ(ref.size(), 3u);
    for (const auto &j : ref) {
        ASSERT_FALSE(j.empty());
        EXPECT_NE(j.find("cores=2"), std::string::npos)
            << "mc geometry missing from journal identity";
    }
    std::vector<std::string> par =
        runAndCaptureJournals(mcTinyOptions(dir, 4));
    ASSERT_EQ(par.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        ASSERT_EQ(ref[i].size(), par[i].size()) << "cell " << i;
        EXPECT_EQ(0, std::memcmp(ref[i].data(), par[i].data(),
                                 ref[i].size()))
            << "cell " << i
            << ": 4-thread journal differs from 1-thread";
    }
    fs::remove_all(dir);
}

TEST(McChaos, FleetWorkerPathMatchesInProcess)
{
    std::string dir = "/tmp/tea_mc_test_fleet";
    fs::remove_all(dir);
    core::ToolflowOptions opt = mcTinyOptions(dir, 1);
    core::GridSpec spec;
    spec.workloads = {"k-means-mt"};

    // In-process reference, then clear the grid CSV so the fleet run
    // regenerates it at the identical path.
    core::Toolflow tf(opt);
    core::EvaluationGrid ref = core::runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 3u);
    std::string csvPath = core::gridCachePath(opt);
    auto refCsv = readFileToString(csvPath);
    ASSERT_TRUE(refCsv.has_value());
    fs::remove(csvPath);
    for (const core::CellPlan &cp : core::planEvaluationGrid(opt, spec))
        fs::remove(core::cellManifestPath(opt, cp.workload, cp.model,
                                          cp.vrFrac));

    fleet::FleetOptions fopt;
    fopt.workers = 2;
    fopt.workerBin = TEA_WORKER_BIN;
    fopt.spoolDir = dir + "/spool";
    fopt.leaseMs = 3000;
    fopt.maxAttempts = 3;
    fopt.backoffMs = 50;
    fopt.pollMs = 10;
    core::EvaluationGrid grid = fleet::runFleetGrid(opt, fopt, spec);
    ASSERT_EQ(grid.cells.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        const auto &r = ref.cells[i].result;
        const auto &g = grid.cells[i].result;
        EXPECT_EQ(r.runs, g.runs) << i;
        EXPECT_EQ(r.masked, g.masked) << i;
        EXPECT_EQ(r.sdc, g.sdc) << i;
        EXPECT_EQ(r.crash, g.crash) << i;
        EXPECT_EQ(r.timeout, g.timeout) << i;
        // The mc refinement survives the done-file wire.
        EXPECT_EQ(r.mcCoherenceMasked, g.mcCoherenceMasked) << i;
        EXPECT_EQ(r.mcSdcSameCore, g.mcSdcSameCore) << i;
        EXPECT_EQ(r.mcSdcCrossCore, g.mcSdcCrossCore) << i;
        EXPECT_EQ(r.mcSyncCrash, g.mcSyncCrash) << i;
        EXPECT_EQ(r.mcDeadlock, g.mcDeadlock) << i;
    }
    auto fleetCsv = readFileToString(csvPath);
    ASSERT_TRUE(fleetCsv.has_value());
    EXPECT_EQ(*refCsv, *fleetCsv)
        << "fleet grid CSV must be byte-identical (mc columns "
           "included)";
    fs::remove_all(dir);
}

TEST(McChaos, CoreCountIsPartOfCellIdentity)
{
    core::ToolflowOptions a = mcTinyOptions("cache", 1);
    core::ToolflowOptions b = a;
    b.mcCores = 4;
    // Threaded cells must never share artifacts across mc geometries;
    // single-core cells must keep identical paths.
    EXPECT_NE(core::cellJournalPath(a, "k-means-mt",
                                    models::ModelKind::DA, 0.2),
              core::cellJournalPath(b, "k-means-mt",
                                    models::ModelKind::DA, 0.2));
    EXPECT_EQ(core::cellJournalPath(a, "k-means",
                                    models::ModelKind::DA, 0.2),
              core::cellJournalPath(b, "k-means",
                                    models::ModelKind::DA, 0.2));
}
