/**
 * The observability contract (ctest label tier1obs):
 *
 *  - counters/gauges/histograms are correct under the thread pool and
 *    dedup by (name, label);
 *  - the trace dump is well-formed Chrome trace_event JSON (checked
 *    with the in-tree parser);
 *  - run manifests round-trip through write/read;
 *  - and — the load-bearing one — campaign results are byte-identical
 *    with metrics + tracing armed vs. disabled.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/results.hh"
#include "inject/campaign.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::obs;

namespace {

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("tea_obs_test_") + name))
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
}

} // namespace

// ---- metrics registry ----------------------------------------------

TEST(Metrics, CounterCorrectUnderThreadPool)
{
    Registry &reg = Registry::global();
    Counter c = reg.counter("tea_test_pool_total", "", "test");
    uint64_t before = c.value();
    ThreadPool pool(4);
    pool.parallelFor(0, 1000, [&](uint64_t, unsigned) { c.inc(1); });
    EXPECT_EQ(c.value() - before, 1000u);
}

TEST(Metrics, CounterDedupsByNameAndLabel)
{
    Registry &reg = Registry::global();
    Counter a = reg.counter("tea_test_dedup_total", "k=\"v\"", "test");
    Counter b = reg.counter("tea_test_dedup_total", "k=\"v\"");
    Counter other = reg.counter("tea_test_dedup_total", "k=\"w\"");
    uint64_t beforeA = a.value(), beforeOther = other.value();
    a.inc(3);
    EXPECT_EQ(b.value() - beforeA, 3u); // same underlying cell
    EXPECT_EQ(other.value() - beforeOther, 0u); // distinct label
}

TEST(Metrics, GaugeHoldsLastValue)
{
    Gauge g = Registry::global().gauge("tea_test_gauge", "", "test");
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.set(-7);
    EXPECT_EQ(g.value(), -7);
}

TEST(Metrics, HistogramBucketsAndSumUnderThreadPool)
{
    obs::Histogram h = Registry::global().histogram(
        "tea_test_hist_ms", {1.0, 10.0, 100.0}, "", "test");
    uint64_t before = h.count();
    ThreadPool pool(4);
    // 250 x 0.5 (bucket 0), 250 x 5 (bucket 1), 250 x 50 (bucket 2),
    // 250 x 500 (overflow).
    const double vals[4] = {0.5, 5.0, 50.0, 500.0};
    pool.parallelFor(0, 1000, [&](uint64_t i, unsigned) {
        h.observe(vals[i % 4]);
    });
    EXPECT_EQ(h.count() - before, 1000u);
    EXPECT_GE(h.bucketCount(0), 250u);
    EXPECT_GE(h.bucketCount(1), 250u);
    EXPECT_GE(h.bucketCount(2), 250u);
    EXPECT_GE(h.bucketCount(3), 250u);
    EXPECT_NEAR(h.sum(), 250 * (0.5 + 5.0 + 50.0 + 500.0), 1.0);
}

TEST(Metrics, SnapshotIsWellFormedJson)
{
    Registry &reg = Registry::global();
    reg.counter("tea_test_snap_total", "", "snapshot test").inc(1);
    json::Value snap = reg.snapshot();
    auto reparsed = json::parse(snap.dump(2));
    ASSERT_TRUE(reparsed.has_value());
    const json::Value *schema = reparsed->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "tea-metrics-v1");
    const json::Value *metrics = reparsed->find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_GT(metrics->asArray().size(), 0u);
}

TEST(Metrics, PrometheusRenderingHasFamiliesAndHistogramSeries)
{
    Registry &reg = Registry::global();
    reg.counter("tea_test_prom_total", "", "prom test").inc(5);
    reg.histogram("tea_test_prom_ms", {1.0, 10.0}, "", "prom test")
        .observe(3.0);
    std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# HELP tea_test_prom_total"), std::string::npos);
    EXPECT_NE(text.find("# TYPE tea_test_prom_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tea_test_prom_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("tea_test_prom_ms_bucket{le=\"10\"}"),
              std::string::npos);
    EXPECT_NE(text.find("tea_test_prom_ms_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(text.find("tea_test_prom_ms_sum"), std::string::npos);
    EXPECT_NE(text.find("tea_test_prom_ms_count"), std::string::npos);
}

// ---- phase tracer --------------------------------------------------

TEST(Trace, DumpIsWellFormedChromeTraceJson)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(1024);
    tracer.clear();
    {
        Span outer("outer.phase", "toolflow");
        ThreadPool pool(4);
        pool.parallelFor(0, 64, [&](uint64_t i, unsigned) {
            Span inner("inner.run", "inject",
                       static_cast<int64_t>(i));
        });
    }
    std::string path = tmpPath("trace.json");
    ASSERT_TRUE(tracer.dumpTo(path));
    auto parsed = json::parse(slurp(path));
    ASSERT_TRUE(parsed.has_value());
    const json::Value *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->asArray().size(), 65u); // 64 inner + 1 outer
    for (const json::Value &e : events->asArray()) {
        const json::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_EQ(ph->asString(), "X");
        EXPECT_NE(e.find("name"), nullptr);
        EXPECT_NE(e.find("ts"), nullptr);
        EXPECT_NE(e.find("dur"), nullptr);
        EXPECT_NE(e.find("tid"), nullptr);
    }
    EXPECT_EQ(tracer.dropped(), 0u);
    std::filesystem::remove(path);
}

TEST(Trace, RingOverwritesAndCountsDrops)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(16);
    tracer.clear();
    for (int i = 0; i < 40; ++i)
        Span s("span", "test");
    EXPECT_EQ(tracer.recorded(), 40u);
    EXPECT_EQ(tracer.dropped(), 24u);
    std::string path = tmpPath("trace_ring.json");
    ASSERT_TRUE(tracer.dumpTo(path));
    auto parsed = json::parse(slurp(path));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("traceEvents")->asArray().size(), 16u);
    std::filesystem::remove(path);
}

// ---- run manifests -------------------------------------------------

TEST(Manifest, RoundTripsThroughWriteAndRead)
{
    RunManifest m;
    m.workload = "sobel";
    m.model = "WA";
    m.modelDetail = "WA(sobel)";
    m.vrFrac = 0.20;
    m.seed = 7;
    m.runsPerCell = 60;
    m.workloadScale = 2;
    m.threads = 4;
    m.identity = "workload=sobel model=WA(sobel) vr=0.2000";
    m.journalPath = "/tmp/jnl";
    m.gridCsvPath = "/tmp/grid.csv";
    m.runs = 60;
    m.masked = 40;
    m.sdc = 10;
    m.crash = 6;
    m.timeout = 3;
    m.engineFault = 1;
    m.retries = 2;
    m.replayedRuns = 30;
    m.injectedErrors = 1234;
    m.committedInstructions = 987654;
    m.interrupted = false;

    std::string path = tmpPath("manifest.json");
    ASSERT_TRUE(writeRunManifest(path, m));
    auto back = readRunManifest(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->workload, m.workload);
    EXPECT_EQ(back->model, m.model);
    EXPECT_EQ(back->modelDetail, m.modelDetail);
    EXPECT_DOUBLE_EQ(back->vrFrac, m.vrFrac);
    EXPECT_EQ(back->seed, m.seed);
    EXPECT_EQ(back->runsPerCell, m.runsPerCell);
    EXPECT_EQ(back->workloadScale, m.workloadScale);
    EXPECT_EQ(back->threads, m.threads);
    EXPECT_EQ(back->identity, m.identity);
    EXPECT_EQ(back->journalPath, m.journalPath);
    EXPECT_EQ(back->gridCsvPath, m.gridCsvPath);
    EXPECT_EQ(back->runs, m.runs);
    EXPECT_EQ(back->masked, m.masked);
    EXPECT_EQ(back->sdc, m.sdc);
    EXPECT_EQ(back->crash, m.crash);
    EXPECT_EQ(back->timeout, m.timeout);
    EXPECT_EQ(back->engineFault, m.engineFault);
    EXPECT_EQ(back->retries, m.retries);
    EXPECT_EQ(back->replayedRuns, m.replayedRuns);
    EXPECT_EQ(back->injectedErrors, m.injectedErrors);
    EXPECT_EQ(back->committedInstructions, m.committedInstructions);
    EXPECT_EQ(back->interrupted, m.interrupted);
    // writeRunManifest stamps provenance that was left empty.
    EXPECT_FALSE(back->gitDescribe.empty());
    EXPECT_FALSE(back->wallTime.empty());
    EXPECT_FALSE(back->metrics.isNull());
    std::filesystem::remove(path);
}

TEST(Manifest, RejectsWrongSchema)
{
    std::string path = tmpPath("bad_manifest.json");
    {
        std::ofstream out(path);
        out << "{\"schema\": \"tea-manifest-v999\", "
               "\"workload\": \"x\"}\n";
    }
    EXPECT_FALSE(readRunManifest(path).has_value());
    std::filesystem::remove(path);
}

// ---- determinism: obs on vs off ------------------------------------

TEST(Determinism, CampaignBytesIdenticalWithObsOnVsOff)
{
    inject::InjectionCampaign campaign(
        workloads::buildWorkload("sobel", 1));
    models::DaModel model(5e-3);
    ThreadPool pool(4);

    auto runOnce = [&] {
        Rng rng(42);
        return campaign.run(model, 8, rng, &pool);
    };

    // Pass 1 runs with the process's ambient obs state; pass 2 with
    // the tracer freshly armed and the metric registry hot. Identical
    // bytes prove observability is observation-only. (The stronger
    // obs-subsystem-absent baseline was established against the
    // pre-obs tree when this layer landed.)
    Tracer::global().clear();
    auto off = runOnce();

    Tracer::global().enable(4096);
    auto on = runOnce();

    core::EvaluationGrid a, b;
    a.cells.push_back({"sobel", models::ModelKind::DA, 0.2, off});
    b.cells.push_back({"sobel", models::ModelKind::DA, 0.2, on});
    std::string pa = tmpPath("grid_off.csv");
    std::string pb = tmpPath("grid_on.csv");
    core::saveGrid(pa, a);
    core::saveGrid(pb, b);
    EXPECT_EQ(slurp(pa), slurp(pb));
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}
