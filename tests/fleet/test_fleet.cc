/**
 * @file
 * The fleet contract: lease-based multi-process campaigns are
 * byte-identical to the single-process grid — for any worker count,
 * under SIGKILL chaos, and through the shard-journal merge — and a
 * unit that repeatedly kills workers is quarantined as poison instead
 * of stalling the campaign.
 *
 * The worker binary under test is injected at compile time
 * (TEA_WORKER_BIN, from $<TARGET_FILE:tea-worker>).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hh"
#include "core/results.hh"
#include "core/toolflow.hh"
#include "fleet/coordinator.hh"
#include "fleet/queue.hh"
#include "fleet/workunit.hh"
#include "util/fsatomic.hh"

using namespace tea;
using namespace tea::core;
using namespace tea::fleet;
using inject::InjectionCampaign;

namespace {

namespace fs = std::filesystem;

/** Tiny-but-real campaign: 2 workloads x 3 models x 1 VR, 6 runs. */
ToolflowOptions
tinyOptions(const std::string &cacheDir)
{
    ToolflowOptions opt;
    opt.iaCountPerOp = 200;
    opt.waMaxOps = 500;
    opt.daSampleOps = 700;
    opt.runsPerCell = 6;
    opt.vrLevels = {0.20};
    opt.threads = 1; // in-order journals; manifests match workers'
    opt.cacheDir = cacheDir;
    return opt;
}

GridSpec
tinySpec()
{
    GridSpec spec;
    spec.workloads = {"sobel", "cg"};
    return spec;
}

FleetOptions
tinyFleet(int workers, const std::string &spool)
{
    FleetOptions fopt;
    fopt.workers = workers;
    fopt.workerBin = TEA_WORKER_BIN;
    fopt.spoolDir = spool;
    fopt.leaseMs = 3000;
    fopt.maxAttempts = 3;
    fopt.backoffMs = 50;
    fopt.pollMs = 10;
    return fopt;
}

/** Set an env var for one scope (the workers inherit it). */
struct ScopedEnv
{
    std::string name;
    ScopedEnv(const char *n, const std::string &value) : name(n)
    {
        setenv(n, value.c_str(), 1);
    }
    ~ScopedEnv() { unsetenv(name.c_str()); }
};

/**
 * Strip the fields the manifest schema declares as observation-only
 * (`written` wall time and the trailing `metrics` snapshot); with
 * `dropReplayed`, also the replay provenance a crash-resumed cell
 * legitimately reports differently.
 */
std::string
normalizeManifest(std::string text, bool dropReplayed = false)
{
    size_t metrics = text.find("\"metrics\"");
    if (metrics != std::string::npos)
        text.resize(metrics);
    std::istringstream in(text);
    std::string line, out;
    while (std::getline(in, line)) {
        if (line.find("\"written\"") != std::string::npos)
            continue;
        if (dropReplayed &&
            line.find("\"replayedRuns\"") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

/** Grid CSV + per-cell manifest bytes, removed after capture so the
 * next campaign in the same cache dir regenerates them at identical
 * paths (characterization caches stay warm). */
struct Artifacts
{
    std::string csv;
    std::vector<std::string> manifests;
};

Artifacts
captureAndClear(const ToolflowOptions &opt, const GridSpec &spec)
{
    Artifacts a;
    std::string csvPath = gridCachePath(opt);
    a.csv = readFileToString(csvPath).value_or("");
    fs::remove(csvPath);
    for (const CellPlan &cp : planEvaluationGrid(opt, spec)) {
        std::string mp =
            cellManifestPath(opt, cp.workload, cp.model, cp.vrFrac);
        a.manifests.push_back(readFileToString(mp).value_or(""));
        fs::remove(mp);
    }
    return a;
}

void
expectSameResults(const EvaluationGrid &ref, const EvaluationGrid &got)
{
    ASSERT_EQ(ref.cells.size(), got.cells.size());
    for (size_t i = 0; i < ref.cells.size(); ++i) {
        const auto &r = ref.cells[i].result;
        const auto &g = got.cells[i].result;
        EXPECT_EQ(ref.cells[i].workload, got.cells[i].workload);
        EXPECT_EQ(ref.cells[i].model, got.cells[i].model);
        EXPECT_EQ(r.runs, g.runs) << "cell " << i;
        EXPECT_EQ(r.masked, g.masked) << "cell " << i;
        EXPECT_EQ(r.sdc, g.sdc) << "cell " << i;
        EXPECT_EQ(r.crash, g.crash) << "cell " << i;
        EXPECT_EQ(r.timeout, g.timeout) << "cell " << i;
        EXPECT_EQ(r.engineFault, g.engineFault) << "cell " << i;
        EXPECT_EQ(r.injectedErrors, g.injectedErrors) << "cell " << i;
        EXPECT_EQ(r.committedInstructions, g.committedInstructions)
            << "cell " << i;
        if (std::isnan(r.avm()))
            EXPECT_TRUE(std::isnan(g.avm())) << "cell " << i;
        else
            EXPECT_DOUBLE_EQ(r.avm(), g.avm()) << "cell " << i;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Work-unit / plan / done-file serialization
// ---------------------------------------------------------------------

TEST(FleetFormats, WorkUnitRoundTrip)
{
    WorkUnit u;
    u.id = 42;
    u.kind = WorkUnit::Kind::Range;
    u.cell = 7;
    u.lo = 512;
    u.hi = 1024;
    auto parsed = WorkUnit::parse(u.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id, 42u);
    EXPECT_EQ(parsed->kind, WorkUnit::Kind::Range);
    EXPECT_EQ(parsed->cell, 7u);
    EXPECT_EQ(parsed->lo, 512u);
    EXPECT_EQ(parsed->hi, 1024u);
}

TEST(FleetFormats, SealRejectsDamage)
{
    WorkUnit u;
    u.id = 3;
    std::string good = u.serialize();
    EXPECT_TRUE(WorkUnit::parse(good).has_value());
    // Flip one payload byte: the CRC seal must reject it.
    std::string bad = good;
    bad[bad.find("unit 3") + 5] = '4';
    EXPECT_FALSE(WorkUnit::parse(bad).has_value());
    // Truncated mid-seal.
    EXPECT_FALSE(WorkUnit::parse(good.substr(0, good.size() - 4))
                     .has_value());
    EXPECT_FALSE(WorkUnit::parse("").has_value());
}

TEST(FleetFormats, PlanRoundTripIsExact)
{
    FleetPlan plan;
    plan.opt = tinyOptions("/tmp/some cache dir");
    plan.opt.seed = 0xdeadbeefULL;
    plan.opt.ciTarget = 0.012345678901234567;
    plan.opt.vrLevels = {0.15, 0.2000000000000001};
    plan.spec = tinySpec();
    plan.spec.useCache = false;
    plan.leaseMs = 777;
    auto parsed = FleetPlan::parse(plan.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->opt.seed, plan.opt.seed);
    EXPECT_EQ(parsed->opt.runsPerCell, plan.opt.runsPerCell);
    EXPECT_EQ(parsed->opt.cacheDir, plan.opt.cacheDir);
    EXPECT_EQ(parsed->opt.threads, plan.opt.threads);
    // Doubles must round-trip bit-exactly (%.17g) — the whole
    // byte-identity story rides on workers seeing the same plan.
    EXPECT_EQ(parsed->opt.ciTarget, plan.opt.ciTarget);
    ASSERT_EQ(parsed->opt.vrLevels.size(), 2u);
    EXPECT_EQ(parsed->opt.vrLevels[0], plan.opt.vrLevels[0]);
    EXPECT_EQ(parsed->opt.vrLevels[1], plan.opt.vrLevels[1]);
    EXPECT_EQ(parsed->spec.workloads, plan.spec.workloads);
    EXPECT_FALSE(parsed->spec.useCache);
    EXPECT_EQ(parsed->leaseMs, 777);
}

TEST(FleetFormats, UnitResultRoundTrip)
{
    UnitResult r;
    r.unit = 9;
    r.fresh = 4;
    r.result.runs = 6;
    r.result.masked = 3;
    r.result.sdc = 1;
    r.result.crash = 1;
    r.result.timeout = 1;
    r.result.injectedErrors = 17;
    r.result.committedInstructions = 54321;
    auto parsed = UnitResult::parse(r.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->unit, 9u);
    EXPECT_EQ(parsed->fresh, 4u);
    EXPECT_EQ(parsed->result.runs, 6u);
    EXPECT_EQ(parsed->result.masked, 3u);
    EXPECT_EQ(parsed->result.committedInstructions, 54321u);
}

// ---------------------------------------------------------------------
// Lease protocol
// ---------------------------------------------------------------------

TEST(FleetQueue, ClaimIsExclusive)
{
    std::string dir = "/tmp/tea_fleet_test_queue";
    fs::remove_all(dir);
    WorkQueue q(dir);
    WorkUnit u;
    u.id = 0;
    ASSERT_TRUE(q.publish(FleetPlan{tinyOptions(dir), tinySpec()},
                          {u}));
    EXPECT_TRUE(q.claim(0, 111));
    EXPECT_FALSE(q.claim(0, 222)) << "second claimant must lose";
    auto lease = q.loadLease(0);
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->pid, 111);

    // Renewal moves the heartbeat and keeps the lease present.
    int64_t beat0 = lease->beat;
    EXPECT_TRUE(q.renew(0, 111));
    lease = q.loadLease(0);
    ASSERT_TRUE(lease.has_value());
    EXPECT_GE(lease->beat, beat0);

    // A zombie must not release its successor's lease.
    EXPECT_FALSE(q.releaseIfOwner(0, 222));
    EXPECT_TRUE(q.loadLease(0).has_value());
    EXPECT_TRUE(q.releaseIfOwner(0, 111));
    EXPECT_FALSE(q.loadLease(0).has_value());
    EXPECT_TRUE(q.claim(0, 222)) << "released lease is claimable";

    // Tries and poison round-trip.
    EXPECT_EQ(q.tries(0), 0);
    q.setTries(0, 2);
    EXPECT_EQ(q.tries(0), 2);
    EXPECT_FALSE(q.isPoisoned(0));
    EXPECT_TRUE(q.poison(0));
    EXPECT_TRUE(q.isPoisoned(0));
    fs::remove_all(dir);
}

TEST(FleetQueue, RepublishRejectsStaleCampaignState)
{
    std::string dir = "/tmp/tea_fleet_test_stale";
    fs::remove_all(dir);
    WorkQueue q(dir);
    FleetPlan planA{tinyOptions(dir), tinySpec()};
    WorkUnit u0, u1;
    u0.id = 0;
    u1.id = 1;
    u1.cell = 1;
    ASSERT_TRUE(q.publish(planA, {u0, u1}));
    UnitResult done;
    done.unit = 0;
    done.result.runs = 6;
    ASSERT_TRUE(q.markDone(done));
    q.setTries(1, 1);
    ASSERT_TRUE(q.poison(1));

    // Byte-identical re-publish is a resume: state survives.
    ASSERT_TRUE(q.publish(planA, {u0, u1}));
    EXPECT_TRUE(q.isDone(0));
    EXPECT_TRUE(q.isPoisoned(1));
    EXPECT_EQ(q.tries(1), 1);

    // A different campaign (other seed) into the same spool: its
    // done/tries/poison describe other work and must be wiped, not
    // silently spliced into the new grid.
    FleetPlan planB = planA;
    planB.opt.seed += 1;
    ASSERT_TRUE(q.publish(planB, {u0, u1}));
    EXPECT_FALSE(q.isDone(0));
    EXPECT_FALSE(q.isPoisoned(1));
    EXPECT_EQ(q.tries(1), 0);
    ASSERT_TRUE(q.loadUnit(0).has_value());
    ASSERT_TRUE(q.loadUnit(1).has_value());

    // Same plan, different decomposition (e.g. another shard size):
    // a unit whose bytes changed voids its recorded state, and units
    // beyond the new count disappear from the workers' sweep.
    ASSERT_TRUE(q.markDone(done));
    WorkUnit r0 = u0;
    r0.kind = WorkUnit::Kind::Range;
    r0.lo = 0;
    r0.hi = 3;
    ASSERT_TRUE(q.publish(planB, {r0}));
    EXPECT_FALSE(q.isDone(0));
    EXPECT_EQ(q.listUnits(), std::vector<uint64_t>{0});
    auto reloaded = q.loadUnit(0);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(reloaded->kind, WorkUnit::Kind::Range);
    EXPECT_EQ(reloaded->hi, 3u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Shard-journal merge: bytes equal a single-threaded whole-cell run
// ---------------------------------------------------------------------

TEST(FleetShards, MergedJournalIsByteIdentical)
{
    std::string dir = "/tmp/tea_fleet_test_shards";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ToolflowOptions opt = tinyOptions(dir);
    opt.runsPerCell = 8;
    GridSpec spec;
    spec.workloads = {"sobel"};
    std::vector<CellPlan> cells = planEvaluationGrid(opt, spec);
    const CellPlan &cp = cells[0]; // sobel / DA

    // Reference: the whole cell on one thread — runGridCell leaves
    // its journal on disk, appended in run-index order.
    Toolflow tf(opt);
    CampaignCell ref = runGridCell(tf, cp, "");
    std::string jpath =
        cellJournalPath(opt, cp.workload, cp.model, cp.vrFrac);
    auto refJournal = readFileToString(jpath);
    ASSERT_TRUE(refJournal.has_value());
    ShardJournal(jpath).remove();

    // The same cell as two run-range shards, as fleet workers would
    // execute them (fresh Rng from the plan state for each).
    auto model = cellModel(tf, cp);
    std::string identity =
        cellIdentity(opt, cp.workload, *model, cp.vrFrac);
    auto &campaign = tf.campaign(cp.workload);
    std::vector<std::string> shardPaths = {dir + "/shard0.jnl",
                                           dir + "/shard1.jnl"};
    uint64_t splits[][2] = {{0, 3}, {3, 8}};
    for (int s = 0; s < 2; ++s) {
        ShardJournal sj(shardPaths[s]);
        ASSERT_EQ(sj.open(identity, true), 0u);
        InjectionCampaign::RunOptions ro;
        ro.pool = &tf.pool();
        ro.onComplete =
            [&sj](uint64_t i,
                  const InjectionCampaign::RunRecord &rec) {
                sj.append(i, rec);
            };
        Rng rng = Rng::fromState(cp.rngState);
        EXPECT_EQ(campaign.runRange(*model, splits[s][0], splits[s][1],
                                    rng, ro),
                  splits[s][1] - splits[s][0]);
    }

    // Coordinator-style merge: records from all shards, re-appended
    // into the canonical journal in run-index order.
    std::map<uint64_t, ShardJournal::RunRecord> merged;
    for (const auto &p : shardPaths) {
        ShardJournal sj(p);
        EXPECT_GT(sj.open(identity, true), 0u);
        for (const auto &[idx, rec] : sj.records())
            merged.emplace(idx, rec);
    }
    EXPECT_EQ(merged.size(), 8u);
    {
        ShardJournal canonical(jpath);
        canonical.open(identity, false);
        for (const auto &[idx, rec] : merged)
            canonical.append(idx, rec);
    }
    auto mergedJournal = readFileToString(jpath);
    ASSERT_TRUE(mergedJournal.has_value());
    EXPECT_EQ(*refJournal, *mergedJournal)
        << "merged shard journal must be byte-identical to the "
           "single-threaded whole-cell journal";

    // And replaying the merged journal reproduces the cell exactly.
    ToolflowOptions resumeOpt = opt;
    resumeOpt.resume = true;
    Toolflow tf2(resumeOpt);
    CampaignCell replayed = runGridCell(tf2, cp, "");
    EXPECT_EQ(replayed.result.runs, ref.result.runs);
    EXPECT_EQ(replayed.result.masked, ref.result.masked);
    EXPECT_EQ(replayed.result.sdc, ref.result.sdc);
    EXPECT_EQ(replayed.result.injectedErrors,
              ref.result.injectedErrors);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// End-to-end: N workers == 1 process, byte for byte
// ---------------------------------------------------------------------

TEST(FleetGrid, ByteIdenticalAcrossWorkerCounts)
{
    std::string dir = "/tmp/tea_fleet_test_e2e";
    fs::remove_all(dir);
    ToolflowOptions opt = tinyOptions(dir);
    GridSpec spec = tinySpec();

    // Single-process reference; capture grid CSV + manifests, then
    // clear them so each fleet run regenerates at identical paths
    // (characterization caches stay warm and shared).
    Toolflow tf(opt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 6u);
    Artifacts refArt = captureAndClear(opt, spec);
    ASSERT_FALSE(refArt.csv.empty());

    for (int workers : {1, 2, 4}) {
        EvaluationGrid grid = runFleetGrid(
            opt, tinyFleet(workers, dir + "/spool" +
                                        std::to_string(workers)),
            spec);
        expectSameResults(ref, grid);
        Artifacts art = captureAndClear(opt, spec);
        EXPECT_EQ(refArt.csv, art.csv)
            << workers << "-worker grid CSV must be byte-identical";
        ASSERT_EQ(refArt.manifests.size(), art.manifests.size());
        for (size_t i = 0; i < art.manifests.size(); ++i) {
            ASSERT_FALSE(art.manifests[i].empty())
                << "missing manifest " << i << " at " << workers
                << " workers";
            EXPECT_EQ(normalizeManifest(refArt.manifests[i]),
                      normalizeManifest(art.manifests[i]))
                << "manifest " << i << " at " << workers << " workers";
        }
    }
    fs::remove_all(dir);
}

TEST(FleetGrid, ChaosSigkillRecoversByteIdentical)
{
    std::string dir = "/tmp/tea_fleet_test_chaos";
    fs::remove_all(dir);
    ToolflowOptions opt = tinyOptions(dir);
    GridSpec spec = tinySpec();

    Toolflow tf(opt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    Artifacts refArt = captureAndClear(opt, spec);

    // Every unit's first attempt SIGKILLs its worker after 2 fresh
    // runs; reissued leases must resume the journals and finish.
    EvaluationGrid grid;
    {
        ScopedEnv chaos("TEA_FLEET_TEST_CRASH_RUNS", "2");
        grid = runFleetGrid(opt, tinyFleet(2, dir + "/spool"), spec);
    }
    expectSameResults(ref, grid);
    Artifacts art = captureAndClear(opt, spec);
    EXPECT_EQ(refArt.csv, art.csv)
        << "post-chaos grid CSV must be byte-identical";
    ASSERT_EQ(refArt.manifests.size(), art.manifests.size());
    for (size_t i = 0; i < art.manifests.size(); ++i) {
        ASSERT_FALSE(art.manifests[i].empty());
        // replayedRuns legitimately records the crash-resume replays;
        // everything else must match the uninterrupted reference.
        EXPECT_EQ(normalizeManifest(refArt.manifests[i], true),
                  normalizeManifest(art.manifests[i], true))
            << "manifest " << i;
    }
    fs::remove_all(dir);
}

TEST(FleetGrid, ShardedCellsMatchReference)
{
    std::string dir = "/tmp/tea_fleet_test_sharded";
    fs::remove_all(dir);
    ToolflowOptions opt = tinyOptions(dir);
    GridSpec spec;
    spec.workloads = {"sobel"};

    Toolflow tf(opt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 3u);
    Artifacts refArt = captureAndClear(opt, spec);

    // 3-run shards: each 6-run cell becomes two Range units whose
    // journals the coordinator merges and replays.
    FleetOptions fopt = tinyFleet(2, dir + "/spool");
    fopt.shardRuns = 3;
    EvaluationGrid grid = runFleetGrid(opt, fopt, spec);
    expectSameResults(ref, grid);
    Artifacts art = captureAndClear(opt, spec);
    EXPECT_EQ(refArt.csv, art.csv);
    fs::remove_all(dir);
}

TEST(FleetGrid, ImportanceSampledGridIsByteIdentical)
{
    // REPRO_IS grids must keep the fleet contract: the surrogate is a
    // pure function of (seed, corpus, VR levels) so every worker
    // trains or cache-loads identical weights, per-site proposals
    // derive from the shared trace, and the weighted columns in the
    // grid CSV merge bit-exactly — including through 3-run shards,
    // whose journals carry each run's log weight verbatim.
    std::string dir = "/tmp/tea_fleet_test_is";
    fs::remove_all(dir);
    ToolflowOptions opt = tinyOptions(dir);
    opt.isEnable = true;
    opt.isBoost = 2.0;
    opt.isMaxTilted = 1e9;   // full tilt: nontrivial weights merge
    opt.isCorpusPerOp = 200; // keep surrogate training sub-second
    GridSpec spec;
    spec.workloads = {"sobel"};

    Toolflow tf(opt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 3u);
    // IA and WA cells sample the tilted proposal; DA stays plain.
    EXPECT_TRUE(ref.cells[1].result.weightedModel);
    EXPECT_TRUE(ref.cells[2].result.weightedModel);
    EXPECT_FALSE(ref.cells[0].result.weightedModel);
    EXPECT_GT(ref.cells[1].result.weightSum, 0.0);
    Artifacts refArt = captureAndClear(opt, spec);
    ASSERT_FALSE(refArt.csv.empty());
    EXPECT_NE(refArt.csv.find(",1,"), std::string::npos);

    for (int workers : {1, 2}) {
        FleetOptions fopt =
            tinyFleet(workers, dir + "/spool" + std::to_string(workers));
        if (workers == 2)
            fopt.shardRuns = 3; // exercise the weighted journal merge
        EvaluationGrid grid = runFleetGrid(opt, fopt, spec);
        expectSameResults(ref, grid);
        for (size_t i = 0; i < ref.cells.size(); ++i) {
            const auto &r = ref.cells[i].result;
            const auto &g = grid.cells[i].result;
            EXPECT_EQ(0, std::memcmp(&r.weightSum, &g.weightSum,
                                     sizeof(double)))
                << "cell " << i << " at " << workers << " workers";
            EXPECT_EQ(0, std::memcmp(&r.weightUnsafe, &g.weightUnsafe,
                                     sizeof(double)))
                << "cell " << i << " at " << workers << " workers";
            EXPECT_EQ(0, std::memcmp(&r.weightSqSum, &g.weightSqSum,
                                     sizeof(double)))
                << "cell " << i << " at " << workers << " workers";
            EXPECT_EQ(0,
                      std::memcmp(&r.weightUnsafeSqSum,
                                  &g.weightUnsafeSqSum,
                                  sizeof(double)))
                << "cell " << i << " at " << workers << " workers";
        }
        Artifacts art = captureAndClear(opt, spec);
        EXPECT_EQ(refArt.csv, art.csv)
            << workers << "-worker IS grid CSV must be byte-identical";
    }
    fs::remove_all(dir);
}

TEST(FleetGrid, PoisonUnitDegradesToEngineFault)
{
    std::string dir = "/tmp/tea_fleet_test_poison";
    fs::remove_all(dir);
    ToolflowOptions opt = tinyOptions(dir);
    GridSpec spec;
    spec.workloads = {"sobel"};

    FleetOptions fopt = tinyFleet(2, dir + "/spool");
    fopt.maxAttempts = 2;
    EvaluationGrid grid;
    {
        // Unit 1 (sobel / IA-model) kills every worker that claims it.
        ScopedEnv poison("TEA_FLEET_TEST_POISON_UNIT", "1");
        grid = runFleetGrid(opt, fopt, spec);
    }
    // The campaign completed — three cells, no stall.
    ASSERT_EQ(grid.cells.size(), 3u);
    const auto &bad = grid.cells[1].result;
    EXPECT_EQ(bad.runs, static_cast<uint64_t>(opt.runsPerCell));
    EXPECT_EQ(bad.engineFault, bad.runs)
        << "poisoned cell must degrade to all-EngineFault";
    EXPECT_EQ(bad.classified(), 0u);
    EXPECT_TRUE(std::isnan(bad.avm()))
        << "a poisoned cell must not masquerade as AVM=0";
    EXPECT_DOUBLE_EQ(bad.fraction(inject::Outcome::EngineFault), 1.0);
    // The healthy neighbours completed normally.
    EXPECT_EQ(grid.cells[0].result.engineFault, 0u);
    EXPECT_EQ(grid.cells[2].result.engineFault, 0u);
    EXPECT_EQ(grid.cells[0].result.runs,
              static_cast<uint64_t>(opt.runsPerCell));
    // The quarantine marker is on disk for the post-mortem.
    WorkQueue q(dir + "/spool");
    EXPECT_TRUE(q.isPoisoned(1));
    EXPECT_FALSE(q.isPoisoned(0));
    fs::remove_all(dir);
}
