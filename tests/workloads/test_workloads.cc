/**
 * End-to-end checks for the seven evaluated workloads: golden runs halt
 * cleanly, produce FP activity of the expected mix, are deterministic,
 * and behave identically on the functional and OoO models.
 */

#include <gtest/gtest.h>

#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::workloads;
using namespace tea::sim;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, GoldenRunHalts)
{
    Workload w = buildWorkload(GetParam(), 1);
    FuncSim sim(w.program);
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Halted)
        << "trap: " << trapName(r.trap);
    EXPECT_GT(r.instructions, 10000u) << "workload suspiciously small";
    EXPECT_LT(r.instructions, 5'000'000u);
    EXPECT_GT(sim.fpArithCount(), 1000u);
}

TEST_P(WorkloadTest, Deterministic)
{
    Workload w1 = buildWorkload(GetParam(), 7);
    Workload w2 = buildWorkload(GetParam(), 7);
    FuncSim s1(w1.program), s2(w2.program);
    auto r1 = s1.run();
    auto r2 = s2.run();
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(s1.console(), s2.console());
    for (const auto &sym : w1.outputSymbols) {
        EXPECT_EQ(s1.memory().readBlock(w1.program.symbol(sym),
                                        w1.program.symbolSize(sym)),
                  s2.memory().readBlock(w2.program.symbol(sym),
                                        w2.program.symbolSize(sym)));
    }
}

TEST_P(WorkloadTest, SeedChangesOutput)
{
    Workload w1 = buildWorkload(GetParam(), 1);
    Workload w2 = buildWorkload(GetParam(), 2);
    FuncSim s1(w1.program), s2(w2.program);
    s1.run();
    s2.run();
    EXPECT_NE(s1.console(), s2.console());
}

TEST_P(WorkloadTest, OooMatchesFunctional)
{
    Workload w = buildWorkload(GetParam(), 3);
    FuncSim fsim(w.program);
    auto fr = fsim.run();
    ASSERT_EQ(fr.status, FuncSim::Status::Halted);

    OooSim osim(w.program);
    auto orr = osim.run(50'000'000);
    ASSERT_EQ(orr.status, OooSim::Status::Halted);
    EXPECT_EQ(orr.committed, fr.instructions);
    EXPECT_EQ(osim.console(), fsim.console());
    for (const auto &sym : w.outputSymbols) {
        EXPECT_EQ(osim.memory().readBlock(w.program.symbol(sym),
                                          w.program.symbolSize(sym)),
                  fsim.memory().readBlock(w.program.symbol(sym),
                                          w.program.symbolSize(sym)))
            << sym;
    }
    // IPC sanity for an OoO core.
    double ipc = static_cast<double>(orr.committed) /
                 static_cast<double>(orr.cycles);
    EXPECT_GT(ipc, 0.1);
    EXPECT_LT(ipc, 2.01);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-' || c == '_')
                                     c = 'X';
                             return n;
                         });

TEST(Workloads, VerificationBenchmarksPass)
{
    // cg, is and mg self-verify; the golden run must report PASS.
    for (const char *name : {"cg", "is", "mg"}) {
        Workload w = buildWorkload(name, 1);
        FuncSim sim(w.program);
        auto r = sim.run();
        ASSERT_EQ(r.status, FuncSim::Status::Halted) << name;
        ASSERT_FALSE(sim.console().empty()) << name;
        EXPECT_EQ(sim.console()[0], 1u) << name << " verification failed";
    }
}

TEST(Workloads, ExpectedInstructionMix)
{
    // srad is the div-heavy workload; is uses conversions heavily;
    // k-means uses i2f for centroid counts.
    {
        Workload w = buildWorkload("srad_v1", 1);
        FuncSim sim(w.program);
        sim.run();
        EXPECT_GT(sim.opCount(isa::Op::FDIV_D), 1000u);
    }
    {
        Workload w = buildWorkload("is", 1);
        FuncSim sim(w.program);
        sim.run();
        EXPECT_GT(sim.opCount(isa::Op::FCVT_L_D), 5000u);
        EXPECT_GT(sim.opCount(isa::Op::FMUL_D), 10000u);
    }
    {
        Workload w = buildWorkload("k-means", 1);
        FuncSim sim(w.program);
        sim.run();
        EXPECT_GT(sim.opCount(isa::Op::FCVT_D_L), 10u);
        EXPECT_GT(sim.opCount(isa::Op::FDIV_D), 10u);
    }
}

TEST(Workloads, TableIIMetadata)
{
    for (const auto &name : workloadNames()) {
        Workload w = buildWorkload(name, 1);
        EXPECT_EQ(w.name, name);
        EXPECT_FALSE(w.inputDesc.empty());
        EXPECT_FALSE(w.classification.empty());
        EXPECT_FALSE(w.outputSymbols.empty());
        for (const auto &sym : w.outputSymbols)
            EXPECT_GT(w.program.symbolSize(sym), 0u) << name << ":" << sym;
    }
}

TEST(Workloads, ScaleGrowsWork)
{
    Workload w1 = buildWorkload("hotspot", 1, 1);
    Workload w2 = buildWorkload("hotspot", 1, 2);
    FuncSim s1(w1.program), s2(w2.program);
    auto r1 = s1.run();
    auto r2 = s2.run();
    ASSERT_EQ(r2.status, FuncSim::Status::Halted);
    EXPECT_GT(r2.instructions, 3 * r1.instructions);
}
