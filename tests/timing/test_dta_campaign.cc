#include <gtest/gtest.h>

#include "circuit/celllib.hh"
#include "timing/dta_campaign.hh"

using namespace tea;
using namespace tea::timing;
using fpu::FpuOp;

namespace {

fpu::FpuCore &
core()
{
    static fpu::FpuCore c;
    return c;
}

size_t
vr20Point()
{
    static size_t p = core().addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    return p;
}

size_t
nominalPoint()
{
    static size_t p = core().addOperatingPoint(1.0);
    return p;
}

} // namespace

TEST(DtaCampaign, NominalIsErrorFree)
{
    Rng rng(1);
    DtaCampaign c(core(), nominalPoint());
    for (int i = 0; i < 500; ++i) {
        uint64_t a, b;
        randomOperands(FpuOp::MulD, rng, a, b);
        c.execute(FpuOp::MulD, a, b);
    }
    EXPECT_EQ(c.stats().of(FpuOp::MulD).total, 500u);
    EXPECT_EQ(c.stats().of(FpuOp::MulD).faulty, 0u);
    EXPECT_EQ(c.stats().errorRatio(), 0.0);
}

TEST(DtaCampaign, Vr20MulShowsErrors)
{
    Rng rng(2);
    DtaCampaign c(core(), vr20Point());
    for (int i = 0; i < 3000; ++i) {
        uint64_t a, b;
        randomOperands(FpuOp::MulD, rng, a, b);
        c.execute(FpuOp::MulD, a, b);
    }
    const auto &s = c.stats().of(FpuOp::MulD);
    EXPECT_GT(s.faulty, 0u);
    EXPECT_EQ(s.maskPool.size(), s.faulty);
    // Per-bit BERs sum to >= error ratio (multi-bit flips).
    double berSum = 0;
    for (unsigned b = 0; b < 64; ++b)
        berSum += s.ber(b);
    EXPECT_GE(berSum, s.errorRatio());
}

TEST(DtaCampaign, ConversionsErrorFreeAtVr20)
{
    // Fig. 7: I2F / F2I never fail at the studied levels.
    Rng rng(3);
    DtaCampaign c(core(), vr20Point());
    for (int i = 0; i < 1000; ++i) {
        uint64_t a, b;
        randomOperands(FpuOp::I2FD, rng, a, b);
        c.execute(FpuOp::I2FD, a, b);
        randomOperands(FpuOp::F2ID, rng, a, b);
        c.execute(FpuOp::F2ID, a, b);
    }
    EXPECT_EQ(c.stats().of(FpuOp::I2FD).faulty, 0u);
    EXPECT_EQ(c.stats().of(FpuOp::F2ID).faulty, 0u);
}

TEST(DtaCampaign, SinglePrecisionErrorFree)
{
    Rng rng(4);
    DtaCampaign c(core(), vr20Point());
    for (int i = 0; i < 800; ++i) {
        for (FpuOp op : {FpuOp::AddS, FpuOp::SubS, FpuOp::MulS,
                         FpuOp::DivS}) {
            uint64_t a, b;
            randomOperands(op, rng, a, b);
            c.execute(op, a, b);
        }
    }
    for (FpuOp op :
         {FpuOp::AddS, FpuOp::SubS, FpuOp::MulS, FpuOp::DivS})
        EXPECT_EQ(c.stats().of(op).faulty, 0u) << fpu::fpuOpName(op);
}

TEST(DtaCampaign, FlipCountHistogramMultiBit)
{
    // Fig. 5: timing errors mostly flip multiple bits.
    Rng rng(5);
    DtaCampaign c(core(), vr20Point());
    for (int i = 0; i < 6000; ++i) {
        uint64_t a, b;
        randomOperands(FpuOp::MulD, rng, a, b);
        c.execute(FpuOp::MulD, a, b);
        randomOperands(FpuOp::DivD, rng, a, b);
        c.execute(FpuOp::DivD, a, b);
    }
    auto hist = c.stats().flipCountHistogram(16);
    uint64_t single = hist[1];
    uint64_t multi = 0;
    for (size_t i = 2; i < hist.size(); ++i)
        multi += hist[i];
    ASSERT_GT(single + multi, 20u);
    EXPECT_GT(multi, single);
}

TEST(DtaCampaign, TraceCampaignSamplesEvenly)
{
    std::vector<sim::FpTraceEntry> trace;
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        uint64_t a, b;
        randomOperands(FpuOp::AddD, rng, a, b);
        trace.push_back({FpuOp::AddD, a, b});
    }
    auto stats = runTraceCampaign(core(), nominalPoint(), trace, 2000);
    EXPECT_GE(stats.of(FpuOp::AddD).total, 1900u);
    EXPECT_LE(stats.of(FpuOp::AddD).total, 2100u);

    // Short traces replay fully.
    trace.resize(500);
    auto stats2 = runTraceCampaign(core(), nominalPoint(), trace, 2000);
    EXPECT_EQ(stats2.of(FpuOp::AddD).total, 500u);
}

TEST(DtaCampaign, StatsMergeAndAggregates)
{
    OpErrorStats a, b;
    a.total = 10;
    a.faulty = 2;
    a.bitErrors[5] = 2;
    a.maskPool = {0x20, 0x20};
    b.total = 30;
    b.faulty = 3;
    b.bitErrors[5] = 1;
    b.bitErrors[7] = 2;
    b.maskPool = {0x80, 0xa0, 0x20};
    a.merge(b);
    EXPECT_EQ(a.total, 40u);
    EXPECT_EQ(a.faulty, 5u);
    EXPECT_EQ(a.bitErrors[5], 3u);
    EXPECT_DOUBLE_EQ(a.errorRatio(), 5.0 / 40.0);
    EXPECT_EQ(a.maskPool.size(), 5u);
}
