/**
 * @file
 * The fault-containment and durability contract: CRC32/Expected
 * primitives, watchdog cancellation and deadlines, hardened option
 * parsing, integrity-checked caches with quarantine, EngineFault
 * containment of throwing error models, and bit-identical
 * interrupt/resume through the shard journal.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/journal.hh"
#include "core/results.hh"
#include "core/toolflow.hh"
#include "inject/campaign.hh"
#include "isa/asmbuilder.hh"
#include "models/error_models.hh"
#include "sim/ooo_sim.hh"
#include "util/crc32.hh"
#include "util/expected.hh"
#include "util/logging.hh"
#include "util/watchdog.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::core;
using inject::InjectionCampaign;
using inject::Outcome;
using isa::AsmBuilder;
using fpu::FpuOp;

namespace {

/** Suppress expected warn() noise for a scope. */
struct Quiet
{
    Quiet() { setQuiet(true); }
    ~Quiet() { setQuiet(false); }
};

isa::Program
spinProgram()
{
    AsmBuilder b("spin");
    auto loop = b.newLabel();
    b.bind(loop);
    b.j(loop);
    return b.build();
}

timing::CampaignStats
aggressiveStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100;
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    auto &div = stats.of(FpuOp::DivD);
    div.total = 1000;
    div.faulty = 50;
    div.maskPool = {0x7ff8000000000000ULL, 0x3ff0000000000000ULL};
    return stats;
}

/** An error model whose planner always throws. */
class ThrowingModel final : public models::ErrorModel
{
  public:
    models::ModelKind kind() const override
    {
        return models::ModelKind::DA;
    }
    std::string describe() const override { return "throwing"; }
    std::vector<sim::InjectionEvent>
    plan(const models::ProgramProfile &, Rng &) const override
    {
        throw std::runtime_error("planner bug");
    }
    double expectedErrors(const models::ProgramProfile &) const override
    {
        return 0;
    }
};

/**
 * Throws on every even-numbered plan() call. Driven single-threaded,
 * each run's attempt 0 faults and its retry succeeds.
 */
class FlakyModel final : public models::ErrorModel
{
  public:
    models::ModelKind kind() const override
    {
        return models::ModelKind::DA;
    }
    std::string describe() const override { return "flaky"; }
    std::vector<sim::InjectionEvent>
    plan(const models::ProgramProfile &, Rng &) const override
    {
        if (calls_.fetch_add(1) % 2 == 0)
            throw std::runtime_error("transient");
        return {};
    }
    double expectedErrors(const models::ProgramProfile &) const override
    {
        return 0;
    }

  private:
    mutable std::atomic<int> calls_{0};
};

void
expectSameAggregate(const inject::CampaignResult &a,
                    const inject::CampaignResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.timeout, b.timeout);
    EXPECT_EQ(a.engineFault, b.engineFault);
    EXPECT_EQ(a.injectedErrors, b.injectedErrors);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    EXPECT_EQ(a.wrongPathInjections, b.wrongPathInjections);
}

} // namespace

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(Crc32, KnownAnswerAndChaining)
{
    // The standard CRC-32 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    // Chaining across a split matches a single pass.
    uint32_t first = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, first), 0xCBF43926u);
    EXPECT_NE(crc32("123456788", 9), crc32("123456789", 9));
}

TEST(Expected, ValueAndErrorAlternatives)
{
    Expected<int> v(42);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_EQ(v.take(), 42);

    Expected<int> e(
        makeError(ErrorCode::CacheCorrupt, "bad byte at %d", 7));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, ErrorCode::CacheCorrupt);
    EXPECT_NE(e.error().message.find("bad byte at 7"),
              std::string::npos);
    EXPECT_NE(e.error().describe().find("CacheCorrupt"),
              std::string::npos);

    Expected<void> ok;
    EXPECT_TRUE(ok.ok());
    Expected<void> bad(makeError(ErrorCode::IoError, "disk gone"));
    EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, CancellationStopsTheSimulator)
{
    CancelToken token;
    token.cancel();
    Watchdog wd(&token);
    sim::OooSim sim(spinProgram());
    auto res = sim.run(100'000'000, &wd);
    EXPECT_EQ(res.status, sim::OooSim::Status::Interrupted);
    EXPECT_EQ(res.stop, Watchdog::Stop::Cancelled);
    // Cut off immediately, not after the cycle budget.
    EXPECT_LT(res.cycles, 0x2000u);
}

TEST(Watchdog, DeadlineStopsASlowRun)
{
    Watchdog wd(nullptr, 30); // 30 ms for an infinite loop
    sim::OooSim sim(spinProgram());
    auto res = sim.run(~0ULL, &wd);
    EXPECT_EQ(res.status, sim::OooSim::Status::Interrupted);
    EXPECT_EQ(res.stop, Watchdog::Stop::Deadline);
}

TEST(Watchdog, CancellationWinsARaceWithTheDeadline)
{
    // When a shutdown lands while the deadline has also expired, the
    // verdict matters: Deadline records the run as an EngineFault,
    // Cancelled drops it. The poll order pins cancellation as the
    // winner so a Ctrl-C during a slow run never fabricates a fault.
    CancelToken token;
    Watchdog wd(&token, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(wd.poll(), Watchdog::Stop::Deadline);
    token.cancel(); // both conditions now hold
    EXPECT_EQ(wd.poll(), Watchdog::Stop::Cancelled);
    EXPECT_EQ(wd.poll(), Watchdog::Stop::Cancelled) << "stable verdict";
}

TEST(Watchdog, CancelledRunNeverDoubleCountsAsDeadlineFault)
{
    // Campaign-level regression for the same race: with cancellation
    // requested and a 1 ms per-run deadline both cutting runs off, no
    // run may leak into the aggregate as a spurious EngineFault — the
    // campaign simply stops as interrupted.
    InjectionCampaign campaign(workloads::buildWorkload("sobel", 1));
    models::WaModel model("hot", aggressiveStats());
    CancelToken token;
    token.cancel();
    ThreadPool pool(2);
    InjectionCampaign::RunOptions opts;
    opts.pool = &pool;
    opts.cancel = &token;
    opts.runDeadlineMs = 1;
    Rng rng(7);
    auto res = campaign.run(model, 4, rng, opts);
    EXPECT_TRUE(res.interrupted);
    EXPECT_EQ(res.runs, 0u);
    EXPECT_EQ(res.engineFault, 0u)
        << "a cancelled run must be dropped, not recorded as a "
           "deadline EngineFault";
}

TEST(Watchdog, NoStopConditionsMeansNone)
{
    CancelToken token;
    Watchdog wd(&token, 0);
    EXPECT_EQ(wd.poll(), Watchdog::Stop::None);
    token.cancel();
    EXPECT_EQ(wd.poll(), Watchdog::Stop::Cancelled);
    token.reset();
    EXPECT_EQ(wd.poll(), Watchdog::Stop::None);
}

// ---------------------------------------------------------------------
// Hardened environment parsing
// ---------------------------------------------------------------------

TEST(OptionsFromEnv, RejectsAndClampsMalformedValues)
{
    Quiet q;
    setenv("REPRO_SEED", "banana", 1);
    setenv("REPRO_RUNS", "12abc", 1);
    setenv("REPRO_RUN_DEADLINE_MS", "oops", 1);
    auto opt = optionsFromEnv();
    ToolflowOptions defaults;
    EXPECT_EQ(opt.seed, defaults.seed);
    EXPECT_EQ(opt.runsPerCell, defaults.runsPerCell);
    EXPECT_EQ(opt.runDeadlineMs, 0);

    setenv("REPRO_RUNS", "-5", 1);
    EXPECT_EQ(optionsFromEnv().runsPerCell, 1);
    setenv("REPRO_RUN_DEADLINE_MS", "-100", 1);
    EXPECT_EQ(optionsFromEnv().runDeadlineMs, 0);

    setenv("REPRO_SEED", "0x10", 1);
    setenv("REPRO_RUNS", "250", 1);
    setenv("REPRO_RUN_DEADLINE_MS", "1500", 1);
    setenv("REPRO_RESUME", "1", 1);
    auto good = optionsFromEnv();
    EXPECT_EQ(good.seed, 16u);
    EXPECT_EQ(good.runsPerCell, 250);
    EXPECT_EQ(good.runDeadlineMs, 1500);
    EXPECT_TRUE(good.resume);

    unsetenv("REPRO_SEED");
    unsetenv("REPRO_RUNS");
    unsetenv("REPRO_RUN_DEADLINE_MS");
    unsetenv("REPRO_RESUME");
}

TEST(CacheTag, SanitizesAndNeverCollidesOnLongNames)
{
    std::string tag = Toolflow::cacheTag("wa", "has/slash es", 5);
    EXPECT_EQ(tag.find('/'), std::string::npos);
    EXPECT_EQ(tag.find(' '), std::string::npos);
    EXPECT_EQ(tag, "wa_has_slash_es_n5");

    // Two long names sharing a 60-char prefix must not collide the way
    // truncation would.
    std::string base(60, 'x');
    std::string a = Toolflow::cacheTag("wa", base + "alpha", 7);
    std::string b = Toolflow::cacheTag("wa", base + "beta", 7);
    EXPECT_NE(a, b);
    EXPECT_LT(a.size(), 64u);
    EXPECT_LT(b.size(), 64u);
}

// ---------------------------------------------------------------------
// Cache integrity
// ---------------------------------------------------------------------

TEST(CacheIntegrity, DetectsTruncationAndBitRot)
{
    auto stats = aggressiveStats();
    std::string path = "/tmp/tea_test_robust_stats.txt";
    ASSERT_TRUE(models::saveCampaignStats(path, stats));

    timing::CampaignStats loaded;
    ASSERT_EQ(models::loadCampaignStats(path, loaded),
              models::CacheLoad::Loaded);
    EXPECT_EQ(loaded.of(FpuOp::MulD).maskPool,
              stats.of(FpuOp::MulD).maskPool);

    // Truncation (a torn write) is Corrupt, not a parse of garbage.
    std::string full;
    {
        std::ifstream in(path);
        full.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out(path, std::ios::trunc);
        out << full.substr(0, full.size() / 2);
    }
    EXPECT_EQ(models::loadCampaignStats(path, loaded),
              models::CacheLoad::Corrupt);

    // A single flipped byte in the body is Corrupt too.
    {
        std::ofstream out(path, std::ios::trunc);
        std::string flipped = full;
        flipped[flipped.size() - 2] ^= 0x01;
        out << flipped;
    }
    EXPECT_EQ(models::loadCampaignStats(path, loaded),
              models::CacheLoad::Corrupt);

    EXPECT_EQ(models::loadCampaignStats("/tmp/tea_no_such_file", loaded),
              models::CacheLoad::Missing);
    std::remove(path.c_str());
}

TEST(CacheIntegrity, ToolflowQuarantinesAndRegenerates)
{
    Quiet q;
    std::string dir = "/tmp/tea_test_robust_cache";
    std::filesystem::remove_all(dir);
    ToolflowOptions opt;
    opt.iaCountPerOp = 50;
    opt.cacheDir = dir;
    opt.vrLevels = {0.20};
    {
        Toolflow tf(opt);
        EXPECT_EQ(tf.iaStats(0.20).totalOps(), 50u * fpu::kNumFpuOps);
    }
    // Exactly one stats file; flip one byte in its body.
    std::string statsFile;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".stats")
            statsFile = e.path().string();
    ASSERT_FALSE(statsFile.empty());
    {
        std::fstream f(statsFile, std::ios::in | std::ios::out);
        f.seekp(-3, std::ios::end);
        f.put('!');
    }
    // A fresh toolflow must detect the damage, quarantine the file,
    // and regenerate identical statistics.
    Toolflow tf2(opt);
    EXPECT_EQ(tf2.iaStats(0.20).totalOps(), 50u * fpu::kNumFpuOps);
    EXPECT_TRUE(std::filesystem::exists(statsFile + ".bad"));
    timing::CampaignStats reloaded;
    EXPECT_EQ(models::loadCampaignStats(statsFile, reloaded),
              models::CacheLoad::Loaded);
    std::filesystem::remove_all(dir);
}

TEST(CacheIntegrity, QuarantineClaimsNumberedSlotsThenDegrades)
{
    Quiet q;
    namespace fs = std::filesystem;
    std::string dir = "/tmp/tea_test_robust_quarantine";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = dir + "/x.stats";
    auto put = [&](const std::string &text) {
        std::ofstream(path, std::ios::trunc) << text;
    };
    auto slurp = [](const std::string &p) {
        std::ifstream in(p);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    // First capture claims .bad; recorrupted regenerations claim
    // .bad2 ... .bad9 without ever overwriting the original evidence.
    put("first rot");
    EXPECT_TRUE(Toolflow::quarantineCache(path));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_EQ(slurp(path + ".bad"), "first rot");
    put("second rot");
    EXPECT_TRUE(Toolflow::quarantineCache(path));
    EXPECT_EQ(slurp(path + ".bad2"), "second rot");
    EXPECT_EQ(slurp(path + ".bad"), "first rot")
        << "later rot must never overwrite the first capture";
    for (int i = 3; i <= 9; ++i) {
        put("rot");
        EXPECT_TRUE(Toolflow::quarantineCache(path)) << "slot " << i;
        EXPECT_TRUE(fs::exists(path + ".bad" + std::to_string(i)));
    }

    // All nine slots taken: graceful degradation — report failure and
    // leave the corrupt file in place to be regenerated over.
    put("tenth rot");
    EXPECT_FALSE(Toolflow::quarantineCache(path));
    EXPECT_EQ(slurp(path), "tenth rot");

    // A source that vanished (raced with another process) fails every
    // rename and must report failure instead of aborting.
    EXPECT_FALSE(Toolflow::quarantineCache(dir + "/never_existed"));
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Run-level containment
// ---------------------------------------------------------------------

TEST(Containment, ThrowingModelNeverAbortsAndNeverSkewsAvm)
{
    Quiet q;
    InjectionCampaign campaign(workloads::buildWorkload("sobel", 1));
    ThrowingModel model;
    ThreadPool pool(2);
    InjectionCampaign::RunOptions opts;
    opts.pool = &pool;
    Rng rng(7);
    auto res = campaign.run(model, 6, rng, opts);
    EXPECT_EQ(res.runs, 6u);
    EXPECT_EQ(res.engineFault, 6u);
    EXPECT_EQ(res.classified(), 0u);
    // No classified runs: the AVM is unknown, not a perfect zero.
    EXPECT_TRUE(std::isnan(res.avm()));
    EXPECT_TRUE(std::isnan(res.fraction(Outcome::Masked)));
    EXPECT_EQ(res.retries,
              6u * (inject::kDefaultRunAttempts - 1));
    EXPECT_DOUBLE_EQ(res.fraction(Outcome::EngineFault), 1.0);
    EXPECT_FALSE(res.interrupted);
}

TEST(Containment, TransientFaultRetriesDeterministically)
{
    InjectionCampaign campaign(workloads::buildWorkload("sobel", 1));
    FlakyModel model;
    // Single-threaded so the even/odd call pattern maps exactly to
    // (attempt 0 faults, attempt 1 succeeds) for every run.
    ThreadPool pool(1);
    InjectionCampaign::RunOptions opts;
    opts.pool = &pool;
    Rng rng(7);
    auto res = campaign.run(model, 4, rng, opts);
    EXPECT_EQ(res.runs, 4u);
    EXPECT_EQ(res.engineFault, 0u);
    EXPECT_EQ(res.retries, 4u);
    // An empty plan injects nothing, so every run masks.
    EXPECT_EQ(res.masked, 4u);
}

TEST(Containment, EngineFaultExcludedFromAvmArithmetic)
{
    inject::CampaignResult r;
    r.runs = 10;
    r.engineFault = 2;
    r.masked = 6;
    r.sdc = 2;
    EXPECT_EQ(r.classified(), 8u);
    EXPECT_DOUBLE_EQ(r.avm(), 0.25);
    EXPECT_DOUBLE_EQ(r.fraction(Outcome::SDC), 0.25);
    EXPECT_DOUBLE_EQ(r.fraction(Outcome::EngineFault), 0.2);
}

TEST(Containment, CreateFactoryReportsGoldenRunFailure)
{
    workloads::Workload w;
    w.name = "crasher";
    AsmBuilder b("crasher");
    b.li(5, 0x7f000000);
    b.ld(6, 5, 0);
    b.halt();
    w.program = b.build();
    auto res = InjectionCampaign::create(std::move(w));
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrorCode::GoldenRunFailed);

    auto good =
        InjectionCampaign::create(workloads::buildWorkload("sobel", 1));
    ASSERT_TRUE(good.ok());
    EXPECT_GT(good.value()->goldenCycles(), 0u);
}

// ---------------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------------

TEST(Journal, InterruptedCampaignResumesBitIdentically)
{
    InjectionCampaign campaign(workloads::buildWorkload("sobel", 1));
    models::WaModel model("hot", aggressiveStats());
    constexpr int kRuns = 8;

    // Reference: one uninterrupted campaign.
    inject::CampaignResult ref;
    {
        ThreadPool pool(2);
        Rng rng(7);
        ref = campaign.run(model, kRuns, rng, &pool);
    }
    EXPECT_EQ(ref.runs, static_cast<uint64_t>(kRuns));

    // Interrupted campaign: cancel after three journaled completions.
    std::string jpath = "/tmp/tea_test_robust_journal.jnl";
    std::remove(jpath.c_str());
    const std::string identity = "robust-test-cell";
    CancelToken token;
    std::atomic<int> completed{0};
    {
        ShardJournal journal(jpath);
        EXPECT_EQ(journal.open(identity, true), 0u);
        ThreadPool pool(2);
        InjectionCampaign::RunOptions opts;
        opts.pool = &pool;
        opts.cancel = &token;
        opts.onComplete =
            [&](uint64_t i, const InjectionCampaign::RunRecord &rec) {
                journal.append(i, rec);
                if (completed.fetch_add(1) + 1 >= 3)
                    token.cancel();
            };
        Rng rng(7);
        auto partial = campaign.run(model, kRuns, rng, opts);
        EXPECT_TRUE(partial.interrupted);
        EXPECT_LT(partial.runs, static_cast<uint64_t>(kRuns));
        EXPECT_GE(completed.load(), 3);
    }

    // Resume at a different thread count: replay the journal, execute
    // only what is missing, and match the reference exactly.
    ShardJournal journal(jpath);
    size_t replayable = journal.open(identity, true);
    EXPECT_EQ(replayable, static_cast<size_t>(completed.load()));
    ASSERT_GT(replayable, 0u);
    std::atomic<int> executed{0};
    ThreadPool pool(4);
    InjectionCampaign::RunOptions opts;
    opts.pool = &pool;
    opts.replay = [&](uint64_t i, InjectionCampaign::RunRecord &rec) {
        return journal.tryReplay(i, rec);
    };
    opts.onComplete =
        [&](uint64_t, const InjectionCampaign::RunRecord &) {
            ++executed;
        };
    Rng rng(7);
    auto resumed = campaign.run(model, kRuns, rng, opts);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(static_cast<size_t>(executed.load()) + replayable,
              static_cast<size_t>(kRuns));
    expectSameAggregate(resumed, ref);
    journal.remove();
    EXPECT_FALSE(std::filesystem::exists(jpath));
}

TEST(Journal, CorruptTailIsTruncatedNotFatal)
{
    Quiet q;
    std::string jpath = "/tmp/tea_test_robust_journal2.jnl";
    std::remove(jpath.c_str());
    const std::string identity = "tail-test";
    {
        ShardJournal j(jpath);
        j.open(identity, false);
        InjectionCampaign::RunRecord rec;
        rec.outcome = Outcome::SDC;
        rec.injected = 3;
        rec.committed = 100;
        for (uint64_t i = 0; i < 3; ++i)
            j.append(i, rec);
    }
    // A torn write: garbage where the next record should be.
    {
        std::ofstream out(jpath, std::ios::app);
        out << "r 3 1 9 9 9 1 0 cDEADBEEF-torn";
    }
    ShardJournal j2(jpath);
    EXPECT_EQ(j2.open(identity, true), 3u);
    InjectionCampaign::RunRecord rec;
    ASSERT_TRUE(j2.tryReplay(1, rec));
    EXPECT_EQ(rec.outcome, Outcome::SDC);
    EXPECT_EQ(rec.injected, 3u);
    EXPECT_EQ(rec.committed, 100u);
    EXPECT_FALSE(j2.tryReplay(3, rec));

    // A different identity must never replay foreign records.
    ShardJournal j3(jpath);
    EXPECT_EQ(j3.open("some-other-cell", true), 0u);
    std::remove(jpath.c_str());
}

TEST(Journal, TailTruncatedAtEveryByteOffsetKeepsValidPrefix)
{
    Quiet q;
    std::string jpath = "/tmp/tea_test_robust_journal3.jnl";
    std::remove(jpath.c_str());
    const std::string identity = "tail-sweep";

    // Four records with distinct payloads, so replay mix-ups show.
    auto makeRec = [](uint64_t i) {
        InjectionCampaign::RunRecord rec;
        rec.outcome = (i % 2) ? Outcome::SDC : Outcome::Masked;
        rec.injected = 10 * i + 1;
        rec.committed = 100 + i;
        rec.attempts = 1;
        return rec;
    };
    {
        ShardJournal j(jpath);
        j.open(identity, false);
        for (uint64_t i = 0; i < 4; ++i)
            j.append(i, makeRec(i));
    }
    std::string full;
    {
        std::ifstream in(jpath);
        full.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(full.empty());
    ASSERT_EQ(full.back(), '\n');
    // Final record = everything after the fourth newline (header + 3
    // records precede it).
    size_t lastStart = 0;
    for (int n = 0; n < 4; ++n)
        lastStart = full.find('\n', lastStart) + 1;
    ASSERT_LT(lastStart, full.size());

    // Cut the file at every byte offset within the final record: a
    // complete final line (with or without its newline) keeps all 4
    // records; any shorter cut fails the CRC and keeps exactly the
    // 3-record prefix. Either way the journal must stay appendable.
    for (size_t len = lastStart; len <= full.size(); ++len) {
        {
            std::ofstream out(jpath, std::ios::trunc);
            out << full.substr(0, len);
        }
        size_t expect = len >= full.size() - 1 ? 4u : 3u;
        ShardJournal j(jpath);
        ASSERT_EQ(j.open(identity, true), expect) << "cut at " << len;
        InjectionCampaign::RunRecord rec;
        for (uint64_t i = 0; i < expect; ++i) {
            ASSERT_TRUE(j.tryReplay(i, rec)) << "cut at " << len;
            EXPECT_EQ(rec.injected, 10 * i + 1) << "cut at " << len;
            EXPECT_EQ(rec.committed, 100 + i) << "cut at " << len;
            EXPECT_EQ(rec.outcome,
                      (i % 2) ? Outcome::SDC : Outcome::Masked);
        }
        EXPECT_FALSE(j.tryReplay(expect, rec)) << "cut at " << len;
        // The rewrite must leave a cleanly-terminated file: a fresh
        // append after the torn tail must never fuse with a partial
        // line.
        j.append(expect, makeRec(expect));
        ShardJournal j2(jpath);
        ASSERT_EQ(j2.open(identity, true), expect + 1)
            << "append after cut at " << len;
        ASSERT_TRUE(j2.tryReplay(expect, rec));
        EXPECT_EQ(rec.injected, 10 * expect + 1);
    }
    std::remove(jpath.c_str());
}
