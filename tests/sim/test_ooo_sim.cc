#include <gtest/gtest.h>

#include "isa/asmbuilder.hh"
#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "softfloat/softfloat.hh"
#include "util/rng.hh"

using namespace tea::isa;
using namespace tea::sim;
using tea::Rng;

namespace {

/** A program with branches, memory traffic, FP math, and a call. */
Program
mixedProgram()
{
    AsmBuilder b("mixed");
    b.dataDoubles("xs", {1.5, -2.25, 3.0, 0.5, 10.0, -1.0, 2.0, 4.0});
    b.dataDoubles("one", {1.0});
    b.dataSpace("out", 64);

    auto fn = b.newLabel();
    auto start = b.newLabel();
    b.j(start);

    // fn: f10 += f10 * f11 ; returns
    b.bind(fn);
    b.fmul_d(12, 10, 11);
    b.fadd_d(10, 10, 12);
    b.ret();

    b.bind(start);
    b.la(5, "xs");
    b.la(6, "out");
    b.li(7, 8);  // n
    b.li(8, 0);  // i
    b.la(9, "one");
    b.fld(10, 9, 0); // accumulator starts at 1.0
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    b.slli(9, 8, 3);
    b.add(9, 9, 5);
    b.fld(11, 9, 0);
    // Skip negative values (data-dependent branch).
    b.fmv_d_x(13, 0);
    b.fle_d(14, 13, 11);
    b.beq(14, 0, skip);
    b.call(fn);
    b.bind(skip);
    b.addi(8, 8, 1);
    b.blt(8, 7, loop);
    b.fsd(10, 6, 0);
    b.fcvt_l_d(15, 10);
    b.printInt(15);
    b.printFp(10);
    b.halt();
    return b.build();
}

} // namespace

TEST(OooSim, MatchesFunctionalOnMixedProgram)
{
    Program p = mixedProgram();
    FuncSim fsim(p);
    auto fr = fsim.run();
    ASSERT_EQ(fr.status, FuncSim::Status::Halted);

    OooSim osim(p);
    auto orr = osim.run(1'000'000);
    ASSERT_EQ(orr.status, OooSim::Status::Halted);
    EXPECT_EQ(orr.committed, fr.instructions);
    EXPECT_EQ(osim.console(), fsim.console());
    EXPECT_EQ(osim.memory().readBlock(p.symbol("out"), 8),
              fsim.memory().readBlock(p.symbol("out"), 8));
    // Sanity: the OoO core actually overlapped work.
    EXPECT_LT(orr.cycles, 10 * orr.committed);
    EXPECT_GE(orr.executed, orr.committed);
}

TEST(OooSim, StoreToLoadForwarding)
{
    AsmBuilder b("fwd");
    b.dataSpace("buf", 32);
    b.la(5, "buf");
    b.li(6, 1234);
    b.sd(6, 5, 0);
    b.ld(7, 5, 0); // must see the in-flight store
    b.addi(7, 7, 1);
    b.printInt(7);
    b.halt();
    Program p = b.build();
    OooSim sim(p);
    auto r = sim.run(100000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(sim.console()[0], 1235u);
}

TEST(OooSim, BranchMispredictsAreCounted)
{
    // Data-dependent alternating branch pattern defeats the bimodal
    // predictor part of the time.
    AsmBuilder b("br");
    b.li(5, 200);
    b.li(6, 0);
    auto loop = b.newLabel();
    auto odd = b.newLabel();
    auto cont = b.newLabel();
    b.bind(loop);
    b.andi(7, 5, 1);
    b.bne(7, 0, odd);
    b.addi(6, 6, 2);
    b.j(cont);
    b.bind(odd);
    b.addi(6, 6, 1);
    b.bind(cont);
    b.addi(5, 5, -1);
    b.bne(5, 0, loop);
    b.printInt(6);
    b.halt();
    Program p = b.build();

    FuncSim fsim(p);
    fsim.run();
    OooSim sim(p);
    auto r = sim.run(1'000'000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(sim.console(), fsim.console());
    EXPECT_GT(r.branchMispredicts, 10u);
    EXPECT_GT(r.squashedInstructions, 0u); // wrong-path work happened
    EXPECT_GE(r.executed, r.committed);
}

TEST(OooSim, CrashOnCommittedTrap)
{
    AsmBuilder b("crash");
    b.li(5, 0x7f000000);
    b.ld(6, 5, 0);
    b.halt();
    OooSim sim(b.build());
    auto r = sim.run(100000);
    EXPECT_EQ(r.status, OooSim::Status::Crashed);
    EXPECT_EQ(r.trap, TrapKind::MemFault);
}

TEST(OooSim, WrongPathFaultDoesNotCrash)
{
    // An always-taken branch starts cold-predicted not-taken, so the
    // faulting load behind it is fetched (and may execute) on the wrong
    // path; the fault must be squashed, never committed.
    AsmBuilder b("wp");
    b.li(9, 0x7f000000); // bad pointer
    b.li(5, 1);
    auto skip = b.newLabel();
    b.beq(5, 5, skip); // always taken
    b.ld(6, 9, 0);     // wrong-path only
    b.ld(7, 9, 8);
    b.bind(skip);
    b.printInt(5);
    b.halt();
    OooSim sim(b.build());
    auto r = sim.run(1'000'000);
    EXPECT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_GE(r.branchMispredicts, 1u);
    EXPECT_GT(r.squashedInstructions, 0u);
}

TEST(OooSim, CycleLimitReported)
{
    AsmBuilder b("spin");
    auto loop = b.here();
    b.j(loop);
    b.halt();
    OooSim sim(b.build());
    auto r = sim.run(5000);
    EXPECT_EQ(r.status, OooSim::Status::CycleLimit);
    EXPECT_EQ(r.cycles, 5000u);
}

TEST(OooSim, InjectionChangesResult)
{
    // Flip a high mantissa bit of the first executed fp-mul.
    Program p = mixedProgram();
    FuncSim fsim(p);
    fsim.run();

    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::FpOp, tea::fpu::FpuOp::MulD, 0,
         0xffff000000000ULL},
    };
    OooSim sim(p, OooConfig{}, InjectionPlan(events));
    auto r = sim.run(1'000'000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(r.injectionsApplied, 1u);
    // The corrupted multiply feeds the accumulator: output must differ.
    EXPECT_NE(sim.console(), fsim.console());
}

TEST(OooSim, InjectionIntoDeadValueIsMasked)
{
    AsmBuilder b("dead");
    b.dataDoubles("c", {2.0, 3.0});
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fld(2, 5, 8);
    b.fmul_d(3, 1, 2); // dead: overwritten before use
    b.fmv(3, 1);
    b.printFp(3);
    b.halt();
    Program p = b.build();
    FuncSim fsim(p);
    fsim.run();

    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::FpOp, tea::fpu::FpuOp::MulD, 0,
         0x8000000000000000ULL},
    };
    OooSim sim(p, OooConfig{}, InjectionPlan(events));
    auto r = sim.run(100000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(r.injectionsApplied, 1u);
    EXPECT_EQ(sim.console(), fsim.console()); // masked
}

TEST(OooSim, InjectionCanCauseCrash)
{
    // Corrupt the address-producing conversion so a load goes wild.
    AsmBuilder b("crashinj");
    b.dataDoubles("c", {1.0}); // index as double
    b.dataSpace("arr", 64);
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fcvt_l_d(6, 1);  // int index 1
    b.slli(6, 6, 3);
    b.la(7, "arr");
    b.add(7, 7, 6);
    b.ld(8, 7, 0);
    b.printInt(8);
    b.halt();
    Program p = b.build();
    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::FpOp, tea::fpu::FpuOp::F2ID, 0,
         0x7f00000000ULL}, // huge index
    };
    OooSim sim(p, OooConfig{}, InjectionPlan(events));
    auto r = sim.run(100000);
    EXPECT_EQ(r.status, OooSim::Status::Crashed);
    EXPECT_EQ(r.trap, TrapKind::MemFault);
}

TEST(OooSim, DeterministicAcrossRuns)
{
    Program p = mixedProgram();
    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::AnyDest, tea::fpu::FpuOp::AddD, 17,
         1ULL << 20},
    };
    OooSim s1(p, OooConfig{}, InjectionPlan(events));
    OooSim s2(p, OooConfig{}, InjectionPlan(events));
    auto r1 = s1.run(1'000'000);
    auto r2 = s2.run(1'000'000);
    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(s1.console(), s2.console());
}

TEST(OooSim, CacheStatsPlausible)
{
    // Stream over a buffer larger than L1: misses must show up.
    AsmBuilder b("stream");
    b.dataSpace("buf", 128 * 1024);
    b.la(5, "buf");
    b.li(6, 16384); // 16K doubles = 128KB
    auto loop = b.here();
    b.ld(7, 5, 0);
    b.addi(5, 5, 8);
    b.addi(6, 6, -1);
    b.bne(6, 0, loop);
    b.halt();
    OooSim sim(b.build());
    auto r = sim.run(10'000'000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_GT(r.cacheAccesses, 16000u);
    // One miss per 64B line = every 8th access.
    EXPECT_GT(r.cacheMisses, 1500u);
    EXPECT_LT(r.cacheMisses, 4000u);
}

TEST(OooSim, RandomProgramsMatchFunctional)
{
    // Property test: random (structured) programs produce identical
    // architectural results on both models.
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        AsmBuilder b("rand");
        std::vector<double> init;
        for (int i = 0; i < 16; ++i)
            init.push_back((rng.nextDouble() - 0.5) * 100.0);
        b.dataDoubles("vals", init);
        b.dataSpace("out", 128);
        b.la(5, "vals");
        b.la(6, "out");
        for (int i = 1; i <= 8; ++i)
            b.fld(i, 5, static_cast<int32_t>(rng.nextBounded(16) * 8));
        int nOps = 10 + static_cast<int>(rng.nextBounded(30));
        for (int i = 0; i < nOps; ++i) {
            auto fd = static_cast<uint8_t>(1 + rng.nextBounded(8));
            auto f1 = static_cast<uint8_t>(1 + rng.nextBounded(8));
            auto f2 = static_cast<uint8_t>(1 + rng.nextBounded(8));
            switch (rng.nextBounded(4)) {
              case 0: b.fadd_d(fd, f1, f2); break;
              case 1: b.fsub_d(fd, f1, f2); break;
              case 2: b.fmul_d(fd, f1, f2); break;
              default: b.fabs_d(fd, f1); break;
            }
        }
        for (int i = 1; i <= 8; ++i)
            b.fsd(i, 6, (i - 1) * 8);
        b.halt();
        Program p = b.build();
        FuncSim fsim(p);
        auto fr = fsim.run();
        ASSERT_EQ(fr.status, FuncSim::Status::Halted);
        OooSim osim(p);
        auto orr = osim.run(1'000'000);
        ASSERT_EQ(orr.status, OooSim::Status::Halted);
        EXPECT_EQ(osim.memory().readBlock(p.symbol("out"), 128),
                  fsim.memory().readBlock(p.symbol("out"), 128))
            << "trial " << trial;
    }
}

TEST(OooSim, MultipleInjectionsAccumulate)
{
    // Several masks on the same dynamic instruction XOR together.
    AsmBuilder b("multi");
    b.dataDoubles("c", {2.0, 3.0});
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fld(2, 5, 8);
    b.fmul_d(3, 1, 2);
    b.printFp(3);
    b.halt();
    Program p = b.build();
    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::FpOp, tea::fpu::FpuOp::MulD, 0, 0xf0},
        {InjectionEvent::Kind::FpOp, tea::fpu::FpuOp::MulD, 0, 0x0f},
    };
    OooSim sim(p, OooConfig{}, InjectionPlan(events));
    auto r = sim.run(100000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(r.injectionsApplied, 2u);
    EXPECT_EQ(sim.console()[0], tea::sf::fromDouble(6.0) ^ 0xffULL);
}

TEST(OooSim, InjectionIndexBeyondExecutionNeverFires)
{
    AsmBuilder b("beyond");
    b.li(5, 1);
    b.printInt(5);
    b.halt();
    std::vector<InjectionEvent> events{
        {InjectionEvent::Kind::AnyDest, tea::fpu::FpuOp::AddD, 999999,
         1},
    };
    OooSim sim(b.build(), OooConfig{}, InjectionPlan(events));
    auto r = sim.run(100000);
    EXPECT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(r.injectionsApplied, 0u);
}

TEST(OooSim, NarrowMachineStillCorrect)
{
    // A 1-wide, tiny-window configuration must produce identical
    // architectural results (only slower).
    Program p = mixedProgram();
    FuncSim fsim(p);
    auto fr = fsim.run();
    OooConfig cfg;
    cfg.fetchWidth = cfg.renameWidth = cfg.issueWidth = cfg.commitWidth =
        1;
    cfg.robSize = 8;
    cfg.iqSize = 4;
    cfg.maxLoads = 2;
    cfg.maxStores = 2;
    OooSim sim(p, cfg);
    auto r = sim.run(10'000'000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(r.committed, fr.instructions);
    EXPECT_EQ(sim.console(), fsim.console());

    OooSim wide(p);
    auto rw = wide.run(10'000'000);
    EXPECT_GT(r.cycles, rw.cycles); // narrower must be slower
}

TEST(OooSim, WideMachineStillCorrect)
{
    Program p = mixedProgram();
    FuncSim fsim(p);
    fsim.run();
    OooConfig cfg;
    cfg.fetchWidth = cfg.renameWidth = cfg.issueWidth = cfg.commitWidth =
        4;
    cfg.robSize = 128;
    cfg.iqSize = 64;
    OooSim sim(p, cfg);
    auto r = sim.run(10'000'000);
    ASSERT_EQ(r.status, OooSim::Status::Halted);
    EXPECT_EQ(sim.console(), fsim.console());
}
