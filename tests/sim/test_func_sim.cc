#include <gtest/gtest.h>

#include "isa/asmbuilder.hh"
#include "sim/func_sim.hh"
#include "softfloat/softfloat.hh"

using namespace tea::isa;
using namespace tea::sim;

TEST(FuncSim, HaltsAndCounts)
{
    AsmBuilder b("t");
    b.li(5, 10);
    auto loop = b.here();
    b.addi(5, 5, -1);
    b.bne(5, 0, loop);
    b.halt();
    Program p = b.build();
    FuncSim sim(p);
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Halted);
    // 1 li + 10*(addi+bne) + halt = 22.
    EXPECT_EQ(r.instructions, 22u);
    EXPECT_EQ(sim.opCount(Op::ADDI), 10u);
    EXPECT_EQ(sim.opCount(Op::BNE), 10u);
}

TEST(FuncSim, TrapsOnUnmappedLoad)
{
    AsmBuilder b("t");
    b.li(5, 0x7f000000);
    b.ld(6, 5, 0);
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Trapped);
    EXPECT_EQ(r.trap, TrapKind::MemFault);
}

TEST(FuncSim, TrapsOnProtectedStore)
{
    AsmBuilder b("t");
    b.li(5, 0x100);
    b.sd(0, 5, 0);
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Trapped);
    EXPECT_EQ(r.trap, TrapKind::ProtectedAccess);
}

TEST(FuncSim, TrapsOnMisalignedAccess)
{
    AsmBuilder b("t");
    b.dataSpace("buf", 16);
    b.la(5, "buf");
    b.addi(5, 5, 3);
    b.ld(6, 5, 0);
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Trapped);
    EXPECT_EQ(r.trap, TrapKind::Misaligned);
}

TEST(FuncSim, TrapsOnBadJump)
{
    AsmBuilder b("t");
    b.li(5, 0);
    b.jalr(1, 5, 0);
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Trapped);
    EXPECT_EQ(r.trap, TrapKind::BadJump);
}

TEST(FuncSim, TrapsOnFpException)
{
    AsmBuilder b("t");
    b.dataDoubles("c", {1.0, 0.0});
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fld(2, 5, 8);
    b.fdiv_d(3, 1, 2); // 1/0
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Trapped);
    EXPECT_EQ(r.trap, TrapKind::FpException);
}

TEST(FuncSim, FpTrapsCanBeDisabled)
{
    AsmBuilder b("t");
    b.dataDoubles("c", {1.0, 0.0});
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fld(2, 5, 8);
    b.fdiv_d(3, 1, 2);
    b.printFp(3);
    b.halt();
    FuncSim::Config cfg;
    cfg.trapOnSevereFp = false;
    FuncSim sim(b.build(), cfg);
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Halted);
    EXPECT_EQ(sim.console()[0], 0x7ff0000000000000ULL); // +inf
}

TEST(FuncSim, InstructionLimit)
{
    AsmBuilder b("t");
    auto loop = b.here();
    b.j(loop); // infinite
    b.halt();
    FuncSim::Config cfg;
    cfg.maxInstructions = 1000;
    FuncSim sim(b.build(), cfg);
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::LimitReached);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(FuncSim, FpTraceCollection)
{
    AsmBuilder b("t");
    b.dataDoubles("c", {2.0, 3.0});
    b.la(5, "c");
    b.fld(1, 5, 0);
    b.fld(2, 5, 8);
    b.fmul_d(3, 1, 2);
    b.fadd_d(4, 3, 1);
    b.fcvt_l_d(6, 4);
    b.halt();
    FuncSim sim(b.build());
    std::vector<FpTraceEntry> trace;
    sim.setFpTrace(&trace);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].op, tea::fpu::FpuOp::MulD);
    EXPECT_EQ(trace[0].a, tea::sf::fromDouble(2.0));
    EXPECT_EQ(trace[0].b, tea::sf::fromDouble(3.0));
    EXPECT_EQ(trace[1].op, tea::fpu::FpuOp::AddD);
    EXPECT_EQ(trace[2].op, tea::fpu::FpuOp::F2ID);
    EXPECT_EQ(sim.fpArithCount(), 3u);
}

TEST(FuncSim, StoreForwardingThroughMemory)
{
    AsmBuilder b("t");
    b.dataSpace("buf", 64);
    b.la(5, "buf");
    b.li(6, 0xdeadbeef);
    b.sd(6, 5, 16);
    b.ld(7, 5, 16);
    b.printInt(7);
    b.sw(6, 5, 24);
    b.lw(8, 5, 24); // sign-extended 32-bit
    b.printInt(8);
    b.halt();
    FuncSim sim(b.build());
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    EXPECT_EQ(sim.console()[0], 0xdeadbeefULL);
    EXPECT_EQ(sim.console()[1],
              static_cast<uint64_t>(
                  static_cast<int64_t>(static_cast<int32_t>(0xdeadbeef))));
}
