/**
 * @file
 * sim::Memory edge cases: page-straddling scalar accesses,
 * readBlock over partially-unmapped ranges, and isMapped exactly at
 * page boundaries. The simulators themselves only issue aligned
 * (within-page) accesses, but byte-granularity users (program
 * loading, output capture) cross pages freely.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"

using namespace tea::sim;

namespace {

constexpr uint64_t kPage = Memory::kPageSize;
constexpr uint64_t kBase = 16 * kPage;

} // namespace

TEST(Memory, PageStraddlingReadWrite)
{
    Memory m;
    m.mapRange(kBase, 2 * kPage);

    // An 8-byte write centered on the page boundary: 4 bytes land in
    // each page, and the read must reassemble them little-endian.
    uint64_t boundary = kBase + kPage;
    m.write(boundary - 4, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(boundary - 4, 8), 0x1122334455667788ULL);
    // The per-page halves individually.
    EXPECT_EQ(m.read(boundary - 4, 4), 0x55667788u);
    EXPECT_EQ(m.read(boundary, 4), 0x11223344u);

    // Every straddle width and offset near the boundary.
    for (unsigned size : {2u, 4u, 8u}) {
        for (unsigned back = 1; back < size; ++back) {
            uint64_t addr = boundary - back;
            uint64_t pattern = 0xa5c3f00d600df17eULL &
                               ((size == 8) ? ~0ULL
                                            : ((1ULL << (8 * size)) - 1));
            m.write(addr, size, pattern);
            EXPECT_EQ(m.read(addr, size), pattern)
                << "size " << size << " back " << back;
        }
    }

    // Within-page accesses at both edges still work.
    m.write(kBase, 8, 42);
    EXPECT_EQ(m.read(kBase, 8), 42u);
    m.write(kBase + 2 * kPage - 8, 8, 43);
    EXPECT_EQ(m.read(kBase + 2 * kPage - 8, 8), 43u);
}

TEST(Memory, ReadBlockPartiallyUnmappedReturnsZeros)
{
    Memory m;
    m.mapRange(kBase, kPage); // exactly one page
    for (uint64_t i = 0; i < kPage; ++i)
        m.write(kBase + i, 1, 0xab);

    // A block starting before the mapping and ending after it: the
    // unmapped head and tail read as zero, the mapped middle as data.
    std::vector<uint8_t> blk = m.readBlock(kBase - 8, kPage + 16);
    ASSERT_EQ(blk.size(), kPage + 16);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(blk[i], 0) << "unmapped head byte " << i;
    for (uint64_t i = 8; i < 8 + kPage; ++i)
        ASSERT_EQ(blk[i], 0xab) << "mapped byte " << i;
    for (uint64_t i = 8 + kPage; i < blk.size(); ++i)
        EXPECT_EQ(blk[i], 0) << "unmapped tail byte " << i;

    // A fully-unmapped block is all zeros, not a crash.
    std::vector<uint8_t> cold = m.readBlock(kBase + 64 * kPage, 32);
    for (uint8_t b : cold)
        EXPECT_EQ(b, 0);

    // Zero length is a valid request.
    EXPECT_TRUE(m.readBlock(kBase, 0).empty());
}

TEST(Memory, IsMappedAtPageBoundaries)
{
    Memory m;
    m.mapRange(kBase, 2 * kPage); // pages [16, 18)

    // Whole-range and single-byte probes at the extremes.
    EXPECT_TRUE(m.isMapped(kBase, 2 * kPage));
    EXPECT_TRUE(m.isMapped(kBase, 1));
    EXPECT_TRUE(m.isMapped(kBase + 2 * kPage - 1, 1));
    EXPECT_FALSE(m.isMapped(kBase - 1, 1));
    EXPECT_FALSE(m.isMapped(kBase + 2 * kPage, 1));

    // Ranges that lean one byte over either edge.
    EXPECT_FALSE(m.isMapped(kBase - 1, 2));
    EXPECT_FALSE(m.isMapped(kBase + 2 * kPage - 1, 2));

    // Straddling the interior boundary between two mapped pages.
    EXPECT_TRUE(m.isMapped(kBase + kPage - 4, 8));

    // mapRange at sub-page granularity maps the whole touched pages.
    Memory m2;
    m2.mapRange(kBase + kPage - 1, 2); // touches both pages
    EXPECT_TRUE(m2.isMapped(kBase, kPage));
    EXPECT_TRUE(m2.isMapped(kBase + kPage, kPage));
    EXPECT_FALSE(m2.isMapped(kBase + 2 * kPage, 1));
}
