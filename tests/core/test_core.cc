#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "core/energy.hh"
#include "core/results.hh"
#include "core/toolflow.hh"

using namespace tea;
using namespace tea::core;
using models::ModelKind;

namespace {

ToolflowOptions
tinyOptions()
{
    ToolflowOptions opt;
    opt.iaCountPerOp = 200;
    opt.waMaxOps = 500;
    opt.daSampleOps = 700;
    opt.runsPerCell = 2;
    opt.cacheDir = "/tmp/tea_test_cache";
    opt.vrLevels = {0.20};
    return opt;
}

} // namespace

TEST(Toolflow, OperatingPointsDeduplicated)
{
    Toolflow tf(tinyOptions());
    size_t p1 = tf.pointFor(0.20);
    size_t p2 = tf.pointFor(0.20);
    size_t p3 = tf.pointFor(0.15);
    EXPECT_EQ(p1, p2);
    EXPECT_NE(p1, p3);
}

TEST(Toolflow, CharacterizationsAreCached)
{
    std::filesystem::remove_all("/tmp/tea_test_cache");
    auto opt = tinyOptions();
    {
        Toolflow tf(opt);
        const auto &s = tf.iaStats(0.20);
        EXPECT_GT(s.totalOps(), 0u);
    }
    // Second toolflow loads from disk and matches.
    Toolflow tf2(opt);
    const auto &s2 = tf2.iaStats(0.20);
    EXPECT_EQ(s2.totalOps(), 200u * fpu::kNumFpuOps);
    EXPECT_TRUE(std::filesystem::exists("/tmp/tea_test_cache"));
}

TEST(Toolflow, DaRatioGrowsWithVoltageReduction)
{
    auto opt = tinyOptions();
    opt.vrLevels = {0.15, 0.20};
    Toolflow tf(opt);
    double er15 = tf.daErrorRatio(0.15);
    double er20 = tf.daErrorRatio(0.20);
    EXPECT_GE(er20, er15);
    EXPECT_GT(er20, 0.0); // some benchmark ops fail at VR20
    EXPECT_LT(er20, 0.5);
}

TEST(Toolflow, TraceAndCampaignPlumbing)
{
    Toolflow tf(tinyOptions());
    const auto &trace = tf.trace("sobel");
    EXPECT_GT(trace.size(), 1000u);
    auto &campaign = tf.campaign("sobel");
    EXPECT_GT(campaign.goldenCycles(), 0u);
    // Same objects on repeat lookups.
    EXPECT_EQ(&tf.campaign("sobel"), &campaign);
    EXPECT_EQ(&tf.trace("sobel"), &trace);
}

TEST(Energy, PowerSavingMonotone)
{
    EXPECT_GT(powerSavingAt(0.20), powerSavingAt(0.10));
    EXPECT_GT(powerSavingAt(0.10), 0.0);
    EXPECT_LT(powerSavingAt(0.20), 1.0);
}

TEST(Energy, GuidancePicksDeepestSafeVr)
{
    std::map<double, double> avm{{0.10, 0.0}, {0.15, 0.0}, {0.20, 0.3}};
    auto g = guideVoltage(avm);
    EXPECT_TRUE(g.found);
    EXPECT_DOUBLE_EQ(g.maxSafeVr, 0.15);
    EXPECT_GT(g.powerSaving, 0.0);

    std::map<double, double> none{{0.15, 0.5}, {0.20, 0.9}};
    auto g2 = guideVoltage(none);
    EXPECT_FALSE(g2.found);
    EXPECT_DOUBLE_EQ(g2.maxSafeVr, 0.0);
    EXPECT_DOUBLE_EQ(g2.powerSaving, 0.0);
}

TEST(Energy, GuidanceFoundFlagDisambiguatesVrZero)
{
    // VR = 0 (nominal voltage) is a legitimate safe answer — the old
    // `maxSafeVr > 0` convention conflated it with "nothing safe".
    std::map<double, double> onlyNominal{{0.0, 0.0}, {0.15, 0.4}};
    auto g = guideVoltage(onlyNominal);
    EXPECT_TRUE(g.found);
    EXPECT_DOUBLE_EQ(g.maxSafeVr, 0.0);
    EXPECT_DOUBLE_EQ(g.powerSaving, 0.0);

    auto g2 = guideVoltage(std::map<double, double>{});
    EXPECT_FALSE(g2.found);
}

TEST(Energy, GuidanceSkipsNaNLevels)
{
    // A cell with no classified runs has an unknown AVM (NaN); it must
    // never be mistaken for a proven-safe zero.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::map<double, double> avm{{0.10, 0.0}, {0.15, nan}};
    auto g = guideVoltage(avm);
    EXPECT_TRUE(g.found);
    EXPECT_DOUBLE_EQ(g.maxSafeVr, 0.10);

    std::map<double, double> allNan{{0.10, nan}, {0.15, nan}};
    EXPECT_FALSE(guideVoltage(allNan).found);
}

TEST(Energy, CiAwareGuidanceDemandsEvidence)
{
    // 0 corruptions out of 1000 runs clears a 5% bound (rule of three:
    // ~0.3%); 0 out of 10 does not (~26%). Deeper-but-weakly-tested
    // levels must not win on a hopeful point estimate of zero.
    std::map<double, AvmObservation> obs{
        {0.10, {0, 1000}}, {0.15, {0, 10}}, {0.20, {300, 1000}}};
    auto g = guideVoltage(obs, 0.05);
    EXPECT_TRUE(g.found);
    EXPECT_DOUBLE_EQ(g.maxSafeVr, 0.10);
    EXPECT_NEAR(g.avmUpperBound, 0.003, 0.001);
    EXPECT_GT(g.powerSaving, 0.0);

    // Levels with no classified runs never qualify.
    std::map<double, AvmObservation> empty{{0.10, {0, 0}}};
    EXPECT_FALSE(guideVoltage(empty, 0.05).found);

    // With events, the Clopper-Pearson upper limit drives the call:
    // 2/1000 unsafe -> upper bound ~0.7%, still safe at 5%.
    std::map<double, AvmObservation> few{{0.15, {2, 1000}}};
    auto g2 = guideVoltage(few, 0.05);
    EXPECT_TRUE(g2.found);
    EXPECT_DOUBLE_EQ(g2.maxSafeVr, 0.15);
    EXPECT_LT(g2.avmUpperBound, 0.05);
}

TEST(Energy, PreventionAnalysisShape)
{
    models::ProgramProfile profile;
    profile.totalInstructions = 100000;
    profile.fpOpCounts[static_cast<size_t>(fpu::FpuOp::MulD)] = 10000;

    timing::CampaignStats stats;
    stats.of(fpu::FpuOp::MulD).total = 100;
    stats.of(fpu::FpuOp::MulD).faulty = 10;
    stats.of(fpu::FpuOp::MulD).maskPool = {0xff};
    models::WaModel wa("x", stats);

    auto pa = analyzePrevention(profile, wa, 0.20, 0.10);
    EXPECT_DOUBLE_EQ(pa.stretchOverhead, 0.1); // 10% of instrs stretched
    EXPECT_GT(pa.energyFactor, 0.0);
    EXPECT_LT(pa.energyFactor, 1.0); // still saves energy overall
    EXPECT_GT(1.0 - pa.energyFactor, 0.10); // beats the guided saving
}

TEST(Results, GridSaveLoadRoundTrip)
{
    EvaluationGrid grid;
    CampaignCell cell;
    cell.workload = "sobel";
    cell.model = ModelKind::WA;
    cell.vrFrac = 0.2;
    cell.result.runs = 10;
    cell.result.masked = 7;
    cell.result.sdc = 2;
    cell.result.crash = 1;
    cell.result.injectedErrors = 42;
    cell.result.committedInstructions = 12345;
    grid.cells.push_back(cell);

    std::string path = "/tmp/tea_test_grid.csv";
    saveGrid(path, grid);
    auto loaded = loadGrid(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->cells.size(), 1u);
    const auto *r = loaded->find("sobel", ModelKind::WA, 0.2);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->runs, 10u);
    EXPECT_EQ(r->masked, 7u);
    EXPECT_EQ(r->injectedErrors, 42u);
    EXPECT_EQ(loaded->find("sobel", ModelKind::DA, 0.2), nullptr);
    std::remove(path.c_str());
}

TEST(Results, TinyGridRuns)
{
    std::filesystem::remove_all("/tmp/tea_test_cache2");
    auto opt = tinyOptions();
    opt.cacheDir = "/tmp/tea_test_cache2";
    Toolflow tf(opt);
    auto grid = runEvaluationGrid(tf);
    // 7 workloads x 3 models x 1 VR level.
    EXPECT_EQ(grid.cells.size(), 21u);
    for (const auto &cell : grid.cells)
        EXPECT_EQ(cell.result.runs, 2u);
    // Cached reload matches.
    auto grid2 = runEvaluationGrid(tf);
    EXPECT_EQ(grid2.cells.size(), grid.cells.size());
    std::filesystem::remove_all("/tmp/tea_test_cache2");
}

TEST(OptionsFromEnv, Defaults)
{
    unsetenv("REPRO_RUNS");
    unsetenv("REPRO_FULL");
    auto opt = optionsFromEnv();
    EXPECT_GT(opt.runsPerCell, 0);
    EXPECT_EQ(opt.vrLevels.size(), 2u);
}

TEST(OptionsFromEnv, Overrides)
{
    setenv("REPRO_RUNS", "123", 1);
    auto opt = optionsFromEnv();
    EXPECT_EQ(opt.runsPerCell, 123);
    unsetenv("REPRO_RUNS");
    setenv("REPRO_FULL", "1", 1);
    auto opt2 = optionsFromEnv();
    EXPECT_EQ(opt2.runsPerCell, inject::kStatisticalRuns);
    unsetenv("REPRO_FULL");
}

TEST(OptionsFromEnv, DtaBackendParsedAndHardened)
{
    unsetenv("REPRO_DTA_BACKEND");
    EXPECT_EQ(optionsFromEnv().dtaBackend, circuit::DtaBackend::Lane);

    setenv("REPRO_DTA_BACKEND", "compiled", 1);
    EXPECT_EQ(optionsFromEnv().dtaBackend,
              circuit::DtaBackend::Compiled);
    setenv("REPRO_DTA_BACKEND", "levelized", 1);
    EXPECT_EQ(optionsFromEnv().dtaBackend,
              circuit::DtaBackend::Levelized);

    // Malformed values warn and keep the default instead of
    // silently selecting some engine (PR2 env-hardening pattern).
    setenv("REPRO_DTA_BACKEND", "jit", 1);
    EXPECT_EQ(optionsFromEnv().dtaBackend, circuit::DtaBackend::Lane);
    unsetenv("REPRO_DTA_BACKEND");
}

TEST(Toolflow, CtorAppliesDtaBackendOption)
{
    circuit::resetDtaBackend();
    ToolflowOptions opt;
    opt.cacheDir.clear();
    opt.dtaBackend = circuit::DtaBackend::Compiled;
    {
        Toolflow tf(opt);
        EXPECT_EQ(circuit::dtaBackend(),
                  circuit::DtaBackend::Compiled);
    }
    circuit::resetDtaBackend();
}
