#include <gtest/gtest.h>

#include "inject/campaign.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::inject;
using namespace tea::models;
using fpu::FpuOp;

namespace {

/** A tiny campaign fixture on the cheapest workload (sobel). */
InjectionCampaign &
campaign()
{
    static InjectionCampaign c(workloads::buildWorkload("sobel", 1));
    return c;
}

timing::CampaignStats
aggressiveStats()
{
    // A synthetic WA-style model with a high mul error rate and
    // destructive masks — drives non-masked outcomes even in few runs.
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100; // 10% of muls fail
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    auto &div = stats.of(FpuOp::DivD);
    div.total = 1000;
    div.faulty = 50;
    div.maskPool = {0x7ff8000000000000ULL, 0x3ff0000000000000ULL};
    return stats;
}

} // namespace

TEST(InjectionCampaign, GoldenPreparation)
{
    auto &c = campaign();
    EXPECT_GT(c.goldenCycles(), 10000u);
    EXPECT_GT(c.goldenInstructions(), 10000u);
    EXPECT_GT(c.profile().instructionsWithDest, 0u);
    EXPECT_GT(c.profile().fpOpCounts[static_cast<size_t>(FpuOp::MulD)],
              100u);
}

TEST(InjectionCampaign, ZeroErrorModelIsAllMasked)
{
    // A WA model characterized with no observed errors injects nothing.
    timing::CampaignStats empty;
    WaModel model("none", empty);
    Rng rng(1);
    auto result = campaign().run(model, 5, rng);
    EXPECT_EQ(result.masked, 5u);
    EXPECT_EQ(result.injectedErrors, 0u);
    EXPECT_EQ(result.avm(), 0.0);
}

TEST(InjectionCampaign, AggressiveModelProducesCorruption)
{
    WaModel model("hot", aggressiveStats());
    Rng rng(2);
    auto result = campaign().run(model, 10, rng);
    EXPECT_EQ(result.runs, 10u);
    EXPECT_GT(result.injectedErrors, 100u);
    // With thousands of corrupted muls something must go visibly wrong.
    EXPECT_GT(result.sdc + result.crash + result.timeout, 0u);
    EXPECT_GT(result.avm(), 0.0);
    EXPECT_GT(result.errorRatio(), 1e-4);
}

TEST(InjectionCampaign, DaModelInjectsAtItsRate)
{
    DaModel model(1e-3);
    Rng rng(3);
    auto result = campaign().run(model, 5, rng);
    // Runs that crash early stop applying events, so the applied count
    // per run is bounded by the plan but may fall below it.
    double perRun = static_cast<double>(result.injectedErrors) /
                    static_cast<double>(result.runs);
    double expected = model.expectedErrors(campaign().profile());
    EXPECT_GT(perRun, 0.0);
    EXPECT_LE(perRun, 1.2 * expected);
    // 25 random bit flips per run all over the machine: DA-model paints
    // a grim picture (the paper's point — it is wildly pessimistic).
    EXPECT_GT(result.avm(), 0.5);
}

TEST(InjectionCampaign, OutcomesAreDeterministicGivenSeed)
{
    WaModel model("hot", aggressiveStats());
    Rng rng1(7), rng2(7);
    auto o1 = campaign().runOne(model, rng1);
    auto o2 = campaign().runOne(model, rng2);
    EXPECT_EQ(o1, o2);
}

TEST(InjectionCampaign, ResultAccounting)
{
    CampaignResult r;
    r.runs = 10;
    r.masked = 4;
    r.sdc = 3;
    r.crash = 2;
    r.timeout = 1;
    r.injectedErrors = 50;
    r.committedInstructions = 100000;
    EXPECT_DOUBLE_EQ(r.avm(), 0.6);
    EXPECT_DOUBLE_EQ(r.fraction(Outcome::Masked), 0.4);
    EXPECT_DOUBLE_EQ(r.fraction(Outcome::SDC), 0.3);
    EXPECT_DOUBLE_EQ(r.errorRatio(), 5e-4);
}

TEST(InjectionCampaign, OutcomeNames)
{
    EXPECT_STREQ(outcomeName(Outcome::Masked), "Masked");
    EXPECT_STREQ(outcomeName(Outcome::SDC), "SDC");
    EXPECT_STREQ(outcomeName(Outcome::Crash), "Crash");
    EXPECT_STREQ(outcomeName(Outcome::Timeout), "Timeout");
}
