/**
 * @file
 * The sequential-estimation contract: known-answer tests for the
 * binomial interval estimators, Estimator stop rules, AdaptivePlanner
 * determinism and Neyman allocation, and — the part the REPRO_CI_*
 * knobs depend on — bit-identical adaptive DTA / injection campaigns
 * at every thread and lane count, with adaptive results a bit-exact
 * prefix of their fixed-N counterparts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "circuit/celllib.hh"
#include "inject/campaign.hh"
#include "stats/estimator.hh"
#include "stats/intervals.hh"
#include "stats/planner.hh"
#include "timing/dta_campaign.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::stats;
using fpu::FpuOp;

// ---------------------------------------------------------------------
// Interval known-answer tests
// ---------------------------------------------------------------------

TEST(Intervals, NormalQuantileKat)
{
    // Acklam's approximation is good to ~1e-9 relative error.
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-6);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829, 1e-6);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.025), -normalQuantile(0.975), 1e-9);
    // Tail branch.
    EXPECT_NEAR(normalQuantile(0.001), -3.090232, 1e-5);
}

TEST(Intervals, WilsonKat)
{
    // Textbook value: 5 events in 50 trials at 95%.
    auto iv = wilson(5, 50, 0.95);
    EXPECT_NEAR(iv.lo, 0.0434, 1e-3);
    EXPECT_NEAR(iv.hi, 0.2136, 1e-3);
    EXPECT_TRUE(iv.contains(5.0 / 50.0));

    // Vacuous before any trials; degenerate edges clamp into [0, 1].
    auto v = wilson(0, 0, 0.95);
    EXPECT_DOUBLE_EQ(v.lo, 0.0);
    EXPECT_DOUBLE_EQ(v.hi, 1.0);
    EXPECT_DOUBLE_EQ(wilson(0, 100, 0.95).lo, 0.0);
    EXPECT_DOUBLE_EQ(wilson(100, 100, 0.95).hi, 1.0);

    // Width shrinks like 1/sqrt(n).
    EXPECT_LT(wilson(50, 500, 0.95).halfWidth(),
              wilson(5, 50, 0.95).halfWidth());
}

TEST(Intervals, ClopperPearsonKat)
{
    // Textbook value: 1 event in 10 trials at 95%.
    auto iv = clopperPearson(1, 10, 0.95);
    EXPECT_NEAR(iv.lo, 0.00253, 1e-4);
    EXPECT_NEAR(iv.hi, 0.44502, 1e-4);

    // Zero-event upper limit has a closed form: 1 - (alpha/2)^(1/n).
    auto z = clopperPearson(0, 100, 0.95);
    EXPECT_DOUBLE_EQ(z.lo, 0.0);
    EXPECT_NEAR(z.hi, 1.0 - std::pow(0.025, 0.01), 1e-12);
    // ... and the all-event lower limit mirrors it.
    auto f = clopperPearson(100, 100, 0.95);
    EXPECT_NEAR(f.lo, std::pow(0.025, 0.01), 1e-12);
    EXPECT_DOUBLE_EQ(f.hi, 1.0);

    // Exact coverage costs width: CP is never tighter than Wilson.
    EXPECT_GE(clopperPearson(5, 50, 0.95).halfWidth(),
              wilson(5, 50, 0.95).halfWidth());
}

TEST(Intervals, IncompleteBetaIdentities)
{
    // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
    EXPECT_NEAR(incompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(incompleteBeta(3.0, 7.0, 0.3) +
                    incompleteBeta(7.0, 3.0, 0.7),
                1.0, 1e-12);
    // I_x(1, b) = 1 - (1-x)^b in closed form.
    EXPECT_NEAR(incompleteBeta(1.0, 5.0, 0.2),
                1.0 - std::pow(0.8, 5.0), 1e-12);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(Intervals, RuleOfThree)
{
    // Exact zero-event bound, and the 3/n folklore it rounds to.
    EXPECT_NEAR(ruleOfThreeUpper(100, 0.95), 0.029513, 1e-6);
    EXPECT_NEAR(ruleOfThreeUpper(1000, 0.95), 3.0 / 1000.0, 2e-4);
    EXPECT_DOUBLE_EQ(ruleOfThreeUpper(0, 0.95), 1.0);
    // Matches Clopper-Pearson's one-sided zero-event bound at
    // confidence 1 - alpha when CP runs two-sided at 1 - 2*alpha.
    EXPECT_NEAR(ruleOfThreeUpper(50, 0.975),
                clopperPearson(0, 50, 0.95).hi, 1e-12);
}

TEST(Intervals, UpperBoundRouting)
{
    // k == 0 takes the exact rule-of-three path...
    EXPECT_DOUBLE_EQ(upperBound(0, 200, 0.95),
                     ruleOfThreeUpper(200, 0.95));
    // ... anything else the Clopper-Pearson upper limit.
    EXPECT_DOUBLE_EQ(upperBound(3, 200, 0.95),
                     clopperPearson(3, 200, 0.95).hi);
    EXPECT_DOUBLE_EQ(upperBound(0, 0, 0.95), 1.0);
}

TEST(Intervals, WorstCaseTrials)
{
    // The paper's choice: 1068 runs for 3% margin at 95% confidence
    // (Leveugle et al.).
    EXPECT_EQ(worstCaseTrials(0.03, 0.95), 1068u);
    EXPECT_EQ(worstCaseTrials(0.01, 0.95), 9604u);
    EXPECT_LT(worstCaseTrials(0.05, 0.95), worstCaseTrials(0.01, 0.95));
}

// ---------------------------------------------------------------------
// Sequential estimator
// ---------------------------------------------------------------------

TEST(Estimator, StartsVacuousAndAccumulates)
{
    Estimator e(0.01, 0.95);
    EXPECT_DOUBLE_EQ(e.interval().lo, 0.0);
    EXPECT_DOUBLE_EQ(e.interval().hi, 1.0);
    EXPECT_FALSE(e.converged());
    // Zero trials is "no data", not "rate zero": mean() is NaN so a
    // caller averaging or thresholding it cannot mistake an
    // unmeasured stratum for a perfectly safe one.
    EXPECT_FALSE(e.hasData());
    EXPECT_TRUE(std::isnan(e.mean()));

    e.add(3, 10);
    e.add(2, 10);
    EXPECT_TRUE(e.hasData());
    EXPECT_EQ(e.events(), 5u);
    EXPECT_EQ(e.trials(), 20u);
    EXPECT_DOUBLE_EQ(e.mean(), 0.25);
}

TEST(Estimator, ZeroEventStopRequiresRuleOfThreeBound)
{
    // Property: a zero-event estimator may only report convergence
    // when the exact zero-event upper bound itself is below target —
    // the Wilson half-width alone can look "tight" around 0 while the
    // plausible upper limit still exceeds the safety threshold.
    for (double target : {0.02, 0.01, 0.005, 0.001}) {
        for (uint64_t n : {10ull, 50ull, 100ull, 300ull, 1000ull,
                           5000ull, 20000ull}) {
            Estimator e(target, 0.95);
            e.add(0, n);
            if (e.converged()) {
                EXPECT_LE(ruleOfThreeUpperReal(
                              static_cast<double>(n), 0.95),
                          target)
                    << "n=" << n << " target=" << target;
            }
        }
    }
    // Concrete regression: 100 zero-event trials have Wilson
    // half-width ~0.018 < 0.02, but the 95% upper bound is ~0.0295 —
    // stopping there would certify an unsafe voltage level.
    Estimator e(0.02, 0.95);
    e.add(0, 100);
    EXPECT_LE(e.interval().halfWidth(), 0.02);
    EXPECT_FALSE(e.converged());
    // With one event the rule no longer applies (Wilson covers it).
    Estimator e1(0.2, 0.95);
    e1.add(1, 100);
    EXPECT_TRUE(e1.converged());
}

// ---------------------------------------------------------------------
// Weighted (importance-sampled) estimation
// ---------------------------------------------------------------------

TEST(WeightedEstimator, UnitWeightsMatchUnweightedBitExactly)
{
    // addWeighted with every weight 1.0 must reproduce the unweighted
    // estimator bit for bit: effective counts k*n/n and n*n/n are
    // exact in IEEE-754 for campaign-scale n, so the intervals and
    // stop decisions cannot drift between the two paths.
    for (auto [k, n] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 50}, {3, 97}, {50, 100}, {999, 1000}, {0, 4000}}) {
        Estimator plain(0.01, 0.95), weighted(0.01, 0.95);
        plain.add(k, n);
        weighted.addWeighted(static_cast<double>(k),
                             static_cast<double>(n),
                             static_cast<double>(n),
                             static_cast<double>(k), k, n);
        EXPECT_EQ(plain.hasData(), weighted.hasData());
        EXPECT_DOUBLE_EQ(plain.effEvents(), weighted.effEvents());
        EXPECT_DOUBLE_EQ(plain.effTrials(), weighted.effTrials());
        EXPECT_DOUBLE_EQ(plain.mean(), weighted.mean());
        EXPECT_DOUBLE_EQ(plain.interval().lo, weighted.interval().lo);
        EXPECT_DOUBLE_EQ(plain.interval().hi, weighted.interval().hi);
        EXPECT_EQ(plain.converged(), weighted.converged());
    }
}

TEST(WeightedEstimator, EffectiveCountsShrinkWithWeightVariance)
{
    // Equal weights: ESS = n. Wildly unequal weights: ESS collapses
    // toward 1 — and the interval must widen accordingly.
    Estimator even(0.01, 0.95), skewed(0.01, 0.95);
    even.addWeighted(10.0, 100.0, 100.0, 10.0, 10, 100);
    EXPECT_DOUBLE_EQ(even.effTrials(), 100.0);
    // 99 runs of weight ~0 plus one of weight 100.
    skewed.addWeighted(100.0, 100.0 + 99 * 1e-6,
                       10000.0 + 99 * 1e-12, 10000.0, 1, 100);
    EXPECT_LT(skewed.effTrials(), 2.0);
    EXPECT_GT(skewed.interval().halfWidth(),
              even.interval().halfWidth());
}

TEST(WeightedEstimator, ConcentratedEventsTightenTheInterval)
{
    // The payoff case for importance sampling: a proposal that makes
    // events common but down-weighted. 200 of 1000 runs are events at
    // weight 0.1 each; the rest carry weight 1.225 so E[w] = 1. The
    // variance-matched interval must beat the plain-MC interval at the
    // same mean (20 events in 1000 unit-weight runs) — the Kish-ESS
    // interval never could, since ESS <= n.
    Estimator weighted(0.001, 0.95), plain(0.001, 0.95);
    double wEvents = 200 * 0.1;           // 20
    double wNon = (1000.0 - wEvents) / 800.0;
    double wSq = 200 * 0.01 + 800 * wNon * wNon;
    weighted.addWeighted(wEvents, 1000.0, wSq, 200 * 0.01, 200, 1000);
    plain.add(20, 1000);
    EXPECT_DOUBLE_EQ(weighted.mean(), plain.mean());
    EXPECT_LT(weighted.interval().halfWidth(),
              plain.interval().halfWidth());
}

TEST(WeightedEstimator, ExtremeLikelihoodRatiosStayFinite)
{
    // Log-weights beyond exp()'s range are clamped, never inf/NaN,
    // and a NaN log-weight degrades to weight 1 (the safe identity).
    EXPECT_TRUE(std::isfinite(inject::likelihoodWeight(1e6)));
    EXPECT_TRUE(std::isfinite(inject::likelihoodWeight(-1e6)));
    EXPECT_GT(inject::likelihoodWeight(1e6), 0.0);
    EXPECT_GT(inject::likelihoodWeight(-1e6), 0.0);
    EXPECT_DOUBLE_EQ(inject::likelihoodWeight(0.0), 1.0);
    EXPECT_DOUBLE_EQ(
        inject::likelihoodWeight(
            std::numeric_limits<double>::quiet_NaN()),
        1.0);

    // Accumulating such weights keeps every estimator output finite.
    Estimator e(0.01, 0.95);
    double w = inject::likelihoodWeight(750.0);
    e.addWeighted(w, w + 99.0, w * w + 99.0, w * w, 1, 100);
    EXPECT_TRUE(std::isfinite(e.mean()));
    EXPECT_TRUE(std::isfinite(e.interval().lo));
    EXPECT_TRUE(std::isfinite(e.interval().hi));
    EXPECT_GE(e.interval().lo, 0.0);
    EXPECT_LE(e.interval().hi, 1.0);
}

TEST(WeightedEstimator, WeightedCampaignResultAccessors)
{
    // avmWeighted is the self-normalized estimate; ESS is Kish's
    // formula; EngineFault runs contribute to none of the sums (the
    // campaign aggregation skips them before the weighted fold).
    inject::CampaignResult r;
    r.weightedModel = true;
    r.runs = 4;
    r.sdc = 1;
    r.masked = 2;
    r.engineFault = 1;
    r.weightSum = 0.5 + 2.0 + 1.0;
    r.weightUnsafe = 0.5;
    r.weightSqSum = 0.25 + 4.0 + 1.0;
    r.weightUnsafeSqSum = 0.25;
    EXPECT_DOUBLE_EQ(r.avmWeighted(), 0.5 / 3.5);
    EXPECT_DOUBLE_EQ(r.ess(), 3.5 * 3.5 / 5.25);
    auto iv = r.avmWeightedInterval(0.95);
    EXPECT_TRUE(iv.contains(r.avmWeighted()));

    inject::CampaignResult empty;
    empty.weightedModel = true;
    EXPECT_TRUE(std::isnan(empty.avmWeighted()));
    EXPECT_DOUBLE_EQ(empty.ess(), 0.0);
}

TEST(Estimator, ConvergesOnTightInterval)
{
    // Zero events over 2000 trials: Wilson half-width ~ 1e-3 << 0.01.
    Estimator e(0.01, 0.95);
    e.add(0, 2000);
    EXPECT_TRUE(e.converged());
    EXPECT_LE(e.interval().halfWidth(), 0.01);

    // p near 0.5 needs the worst-case count; 100 trials are not it.
    Estimator worst(0.01, 0.95);
    worst.add(50, 100);
    EXPECT_FALSE(worst.converged());
    EXPECT_TRUE(worst.shouldStop(100)); // ... but the cap stops it
    EXPECT_FALSE(worst.shouldStop(101));
}

// ---------------------------------------------------------------------
// Adaptive planner
// ---------------------------------------------------------------------

namespace {

PlannerConfig
testConfig()
{
    PlannerConfig cfg;
    cfg.ciTarget = 0.01;
    cfg.ciConf = 0.95;
    cfg.maxPerStratum = 4096;
    cfg.initialRound = 128;
    cfg.unit = 1;
    return cfg;
}

} // namespace

TEST(AdaptivePlanner, AllocationsAreDeterministic)
{
    // Two planners fed the same counts plan identical rounds — the
    // property every campaign determinism claim rests on.
    AdaptivePlanner p1(testConfig(), 4), p2(testConfig(), 4);
    for (int round = 0; round < 12 && !p1.done(); ++round) {
        auto a1 = p1.planRound();
        auto a2 = p2.planRound();
        ASSERT_EQ(a1, a2);
        for (size_t s = 0; s < a1.size(); ++s) {
            // A deterministic pseudo-outcome: stratum s sees rate s/8.
            uint64_t events = a1[s] * s / 8;
            p1.record(s, events, a1[s]);
            p2.record(s, events, a1[s]);
        }
    }
    EXPECT_EQ(p1.totalAllocated(), p2.totalAllocated());
    EXPECT_EQ(p1.rounds(), p2.rounds());
}

TEST(AdaptivePlanner, RespectsUnitGranularityAndFloor)
{
    auto cfg = testConfig();
    cfg.unit = 512;
    cfg.initialRound = 512 * 6;
    cfg.maxPerStratum = 512 * 7 + 100; // deliberately not a multiple
    AdaptivePlanner p(cfg, 3);
    auto alloc = p.planRound();
    for (size_t s = 0; s < 3; ++s) {
        EXPECT_GE(alloc[s], 512u); // every active stratum samples
        // Unit multiples, except where the cap clips the last shard.
        EXPECT_TRUE(alloc[s] % 512 == 0 ||
                    alloc[s] == cfg.maxPerStratum)
            << alloc[s];
    }
}

TEST(AdaptivePlanner, NeymanFavoursHighVarianceStrata)
{
    auto cfg = testConfig();
    cfg.ciTarget = 0.001; // keep both strata unconverged
    AdaptivePlanner p(cfg, 2);
    p.record(0, 500, 1000); // p ~ 0.5: maximum binomial variance
    p.record(1, 1, 1000);   // p ~ 0.001: nearly pinned
    auto alloc = p.planRound();
    EXPECT_GT(alloc[0], alloc[1]);
    EXPECT_GE(alloc[1], 1u); // never starved outright
}

TEST(AdaptivePlanner, ConvergedStrataStopCosting)
{
    AdaptivePlanner p(testConfig(), 2);
    p.record(0, 0, 4000); // converged (tight zero-event interval)
    p.record(1, 10, 20);
    EXPECT_FALSE(p.done());
    auto alloc = p.planRound();
    EXPECT_EQ(alloc[0], 0u);
    EXPECT_GT(alloc[1], 0u);
    EXPECT_EQ(p.earlyStops(), 1u);
}

TEST(AdaptivePlanner, TerminatesAtCapAndCountsTotals)
{
    auto cfg = testConfig();
    cfg.ciTarget = 0.0001; // unreachably tight: cap must terminate
    cfg.maxPerStratum = 1000;
    AdaptivePlanner p(cfg, 3);
    int guard = 0;
    while (!p.done()) {
        ASSERT_LT(guard++, 50);
        auto alloc = p.planRound();
        uint64_t any = 0;
        for (size_t s = 0; s < alloc.size(); ++s) {
            p.record(s, alloc[s] / 2, alloc[s]);
            any += alloc[s];
        }
        ASSERT_GT(any, 0u); // never plans an all-zero "round"
    }
    EXPECT_EQ(p.totalRecorded(), 3u * 1000u);
    EXPECT_EQ(p.totalAllocated(), p.totalRecorded());
    EXPECT_EQ(p.earlyStops(), 0u);
    // Once done, further rounds are empty.
    auto alloc = p.planRound();
    for (uint64_t a : alloc)
        EXPECT_EQ(a, 0u);
}

// ---------------------------------------------------------------------
// Adaptive DTA campaigns
// ---------------------------------------------------------------------

namespace {

fpu::FpuCore &
core()
{
    static fpu::FpuCore c;
    return c;
}

size_t
vr20Point()
{
    static size_t p = core().addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    return p;
}

size_t
nominalPoint()
{
    static size_t p = core().addOperatingPoint(1.0);
    return p;
}

void
expectSameStats(const timing::CampaignStats &a,
                const timing::CampaignStats &b)
{
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &sa = a.perOp[o];
        const auto &sb = b.perOp[o];
        EXPECT_EQ(sa.total, sb.total)
            << fpu::fpuOpName(static_cast<FpuOp>(o));
        EXPECT_EQ(sa.faulty, sb.faulty)
            << fpu::fpuOpName(static_cast<FpuOp>(o));
        for (unsigned bit = 0; bit < 64; ++bit)
            EXPECT_EQ(sa.bitErrors[bit], sb.bitErrors[bit]);
        EXPECT_EQ(sa.maskPool, sb.maskPool);
    }
}

} // namespace

TEST(AdaptiveDta, RandomCampaignBitIdenticalAcrossThreadsAndLanes)
{
    PlannerConfig cfg;
    cfg.ciTarget = 0.02;
    cfg.ciConf = 0.95;
    cfg.maxPerStratum = 2048;

    timing::CampaignStats ref;
    bool first = true;
    for (unsigned threads : {1u, 3u}) {
        for (unsigned lanes : {1u, 64u}) {
            timing::setDtaLanes(lanes);
            ThreadPool pool(threads);
            Rng rng(42);
            auto s = timing::runAdaptiveRandomCampaign(
                core(), vr20Point(), cfg, rng, &pool);
            if (first) {
                ref = std::move(s);
                first = false;
            } else {
                expectSameStats(ref, s);
            }
        }
    }
    timing::setDtaLanes(0);
    EXPECT_GT(ref.totalOps(), 0u);
    EXPECT_EQ(ref.engineFaults, 0u);
}

TEST(AdaptiveDta, RandomCampaignStopsFarBelowWorstCase)
{
    // At VR20 most op types are error-free or nearly so; their
    // intervals converge after a shard or two, far below the fixed-N
    // worst-case budget worstCaseTrials(0.03) = 1068 per type.
    PlannerConfig cfg;
    cfg.ciTarget = 0.03;
    cfg.ciConf = 0.95;
    cfg.maxPerStratum = worstCaseTrials(0.03, 0.95);
    ThreadPool pool(2);
    Rng rng(7);
    auto s = timing::runAdaptiveRandomCampaign(core(), vr20Point(),
                                               cfg, rng, &pool);
    uint64_t fixedBudget = fpu::kNumFpuOps * cfg.maxPerStratum;
    EXPECT_GT(s.totalOps(), 0u);
    EXPECT_LT(s.totalOps(), fixedBudget / 2);
    // Every stratum either converged or hit its cap.
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &os = s.perOp[o];
        EXPECT_TRUE(os.errorInterval(0.95).halfWidth() <= 0.03 ||
                    os.total >= cfg.maxPerStratum)
            << fpu::fpuOpName(static_cast<FpuOp>(o));
    }
}

TEST(AdaptiveDta, TraceCampaignMatchesFixedWhenTargetUnreachable)
{
    // An unreachably tight target makes the adaptive trace campaign
    // consume the whole fixed-N window list — and because windows keep
    // their fixed-N keys, the result is bit-identical to fixed-N.
    std::vector<sim::FpTraceEntry> trace;
    Rng rng(6);
    for (int i = 0; i < 4000; ++i) {
        uint64_t a, b;
        timing::randomOperands(FpuOp::AddD, rng, a, b);
        trace.push_back({FpuOp::AddD, a, b});
    }
    auto fixed =
        timing::runTraceCampaign(core(), nominalPoint(), trace, 2000);

    PlannerConfig cfg;
    cfg.ciTarget = 1e-4; // nominal is error-free; 2000 ops can't reach
    cfg.ciConf = 0.95;
    ThreadPool pool(2);
    auto adaptive = timing::runAdaptiveTraceCampaign(
        core(), nominalPoint(), trace, 2000, cfg, &pool);
    expectSameStats(fixed, adaptive);
}

TEST(AdaptiveDta, TraceCampaignConsumesPrefixOnLooseTarget)
{
    std::vector<sim::FpTraceEntry> trace;
    Rng rng(8);
    for (int i = 0; i < 4000; ++i) {
        uint64_t a, b;
        timing::randomOperands(FpuOp::AddD, rng, a, b);
        trace.push_back({FpuOp::AddD, a, b});
    }
    PlannerConfig cfg;
    cfg.ciTarget = 0.05; // zero-event interval tightens fast
    cfg.ciConf = 0.95;
    auto adaptive = timing::runAdaptiveTraceCampaign(
        core(), nominalPoint(), trace, 2000, cfg);
    auto fixed =
        timing::runTraceCampaign(core(), nominalPoint(), trace, 2000);
    EXPECT_GT(adaptive.totalOps(), 0u);
    EXPECT_LT(adaptive.totalOps(), fixed.totalOps());
    EXPECT_LE(adaptive.errorInterval(0.95).halfWidth(), 0.05);
}

// ---------------------------------------------------------------------
// Adaptive injection campaigns
// ---------------------------------------------------------------------

namespace {

inject::InjectionCampaign &
sobel()
{
    static inject::InjectionCampaign c(
        workloads::buildWorkload("sobel", 1));
    return c;
}

timing::CampaignStats
aggressiveStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100;
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    auto &div = stats.of(FpuOp::DivD);
    div.total = 1000;
    div.faulty = 50;
    div.maskPool = {0x7ff8000000000000ULL, 0x3ff0000000000000ULL};
    return stats;
}

void
expectSameResult(const inject::CampaignResult &a,
                 const inject::CampaignResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
    EXPECT_EQ(a.timeout, b.timeout);
    EXPECT_EQ(a.engineFault, b.engineFault);
    EXPECT_EQ(a.injectedErrors, b.injectedErrors);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
}

} // namespace

TEST(AdaptiveInjection, StopsEarlyAndIsThreadCountInvariant)
{
    models::WaModel model("hot", aggressiveStats());
    inject::InjectionCampaign::RunOptions opts;
    opts.ciTarget = 0.2; // loose: converges well before the cap
    opts.ciConf = 0.95;
    opts.initialRound = 16;

    inject::CampaignResult res[2];
    unsigned threads[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        ThreadPool pool(threads[i]);
        opts.pool = &pool;
        Rng rng(9);
        res[i] = sobel().run(model, 64, rng, opts);
    }
    expectSameResult(res[0], res[1]);
    EXPECT_GE(res[0].runs, 16u);
    EXPECT_LT(res[0].runs, 64u);
    EXPECT_LE(res[0].avmInterval(0.95).halfWidth(), 0.2);
}

TEST(AdaptiveInjection, AdaptiveResultIsPrefixOfFixedCampaign)
{
    // Run i draws from rng.fork(i) in both modes, so an adaptive
    // campaign that stopped after N runs is bit-identical to a fixed
    // campaign of exactly N runs.
    models::WaModel model("hot", aggressiveStats());
    inject::InjectionCampaign::RunOptions opts;
    opts.ciTarget = 0.2;
    opts.initialRound = 16;
    Rng rng(9);
    auto adaptive = sobel().run(model, 64, rng, opts);

    Rng rng2(9);
    auto fixed = sobel().run(
        model, static_cast<int>(adaptive.runs), rng2,
        inject::InjectionCampaign::RunOptions{});
    expectSameResult(adaptive, fixed);
}

TEST(AdaptiveInjection, IntervalAccessorsMatchWilson)
{
    inject::CampaignResult r;
    r.runs = 100;
    r.masked = 90;
    r.sdc = 10;
    auto iv = r.avmInterval(0.95);
    auto ref = wilson(10, 100, 0.95);
    EXPECT_DOUBLE_EQ(iv.lo, ref.lo);
    EXPECT_DOUBLE_EQ(iv.hi, ref.hi);
    auto fm = r.fractionInterval(inject::Outcome::Masked, 0.95);
    auto refm = wilson(90, 100, 0.95);
    EXPECT_DOUBLE_EQ(fm.lo, refm.lo);
    EXPECT_DOUBLE_EQ(fm.hi, refm.hi);
}

TEST(AdaptiveInjection, UnclassifiedResultsAreNaNNotZero)
{
    inject::CampaignResult r;
    r.runs = 3;
    r.engineFault = 3;
    EXPECT_TRUE(std::isnan(r.avm()));
    EXPECT_TRUE(std::isnan(r.fraction(inject::Outcome::Masked)));
    EXPECT_DOUBLE_EQ(r.fraction(inject::Outcome::EngineFault), 1.0);
    // Vacuous interval when nothing was classified.
    auto iv = r.avmInterval(0.95);
    EXPECT_DOUBLE_EQ(iv.lo, 0.0);
    EXPECT_DOUBLE_EQ(iv.hi, 1.0);

    inject::CampaignResult empty;
    EXPECT_TRUE(
        std::isnan(empty.fraction(inject::Outcome::EngineFault)));
}
