/**
 * Cross-engine DTA equivalence suite (ctest label tier1dta).
 *
 * The contract under test: the bit-parallel lane engine, the scalar
 * levelized engine, and the exact event-driven reference agree where
 * they must — and campaigns produce bit-identical statistics at every
 * lane width and thread count. Also pins the float->double arrival
 * precision fix and the deterministic mask-pool reservoir.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "circuit/builders.hh"
#include "circuit/celllib.hh"
#include "circuit/dta.hh"
#include "fpu/fpu_core.hh"
#include "timing/ber_csv.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

using namespace tea;
using namespace tea::circuit;
using namespace tea::timing;
using fpu::FpuOp;

namespace {

/** Shared FPU fixture: construction (netlists + STA) dominates cost. */
fpu::FpuCore &
core()
{
    static fpu::FpuCore c;
    return c;
}

size_t
vr20Point()
{
    static size_t p = core().addOperatingPoint(
        VoltageModel{}.delayFactorAtReduction(kVR20));
    return p;
}

/** Deep inverter chain: every gate adds one delay term, so arrival is a
 * long sequential sum — exactly where float accumulation diverges. */
Netlist
chainNetlist(unsigned depth)
{
    Netlist nl("chain");
    NetId n = nl.addInput("a");
    for (unsigned i = 0; i < depth; ++i)
        n = nl.addGate(CellKind::Not, n);
    nl.addOutputBus("out", {n});
    return nl;
}

/** Compare every per-op statistic two campaigns accumulated. */
void
expectIdenticalStats(const CampaignStats &got, const CampaignStats &ref,
                     const char *what)
{
    EXPECT_EQ(got.engineFaults, ref.engineFaults) << what;
    EXPECT_EQ(got.interrupted, ref.interrupted) << what;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &g = got.perOp[o];
        const auto &r = ref.perOp[o];
        ASSERT_EQ(g.total, r.total) << what << " op " << o;
        ASSERT_EQ(g.faulty, r.faulty) << what << " op " << o;
        for (unsigned b = 0; b < 64; ++b)
            ASSERT_EQ(g.bitErrors[b], r.bitErrors[b])
                << what << " op " << o << " bit " << b;
        ASSERT_EQ(g.maskPool, r.maskPool) << what << " op " << o;
        ASSERT_EQ(g.maskKeys, r.maskKeys) << what << " op " << o;
    }
    // The figure-artifact view of the same statistics must be
    // byte-identical too (this is what fig7/fig8 --csv emit).
    EXPECT_EQ(berCsv(got), berCsv(ref)) << what;
}

} // namespace

TEST(DtaEquivalence, EnginesAgreeOnSettledValues)
{
    // Functional (settled) outputs are exact in all three engines.
    Netlist nl("mix");
    Builder bld(nl);
    Bus ia = nl.addInputBus("a", 6);
    Bus ib = nl.addInputBus("b", 6);
    auto add = bld.rippleAdd(ia, ib);
    Bus out = add.sum;
    out.push_back(add.carry);
    nl.addOutputBus("s", out);

    DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta exact(nl, annot, 1.3);
    LevelizedDta lev(nl, annot, 1.3);
    LaneDta lane(nl, annot, 1.3);

    Rng rng(40);
    for (int round = 0; round < 32; ++round) {
        std::vector<bool> prev(nl.numInputs()), cur(nl.numInputs());
        for (size_t i = 0; i < nl.numInputs(); ++i) {
            prev[i] = rng.next() & 1;
            cur[i] = rng.next() & 1;
        }
        auto re = exact.run(prev, cur, 1e9);
        auto rl = lev.run(prev, cur, 1e9);
        std::vector<uint64_t> pp(nl.numInputs(), 0), cp(nl.numInputs(), 0);
        for (size_t i = 0; i < nl.numInputs(); ++i) {
            pp[i] = prev[i] ? 1 : 0;
            cp[i] = cur[i] ? 1 : 0;
        }
        const auto &rb = lane.runBatch(pp, cp, 1e9, 1);
        for (size_t k = 0; k < re.settled.size(); ++k) {
            ASSERT_EQ(rl.settled[k], re.settled[k]);
            ASSERT_EQ(rb.settled[k] & 1, uint64_t{re.settled[k]});
            // No error at an infinite capture time.
            ASSERT_EQ(rl.captured[k], rl.settled[k]);
            ASSERT_EQ(rb.captured[k] & 1, rb.settled[k] & 1);
        }
    }
}

TEST(DtaEquivalence, DeepChainArrivalMatchesExactReference)
{
    // Regression for the float->double arrival fix: with float
    // accumulation a ~2000-deep chain drifts by whole picoseconds from
    // the event-driven reference; with double both engines perform the
    // same sequence of double additions and agree to the last ulp.
    Netlist nl = chainNetlist(2000);
    DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta exact(nl, annot, 1.1);
    LevelizedDta lev(nl, annot, 1.1);
    LaneDta lane(nl, annot, 1.1);

    std::vector<bool> prev{false}, cur{true};
    auto re = exact.run(prev, cur, 1e12);
    auto rl = lev.run(prev, cur, 1e12);
    ASSERT_GT(re.maxArrivalPs, 1e4); // deep chain: a long sum
    EXPECT_DOUBLE_EQ(rl.maxArrivalPs, re.maxArrivalPs);
    // A capture edge inside the last gate delay separates float from
    // double: classify against the exact arrival. Here the chain is
    // capture-risky, so the lane engine's arrival is exact too.
    double edge = re.maxArrivalPs - 1e-9;
    auto rl2 = lev.run(prev, cur, edge);
    const auto &rb2 = lane.runBatch({0}, {1}, edge, 1);
    EXPECT_NE(rl2.captured[0], rl2.settled[0]);
    EXPECT_EQ((rb2.captured[0] ^ rb2.settled[0]) & 1, 1u);
    EXPECT_DOUBLE_EQ(rb2.maxArrivalPs[0], re.maxArrivalPs);
}

TEST(DtaEquivalence, ExecuteBatchMatchesSequentialExecute)
{
    auto &c = core();
    size_t pt = vr20Point();
    constexpr unsigned kOps = 600;

    Rng rng(41);
    std::vector<uint64_t> a(kOps), b(kOps);
    for (unsigned i = 0; i < kOps; ++i)
        randomOperands(FpuOp::MulD, rng, a[i], b[i]);

    // Reference: sequential scalar stream (history carries across).
    c.reset(pt);
    std::vector<fpu::FpuCore::Exec> ref;
    for (unsigned i = 0; i < kOps; ++i)
        ref.push_back(c.execute(pt, FpuOp::MulD, a[i], b[i]));

    // Same stream cut into batches and scalar interludes: the batch
    // boundary must continue the pipeline history exactly.
    c.reset(pt);
    std::vector<fpu::FpuCore::Exec> got(kOps);
    unsigned i = 0;
    for (unsigned seg : {5u, 64u, 3u, 64u, 17u, 64u, 2u, 64u, 29u, 64u,
                         64u, 64u, 64u, 32u}) {
        ASSERT_LE(i + seg, kOps);
        if (seg < 8) {
            for (unsigned k = 0; k < seg; ++k)
                got[i + k] = c.execute(pt, FpuOp::MulD, a[i + k], b[i + k]);
        } else {
            c.executeBatch(pt, FpuOp::MulD, a.data() + i, b.data() + i,
                           seg, got.data() + i);
        }
        i += seg;
    }
    ASSERT_EQ(i, kOps);

    unsigned faulty = 0;
    for (unsigned k = 0; k < kOps; ++k) {
        ASSERT_EQ(got[k].golden, ref[k].golden) << "op " << k;
        ASSERT_EQ(got[k].faulty, ref[k].faulty) << "op " << k;
        ASSERT_EQ(got[k].errorMask, ref[k].errorMask) << "op " << k;
        ASSERT_EQ(got[k].goldenFlags, ref[k].goldenFlags) << "op " << k;
        ASSERT_EQ(got[k].faultyFlags, ref[k].faultyFlags) << "op " << k;
        ASSERT_EQ(got[k].timingError, ref[k].timingError) << "op " << k;
        // Arrival contract of the batch path: exact above the capture
        // time, lower bound below it.
        if (ref[k].maxArrivalPs > c.captureTimePs())
            EXPECT_DOUBLE_EQ(got[k].maxArrivalPs, ref[k].maxArrivalPs)
                << "op " << k;
        else
            EXPECT_LE(got[k].maxArrivalPs, ref[k].maxArrivalPs)
                << "op " << k;
        faulty += ref[k].timingError;
    }
    // The comparison only means something if errors actually occur.
    EXPECT_GT(faulty, 0u);
}

TEST(DtaEquivalence, RandomCampaignInvariantAcrossLanesAndThreads)
{
    auto &c = core();
    size_t pt = vr20Point();
    // 160 ops/type: two full 64-lane blocks plus a 32-op scalar
    // remainder per shard, so both paths run.
    constexpr uint64_t kPerOp = 160;

    auto run = [&](unsigned lanes, unsigned threads) {
        setDtaLanes(lanes);
        ThreadPool pool(threads);
        Rng rng(42);
        auto stats = runRandomCampaign(c, pt, kPerOp, rng, &pool);
        setDtaLanes(0); // back to REPRO_DTA_LANES
        return stats;
    };

    auto ref = run(1, 1);
    EXPECT_EQ(ref.totalOps(), kPerOp * fpu::kNumFpuOps);
    EXPECT_GT(ref.totalFaulty(), 0u);

    struct Config
    {
        unsigned lanes, threads;
    };
    for (Config cfg : {Config{64, 1}, Config{16, 3}, Config{64, 2}}) {
        auto got = run(cfg.lanes, cfg.threads);
        char what[64];
        std::snprintf(what, sizeof(what), "lanes=%u threads=%u",
                      cfg.lanes, cfg.threads);
        expectIdenticalStats(got, ref, what);
    }
}

TEST(DtaEquivalence, TraceCampaignInvariantWithMixedOpRuns)
{
    auto &c = core();
    size_t pt = vr20Point();

    // Mixed-op trace: long MulD runs (lane blocks) broken by short
    // AddD/SubD bursts (scalar fallback — a run shorter than the lane
    // width never forms a block).
    std::vector<sim::FpTraceEntry> trace;
    Rng rng(43);
    auto push = [&](FpuOp op, unsigned n) {
        for (unsigned i = 0; i < n; ++i) {
            uint64_t a, b;
            randomOperands(op, rng, a, b);
            trace.push_back({op, a, b});
        }
    };
    for (int block = 0; block < 8; ++block) {
        push(FpuOp::MulD, 130);
        push(FpuOp::AddD, 5);
        push(FpuOp::SubD, 3);
    }

    auto run = [&](unsigned lanes, unsigned threads) {
        setDtaLanes(lanes);
        ThreadPool pool(threads);
        auto stats = runTraceCampaign(c, pt, trace, trace.size(), &pool);
        setDtaLanes(0);
        return stats;
    };

    auto ref = run(1, 1);
    EXPECT_EQ(ref.totalOps(), trace.size());
    EXPECT_GT(ref.totalFaulty(), 0u);
    auto got64 = run(64, 1);
    expectIdenticalStats(got64, ref, "trace lanes=64 threads=1");
    auto got64t = run(64, 2);
    expectIdenticalStats(got64t, ref, "trace lanes=64 threads=2");
}

TEST(DtaReservoir, CapBoundsPoolAndKeepsSmallestKeys)
{
    constexpr size_t kStream = 6000;
    OpErrorStats s;
    std::vector<std::pair<uint64_t, uint64_t>> all; // (key, mask)
    for (size_t i = 0; i < kStream; ++i) {
        uint64_t key = maskPriority(5, 2, i);
        uint64_t mask = (i * 0x9e3779b97f4a7c15ULL) | 1;
        s.addMask(mask, key);
        all.emplace_back(key, mask);
    }
    ASSERT_EQ(s.maskPool.size(), OpErrorStats::kMaskPoolCap);
    ASSERT_EQ(s.maskKeys.size(), OpErrorStats::kMaskPoolCap);

    // Content = the kMaskPoolCap smallest (key, mask) pairs.
    std::sort(all.begin(), all.end());
    all.resize(OpErrorStats::kMaskPoolCap);
    std::vector<std::pair<uint64_t, uint64_t>> kept;
    for (size_t i = 0; i < s.maskPool.size(); ++i)
        kept.emplace_back(s.maskKeys[i], s.maskPool[i]);
    std::sort(kept.begin(), kept.end());
    EXPECT_EQ(kept, all);
}

TEST(DtaReservoir, MergeIsSplitInvariant)
{
    constexpr size_t kStream = 6000;
    auto feed = [](OpErrorStats &s, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            s.addMask((i * 0x9e3779b97f4a7c15ULL) | 1,
                      maskPriority(9, 4, i));
    };
    auto sortedPairs = [](const OpErrorStats &s) {
        std::vector<std::pair<uint64_t, uint64_t>> v;
        for (size_t i = 0; i < s.maskPool.size(); ++i)
            v.emplace_back(s.maskKeys[i], s.maskPool[i]);
        std::sort(v.begin(), v.end());
        return v;
    };

    OpErrorStats whole;
    feed(whole, 0, kStream);
    for (size_t cut : {size_t{100}, size_t{2500}, size_t{5900}}) {
        OpErrorStats a, b;
        feed(a, 0, cut);
        feed(b, cut, kStream);
        a.merge(b);
        ASSERT_EQ(a.maskPool.size(), OpErrorStats::kMaskPoolCap);
        EXPECT_EQ(sortedPairs(a), sortedPairs(whole)) << "cut " << cut;
    }
}

TEST(DtaReservoir, SealLoadedPoolPreservesOrder)
{
    OpErrorStats s;
    s.maskPool = {0x50, 0x07, 0x90}; // cache-load path: masks only
    s.sealLoadedPool();
    EXPECT_EQ(s.maskPool, (std::vector<uint64_t>{0x50, 0x07, 0x90}));
    EXPECT_EQ(s.maskKeys, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(DtaLanes, EnvOverrideClampsAndRestores)
{
    setDtaLanes(200); // clamped to the engine maximum
    EXPECT_EQ(dtaLanes(), LaneDta::kMaxLanes);
    setDtaLanes(7);
    EXPECT_EQ(dtaLanes(), 7u);
    setDtaLanes(0); // back to the environment default
    unsigned v = dtaLanes();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, LaneDta::kMaxLanes);
}
