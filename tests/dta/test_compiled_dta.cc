/**
 * Compiled-backend DTA equivalence suite (ctest label tier1dta).
 *
 * The contract under test: the compiled SIMD-wide engine reproduces
 * the scalar levelized oracle bit-for-bit — settled values, captured
 * values, error masks, golden evaluations and (per its cone-only
 * contract) dynamic arrivals — on randomized DAGs over the full cell
 * library, at every lane width from 1 to 512, at every compiled ISA
 * level, and through whole campaigns across backend x lane-width x
 * thread-count. Also pins the REPRO_DTA_BACKEND knob semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/compiled_dta.hh"
#include "circuit/dta.hh"
#include "circuit/netlist.hh"
#include "fpu/fpu_core.hh"
#include "timing/ber_csv.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

using namespace tea;
using namespace tea::circuit;
using namespace tea::timing;
using fpu::FpuOp;

namespace {

/** Shared FPU fixture: construction (netlists + STA) dominates cost. */
fpu::FpuCore &
core()
{
    static fpu::FpuCore c;
    return c;
}

size_t
vr20Point()
{
    static size_t p = core().addOperatingPoint(
        VoltageModel{}.delayFactorAtReduction(kVR20));
    return p;
}

/**
 * Random combinational DAG over the full cell library, including the
 * 3-input cells (Mux2, Maj3), constants and copies (Buf) — the cases
 * the compiled lowering folds, propagates or specializes. Cells pick
 * fanins from everything built so far, so construction order is
 * topological by design. The last `nOuts` nets form the output bus.
 */
Netlist
randomDag(uint64_t seed, unsigned nIn, unsigned nCells, unsigned nOuts)
{
    char name[32];
    std::snprintf(name, sizeof(name), "rand%llu",
                  static_cast<unsigned long long>(seed));
    Netlist nl(name);
    Rng rng(seed);
    std::vector<NetId> pool;
    for (unsigned i = 0; i < nIn; ++i) {
        std::snprintf(name, sizeof(name), "i%u", i);
        pool.push_back(nl.addInput(name));
    }
    auto pick = [&] {
        return pool[rng.next() % pool.size()];
    };
    static constexpr CellKind kKinds[] = {
        CellKind::Buf,   CellKind::Not,   CellKind::And2,
        CellKind::Or2,   CellKind::Xor2,  CellKind::Nand2,
        CellKind::Nor2,  CellKind::Xnor2, CellKind::Mux2,
        CellKind::Maj3,  CellKind::Const0, CellKind::Const1,
    };
    for (unsigned c = 0; c < nCells; ++c) {
        CellKind k = kKinds[rng.next() % std::size(kKinds)];
        NetId n;
        switch (cellArity(k)) {
        case 0:
            n = nl.addGate(k);
            break;
        case 1:
            n = nl.addGate(k, pick());
            break;
        case 2:
            n = nl.addGate(k, pick(), pick());
            break;
        default:
            n = nl.addGate(k, pick(), pick(), pick());
            break;
        }
        pool.push_back(n);
    }
    Bus outs(pool.end() - nOuts, pool.end());
    nl.addOutputBus("o", outs);
    return nl;
}

/** One random input-transition per lane, as bool vectors. */
struct LaneVectors
{
    std::vector<std::vector<bool>> prev, cur;
};

LaneVectors
randomLanes(Rng &rng, size_t nIn, unsigned lanes)
{
    LaneVectors v;
    v.prev.resize(lanes, std::vector<bool>(nIn));
    v.cur.resize(lanes, std::vector<bool>(nIn));
    for (unsigned l = 0; l < lanes; ++l)
        for (size_t i = 0; i < nIn; ++i) {
            v.prev[l][i] = rng.next() & 1;
            v.cur[l][i] = rng.next() & 1;
        }
    return v;
}

/** Pack lane vectors into input-major W-strided planes. */
void
packPlanes(const std::vector<std::vector<bool>> &lanes, unsigned W,
           std::vector<uint64_t> &planes)
{
    size_t nIn = lanes.empty() ? 0 : lanes[0].size();
    planes.assign(nIn * W, 0);
    for (unsigned l = 0; l < lanes.size(); ++l)
        for (size_t i = 0; i < nIn; ++i)
            if (lanes[l][i])
                planes[i * W + l / 64] |= 1ULL << (l % 64);
}

/**
 * The core differential: run the compiled engine once over `lanes`
 * transitions and the scalar oracle once per lane, and assert the
 * batch reproduces every lane bit-for-bit. Golden planes are checked
 * against the independent zero-delay evaluate(). Arrivals follow the
 * cone-only contract: exact above the capture time, lower bound below.
 */
void
expectMatchesOracle(const Netlist &nl, const DelayAnnotation &annot,
                    double scale, CompiledDta &comp,
                    const LaneVectors &v, double captureTimePs,
                    unsigned lanes, const char *what)
{
    LevelizedDta lev(nl, annot, scale);
    const unsigned W = CompiledDta::wordsFor(lanes);
    std::vector<uint64_t> pp, cp, gp;
    packPlanes(v.prev, W, pp);
    packPlanes(v.cur, W, cp);
    gp = cp; // golden evaluates the current vector
    const WideBatch &wb = comp.runBatch(pp, cp, gp, captureTimePs, lanes);
    ASSERT_EQ(wb.W, W) << what;

    const size_t nOut = nl.numOutputBits();
    unsigned faultyLanes = 0;
    for (unsigned l = 0; l < lanes; ++l) {
        auto rl = lev.run(v.prev[l], v.cur[l], captureTimePs);
        auto golden = flattenOutputs(nl, evaluate(nl, v.cur[l]));
        const unsigned w = l / 64, b = l % 64;
        for (size_t o = 0; o < nOut; ++o) {
            ASSERT_EQ((wb.settled[o * W + w] >> b) & 1,
                      uint64_t{rl.settled[o]})
                << what << " lane " << l << " out " << o;
            ASSERT_EQ((wb.captured[o * W + w] >> b) & 1,
                      uint64_t{rl.captured[o]})
                << what << " lane " << l << " out " << o;
            ASSERT_EQ((wb.golden[o * W + w] >> b) & 1,
                      uint64_t{golden[o]})
                << what << " lane " << l << " out " << o;
        }
        if (rl.maxArrivalPs > captureTimePs) {
            ASSERT_DOUBLE_EQ(wb.maxArrivalPs[l], rl.maxArrivalPs)
                << what << " lane " << l;
            ++faultyLanes;
        } else {
            ASSERT_LE(wb.maxArrivalPs[l], rl.maxArrivalPs)
                << what << " lane " << l;
        }
    }
    // Record that the lane mix actually exercised the timing pass.
    if (captureTimePs < 1e8) {
        EXPECT_GT(faultyLanes, 0u) << what;
    }
}

/** Compare every per-op statistic two campaigns accumulated. */
void
expectIdenticalStats(const CampaignStats &got, const CampaignStats &ref,
                     const char *what)
{
    EXPECT_EQ(got.engineFaults, ref.engineFaults) << what;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &g = got.perOp[o];
        const auto &r = ref.perOp[o];
        ASSERT_EQ(g.total, r.total) << what << " op " << o;
        ASSERT_EQ(g.faulty, r.faulty) << what << " op " << o;
        for (unsigned b = 0; b < 64; ++b)
            ASSERT_EQ(g.bitErrors[b], r.bitErrors[b])
                << what << " op " << o << " bit " << b;
        ASSERT_EQ(g.maskPool, r.maskPool) << what << " op " << o;
        ASSERT_EQ(g.maskKeys, r.maskKeys) << what << " op " << o;
    }
    EXPECT_EQ(berCsv(got), berCsv(ref)) << what;
}

} // namespace

TEST(CompiledDta, WordsForLaneCount)
{
    EXPECT_EQ(CompiledDta::wordsFor(1), 1u);
    EXPECT_EQ(CompiledDta::wordsFor(64), 1u);
    EXPECT_EQ(CompiledDta::wordsFor(65), 2u);
    EXPECT_EQ(CompiledDta::wordsFor(128), 2u);
    EXPECT_EQ(CompiledDta::wordsFor(129), 4u);
    EXPECT_EQ(CompiledDta::wordsFor(256), 4u);
    EXPECT_EQ(CompiledDta::wordsFor(257), 8u);
    EXPECT_EQ(CompiledDta::wordsFor(512), 8u);
}

TEST(CompiledDta, RandomDagsMatchOracleAtEveryWidth)
{
    // Three random DAGs x six lane widths spanning every word count
    // and both word-boundary edges (63/64/65). The capture time is
    // chosen inside the arrival distribution so some lanes fail and
    // some settle — both branches of the timing pass run.
    for (uint64_t seed : {7u, 8u, 9u}) {
        Netlist nl = randomDag(seed, 12, 260, 24);
        DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
        const double scale = 1.25;
        CompiledDta comp(nl, annot, scale);
        LevelizedDta lev(nl, annot, scale);

        // Probe the arrival scale with one scalar run per corner.
        Rng probeRng(seed * 100 + 1);
        auto probe = randomLanes(probeRng, nl.numInputs(), 8);
        double maxArr = 0.0;
        for (unsigned l = 0; l < 8; ++l)
            maxArr = std::max(
                maxArr,
                lev.run(probe.prev[l], probe.cur[l], 1e9).maxArrivalPs);
        ASSERT_GT(maxArr, 0.0);
        const double cap = maxArr * 0.55;

        for (unsigned lanes : {1u, 63u, 64u, 65u, 256u, 512u}) {
            Rng rng(seed * 100 + lanes);
            auto v = randomLanes(rng, nl.numInputs(), lanes);
            char what[64];
            std::snprintf(what, sizeof(what), "seed %llu lanes %u",
                          static_cast<unsigned long long>(seed), lanes);
            expectMatchesOracle(nl, annot, scale, comp, v, cap, lanes,
                                what);
        }
    }
}

TEST(CompiledDta, WideOutputBusBeyond64Bits)
{
    // More than 64 flat output bits: the per-output plane loop and the
    // error-mask extraction must index word-major correctly past the
    // first uint64 of outputs.
    Netlist nl = randomDag(21, 10, 300, 90);
    ASSERT_GT(nl.numOutputBits(), 64u);
    DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
    CompiledDta comp(nl, annot, 1.2);
    LevelizedDta lev(nl, annot, 1.2);

    Rng probeRng(2100);
    auto probe = randomLanes(probeRng, nl.numInputs(), 4);
    double maxArr = 0.0;
    for (unsigned l = 0; l < 4; ++l)
        maxArr = std::max(
            maxArr,
            lev.run(probe.prev[l], probe.cur[l], 1e9).maxArrivalPs);
    const double cap = maxArr * 0.6;

    for (unsigned lanes : {64u, 512u}) {
        Rng rng(2100 + lanes);
        auto v = randomLanes(rng, nl.numInputs(), lanes);
        char what[48];
        std::snprintf(what, sizeof(what), "wide-out lanes %u", lanes);
        expectMatchesOracle(nl, annot, 1.2, comp, v, cap, lanes, what);
    }
}

TEST(CompiledDta, CaptureEdgeInsideLastGateDelay)
{
    // The capture time sits 1e-9 ps below one lane's exact arrival:
    // that lane must fail with an arrival reported to the last ulp,
    // while an infinite capture time keeps every lane clean. This is
    // the double-precision edge the float arrival drift used to lose.
    Netlist nl = randomDag(33, 8, 200, 16);
    DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
    const double scale = 1.15;
    CompiledDta comp(nl, annot, scale);
    LevelizedDta lev(nl, annot, scale);

    const unsigned lanes = 96; // two words, partially filled
    Rng rng(3300);
    auto v = randomLanes(rng, nl.numInputs(), lanes);

    // Pick the lane with the largest exact arrival and straddle it.
    double worst = 0.0;
    unsigned worstLane = 0;
    for (unsigned l = 0; l < lanes; ++l) {
        double a = lev.run(v.prev[l], v.cur[l], 1e9).maxArrivalPs;
        if (a > worst) {
            worst = a;
            worstLane = l;
        }
    }
    ASSERT_GT(worst, 0.0);
    const double edge = worst - 1e-9;

    expectMatchesOracle(nl, annot, scale, comp, v, edge, lanes,
                        "capture edge");
    // And directly: the worst lane is faulty with the exact arrival.
    const unsigned W = CompiledDta::wordsFor(lanes);
    std::vector<uint64_t> pp, cp, gp;
    packPlanes(v.prev, W, pp);
    packPlanes(v.cur, W, cp);
    gp = cp;
    const WideBatch &wb = comp.runBatch(pp, cp, gp, edge, lanes);
    EXPECT_DOUBLE_EQ(wb.maxArrivalPs[worstLane], worst);

    // No lane fails at an unreachable capture time.
    const WideBatch &clean = comp.runBatch(pp, cp, gp, 1e9, lanes);
    const size_t nOut = nl.numOutputBits();
    for (size_t o = 0; o < nOut; ++o)
        for (unsigned w = 0; w < W; ++w)
            EXPECT_EQ(clean.captured[o * W + w],
                      clean.settled[o * W + w])
                << "out " << o << " word " << w;
}

TEST(CompiledDta, IsaLevelsBitIdentical)
{
    // Every compiled ISA level must produce the same planes and the
    // same arrival doubles — vector width is throughput-only. The
    // portable level is the baseline; flipping mid-run is safe because
    // engines re-resolve their kernel tables per batch.
    Netlist nl = randomDag(55, 10, 240, 32);
    DelayAnnotation annot(nl, CellLibrary::nangate45Like(), 1);
    CompiledDta comp(nl, annot, 1.2);

    const unsigned lanes = CompiledDta::kMaxLanes;
    const unsigned W = CompiledDta::wordsFor(lanes);
    Rng rng(5500);
    auto v = randomLanes(rng, nl.numInputs(), lanes);
    std::vector<uint64_t> pp, cp, gp;
    packPlanes(v.prev, W, pp);
    packPlanes(v.cur, W, cp);
    gp = cp;
    const double cap = 300.0;

    simd::setActiveIsa(simd::Isa::Portable);
    ASSERT_EQ(simd::activeIsa(), simd::Isa::Portable);
    const WideBatch &base = comp.runBatch(pp, cp, gp, cap, lanes);
    std::vector<uint64_t> settled = base.settled;
    std::vector<uint64_t> captured = base.captured;
    std::vector<uint64_t> golden = base.golden;
    std::vector<double> arrivals = base.maxArrivalPs;

    for (simd::Isa isa : {simd::Isa::Avx2, simd::Isa::Avx512}) {
        if (!simd::isaCompiled(isa))
            continue;
        simd::setActiveIsa(isa);
        if (simd::activeIsa() != isa)
            continue; // CPU clamp: level not executable here
        const WideBatch &wb = comp.runBatch(pp, cp, gp, cap, lanes);
        EXPECT_EQ(wb.settled, settled) << simd::isaName(isa);
        EXPECT_EQ(wb.captured, captured) << simd::isaName(isa);
        EXPECT_EQ(wb.golden, golden) << simd::isaName(isa);
        ASSERT_EQ(wb.maxArrivalPs.size(), arrivals.size());
        for (size_t l = 0; l < arrivals.size(); ++l)
            ASSERT_DOUBLE_EQ(wb.maxArrivalPs[l], arrivals[l])
                << simd::isaName(isa) << " lane " << l;
    }
    simd::resetActiveIsa();
}

TEST(CompiledDta, CampaignInvariantAcrossBackendLanesThreads)
{
    // Whole-campaign identity: every backend x lane-width x thread
    // combination accumulates byte-identical statistics (and so a
    // byte-identical BER CSV). kDtaShardOps ops/type fills exactly one
    // shard, so the 256/512-lane cells genuinely form wide batches.
    auto &c = core();
    size_t pt = vr20Point();
    constexpr uint64_t kPerOp = kDtaShardOps;

    auto run = [&](DtaBackend backend, unsigned lanes,
                   unsigned threads) {
        setDtaBackend(backend);
        setDtaLanes(lanes);
        ThreadPool pool(threads);
        Rng rng(42);
        auto stats = runRandomCampaign(c, pt, kPerOp, rng, &pool);
        setDtaLanes(0);
        resetDtaBackend();
        return stats;
    };

    auto ref = run(DtaBackend::Lane, 64, 1);
    EXPECT_EQ(ref.totalOps(), kPerOp * fpu::kNumFpuOps);
    EXPECT_GT(ref.totalFaulty(), 0u);

    struct Config
    {
        DtaBackend backend;
        unsigned lanes, threads;
    };
    for (Config cfg : {Config{DtaBackend::Levelized, 64, 1},
                       Config{DtaBackend::Lane, 64, 2},
                       Config{DtaBackend::Compiled, 64, 1},
                       Config{DtaBackend::Compiled, 256, 1},
                       Config{DtaBackend::Compiled, 512, 1},
                       Config{DtaBackend::Compiled, 512, 2}}) {
        auto got = run(cfg.backend, cfg.lanes, cfg.threads);
        char what[64];
        std::snprintf(what, sizeof(what), "%s lanes=%u threads=%u",
                      dtaBackendName(cfg.backend), cfg.lanes,
                      cfg.threads);
        expectIdenticalStats(got, ref, what);
    }
}

TEST(CompiledDta, PortableFallbackCampaignCsvIdentical)
{
    // The CPUID-dispatch contract: forcing the portable kernels must
    // leave whole-campaign outputs byte-identical to the best ISA the
    // machine runs — the SIMD switch is invisible in the results.
    auto &c = core();
    size_t pt = vr20Point();

    auto run = [&] {
        setDtaBackend(DtaBackend::Compiled);
        setDtaLanes(CompiledDta::kMaxLanes);
        Rng rng(44);
        auto stats = runRandomCampaign(c, pt, kDtaShardOps, rng);
        setDtaLanes(0);
        resetDtaBackend();
        return stats;
    };

    simd::resetActiveIsa(); // best level the build + CPU support
    auto best = run();
    simd::setActiveIsa(simd::Isa::Portable);
    ASSERT_EQ(simd::activeIsa(), simd::Isa::Portable);
    auto portable = run();
    simd::resetActiveIsa();

    EXPECT_GT(best.totalFaulty(), 0u);
    expectIdenticalStats(portable, best, "portable vs best ISA");
}

TEST(DtaBackendKnob, ParseNamesAndRejectJunk)
{
    DtaBackend b = DtaBackend::Lane;
    EXPECT_TRUE(parseDtaBackend("levelized", b));
    EXPECT_EQ(b, DtaBackend::Levelized);
    EXPECT_TRUE(parseDtaBackend("lane", b));
    EXPECT_EQ(b, DtaBackend::Lane);
    EXPECT_TRUE(parseDtaBackend("compiled", b));
    EXPECT_EQ(b, DtaBackend::Compiled);

    b = DtaBackend::Compiled;
    EXPECT_FALSE(parseDtaBackend("jit", b));
    EXPECT_FALSE(parseDtaBackend("", b));
    EXPECT_FALSE(parseDtaBackend("Lane ", b));
    EXPECT_EQ(b, DtaBackend::Compiled); // junk leaves out untouched

    EXPECT_STREQ(dtaBackendName(DtaBackend::Levelized), "levelized");
    EXPECT_STREQ(dtaBackendName(DtaBackend::Lane), "lane");
    EXPECT_STREQ(dtaBackendName(DtaBackend::Compiled), "compiled");
}

TEST(DtaBackendKnob, EnvResolvesLazilyAndHardensJunk)
{
    setenv("REPRO_DTA_BACKEND", "compiled", 1);
    resetDtaBackend();
    EXPECT_EQ(dtaBackend(), DtaBackend::Compiled);

    // Malformed values warn and keep the default engine.
    setenv("REPRO_DTA_BACKEND", "turbo", 1);
    resetDtaBackend();
    EXPECT_EQ(dtaBackend(), DtaBackend::Lane);

    unsetenv("REPRO_DTA_BACKEND");
    resetDtaBackend();
    EXPECT_EQ(dtaBackend(), DtaBackend::Lane);

    // setDtaBackend overrides whatever the env said.
    setDtaBackend(DtaBackend::Levelized);
    EXPECT_EQ(dtaBackend(), DtaBackend::Levelized);
    resetDtaBackend();
}

TEST(DtaBackendKnob, LaneCeilingTracksBackend)
{
    // The lane ceiling is the active engine's: 64 for the default
    // interpreter, 512 once the compiled backend is selected.
    setDtaBackend(DtaBackend::Lane);
    setDtaLanes(512);
    EXPECT_EQ(dtaLanes(), LaneDta::kMaxLanes);
    setDtaBackend(DtaBackend::Compiled);
    setDtaLanes(512);
    EXPECT_EQ(dtaLanes(), 512u);
    setDtaLanes(4096); // above even the compiled ceiling
    EXPECT_EQ(dtaLanes(), CompiledDta::kMaxLanes);
    setDtaLanes(0);
    resetDtaBackend();
}
