#include <gtest/gtest.h>

#include <cstdio>

#include "models/error_models.hh"

using namespace tea;
using namespace tea::models;
using fpu::FpuOp;
using sim::InjectionEvent;

namespace {

ProgramProfile
sampleProfile()
{
    ProgramProfile p;
    p.totalInstructions = 100000;
    p.instructionsWithDest = 70000;
    p.fpOpCounts[static_cast<size_t>(FpuOp::MulD)] = 10000;
    p.fpOpCounts[static_cast<size_t>(FpuOp::AddD)] = 8000;
    p.fpOpCounts[static_cast<size_t>(FpuOp::DivD)] = 500;
    return p;
}

timing::CampaignStats
sampleStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 10000;
    mul.faulty = 100;
    for (int i = 0; i < 100; ++i)
        mul.maskPool.push_back(0xff00ULL << (i % 4));
    for (unsigned b = 8; b < 20; ++b)
        mul.bitErrors[b] = 50;
    auto &div = stats.of(FpuOp::DivD);
    div.total = 10000;
    div.faulty = 10;
    for (int i = 0; i < 10; ++i)
        div.maskPool.push_back(0x7ULL << i);
    return stats;
}

} // namespace

TEST(DaModel, PlansExpectedCount)
{
    DaModel model(1e-3);
    auto profile = sampleProfile();
    Rng rng(1);
    auto events = model.plan(profile, rng);
    EXPECT_EQ(events.size(), 100u); // ceil(1e5 * 1e-3)
    for (const auto &ev : events) {
        EXPECT_EQ(ev.kind, InjectionEvent::Kind::AnyDest);
        EXPECT_LT(ev.index, profile.instructionsWithDest);
        EXPECT_EQ(__builtin_popcountll(ev.mask), 1); // single bit
    }
}

TEST(DaModel, UniformBitPositions)
{
    DaModel model(1e-2);
    auto profile = sampleProfile();
    Rng rng(2);
    int hi = 0, lo = 0;
    for (int t = 0; t < 30; ++t) {
        for (const auto &ev : model.plan(profile, rng)) {
            if (ev.mask >= (1ULL << 32))
                ++hi;
            else
                ++lo;
        }
    }
    // Roughly half in each 32-bit half.
    EXPECT_GT(hi, lo / 2);
    EXPECT_GT(lo, hi / 2);
}

TEST(StatisticalModel, PlansPerTypeEvents)
{
    IaModel model(sampleStats());
    auto profile = sampleProfile();
    Rng rng(3);
    size_t totalMul = 0, totalDiv = 0, totalOther = 0;
    for (int t = 0; t < 50; ++t) {
        for (const auto &ev : model.plan(profile, rng)) {
            EXPECT_EQ(ev.kind, InjectionEvent::Kind::FpOp);
            if (ev.op == FpuOp::MulD) {
                ++totalMul;
                EXPECT_LT(ev.index, 10000u);
            } else if (ev.op == FpuOp::DivD) {
                ++totalDiv;
                EXPECT_LT(ev.index, 500u);
            } else {
                ++totalOther;
            }
        }
    }
    // E[mul] = 10000 * 0.01 = 100/run; E[div] = 500 * 0.001 = 0.5/run.
    EXPECT_NEAR(static_cast<double>(totalMul) / 50.0, 100.0, 15.0);
    EXPECT_NEAR(static_cast<double>(totalDiv) / 50.0, 0.5, 0.5);
    EXPECT_EQ(totalOther, 0u);
}

TEST(StatisticalModel, MasksComeFromPool)
{
    IaModel model(sampleStats());
    auto profile = sampleProfile();
    Rng rng(4);
    auto events = model.plan(profile, rng);
    ASSERT_FALSE(events.empty());
    const auto &pool = model.opStats(FpuOp::MulD).maskPool;
    for (const auto &ev : events) {
        if (ev.op != FpuOp::MulD)
            continue;
        EXPECT_NE(std::find(pool.begin(), pool.end(), ev.mask),
                  pool.end());
    }
}

TEST(StatisticalModel, ExpectedErrors)
{
    IaModel model(sampleStats());
    auto profile = sampleProfile();
    // 10000*0.01 + 500*0.001 = 100.5
    EXPECT_NEAR(model.expectedErrors(profile), 100.5, 1e-9);
    DaModel da(1e-3);
    EXPECT_DOUBLE_EQ(da.expectedErrors(profile), 100.0);
}

TEST(Models, KindsAndNames)
{
    IaModel ia(sampleStats());
    WaModel wa("cg", sampleStats());
    DaModel da(0.01);
    EXPECT_EQ(ia.kind(), ModelKind::IA);
    EXPECT_EQ(wa.kind(), ModelKind::WA);
    EXPECT_EQ(da.kind(), ModelKind::DA);
    EXPECT_NE(wa.describe().find("cg"), std::string::npos);
    EXPECT_NE(da.describe().find("1.00e-02"), std::string::npos);
}

TEST(Models, ProfileFromFuncSim)
{
    // Covered more fully in the inject tests; here just the shape.
    ProgramProfile p;
    EXPECT_EQ(p.totalInstructions, 0u);
}

TEST(Models, SaveLoadRoundTrip)
{
    auto stats = sampleStats();
    std::string path = "/tmp/tea_test_stats.txt";
    saveCampaignStats(path, stats);
    timing::CampaignStats loaded;
    ASSERT_EQ(loadCampaignStats(path, loaded), CacheLoad::Loaded);
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        EXPECT_EQ(loaded.perOp[o].total, stats.perOp[o].total);
        EXPECT_EQ(loaded.perOp[o].faulty, stats.perOp[o].faulty);
        EXPECT_EQ(loaded.perOp[o].maskPool, stats.perOp[o].maskPool);
        for (unsigned b = 0; b < 64; ++b)
            EXPECT_EQ(loaded.perOp[o].bitErrors[b],
                      stats.perOp[o].bitErrors[b]);
    }
    std::remove(path.c_str());
}

TEST(Models, LoadRejectsCorrupt)
{
    std::string path = "/tmp/tea_test_corrupt.txt";
    {
        FILE *f = fopen(path.c_str(), "w");
        fputs("not a stats file\n", f);
        fclose(f);
    }
    timing::CampaignStats stats;
    EXPECT_EQ(loadCampaignStats(path, stats), CacheLoad::Corrupt);
    EXPECT_EQ(loadCampaignStats("/nonexistent/nope", stats),
              CacheLoad::Missing);
    std::remove(path.c_str());
}

TEST(RngBinomial, MeanTracksNP)
{
    Rng rng(5);
    // Small n exact path.
    uint64_t sum = 0;
    for (int i = 0; i < 2000; ++i)
        sum += rng.nextBinomial(20, 0.3);
    EXPECT_NEAR(static_cast<double>(sum) / 2000.0, 6.0, 0.3);
    // Poisson path.
    sum = 0;
    for (int i = 0; i < 2000; ++i)
        sum += rng.nextBinomial(10000, 1e-3);
    EXPECT_NEAR(static_cast<double>(sum) / 2000.0, 10.0, 0.5);
    // Normal path.
    sum = 0;
    for (int i = 0; i < 2000; ++i)
        sum += rng.nextBinomial(100000, 0.01);
    EXPECT_NEAR(static_cast<double>(sum) / 2000.0, 1000.0, 5.0);
}
