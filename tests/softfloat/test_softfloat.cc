/**
 * Directed edge-case tests for the soft-float reference model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "softfloat/softfloat.hh"

using namespace tea::sf;

namespace {

uint64_t
d(double v)
{
    return fromDouble(v);
}

constexpr uint64_t plusInf = 0x7ff0000000000000ULL;
constexpr uint64_t minusInf = 0xfff0000000000000ULL;
constexpr uint64_t plusZero = 0x0000000000000000ULL;
constexpr uint64_t minusZero = 0x8000000000000000ULL;

} // namespace

TEST(SoftFloatAdd, SimpleValues)
{
    EXPECT_EQ(add64(d(1.0), d(2.0)), d(3.0));
    EXPECT_EQ(add64(d(0.1), d(0.2)), d(0.1 + 0.2));
    EXPECT_EQ(add64(d(-5.5), d(5.5)), plusZero);
    EXPECT_EQ(add64(d(1e300), d(1e280)), d(1e300 + 1e280));
}

TEST(SoftFloatAdd, ZeroRules)
{
    EXPECT_EQ(add64(plusZero, plusZero), plusZero);
    EXPECT_EQ(add64(minusZero, minusZero), minusZero);
    EXPECT_EQ(add64(plusZero, minusZero), plusZero);
    EXPECT_EQ(add64(d(3.5), plusZero), d(3.5));
    EXPECT_EQ(add64(minusZero, d(-3.5)), d(-3.5));
}

TEST(SoftFloatAdd, InfinityRules)
{
    EXPECT_EQ(add64(plusInf, d(1.0)), plusInf);
    EXPECT_EQ(add64(minusInf, d(1e308)), minusInf);
    EXPECT_EQ(add64(plusInf, plusInf), plusInf);

    Flags fl;
    EXPECT_TRUE(isNaN64(add64(plusInf, minusInf, &fl)));
    EXPECT_TRUE(fl.invalid);
}

TEST(SoftFloatAdd, NaNPropagates)
{
    EXPECT_TRUE(isNaN64(add64(qnan64, d(1.0))));
    EXPECT_TRUE(isNaN64(add64(d(1.0), qnan64)));
}

TEST(SoftFloatAdd, OverflowToInfinity)
{
    Flags fl;
    uint64_t r = add64(d(1.7e308), d(1.7e308), &fl);
    EXPECT_EQ(r, plusInf);
    EXPECT_TRUE(fl.overflow);
    EXPECT_TRUE(fl.inexact);
}

TEST(SoftFloatAdd, RoundToNearestEvenTie)
{
    // 1 + 2^-53 is an exact tie; RNE keeps the even mantissa (1.0).
    uint64_t tiny = d(std::ldexp(1.0, -53));
    EXPECT_EQ(add64(d(1.0), tiny), d(1.0));
    // Next representable above 1.0 plus the same tiny ties up to even.
    uint64_t onePlusUlp = d(1.0) + 1;
    EXPECT_EQ(add64(onePlusUlp, tiny), d(1.0) + 2);
}

TEST(SoftFloatSub, Basics)
{
    EXPECT_EQ(sub64(d(3.0), d(2.0)), d(1.0));
    EXPECT_EQ(sub64(d(2.0), d(3.0)), d(-1.0));
    EXPECT_EQ(sub64(d(1.0), d(1.0)), plusZero);
    EXPECT_EQ(sub64(d(0.3), d(0.1)), d(0.3 - 0.1));
}

TEST(SoftFloatSub, CatastrophicCancellation)
{
    double a = 1.0 + std::ldexp(1.0, -50);
    EXPECT_EQ(sub64(d(a), d(1.0)), d(a - 1.0));
}

TEST(SoftFloatMul, SimpleValues)
{
    EXPECT_EQ(mul64(d(3.0), d(4.0)), d(12.0));
    EXPECT_EQ(mul64(d(0.1), d(0.1)), d(0.1 * 0.1));
    EXPECT_EQ(mul64(d(-2.0), d(8.0)), d(-16.0));
    EXPECT_EQ(mul64(d(1.0), d(1.0)), d(1.0));
}

TEST(SoftFloatMul, SpecialRules)
{
    EXPECT_EQ(mul64(d(2.0), plusZero), plusZero);
    EXPECT_EQ(mul64(d(-2.0), plusZero), minusZero);
    EXPECT_EQ(mul64(plusInf, d(2.0)), plusInf);
    EXPECT_EQ(mul64(minusInf, d(-2.0)), plusInf);

    Flags fl;
    EXPECT_TRUE(isNaN64(mul64(plusInf, plusZero, &fl)));
    EXPECT_TRUE(fl.invalid);
}

TEST(SoftFloatMul, OverflowAndUnderflow)
{
    Flags fl;
    EXPECT_EQ(mul64(d(1e200), d(1e200), &fl), plusInf);
    EXPECT_TRUE(fl.overflow);

    Flags fl2;
    uint64_t r = mul64(d(1e-200), d(1e-200), &fl2);
    EXPECT_EQ(r, plusZero); // FTZ
    EXPECT_TRUE(fl2.underflow);
}

TEST(SoftFloatDiv, SimpleValues)
{
    EXPECT_EQ(div64(d(12.0), d(4.0)), d(3.0));
    EXPECT_EQ(div64(d(1.0), d(3.0)), d(1.0 / 3.0));
    EXPECT_EQ(div64(d(-7.0), d(2.0)), d(-3.5));
    EXPECT_EQ(div64(d(1.0), d(10.0)), d(0.1));
}

TEST(SoftFloatDiv, SpecialRules)
{
    Flags fl;
    uint64_t r = div64(d(1.0), plusZero, &fl);
    EXPECT_EQ(r, plusInf);
    EXPECT_TRUE(fl.divByZero);

    Flags fl2;
    EXPECT_TRUE(isNaN64(div64(plusZero, plusZero, &fl2)));
    EXPECT_TRUE(fl2.invalid);

    Flags fl3;
    EXPECT_TRUE(isNaN64(div64(plusInf, plusInf, &fl3)));
    EXPECT_TRUE(fl3.invalid);

    EXPECT_EQ(div64(d(5.0), plusInf), plusZero);
    EXPECT_EQ(div64(d(-5.0), plusInf), minusZero);
}

TEST(SoftFloatI2F, ExactSmallIntegers)
{
    EXPECT_EQ(i2f64(0), plusZero);
    EXPECT_EQ(i2f64(1), d(1.0));
    EXPECT_EQ(i2f64(-1), d(-1.0));
    EXPECT_EQ(i2f64(123456789), d(123456789.0));
    EXPECT_EQ(i2f64(-987654321), d(-987654321.0));
}

TEST(SoftFloatI2F, LargeIntegersRound)
{
    // 2^53 + 1 is not representable; rounds to 2^53 (even).
    int64_t v = (1LL << 53) + 1;
    EXPECT_EQ(i2f64(v), d(static_cast<double>(v)));
    EXPECT_EQ(i2f64(INT64_MAX), d(static_cast<double>(INT64_MAX)));
    EXPECT_EQ(i2f64(INT64_MIN), d(static_cast<double>(INT64_MIN)));
}

TEST(SoftFloatF2I, Truncation)
{
    EXPECT_EQ(f2i64(d(3.99)), 3);
    EXPECT_EQ(f2i64(d(-3.99)), -3);
    EXPECT_EQ(f2i64(d(0.5)), 0);
    EXPECT_EQ(f2i64(d(-0.5)), 0);
    EXPECT_EQ(f2i64(d(42.0)), 42);
}

TEST(SoftFloatF2I, SaturationAndInvalid)
{
    Flags fl;
    EXPECT_EQ(f2i64(d(1e300), &fl), INT64_MAX);
    EXPECT_TRUE(fl.invalid);

    Flags fl2;
    EXPECT_EQ(f2i64(d(-1e300), &fl2), INT64_MIN);
    EXPECT_TRUE(fl2.invalid);

    Flags fl3;
    EXPECT_EQ(f2i64(qnan64, &fl3), 0);
    EXPECT_TRUE(fl3.invalid);

    // -2^63 is exactly representable.
    Flags fl4;
    EXPECT_EQ(f2i64(d(-9223372036854775808.0), &fl4), INT64_MIN);
    EXPECT_FALSE(fl4.invalid);
}

TEST(SoftFloatFTZ, SubnormalInputsAreZero)
{
    uint64_t subn = 0x0000000000000001ULL; // smallest subnormal
    EXPECT_EQ(add64(subn, subn), plusZero);
    EXPECT_EQ(mul64(subn, d(1.0)), plusZero);
    EXPECT_TRUE(isZero64(subn));
    EXPECT_TRUE(isSubnormal64(subn));
}

TEST(SoftFloatCompare, Ordering)
{
    EXPECT_TRUE(lt64(d(1.0), d(2.0)));
    EXPECT_FALSE(lt64(d(2.0), d(1.0)));
    EXPECT_TRUE(lt64(d(-2.0), d(-1.0)));
    EXPECT_TRUE(lt64(d(-1.0), d(1.0)));
    EXPECT_TRUE(le64(d(1.0), d(1.0)));
    EXPECT_TRUE(eq64(d(1.0), d(1.0)));
    EXPECT_TRUE(eq64(plusZero, minusZero));
    EXPECT_FALSE(lt64(plusZero, minusZero));
    EXPECT_TRUE(le64(minusZero, plusZero));
}

TEST(SoftFloatCompare, NaNUnordered)
{
    EXPECT_FALSE(eq64(qnan64, qnan64));
    Flags fl;
    EXPECT_FALSE(lt64(qnan64, d(1.0), &fl));
    EXPECT_TRUE(fl.invalid);
}

TEST(SoftFloatSP, Basics)
{
    auto f = [](float v) { return fromFloat(v); };
    EXPECT_EQ(add32(f(1.5f), f(2.25f)), f(3.75f));
    EXPECT_EQ(mul32(f(3.0f), f(7.0f)), f(21.0f));
    EXPECT_EQ(div32(f(1.0f), f(3.0f)), f(1.0f / 3.0f));
    EXPECT_EQ(sub32(f(1.0f), f(4.0f)), f(-3.0f));
    EXPECT_EQ(i2f32(7), f(7.0f));
    EXPECT_EQ(f2i32(f(-2.75f)), -2);
}

TEST(SoftFloatConvert, WidenNarrow)
{
    EXPECT_EQ(widen32to64(fromFloat(1.5f)), d(1.5));
    EXPECT_EQ(narrow64to32(d(1.5)), fromFloat(1.5f));
    EXPECT_EQ(narrow64to32(d(0.1)), fromFloat(0.1f));
    EXPECT_EQ(widen32to64(fromFloat(-0.0f)), minusZero);
    EXPECT_TRUE(isNaN32(narrow64to32(qnan64)));
    Flags fl;
    EXPECT_EQ(narrow64to32(d(1e100), &fl), fromFloat(HUGE_VALF));
    EXPECT_TRUE(fl.overflow);
}

TEST(SoftFloatFlags, SevereClassification)
{
    Flags fl;
    fl.inexact = true;
    EXPECT_FALSE(fl.severe());
    fl.overflow = true;
    EXPECT_TRUE(fl.severe());

    Flags a, b;
    b.divByZero = true;
    a.merge(b);
    EXPECT_TRUE(a.divByZero);
}
