/**
 * Property-based comparison of the soft-float model against the host's
 * IEEE-754 hardware (x86-64 SSE, round-to-nearest-even).
 *
 * The soft-float flushes subnormals, so trials whose host result (or
 * inputs) are subnormal are skipped; operand exponents are drawn in a
 * wide but safe range so nearly all trials are checked.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "softfloat/softfloat.hh"
#include "util/rng.hh"

using namespace tea::sf;
using tea::Rng;

namespace {

/** Random normal double with exponent in roughly [-500, 500]. */
uint64_t
randomNormal64(Rng &rng)
{
    uint64_t sign = rng.next() & (1ULL << 63);
    uint64_t exp = 523 + rng.nextBounded(1000); // biased, in [523, 1523)
    uint64_t man = rng.next() & ((1ULL << 52) - 1);
    return sign | (exp << 52) | man;
}

bool
resultUsable(double r)
{
    return std::isfinite(r) && (r == 0.0 || std::fabs(r) >= 2.3e-308);
}

struct Op
{
    const char *name;
    uint64_t (*soft)(uint64_t, uint64_t, Flags *);
    double (*host)(double, double);
};

const Op kOps[] = {
    {"add", add64, [](double a, double b) { return a + b; }},
    {"sub", sub64, [](double a, double b) { return a - b; }},
    {"mul", mul64, [](double a, double b) { return a * b; }},
    {"div", div64, [](double a, double b) { return a / b; }},
};

} // namespace

class SoftFloatRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(SoftFloatRandom, MatchesHostBitExact)
{
    const Op &op = kOps[GetParam()];
    Rng rng(0xf00d + GetParam());
    int checked = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t a = randomNormal64(rng);
        uint64_t b = randomNormal64(rng);
        double hr = op.host(toDouble(a), toDouble(b));
        if (!resultUsable(hr))
            continue;
        uint64_t sr = op.soft(a, b, nullptr);
        ASSERT_EQ(sr, fromDouble(hr))
            << op.name << "(" << toDouble(a) << ", " << toDouble(b) << ")";
        ++checked;
    }
    // The skip filter must not have eaten the test.
    EXPECT_GT(checked, 15000);
}

INSTANTIATE_TEST_SUITE_P(AllOps, SoftFloatRandom,
                         ::testing::Values(0, 1, 2, 3),
                         [](const auto &info) {
                             return kOps[info.param].name;
                         });

TEST(SoftFloatRandomConvert, I2FMatchesHost)
{
    Rng rng(99);
    for (int i = 0; i < 50000; ++i) {
        auto v = static_cast<int64_t>(rng.next());
        // Mix in small magnitudes too.
        if (i % 3 == 0)
            v = static_cast<int64_t>(rng.nextRange(-1000000, 1000000));
        EXPECT_EQ(i2f64(v), fromDouble(static_cast<double>(v))) << v;
    }
}

TEST(SoftFloatRandomConvert, F2IMatchesHostInRange)
{
    Rng rng(1234);
    for (int i = 0; i < 50000; ++i) {
        double v = (rng.nextDouble() - 0.5) * 1e12;
        EXPECT_EQ(f2i64(fromDouble(v)), static_cast<int64_t>(v)) << v;
    }
}

TEST(SoftFloatRandomSP, MatchesHostBitExact)
{
    Rng rng(0xbeef);
    int checked = 0;
    for (int i = 0; i < 20000; ++i) {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 40 + static_cast<uint32_t>(rng.nextBounded(175));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        uint32_t a = sign | (exp << 23) | man;
        sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        exp = 40 + static_cast<uint32_t>(rng.nextBounded(175));
        man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        uint32_t b = sign | (exp << 23) | man;

        float ha = toFloat(a), hb = toFloat(b);
        float hadd = ha + hb, hmul = ha * hb;
        if (std::isfinite(hadd) &&
            (hadd == 0.0f || std::fabs(hadd) >= 1.2e-38f)) {
            ASSERT_EQ(add32(a, b), fromFloat(hadd));
            ++checked;
        }
        if (std::isfinite(hmul) &&
            (hmul == 0.0f || std::fabs(hmul) >= 1.2e-38f)) {
            ASSERT_EQ(mul32(a, b), fromFloat(hmul));
            ++checked;
        }
    }
    EXPECT_GT(checked, 20000);
}

TEST(SoftFloatRandomRoundTrip, DivMulConsistency)
{
    // (a / b) * b should be within 1 ulp-ish of a — a sanity property that
    // catches gross rounding errors without requiring host FP.
    Rng rng(777);
    for (int i = 0; i < 5000; ++i) {
        double a = (rng.nextDouble() + 0.1) * 1000.0;
        double b = (rng.nextDouble() + 0.1) * 10.0;
        uint64_t q = div64(fromDouble(a), fromDouble(b));
        uint64_t r = mul64(q, fromDouble(b));
        double rel = std::fabs(toDouble(r) - a) / a;
        EXPECT_LT(rel, 1e-15);
    }
}

TEST(SoftFloatRandomSP, SubAndDivMatchHost)
{
    Rng rng(0xcafe);
    int checked = 0;
    for (int i = 0; i < 20000; ++i) {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 40 + static_cast<uint32_t>(rng.nextBounded(175));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        uint32_t a = sign | (exp << 23) | man;
        sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        exp = 40 + static_cast<uint32_t>(rng.nextBounded(175));
        man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        uint32_t b = sign | (exp << 23) | man;
        float ha = toFloat(a), hb = toFloat(b);
        float hsub = ha - hb, hdiv = ha / hb;
        if (std::isfinite(hsub) &&
            (hsub == 0.0f || std::fabs(hsub) >= 1.2e-38f)) {
            ASSERT_EQ(sub32(a, b), fromFloat(hsub));
            ++checked;
        }
        if (std::isfinite(hdiv) &&
            (hdiv == 0.0f || std::fabs(hdiv) >= 1.2e-38f)) {
            ASSERT_EQ(div32(a, b), fromFloat(hdiv));
            ++checked;
        }
    }
    EXPECT_GT(checked, 20000);
}

TEST(SoftFloatRandomConvert, NarrowMatchesHost)
{
    Rng rng(0xdada);
    int checked = 0;
    for (int i = 0; i < 30000; ++i) {
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 895 + rng.nextBounded(256); // float-ish range
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        uint64_t a = sign | (exp << 52) | man;
        auto hf = static_cast<float>(toDouble(a));
        if (!std::isfinite(hf) ||
            (hf != 0.0f && std::fabs(hf) < 1.2e-38f))
            continue;
        ASSERT_EQ(narrow64to32(a), fromFloat(hf)) << std::hex << a;
        ++checked;
    }
    EXPECT_GT(checked, 25000);
}

TEST(SoftFloatRandomConvert, WidenMatchesHost)
{
    Rng rng(0xfefe);
    for (int i = 0; i < 30000; ++i) {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 1 + static_cast<uint32_t>(rng.nextBounded(253));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        uint32_t a = sign | (exp << 23) | man;
        ASSERT_EQ(widen32to64(a),
                  fromDouble(static_cast<double>(toFloat(a))));
    }
}

TEST(SoftFloatRandomConvert, I2F32MatchesHost)
{
    Rng rng(0xabab);
    for (int i = 0; i < 30000; ++i) {
        auto v = static_cast<int32_t>(rng.next());
        EXPECT_EQ(i2f32(v), fromFloat(static_cast<float>(v))) << v;
    }
}
