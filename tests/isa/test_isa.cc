#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "util/rng.hh"

using namespace tea::isa;

TEST(IsaEncode, RoundTripAllFormats)
{
    const Instruction cases[] = {
        {Op::ADD, 5, 6, 7, 0},
        {Op::ADDI, 5, 6, 0, -42},
        {Op::ADDI, 5, 6, 0, 8191},
        {Op::ADDI, 5, 6, 0, -8192},
        {Op::BEQ, 0, 3, 4, -100},
        {Op::JAL, 1, 0, 0, 200000},
        {Op::LIW, 9, 0, 0, -262144},
        {Op::LD, 10, 2, 0, 1024},
        {Op::FSD, 31, 2, 0, -8},
        {Op::FADD_D, 1, 2, 3, 0},
        {Op::ECALL, 0, 11, 0, 1},
        {Op::HALT, 0, 0, 0, 0},
        {Op::NOP, 0, 0, 0, 0},
    };
    for (const auto &insn : cases) {
        auto rt = decode(encode(insn));
        ASSERT_TRUE(rt.has_value());
        EXPECT_EQ(rt->op, insn.op);
        EXPECT_EQ(rt->rd, insn.rd) << opName(insn.op);
        EXPECT_EQ(rt->rs1, insn.rs1) << opName(insn.op);
        if (readsIntRs2(insn.op) || readsFpRs2(insn.op) ||
            isBranch(insn.op))
            EXPECT_EQ(rt->rs2, insn.rs2) << opName(insn.op);
        EXPECT_EQ(rt->imm, insn.imm) << opName(insn.op);
    }
}

TEST(IsaDecode, RejectsIllegalOpcode)
{
    EXPECT_FALSE(decode(0xff000000u).has_value());
}

TEST(IsaPredicates, Consistency)
{
    for (unsigned i = 0; i < kNumOps; ++i) {
        auto op = static_cast<Op>(i);
        // An op never writes both register files.
        EXPECT_FALSE(writesIntReg(op) && writesFpReg(op)) << opName(op);
        // FP-arith ops map to FPU ops and back.
        if (isFpArith(op))
            EXPECT_EQ(isaOpFor(fpuOpFor(op)), op) << opName(op);
        // Loads and stores are disjoint.
        EXPECT_FALSE(isLoad(op) && isStore(op)) << opName(op);
    }
}

TEST(IsaDisassemble, ContainsMnemonic)
{
    Instruction insn{Op::FMUL_D, 3, 4, 5, 0};
    auto text = disassemble(insn);
    EXPECT_NE(text.find("fmul.d"), std::string::npos);
    EXPECT_NE(text.find("f3"), std::string::npos);
}

TEST(IsaImmRanges, Bounds)
{
    EXPECT_TRUE(fitsImm14(8191));
    EXPECT_FALSE(fitsImm14(8192));
    EXPECT_TRUE(fitsImm14(-8192));
    EXPECT_FALSE(fitsImm14(-8193));
    EXPECT_TRUE(fitsImm19(262143));
    EXPECT_FALSE(fitsImm19(262144));
}
