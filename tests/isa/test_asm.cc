#include <gtest/gtest.h>

#include "isa/asmbuilder.hh"
#include "isa/assembler.hh"
#include "sim/func_sim.hh"
#include "softfloat/softfloat.hh"

using namespace tea::isa;
using tea::sim::FuncSim;

TEST(AsmBuilder, LiSmall)
{
    AsmBuilder b("t");
    b.li(5, 42);
    b.printInt(5);
    b.li(6, -7);
    b.printInt(6);
    b.halt();
    Program p = b.build();
    FuncSim sim(p);
    auto r = sim.run();
    EXPECT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(sim.console().size(), 2u);
    EXPECT_EQ(sim.console()[0], 42u);
    EXPECT_EQ(static_cast<int64_t>(sim.console()[1]), -7);
}

TEST(AsmBuilder, LiWideConstants)
{
    const int64_t values[] = {
        0x123456789abcdefLL, -0x123456789abcdefLL, INT64_MAX,
        INT64_MIN,           1LL << 40,            -(1LL << 40),
        262144,              -262145,              0,
    };
    AsmBuilder b("t");
    for (int64_t v : values) {
        b.li(7, v);
        b.printInt(7);
    }
    b.halt();
    Program p = b.build();
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(sim.console().size(), std::size(values));
    for (size_t i = 0; i < std::size(values); ++i)
        EXPECT_EQ(static_cast<int64_t>(sim.console()[i]), values[i])
            << i;
}

TEST(AsmBuilder, DataAndLoops)
{
    AsmBuilder b("t");
    b.dataDoubles("vals", {1.5, 2.5, 3.0});
    b.dataSpace("out", 8);
    b.la(5, "vals");
    b.li(6, 3);            // counter
    b.fmv_d_x(1, 0);       // f1 = 0.0
    auto loop = b.here();
    b.fld(2, 5, 0);
    b.fadd_d(1, 1, 2);
    b.addi(5, 5, 8);
    b.addi(6, 6, -1);
    b.bne(6, 0, loop);
    b.la(7, "out");
    b.fsd(1, 7, 0);
    b.printFp(1);
    b.halt();
    Program p = b.build();
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(sim.console().size(), 1u);
    EXPECT_EQ(sim.console()[0], tea::sf::fromDouble(7.0));
    // The stored value is visible at the symbol address.
    auto bytes = sim.memory().readBlock(p.symbol("out"), 8);
    uint64_t v = 0;
    memcpy(&v, bytes.data(), 8);
    EXPECT_EQ(v, tea::sf::fromDouble(7.0));
}

TEST(AsmBuilder, CallRet)
{
    AsmBuilder b("t");
    auto fn = b.newLabel();
    auto start = b.newLabel();
    b.j(start);
    b.bind(fn);
    b.addi(10, 10, 100);
    b.ret();
    b.bind(start);
    b.li(10, 1);
    b.call(fn);
    b.printInt(10);
    b.halt();
    Program p = b.build();
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(sim.console().size(), 1u);
    EXPECT_EQ(sim.console()[0], 101u);
}

TEST(Assembler, EndToEnd)
{
    const char *src = R"(
.data
vals: .double 2.0, 8.0
out:  .space 8
.text
main:
    la x5, vals
    fld f1, 0(x5)
    fld f2, 8(x5)
    fmul.d f3, f1, f2
    la x6, out
    fsd f3, 0(x6)
    print.fp f3
    li x9, 5
loop:
    addi x9, x9, -1
    bne x9, x0, loop
    print.int x9
    halt
)";
    Program p = assemble(src, "e2e");
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    ASSERT_EQ(sim.console().size(), 2u);
    EXPECT_EQ(sim.console()[0], tea::sf::fromDouble(16.0));
    EXPECT_EQ(sim.console()[1], 0u);
}

TEST(Assembler, CommentsAndWhitespace)
{
    const char *src = R"(
# full line comment
.text
    li x3, 7   # trailing comment
    print.int x3
    halt
)";
    Program p = assemble(src);
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    EXPECT_EQ(sim.console()[0], 7u);
}

TEST(Assembler, IntOpsSweep)
{
    const char *src = R"(
.text
    li x5, 100
    li x6, 7
    add x7, x5, x6
    print.int x7
    sub x7, x5, x6
    print.int x7
    mul x7, x5, x6
    print.int x7
    divu x7, x5, x6
    print.int x7
    remu x7, x5, x6
    print.int x7
    slli x7, x5, 3
    print.int x7
    halt
)";
    Program p = assemble(src);
    FuncSim sim(p);
    auto r = sim.run();
    ASSERT_EQ(r.status, FuncSim::Status::Halted);
    const uint64_t expect[] = {107, 93, 700, 14, 2, 800};
    ASSERT_EQ(sim.console().size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(sim.console()[i], expect[i]);
}

TEST(Assembler, RejectsUnknownMnemonic)
{
    EXPECT_EXIT(assemble(".text\n    bogus x1, x2, x3\n    halt\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(Assembler, RejectsBadRegister)
{
    EXPECT_EXIT(assemble(".text\n    add x1, x2, x95\n    halt\n"),
                ::testing::ExitedWithCode(1), "register");
}

TEST(Assembler, RejectsUnknownSymbol)
{
    EXPECT_EXIT(assemble(".text\n    la x1, nowhere\n    halt\n"),
                ::testing::ExitedWithCode(1), "symbol");
}

TEST(Assembler, RejectsUnboundLabel)
{
    EXPECT_EXIT(assemble(".text\n    j nowhere\n    halt\n"),
                ::testing::ExitedWithCode(1), "unbound label");
}

TEST(Assembler, RejectsDataWithoutLabel)
{
    EXPECT_EXIT(assemble(".data\n    .double 1.0\n"),
                ::testing::ExitedWithCode(1), "without a label");
}

TEST(Assembler, AcceptsDisassemblerOutput)
{
    // disassemble() output for R/I-format ops round-trips through the
    // assembler back to the identical instruction.
    const Instruction cases[] = {
        {Op::ADD, 5, 6, 7, 0},
        {Op::MUL, 1, 2, 3, 0},
        {Op::ADDI, 5, 6, 0, -42},
        {Op::SLLI, 9, 9, 0, 13},
        {Op::FADD_D, 1, 2, 3, 0},
        {Op::FMUL_S, 30, 31, 0, 0},
        {Op::FCVT_L_D, 4, 5, 0, 0},
        {Op::LD, 10, 2, 0, 1024},
        {Op::FSD, 31, 2, 0, -8},
    };
    for (const auto &insn : cases) {
        std::string text = ".text\n    " + disassemble(insn) + "\n";
        Program p = assemble(text);
        ASSERT_EQ(p.code.size(), 1u) << text;
        EXPECT_EQ(p.code[0].op, insn.op) << text;
        EXPECT_EQ(p.code[0].rd, insn.rd) << text;
        EXPECT_EQ(p.code[0].rs1, insn.rs1) << text;
        EXPECT_EQ(p.code[0].imm, insn.imm) << text;
    }
}

TEST(AsmBuilder, BranchOffsetOverflowIsFatal)
{
    AsmBuilder b("t");
    auto far = b.newLabel();
    b.beq(0, 0, far);
    for (int i = 0; i < 9000; ++i)
        b.nop();
    b.bind(far);
    b.halt();
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "overflow");
}

TEST(AsmBuilder, DuplicateDataSymbolIsFatal)
{
    AsmBuilder b("t");
    b.dataSpace("buf", 8);
    EXPECT_EXIT(b.dataSpace("buf", 8), ::testing::ExitedWithCode(1),
                "duplicate");
}
