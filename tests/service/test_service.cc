/**
 * @file
 * The campaign-service contract: the framed wire protocol rejects
 * damage and survives fragmentation; the scheduler deduplicates
 * identical plans, bounds its queue with RETRY_AFTER (never dropping
 * an accepted campaign), and enforces per-client in-flight caps; and
 * a campaign submitted through tea-daemon — over a real socket, with
 * SIGKILL chaos in the worker fleet — produces byte-identical merged
 * artifacts to the same plan run in-process.
 *
 * The worker binary under test is injected at compile time
 * (TEA_WORKER_BIN, from $<TARGET_FILE:tea-worker>).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/toolflow.hh"
#include "fleet/workunit.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "service/cellwire.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/scheduler.hh"
#include "util/crc32.hh"
#include "util/fsatomic.hh"

using namespace tea;
using namespace tea::core;
using namespace tea::service;

namespace {

namespace fs = std::filesystem;

/** Tiny-but-real campaign: 1 workload x 3 models x 1 VR, 6 runs. */
ToolflowOptions
tinyOptions(const std::string &cacheDir, uint64_t seed = 1)
{
    ToolflowOptions opt;
    opt.iaCountPerOp = 200;
    opt.waMaxOps = 500;
    opt.daSampleOps = 700;
    opt.runsPerCell = 6;
    opt.vrLevels = {0.20};
    opt.threads = 1;
    opt.seed = seed;
    opt.cacheDir = cacheDir;
    return opt;
}

GridSpec
tinySpec()
{
    GridSpec spec;
    spec.workloads = {"sobel"};
    return spec;
}

fleet::FleetPlan
tinyPlan(const std::string &cacheDir, uint64_t seed = 1)
{
    return fleet::FleetPlan{tinyOptions(cacheDir, seed), tinySpec()};
}

/** Set an env var for one scope (daemon workers inherit it). */
struct ScopedEnv
{
    std::string name;
    ScopedEnv(const char *n, const std::string &value) : name(n)
    {
        setenv(n, value.c_str(), 1);
    }
    ~ScopedEnv() { unsetenv(name.c_str()); }
};

void
expectSameCells(const std::vector<CampaignCell> &ref,
                const std::vector<CampaignCell> &got)
{
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        const auto &r = ref[i].result;
        const auto &g = got[i].result;
        EXPECT_EQ(ref[i].workload, got[i].workload) << "cell " << i;
        EXPECT_EQ(ref[i].model, got[i].model) << "cell " << i;
        EXPECT_EQ(ref[i].vrFrac, got[i].vrFrac) << "cell " << i;
        EXPECT_EQ(r.runs, g.runs) << "cell " << i;
        EXPECT_EQ(r.masked, g.masked) << "cell " << i;
        EXPECT_EQ(r.sdc, g.sdc) << "cell " << i;
        EXPECT_EQ(r.crash, g.crash) << "cell " << i;
        EXPECT_EQ(r.timeout, g.timeout) << "cell " << i;
        EXPECT_EQ(r.engineFault, g.engineFault) << "cell " << i;
        EXPECT_EQ(r.injectedErrors, g.injectedErrors) << "cell " << i;
        EXPECT_EQ(r.committedInstructions, g.committedInstructions)
            << "cell " << i;
    }
}

DaemonOptions
schedulerOptions(const std::string &dir)
{
    DaemonOptions opt;
    opt.socketPath = dir + "/d.sock";
    opt.cacheDir = dir;
    opt.spoolRoot = dir + "/spool";
    // No worker binary: campaigns execute in-process inside the
    // executor thread (runFleetGrid's fallback path).
    opt.fleet.workers = 0;
    return opt;
}

} // namespace

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(ServiceProtocol, FrameRoundTripAllTypes)
{
    const MsgType types[] = {
        MsgType::Hello,    MsgType::Submit,   MsgType::Status,
        MsgType::Watch,    MsgType::Cancel,   MsgType::Drain,
        MsgType::HelloOk,  MsgType::SubmitOk, MsgType::StatusOk,
        MsgType::Cell,     MsgType::Done,     MsgType::Error,
    };
    for (MsgType t : types) {
        std::string payload =
            std::string("key value for ") + msgTypeName(t) + "\n";
        std::string wire = encodeFrame(t, payload);
        Frame f;
        size_t consumed = 0;
        ASSERT_EQ(decodeFrame(wire, f, consumed), DecodeStatus::Ok)
            << msgTypeName(t);
        EXPECT_EQ(consumed, wire.size());
        EXPECT_EQ(f.version, kProtocolVersion);
        EXPECT_EQ(f.type, static_cast<uint16_t>(t));
        EXPECT_EQ(f.payload, payload);
        EXPECT_TRUE(knownMsgType(f.type));
    }
    EXPECT_FALSE(knownMsgType(0));
    EXPECT_FALSE(knownMsgType(63));
    EXPECT_FALSE(knownMsgType(127));
}

TEST(ServiceProtocol, EveryPrefixNeedsMore)
{
    std::string wire = encodeFrame(MsgType::Submit, "plan bytes here");
    // Any strict prefix is an incomplete frame, never Bad: a decoder
    // mid-stream must keep reading, not cut the connection.
    for (size_t n = 0; n < wire.size(); ++n) {
        Frame f;
        size_t consumed = 0;
        EXPECT_EQ(decodeFrame(std::string_view(wire).substr(0, n), f,
                              consumed),
                  DecodeStatus::NeedMore)
            << "prefix " << n;
    }
    // Two concatenated frames decode one at a time.
    std::string two = wire + encodeFrame(MsgType::Status, "id 7\n");
    Frame f;
    size_t consumed = 0;
    ASSERT_EQ(decodeFrame(two, f, consumed), DecodeStatus::Ok);
    EXPECT_EQ(consumed, wire.size());
    ASSERT_EQ(decodeFrame(std::string_view(two).substr(consumed), f,
                          consumed),
              DecodeStatus::Ok);
    EXPECT_EQ(f.payload, "id 7\n");
}

TEST(ServiceProtocol, RejectsDamage)
{
    std::string wire = encodeFrame(MsgType::Hello, "client test\n");
    Frame f;
    size_t consumed = 0;

    // Wrong magic: not our protocol.
    std::string badMagic = wire;
    badMagic[0] = 'X';
    EXPECT_EQ(decodeFrame(badMagic, f, consumed), DecodeStatus::Bad);

    // Flipped payload byte: CRC catches it.
    std::string flipped = wire;
    flipped[kFrameHeaderSize] ^= 0x01;
    EXPECT_EQ(decodeFrame(flipped, f, consumed), DecodeStatus::Bad);

    // Flipped CRC byte.
    std::string badCrc = wire;
    badCrc.back() ^= 0x01;
    EXPECT_EQ(decodeFrame(badCrc, f, consumed), DecodeStatus::Bad);

    // A garbage length field must be rejected outright (no 4 GiB
    // buffering while "waiting" for the rest of the frame).
    std::string hugeLen = wire.substr(0, kFrameHeaderSize);
    hugeLen[8] = '\xff';
    hugeLen[9] = '\xff';
    hugeLen[10] = '\xff';
    hugeLen[11] = '\x7f';
    EXPECT_EQ(decodeFrame(hugeLen, f, consumed), DecodeStatus::Bad);
}

TEST(ServiceProtocol, VersionSkewIsDistinguishedFromCorruption)
{
    // Hand-build a structurally perfect frame with version 2.
    std::string wire = encodeFrame(MsgType::Hello, "hi\n");
    wire[4] = 2; // version LE low byte
    // Re-seal: recompute the CRC over the altered header.
    std::string body = wire.substr(0, wire.size() - 4);
    std::string resealed = body;
    uint32_t crc = crc32(body.data(), body.size());
    for (int i = 0; i < 4; ++i)
        resealed.push_back(
            static_cast<char>((crc >> (8 * i)) & 0xff));
    Frame f;
    size_t consumed = 0;
    EXPECT_EQ(decodeFrame(resealed, f, consumed),
              DecodeStatus::VersionSkew);
    EXPECT_EQ(f.version, 2);
    EXPECT_EQ(consumed, resealed.size());
}

TEST(ServiceProtocol, ErrorCodeNamesRoundTrip)
{
    for (uint16_t raw = 1; raw <= 7; ++raw) {
        service::ErrorCode c = static_cast<service::ErrorCode>(raw);
        service::ErrorCode back = service::ErrorCode::Internal;
        ASSERT_TRUE(errorCodeFromName(errorCodeName(c), back));
        EXPECT_EQ(back, c);
    }
    service::ErrorCode out;
    EXPECT_FALSE(errorCodeFromName("NOT_A_CODE", out));
}

TEST(ServiceCellWire, RoundTrip)
{
    CampaignCell cell;
    cell.workload = "sobel";
    cell.model = models::ModelKind::DA;
    cell.vrFrac = 0.2000000000000001;
    cell.result.runs = 6;
    cell.result.masked = 3;
    cell.result.sdc = 1;
    cell.result.crash = 1;
    cell.result.timeout = 1;
    cell.result.injectedErrors = 42;
    cell.result.committedInstructions = 123456;
    CampaignCell back;
    ASSERT_TRUE(cellFromKv(parseKv(cellToKv(cell)), back));
    EXPECT_EQ(back.workload, cell.workload);
    EXPECT_EQ(back.model, cell.model);
    EXPECT_EQ(back.vrFrac, cell.vrFrac) << "vr must round-trip %.17g";
    EXPECT_EQ(back.result.runs, cell.result.runs);
    EXPECT_EQ(back.result.masked, cell.result.masked);
    EXPECT_EQ(back.result.sdc, cell.result.sdc);
    EXPECT_EQ(back.result.injectedErrors, cell.result.injectedErrors);
    EXPECT_EQ(back.result.committedInstructions,
              cell.result.committedInstructions);
    // Missing counter keys must not silently decode.
    CampaignCell bad;
    EXPECT_FALSE(cellFromKv(parseKv("workload sobel\nmodel 2\n"), bad));
}

// ---------------------------------------------------------------------
// Scheduler admission control (paused executors = deterministic queue)
// ---------------------------------------------------------------------

TEST(ServiceScheduler, DedupAttachesIdenticalPlans)
{
    std::string dir = "/tmp/tea_svc_test_dedup";
    fs::remove_all(dir);
    fs::create_directories(dir);
    DaemonOptions opt = schedulerOptions(dir);
    Scheduler sched(opt);
    sched.setPaused(true);

    // The two clients disagree about the cache dir; the daemon-side
    // override makes the plans byte-identical, so they must attach.
    auto a = sched.submit(tinyPlan("/tmp/client_a_cache").serialize(),
                          "alice");
    auto b = sched.submit(tinyPlan("/tmp/client_b_cache").serialize(),
                          "bob");
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    EXPECT_FALSE(a.sub.deduped);
    EXPECT_TRUE(b.sub.deduped);
    EXPECT_EQ(a.sub.id, b.sub.id);
    EXPECT_EQ(a.sub.cellsTotal, 3u);

    // A different campaign (other seed) is genuinely new work.
    auto c = sched.submit(tinyPlan(dir, 2).serialize(), "alice");
    ASSERT_TRUE(c.accepted);
    EXPECT_FALSE(c.sub.deduped);
    EXPECT_NE(c.sub.id, a.sub.id);

    sched.setPaused(false);
    sched.awaitIdle();
    auto p = sched.status(a.sub.id);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->state, CampaignState::Done);
    EXPECT_EQ(p->cellsDone, 3u);

    // Both attached submitters read the same stream.
    Scheduler::Event ev;
    std::vector<CampaignCell> seen;
    uint64_t cursor = 0;
    for (;;) {
        ASSERT_TRUE(sched.next(a.sub.id, cursor, 1000, ev));
        if (ev.haveCell) {
            seen.push_back(ev.cell);
            ++cursor;
            continue;
        }
        ASSERT_TRUE(ev.terminal);
        break;
    }
    EXPECT_EQ(seen.size(), 3u);
    fs::remove_all(dir);
}

TEST(ServiceScheduler, BackpressureRejectsButNeverDrops)
{
    std::string dir = "/tmp/tea_svc_test_backpressure";
    fs::remove_all(dir);
    fs::create_directories(dir);
    DaemonOptions opt = schedulerOptions(dir);
    opt.queueCap = 2;
    opt.clientInflight = 100;
    opt.retryMs = 123;
    obs::Registry::global().reset();
    Scheduler sched(opt);
    sched.setPaused(true);

    auto s1 = sched.submit(tinyPlan(dir, 1).serialize(), "c");
    auto s2 = sched.submit(tinyPlan(dir, 2).serialize(), "c");
    ASSERT_TRUE(s1.accepted);
    ASSERT_TRUE(s2.accepted);
    // Queue full: the third distinct plan is rejected with a retry
    // hint, not blocked and not silently queued.
    auto s3 = sched.submit(tinyPlan(dir, 3).serialize(), "c");
    ASSERT_FALSE(s3.accepted);
    EXPECT_EQ(s3.rej.code, service::ErrorCode::RetryAfter);
    EXPECT_EQ(s3.rej.retryMs, 123);
    // ... but a duplicate of queued work still attaches: dedup costs
    // no queue slot.
    auto dup = sched.submit(tinyPlan(dir, 2).serialize(), "d");
    ASSERT_TRUE(dup.accepted);
    EXPECT_TRUE(dup.sub.deduped);

    // The rejection is visible in the metrics export.
    std::string prom = obs::Registry::global().renderPrometheus();
    EXPECT_NE(prom.find("tea_daemon_campaigns_rejected_total{code=\"RETRY_"
                        "AFTER\"} 1"),
              std::string::npos)
        << prom;

    // Every accepted campaign still completes.
    sched.setPaused(false);
    sched.awaitIdle();
    for (uint64_t id : {s1.sub.id, s2.sub.id}) {
        auto p = sched.status(id);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->state, CampaignState::Done);
        EXPECT_EQ(p->cellsDone, p->cellsTotal);
    }
    fs::remove_all(dir);
}

TEST(ServiceScheduler, PerClientInflightCap)
{
    std::string dir = "/tmp/tea_svc_test_inflight";
    fs::remove_all(dir);
    fs::create_directories(dir);
    DaemonOptions opt = schedulerOptions(dir);
    opt.queueCap = 100;
    opt.clientInflight = 2;
    Scheduler sched(opt);
    sched.setPaused(true);

    ASSERT_TRUE(sched.submit(tinyPlan(dir, 1).serialize(), "greedy")
                    .accepted);
    ASSERT_TRUE(sched.submit(tinyPlan(dir, 2).serialize(), "greedy")
                    .accepted);
    auto third = sched.submit(tinyPlan(dir, 3).serialize(), "greedy");
    ASSERT_FALSE(third.accepted);
    EXPECT_EQ(third.rej.code, service::ErrorCode::InflightLimit);
    // Another client is unaffected by greedy's cap.
    EXPECT_TRUE(sched.submit(tinyPlan(dir, 3).serialize(), "patient")
                    .accepted);
    sched.stop();
    fs::remove_all(dir);
}

TEST(ServiceScheduler, QueuedCancelAndDrain)
{
    std::string dir = "/tmp/tea_svc_test_cancel";
    fs::remove_all(dir);
    fs::create_directories(dir);
    Scheduler sched(schedulerOptions(dir));
    sched.setPaused(true);

    auto s = sched.submit(tinyPlan(dir).serialize(), "c");
    ASSERT_TRUE(s.accepted);
    EXPECT_FALSE(sched.cancel(9999)) << "unknown id";
    ASSERT_TRUE(sched.cancel(s.sub.id));
    auto p = sched.status(s.sub.id);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->state, CampaignState::Cancelled);

    // The cancelled plan no longer blocks dedup: resubmission is a
    // fresh campaign.
    auto again = sched.submit(tinyPlan(dir).serialize(), "c");
    ASSERT_TRUE(again.accepted);
    EXPECT_FALSE(again.sub.deduped);
    EXPECT_NE(again.sub.id, s.sub.id);

    // Draining: nothing new is admitted, queued work still finishes.
    sched.drain();
    auto rejected = sched.submit(tinyPlan(dir, 7).serialize(), "c");
    ASSERT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.rej.code, service::ErrorCode::ShuttingDown);
    sched.setPaused(false);
    sched.awaitIdle();
    p = sched.status(again.sub.id);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->state, CampaignState::Done);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// End-to-end over the socket: daemon == in-process, byte for byte
// ---------------------------------------------------------------------

TEST(ServiceDaemon, ByteIdenticalToInProcessUnderChaos)
{
    std::string dir = "/tmp/tea_svc_test_e2e";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ToolflowOptions refOpt = tinyOptions(dir);
    GridSpec spec = tinySpec();

    // In-process reference; capture + clear the grid CSV so the
    // daemon run regenerates it at the identical path.
    Toolflow tf(refOpt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 3u);
    std::string csvPath = gridCachePath(refOpt);
    std::string refCsv = readFileToString(csvPath).value_or("");
    ASSERT_FALSE(refCsv.empty());
    fs::remove(csvPath);

    DaemonOptions opt;
    opt.socketPath = "/tmp/tea_svc_e2e.sock";
    opt.cacheDir = dir;
    opt.spoolRoot = dir + "/spool";
    opt.fleet.workers = 2;
    opt.fleet.workerBin = TEA_WORKER_BIN;
    opt.fleet.leaseMs = 3000;
    opt.fleet.maxAttempts = 5;
    opt.fleet.backoffMs = 50;
    opt.fleet.pollMs = 10;
    ServiceDaemon daemon(opt);
    ASSERT_TRUE(daemon.start());

    // The client's plan names a cache dir that doesn't exist; the
    // daemon must override it with its shared one.
    std::string planBytes = tinyPlan("/tmp/no_such_cache").serialize();

    std::vector<CampaignCell> streamed;
    Client::Status final;
    {
        // Every unit's first attempt SIGKILLs its worker after 2
        // fresh runs; the fleet must recover mid-campaign.
        ScopedEnv chaos("TEA_FLEET_TEST_CRASH_RUNS", "2");
        auto client = Client::connectUnix(opt.socketPath, "e2e");
        ASSERT_TRUE(client.has_value());
        Client::Submitted sub;
        ASSERT_TRUE(client->submit(planBytes, sub))
            << errorCodeName(client->lastError().code) << " "
            << client->lastError().detail;
        EXPECT_FALSE(sub.deduped);
        EXPECT_EQ(sub.cellsTotal, 3u);

        Client::Status mid;
        ASSERT_TRUE(client->status(sub.id, mid));
        EXPECT_EQ(mid.cellsTotal, 3u);

        ASSERT_TRUE(client->watch(
            sub.id,
            [&streamed](const CampaignCell &cell) {
                streamed.push_back(cell);
            },
            final));
    }
    EXPECT_EQ(final.state, "done");
    EXPECT_FALSE(final.interrupted);
    EXPECT_EQ(final.cellsDone, 3u);

    // The streamed cells are the reference cells...
    expectSameCells(ref.cells, streamed);
    // ... and the merged on-disk artifact is byte-identical.
    std::string daemonCsv = readFileToString(csvPath).value_or("");
    EXPECT_EQ(refCsv, daemonCsv)
        << "daemon-run grid CSV must be byte-identical to in-process";

    // An identical resubmission dedups against nothing (the campaign
    // finished) but hits the cached grid: instant, same cells.
    {
        auto client = Client::connectUnix(opt.socketPath, "e2e2");
        ASSERT_TRUE(client.has_value());
        Client::Submitted sub;
        ASSERT_TRUE(client->submit(planBytes, sub));
        std::vector<CampaignCell> cached;
        Client::Status fin;
        ASSERT_TRUE(client->watch(
            sub.id,
            [&cached](const CampaignCell &cell) {
                cached.push_back(cell);
            },
            fin));
        EXPECT_EQ(fin.state, "done");
        expectSameCells(ref.cells, cached);
    }

    daemon.stop();
    fs::remove_all(dir);
    fs::remove(opt.socketPath);
}

TEST(ServiceDaemon, ImportanceSampledCampaignMatchesInProcess)
{
    // REPRO_IS through the daemon: the plan carries the IS knobs, the
    // streamed cells carry the weighted-estimator sums bit-exactly,
    // and the merged grid CSV (weighted columns included) matches the
    // same plan run in-process.
    std::string dir = "/tmp/tea_svc_test_is";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ToolflowOptions refOpt = tinyOptions(dir);
    refOpt.isEnable = true;
    refOpt.isBoost = 2.0;
    refOpt.isMaxTilted = 1e9; // full tilt: nontrivial weights on wire
    refOpt.isCorpusPerOp = 200;
    GridSpec spec = tinySpec();

    Toolflow tf(refOpt);
    EvaluationGrid ref = runEvaluationGrid(tf, spec);
    ASSERT_EQ(ref.cells.size(), 3u);
    std::string csvPath = gridCachePath(refOpt);
    std::string refCsv = readFileToString(csvPath).value_or("");
    ASSERT_FALSE(refCsv.empty());
    fs::remove(csvPath);

    DaemonOptions opt = schedulerOptions(dir);
    opt.socketPath = "/tmp/tea_svc_is.sock";
    ServiceDaemon daemon(opt);
    ASSERT_TRUE(daemon.start());

    fleet::FleetPlan plan{refOpt, spec};
    std::vector<CampaignCell> streamed;
    Client::Status final;
    {
        auto client = Client::connectUnix(opt.socketPath, "is");
        ASSERT_TRUE(client.has_value());
        Client::Submitted sub;
        ASSERT_TRUE(client->submit(plan.serialize(), sub))
            << errorCodeName(client->lastError().code) << " "
            << client->lastError().detail;
        ASSERT_TRUE(client->watch(
            sub.id,
            [&streamed](const CampaignCell &cell) {
                streamed.push_back(cell);
            },
            final));
    }
    EXPECT_EQ(final.state, "done");
    expectSameCells(ref.cells, streamed);
    for (size_t i = 0; i < ref.cells.size(); ++i) {
        const auto &r = ref.cells[i].result;
        const auto &g = streamed[i].result;
        EXPECT_EQ(r.weightedModel, g.weightedModel) << "cell " << i;
        // The wire carries the sums as %.17g: bit-exact doubles.
        EXPECT_EQ(r.weightSum, g.weightSum) << "cell " << i;
        EXPECT_EQ(r.weightUnsafe, g.weightUnsafe) << "cell " << i;
        EXPECT_EQ(r.weightSqSum, g.weightSqSum) << "cell " << i;
        EXPECT_EQ(r.weightUnsafeSqSum, g.weightUnsafeSqSum)
            << "cell " << i;
    }
    // IA and WA cells really sampled the tilted proposal.
    EXPECT_TRUE(streamed[1].result.weightedModel);
    EXPECT_TRUE(streamed[2].result.weightedModel);

    std::string daemonCsv = readFileToString(csvPath).value_or("");
    EXPECT_EQ(refCsv, daemonCsv)
        << "daemon-run IS grid CSV must be byte-identical";

    daemon.stop();
    fs::remove_all(dir);
    fs::remove(opt.socketPath);
}

TEST(ServiceDaemon, ProtocolErrorsOverTheWire)
{
    std::string dir = "/tmp/tea_svc_test_wire";
    fs::remove_all(dir);
    fs::create_directories(dir);
    DaemonOptions opt = schedulerOptions(dir);
    opt.socketPath = "/tmp/tea_svc_wire.sock";
    ServiceDaemon daemon(opt);
    ASSERT_TRUE(daemon.start());

    // Version skew: a sealed frame with version 2 gets a structured
    // VERSION_SKEW error and the connection survives.
    {
        auto sock = Socket::connectUnix(opt.socketPath);
        ASSERT_TRUE(sock.has_value());
        std::string wire = encodeFrame(MsgType::Hello, "");
        wire[4] = 2;
        std::string body = wire.substr(0, wire.size() - 4);
        uint32_t crc = crc32(body.data(), body.size());
        wire = body;
        for (int i = 0; i < 4; ++i)
            wire.push_back(
                static_cast<char>((crc >> (8 * i)) & 0xff));
        ASSERT_TRUE(sock->sendAll(wire));
        std::string buf;
        Frame resp;
        ASSERT_EQ(recvFrame(*sock, buf, resp, 5000), RecvStatus::Ok);
        ASSERT_EQ(resp.type, static_cast<uint16_t>(MsgType::Error));
        auto kv = parseKv(resp.payload);
        EXPECT_EQ(kv["code"], "VERSION_SKEW");
        // Same connection, correct version: still serviceable.
        ASSERT_TRUE(sendFrame(*sock, MsgType::Hello, ""));
        ASSERT_EQ(recvFrame(*sock, buf, resp, 5000), RecvStatus::Ok);
        EXPECT_EQ(resp.type, static_cast<uint16_t>(MsgType::HelloOk));
    }

    // Garbage bytes: one best-effort BAD_REQUEST, then the daemon
    // cuts the connection (framing is unrecoverable).
    {
        auto sock = Socket::connectUnix(opt.socketPath);
        ASSERT_TRUE(sock.has_value());
        ASSERT_TRUE(sock->sendAll("this is not a TEAF frame at all"));
        std::string buf;
        Frame resp;
        ASSERT_EQ(recvFrame(*sock, buf, resp, 5000), RecvStatus::Ok);
        ASSERT_EQ(resp.type, static_cast<uint16_t>(MsgType::Error));
        auto kv = parseKv(resp.payload);
        EXPECT_EQ(kv["code"], "BAD_REQUEST");
        EXPECT_EQ(recvFrame(*sock, buf, resp, 5000),
                  RecvStatus::Closed);
    }

    // Daemon-side request errors through the client API.
    {
        auto client = Client::connectUnix(opt.socketPath, "errs");
        ASSERT_TRUE(client.has_value());
        Client::Status st;
        EXPECT_FALSE(client->status(424242, st));
        EXPECT_EQ(client->lastError().code, service::ErrorCode::NotFound);
        Client::Submitted sub;
        EXPECT_FALSE(client->submit("not a fleet plan", sub));
        EXPECT_EQ(client->lastError().code, service::ErrorCode::BadRequest);
    }

    // DRAIN over the wire: acknowledged, then submits are refused.
    {
        auto client = Client::connectUnix(opt.socketPath, "drainer");
        ASSERT_TRUE(client.has_value());
        ASSERT_TRUE(client->drain());
        EXPECT_TRUE(daemon.drainRequested());
        Client::Submitted sub;
        EXPECT_FALSE(client->submit(tinyPlan(dir).serialize(), sub));
        EXPECT_EQ(client->lastError().code, service::ErrorCode::ShuttingDown);
        daemon.awaitDrained(); // nothing was running: returns at once
    }

    daemon.stop();
    fs::remove_all(dir);
    fs::remove(opt.socketPath);
}

TEST(ServiceDaemon, TcpLoopbackServes)
{
    std::string dir = "/tmp/tea_svc_test_tcp";
    fs::remove_all(dir);
    fs::create_directories(dir);
    DaemonOptions opt = schedulerOptions(dir);
    opt.socketPath = "/tmp/tea_svc_tcp.sock";
    opt.tcpPort = 0; // ephemeral
    ServiceDaemon daemon(opt);
    ASSERT_TRUE(daemon.start());
    ASSERT_GT(daemon.tcpPort(), 0);

    auto client = Client::connectTcp(daemon.tcpPort(), "tcp");
    ASSERT_TRUE(client.has_value());
    Client::Status st;
    EXPECT_FALSE(client->status(1, st));
    EXPECT_EQ(client->lastError().code, service::ErrorCode::NotFound);

    daemon.stop();
    fs::remove_all(dir);
    fs::remove(opt.socketPath);
}
