/**
 * Tests for STA and the two DTA engines, including cross-validation of
 * the levelized approximation against the exact event-driven reference.
 */

#include <gtest/gtest.h>

#include "circuit/builders.hh"
#include "circuit/celllib.hh"
#include "circuit/dta.hh"
#include "circuit/sta.hh"
#include "util/bitops.hh"
#include "util/rng.hh"

using namespace tea::circuit;
using tea::Rng;
using tea::lowMask;

namespace {

/** 8-bit ripple adder test fixture: long carry chains, data dependent. */
struct AdderFixture
{
    Netlist nl{"adder8"};
    Bus ia, ib;
    Bus sum;

    AdderFixture()
    {
        Builder b(nl);
        ia = nl.addInputBus("a", 8);
        ib = nl.addInputBus("b", 8);
        auto add = b.rippleAdd(ia, ib);
        sum = add.sum;
        sum.push_back(add.carry);
        nl.addOutputBus("sum", sum);
    }

    std::vector<bool>
    inputs(uint64_t a, uint64_t bv) const
    {
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 8; ++i) {
            in[ia[i]] = (a >> i) & 1;
            in[ib[i]] = (bv >> i) & 1;
        }
        return in;
    }
};

uint64_t
busBits(const std::vector<bool> &flat)
{
    uint64_t v = 0;
    for (size_t i = 0; i < flat.size(); ++i)
        if (flat[i])
            v |= 1ULL << i;
    return v;
}

} // namespace

TEST(Sta, ArrivalMonotoneAlongPath)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    auto sta = staAnalyze(f.nl, annot);
    // The carry-out is the deepest endpoint of a ripple adder.
    auto eps = sta.endpoints();
    EXPECT_EQ(eps.front().net, f.sum.back());
    // Worst path is nontrivial and starts at an input.
    auto path = sta.worstPath(eps.front().net);
    EXPECT_GT(path.size(), 8u);
    EXPECT_EQ(f.nl.cell(path.front()).kind, CellKind::Input);
    // Arrivals increase along the path.
    for (size_t i = 1; i < path.size(); ++i)
        EXPECT_GE(sta.arrivalPs(path[i]), sta.arrivalPs(path[i - 1]));
}

TEST(Sta, CriticalPathScalesWithWidth)
{
    Netlist nl4("a4"), nl16("a16");
    {
        Builder b(nl4);
        Bus ia = nl4.addInputBus("a", 4);
        Bus ib = nl4.addInputBus("b", 4);
        auto add = b.rippleAdd(ia, ib);
        nl4.addOutputBus("s", add.sum);
    }
    {
        Builder b(nl16);
        Bus ia = nl16.addInputBus("a", 16);
        Bus ib = nl16.addInputBus("b", 16);
        auto add = b.rippleAdd(ia, ib);
        nl16.addOutputBus("s", add.sum);
    }
    auto lib = CellLibrary::nangate45Like();
    auto sta4 = staAnalyze(nl4, DelayAnnotation(nl4, lib, 1));
    auto sta16 = staAnalyze(nl16, DelayAnnotation(nl16, lib, 1));
    EXPECT_GT(sta16.criticalPathPs(), 2.0 * sta4.criticalPathPs());
}

TEST(Sta, KoggeStoneShallowerThanRipple)
{
    Netlist nlr("r"), nlk("k");
    auto build = [](Netlist &nl, bool fast) {
        Builder b(nl);
        Bus ia = nl.addInputBus("a", 32);
        Bus ib = nl.addInputBus("b", 32);
        auto add = fast ? b.koggeStoneAdd(ia, ib) : b.rippleAdd(ia, ib);
        nl.addOutputBus("s", add.sum);
    };
    build(nlr, false);
    build(nlk, true);
    auto lib = CellLibrary::nangate45Like();
    auto star = staAnalyze(nlr, DelayAnnotation(nlr, lib, 1));
    auto stak = staAnalyze(nlk, DelayAnnotation(nlk, lib, 1));
    EXPECT_LT(stak.criticalPathPs(), 0.5 * star.criticalPathPs());
}

TEST(VoltageModel, DelayFactorMonotone)
{
    VoltageModel vm;
    EXPECT_NEAR(vm.delayFactor(vm.nominalV), 1.0, 1e-12);
    double f15 = vm.delayFactorAtReduction(kVR15);
    double f20 = vm.delayFactorAtReduction(kVR20);
    EXPECT_GT(f15, 1.05);
    EXPECT_GT(f20, f15);
    EXPECT_LT(f20, 2.0);
}

TEST(VoltageModel, PowerSavings)
{
    VoltageModel vm;
    double p15 = vm.totalPowerFactor(vm.voltageFor(kVR15));
    double p20 = vm.totalPowerFactor(vm.voltageFor(kVR20));
    EXPECT_LT(p20, p15);
    EXPECT_LT(p15, 1.0);
    EXPECT_GT(p20, 0.4);
}

TEST(DelayAnnotation, DeterministicAndPositive)
{
    AdderFixture f;
    auto lib = CellLibrary::nangate45Like();
    DelayAnnotation a1(f.nl, lib, 42), a2(f.nl, lib, 42), a3(f.nl, lib, 7);
    bool anyDiffer = false;
    for (NetId i = 0; i < f.nl.numCells(); ++i) {
        EXPECT_EQ(a1.delayPs(i), a2.delayPs(i));
        if (a1.delayPs(i) != a3.delayPs(i))
            anyDiffer = true;
        auto kind = f.nl.cell(i).kind;
        bool zeroDelay = kind == CellKind::Input ||
                         kind == CellKind::Const0 ||
                         kind == CellKind::Const1;
        if (!zeroDelay) {
            EXPECT_GT(a1.delayPs(i), 0.0);
        }
    }
    EXPECT_TRUE(anyDiffer); // different seed -> different variation
}

TEST(EventDrivenDta, SettlesToFunctionalValue)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta dta(f.nl, annot);
    Rng rng(21);
    for (int t = 0; t < 200; ++t) {
        uint64_t a0 = rng.next() & 0xff, b0 = rng.next() & 0xff;
        uint64_t a1 = rng.next() & 0xff, b1 = rng.next() & 0xff;
        auto res = dta.run(f.inputs(a0, b0), f.inputs(a1, b1), 1e9);
        EXPECT_EQ(busBits(res.settled), a1 + b1);
        // Generous capture time: captured == settled.
        EXPECT_EQ(busBits(res.captured), a1 + b1);
        EXPECT_FALSE(res.anyError());
    }
}

TEST(EventDrivenDta, TightClockLatchesStaleBits)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta dta(f.nl, annot);
    // 0xFF + 0x01 after 0x00 + 0x00 rings the full carry chain.
    auto res = dta.run(f.inputs(0, 0), f.inputs(0xff, 0x01), 200.0);
    EXPECT_EQ(busBits(res.settled), 0x100u);
    EXPECT_TRUE(res.anyError());
    EXPECT_NE(res.errorMask64(), 0u);
    EXPECT_GT(res.maxArrivalPs, 200.0);
}

TEST(EventDrivenDta, NoTransitionNoError)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta dta(f.nl, annot);
    auto in = f.inputs(0x12, 0x34);
    auto res = dta.run(in, in, 0.0); // zero capture time
    EXPECT_FALSE(res.anyError());
    EXPECT_EQ(res.events, 0u);
    EXPECT_EQ(busBits(res.settled), 0x12u + 0x34u);
}

TEST(EventDrivenDta, DelayScaleShiftsFailurePoint)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta nominal(f.nl, annot, 1.0);
    EventDrivenDta scaled(f.nl, annot, 1.3);
    auto prev = f.inputs(0, 0);
    auto cur = f.inputs(0xff, 0x01);
    double settle = nominal.run(prev, cur, 1e9).maxArrivalPs;
    // Capture just above the nominal settle time: nominal passes,
    // voltage-scaled fails.
    double capture = settle * 1.05;
    EXPECT_FALSE(nominal.run(prev, cur, capture).anyError());
    EXPECT_TRUE(scaled.run(prev, cur, capture).anyError());
}

TEST(LevelizedDta, MatchesExactOnSettledValues)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta exact(f.nl, annot);
    LevelizedDta fast(f.nl, annot);
    Rng rng(22);
    for (int t = 0; t < 200; ++t) {
        uint64_t a0 = rng.next() & 0xff, b0 = rng.next() & 0xff;
        uint64_t a1 = rng.next() & 0xff, b1 = rng.next() & 0xff;
        auto p = f.inputs(a0, b0);
        auto c = f.inputs(a1, b1);
        auto re = exact.run(p, c, 1e9);
        auto rl = fast.run(p, c, 1e9);
        EXPECT_EQ(busBits(re.settled), busBits(rl.settled));
        EXPECT_FALSE(rl.anyError());
    }
}

TEST(LevelizedDta, ArrivalTracksExactWithinBand)
{
    // The levelized last-arrival estimate is hazard-blind (it can be
    // early when glitches extend settling, and late because it takes the
    // worst changed fanin rather than the sensitized one). On a glitchy
    // ripple adder it should still land within [0.5x, 2x] of the exact
    // engine for the bulk of transitions; the ablation bench reports the
    // full distribution.
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta exact(f.nl, annot);
    LevelizedDta fast(f.nl, annot);
    Rng rng(23);
    int inBand = 0, total = 0;
    for (int t = 0; t < 500; ++t) {
        uint64_t a0 = rng.next() & 0xff, b0 = rng.next() & 0xff;
        uint64_t a1 = rng.next() & 0xff, b1 = rng.next() & 0xff;
        auto p = f.inputs(a0, b0);
        auto c = f.inputs(a1, b1);
        auto re = exact.run(p, c, 1e9);
        auto rl = fast.run(p, c, 1e9);
        if (re.maxArrivalPs < 1.0)
            continue;
        ++total;
        double ratio = rl.maxArrivalPs / re.maxArrivalPs;
        if (ratio >= 0.5 && ratio <= 2.0)
            ++inBand;
    }
    ASSERT_GT(total, 300);
    EXPECT_GT(static_cast<double>(inBand) / total, 0.75);
}

TEST(LevelizedDta, DetectsMajorityOfExactErrorsUnderTightClock)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    EventDrivenDta exact(f.nl, annot);
    LevelizedDta fast(f.nl, annot);
    Rng rng(24);
    int bothError = 0, exactError = 0, levError = 0;
    for (int t = 0; t < 1000; ++t) {
        uint64_t a0 = rng.next() & 0xff, b0 = rng.next() & 0xff;
        uint64_t a1 = rng.next() & 0xff, b1 = rng.next() & 0xff;
        auto p = f.inputs(a0, b0);
        auto c = f.inputs(a1, b1);
        auto re = exact.run(p, c, 250.0);
        auto rl = fast.run(p, c, 250.0);
        if (rl.anyError())
            ++levError;
        if (re.anyError()) {
            ++exactError;
            if (rl.anyError())
                ++bothError;
        }
    }
    ASSERT_GT(exactError, 100);
    // The hazard-blind engine misses glitch-capture errors but should
    // still find at least half of the exact ones, and its overall error
    // rate should be the same order of magnitude.
    EXPECT_GT(static_cast<double>(bothError) / exactError, 0.5);
    EXPECT_GT(levError * 4, exactError);
    EXPECT_LT(levError, exactError * 2);
}

TEST(DtaResult, ErrorMaskBits)
{
    DtaResult r;
    r.settled = {true, false, true, false};
    r.captured = {true, true, true, true};
    EXPECT_TRUE(r.anyError());
    EXPECT_EQ(r.errorMask64(), 0b1010u);
}

TEST(DtaResultDeathTest, ErrorMaskPanicsOnWidthOverflow)
{
    // More than 64 output bits cannot be represented in the mask;
    // truncating them would silently drop error statistics.
    DtaResult r;
    r.settled.assign(65, false);
    r.captured.assign(65, false);
    EXPECT_DEATH(r.errorMask64(), "errorMask64");
}

namespace {

/** Pack one input-vector bit per lane into plane words. */
std::vector<uint64_t>
packPlanes(const std::vector<std::vector<bool>> &vecs)
{
    std::vector<uint64_t> planes(vecs.front().size(), 0);
    for (size_t l = 0; l < vecs.size(); ++l)
        for (size_t i = 0; i < vecs[l].size(); ++i)
            if (vecs[l][i])
                planes[i] |= 1ULL << l;
    return planes;
}

} // namespace

TEST(LaneDta, BitIdenticalToScalarLevelized)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    LevelizedDta scalar(f.nl, annot, 1.2);
    LaneDta lane(f.nl, annot, 1.2);
    Rng rng(31);
    // Include a tight capture right in the arrival distribution so
    // both error and error-free lanes occur.
    for (double capture : {1e9, 250.0, 180.0}) {
        for (int round = 0; round < 4; ++round) {
            std::vector<std::vector<bool>> prevs, curs;
            for (unsigned l = 0; l < 64; ++l) {
                prevs.push_back(
                    f.inputs(rng.next() & 0xff, rng.next() & 0xff));
                curs.push_back(
                    f.inputs(rng.next() & 0xff, rng.next() & 0xff));
            }
            const auto &batch = lane.runBatch(
                packPlanes(prevs), packPlanes(curs), capture, 64);
            for (unsigned l = 0; l < 64; ++l) {
                auto ref = scalar.run(prevs[l], curs[l], capture);
                uint64_t settled = 0, captured = 0;
                for (size_t k = 0; k < ref.settled.size(); ++k) {
                    settled |= uint64_t{ref.settled[k]} << k;
                    captured |= uint64_t{ref.captured[k]} << k;
                }
                uint64_t laneSettled = 0, laneCaptured = 0;
                for (size_t k = 0; k < batch.settled.size(); ++k) {
                    laneSettled |=
                        ((batch.settled[k] >> l) & 1) << k;
                    laneCaptured |=
                        ((batch.captured[k] >> l) & 1) << k;
                }
                ASSERT_EQ(laneSettled, settled);
                ASSERT_EQ(laneCaptured, captured);
                // Arrival contract: exact above the capture time (same
                // doubles, same order), lower bound below it.
                if (ref.maxArrivalPs > capture)
                    ASSERT_EQ(batch.maxArrivalPs[l], ref.maxArrivalPs);
                else
                    ASSERT_LE(batch.maxArrivalPs[l], ref.maxArrivalPs);
            }
        }
    }
}

TEST(LaneDta, PartialBatchMatchesScalar)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    LevelizedDta scalar(f.nl, annot);
    LaneDta lane(f.nl, annot);
    Rng rng(32);
    std::vector<std::vector<bool>> prevs, curs;
    for (unsigned l = 0; l < 5; ++l) {
        prevs.push_back(f.inputs(rng.next() & 0xff, rng.next() & 0xff));
        curs.push_back(f.inputs(rng.next() & 0xff, rng.next() & 0xff));
    }
    const auto &batch =
        lane.runBatch(packPlanes(prevs), packPlanes(curs), 230.0, 5);
    for (unsigned l = 0; l < 5; ++l) {
        auto ref = scalar.run(prevs[l], curs[l], 230.0);
        for (size_t k = 0; k < ref.settled.size(); ++k) {
            ASSERT_EQ((batch.settled[k] >> l) & 1,
                      uint64_t{ref.settled[k]});
            ASSERT_EQ((batch.captured[k] >> l) & 1,
                      uint64_t{ref.captured[k]});
        }
        if (ref.maxArrivalPs > 230.0)
            ASSERT_EQ(batch.maxArrivalPs[l], ref.maxArrivalPs);
        else
            ASSERT_LE(batch.maxArrivalPs[l], ref.maxArrivalPs);
    }
}

TEST(LaneDta, EvalBatchMatchesFunctionalEvaluation)
{
    AdderFixture f;
    DelayAnnotation annot(f.nl, CellLibrary::nangate45Like(), 1);
    LaneDta lane(f.nl, annot);
    Rng rng(33);
    std::vector<std::vector<bool>> curs;
    for (unsigned l = 0; l < 64; ++l)
        curs.push_back(f.inputs(rng.next() & 0xff, rng.next() & 0xff));
    const auto &out = lane.evalBatch(packPlanes(curs));
    for (unsigned l = 0; l < 64; ++l) {
        auto flat = flattenOutputs(f.nl, evaluate(f.nl, curs[l]));
        for (size_t k = 0; k < flat.size(); ++k)
            ASSERT_EQ((out[k] >> l) & 1, uint64_t{flat[k]});
    }
}
