#include <gtest/gtest.h>

#include "circuit/netlist.hh"

using namespace tea::circuit;

TEST(Netlist, InputsAndGates)
{
    Netlist nl("t");
    NetId a = nl.addInput("a");
    NetId b = nl.addInput("b");
    NetId x = nl.addGate(CellKind::Xor2, a, b);
    nl.addOutputBus("out", {x});
    EXPECT_EQ(nl.numInputs(), 2u);
    EXPECT_EQ(nl.numCells(), 3u);
    EXPECT_EQ(nl.numOutputBits(), 1u);
}

TEST(Netlist, EvaluateBasicGates)
{
    Netlist nl("t");
    NetId a = nl.addInput("a");
    NetId b = nl.addInput("b");
    NetId g_and = nl.addGate(CellKind::And2, a, b);
    NetId g_or = nl.addGate(CellKind::Or2, a, b);
    NetId g_xor = nl.addGate(CellKind::Xor2, a, b);
    NetId g_nand = nl.addGate(CellKind::Nand2, a, b);
    NetId g_nor = nl.addGate(CellKind::Nor2, a, b);
    NetId g_xnor = nl.addGate(CellKind::Xnor2, a, b);
    NetId g_not = nl.addGate(CellKind::Not, a);

    for (int av = 0; av <= 1; ++av) {
        for (int bv = 0; bv <= 1; ++bv) {
            auto v = evaluate(nl, {av != 0, bv != 0});
            EXPECT_EQ(v[g_and], av && bv);
            EXPECT_EQ(v[g_or], av || bv);
            EXPECT_EQ(v[g_xor], av != bv);
            EXPECT_EQ(v[g_nand], !(av && bv));
            EXPECT_EQ(v[g_nor], !(av || bv));
            EXPECT_EQ(v[g_xnor], av == bv);
            EXPECT_EQ(v[g_not], !av);
        }
    }
}

TEST(Netlist, MuxAndMajority)
{
    Netlist nl("t");
    NetId s = nl.addInput("s");
    NetId a = nl.addInput("a");
    NetId b = nl.addInput("b");
    NetId m = nl.addGate(CellKind::Mux2, s, a, b);
    NetId mj = nl.addGate(CellKind::Maj3, s, a, b);
    for (int sv = 0; sv <= 1; ++sv)
        for (int av = 0; av <= 1; ++av)
            for (int bv = 0; bv <= 1; ++bv) {
                auto v = evaluate(nl, {sv != 0, av != 0, bv != 0});
                EXPECT_EQ(v[m], sv ? (bv != 0) : (av != 0));
                EXPECT_EQ(v[mj], (sv + av + bv) >= 2);
            }
}

TEST(Netlist, BusValueRoundTrip)
{
    Netlist nl("t");
    Bus in = nl.addInputBus("x", 16);
    nl.addOutputBus("x", in);
    std::vector<bool> values(nl.numCells());
    setBusValue(values, in, 0xBEEF);
    EXPECT_EQ(busValue(values, in), 0xBEEFu);
}

TEST(Netlist, FanoutsComputed)
{
    Netlist nl("t");
    NetId a = nl.addInput("a");
    NetId b = nl.addInput("b");
    NetId g1 = nl.addGate(CellKind::And2, a, b);
    NetId g2 = nl.addGate(CellKind::Or2, a, g1);
    const auto &fo = nl.fanouts();
    EXPECT_EQ(fo[a].size(), 2u);
    EXPECT_EQ(fo[b].size(), 1u);
    EXPECT_EQ(fo[g1].size(), 1u);
    EXPECT_EQ(fo[g1][0], g2);
}

TEST(Netlist, TopologicalViolationPanics)
{
    Netlist nl("t");
    NetId a = nl.addInput("a");
    (void)a;
    EXPECT_DEATH(nl.addGate(CellKind::Not, 5), "topological|fanin");
}

TEST(Netlist, KindCounts)
{
    Netlist nl("t");
    NetId a = nl.addInput("a");
    nl.addGate(CellKind::Not, a);
    nl.addGate(CellKind::Not, a);
    auto counts = nl.kindCounts();
    EXPECT_EQ(counts[static_cast<size_t>(CellKind::Not)], 2u);
    EXPECT_EQ(counts[static_cast<size_t>(CellKind::Input)], 1u);
}
