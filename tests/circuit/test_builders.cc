/**
 * Functional verification of the datapath builders against plain
 * integer arithmetic, swept over random vectors.
 */

#include <gtest/gtest.h>

#include "circuit/builders.hh"
#include "circuit/celllib.hh"
#include "circuit/sta.hh"
#include "circuit/netlist.hh"
#include "util/bitops.hh"
#include "util/rng.hh"

using namespace tea::circuit;
using tea::Rng;
using tea::lowMask;

namespace {

/** Helper: evaluate a netlist whose inputs are two buses. */
struct TwoBusHarness
{
    Netlist nl{"t"};
    Builder b{nl};
    Bus ia, ib;

    TwoBusHarness(unsigned wa, unsigned wb)
    {
        ia = nl.addInputBus("a", wa);
        ib = nl.addInputBus("b", wb);
    }

    std::vector<bool>
    eval(uint64_t a, uint64_t bv)
    {
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < ia.size(); ++i)
            in[ia[i]] = (a >> i) & 1;
        for (size_t i = 0; i < ib.size(); ++i)
            in[ib[i]] = (bv >> i) & 1;
        return evaluate(nl, in);
    }
};

} // namespace

TEST(Builders, RippleAdder)
{
    TwoBusHarness h(16, 16);
    auto add = h.b.rippleAdd(h.ia, h.ib);
    Rng rng(1);
    for (int t = 0; t < 500; ++t) {
        uint64_t a = rng.next() & 0xffff;
        uint64_t b = rng.next() & 0xffff;
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, add.sum), (a + b) & 0xffff);
        EXPECT_EQ(v[add.carry], ((a + b) >> 16) & 1);
    }
}

TEST(Builders, KoggeStoneMatchesRipple)
{
    TwoBusHarness h(24, 24);
    auto ks = h.b.koggeStoneAdd(h.ia, h.ib);
    auto rp = h.b.rippleAdd(h.ia, h.ib);
    Rng rng(2);
    for (int t = 0; t < 500; ++t) {
        uint64_t a = rng.next() & lowMask(24);
        uint64_t b = rng.next() & lowMask(24);
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, ks.sum), busValue(v, rp.sum));
        EXPECT_EQ(v[ks.carry], v[rp.carry]);
    }
}

TEST(Builders, KoggeStoneWithCarryIn)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 12);
    Bus ib = nl.addInputBus("b", 12);
    NetId cin = nl.addInput("cin");
    auto add = b.koggeStoneAdd(ia, ib, cin);
    Rng rng(3);
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & lowMask(12);
        uint64_t bv = rng.next() & lowMask(12);
        bool ci = rng.next() & 1;
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 12; ++i) {
            in[ia[i]] = (a >> i) & 1;
            in[ib[i]] = (bv >> i) & 1;
        }
        in[cin] = ci;
        auto v = evaluate(nl, in);
        uint64_t expect = a + bv + ci;
        EXPECT_EQ(busValue(v, add.sum), expect & lowMask(12));
        EXPECT_EQ(v[add.carry], (expect >> 12) & 1);
    }
}

TEST(Builders, Subtract)
{
    TwoBusHarness h(20, 20);
    auto sub = h.b.subtract(h.ia, h.ib);
    Rng rng(4);
    for (int t = 0; t < 500; ++t) {
        uint64_t a = rng.next() & lowMask(20);
        uint64_t b = rng.next() & lowMask(20);
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, sub.sum), (a - b) & lowMask(20));
        EXPECT_EQ(v[sub.carry], a >= b);
    }
}

TEST(Builders, IncrementerAndNegate)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 10);
    NetId en = nl.addInput("en");
    Bus inc = b.incrementer(ia, en);
    Bus neg = b.negate(ia);
    Rng rng(5);
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & lowMask(10);
        bool e = rng.next() & 1;
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 10; ++i)
            in[ia[i]] = (a >> i) & 1;
        in[en] = e;
        auto v = evaluate(nl, in);
        EXPECT_EQ(busValue(v, inc), (a + e) & lowMask(10));
        EXPECT_EQ(busValue(v, neg), (-a) & lowMask(10));
    }
}

TEST(Builders, Comparisons)
{
    TwoBusHarness h(14, 14);
    NetId eq = h.b.equalBus(h.ia, h.ib);
    NetId lt = h.b.lessUnsigned(h.ia, h.ib);
    NetId ge = h.b.geUnsigned(h.ia, h.ib);
    NetId zero = h.b.isZeroBus(h.ia);
    Rng rng(6);
    for (int t = 0; t < 500; ++t) {
        uint64_t a = rng.next() & lowMask(14);
        uint64_t b = (t % 7 == 0) ? a : (rng.next() & lowMask(14));
        if (t % 11 == 0)
            a = 0;
        auto v = h.eval(a, b);
        EXPECT_EQ(v[eq], a == b);
        EXPECT_EQ(v[lt], a < b);
        EXPECT_EQ(v[ge], a >= b);
        EXPECT_EQ(v[zero], a == 0);
    }
}

TEST(Builders, ShiftRightLogical)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 32);
    Bus amt = nl.addInputBus("amt", 6);
    Bus out = b.shiftRightLogical(ia, amt);
    Rng rng(7);
    for (int t = 0; t < 400; ++t) {
        uint64_t a = rng.next() & lowMask(32);
        uint64_t s = rng.nextBounded(64);
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 32; ++i)
            in[ia[i]] = (a >> i) & 1;
        for (size_t i = 0; i < 6; ++i)
            in[amt[i]] = (s >> i) & 1;
        auto v = evaluate(nl, in);
        uint64_t expect = (s >= 32) ? 0 : (a >> s);
        EXPECT_EQ(busValue(v, out), expect) << "a=" << a << " s=" << s;
    }
}

TEST(Builders, ShiftRightSticky)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 24);
    Bus amt = nl.addInputBus("amt", 5);
    auto sh = b.shiftRightSticky(ia, amt);
    Rng rng(8);
    for (int t = 0; t < 400; ++t) {
        uint64_t a = rng.next() & lowMask(24);
        uint64_t s = rng.nextBounded(32);
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 24; ++i)
            in[ia[i]] = (a >> i) & 1;
        for (size_t i = 0; i < 5; ++i)
            in[amt[i]] = (s >> i) & 1;
        auto v = evaluate(nl, in);
        uint64_t expect = (s >= 24) ? 0 : (a >> s);
        bool sticky = (s >= 24) ? (a != 0) : ((a & lowMask(s)) != 0);
        EXPECT_EQ(busValue(v, sh.out), expect);
        EXPECT_EQ(v[sh.sticky], sticky) << "a=" << a << " s=" << s;
    }
}

TEST(Builders, ShiftLeftLogical)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 20);
    Bus amt = nl.addInputBus("amt", 5);
    Bus out = b.shiftLeftLogical(ia, amt);
    Rng rng(9);
    for (int t = 0; t < 400; ++t) {
        uint64_t a = rng.next() & lowMask(20);
        uint64_t s = rng.nextBounded(32);
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 20; ++i)
            in[ia[i]] = (a >> i) & 1;
        for (size_t i = 0; i < 5; ++i)
            in[amt[i]] = (s >> i) & 1;
        auto v = evaluate(nl, in);
        uint64_t expect = (s >= 20) ? 0 : ((a << s) & lowMask(20));
        EXPECT_EQ(busValue(v, out), expect);
    }
}

TEST(Builders, LeadingZeroCount)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 53); // non-power-of-two on purpose
    Bus out = b.leadingZeroCount(ia);
    Rng rng(10);
    auto check = [&](uint64_t a) {
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 53; ++i)
            in[ia[i]] = (a >> i) & 1;
        auto v = evaluate(nl, in);
        int expect = tea::clz(a, 53);
        EXPECT_EQ(busValue(v, out), static_cast<uint64_t>(expect))
            << "a=" << a;
    };
    check(0);
    check(1);
    check(1ULL << 52);
    check(lowMask(53));
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & lowMask(53);
        // Mix in values with many leading zeros.
        if (t % 3 == 0)
            a >>= rng.nextBounded(53);
        check(a);
    }
}

TEST(Builders, ArrayMultiplier)
{
    TwoBusHarness h(16, 16);
    Bus prod = h.b.arrayMultiplier(h.ia, h.ib);
    ASSERT_EQ(prod.size(), 32u);
    Rng rng(11);
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & 0xffff;
        uint64_t b = rng.next() & 0xffff;
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, prod), a * b);
    }
}

TEST(Builders, ArrayMultiplierAsymmetric)
{
    TwoBusHarness h(12, 7);
    Bus prod = h.b.arrayMultiplier(h.ia, h.ib);
    ASSERT_EQ(prod.size(), 19u);
    Rng rng(12);
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & lowMask(12);
        uint64_t b = rng.next() & lowMask(7);
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, prod), a * b);
    }
}

TEST(Builders, RestoringDivider)
{
    // Fractional divider contract: num in [den, 2*den), q =
    // floor(num * 2^(qBits-1) / den).
    constexpr unsigned w = 12, qBits = 14;
    TwoBusHarness h(w, w);
    auto div = h.b.restoringDivider(h.ia, h.ib, qBits);
    ASSERT_EQ(div.quotient.size(), qBits);
    Rng rng(13);
    for (int t = 0; t < 300; ++t) {
        uint64_t den = (1ULL << (w - 1)) | (rng.next() & lowMask(w - 1));
        uint64_t num = den + rng.nextBounded(den);
        if (num >= (1ULL << w))
            num = den; // keep within bus width
        auto v = h.eval(num, den);
        unsigned __int128 scaled =
            static_cast<unsigned __int128>(num) << (qBits - 1);
        uint64_t q = static_cast<uint64_t>(scaled / den);
        uint64_t rem = static_cast<uint64_t>(scaled % den);
        EXPECT_EQ(busValue(v, div.quotient), q)
            << "num=" << num << " den=" << den;
        EXPECT_EQ(v[div.sticky], rem != 0);
    }
}

TEST(Builders, ConstBusAndTrees)
{
    Netlist nl("t");
    Builder b(nl);
    Bus in = nl.addInputBus("a", 8);
    Bus k = b.constBus(0xA5, 8);
    NetId at = b.andTree(in);
    NetId ot = b.orTree(in);
    NetId xt = b.xorTree(in);
    Rng rng(14);
    for (int t = 0; t < 200; ++t) {
        uint64_t a = rng.next() & 0xff;
        std::vector<bool> iv(nl.numInputs());
        for (size_t i = 0; i < 8; ++i)
            iv[in[i]] = (a >> i) & 1;
        auto v = evaluate(nl, iv);
        EXPECT_EQ(busValue(v, k), 0xA5u);
        EXPECT_EQ(v[at], a == 0xff);
        EXPECT_EQ(v[ot], a != 0);
        EXPECT_EQ(v[xt], tea::popcount(a) % 2 == 1);
    }
}

TEST(Builders, MuxBusAndMask)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 8);
    Bus ib = nl.addInputBus("b", 8);
    NetId sel = nl.addInput("sel");
    Bus mx = b.mux2Bus(sel, ia, ib);
    Bus mk = b.maskBus(ia, sel);
    Rng rng(15);
    for (int t = 0; t < 200; ++t) {
        uint64_t a = rng.next() & 0xff;
        uint64_t bb = rng.next() & 0xff;
        bool s = rng.next() & 1;
        std::vector<bool> iv(nl.numInputs());
        for (size_t i = 0; i < 8; ++i) {
            iv[ia[i]] = (a >> i) & 1;
            iv[ib[i]] = (bb >> i) & 1;
        }
        iv[sel] = s;
        auto v = evaluate(nl, iv);
        EXPECT_EQ(busValue(v, mx), s ? bb : a);
        EXPECT_EQ(busValue(v, mk), s ? a : 0);
    }
}

TEST(Builders, CarrySelectAddMatchesRipple)
{
    TwoBusHarness h(20, 20);
    auto cs = h.b.carrySelectAdd(h.ia, h.ib, h.b.c0(), 8);
    auto rp = h.b.rippleAdd(h.ia, h.ib);
    Rng rng(31);
    for (int t = 0; t < 400; ++t) {
        uint64_t a = rng.next() & lowMask(20);
        uint64_t b = rng.next() & lowMask(20);
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, cs.sum), busValue(v, rp.sum));
        EXPECT_EQ(v[cs.carry], v[rp.carry]);
    }
}

TEST(Builders, CarrySelectWithCarryIn)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 16);
    Bus ib = nl.addInputBus("b", 16);
    NetId cin = nl.addInput("cin");
    auto cs = b.carrySelectAdd(ia, ib, cin, 5);
    Rng rng(32);
    for (int t = 0; t < 300; ++t) {
        uint64_t a = rng.next() & 0xffff;
        uint64_t bv = rng.next() & 0xffff;
        bool ci = rng.next() & 1;
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 16; ++i) {
            in[ia[i]] = (a >> i) & 1;
            in[ib[i]] = (bv >> i) & 1;
        }
        in[cin] = ci;
        auto v = evaluate(nl, in);
        uint64_t expect = a + bv + ci;
        EXPECT_EQ(busValue(v, cs.sum), expect & 0xffff);
        EXPECT_EQ(v[cs.carry], (expect >> 16) & 1);
    }
}

TEST(Builders, CarrySelectDegeneratesToRipple)
{
    // lowBits >= width must still be correct (pure ripple).
    TwoBusHarness h(8, 8);
    auto cs = h.b.carrySelectAdd(h.ia, h.ib, h.b.c0(), 64);
    Rng rng(33);
    for (int t = 0; t < 200; ++t) {
        uint64_t a = rng.next() & 0xff;
        uint64_t b = rng.next() & 0xff;
        auto v = h.eval(a, b);
        EXPECT_EQ(busValue(v, cs.sum), (a + b) & 0xff);
    }
}

TEST(Builders, FastIncrementerMatchesRipple)
{
    Netlist nl("t");
    Builder b(nl);
    Bus ia = nl.addInputBus("a", 24);
    NetId en = nl.addInput("en");
    Bus fast = b.fastIncrementer(ia, en);
    Bus slow = b.incrementer(ia, en);
    Rng rng(34);
    auto check = [&](uint64_t a, bool e) {
        std::vector<bool> in(nl.numInputs());
        for (size_t i = 0; i < 24; ++i)
            in[ia[i]] = (a >> i) & 1;
        in[en] = e;
        auto v = evaluate(nl, in);
        EXPECT_EQ(busValue(v, fast), busValue(v, slow)) << a;
        EXPECT_EQ(busValue(v, fast), (a + e) & lowMask(24)) << a;
    };
    check(lowMask(24), true); // full wraparound
    check(0, true);
    check(0, false);
    for (int t = 0; t < 300; ++t)
        check(rng.next() & lowMask(24), rng.next() & 1);
}

TEST(Builders, FastIncrementerShallowerThanRipple)
{
    Netlist nlf("f"), nlr("r");
    {
        Builder b(nlf);
        Bus ia = nlf.addInputBus("a", 53);
        NetId en = nlf.addInput("en");
        nlf.addOutputBus("o", b.fastIncrementer(ia, en));
    }
    {
        Builder b(nlr);
        Bus ia = nlr.addInputBus("a", 53);
        NetId en = nlr.addInput("en");
        nlr.addOutputBus("o", b.incrementer(ia, en));
    }
    auto lib = CellLibrary::nangate45Like();
    auto staf = staAnalyze(nlf, DelayAnnotation(nlf, lib, 1));
    auto star = staAnalyze(nlr, DelayAnnotation(nlr, lib, 1));
    EXPECT_LT(staf.criticalPathPs(), 0.5 * star.criticalPathPs());
}
