/**
 * @file
 * The parallel-campaign contract: ThreadPool semantics, and
 * bit-identical DTA / injection campaign results at 1, 2, and 4
 * threads (the determinism guarantee REPRO_THREADS documents).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "circuit/celllib.hh"
#include "inject/campaign.hh"
#include "timing/dta_campaign.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::timing;
using fpu::FpuOp;

namespace {

fpu::FpuCore &
core()
{
    static fpu::FpuCore c;
    return c;
}

size_t
vr20Point()
{
    static size_t p = core().addOperatingPoint(
        circuit::VoltageModel{}.delayFactorAtReduction(circuit::kVR20));
    return p;
}

void
expectSameStats(const CampaignStats &a, const CampaignStats &b)
{
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &sa = a.perOp[o];
        const auto &sb = b.perOp[o];
        EXPECT_EQ(sa.total, sb.total) << fpu::fpuOpName(
            static_cast<FpuOp>(o));
        EXPECT_EQ(sa.faulty, sb.faulty) << fpu::fpuOpName(
            static_cast<FpuOp>(o));
        for (unsigned bit = 0; bit < 64; ++bit)
            EXPECT_EQ(sa.bitErrors[bit], sb.bitErrors[bit]);
        // Exact mask sequences, not just counts: merge order must be
        // shard order, independent of scheduling.
        EXPECT_EQ(sa.maskPool, sb.maskPool);
    }
}

timing::CampaignStats
aggressiveStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100;
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    auto &div = stats.of(FpuOp::DivD);
    div.total = 1000;
    div.faulty = 50;
    div.maskPool = {0x7ff8000000000000ULL, 0x3ff0000000000000ULL};
    return stats;
}

} // namespace

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.numThreads(), threads);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(0, hits.size(), [&](uint64_t i, unsigned w) {
            EXPECT_LT(w, threads);
            hits[i].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeAndReuse)
{
    ThreadPool pool(4);
    int ran = 0;
    pool.parallelFor(5, 5, [&](uint64_t, unsigned) { ++ran; });
    EXPECT_EQ(ran, 0);
    // The same pool serves many loops back to back.
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(0, 10,
                         [&](uint64_t i, unsigned) { sum += i; });
    EXPECT_EQ(sum.load(), 50u * 45u);
}

TEST(ThreadPool, ParallelMapCollectsInOrder)
{
    ThreadPool pool(3);
    auto out = pool.parallelMap<uint64_t>(
        64, [](uint64_t i, unsigned) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(0, 8,
                         [](uint64_t i, unsigned) {
                             if (i == 3)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ParallelDeterminism, RandomDtaCampaignThreadCountInvariant)
{
    std::vector<CampaignStats> results;
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        Rng rng(99);
        results.push_back(runRandomCampaign(core(), vr20Point(), 300,
                                            rng, &pool));
    }
    EXPECT_GT(results[0].totalOps(), 0u);
    EXPECT_EQ(results[0].totalOps(), 300u * fpu::kNumFpuOps);
    expectSameStats(results[0], results[1]);
    expectSameStats(results[0], results[2]);
}

TEST(ParallelDeterminism, TraceDtaCampaignThreadCountInvariant)
{
    // A trace long enough for several windows, with faulting op types.
    std::vector<sim::FpTraceEntry> trace;
    Rng gen(5);
    for (int i = 0; i < 4000; ++i) {
        uint64_t a, b;
        FpuOp op = (i % 2) ? FpuOp::MulD : FpuOp::DivD;
        randomOperands(op, gen, a, b);
        trace.push_back({op, a, b});
    }
    std::vector<CampaignStats> results;
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        results.push_back(runTraceCampaign(core(), vr20Point(), trace,
                                           1500, &pool));
    }
    EXPECT_GT(results[0].totalOps(), 1400u);
    EXPECT_LE(results[0].totalOps(), 1500u);
    EXPECT_GT(results[0].totalFaulty(), 0u);
    expectSameStats(results[0], results[1]);
    expectSameStats(results[0], results[2]);
}

TEST(ParallelDeterminism, InjectionCampaignThreadCountInvariant)
{
    inject::InjectionCampaign campaign(
        workloads::buildWorkload("sobel", 1));
    models::WaModel model("hot", aggressiveStats());

    std::vector<inject::CampaignResult> results;
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        Rng rng(7);
        results.push_back(campaign.run(model, 6, rng, &pool));
    }
    EXPECT_EQ(results[0].runs, 6u);
    EXPECT_GT(results[0].injectedErrors, 0u);
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0].masked, results[i].masked);
        EXPECT_EQ(results[0].sdc, results[i].sdc);
        EXPECT_EQ(results[0].crash, results[i].crash);
        EXPECT_EQ(results[0].timeout, results[i].timeout);
        EXPECT_EQ(results[0].injectedErrors, results[i].injectedErrors);
        EXPECT_EQ(results[0].committedInstructions,
                  results[i].committedInstructions);
        EXPECT_EQ(results[0].wrongPathInjections,
                  results[i].wrongPathInjections);
    }
}
