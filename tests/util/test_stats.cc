#include <gtest/gtest.h>

#include "util/stats.hh"

using tea::CategoryCounter;
using tea::Histogram;
using tea::StreamingStats;

TEST(StreamingStats, EmptyIsZero)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MeanAndVariance)
{
    StreamingStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesCombined)
{
    StreamingStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.37 - 3;
        a.sample(x);
        all.sample(x);
    }
    for (int i = 0; i < 31; ++i) {
        double x = i * -1.1 + 8;
        b.sample(x);
        all.sample(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty)
{
    StreamingStats a, b;
    a.sample(1.0);
    a.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BucketBoundaries)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.0);
    h.sample(9.9999);
    h.sample(5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-0.5);
    h.sample(1.0); // hi is exclusive
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(0.0, 4.0, 4);
    h.sample(1.5, 10);
    EXPECT_EQ(h.bucketCount(1), 10u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 1.0);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.sample(0.5);
    h.sample(1.5);
    std::string out = h.render("test");
    EXPECT_NE(out.find("test"), std::string::npos);
    EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(CategoryCounter, FractionsSumToOne)
{
    CategoryCounter c;
    c.add("SDC", 3);
    c.add("Masked", 5);
    c.add("Crash", 2);
    EXPECT_EQ(c.total(), 10u);
    EXPECT_DOUBLE_EQ(c.fraction("SDC"), 0.3);
    EXPECT_DOUBLE_EQ(c.fraction("Masked"), 0.5);
    EXPECT_DOUBLE_EQ(c.fraction("Timeout"), 0.0);
}

TEST(CategoryCounter, EmptyFractionIsZero)
{
    CategoryCounter c;
    EXPECT_DOUBLE_EQ(c.fraction("anything"), 0.0);
}
