#include <gtest/gtest.h>

#include "util/bitops.hh"

using namespace tea;

TEST(Bitops, BitsExtraction)
{
    EXPECT_EQ(bits(0xdeadbeefULL, 0, 8), 0xefULL);
    EXPECT_EQ(bits(0xdeadbeefULL, 8, 8), 0xbeULL);
    EXPECT_EQ(bits(0xdeadbeefULL, 16, 16), 0xdeadULL);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
    EXPECT_EQ(bits(~0ULL, 1, 63), (~0ULL) >> 1);
}

TEST(Bitops, SingleBit)
{
    EXPECT_TRUE(bit(0x8000000000000000ULL, 63));
    EXPECT_FALSE(bit(0x8000000000000000ULL, 62));
    EXPECT_TRUE(bit(1, 0));
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 4, 4, 0xf), 0xf0ULL);
    EXPECT_EQ(insertBits(0xffULL, 0, 4, 0), 0xf0ULL);
    EXPECT_EQ(insertBits(0x1234ULL, 4, 8, 0xab), 0x1ab4ULL);
}

TEST(Bitops, LowMask)
{
    EXPECT_EQ(lowMask(0), 0ULL);
    EXPECT_EQ(lowMask(1), 1ULL);
    EXPECT_EQ(lowMask(8), 0xffULL);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xfff, 12), -1);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(5, 32), 5);
}

TEST(Bitops, Clz)
{
    EXPECT_EQ(clz(0, 64), 64);
    EXPECT_EQ(clz(1, 64), 63);
    EXPECT_EQ(clz(0x8000000000000000ULL, 64), 0);
    EXPECT_EQ(clz(0, 32), 32);
    EXPECT_EQ(clz(1, 32), 31);
    EXPECT_EQ(clz(0x80000000ULL, 32), 0);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 63));
}
