#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

using tea::Rng;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sum2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(17);
    Rng child = parent.split();
    // Child continues to produce values uncorrelated with parent.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndPure)
{
    Rng parent(21);
    Rng untouched(21);
    Rng a = parent.fork(3);
    Rng b = parent.fork(3);
    // Same parent state + same stream id => identical substream.
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
    // fork() is const: the parent stream is exactly as if it had
    // never forked.
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(parent.next(), untouched.next());
}

TEST(Rng, ForkDependsOnParentState)
{
    Rng p1(21), p2(21);
    p2.next(); // advance one draw
    Rng a = p1.fork(0);
    Rng b = p2.fork(0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkSubstreamsIndependent)
{
    // Adjacent stream ids must give uncorrelated streams, and none of
    // them may collide with the parent's own output stream.
    Rng parent(33);
    Rng f0 = parent.fork(0);
    Rng f1 = parent.fork(1);
    int same01 = 0, sameParent = 0;
    for (int i = 0; i < 200; ++i) {
        uint64_t v0 = f0.next(), v1 = f1.next();
        if (v0 == v1)
            ++same01;
        if (v0 == parent.next())
            ++sameParent;
    }
    EXPECT_LT(same01, 2);
    EXPECT_LT(sameParent, 2);
}

TEST(Rng, ForkStatisticalQuality)
{
    // First draw of many substreams, as parallel shards consume them:
    // every output bit should be set roughly half the time, and the
    // normalized mean should sit near 1/2 — i.e. the stream-id hash
    // does not leave low-entropy structure across substreams.
    Rng parent(55);
    const int n = 4096;
    int bitCount[64] = {};
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        Rng sub = parent.fork(static_cast<uint64_t>(i));
        uint64_t v = sub.next();
        for (int bit = 0; bit < 64; ++bit)
            bitCount[bit] += (v >> bit) & 1;
        sum += sub.nextDouble();
    }
    for (int bit = 0; bit < 64; ++bit) {
        EXPECT_GT(bitCount[bit], n * 42 / 100) << "bit " << bit;
        EXPECT_LT(bitCount[bit], n * 58 / 100) << "bit " << bit;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}
