#include <gtest/gtest.h>

#include "util/table.hh"

using tea::Table;

TEST(Table, RenderAligned)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string out = t.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Every data line has the same width.
    size_t firstLine = out.find('+');
    size_t eol = out.find('\n', firstLine);
    std::string rule = out.substr(firstLine, eol - firstLine);
    EXPECT_GT(rule.size(), 10u);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::sci(0.00125, 2), "1.25e-03");
    EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(Table, NumRows)
{
    Table t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    EXPECT_EQ(t.numRows(), 1u);
}
