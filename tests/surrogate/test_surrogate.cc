/**
 * @file
 * The importance-sampling contract: operand features are deterministic
 * and bounded, logistic training is bit-reproducible, the surrogate
 * calibrates on a held-out DTA slice where timing errors actually
 * occur, the cache round-trips bit-exactly and rejects damage, and the
 * ImportanceModel proposal is unbiased (unit-boost keeps the target
 * measure term-by-term, tilted weights average to 1) with campaign
 * weight sums bit-identical at any thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "inject/campaign.hh"
#include "sim/func_sim.hh"
#include "surrogate/importance.hh"
#include "surrogate/surrogate.hh"
#include "util/fsatomic.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace tea;
using namespace tea::surrogate;
using fpu::FpuOp;

// ---- features ------------------------------------------------------

TEST(Features, DeterministicAndBounded)
{
    Rng rng(42);
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        for (int i = 0; i < 200; ++i) {
            uint64_t a = rng.next(), b = rng.next();
            auto op = static_cast<FpuOp>(o);
            FeatureVec x = featurize(op, a, b, 0.15);
            FeatureVec y = featurize(op, a, b, 0.15);
            EXPECT_EQ(0, std::memcmp(x.data(), y.data(), sizeof(x)));
            EXPECT_DOUBLE_EQ(x[0], 1.0); // bias
            for (unsigned f = 0; f < kNumFeatures; ++f) {
                EXPECT_TRUE(std::isfinite(x[f])) << featureName(f);
                EXPECT_GE(x[f], 0.0) << featureName(f);
                EXPECT_LE(x[f], 1.0) << featureName(f);
            }
        }
    }
}

TEST(Features, SingleOperandOpsIgnoreB)
{
    for (FpuOp op : {FpuOp::I2FD, FpuOp::F2ID, FpuOp::I2FS,
                     FpuOp::F2IS}) {
        FeatureVec x = featurize(op, 12345, 0, 0.2);
        FeatureVec y = featurize(op, 12345, 0xdeadbeefULL, 0.2);
        EXPECT_EQ(0, std::memcmp(x.data(), y.data(), sizeof(x)));
    }
    // ...while two-operand ops do depend on b.
    FeatureVec x = featurize(FpuOp::AddD, 12345, 0, 0.2);
    FeatureVec y = featurize(FpuOp::AddD, 12345, 0xdeadbeefULL, 0.2);
    EXPECT_NE(0, std::memcmp(x.data(), y.data(), sizeof(x)));
}

TEST(Features, VrLevelIsAFeature)
{
    FeatureVec lo = featurize(FpuOp::MulD, 99, 77, 0.15);
    FeatureVec hi = featurize(FpuOp::MulD, 99, 77, 0.20);
    EXPECT_NE(0, std::memcmp(lo.data(), hi.data(), sizeof(lo)));
}

TEST(Features, NamesCoverEveryIndex)
{
    for (unsigned f = 0; f < kNumFeatures; ++f) {
        ASSERT_NE(featureName(f), nullptr);
        EXPECT_GT(std::strlen(featureName(f)), 0u);
    }
}

// ---- logistic regression -------------------------------------------

namespace {

/** Linearly separable toy corpus: label = (x1 > 0.5). */
std::vector<Sample>
separableCorpus(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<Sample> out;
    for (size_t i = 0; i < n; ++i) {
        Sample s;
        s.x.fill(0.0);
        s.x[0] = 1.0;
        s.x[1] = rng.nextDouble();
        s.x[2] = rng.nextDouble();
        s.label = s.x[1] > 0.5;
        out.push_back(s);
    }
    return out;
}

} // namespace

TEST(Logistic, LearnsSeparableData)
{
    auto corpus = separableCorpus(7, 400);
    LogisticModel m;
    m.train(corpus);
    EXPECT_GT(modelAuc(m, corpus), 0.95);
    FeatureVec lo{}, hi{};
    lo[0] = hi[0] = 1.0;
    lo[1] = 0.1;
    hi[1] = 0.9;
    EXPECT_LT(m.predict(lo), m.predict(hi));
    EXPECT_GT(m.predict(lo), 0.0);
    EXPECT_LT(m.predict(hi), 1.0);
}

TEST(Logistic, TrainingIsBitReproducible)
{
    auto corpus = separableCorpus(9, 300);
    LogisticModel a, b;
    a.train(corpus);
    b.train(corpus);
    EXPECT_EQ(0, std::memcmp(a.weights().data(), b.weights().data(),
                             sizeof(FeatureVec)));
}

TEST(Logistic, AucOfOneClassIsUninformative)
{
    LogisticModel m;
    std::vector<Sample> allNeg(10);
    EXPECT_DOUBLE_EQ(modelAuc(m, allNeg), 0.5);
    EXPECT_DOUBLE_EQ(modelAuc(m, {}), 0.5);
}

// ---- surrogate calibration + cache ---------------------------------

namespace {

/**
 * Train a small surrogate at an aggressive delay scale (1.4x) where
 * the random corpus contains both classes — at the paper's VR15/VR20
 * points timing errors are too rare for a random corpus to rank.
 */
ErrorSurrogate &
aggressiveSurrogate()
{
    static ErrorSurrogate s = [] {
        fpu::FpuCore core;
        size_t pt = core.addOperatingPoint(1.4);
        ErrorSurrogate sur;
        CorpusConfig cfg;
        cfg.seed = 1;
        cfg.opsPerOpPerVr = 800;
        sur.train(core, {{0.30, pt}}, cfg);
        return sur;
    }();
    return s;
}

} // namespace

TEST(Surrogate, CalibratesOnHeldOutSlice)
{
    // The calibration gate of the PR: held-out (odd-indexed) corpus
    // ops must rank well above chance. The corpus RNG is fixed, so
    // this AUC is one deterministic number (~0.88), not a flaky
    // statistic; 0.75 leaves margin for feature/training tweaks.
    auto &s = aggressiveSurrogate();
    EXPECT_TRUE(s.trained());
    EXPECT_GE(s.heldOutAuc(), 0.75);
    EXPECT_LE(s.heldOutAuc(), 1.0);
    EXPECT_EQ(s.corpusOps(), 800u * fpu::kNumFpuOps);
}

TEST(Surrogate, ScoresVaryAcrossOperands)
{
    auto &s = aggressiveSurrogate();
    Rng rng(3);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 200; ++i) {
        double r = s.score(FpuOp::DivD, rng.next(), rng.next(), 0.30);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
        EXPECT_GT(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
    EXPECT_GT(hi - lo, 0.05); // the model actually discriminates
}

TEST(Surrogate, CacheRoundTripsBitExactly)
{
    auto &s = aggressiveSurrogate();
    std::string path = "/tmp/tea_test_surrogate_cache.sg";
    std::string id = "surrogate s1 n800 vdeadbeef";
    ASSERT_TRUE(s.save(path, id));

    ErrorSurrogate loaded;
    ASSERT_TRUE(loaded.load(path, id));
    EXPECT_TRUE(loaded.trained());
    EXPECT_EQ(0, std::memcmp(s.model().weights().data(),
                             loaded.model().weights().data(),
                             sizeof(FeatureVec)));
    double a = s.heldOutAuc(), b = loaded.heldOutAuc();
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(double)));
    EXPECT_EQ(s.corpusOps(), loaded.corpusOps());
}

TEST(Surrogate, CacheRejectsWrongIdentityAndDamage)
{
    auto &s = aggressiveSurrogate();
    std::string path = "/tmp/tea_test_surrogate_reject.sg";
    ASSERT_TRUE(s.save(path, "identity-A"));

    ErrorSurrogate other;
    EXPECT_FALSE(other.load(path, "identity-B"));
    EXPECT_FALSE(other.trained());
    EXPECT_FALSE(other.load("/tmp/tea_no_such_surrogate.sg",
                            "identity-A"));

    // Flip one byte in the body: the CRC seal must catch it.
    auto content = readFileToString(path);
    ASSERT_TRUE(content.has_value());
    std::string damaged = *content;
    damaged[damaged.size() / 2] ^= 0x01;
    ASSERT_TRUE(atomicWriteFile(path, damaged));
    EXPECT_FALSE(other.load(path, "identity-A"));
}

// ---- importance proposal -------------------------------------------

namespace {

timing::CampaignStats
mulOnlyStats(uint64_t total, uint64_t faulty)
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = total;
    mul.faulty = faulty;
    mul.maskPool = {0x00000000000000ffULL};
    return stats;
}

std::vector<sim::FpTraceEntry>
mulTrace(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<sim::FpTraceEntry> tr;
    for (size_t i = 0; i < n; ++i)
        tr.push_back({FpuOp::MulD, rng.next(), rng.next()});
    return tr;
}

models::ProgramProfile
mulProfile(uint64_t n)
{
    models::ProgramProfile p;
    p.totalInstructions = 10 * n;
    p.instructionsWithDest = 5 * n;
    p.fpOpCounts[static_cast<size_t>(FpuOp::MulD)] = n;
    return p;
}

} // namespace

TEST(Importance, UnitBoostKeepsTargetMeasureExactly)
{
    // boost=1 with a uniform (untrained) surrogate gives q_i == p for
    // every site, so every log term is log(1) == 0.0 — the plan's
    // weight is bit-identical to 1, not merely close.
    models::WaModel base("t", mulOnlyStats(1000, 100)); // p = 0.1
    ErrorSurrogate untrained;
    auto trace = mulTrace(16, 11);
    ImportanceModel is(base, untrained, trace, 0.15, 1.0, 1.0);

    const auto &q = is.proposal(FpuOp::MulD);
    ASSERT_EQ(q.size(), 16u);
    for (double qi : q)
        EXPECT_DOUBLE_EQ(qi, 0.1);

    auto profile = mulProfile(16);
    Rng rng(5);
    for (int draw = 0; draw < 200; ++draw) {
        double lw = 1e9;
        auto events = is.planWeighted(profile, rng, lw);
        EXPECT_EQ(lw, 0.0);
        for (const auto &ev : events) {
            EXPECT_EQ(ev.op, FpuOp::MulD);
            EXPECT_LT(ev.index, 16u);
            EXPECT_EQ(ev.mask, 0x00000000000000ffULL);
        }
    }
}

TEST(Importance, TiltedWeightsAverageToOne)
{
    // The unbiasedness property E_q[w] = 1: a uniform 2x tilt over 16
    // sites has small enough weight variance that the empirical mean
    // over 20000 plans pins the expectation.
    models::WaModel base("t", mulOnlyStats(1000, 100)); // p = 0.1
    ErrorSurrogate untrained;
    auto trace = mulTrace(16, 13);
    ImportanceModel is(base, untrained, trace, 0.15, 2.0, 0.25,
                       1e9);

    const auto &q = is.proposal(FpuOp::MulD);
    for (double qi : q)
        EXPECT_DOUBLE_EQ(qi, 0.2); // uniform risk => q = boost * p

    auto profile = mulProfile(16);
    Rng rng(17);
    double sum = 0.0;
    const int draws = 20000;
    for (int draw = 0; draw < draws; ++draw) {
        double lw = 0.0;
        auto events = is.planWeighted(profile, rng, lw);
        double w = inject::likelihoodWeight(lw);
        EXPECT_TRUE(std::isfinite(w));
        EXPECT_GT(w, 0.0);
        // More expected injections than the target measure's n*p.
        (void)events;
        sum += w;
    }
    EXPECT_NEAR(sum / draws, 1.0, 0.06);
}

TEST(Importance, TiltRaisesInjectionRate)
{
    models::WaModel base("t", mulOnlyStats(1000, 100));
    ErrorSurrogate untrained;
    auto trace = mulTrace(64, 19);
    ImportanceModel is(base, untrained, trace, 0.15, 4.0, 0.25,
                       1e9);
    auto profile = mulProfile(64);
    Rng rng(23);
    uint64_t injected = 0;
    for (int draw = 0; draw < 500; ++draw) {
        double lw = 0.0;
        injected += is.planWeighted(profile, rng, lw).size();
    }
    // q = 0.4 vs p = 0.1: ~4x the target measure's injection count.
    double perPlan = static_cast<double>(injected) / 500.0;
    EXPECT_GT(perPlan, 0.3 * 64);
    EXPECT_LT(perPlan, 0.5 * 64);
}

TEST(Importance, SaturatedOpStaysOnTargetMeasure)
{
    // The rare-regime guard: 64 sites at p = 0.1 already expect 6.4
    // injections per run — far above kDefaultMaxTilted — so under the
    // default cap the effective boost collapses to <= 1 and the op is
    // left exactly on the target measure (q == p, weight == 1). IS
    // must never make a saturated cell worse than plain Monte Carlo.
    models::WaModel base("t", mulOnlyStats(1000, 100)); // p = 0.1
    ErrorSurrogate untrained;
    auto trace = mulTrace(64, 47);
    ImportanceModel is(base, untrained, trace, 0.15, 4.0, 0.25);

    const auto &q = is.proposal(FpuOp::MulD);
    ASSERT_EQ(q.size(), 64u);
    for (double qi : q)
        EXPECT_DOUBLE_EQ(qi, 0.1);

    auto profile = mulProfile(64);
    Rng rng(53);
    for (int draw = 0; draw < 100; ++draw) {
        double lw = 1e9;
        is.planWeighted(profile, rng, lw);
        EXPECT_EQ(lw, 0.0);
    }
}

TEST(Importance, FallsBackToTargetPlanOnTraceMismatch)
{
    // An 8-site trace cannot cover a 16-site profile: the proposal
    // must sample the target measure itself (same plan the wrapped
    // model draws from the same substream) with weight exactly 1.
    auto stats = mulOnlyStats(1000, 100);
    models::WaModel base("t", stats);
    ErrorSurrogate untrained;
    auto trace = mulTrace(8, 29);
    ImportanceModel is(base, untrained, trace, 0.15, 4.0, 0.25);

    auto profile = mulProfile(16);
    Rng r1(31), r2(31);
    double lw = 1e9;
    auto got = is.planWeighted(profile, r1, lw);
    auto want = base.plan(profile, r2);
    EXPECT_EQ(lw, 0.0);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].op, want[i].op);
        EXPECT_EQ(got[i].index, want[i].index);
        EXPECT_EQ(got[i].mask, want[i].mask);
    }
}

TEST(Importance, DescribeNamesTheProposal)
{
    models::WaModel base("t", mulOnlyStats(1000, 100));
    ErrorSurrogate untrained;
    auto trace = mulTrace(4, 37);
    ImportanceModel is(base, untrained, trace, 0.15);
    EXPECT_NE(is.describe().find("+is("), std::string::npos);
    EXPECT_TRUE(is.weightedProposal());
    EXPECT_FALSE(base.weightedProposal());
}

// ---- weighted campaigns end to end ---------------------------------

namespace {

inject::InjectionCampaign &
campaign()
{
    static inject::InjectionCampaign c(
        workloads::buildWorkload("sobel", 1));
    return c;
}

const std::vector<sim::FpTraceEntry> &
sobelTrace()
{
    static std::vector<sim::FpTraceEntry> tr = [] {
        auto w = workloads::buildWorkload("sobel", 1);
        sim::FuncSim fs(w.program);
        std::vector<sim::FpTraceEntry> out;
        fs.setFpTrace(&out);
        EXPECT_EQ(fs.run().status, sim::FuncSim::Status::Halted);
        return out;
    }();
    return tr;
}

timing::CampaignStats
aggressiveStats()
{
    timing::CampaignStats stats;
    auto &mul = stats.of(FpuOp::MulD);
    mul.total = 1000;
    mul.faulty = 100;
    mul.maskPool = {0x7ff0000000000000ULL, 0x000fffff00000000ULL,
                    0x4010000000000000ULL};
    auto &div = stats.of(FpuOp::DivD);
    div.total = 1000;
    div.faulty = 50;
    div.maskPool = {0x7ff8000000000000ULL, 0x3ff0000000000000ULL};
    return stats;
}

} // namespace

TEST(WeightedCampaign, TraceCoversTheSobelProfile)
{
    // The production wiring depends on the FuncSim operand trace
    // counting exactly the profile's dynamic FP ops — otherwise the
    // importance model silently degrades to the untilted plan.
    const auto &tr = sobelTrace();
    std::array<uint64_t, fpu::kNumFpuOps> cnt{};
    for (const auto &e : tr)
        cnt[static_cast<size_t>(e.op)]++;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o)
        EXPECT_EQ(cnt[o], campaign().profile().fpOpCounts[o])
            << fpu::fpuOpName(static_cast<FpuOp>(o));
}

TEST(WeightedCampaign, UnitProposalCoincidesWithPlainEstimate)
{
    models::WaModel base("hot", aggressiveStats());
    ErrorSurrogate untrained;
    ImportanceModel is(base, untrained, sobelTrace(), 0.15, 1.0, 1.0);
    Rng rng(41);
    auto r = campaign().run(is, 12, rng);
    EXPECT_TRUE(r.weightedModel);
    ASSERT_GT(r.classified(), 0u);
    // Every weight is exactly 1, so the weighted estimator collapses
    // onto the plain one bit for bit.
    EXPECT_DOUBLE_EQ(r.weightSum,
                     static_cast<double>(r.classified()));
    EXPECT_DOUBLE_EQ(r.weightSqSum,
                     static_cast<double>(r.classified()));
    EXPECT_DOUBLE_EQ(r.avmWeighted(), r.avm());
    EXPECT_DOUBLE_EQ(r.ess(), static_cast<double>(r.classified()));
}

TEST(WeightedCampaign, WeightSumsAreThreadInvariant)
{
    models::WaModel base("hot", aggressiveStats());
    ErrorSurrogate untrained;
    ImportanceModel is(base, untrained, sobelTrace(), 0.15, 2.0, 0.25,
                       1e9);

    auto runWith = [&](unsigned threads) {
        ThreadPool pool(threads);
        inject::InjectionCampaign::RunOptions opts;
        opts.pool = &pool;
        Rng rng(43);
        return campaign().run(is, 16, rng, opts);
    };
    auto r1 = runWith(1);
    auto r4 = runWith(4);

    EXPECT_TRUE(r1.weightedModel);
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.masked, r4.masked);
    EXPECT_EQ(r1.sdc, r4.sdc);
    EXPECT_EQ(r1.crash, r4.crash);
    EXPECT_EQ(r1.timeout, r4.timeout);
    EXPECT_EQ(r1.engineFault, r4.engineFault);
    EXPECT_EQ(r1.injectedErrors, r4.injectedErrors);
    // The weight sums are doubles: identity must hold at the bit
    // level, not within a tolerance.
    EXPECT_EQ(0, std::memcmp(&r1.weightSum, &r4.weightSum,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&r1.weightUnsafe, &r4.weightUnsafe,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&r1.weightSqSum, &r4.weightSqSum,
                             sizeof(double)));
    // And the tilt is real: a 2x-boosted proposal cannot have every
    // weight equal to 1.
    EXPECT_NE(r1.weightSum, static_cast<double>(r1.classified()));
}
