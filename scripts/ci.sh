#!/bin/sh
# The tier-1 gate, run twice:
#
#   1. an ASan+UBSan build (catches the memory and UB bugs a fleet of
#      forking workers is good at hiding), and
#   2. the regular build with REPRO_SIMD=portable, proving the scalar
#      kernels produce the same bit-identical results the SIMD paths
#      are tested against.
#
# Both passes run the full suite; either failing fails CI.
#
# Usage: scripts/ci.sh [jobs]
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 4)}
fail=0

run_pass() {
    name=$1
    build=$2
    shift 2
    echo "=== ci: configure $name ($build) ==="
    cmake -B "$build" -S "$root" "$@" || return 1
    echo "=== ci: build $name ==="
    cmake --build "$build" -j "$jobs" || return 1
    echo "=== ci: test $name ==="
    (cd "$build" && ctest --output-on-failure -j "$jobs") || return 1
}

# Pass 1: sanitizers. ASan needs the leak checker off for the chaos
# tests (SIGKILLed workers exit without unwinding, by design).
if ! ASAN_OPTIONS="detect_leaks=0" run_pass "asan+ubsan" \
        "$root/build-san" -DTEA_SANITIZE="address,undefined"; then
    echo "ci: sanitizer pass FAILED"
    fail=1
fi

# Pass 2: portable SIMD on the regular build — results must not
# depend on the ISA level the kernels were dispatched to.
if ! REPRO_SIMD=portable run_pass "portable-simd" "$root/build"; then
    echo "ci: portable-SIMD pass FAILED"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "ci: FAILED"
    exit 1
fi

# Surrogate calibration gate, called out by name so a regression in
# the importance-sampling stack is visible as its own CI line (the
# tier1is-labeled tests also ran inside both full passes above).
echo "=== ci: surrogate calibration gate (ctest -L tier1is) ==="
if ! (cd "$root/build" && ctest -L tier1is --output-on-failure); then
    echo "ci: surrogate calibration gate FAILED"
    exit 1
fi
# Multi-core determinism gate, likewise named: the N-core interleaving
# and journal byte-identity claims of DESIGN.md §15 run under both the
# sanitizer build and the regular build (tier1mc also ran inside both
# full passes above — this line just makes a regression unmissable).
echo "=== ci: multi-core determinism gate (ctest -L tier1mc) ==="
if ! (cd "$root/build-san" && \
      ASAN_OPTIONS="detect_leaks=0" ctest -L tier1mc --output-on-failure) \
   || ! (cd "$root/build" && ctest -L tier1mc --output-on-failure); then
    echo "ci: multi-core determinism gate FAILED"
    exit 1
fi
echo "ci: OK (sanitizer + portable-SIMD + IS calibration + multi-core green)"
