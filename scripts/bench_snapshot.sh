#!/bin/sh
# Record the performance baseline: run the microbench backend sweep
# (and the adaptive-sizing sweep) single-threaded and write the
# machine-readable results to BENCH_dta.json at the repo root, then
# run the fleet worker-count scaling ladder (1/2/4/8 workers) into
# BENCH_fleet.json, the campaign-service daemon ladder into
# BENCH_daemon.json, the importance-sampling convergence ladder into
# BENCH_is.json, and the multi-core outcome-refinement ladder into
# BENCH_mc.json. Commit the refreshed files so the perf trajectory is
# tracked PR over PR.
#
# Usage: scripts/bench_snapshot.sh [build-dir] [output.json] [fleet.json]
#        [daemon.json] [is.json] [mc.json]
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$root/build"}
out=${2:-"$root/BENCH_dta.json"}
fleetOut=${3:-"$root/BENCH_fleet.json"}
daemonOut=${4:-"$root/BENCH_daemon.json"}
isOut=${5:-"$root/BENCH_is.json"}
mcOut=${6:-"$root/BENCH_mc.json"}

bin="$build/bench/microbench"
if [ ! -x "$bin" ]; then
    echo "bench_snapshot: $bin not built (cmake --build $build)" >&2
    exit 2
fi

# Single thread: the sweep's speedup targets are single-thread
# numbers, and one worker keeps the machine noise down.
REPRO_THREADS=1 "$bin" --backend-sweep --adaptive-sweep --json "$out"
rc=$?
[ $rc -eq 0 ] && echo "bench_snapshot: wrote $out"

# Fleet scaling ladder: process-level parallelism, so no REPRO_THREADS
# pin here — the binary forces one thread per worker itself.
fleetBin="$build/bench/fleet_scaling"
if [ ! -x "$fleetBin" ]; then
    echo "bench_snapshot: $fleetBin not built; skipping BENCH_fleet.json" >&2
    exit $rc
fi
"$fleetBin" --json "$fleetOut"
frc=$?
[ $frc -eq 0 ] && echo "bench_snapshot: wrote $fleetOut"

# Campaign-service ladder: an in-process daemon over a real socket.
daemonBin="$build/bench/daemon_throughput"
if [ ! -x "$daemonBin" ]; then
    echo "bench_snapshot: $daemonBin not built; skipping BENCH_daemon.json" >&2
    [ $rc -eq 0 ] || exit $rc
    exit $frc
fi
"$daemonBin" --json "$daemonOut"
drc=$?
[ $drc -eq 0 ] && echo "bench_snapshot: wrote $daemonOut"

# Importance-sampling ladder: rare-regime plain-vs-IS convergence and
# the estimator-agreement gate (exit non-zero if the arms diverge).
isBin="$build/bench/is_convergence"
if [ ! -x "$isBin" ]; then
    echo "bench_snapshot: $isBin not built; skipping BENCH_is.json" >&2
    [ $rc -eq 0 ] || exit $rc
    [ $frc -eq 0 ] || exit $frc
    exit $drc
fi
"$isBin" --json "$isOut"
irc=$?
[ $irc -eq 0 ] && echo "bench_snapshot: wrote $isOut"

# Multi-core ladder: threaded workloads at 2/4 cores; gates on
# cross-core SDC propagation being observed (exit non-zero if the
# taint channel records nothing).
mcBin="$build/bench/mc_scaling"
if [ ! -x "$mcBin" ]; then
    echo "bench_snapshot: $mcBin not built; skipping BENCH_mc.json" >&2
    [ $rc -eq 0 ] || exit $rc
    [ $frc -eq 0 ] || exit $frc
    [ $drc -eq 0 ] || exit $drc
    exit $irc
fi
REPRO_THREADS=1 "$mcBin" --json "$mcOut"
mrc=$?
[ $mrc -eq 0 ] && echo "bench_snapshot: wrote $mcOut"
[ $rc -eq 0 ] || exit $rc
[ $frc -eq 0 ] || exit $frc
[ $drc -eq 0 ] || exit $drc
[ $irc -eq 0 ] || exit $irc
exit $mrc
