#!/bin/sh
# Docs-drift check (wired into ctest as check_docs): every REPRO_*
# environment variable referenced anywhere in src/bench/examples and
# every metric family registered in src/obs/obs.hh must be documented
# in BOTH README.md and docs/OBSERVABILITY.md. Adding a knob or a
# metric without documenting it fails the test suite.
#
# Usage: scripts/check_docs.sh [repo-root]
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0

# ---- REPRO_* environment variables ---------------------------------
# README's "Environment variables" table is the canonical reference.
vars=$(grep -rhoE 'REPRO_[A-Z_]+' src bench examples | sort -u)
[ -n "$vars" ] || { echo "check_docs: found no REPRO_ variables — wrong root?"; exit 2; }
for v in $vars; do
    if ! grep -q "$v" README.md; then
        echo "check_docs: $v is used in the code but missing from README.md"
        fail=1
    fi
done

# ... and the reverse: a documented variable that no code reads is a
# stale row (e.g. a renamed adaptive-campaign knob).
docVars=$(grep -hoE 'REPRO_[A-Z_]+' README.md | sort -u)
for v in $docVars; do
    if ! echo "$vars" | grep -q "^$v$"; then
        echo "check_docs: $v is documented in README.md but unused in the code"
        fail=1
    fi
done

# ---- metric families registered in the catalog ---------------------
# docs/OBSERVABILITY.md's catalog table must name every family.
metrics=$(grep -rhoE '"tea_[a-z0-9_]+"' src/obs/obs.hh | tr -d '"' | sort -u)
[ -n "$metrics" ] || { echo "check_docs: found no metric names in src/obs/obs.hh"; exit 2; }
for m in $metrics; do
    if ! grep -q "$m" docs/OBSERVABILITY.md; then
        echo "check_docs: metric $m is registered but missing from docs/OBSERVABILITY.md"
        fail=1
    fi
done

# ... and stale metric rows: every family the docs name must still be
# registered in the catalog header.
docMetrics=$(grep -hoE 'tea_[a-z0-9_]+' docs/OBSERVABILITY.md | sort -u)
for m in $docMetrics; do
    if ! echo "$metrics" | grep -q "^$m$"; then
        echo "check_docs: metric $m is documented in docs/OBSERVABILITY.md but not registered in src/obs/obs.hh"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED — update README.md / docs/OBSERVABILITY.md"
    exit 1
fi
echo "check_docs: OK ($(echo "$vars" | wc -l | tr -d ' ') REPRO_ vars, $(echo "$metrics" | wc -l | tr -d ' ') metrics documented)"
