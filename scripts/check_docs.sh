#!/bin/sh
# Docs-drift check (wired into ctest as check_docs):
#
#  - every REPRO_* environment variable referenced anywhere in
#    src/bench/examples must be documented in docs/OPERATIONS.md or
#    docs/OBSERVABILITY.md (and documented variables must still exist
#    in the code);
#  - every metric family registered in src/obs/obs.hh must appear in
#    docs/OBSERVABILITY.md, and vice versa;
#  - every message type and error code in the daemon protocol enum
#    (src/service/protocol.hh) must appear in docs/PROTOCOL.md, and
#    every `NAME` the doc's tables name must still be in the enum.
#
# Adding a knob, metric or protocol message without documenting it —
# or leaving a stale row behind — fails the test suite.
#
# Usage: scripts/check_docs.sh [repo-root]
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0

# ---- REPRO_* environment variables ---------------------------------
# docs/OPERATIONS.md's tables are the canonical reference (the
# observability-export knobs live in docs/OBSERVABILITY.md).
vars=$(grep -rhoE 'REPRO_[A-Z_]+' src bench examples | sort -u)
[ -n "$vars" ] || { echo "check_docs: found no REPRO_ variables — wrong root?"; exit 2; }
for v in $vars; do
    if ! grep -q "$v" docs/OPERATIONS.md docs/OBSERVABILITY.md; then
        echo "check_docs: $v is used in the code but missing from docs/OPERATIONS.md and docs/OBSERVABILITY.md"
        fail=1
    fi
done

# ... and the reverse: a documented variable that no code reads is a
# stale row (e.g. a renamed adaptive-campaign knob).
docVars=$(grep -hoE 'REPRO_[A-Z_]+' docs/OPERATIONS.md docs/OBSERVABILITY.md README.md | sort -u)
for v in $docVars; do
    if ! echo "$vars" | grep -q "^$v$"; then
        echo "check_docs: $v is documented but unused in the code"
        fail=1
    fi
done

# ---- metric families registered in the catalog ---------------------
# docs/OBSERVABILITY.md's catalog table must name every family.
metrics=$(grep -rhoE '"tea_[a-z0-9_]+"' src/obs/obs.hh | tr -d '"' | sort -u)
[ -n "$metrics" ] || { echo "check_docs: found no metric names in src/obs/obs.hh"; exit 2; }
for m in $metrics; do
    if ! grep -q "$m" docs/OBSERVABILITY.md; then
        echo "check_docs: metric $m is registered but missing from docs/OBSERVABILITY.md"
        fail=1
    fi
done

# ... and stale metric rows: every family the docs name must still be
# registered in the catalog header.
docMetrics=$(grep -hoE 'tea_[a-z0-9_]+' docs/OBSERVABILITY.md | sort -u)
for m in $docMetrics; do
    if ! echo "$metrics" | grep -q "^$m$"; then
        echo "check_docs: metric $m is documented in docs/OBSERVABILITY.md but not registered in src/obs/obs.hh"
        fail=1
    fi
done

# ---- daemon protocol enums vs docs/PROTOCOL.md ---------------------
# The wire names ("SUBMIT", "RETRY_AFTER") are returned by
# msgTypeName()/errorCodeName() in protocol.cc; the doc's tables must
# name exactly that set.
wireNames=$(grep -hoE 'return "[A-Z][A-Z_]+"' src/service/protocol.cc \
            | sed 's/return "//; s/"//' | grep -v '^UNKNOWN$' | sort -u)
[ -n "$wireNames" ] || { echo "check_docs: found no wire names in src/service/protocol.cc"; exit 2; }
for n in $wireNames; do
    if ! grep -qE "\`$n\`" docs/PROTOCOL.md; then
        echo "check_docs: protocol name $n (src/service/protocol.cc) is missing from docs/PROTOCOL.md"
        fail=1
    fi
done

# ... and the doc must not invent message types or error codes: every
# backticked ALL_CAPS token in its tables must be a real wire name or
# a payload key written in caps (none today).
docNames=$(grep -hoE '\`[A-Z][A-Z_]{2,}\`' docs/PROTOCOL.md | tr -d '\`' | sort -u)
for n in $docNames; do
    case "$n" in
      TEAF|CRC|LE) continue ;; # frame-layout prose, not wire names
    esac
    if ! echo "$wireNames" | grep -q "^$n$"; then
        echo "check_docs: docs/PROTOCOL.md names $n but protocol.cc has no such message type or error code"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED — update docs/OPERATIONS.md / docs/OBSERVABILITY.md / docs/PROTOCOL.md"
    exit 1
fi
echo "check_docs: OK ($(echo "$vars" | wc -l | tr -d ' ') REPRO_ vars, $(echo "$metrics" | wc -l | tr -d ' ') metrics, $(echo "$wireNames" | wc -l | tr -d ' ') protocol names documented)"
