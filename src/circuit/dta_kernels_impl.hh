/**
 * @file
 * Compiled-DTA kernel bodies, included once per ISA translation unit.
 * The including TU defines:
 *
 *   TEA_DTA_NS         namespace for this specialization
 *   TEA_DTA_ISA_LEVEL  0 = portable, 1 = AVX2, 2 = AVX-512
 *
 * and is compiled with the matching -m flags (see
 * src/circuit/CMakeLists.txt). Every level computes bit-identical
 * results: the value sweep is pure 64-bit boolean algebra, and the
 * dense timing path performs the same per-lane double max/add/compare
 * chain as the scalar loop — lanes are independent, the operations
 * are IEEE-exact, and a masked-out fanin contributes +0.0 exactly as
 * the scalar code's "skip" does (the running max starts at +0.0 and
 * arrivals are non-negative).
 */

#include <algorithm>
#include <cstdint>

#include "circuit/dta_program.hh"
#include "util/logging.hh"

#if TEA_DTA_ISA_LEVEL >= 1
#include <immintrin.h>
#endif

namespace tea::circuit {
namespace TEA_DTA_NS {
namespace {

// ---------------------------------------------------------------- value sweep

/**
 * Evaluate the straight-line value program over `W`-word planes. Each
 * slot holds three planes back to back (old, new, golden), so every
 * boolean op runs one loop over 3*W contiguous words — the compiler
 * vectorizes these with whatever this TU's -m flags allow.
 */
template <unsigned W>
void
sweepImpl(const DtaProgram &p, DtaBatchCtx &ctx)
{
    constexpr unsigned S = 3 * W; // words per slot
    uint64_t *const slots = ctx.slots;
    uint64_t *const toggles = ctx.toggles;
    const uint64_t *const lm = ctx.laneMask;
    ctx.dirtyCount = 0;

    for (const DtaInsn &in : p.insns) {
        uint64_t *const d = slots + size_t{in.dst} * S;
        switch (in.op) {
          case DtaOp::Input: {
            const uint64_t *pv = ctx.prev + size_t{in.a} * W;
            const uint64_t *cv = ctx.cur + size_t{in.a} * W;
            const uint64_t *gv = ctx.golden + size_t{in.a} * W;
            for (unsigned i = 0; i < W; ++i) {
                d[i] = pv[i];
                d[W + i] = cv[i];
                d[2 * W + i] = gv[i];
            }
            break;
          }
          case DtaOp::Const0:
            for (unsigned i = 0; i < S; ++i)
                d[i] = 0;
            break;
          case DtaOp::Const1:
            for (unsigned i = 0; i < S; ++i)
                d[i] = ~0ULL;
            break;
          case DtaOp::Copy:
            // dst aliases a by construction; only the toggle store
            // below does work.
            break;
          case DtaOp::Not: {
            const uint64_t *a = slots + size_t{in.a} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = ~a[i];
            break;
          }
          case DtaOp::And2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = a[i] & b[i];
            break;
          }
          case DtaOp::Or2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = a[i] | b[i];
            break;
          }
          case DtaOp::Xor2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = a[i] ^ b[i];
            break;
          }
          case DtaOp::Nand2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = ~(a[i] & b[i]);
            break;
          }
          case DtaOp::Nor2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = ~(a[i] | b[i]);
            break;
          }
          case DtaOp::Xnor2: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = ~(a[i] ^ b[i]);
            break;
          }
          case DtaOp::Mux2: {
            // Operands (sel=a, a0=b, b1=c): sel ? c : b.
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            const uint64_t *c = slots + size_t{in.c} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = (a[i] & c[i]) | (~a[i] & b[i]);
            break;
          }
          case DtaOp::Maj3: {
            const uint64_t *a = slots + size_t{in.a} * S;
            const uint64_t *b = slots + size_t{in.b} * S;
            const uint64_t *c = slots + size_t{in.c} * S;
            for (unsigned i = 0; i < S; ++i)
                d[i] = (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i]);
            break;
          }
        }
        if (in.trow != kDtaNone) {
            uint64_t *t = toggles + size_t{in.trow} * W;
            uint64_t any = 0;
            for (unsigned i = 0; i < W; ++i) {
                uint64_t tw = (d[i] ^ d[W + i]) & lm[i];
                t[i] = tw;
                any |= tw;
            }
            if (any && in.tnode != kDtaNone)
                ctx.dirty[ctx.dirtyCount++] = in.tnode;
        }
    }
}

// ---------------------------------------------------------------- timing pass

/**
 * Toggle density at which the branchless all-64-lane recurrence beats
 * the ctz walk for one word. The dense path touches every lane; the
 * sparse path pays per set bit.
 */
constexpr int kDenseCutoff = 2;

/**
 * Dense per-word recurrence: compute `worst + delay` for all 64 lanes
 * at once, masking each fanin's contribution by its toggle bits, then
 * prune `arr + remaining <= cap` lanes out of the toggle word. The
 * arrival row is stored unconditionally — lanes whose toggle bit is
 * clear (or was just pruned) get garbage, which is harmless because
 * every read of an arrival row is guarded by the matching toggle bit.
 * Templated on the fanin count so the per-group loop fully unrolls.
 */
template <unsigned NF>
inline uint64_t
denseWord(uint64_t t, const double *const *frow, const uint64_t *ftw,
          double *row, double d, double rem, double cap)
{
#if TEA_DTA_ISA_LEVEL >= 2
    const __m512d vd = _mm512_set1_pd(d);
    const __m512d vrem = _mm512_set1_pd(rem);
    const __m512d vcap = _mm512_set1_pd(cap);
    uint64_t keep = 0;
    for (unsigned g = 0; g < 8; ++g) {
        __m512d worst = _mm512_setzero_pd();
        for (unsigned i = 0; i < NF; ++i) {
            __mmask8 k = static_cast<__mmask8>(ftw[i] >> (8 * g));
            worst = _mm512_mask_max_pd(
                worst, k, worst, _mm512_loadu_pd(frow[i] + 8 * g));
        }
        __m512d arr = _mm512_add_pd(worst, vd);
        _mm512_storeu_pd(row + 8 * g, arr);
        __mmask8 k = _mm512_cmp_pd_mask(_mm512_add_pd(arr, vrem),
                                        vcap, _CMP_GT_OQ);
        keep |= uint64_t{k} << (8 * g);
    }
    return t & keep;
#elif TEA_DTA_ISA_LEVEL >= 1
    const __m256d vd = _mm256_set1_pd(d);
    const __m256d vrem = _mm256_set1_pd(rem);
    const __m256d vcap = _mm256_set1_pd(cap);
    const __m256i base = _mm256_set_epi64x(8, 4, 2, 1);
    uint64_t keep = 0;
    for (unsigned g = 0; g < 16; ++g) {
        const __m256i vbit = _mm256_slli_epi64(base,
                                               static_cast<int>(4 * g));
        __m256d worst = _mm256_setzero_pd();
        for (unsigned i = 0; i < NF; ++i) {
            __m256i vt = _mm256_set1_epi64x(
                static_cast<long long>(ftw[i]));
            __m256d m = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_and_si256(vt, vbit), vbit));
            // Arrivals are non-negative, so masking to +0.0 and
            // taking the max equals the scalar "skip this fanin".
            __m256d v =
                _mm256_and_pd(_mm256_loadu_pd(frow[i] + 4 * g), m);
            worst = _mm256_max_pd(worst, v);
        }
        __m256d arr = _mm256_add_pd(worst, vd);
        _mm256_storeu_pd(row + 4 * g, arr);
        int k = _mm256_movemask_pd(_mm256_cmp_pd(
            _mm256_add_pd(arr, vrem), vcap, _CMP_GT_OQ));
        keep |= uint64_t(static_cast<unsigned>(k)) << (4 * g);
    }
    return t & keep;
#else
    double worst[64];
    for (unsigned l = 0; l < 64; ++l)
        worst[l] = 0.0;
    for (unsigned i = 0; i < NF; ++i) {
        const double *fr = frow[i];
        const uint64_t tw = ftw[i];
        for (unsigned l = 0; l < 64; ++l) {
            double v = (tw >> l) & 1 ? fr[l] : 0.0;
            worst[l] = std::max(worst[l], v);
        }
    }
    uint64_t keep = 0;
    for (unsigned l = 0; l < 64; ++l) {
        double arr = worst[l] + d;
        row[l] = arr;
        if (arr + rem > cap)
            keep |= 1ULL << l;
    }
    return t & keep;
#endif
}

/**
 * Timing recurrence over ONE 64-lane word of the batch. Word-major
 * processing keeps the working set — the word's arrival arena slice
 * (`arr`, numArrivalRows x 64 doubles) plus the toggle arena — cache
 * resident even for 512-lane batches, where a node-major walk would
 * stream an 8x larger arena through L3 once per node visit.
 *
 * The dirty list is in topological order (the value sweep visits
 * cells that way), so every fanin's arrival row and post-prune toggle
 * word are final before a node reads them — exactly the ordering
 * LaneDta's toggled_ list provides.
 */
template <unsigned W>
inline void
timingWord(const DtaProgram &p, DtaBatchCtx &ctx, unsigned w,
           double *arr)
{
    const double cap = ctx.captureTimePs;
    uint64_t *const toggles = ctx.toggles;
    for (uint32_t di = 0; di < ctx.dirtyCount; ++di) {
        const DtaTimingNode &nd = p.tnodes[ctx.dirty[di]];
        uint64_t *const tp = &toggles[size_t{nd.trow} * W + w];
        uint64_t t = *tp;
        if (!t)
            continue;
        const DtaTimingFanin *const fans =
            p.tfanins.data() + nd.faninBegin;
        const unsigned nf = nd.faninCount;
        uint64_t ftw[3] = {0, 0, 0};
        uint64_t funion = 0;
        for (unsigned i = 0; i < nf; ++i) {
            ftw[i] = toggles[size_t{fans[i].trow} * W + w];
            funion |= ftw[i];
        }
        if (!nd.orphanLate) {
            // Lanes with no toggled fanin would compute
            // arr = 0 + delay and be pruned (delay + remaining <=
            // cap); clear them without touching the FP arena. This
            // is what collapses prune cascades to bitwise ops.
            t &= funion;
            *tp = t;
            if (!t)
                continue;
        }
        const double d = nd.delayPs;
        const double rem = nd.remainingPs;
        const double *frow[3] = {nullptr, nullptr, nullptr};
        for (unsigned i = 0; i < nf; ++i)
            frow[i] = arr + size_t{fans[i].arow} * 64;
        double *const row = arr + size_t{nd.arow} * 64;
        if (__builtin_popcountll(t) >= kDenseCutoff) {
            switch (nf) {
              case 0:
                t = denseWord<0>(t, frow, ftw, row, d, rem, cap);
                break;
              case 1:
                t = denseWord<1>(t, frow, ftw, row, d, rem, cap);
                break;
              case 2:
                t = denseWord<2>(t, frow, ftw, row, d, rem, cap);
                break;
              default:
                t = denseWord<3>(t, frow, ftw, row, d, rem, cap);
                break;
            }
            *tp = t;
        } else {
            while (t) {
                const unsigned l =
                    static_cast<unsigned>(__builtin_ctzll(t));
                const uint64_t bit = t & (~t + 1);
                t &= t - 1;
                double worst = 0.0;
                for (unsigned i = 0; i < nf; ++i)
                    if (ftw[i] & bit)
                        worst = std::max(worst, frow[i][l]);
                double a = worst + d;
                if (a + rem <= cap) {
                    *tp &= ~bit;
                    continue;
                }
                row[l] = a;
            }
        }
    }

    // Capture-edge pass: flip captured bits whose toggled output
    // arrives after the capture time, and accumulate per-lane worst
    // output arrivals (maxArr is zeroed by the caller).
    const double cap2 = ctx.captureTimePs;
    double *const ma = ctx.maxArr + 64 * w;
    for (const DtaTimingOut &o : p.touts) {
        uint64_t t = toggles[size_t{o.trow} * W + w];
        const double *const row = arr + size_t{o.arow} * 64;
        uint64_t *const capt = ctx.captured + size_t{o.outIdx} * W + w;
        while (t) {
            const unsigned l =
                static_cast<unsigned>(__builtin_ctzll(t));
            const uint64_t bit = t & (~t + 1);
            t &= t - 1;
            const double a = row[l];
            if (a > ma[l])
                ma[l] = a;
            if (a > cap2)
                *capt ^= bit;
        }
    }
}

template <unsigned W>
void
timingImpl(const DtaProgram &p, DtaBatchCtx &ctx)
{
    const size_t wordArena = size_t{p.numArrivalRows} * 64;
    for (unsigned w = 0; w < W; ++w)
        timingWord<W>(p, ctx, w, ctx.arrivals + w * wordArena);
}

void
valueSweep(const DtaProgram &p, DtaBatchCtx &ctx)
{
    switch (ctx.W) {
      case 1:
        sweepImpl<1>(p, ctx);
        break;
      case 2:
        sweepImpl<2>(p, ctx);
        break;
      case 4:
        sweepImpl<4>(p, ctx);
        break;
      case 8:
        sweepImpl<8>(p, ctx);
        break;
      default:
        panic("compiled DTA: unsupported plane width %u", ctx.W);
    }
}

void
timingPass(const DtaProgram &p, DtaBatchCtx &ctx)
{
    switch (ctx.W) {
      case 1:
        timingImpl<1>(p, ctx);
        break;
      case 2:
        timingImpl<2>(p, ctx);
        break;
      case 4:
        timingImpl<4>(p, ctx);
        break;
      case 8:
        timingImpl<8>(p, ctx);
        break;
      default:
        panic("compiled DTA: unsupported plane width %u", ctx.W);
    }
}

} // namespace

const DtaKernelTable &
kernels()
{
    static const DtaKernelTable table{&valueSweep, &timingPass};
    return table;
}

} // namespace TEA_DTA_NS
} // namespace tea::circuit
