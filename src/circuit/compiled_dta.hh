/**
 * @file
 * Compiled-netlist DTA engine: executes the specialized program
 * produced by compileDtaProgram (see dta_program.hh) over SIMD-wide
 * lane planes — up to 512 samples per batch, 64 per plane word.
 *
 * Relationship to the other engines:
 *  - LevelizedDta is the scalar oracle: one sample per run() call.
 *  - LaneDta interprets the netlist 64 lanes at a time.
 *  - CompiledDta runs the same recurrences from a pre-lowered
 *    straight-line program (constants folded, copies propagated, dead
 *    cells dropped, timing fanins pre-filtered) on planes of 1..8
 *    words, dispatched to portable / AVX2 / AVX-512 kernels at
 *    runtime (util/simd.hh). Results are bit-identical to LevelizedDta
 *    per lane at every width and every ISA level.
 *
 * Like the other engines an instance is bound to one netlist,
 * annotation, and delay scale, owns scratch, and is not thread-safe;
 * the returned batch references scratch valid until the next call.
 */

#ifndef TEA_CIRCUIT_COMPILED_DTA_HH
#define TEA_CIRCUIT_COMPILED_DTA_HH

#include <cstdint>
#include <vector>

#include "circuit/dta_program.hh"
#include "circuit/netlist.hh"

namespace tea::circuit {

/**
 * Which engine executes batched DTA samples. Process-wide knob (like
 * timing::dtaLanes), resolved lazily from REPRO_DTA_BACKEND; the
 * default keeps the pre-existing LaneDta path byte-for-byte.
 */
enum class DtaBackend : int
{
    Levelized = 0, ///< scalar LevelizedDta loop (the oracle)
    Lane = 1,      ///< 64-lane SWAR interpreter (default)
    Compiled = 2,  ///< compiled program, SIMD-wide planes
};

/** Parse a backend name; returns false (out untouched) on junk. */
bool parseDtaBackend(const char *s, DtaBackend &out);
const char *dtaBackendName(DtaBackend backend);

/** Active backend (lazily REPRO_DTA_BACKEND, default Lane). */
DtaBackend dtaBackend();
void setDtaBackend(DtaBackend backend);
/** Drop the cached choice; next dtaBackend() re-reads the env. */
void resetDtaBackend();

/**
 * Result of one wide batch: `W` 64-bit words per flat output bit,
 * word-major per output (lane l lives in word l/64, bit l%64). Bits at
 * lane positions >= the batch's lane count are unspecified.
 */
struct WideBatch
{
    unsigned W = 1; ///< plane width in words
    std::vector<uint64_t> settled;  ///< numOuts x W
    std::vector<uint64_t> captured; ///< numOuts x W
    std::vector<uint64_t> golden;   ///< numOuts x W (zero-delay eval)
    /**
     * Worst dynamic arrival per lane (64 * W entries), over the
     * capture-risky cone: exact whenever it exceeds the capture time
     * (every faulty lane), else a lower bound — same contract as
     * LaneBatch::maxArrivalPs.
     */
    std::vector<double> maxArrivalPs;
};

class CompiledDta
{
  public:
    static constexpr unsigned kMaxLanes = 512;

    /** Plane width in words for a lane count: 1, 2, 4 or 8. */
    static unsigned wordsFor(unsigned lanes);

    CompiledDta(const Netlist &nl, const DelayAnnotation &annot,
                double delayScale = 1.0);

    /**
     * Lower the netlist for `captureTimePs` if not already compiled
     * for it. Idempotent; runBatch calls it implicitly. Public so the
     * fpu layer can time compilation (obs: tea_dta_compile_ms).
     * @return true when this call actually (re)compiled.
     */
    bool prepare(double captureTimePs);

    /** The lowered program, or nullptr before the first prepare(). */
    const DtaProgram *program() const
    {
        return compiledFor_ >= 0.0 ? &prog_ : nullptr;
    }

    /**
     * Simulate `lanes` transitions prev -> cur at once, including the
     * zero-delay golden evaluation of `cur` (the third plane of the
     * fused sweep — there is no separate evalBatch). Each input plane
     * vector holds wordsFor(lanes) words per primary input,
     * input-major.
     */
    const WideBatch &runBatch(const std::vector<uint64_t> &prev,
                              const std::vector<uint64_t> &cur,
                              const std::vector<uint64_t> &golden,
                              double captureTimePs, unsigned lanes);

    const Netlist &netlist() const { return nl_; }

  private:
    const Netlist &nl_;
    const DelayAnnotation &annot_;
    double delayScale_;
    double compiledFor_ = -1.0; ///< capture time of prog_, <0 = none
    DtaProgram prog_;
    // Scratch reused across calls (sized on first use per width).
    unsigned scratchW_ = 0;
    std::vector<uint64_t> slots_, toggles_, laneMask_;
    std::vector<double> arrivals_;
    std::vector<uint32_t> dirty_;
    WideBatch batch_;
};

} // namespace tea::circuit

#endif // TEA_CIRCUIT_COMPILED_DTA_HH
