/** Portable uint64 build of the compiled-DTA kernels. */

#define TEA_DTA_NS kernels_portable
#define TEA_DTA_ISA_LEVEL 0
#include "circuit/dta_kernels_impl.hh"

namespace tea::circuit {

const DtaKernelTable &
dtaKernelsPortable()
{
    return kernels_portable::kernels();
}

} // namespace tea::circuit
