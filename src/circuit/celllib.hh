/**
 * @file
 * Synthetic 45 nm-flavoured standard-cell timing library, delay
 * annotation (the SDF surrogate) and the voltage -> delay model.
 *
 * The paper extracts cell and interconnect delays from a NanGate 45 nm
 * post-place-and-route flow (Design Compiler + Innovus) and
 * re-characterizes the library at reduced voltages with SiliconSmart.
 * We substitute: per-kind intrinsic delays of plausible 45 nm magnitude,
 * a fanout-proportional wire-load term standing in for routed
 * interconnect, a deterministic per-instance process-variation jitter,
 * and an alpha-power-law voltage scaling factor. The experiments consume
 * only the *ordering and data dependence* of path delays, which these
 * preserve.
 */

#ifndef TEA_CIRCUIT_CELLLIB_HH
#define TEA_CIRCUIT_CELLLIB_HH

#include <cstdint>
#include <vector>

#include "circuit/netlist.hh"

namespace tea::circuit {

/**
 * Per-kind timing parameters (picoseconds at nominal voltage).
 */
struct CellLibrary
{
    /** Intrinsic propagation delay per cell kind, indexed by CellKind. */
    double intrinsicPs[16];
    /** Added wire delay per fanout of the driven net. */
    double wirePerFanoutPs = 4.0;
    /** Sigma of the per-instance multiplicative process variation. */
    double variationSigma = 0.04;
    /** Clock-to-Q of the launching register. */
    double clkToQPs = 80.0;
    /** Setup time of the capturing register. */
    double setupPs = 60.0;

    /** The default synthetic 45 nm library. */
    static CellLibrary nangate45Like();
};

/**
 * Alpha-power-law delay model for supply-voltage reduction:
 *   delayFactor(V) = (V/V0) * ((V0 - Vth) / (V - Vth))^alpha
 * normalized to 1.0 at the nominal voltage V0.
 */
struct VoltageModel
{
    double nominalV = 1.1; ///< NanGate 45 nm typical corner
    double vth = 0.4;
    double alpha = 1.3;

    /** Multiplicative delay increase at supply voltage v. */
    double delayFactor(double v) const;
    /** Supply voltage for a fractional reduction (0.15 -> VR15). */
    double voltageFor(double reductionFrac) const;
    /** Convenience: delay factor at a given reduction fraction. */
    double delayFactorAtReduction(double reductionFrac) const;
    /** Dynamic power factor ~ (V/V0)^2 at constant frequency. */
    double dynamicPowerFactor(double v) const;
    /** Leakage power factor, modelled ~ (V/V0)^3. */
    double leakagePowerFactor(double v) const;
    /**
     * Total power factor with the given leakage share at nominal
     * (datacenter-class cores sit around 30 % leakage).
     */
    double totalPowerFactor(double v, double leakageShare = 0.3) const;
};

/** Standard voltage-reduction levels studied in the paper. */
constexpr double kVR15 = 0.15;
constexpr double kVR20 = 0.20;

/**
 * Per-cell delay annotation of one netlist instance: intrinsic delay x
 * process variation + wire load. Multiply by VoltageModel::delayFactor
 * at simulation time to get the operating-point delay.
 */
class DelayAnnotation
{
  public:
    /**
     * Annotate a netlist. The seed determines the per-instance process
     * variation; the same (netlist, seed) pair always yields identical
     * delays, making campaigns reproducible.
     */
    DelayAnnotation(const Netlist &nl, const CellLibrary &lib,
                    uint64_t seed);

    /** Nominal delay of cell id in picoseconds (0 for inputs/constants). */
    double delayPs(NetId id) const { return delays_[id]; }
    const std::vector<double> &delays() const { return delays_; }

    const CellLibrary &library() const { return lib_; }

  private:
    CellLibrary lib_;
    std::vector<double> delays_;
};

} // namespace tea::circuit

#endif // TEA_CIRCUIT_CELLLIB_HH
