#include "circuit/compiled_dta.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"
#include "util/simd.hh"

namespace tea::circuit {

// ------------------------------------------------------------- backend knob

bool
parseDtaBackend(const char *s, DtaBackend &out)
{
    if (!s)
        return false;
    if (std::strcmp(s, "levelized") == 0) {
        out = DtaBackend::Levelized;
        return true;
    }
    if (std::strcmp(s, "lane") == 0) {
        out = DtaBackend::Lane;
        return true;
    }
    if (std::strcmp(s, "compiled") == 0) {
        out = DtaBackend::Compiled;
        return true;
    }
    return false;
}

const char *
dtaBackendName(DtaBackend backend)
{
    switch (backend) {
      case DtaBackend::Levelized:
        return "levelized";
      case DtaBackend::Lane:
        return "lane";
      case DtaBackend::Compiled:
        return "compiled";
    }
    return "unknown";
}

namespace {

/** Cached backend choice; -1 = not yet resolved from the env. */
std::atomic<int> gBackend{-1};

DtaBackend
backendFromEnv()
{
    const char *env = std::getenv("REPRO_DTA_BACKEND");
    if (!env || !*env)
        return DtaBackend::Lane;
    DtaBackend b;
    if (!parseDtaBackend(env, b)) {
        warn("REPRO_DTA_BACKEND='%s' invalid (want "
             "levelized|lane|compiled); using lane",
             env);
        return DtaBackend::Lane;
    }
    return b;
}

} // namespace

DtaBackend
dtaBackend()
{
    int v = gBackend.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(backendFromEnv());
        gBackend.store(v, std::memory_order_relaxed);
    }
    return static_cast<DtaBackend>(v);
}

void
setDtaBackend(DtaBackend backend)
{
    gBackend.store(static_cast<int>(backend),
                   std::memory_order_relaxed);
}

void
resetDtaBackend()
{
    gBackend.store(-1, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- engine

namespace {

const DtaKernelTable &
activeKernels()
{
    simd::Isa isa = simd::activeIsa();
#if defined(TEA_SIMD_AVX512)
    if (isa == simd::Isa::Avx512)
        return dtaKernelsAvx512();
#endif
#if defined(TEA_SIMD_AVX2)
    if (isa == simd::Isa::Avx2)
        return dtaKernelsAvx2();
#endif
    (void)isa;
    return dtaKernelsPortable();
}

} // namespace

unsigned
CompiledDta::wordsFor(unsigned lanes)
{
    if (lanes <= 64)
        return 1;
    if (lanes <= 128)
        return 2;
    if (lanes <= 256)
        return 4;
    return 8;
}

CompiledDta::CompiledDta(const Netlist &nl, const DelayAnnotation &annot,
                         double delayScale)
    : nl_(nl), annot_(annot), delayScale_(delayScale)
{
}

bool
CompiledDta::prepare(double captureTimePs)
{
    if (compiledFor_ == captureTimePs)
        return false;
    prog_ = compileDtaProgram(nl_, annot_, delayScale_, captureTimePs);
    compiledFor_ = captureTimePs;
    // The arrival arena depends on the program; force a re-size (and
    // a re-fill of the shared clk-to-Q row) on the next batch.
    scratchW_ = 0;
    return true;
}

const WideBatch &
CompiledDta::runBatch(const std::vector<uint64_t> &prev,
                      const std::vector<uint64_t> &cur,
                      const std::vector<uint64_t> &golden,
                      double captureTimePs, unsigned lanes)
{
    panic_if(lanes == 0 || lanes > kMaxLanes,
             "CompiledDta: bad lane count %u", lanes);
    const unsigned W = wordsFor(lanes);
    const size_t nIn = nl_.numInputs();
    panic_if(prev.size() != nIn * W || cur.size() != nIn * W ||
                 golden.size() != nIn * W,
             "CompiledDta: bad input plane count");

    prepare(captureTimePs);

    const size_t nOut = nl_.flatOutputs().size();
    if (scratchW_ != W) {
        slots_.assign(size_t{prog_.numSlots} * 3 * W, 0);
        toggles_.assign(size_t{prog_.numToggleRows} * W, 0);
        // Word-major arena: one numArrivalRows x 64 slice per plane
        // word, so the timing pass stays cache-blocked per word.
        arrivals_.assign(size_t{prog_.numArrivalRows} * 64 * W, 0.0);
        const size_t wordArena = size_t{prog_.numArrivalRows} * 64;
        for (unsigned w = 0; w < W; ++w)
            for (unsigned l = 0; l < 64; ++l)
                arrivals_[w * wordArena + l] =
                    prog_.clkToQPs; // shared input row
        dirty_.resize(prog_.tnodes.size());
        laneMask_.resize(W);
        batch_.W = W;
        batch_.settled.resize(nOut * W);
        batch_.captured.resize(nOut * W);
        batch_.golden.resize(nOut * W);
        batch_.maxArrivalPs.resize(size_t{64} * W);
        scratchW_ = W;
    }
    for (unsigned w = 0; w < W; ++w) {
        unsigned lo = w * 64;
        laneMask_[w] = lanes >= lo + 64
                           ? ~0ULL
                           : (lanes <= lo ? 0
                                          : (1ULL << (lanes - lo)) - 1);
    }
    std::fill(batch_.maxArrivalPs.begin(), batch_.maxArrivalPs.end(),
              0.0);

    DtaBatchCtx ctx;
    ctx.W = W;
    ctx.prev = prev.data();
    ctx.cur = cur.data();
    ctx.golden = golden.data();
    ctx.slots = slots_.data();
    ctx.toggles = toggles_.data();
    ctx.arrivals = arrivals_.data();
    ctx.dirty = dirty_.data();
    ctx.laneMask = laneMask_.data();
    ctx.captured = batch_.captured.data();
    ctx.maxArr = batch_.maxArrivalPs.data();
    ctx.captureTimePs = captureTimePs;

    const DtaKernelTable &k = activeKernels();
    k.valueSweep(prog_, ctx);

    // Settled (new plane), golden, and the captured starting point.
    for (size_t o = 0; o < nOut; ++o) {
        const uint64_t *s =
            slots_.data() + size_t{prog_.outSlot[o]} * 3 * W;
        for (unsigned w = 0; w < W; ++w) {
            batch_.settled[o * W + w] = s[W + w];
            batch_.captured[o * W + w] = s[W + w];
            batch_.golden[o * W + w] = s[2 * W + w];
        }
    }

    k.timingPass(prog_, ctx);
    return batch_;
}

} // namespace tea::circuit
