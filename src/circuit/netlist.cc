#include "circuit/netlist.hh"

#include "util/logging.hh"

namespace tea::circuit {

unsigned
cellArity(CellKind kind)
{
    switch (kind) {
      case CellKind::Input:
      case CellKind::Const0:
      case CellKind::Const1:
        return 0;
      case CellKind::Buf:
      case CellKind::Not:
        return 1;
      case CellKind::And2:
      case CellKind::Or2:
      case CellKind::Xor2:
      case CellKind::Nand2:
      case CellKind::Nor2:
      case CellKind::Xnor2:
        return 2;
      case CellKind::Mux2:
      case CellKind::Maj3:
        return 3;
    }
    panic("unknown cell kind");
}

const char *
cellKindName(CellKind kind)
{
    switch (kind) {
      case CellKind::Input: return "INPUT";
      case CellKind::Const0: return "CONST0";
      case CellKind::Const1: return "CONST1";
      case CellKind::Buf: return "BUF";
      case CellKind::Not: return "NOT";
      case CellKind::And2: return "AND2";
      case CellKind::Or2: return "OR2";
      case CellKind::Xor2: return "XOR2";
      case CellKind::Nand2: return "NAND2";
      case CellKind::Nor2: return "NOR2";
      case CellKind::Xnor2: return "XNOR2";
      case CellKind::Mux2: return "MUX2";
      case CellKind::Maj3: return "MAJ3";
    }
    return "?";
}

bool
evalCell(CellKind kind, bool a, bool b, bool c)
{
    switch (kind) {
      case CellKind::Input:
        panic("evalCell on primary input");
      case CellKind::Const0: return false;
      case CellKind::Const1: return true;
      case CellKind::Buf: return a;
      case CellKind::Not: return !a;
      case CellKind::And2: return a && b;
      case CellKind::Or2: return a || b;
      case CellKind::Xor2: return a != b;
      case CellKind::Nand2: return !(a && b);
      case CellKind::Nor2: return !(a || b);
      case CellKind::Xnor2: return a == b;
      case CellKind::Mux2: return a ? c : b; // a=sel, b=in0, c=in1
      case CellKind::Maj3:
        return (a && b) || (a && c) || (b && c);
    }
    panic("unknown cell kind");
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NetId
Netlist::addInput(const std::string &name)
{
    panic_if(inputsClosed_, "inputs must precede gates in netlist '%s'",
             name_.c_str());
    Cell cell{CellKind::Input, {invalidNet, invalidNet, invalidNet}};
    cells_.push_back(cell);
    inputNames_.push_back(name);
    ++numInputs_;
    return static_cast<NetId>(cells_.size() - 1);
}

Bus
Netlist::addInputBus(const std::string &name, unsigned width)
{
    Bus bus;
    bus.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        bus.push_back(addInput(name + "[" + std::to_string(i) + "]"));
    return bus;
}

NetId
Netlist::addGate(CellKind kind, NetId a, NetId b, NetId c)
{
    inputsClosed_ = true;
    unsigned arity = cellArity(kind);
    NetId self = static_cast<NetId>(cells_.size());
    NetId fi[3] = {a, b, c};
    for (unsigned i = 0; i < 3; ++i) {
        if (i < arity) {
            panic_if(fi[i] == invalidNet,
                     "gate %s missing fanin %u", cellKindName(kind), i);
            panic_if(fi[i] >= self,
                     "netlist '%s' not topological: fanin %u >= cell %u",
                     name_.c_str(), fi[i], self);
        } else {
            fi[i] = invalidNet;
        }
    }
    cells_.push_back(Cell{kind, {fi[0], fi[1], fi[2]}});
    fanouts_.clear(); // invalidate cache
    return self;
}

void
Netlist::addOutputBus(const std::string &name, Bus nets)
{
    for (NetId n : nets)
        panic_if(n >= cells_.size(), "output bus '%s' references net %u",
                 name.c_str(), n);
    outputs_.push_back(OutputBus{name, std::move(nets)});
}

size_t
Netlist::numOutputBits() const
{
    size_t total = 0;
    for (const auto &bus : outputs_)
        total += bus.nets.size();
    return total;
}

std::vector<NetId>
Netlist::flatOutputs() const
{
    std::vector<NetId> flat;
    flat.reserve(numOutputBits());
    for (const auto &bus : outputs_)
        flat.insert(flat.end(), bus.nets.begin(), bus.nets.end());
    return flat;
}

const std::vector<std::vector<NetId>> &
Netlist::fanouts() const
{
    if (fanouts_.empty() && !cells_.empty()) {
        fanouts_.resize(cells_.size());
        for (NetId id = 0; id < cells_.size(); ++id) {
            const Cell &cell = cells_[id];
            unsigned arity = cellArity(cell.kind);
            for (unsigned i = 0; i < arity; ++i)
                fanouts_[cell.fanin[i]].push_back(id);
        }
    }
    return fanouts_;
}

std::vector<size_t>
Netlist::kindCounts() const
{
    std::vector<size_t> counts(16, 0);
    for (const auto &cell : cells_)
        ++counts[static_cast<size_t>(cell.kind)];
    return counts;
}

std::vector<bool>
evaluate(const Netlist &nl, const std::vector<bool> &inputs)
{
    panic_if(inputs.size() != nl.numInputs(),
             "evaluate: %zu inputs given, %zu expected", inputs.size(),
             nl.numInputs());
    std::vector<bool> values(nl.numCells());
    const auto &cells = nl.cells();
    for (NetId id = 0; id < cells.size(); ++id) {
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input) {
            values[id] = inputs[id];
            continue;
        }
        bool a = cell.fanin[0] != invalidNet && values[cell.fanin[0]];
        bool b = cell.fanin[1] != invalidNet && values[cell.fanin[1]];
        bool c = cell.fanin[2] != invalidNet && values[cell.fanin[2]];
        values[id] = evalCell(cell.kind, a, b, c);
    }
    return values;
}

uint64_t
busValue(const std::vector<bool> &values, const Bus &bus)
{
    panic_if(bus.size() > 64, "busValue: bus wider than 64 bits");
    uint64_t v = 0;
    for (size_t i = 0; i < bus.size(); ++i)
        if (values[bus[i]])
            v |= 1ULL << i;
    return v;
}

void
setBusValue(std::vector<bool> &values, const Bus &bus, uint64_t v)
{
    panic_if(bus.size() > 64, "setBusValue: bus wider than 64 bits");
    for (size_t i = 0; i < bus.size(); ++i)
        values[bus[i]] = (v >> i) & 1;
}

std::vector<bool>
flattenOutputs(const Netlist &nl, const std::vector<bool> &values)
{
    std::vector<bool> flat;
    flat.reserve(nl.numOutputBits());
    for (const auto &bus : nl.outputBuses())
        for (NetId n : bus.nets)
            flat.push_back(values[n]);
    return flat;
}

} // namespace tea::circuit
