#include "circuit/sta.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tea::circuit {

StaResult::StaResult(std::vector<double> arrival,
                     std::vector<NetId> worstFanin,
                     std::vector<PathEndpoint> endpoints, double setupPs)
    : arrival_(std::move(arrival)), worstFanin_(std::move(worstFanin)),
      endpoints_(std::move(endpoints)), setupPs_(setupPs)
{
    std::sort(endpoints_.begin(), endpoints_.end(),
              [](const PathEndpoint &a, const PathEndpoint &b) {
                  return a.pathDelayPs > b.pathDelayPs;
              });
}

double
StaResult::criticalPathPs() const
{
    return endpoints_.empty() ? 0.0 : endpoints_.front().pathDelayPs;
}

std::vector<NetId>
StaResult::worstPath(NetId endpoint) const
{
    std::vector<NetId> path;
    NetId cur = endpoint;
    while (cur != invalidNet) {
        path.push_back(cur);
        cur = worstFanin_[cur];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

StaResult
staAnalyze(const Netlist &nl, const DelayAnnotation &annot)
{
    const auto &lib = annot.library();
    size_t n = nl.numCells();
    std::vector<double> arrival(n, 0.0);
    std::vector<NetId> worstFanin(n, invalidNet);

    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = nl.cell(id);
        if (cell.kind == CellKind::Input) {
            arrival[id] = lib.clkToQPs;
            continue;
        }
        if (cell.kind == CellKind::Const0 || cell.kind == CellKind::Const1) {
            arrival[id] = 0.0;
            continue;
        }
        double worst = 0.0;
        NetId worstId = invalidNet;
        unsigned arity = cellArity(cell.kind);
        for (unsigned i = 0; i < arity; ++i) {
            NetId fi = cell.fanin[i];
            if (arrival[fi] >= worst) {
                worst = arrival[fi];
                worstId = fi;
            }
        }
        arrival[id] = worst + annot.delayPs(id);
        worstFanin[id] = worstId;
    }

    std::vector<PathEndpoint> endpoints;
    for (const auto &bus : nl.outputBuses()) {
        for (unsigned bitIdx = 0; bitIdx < bus.nets.size(); ++bitIdx) {
            NetId net = bus.nets[bitIdx];
            endpoints.push_back(PathEndpoint{
                net, bus.name, bitIdx, arrival[net] + lib.setupPs});
        }
    }
    return StaResult(std::move(arrival), std::move(worstFanin),
                     std::move(endpoints), lib.setupPs);
}

} // namespace tea::circuit
