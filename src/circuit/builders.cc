#include "circuit/builders.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tea::circuit {

Builder::Builder(Netlist &nl) : nl_(nl) {}

NetId
Builder::c0()
{
    if (c0_ == invalidNet)
        c0_ = nl_.addGate(CellKind::Const0);
    return c0_;
}

NetId
Builder::c1()
{
    if (c1_ == invalidNet)
        c1_ = nl_.addGate(CellKind::Const1);
    return c1_;
}

NetId
Builder::inv(NetId a)
{
    return nl_.addGate(CellKind::Not, a);
}

NetId
Builder::buf(NetId a)
{
    return nl_.addGate(CellKind::Buf, a);
}

NetId
Builder::and2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::And2, a, b);
}

NetId
Builder::or2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::Or2, a, b);
}

NetId
Builder::xor2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::Xor2, a, b);
}

NetId
Builder::nand2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::Nand2, a, b);
}

NetId
Builder::nor2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::Nor2, a, b);
}

NetId
Builder::xnor2(NetId a, NetId b)
{
    return nl_.addGate(CellKind::Xnor2, a, b);
}

NetId
Builder::mux2(NetId sel, NetId a, NetId b)
{
    return nl_.addGate(CellKind::Mux2, sel, a, b);
}

NetId
Builder::maj3(NetId a, NetId b, NetId c)
{
    return nl_.addGate(CellKind::Maj3, a, b, c);
}

namespace {

template <typename F>
NetId
reduceTree(std::span<const NetId> xs, NetId empty, F &&combine)
{
    if (xs.empty())
        return empty;
    std::vector<NetId> level(xs.begin(), xs.end());
    while (level.size() > 1) {
        std::vector<NetId> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(combine(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

} // namespace

NetId
Builder::andTree(std::span<const NetId> xs)
{
    return reduceTree(xs, c1(),
                      [this](NetId a, NetId b) { return and2(a, b); });
}

NetId
Builder::orTree(std::span<const NetId> xs)
{
    return reduceTree(xs, c0(),
                      [this](NetId a, NetId b) { return or2(a, b); });
}

NetId
Builder::xorTree(std::span<const NetId> xs)
{
    return reduceTree(xs, c0(),
                      [this](NetId a, NetId b) { return xor2(a, b); });
}

Bus
Builder::constBus(uint64_t value, unsigned width)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = bit(value, i) ? c1() : c0();
    return bus;
}

Bus
Builder::invBus(const Bus &a)
{
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = inv(a[i]);
    return out;
}

Bus
Builder::and2Bus(const Bus &a, const Bus &b)
{
    panic_if(a.size() != b.size(), "and2Bus width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = and2(a[i], b[i]);
    return out;
}

Bus
Builder::or2Bus(const Bus &a, const Bus &b)
{
    panic_if(a.size() != b.size(), "or2Bus width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = or2(a[i], b[i]);
    return out;
}

Bus
Builder::xor2Bus(const Bus &a, const Bus &b)
{
    panic_if(a.size() != b.size(), "xor2Bus width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = xor2(a[i], b[i]);
    return out;
}

Bus
Builder::mux2Bus(NetId sel, const Bus &a, const Bus &b)
{
    panic_if(a.size() != b.size(), "mux2Bus width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = mux2(sel, a[i], b[i]);
    return out;
}

Bus
Builder::maskBus(const Bus &a, NetId enable)
{
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = and2(a[i], enable);
    return out;
}

Bus
Builder::zeroExtend(const Bus &a, unsigned width)
{
    panic_if(a.size() > width, "zeroExtend: bus already wider");
    Bus out = a;
    while (out.size() < width)
        out.push_back(c0());
    return out;
}

Bus
Builder::truncate(const Bus &a, unsigned width)
{
    panic_if(a.size() < width, "truncate: bus narrower than target");
    return Bus(a.begin(), a.begin() + width);
}

Bus
Builder::shiftLeftConst(const Bus &a, unsigned n, unsigned width)
{
    Bus out;
    out.reserve(width);
    for (unsigned i = 0; i < width; ++i) {
        if (i < n || i - n >= a.size())
            out.push_back(c0());
        else
            out.push_back(a[i - n]);
    }
    return out;
}

Builder::FullAdderOut
Builder::halfAdder(NetId a, NetId b)
{
    return {xor2(a, b), and2(a, b)};
}

Builder::FullAdderOut
Builder::fullAdder(NetId a, NetId b, NetId c)
{
    NetId ab = xor2(a, b);
    return {xor2(ab, c), maj3(a, b, c)};
}

Builder::AddOut
Builder::rippleAdd(const Bus &a, const Bus &b, NetId cin)
{
    panic_if(a.size() != b.size(), "rippleAdd width mismatch");
    Bus sum(a.size());
    NetId carry = (cin == invalidNet) ? c0() : cin;
    for (size_t i = 0; i < a.size(); ++i) {
        auto fa = fullAdder(a[i], b[i], carry);
        sum[i] = fa.sum;
        carry = fa.carry;
    }
    return {std::move(sum), carry};
}

Builder::AddOut
Builder::koggeStoneAdd(const Bus &a, const Bus &b, NetId cin)
{
    panic_if(a.size() != b.size(), "koggeStoneAdd width mismatch");
    size_t n = a.size();
    panic_if(n == 0, "koggeStoneAdd on empty bus");

    // Generate/propagate per bit.
    Bus g(n), p(n);
    for (size_t i = 0; i < n; ++i) {
        g[i] = and2(a[i], b[i]);
        p[i] = xor2(a[i], b[i]);
    }

    // Parallel-prefix: after the sweep, G[i]/P[i] describe bits [0..i].
    Bus G = g, P = p;
    // AND-tree of P is cheaper to compute per level than reusing xors.
    for (size_t d = 1; d < n; d <<= 1) {
        Bus Gn = G, Pn = P;
        for (size_t i = d; i < n; ++i) {
            Gn[i] = or2(G[i], and2(P[i], G[i - d]));
            Pn[i] = and2(P[i], P[i - d]);
        }
        G = std::move(Gn);
        P = std::move(Pn);
    }

    NetId carryIn = (cin == invalidNet) ? c0() : cin;
    Bus sum(n);
    for (size_t i = 0; i < n; ++i) {
        NetId ci = (i == 0)
                       ? carryIn
                       : or2(G[i - 1], and2(P[i - 1], carryIn));
        sum[i] = xor2(p[i], ci);
    }
    NetId cout = or2(G[n - 1], and2(P[n - 1], carryIn));
    return {std::move(sum), cout};
}

Builder::AddOut
Builder::carrySelectAdd(const Bus &a, const Bus &b, NetId cin,
                        unsigned lowBits)
{
    panic_if(a.size() != b.size(), "carrySelectAdd width mismatch");
    size_t n = a.size();
    if (lowBits >= n)
        return rippleAdd(a, b, cin);
    Bus aLo(a.begin(), a.begin() + lowBits);
    Bus bLo(b.begin(), b.begin() + lowBits);
    Bus aHi(a.begin() + lowBits, a.end());
    Bus bHi(b.begin() + lowBits, b.end());
    AddOut lo = rippleAdd(aLo, bLo, cin);
    AddOut hi0 = rippleAdd(aHi, bHi, c0());
    AddOut hi1 = rippleAdd(aHi, bHi, c1());
    Bus hiSum = mux2Bus(lo.carry, hi0.sum, hi1.sum);
    NetId carry = mux2(lo.carry, hi0.carry, hi1.carry);
    Bus sum = lo.sum;
    sum.insert(sum.end(), hiSum.begin(), hiSum.end());
    return {std::move(sum), carry};
}

Builder::AddOut
Builder::subtract(const Bus &a, const Bus &b, bool fast)
{
    Bus nb = invBus(b);
    return fast ? koggeStoneAdd(a, nb, c1()) : rippleAdd(a, nb, c1());
}

Bus
Builder::incrementer(const Bus &a, NetId en)
{
    Bus out(a.size());
    NetId carry = en;
    for (size_t i = 0; i < a.size(); ++i) {
        out[i] = xor2(a[i], carry);
        if (i + 1 < a.size())
            carry = and2(a[i], carry);
    }
    return out;
}

Bus
Builder::fastIncrementer(const Bus &a, NetId en)
{
    // Parallel-prefix AND gives carry_i = en & a[0] & ... & a[i-1]
    // in log depth.
    size_t n = a.size();
    Bus prefix(n); // prefix[i] = AND of a[0..i]
    prefix[0] = a[0];
    std::vector<NetId> cur = a;
    for (size_t d = 1; d < n; d <<= 1) {
        std::vector<NetId> next = cur;
        for (size_t i = d; i < n; ++i)
            next[i] = and2(cur[i], cur[i - d]);
        cur = std::move(next);
    }
    prefix = cur;
    Bus out(n);
    out[0] = xor2(a[0], en);
    for (size_t i = 1; i < n; ++i)
        out[i] = xor2(a[i], and2(en, prefix[i - 1]));
    return out;
}

Bus
Builder::negate(const Bus &a)
{
    return incrementer(invBus(a), c1());
}

NetId
Builder::equalBus(const Bus &a, const Bus &b)
{
    panic_if(a.size() != b.size(), "equalBus width mismatch");
    Bus eq(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        eq[i] = xnor2(a[i], b[i]);
    return andTree(eq);
}

NetId
Builder::isZeroBus(const Bus &a)
{
    return inv(orTree(a));
}

NetId
Builder::lessUnsigned(const Bus &a, const Bus &b)
{
    return inv(subtract(a, b).carry);
}

NetId
Builder::geUnsigned(const Bus &a, const Bus &b)
{
    return subtract(a, b).carry;
}

Bus
Builder::shiftRightLogical(const Bus &a, const Bus &amount)
{
    Bus cur = a;
    for (size_t j = 0; j < amount.size(); ++j) {
        size_t s = size_t(1) << j;
        Bus shifted(cur.size());
        for (size_t i = 0; i < cur.size(); ++i)
            shifted[i] = (i + s < cur.size()) ? cur[i + s] : c0();
        cur = mux2Bus(amount[j], cur, shifted);
    }
    return cur;
}

Builder::ShiftStickyOut
Builder::shiftRightSticky(const Bus &a, const Bus &amount)
{
    Bus cur = a;
    NetId sticky = c0();
    for (size_t j = 0; j < amount.size(); ++j) {
        size_t s = size_t(1) << j;
        Bus shifted(cur.size());
        for (size_t i = 0; i < cur.size(); ++i)
            shifted[i] = (i + s < cur.size()) ? cur[i + s] : c0();
        // Bits dropped by this stage (if it is selected).
        size_t dropped = std::min(s, cur.size());
        Bus lost(cur.begin(), cur.begin() + static_cast<long>(dropped));
        NetId lostAny = orTree(lost);
        sticky = or2(sticky, and2(amount[j], lostAny));
        cur = mux2Bus(amount[j], cur, shifted);
    }
    return {std::move(cur), sticky};
}

Bus
Builder::shiftLeftLogical(const Bus &a, const Bus &amount)
{
    Bus cur = a;
    for (size_t j = 0; j < amount.size(); ++j) {
        size_t s = size_t(1) << j;
        Bus shifted(cur.size());
        for (size_t i = 0; i < cur.size(); ++i)
            shifted[i] = (i >= s) ? cur[i - s] : c0();
        cur = mux2Bus(amount[j], cur, shifted);
    }
    return cur;
}

Bus
Builder::leadingZeroCount(const Bus &a)
{
    panic_if(a.empty(), "leadingZeroCount on empty bus");
    // Pad at the LSB end with ones up to a power of two; this leaves the
    // count unchanged (an all-zero original input then counts exactly
    // a.size() zeros before hitting a padded one).
    size_t w = 1;
    while (w < a.size())
        w <<= 1;
    Bus padded;
    for (size_t i = 0; i < w - a.size(); ++i)
        padded.push_back(c1());
    padded.insert(padded.end(), a.begin(), a.end());

    // Recursive halving; returns count bus of width log2(n)+1.
    struct Rec
    {
        Builder &b;
        Bus
        operator()(std::span<const NetId> x) const
        {
            if (x.size() == 1)
                return Bus{b.inv(x[0])};
            size_t half = x.size() / 2;
            std::span<const NetId> lo = x.subspan(0, half);
            std::span<const NetId> hi = x.subspan(half);
            Bus cntLo = (*this)(lo);
            Bus cntHi = (*this)(hi);
            NetId hiZero = b.isZeroBus(Bus(hi.begin(), hi.end()));
            size_t m = cntLo.size() - 1; // == log2(half)
            Bus out(m + 2);
            for (size_t i = 0; i < m; ++i)
                out[i] = b.mux2(hiZero, cntHi[i], cntLo[i]);
            out[m] = b.mux2(hiZero, cntHi[m], b.inv(cntLo[m]));
            out[m + 1] = b.and2(hiZero, cntLo[m]);
            return out;
        }
    };
    return Rec{*this}(std::span<const NetId>(padded));
}

Builder::CsaState
Builder::csaInit(unsigned width)
{
    Bus zeros(width, c0());
    return {zeros, zeros};
}

Builder::CsaState
Builder::csaAddRow(const CsaState &st, const Bus &a, NetId bBit,
                   unsigned row)
{
    size_t width = st.sum.size();
    panic_if(st.carry.size() != width, "csaAddRow state width mismatch");
    CsaState out;
    out.sum.resize(width);
    out.carry.resize(width);
    NetId zero = c0();
    for (size_t pos = 0; pos < width; ++pos) {
        NetId p = zero;
        if (pos >= row && pos - row < a.size())
            p = and2(a[pos - row], bBit);
        NetId s = st.sum[pos];
        NetId c = st.carry[pos];
        NetId ns, nc;
        if (p == zero && c == zero) {
            ns = s;
            nc = zero;
        } else if (p == zero) {
            auto ha = halfAdder(s, c);
            ns = ha.sum;
            nc = ha.carry;
        } else if (c == zero) {
            auto ha = halfAdder(s, p);
            ns = ha.sum;
            nc = ha.carry;
        } else {
            auto fa = fullAdder(s, c, p);
            ns = fa.sum;
            nc = fa.carry;
        }
        out.sum[pos] = ns;
        if (pos + 1 < width)
            out.carry[pos + 1] = nc;
        // A carry out of the top bit is dropped (result width covers the
        // full product, so it is provably zero for in-range inputs).
    }
    out.carry[0] = zero;
    return out;
}

Bus
Builder::csaResolve(const CsaState &st, bool fast)
{
    AddOut res = fast ? koggeStoneAdd(st.sum, st.carry)
                      : rippleAdd(st.sum, st.carry);
    return res.sum;
}

Bus
Builder::arrayMultiplier(const Bus &a, const Bus &b)
{
    unsigned width = static_cast<unsigned>(a.size() + b.size());
    CsaState st = csaInit(width);
    for (unsigned row = 0; row < b.size(); ++row)
        st = csaAddRow(st, a, b[row], row);
    return csaResolve(st);
}

Builder::DivRowOut
Builder::divRow(const Bus &rem, const Bus &den)
{
    panic_if(rem.size() != den.size() + 1, "divRow width contract");
    AddOut diff = subtract(rem, zeroExtend(den, rem.size()), true);
    NetId qBit = diff.carry; // 1 iff rem >= den
    Bus after = mux2Bus(qBit, rem, diff.sum);
    // Shift left by one for the next row; the top bit is provably zero
    // because after < den <= 2^w.
    Bus next(rem.size());
    next[0] = c0();
    for (size_t i = 1; i < rem.size(); ++i)
        next[i] = after[i - 1];
    return {qBit, std::move(next)};
}

Builder::DivOut
Builder::restoringDivider(const Bus &num, const Bus &den, unsigned qBits)
{
    panic_if(num.size() != den.size(), "restoringDivider width mismatch");
    Bus rem = zeroExtend(num, static_cast<unsigned>(num.size()) + 1);
    Bus q(qBits);
    Bus lastAfter;
    for (unsigned i = 0; i < qBits; ++i) {
        AddOut diff = subtract(rem, zeroExtend(den, rem.size()), true);
        NetId qBit = diff.carry;
        Bus after = mux2Bus(qBit, rem, diff.sum);
        q[qBits - 1 - i] = qBit;
        lastAfter = after;
        if (i + 1 < qBits) {
            Bus next(rem.size());
            next[0] = c0();
            for (size_t k = 1; k < rem.size(); ++k)
                next[k] = after[k - 1];
            rem = std::move(next);
        }
    }
    NetId sticky = orTree(lastAfter);
    return {std::move(q), sticky};
}

} // namespace tea::circuit
