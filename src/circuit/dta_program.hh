/**
 * @file
 * Compiled-netlist DTA: the bytecode IR and the codegen that lowers a
 * fixed (netlist, annotation, delay scale, capture time) quadruple
 * into a flat specialized evaluation program.
 *
 * The interpreted engines (LevelizedDta, LaneDta) re-discover the same
 * facts on every sample: which cells are constant, which are buffers,
 * which sit in the capture-risky cone, which fanins can ever carry a
 * late toggle. All of that is fixed for the lifetime of an operating
 * point, so the compiler here computes it once and bakes it into two
 * straight-line instruction streams:
 *
 *  - **Value program** (`insns`): one bytecode instruction per *live*
 *    cell, in the netlist's topological order, operating on reusable
 *    value *slots* (register allocation with a free list). Each slot
 *    holds three lane planes — faulty-old, faulty-new, and golden —
 *    so one sweep evaluates both simulation chains of a whole batch.
 *    Constant folding, copy propagation (Buf/And-with-1/Mux-const...),
 *    and dead-code elimination run at compile time; a folded cell
 *    costs zero instructions at run time.
 *  - **Timing program** (`tnodes`): one record per capture-risky cell
 *    whose arrival can still reach an output, with the cell's scaled
 *    delay, its remaining static path (the dynamic-slack pruning
 *    constant), and a *pre-filtered* fanin list — only fanins whose
 *    toggle planes can ever be non-zero (risky, non-constant) are
 *    kept, so the run-time recurrence never tests a fanin that the
 *    interpreter would have masked out anyway.
 *
 * Exactness: the timing records replicate LaneDta's recurrence — the
 * same pre-scaled double delays, the same topological visit order, the
 * same `arr + remaining <= captureTime` pruning expression — and the
 * value program computes the same boolean functions, so settled /
 * captured planes and per-late-lane arrivals are bit-identical to
 * LevelizedDta::run at every lane width (tests/dta asserts this on
 * randomized netlists).
 */

#ifndef TEA_CIRCUIT_DTA_PROGRAM_HH
#define TEA_CIRCUIT_DTA_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/netlist.hh"

namespace tea::circuit {

/** Bytecode operations of the compiled value program. */
enum class DtaOp : uint8_t
{
    Input, ///< load prev/cur/golden planes of primary input `a`
    Const0,
    Const1,
    Copy, ///< alias store: used only to materialize a toggle row
    Not,
    And2,
    Or2,
    Xor2,
    Nand2,
    Nor2,
    Xnor2,
    Mux2, ///< operands (sel, a0, b1): sel ? b1 : a0
    Maj3,
};

/** Sentinel for "no slot / no row / no node". */
constexpr uint32_t kDtaNone = 0xffffffffu;

/**
 * One value instruction. `dst`/`a`/`b`/`c` are value-slot indices
 * (for Input, `a` is the primary-input index instead). When the cell
 * is capture-risky, `trow` names the toggle-arena row to store
 * `(old ^ new) & laneMask` into, and `tnode` (non-input cells only)
 * is the timing node to append to the dirty list when any toggle bit
 * is set.
 */
struct DtaInsn
{
    DtaOp op;
    uint8_t pad0 = 0;
    uint16_t pad1 = 0;
    uint32_t dst = kDtaNone;
    uint32_t a = kDtaNone;
    uint32_t b = kDtaNone;
    uint32_t c = kDtaNone;
    uint32_t trow = kDtaNone;
    uint32_t tnode = kDtaNone;
};

/** One pre-filtered timing fanin: toggle row + arrival row. */
struct DtaTimingFanin
{
    uint32_t trow; ///< fanin's toggle-arena row
    uint32_t arow; ///< fanin's arrival row (0 = shared clk-to-Q row)
};

/** One capture-risky cell visited by the timing pass. */
struct DtaTimingNode
{
    double delayPs;     ///< pre-scaled cell delay
    double remainingPs; ///< longest static path to any output
    uint32_t trow;      ///< own toggle row
    uint32_t arow;      ///< own arrival row (>= 1)
    uint32_t faninBegin; ///< into DtaProgram::tfanins
    uint32_t faninCount; ///< 0..3 surviving fanins
    /**
     * Whether a toggle with NO toggled fanin (arrival = delay alone)
     * can survive pruning: delayPs + remainingPs > captureTimePs.
     * When false, the kernel prunes such "orphan" lanes by masking
     * the toggle word with the union of fanin toggle words — no FP
     * work — which is exactly what the scalar recurrence would
     * conclude (worst = 0, arr = delay, arr + remaining <= cap).
     */
    uint32_t orphanLate;
};

/** A flat output the timing pass may flip at the capture edge. */
struct DtaTimingOut
{
    uint32_t outIdx; ///< flat output index
    uint32_t trow;
    uint32_t arow; ///< 0 when the output net is a primary input
};

/** The lowered program; immutable once compiled. */
struct DtaProgram
{
    std::vector<DtaInsn> insns;
    std::vector<DtaTimingNode> tnodes;
    std::vector<DtaTimingFanin> tfanins;
    std::vector<DtaTimingOut> touts;
    /** Value slot of each flat output (read after the sweep). */
    std::vector<uint32_t> outSlot;

    uint32_t numSlots = 0;       ///< peak live value slots
    uint32_t numToggleRows = 0;  ///< toggle-arena rows
    uint32_t numArrivalRows = 1; ///< row 0 is the shared clk-to-Q row
    double clkToQPs = 0.0;
    double captureTimePs = 0.0;

    // Codegen statistics (reporting and tests).
    size_t cellsTotal = 0;  ///< netlist cells
    size_t cellsLive = 0;   ///< cells that emit a value instruction
    size_t cellsFolded = 0; ///< live-cone cells removed by folding
    size_t riskyCells = 0;  ///< capture-risky cells (pre-DCE)
};

/**
 * Lower `nl` for one operating point and capture time. The risky-cone
 * and remaining-path computation is arithmetic-identical to
 * LaneDta::rebuildRiskyCone, so the compiled timing pass prunes and
 * captures exactly like the interpreted one.
 */
DtaProgram compileDtaProgram(const Netlist &nl,
                             const DelayAnnotation &annot,
                             double delayScale, double captureTimePs);

/**
 * Per-batch kernel context: raw views into the engine's scratch
 * arenas. `W` is the plane width in 64-bit words (1, 2, 4 or 8).
 */
struct DtaBatchCtx
{
    unsigned W = 1;
    const uint64_t *prev = nullptr;   ///< numInputs x W planes
    const uint64_t *cur = nullptr;    ///< numInputs x W planes
    const uint64_t *golden = nullptr; ///< numInputs x W planes
    uint64_t *slots = nullptr;   ///< numSlots x 3 x W
    uint64_t *toggles = nullptr; ///< numToggleRows x W
    /** W word-major slices of numArrivalRows x 64 doubles each. */
    double *arrivals = nullptr;
    uint32_t *dirty = nullptr;        ///< capacity = tnodes.size()
    uint32_t dirtyCount = 0;
    const uint64_t *laneMask = nullptr; ///< W words
    uint64_t *captured = nullptr;       ///< numOuts x W (flipped late)
    double *maxArr = nullptr;           ///< 64 x W, zeroed per batch
    double captureTimePs = 0.0;
};

/**
 * One ISA specialization of the two kernels (see util/simd.hh). The
 * value sweep fills slots/toggles/dirty; the timing pass runs the
 * arrival recurrence over the dirty nodes and flips late captured
 * bits. Every specialization computes bit-identical results.
 */
struct DtaKernelTable
{
    void (*valueSweep)(const DtaProgram &, DtaBatchCtx &);
    void (*timingPass)(const DtaProgram &, DtaBatchCtx &);
};

const DtaKernelTable &dtaKernelsPortable();
#if defined(TEA_SIMD_AVX2)
const DtaKernelTable &dtaKernelsAvx2();
#endif
#if defined(TEA_SIMD_AVX512)
const DtaKernelTable &dtaKernelsAvx512();
#endif

} // namespace tea::circuit

#endif // TEA_CIRCUIT_DTA_PROGRAM_HH
