/**
 * AVX2 build of the compiled-DTA kernels. Compiled with -mavx2 (see
 * CMakeLists.txt); only referenced when runtime dispatch selects it.
 */

#if defined(TEA_SIMD_AVX2)

#define TEA_DTA_NS kernels_avx2
#define TEA_DTA_ISA_LEVEL 1
#include "circuit/dta_kernels_impl.hh"

namespace tea::circuit {

const DtaKernelTable &
dtaKernelsAvx2()
{
    return kernels_avx2::kernels();
}

} // namespace tea::circuit

#endif // TEA_SIMD_AVX2
