#include "circuit/dta_program.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace tea::circuit {

namespace {

/**
 * Value references during folding: a cell id, or one of two virtual
 * constant cells appended after the real ones (so slot allocation can
 * treat constants uniformly).
 */
constexpr NetId kRefC0 = invalidNet - 2;
constexpr NetId kRefC1 = invalidNet - 1;

inline bool
isConstRef(NetId r)
{
    return r == kRefC0 || r == kRefC1;
}

/** Folded form of one cell. */
struct Folded
{
    enum class Kind : uint8_t
    {
        Ref, ///< value equals `ops[0]` (alias or constant)
        Op,  ///< compute `op` over `ops[0..nops)`
    };
    Kind kind = Kind::Ref;
    DtaOp op = DtaOp::Copy;
    NetId ops[3] = {invalidNet, invalidNet, invalidNet};
    uint8_t nops = 0;
};

Folded
refTo(NetId r)
{
    Folded f;
    f.kind = Folded::Kind::Ref;
    f.ops[0] = r;
    f.nops = 1;
    return f;
}

Folded
opOf(DtaOp op, NetId a, NetId b = invalidNet, NetId c = invalidNet)
{
    Folded f;
    f.kind = Folded::Kind::Op;
    f.op = op;
    f.ops[0] = a;
    f.ops[1] = b;
    f.ops[2] = c;
    f.nops = c != invalidNet ? 3 : (b != invalidNet ? 2 : 1);
    return f;
}

/**
 * Simplify one cell after substituting its fanins' value references.
 * Rules are pure boolean identities, so they hold for all three lane
 * planes (faulty-old, faulty-new, golden) at once and never change a
 * toggle plane — only how it is computed.
 */
Folded
foldCell(CellKind kind, NetId r0, NetId r1, NetId r2)
{
    auto c0 = [](NetId r) { return r == kRefC0; };
    auto c1 = [](NetId r) { return r == kRefC1; };
    switch (kind) {
      case CellKind::Buf:
        return refTo(r0);
      case CellKind::Not:
        if (c0(r0))
            return refTo(kRefC1);
        if (c1(r0))
            return refTo(kRefC0);
        return opOf(DtaOp::Not, r0);
      case CellKind::And2:
        if (c0(r0) || c0(r1))
            return refTo(kRefC0);
        if (c1(r0))
            return refTo(r1);
        if (c1(r1) || r0 == r1)
            return refTo(r0);
        return opOf(DtaOp::And2, r0, r1);
      case CellKind::Or2:
        if (c1(r0) || c1(r1))
            return refTo(kRefC1);
        if (c0(r0))
            return refTo(r1);
        if (c0(r1) || r0 == r1)
            return refTo(r0);
        return opOf(DtaOp::Or2, r0, r1);
      case CellKind::Xor2:
        if (isConstRef(r0) && isConstRef(r1))
            return refTo(r0 == r1 ? kRefC0 : kRefC1);
        if (c0(r0))
            return refTo(r1);
        if (c0(r1))
            return refTo(r0);
        if (c1(r0))
            return opOf(DtaOp::Not, r1);
        if (c1(r1))
            return opOf(DtaOp::Not, r0);
        if (r0 == r1)
            return refTo(kRefC0);
        return opOf(DtaOp::Xor2, r0, r1);
      case CellKind::Xnor2:
        if (isConstRef(r0) && isConstRef(r1))
            return refTo(r0 == r1 ? kRefC1 : kRefC0);
        if (c1(r0))
            return refTo(r1);
        if (c1(r1))
            return refTo(r0);
        if (c0(r0))
            return opOf(DtaOp::Not, r1);
        if (c0(r1))
            return opOf(DtaOp::Not, r0);
        if (r0 == r1)
            return refTo(kRefC1);
        return opOf(DtaOp::Xnor2, r0, r1);
      case CellKind::Nand2:
        if (c0(r0) || c0(r1))
            return refTo(kRefC1);
        if (c1(r0) && c1(r1))
            return refTo(kRefC0);
        if (c1(r0))
            return opOf(DtaOp::Not, r1);
        if (c1(r1) || r0 == r1)
            return opOf(DtaOp::Not, r0);
        return opOf(DtaOp::Nand2, r0, r1);
      case CellKind::Nor2:
        if (c1(r0) || c1(r1))
            return refTo(kRefC0);
        if (c0(r0) && c0(r1))
            return refTo(kRefC1);
        if (c0(r0))
            return opOf(DtaOp::Not, r1);
        if (c0(r1) || r0 == r1)
            return opOf(DtaOp::Not, r0);
        return opOf(DtaOp::Nor2, r0, r1);
      case CellKind::Mux2:
        // Operands (sel=r0, a0=r1, b1=r2): sel ? b1 : a0.
        if (c0(r0))
            return refTo(r1);
        if (c1(r0))
            return refTo(r2);
        if (r1 == r2)
            return refTo(r1);
        if (c0(r1) && c1(r2))
            return refTo(r0);
        if (c1(r1) && c0(r2))
            return opOf(DtaOp::Not, r0);
        if (c0(r1))
            return opOf(DtaOp::And2, r0, r2);
        if (c1(r2))
            return opOf(DtaOp::Or2, r0, r1);
        return opOf(DtaOp::Mux2, r0, r1, r2);
      case CellKind::Maj3:
        // Any equal pair dominates: maj(a, a, c) = a.
        if (r0 == r1 || r0 == r2)
            return refTo(r0);
        if (r1 == r2)
            return refTo(r1);
        // Opposite constants cancel: maj(0, 1, x) = x.
        if ((c0(r0) && c1(r1)) || (c1(r0) && c0(r1)))
            return refTo(r2);
        if ((c0(r0) && c1(r2)) || (c1(r0) && c0(r2)))
            return refTo(r1);
        if ((c0(r1) && c1(r2)) || (c1(r1) && c0(r2)))
            return refTo(r0);
        if (c0(r0))
            return opOf(DtaOp::And2, r1, r2);
        if (c0(r1))
            return opOf(DtaOp::And2, r0, r2);
        if (c0(r2))
            return opOf(DtaOp::And2, r0, r1);
        if (c1(r0))
            return opOf(DtaOp::Or2, r1, r2);
        if (c1(r1))
            return opOf(DtaOp::Or2, r0, r2);
        if (c1(r2))
            return opOf(DtaOp::Or2, r0, r1);
        return opOf(DtaOp::Maj3, r0, r1, r2);
      default:
        panic("foldCell: unexpected cell kind %d",
              static_cast<int>(kind));
    }
}

} // namespace

DtaProgram
compileDtaProgram(const Netlist &nl, const DelayAnnotation &annot,
                  double delayScale, double captureTimePs)
{
    const size_t n = nl.numCells();
    const auto &cells = nl.cells();
    const auto outs = nl.flatOutputs();

    DtaProgram p;
    p.cellsTotal = n;
    p.clkToQPs = annot.library().clkToQPs * delayScale;
    p.captureTimePs = captureTimePs;

    std::vector<double> delays = annot.delays();
    for (auto &d : delays)
        d *= delayScale;

    // ---- capture-risky cone + remaining static path ----------------
    // Arithmetic-identical to LaneDta::rebuildRiskyCone: the same
    // forward/backward double recurrences decide the same risky set
    // and the same pruning constants.
    std::vector<double> staticArr(n, 0.0), remaining(n, 0.0);
    std::vector<uint8_t> risky(n, 0);
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input) {
            staticArr[id] = p.clkToQPs;
            continue;
        }
        double worst = 0.0;
        unsigned ar = cellArity(cell.kind);
        for (unsigned i = 0; i < ar; ++i)
            worst = std::max(worst, staticArr[cell.fanin[i]]);
        staticArr[id] = worst + delays[id];
    }
    for (NetId id = static_cast<NetId>(n); id-- > 0;) {
        double through = remaining[id] + delays[id];
        unsigned ar = cellArity(cells[id].kind);
        for (unsigned i = 0; i < ar; ++i) {
            NetId fi = cells[id].fanin[i];
            remaining[fi] = std::max(remaining[fi], through);
        }
    }
    for (NetId id = 0; id < n; ++id) {
        risky[id] = staticArr[id] + remaining[id] > captureTimePs;
        p.riskyCells += risky[id];
    }

    // ---- value folding (constants, copies, identities) -------------
    std::vector<NetId> ref(n);    ///< value representative per cell
    std::vector<Folded> folded(n);
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        switch (cell.kind) {
          case CellKind::Input:
            ref[id] = id;
            folded[id] = opOf(DtaOp::Input, id);
            break;
          case CellKind::Const0:
            ref[id] = kRefC0;
            break;
          case CellKind::Const1:
            ref[id] = kRefC1;
            break;
          default: {
            unsigned ar = cellArity(cell.kind);
            NetId r0 = ref[cell.fanin[0]];
            NetId r1 = ar > 1 ? ref[cell.fanin[1]] : invalidNet;
            NetId r2 = ar > 2 ? ref[cell.fanin[2]] : invalidNet;
            Folded f = foldCell(cell.kind, r0, r1, r2);
            folded[id] = f;
            ref[id] = f.kind == Folded::Kind::Ref ? f.ops[0] : id;
            if (f.kind == Folded::Kind::Ref ||
                cells[id].kind == CellKind::Buf)
                ++p.cellsFolded;
            break;
          }
        }
    }

    // ---- timing liveness -------------------------------------------
    // A cell's toggles matter only if they can be non-zero (risky and
    // not constant-valued) and can reach a flat output through risky
    // fanin edges — the transposed closure of LaneDta's sparse pass.
    // Cells outside this closure are visited by the interpreter but
    // can never change a captured bit; dropping them is pure savings.
    auto canToggle = [&](NetId id) {
        return risky[id] && !isConstRef(ref[id]);
    };
    std::vector<uint8_t> timingLive(n, 0);
    std::vector<NetId> stack;
    for (NetId net : outs) {
        if (canToggle(net) && !timingLive[net]) {
            timingLive[net] = 1;
            stack.push_back(net);
        }
    }
    while (!stack.empty()) {
        NetId id = stack.back();
        stack.pop_back();
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input)
            continue;
        unsigned ar = cellArity(cell.kind);
        for (unsigned i = 0; i < ar; ++i) {
            NetId fi = cell.fanin[i];
            if (canToggle(fi) && !timingLive[fi]) {
                timingLive[fi] = 1;
                stack.push_back(fi);
            }
        }
    }

    // Toggle-arena and arrival rows, in topological order so the
    // dirty list the value sweep builds is visit-ordered.
    std::vector<uint32_t> trowOf(n, kDtaNone), arowOf(n, kDtaNone);
    uint32_t nextTrow = 0, nextArow = 1;
    for (NetId id = 0; id < n; ++id) {
        if (!timingLive[id])
            continue;
        trowOf[id] = nextTrow++;
        if (cells[id].kind != CellKind::Input)
            arowOf[id] = nextArow++;
    }
    p.numToggleRows = nextTrow;
    p.numArrivalRows = nextArow;

    // ---- value liveness (dead-code elimination) --------------------
    // Seeds: flat-output representatives plus the representative of
    // every timing-live cell (its toggle store reads that slot).
    std::vector<uint8_t> valueLive(n, 0);
    bool constNeeded[2] = {false, false};
    auto markRef = [&](NetId r) {
        if (r == kRefC0)
            constNeeded[0] = true;
        else if (r == kRefC1)
            constNeeded[1] = true;
        else
            valueLive[r] = 1;
    };
    for (NetId net : outs)
        markRef(ref[net]);
    for (NetId id = 0; id < n; ++id)
        if (timingLive[id])
            markRef(ref[id]);
    for (NetId id = static_cast<NetId>(n); id-- > 0;) {
        if (!valueLive[id])
            continue;
        const Folded &f = folded[id];
        if (f.kind == Folded::Kind::Op && f.op != DtaOp::Input)
            for (unsigned i = 0; i < f.nops; ++i)
                markRef(f.ops[i]);
    }

    // ---- emission ---------------------------------------------------
    // Pseudo-instructions keyed by cell id (constants get the two
    // virtual ids n and n+1); register allocation maps them to slots
    // in a second pass.
    struct PInsn
    {
        DtaOp op;
        NetId dst;
        NetId src[3] = {invalidNet, invalidNet, invalidNet};
        uint8_t nsrc = 0;
        uint32_t inputIdx = kDtaNone;
        uint32_t trow = kDtaNone;
        uint32_t tnode = kDtaNone;
    };
    const NetId vC0 = static_cast<NetId>(n);
    const NetId vC1 = static_cast<NetId>(n) + 1;
    auto slotKey = [&](NetId r) {
        return r == kRefC0 ? vC0 : (r == kRefC1 ? vC1 : r);
    };
    std::vector<PInsn> pins;
    pins.reserve(n / 2 + 2);
    if (constNeeded[0])
        pins.push_back(PInsn{DtaOp::Const0, vC0});
    if (constNeeded[1])
        pins.push_back(PInsn{DtaOp::Const1, vC1});

    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        const bool tl = timingLive[id] != 0;
        if (cell.kind == CellKind::Input) {
            if (!valueLive[id])
                continue;
            PInsn pi{DtaOp::Input, id};
            pi.inputIdx = id; // inputs are cells [0, numInputs)
            pi.trow = trowOf[id];
            pins.push_back(pi);
            continue;
        }
        if (!tl && !valueLive[id])
            continue;

        uint32_t tnode = kDtaNone;
        if (tl) {
            tnode = static_cast<uint32_t>(p.tnodes.size());
            DtaTimingNode nd;
            nd.delayPs = delays[id];
            nd.remainingPs = remaining[id];
            nd.trow = trowOf[id];
            nd.arow = arowOf[id];
            nd.orphanLate =
                delays[id] + remaining[id] > captureTimePs;
            nd.faninBegin = static_cast<uint32_t>(p.tfanins.size());
            unsigned ar = cellArity(cell.kind), nf = 0;
            for (unsigned i = 0; i < ar; ++i) {
                NetId fi = cell.fanin[i];
                if (!canToggle(fi))
                    continue; // toggle plane provably zero
                uint32_t arow = cells[fi].kind == CellKind::Input
                                    ? 0
                                    : arowOf[fi];
                p.tfanins.push_back(DtaTimingFanin{trowOf[fi], arow});
                ++nf;
            }
            nd.faninCount = nf;
            p.tnodes.push_back(nd);
        }

        const Folded &f = folded[id];
        if (f.kind == Folded::Kind::Op) {
            PInsn pi{f.op, id};
            pi.nsrc = f.nops;
            for (unsigned i = 0; i < f.nops; ++i)
                pi.src[i] = slotKey(f.ops[i]);
            pi.trow = tl ? trowOf[id] : kDtaNone;
            pi.tnode = tnode;
            pins.push_back(pi);
        } else {
            // Folded to an alias but still timing-live: materialize
            // only the toggle row, reading the representative's slot.
            panic_if(!tl, "dta codegen: dead alias emitted");
            NetId tgt = slotKey(ref[id]);
            PInsn pi{DtaOp::Copy, tgt};
            pi.src[0] = tgt;
            pi.nsrc = 1;
            pi.trow = trowOf[id];
            pi.tnode = tnode;
            pins.push_back(pi);
        }
    }
    p.cellsLive = pins.size();

    // ---- linear-scan slot allocation -------------------------------
    constexpr size_t kPinned = std::numeric_limits<size_t>::max();
    std::vector<size_t> lastUse(n + 2, 0);
    for (size_t i = 0; i < pins.size(); ++i) {
        lastUse[pins[i].dst] = i;
        for (unsigned s = 0; s < pins[i].nsrc; ++s)
            lastUse[pins[i].src[s]] = i;
    }
    for (NetId net : outs)
        lastUse[slotKey(ref[net])] = kPinned; // read after the sweep

    std::vector<uint32_t> slotOf(n + 2, kDtaNone);
    std::vector<uint32_t> freeSlots;
    uint32_t nextSlot = 0;
    p.insns.reserve(pins.size());
    for (size_t i = 0; i < pins.size(); ++i) {
        const PInsn &pi = pins[i];
        DtaInsn in;
        in.op = pi.op;
        in.trow = pi.trow;
        in.tnode = pi.tnode;
        if (pi.op == DtaOp::Input) {
            in.a = pi.inputIdx;
        } else {
            uint32_t srcSlot[3] = {kDtaNone, kDtaNone, kDtaNone};
            for (unsigned s = 0; s < pi.nsrc; ++s) {
                srcSlot[s] = slotOf[pi.src[s]];
                panic_if(srcSlot[s] == kDtaNone,
                         "dta codegen: operand slot unassigned");
            }
            in.a = srcSlot[0];
            in.b = srcSlot[1];
            in.c = srcSlot[2];
        }
        if (pi.op == DtaOp::Copy) {
            slotOf[pi.dst] = in.a; // alias: no fresh slot
        } else if (slotOf[pi.dst] == kDtaNone) {
            // Elementwise kernels read each operand word before the
            // matching destination store, so reusing an operand's
            // just-freed slot as the destination is safe.
            if (!freeSlots.empty()) {
                slotOf[pi.dst] = freeSlots.back();
                freeSlots.pop_back();
            } else {
                slotOf[pi.dst] = nextSlot++;
            }
        }
        in.dst = slotOf[pi.dst];
        p.insns.push_back(in);

        for (unsigned s = 0; s < pi.nsrc; ++s)
            if (lastUse[pi.src[s]] == i && pi.src[s] != pi.dst)
                freeSlots.push_back(slotOf[pi.src[s]]);
        if (lastUse[pi.dst] == i)
            freeSlots.push_back(slotOf[pi.dst]);
    }
    p.numSlots = nextSlot;

    // ---- outputs ----------------------------------------------------
    p.outSlot.resize(outs.size());
    for (size_t k = 0; k < outs.size(); ++k) {
        NetId net = outs[k];
        uint32_t slot = slotOf[slotKey(ref[net])];
        panic_if(slot == kDtaNone,
                 "dta codegen: output %zu has no value slot", k);
        p.outSlot[k] = slot;
        if (canToggle(net)) {
            uint32_t arow = cells[net].kind == CellKind::Input
                                ? 0
                                : arowOf[net];
            p.touts.push_back(DtaTimingOut{
                static_cast<uint32_t>(k), trowOf[net], arow});
        }
    }
    return p;
}

} // namespace tea::circuit
