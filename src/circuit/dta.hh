/**
 * @file
 * Dynamic timing analysis (DTA) engines.
 *
 * DTA answers the question gate-level simulation answers in the paper's
 * flow: given the datapath state left by the *previous* operation and
 * the inputs of the *current* one, which output bits have settled by the
 * capture time? Bits still in flight latch stale values — exactly the
 * paper's XOR-against-golden timing-error bitmask.
 *
 * Two engines share one interface:
 *  - EventDrivenDta: exact transport-delay event simulation; models
 *    glitch trains and per-bit waveforms. The reference engine.
 *  - LevelizedDta: one topological pass computing (old value, new value,
 *    last-arrival estimate) per net; ~1-2 orders of magnitude faster and
 *    hazard-blind. Campaign-scale model building uses this engine; the
 *    ablation bench quantifies its disagreement with the exact one.
 */

#ifndef TEA_CIRCUIT_DTA_HH
#define TEA_CIRCUIT_DTA_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/netlist.hh"

namespace tea::circuit {

/** Outcome of one input-transition simulation. */
struct DtaResult
{
    /** Final (settled) value of every output bit, flat bus order. */
    std::vector<bool> settled;
    /** Value latched at the capture time, flat bus order. */
    std::vector<bool> captured;
    /** Last transition time per output bit (0 for stable bits). */
    std::vector<double> lastTransitionPs;
    /** Max last-transition over all outputs: the dynamic path delay. */
    double maxArrivalPs = 0.0;
    /** Processed event count (exact engine only; 0 for levelized). */
    size_t events = 0;

    /** True if any output bit latched a wrong value. */
    bool anyError() const;
    /**
     * Error bitmask over the output bits (captured ^ settled). Panics
     * when the netlist has more than 64 flat outputs: a wider result
     * cannot be represented, and silently dropping the extra bits
     * would corrupt error statistics.
     */
    uint64_t errorMask64() const;
};

/**
 * Engine interface. An engine instance is bound to one netlist, one
 * delay annotation, and one voltage operating point (delayScale); it is
 * stateful (scratch buffers) and not thread-safe.
 */
class DtaEngine
{
  public:
    virtual ~DtaEngine() = default;

    /**
     * Simulate the input transition prev -> cur and capture outputs at
     * captureTimePs (typically clock period minus setup).
     */
    virtual DtaResult run(const std::vector<bool> &prev,
                          const std::vector<bool> &cur,
                          double captureTimePs) = 0;

    virtual const Netlist &netlist() const = 0;
};

/** Exact transport-delay event-driven simulator. */
class EventDrivenDta : public DtaEngine
{
  public:
    EventDrivenDta(const Netlist &nl, const DelayAnnotation &annot,
                   double delayScale = 1.0);

    DtaResult run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur,
                  double captureTimePs) override;

    const Netlist &netlist() const override { return nl_; }

  private:
    const Netlist &nl_;
    std::vector<double> delays_; ///< pre-scaled per-cell delays
    double clkToQ_;
};

/** Fast one-pass last-arrival approximation. */
class LevelizedDta : public DtaEngine
{
  public:
    LevelizedDta(const Netlist &nl, const DelayAnnotation &annot,
                 double delayScale = 1.0);

    DtaResult run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur,
                  double captureTimePs) override;

    const Netlist &netlist() const override { return nl_; }

  private:
    const Netlist &nl_;
    std::vector<double> delays_;
    double clkToQ_;
    // Scratch buffers reused across run() calls. Arrival accumulates
    // in double so it classifies capture-edge samples exactly like the
    // event-driven engine.
    std::vector<uint8_t> oldVal_, newVal_;
    std::vector<double> arrival_;
};

/**
 * Result of one lane batch: per flat output bit, one 64-bit plane whose
 * bit l is lane l's value. Bits at positions >= the batch's lane count
 * are unspecified and must be ignored.
 */
struct LaneBatch
{
    std::vector<uint64_t> settled;  ///< plane per flat output bit
    std::vector<uint64_t> captured; ///< plane per flat output bit
    /**
     * Worst dynamic arrival per lane, computed over the capture-risky
     * cone only: bit-identical to the scalar engine's maxArrivalPs
     * whenever it exceeds the batch's capture time (i.e. for every
     * faulty lane), otherwise a lower bound that may be 0.
     */
    std::array<double, 64> maxArrivalPs{};
};

/**
 * Bit-parallel (SWAR) levelized DTA: up to 64 independent samples are
 * packed into one uint64_t lane word per net, so the old/new value
 * planes of the whole batch are evaluated with bitwise ops in a single
 * structure-of-arrays sweep over the topologically ordered netlist.
 * The arrival/capture timing pass then visits only the set toggle
 * bits of each cell, restricted to the *capture-risky cone*: cells
 * lying on some static path longer than the capture time. A
 * dynamically late chain is itself an over-long static path, so every
 * cell of it is in the cone — restricting the recurrence to the cone
 * (and pruning toggles whose arrival plus remaining static path can
 * no longer beat the capture edge) changes no capture decision while
 * skipping the dominant share of toggles that could never be late.
 *
 * Exactness: per lane this computes the same recurrence as
 * LevelizedDta::run over the same pre-scaled double delays in the same
 * order, restricted to the risky cone, so settled/captured planes —
 * and therefore error masks — are bit-identical to 64 scalar run()
 * calls. Per-lane maxArrivalPs is exact whenever it exceeds the
 * capture time (every faulty lane) and a lower bound otherwise (see
 * LaneBatch). EventDrivenDta remains the exact hazard-aware reference;
 * this engine batches the levelized approximation.
 *
 * Like the scalar engines, an instance is bound to one netlist, one
 * annotation, and one delay scale, owns scratch state, and is not
 * thread-safe; the returned batch references that scratch and is valid
 * until the next call.
 */
class LaneDta
{
  public:
    static constexpr unsigned kMaxLanes = 64;

    LaneDta(const Netlist &nl, const DelayAnnotation &annot,
            double delayScale = 1.0);

    /**
     * Simulate `lanes` input transitions prev -> cur at once. prev/cur
     * hold one plane per primary input; lane l of the batch is the
     * scalar run(prev bit l, cur bit l, captureTimePs).
     */
    const LaneBatch &runBatch(const std::vector<uint64_t> &prev,
                              const std::vector<uint64_t> &cur,
                              double captureTimePs, unsigned lanes);

    /**
     * Pure functional plane evaluation (zero-delay golden values):
     * returns one settled plane per flat output bit. The reference is
     * into scratch, valid until the next call.
     */
    const std::vector<uint64_t> &evalBatch(const std::vector<uint64_t> &cur);

    const Netlist &netlist() const { return nl_; }

  private:
    const Netlist &nl_;
    std::vector<double> delays_; ///< pre-scaled per-cell delays
    double clkToQ_;
    std::vector<NetId> outs_;    ///< cached flat output nets
    std::vector<uint8_t> arity_; ///< cached per-cell fanin count
    /**
     * Per-cell capture-risky cone mask (all-ones when the cell sits on
     * a static path longer than the cached capture time, else 0),
     * rebuilt lazily when runBatch sees a new capture time.
     */
    std::vector<uint64_t> riskyMask_;
    /**
     * Longest static path from each cell's output to any flat output
     * (capture-side slack complement); used by the timing pass to drop
     * a toggle as soon as its dynamic arrival plus this remaining path
     * can no longer exceed the capture time.
     */
    std::vector<double> remaining_;
    double riskyCaptureTimePs_ = -1.0;
    void rebuildRiskyCone(double captureTimePs);
    // Scratch reused across calls.
    std::vector<uint64_t> oldPlane_, newPlane_, togglePlane_;
    std::vector<NetId> toggled_; ///< non-input cells toggling in any lane
    /**
     * Per-cell row index into laneArrival_ (row 0 is the shared
     * constant clk-to-Q row every input maps to). Only valid for
     * inputs and cells in the current toggled_ set; the timing pass
     * guards every read with a toggle-bit test, so stale entries for
     * non-toggling cells are never dereferenced.
     */
    std::vector<uint32_t> tpos_;
    /** 64-lane arrival rows, compacted over the toggled set. */
    std::vector<double> laneArrival_;
    std::vector<uint64_t> evalPlane_, evalOut_;
    LaneBatch batch_;
};

} // namespace tea::circuit

#endif // TEA_CIRCUIT_DTA_HH
