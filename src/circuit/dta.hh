/**
 * @file
 * Dynamic timing analysis (DTA) engines.
 *
 * DTA answers the question gate-level simulation answers in the paper's
 * flow: given the datapath state left by the *previous* operation and
 * the inputs of the *current* one, which output bits have settled by the
 * capture time? Bits still in flight latch stale values — exactly the
 * paper's XOR-against-golden timing-error bitmask.
 *
 * Two engines share one interface:
 *  - EventDrivenDta: exact transport-delay event simulation; models
 *    glitch trains and per-bit waveforms. The reference engine.
 *  - LevelizedDta: one topological pass computing (old value, new value,
 *    last-arrival estimate) per net; ~1-2 orders of magnitude faster and
 *    hazard-blind. Campaign-scale model building uses this engine; the
 *    ablation bench quantifies its disagreement with the exact one.
 */

#ifndef TEA_CIRCUIT_DTA_HH
#define TEA_CIRCUIT_DTA_HH

#include <memory>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/netlist.hh"

namespace tea::circuit {

/** Outcome of one input-transition simulation. */
struct DtaResult
{
    /** Final (settled) value of every output bit, flat bus order. */
    std::vector<bool> settled;
    /** Value latched at the capture time, flat bus order. */
    std::vector<bool> captured;
    /** Last transition time per output bit (0 for stable bits). */
    std::vector<double> lastTransitionPs;
    /** Max last-transition over all outputs: the dynamic path delay. */
    double maxArrivalPs = 0.0;
    /** Processed event count (exact engine only; 0 for levelized). */
    size_t events = 0;

    /** True if any output bit latched a wrong value. */
    bool anyError() const;
    /** Error bitmask over the first 64 output bits (captured ^ settled). */
    uint64_t errorMask64() const;
};

/**
 * Engine interface. An engine instance is bound to one netlist, one
 * delay annotation, and one voltage operating point (delayScale); it is
 * stateful (scratch buffers) and not thread-safe.
 */
class DtaEngine
{
  public:
    virtual ~DtaEngine() = default;

    /**
     * Simulate the input transition prev -> cur and capture outputs at
     * captureTimePs (typically clock period minus setup).
     */
    virtual DtaResult run(const std::vector<bool> &prev,
                          const std::vector<bool> &cur,
                          double captureTimePs) = 0;

    virtual const Netlist &netlist() const = 0;
};

/** Exact transport-delay event-driven simulator. */
class EventDrivenDta : public DtaEngine
{
  public:
    EventDrivenDta(const Netlist &nl, const DelayAnnotation &annot,
                   double delayScale = 1.0);

    DtaResult run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur,
                  double captureTimePs) override;

    const Netlist &netlist() const override { return nl_; }

  private:
    const Netlist &nl_;
    std::vector<double> delays_; ///< pre-scaled per-cell delays
    double clkToQ_;
};

/** Fast one-pass last-arrival approximation. */
class LevelizedDta : public DtaEngine
{
  public:
    LevelizedDta(const Netlist &nl, const DelayAnnotation &annot,
                 double delayScale = 1.0);

    DtaResult run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur,
                  double captureTimePs) override;

    const Netlist &netlist() const override { return nl_; }

  private:
    const Netlist &nl_;
    std::vector<double> delays_;
    double clkToQ_;
    // Scratch buffers reused across run() calls.
    std::vector<uint8_t> oldVal_, newVal_;
    std::vector<float> arrival_;
};

} // namespace tea::circuit

#endif // TEA_CIRCUIT_DTA_HH
