/**
 * AVX-512 build of the compiled-DTA kernels. Compiled with
 * -mavx512f/bw/dq (see CMakeLists.txt); only referenced when runtime
 * dispatch selects it.
 */

#if defined(TEA_SIMD_AVX512)

#define TEA_DTA_NS kernels_avx512
#define TEA_DTA_ISA_LEVEL 2
#include "circuit/dta_kernels_impl.hh"

namespace tea::circuit {

const DtaKernelTable &
dtaKernelsAvx512()
{
    return kernels_avx512::kernels();
}

} // namespace tea::circuit

#endif // TEA_SIMD_AVX512
