/**
 * @file
 * Composite combinational circuit generators.
 *
 * A Builder wraps a Netlist under construction and emits the datapath
 * blocks the FPU stages are assembled from: bitwise buses, adder styles
 * (ripple for area, Kogge-Stone for speed), barrel shifters with sticky
 * collection, leading-zero counters, carry-save array multipliers and a
 * restoring divider array. All blocks take and return LSB-first buses.
 */

#ifndef TEA_CIRCUIT_BUILDERS_HH
#define TEA_CIRCUIT_BUILDERS_HH

#include <cstdint>
#include <span>

#include "circuit/netlist.hh"

namespace tea::circuit {

class Builder
{
  public:
    explicit Builder(Netlist &nl);

    Netlist &netlist() { return nl_; }

    // -- primitive helpers -------------------------------------------
    NetId c0();
    NetId c1();
    NetId constBit(bool v) { return v ? c1() : c0(); }
    NetId inv(NetId a);
    NetId buf(NetId a);
    NetId and2(NetId a, NetId b);
    NetId or2(NetId a, NetId b);
    NetId xor2(NetId a, NetId b);
    NetId nand2(NetId a, NetId b);
    NetId nor2(NetId a, NetId b);
    NetId xnor2(NetId a, NetId b);
    /** 2:1 mux — returns a when sel=0, b when sel=1. */
    NetId mux2(NetId sel, NetId a, NetId b);
    NetId maj3(NetId a, NetId b, NetId c);

    /** Balanced reduction trees. */
    NetId andTree(std::span<const NetId> xs);
    NetId orTree(std::span<const NetId> xs);
    NetId xorTree(std::span<const NetId> xs);
    NetId andTree(const Bus &xs) { return andTree(std::span(xs)); }
    NetId orTree(const Bus &xs) { return orTree(std::span(xs)); }
    NetId xorTree(const Bus &xs) { return xorTree(std::span(xs)); }

    // -- bus helpers --------------------------------------------------
    Bus constBus(uint64_t value, unsigned width);
    Bus invBus(const Bus &a);
    Bus and2Bus(const Bus &a, const Bus &b);
    Bus or2Bus(const Bus &a, const Bus &b);
    Bus xor2Bus(const Bus &a, const Bus &b);
    /** Per-bit mux: sel=0 -> a, sel=1 -> b. */
    Bus mux2Bus(NetId sel, const Bus &a, const Bus &b);
    /** AND every bit of a with the single enable bit. */
    Bus maskBus(const Bus &a, NetId enable);
    Bus zeroExtend(const Bus &a, unsigned width);
    Bus truncate(const Bus &a, unsigned width);
    /** Static left shift (zeros shifted in). */
    Bus shiftLeftConst(const Bus &a, unsigned n, unsigned width);

    // -- arithmetic ----------------------------------------------------
    struct FullAdderOut
    {
        NetId sum;
        NetId carry;
    };
    FullAdderOut halfAdder(NetId a, NetId b);
    FullAdderOut fullAdder(NetId a, NetId b, NetId c);

    struct AddOut
    {
        Bus sum;     ///< same width as the inputs
        NetId carry; ///< carry out
    };
    /** Ripple-carry adder; cin may be invalidNet for 0. */
    AddOut rippleAdd(const Bus &a, const Bus &b, NetId cin = invalidNet);
    /** Kogge-Stone parallel-prefix adder (log-depth). */
    AddOut koggeStoneAdd(const Bus &a, const Bus &b,
                         NetId cin = invalidNet);
    /**
     * Carry-select adder: ripple over the low `lowBits`, duplicated
     * ripple + mux over the rest. Depth ~ max(lowBits, n-lowBits) full
     * adders — a tunable middle ground between ripple and Kogge-Stone.
     */
    AddOut carrySelectAdd(const Bus &a, const Bus &b, NetId cin,
                          unsigned lowBits);
    /**
     * a - b as two's complement using the given adder style.
     * carry output is the NOT-borrow (1 when a >= b).
     */
    AddOut subtract(const Bus &a, const Bus &b, bool fast = true);
    /** a + 1 when en, else a (ripple carry chain). */
    Bus incrementer(const Bus &a, NetId en);
    /** a + 1 when en, else a (log-depth parallel prefix). */
    Bus fastIncrementer(const Bus &a, NetId en);
    /** Two's-complement negate. */
    Bus negate(const Bus &a);

    // -- comparisons ---------------------------------------------------
    NetId equalBus(const Bus &a, const Bus &b);
    NetId isZeroBus(const Bus &a);
    /** Unsigned a < b. */
    NetId lessUnsigned(const Bus &a, const Bus &b);
    /** Unsigned a >= b. */
    NetId geUnsigned(const Bus &a, const Bus &b);

    // -- shifters --------------------------------------------------------
    /** Logical barrel shift right by a variable amount bus. */
    Bus shiftRightLogical(const Bus &a, const Bus &amount);
    struct ShiftStickyOut
    {
        Bus out;
        NetId sticky; ///< OR of all shifted-out bits
    };
    /** Barrel shift right collecting shifted-out bits into sticky. */
    ShiftStickyOut shiftRightSticky(const Bus &a, const Bus &amount);
    /** Logical barrel shift left by a variable amount bus. */
    Bus shiftLeftLogical(const Bus &a, const Bus &amount);

    // -- priority logic ---------------------------------------------------
    /**
     * Leading-zero count of the bus (MSB = bus.back()). Output width is
     * ceil(log2(width+1)); all-zero input yields width.
     */
    Bus leadingZeroCount(const Bus &a);

    // -- big datapath blocks ----------------------------------------------
    /**
     * Unsigned carry-save array multiplier: result width =
     * a.size() + b.size(). rowsOut (optional) receives the row partial
     * sums so callers can pipeline the array across stages.
     */
    Bus arrayMultiplier(const Bus &a, const Bus &b);

    /**
     * One carry-save accumulation step of an array multiplier; used by
     * the FPU to split the multiply array across pipeline stages.
     * State is {sums, carries, a, b} buses packed by the caller.
     */
    struct CsaState
    {
        Bus sum;   ///< partial sum, width a+b
        Bus carry; ///< partial carry, width a+b
    };
    /** Fresh all-zero CSA state of the given width. */
    CsaState csaInit(unsigned width);
    /** Accumulate partial product row `row` (a AND b[row], shifted). */
    CsaState csaAddRow(const CsaState &st, const Bus &a, NetId bBit,
                       unsigned row);
    /** Resolve carry-save state into a normal binary number. */
    Bus csaResolve(const CsaState &st, bool fast = true);

    /**
     * Fractional restoring divider: numerator in [den, 2*den), both
     * width w; produces qBits quotient bits (MSB guaranteed 1) equal to
     * floor(num * 2^(qBits-1) / den) plus a remainder-nonzero sticky.
     * rowsPerCall bounds nothing here; the FPU pipelines rows itself via
     * divStep().
     */
    struct DivOut
    {
        Bus quotient;
        NetId sticky;
    };
    DivOut restoringDivider(const Bus &num, const Bus &den,
                            unsigned qBits);

    /**
     * One restoring-division row: given the running remainder (width
     * w+1) and divisor (width w), produce the quotient bit and the next
     * remainder (width w+1, already shifted for the next row).
     */
    struct DivRowOut
    {
        NetId qBit;
        Bus nextRem;
    };
    DivRowOut divRow(const Bus &rem, const Bus &den);

  private:
    Netlist &nl_;
    NetId c0_ = invalidNet;
    NetId c1_ = invalidNet;
};

} // namespace tea::circuit

#endif // TEA_CIRCUIT_BUILDERS_HH
