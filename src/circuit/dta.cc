#include "circuit/dta.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"


namespace tea::circuit {



bool
DtaResult::anyError() const
{
    for (size_t i = 0; i < settled.size(); ++i)
        if (settled[i] != captured[i])
            return true;
    return false;
}

uint64_t
DtaResult::errorMask64() const
{
    panic_if(settled.size() > 64,
             "errorMask64: %zu output bits do not fit a 64-bit mask",
             settled.size());
    uint64_t mask = 0;
    size_t n = settled.size();
    for (size_t i = 0; i < n; ++i)
        if (settled[i] != captured[i])
            mask |= 1ULL << i;
    return mask;
}

namespace {

/** Clamp event explosion: a runaway glitch train is a bug. */
constexpr size_t kMaxEvents = 100'000'000;

} // namespace

EventDrivenDta::EventDrivenDta(const Netlist &nl,
                               const DelayAnnotation &annot,
                               double delayScale)
    : nl_(nl), delays_(annot.delays()),
      clkToQ_(annot.library().clkToQPs * delayScale)
{
    for (auto &d : delays_)
        d *= delayScale;
}

DtaResult
EventDrivenDta::run(const std::vector<bool> &prev,
                    const std::vector<bool> &cur, double captureTimePs)
{
    panic_if(prev.size() != nl_.numInputs() ||
                 cur.size() != nl_.numInputs(),
             "EventDrivenDta: bad input vector size");

    // Steady state of the previous operation.
    std::vector<bool> values = evaluate(nl_, prev);
    std::vector<bool> capturedVals = values;
    std::vector<double> lastTransition(nl_.numCells(), 0.0);

    struct Event
    {
        double time;
        uint64_t serial; // total order tie-break for determinism
        NetId cell;
        bool value;
        bool operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            return serial > o.serial;
        }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
    uint64_t serial = 0;

    for (NetId i = 0; i < nl_.numInputs(); ++i)
        if (cur[i] != prev[i])
            pq.push(Event{clkToQ_, serial++, i, cur[i]});

    const auto &fanouts = nl_.fanouts();
    const auto &cells = nl_.cells();
    size_t processed = 0;

    while (!pq.empty()) {
        Event ev = pq.top();
        pq.pop();
        if (values[ev.cell] == ev.value)
            continue; // superseded by an earlier opposite transition
        panic_if(++processed > kMaxEvents,
                 "event explosion in netlist '%s'", nl_.name().c_str());

        values[ev.cell] = ev.value;
        lastTransition[ev.cell] = ev.time;
        if (ev.time <= captureTimePs)
            capturedVals[ev.cell] = ev.value;

        for (NetId f : fanouts[ev.cell]) {
            const Cell &cell = cells[f];
            bool a = cell.fanin[0] != invalidNet && values[cell.fanin[0]];
            bool b = cell.fanin[1] != invalidNet && values[cell.fanin[1]];
            bool c = cell.fanin[2] != invalidNet && values[cell.fanin[2]];
            bool out = evalCell(cell.kind, a, b, c);
            pq.push(Event{ev.time + delays_[f], serial++, f, out});
        }
    }

    DtaResult res;
    auto outs = nl_.flatOutputs();
    res.settled.reserve(outs.size());
    res.captured.reserve(outs.size());
    res.lastTransitionPs.reserve(outs.size());
    for (NetId n : outs) {
        res.settled.push_back(values[n]);
        res.captured.push_back(capturedVals[n]);
        res.lastTransitionPs.push_back(lastTransition[n]);
        res.maxArrivalPs = std::max(res.maxArrivalPs, lastTransition[n]);
    }
    res.events = processed;
    return res;
}

LevelizedDta::LevelizedDta(const Netlist &nl, const DelayAnnotation &annot,
                           double delayScale)
    : nl_(nl), delays_(annot.delays()),
      clkToQ_(annot.library().clkToQPs * delayScale)
{
    for (auto &d : delays_)
        d *= delayScale;
}

DtaResult
LevelizedDta::run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur, double captureTimePs)
{
    panic_if(prev.size() != nl_.numInputs() ||
                 cur.size() != nl_.numInputs(),
             "LevelizedDta: bad input vector size");

    size_t n = nl_.numCells();
    oldVal_.resize(n);
    newVal_.resize(n);
    arrival_.resize(n);

    const auto &cells = nl_.cells();
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input) {
            oldVal_[id] = prev[id];
            newVal_[id] = cur[id];
            arrival_[id] = (prev[id] != cur[id]) ? clkToQ_ : 0.0;
            continue;
        }
        bool oa = cell.fanin[0] != invalidNet && oldVal_[cell.fanin[0]];
        bool ob = cell.fanin[1] != invalidNet && oldVal_[cell.fanin[1]];
        bool oc = cell.fanin[2] != invalidNet && oldVal_[cell.fanin[2]];
        bool na = cell.fanin[0] != invalidNet && newVal_[cell.fanin[0]];
        bool nb = cell.fanin[1] != invalidNet && newVal_[cell.fanin[1]];
        bool nc = cell.fanin[2] != invalidNet && newVal_[cell.fanin[2]];
        bool ov, nv;
        if (cell.kind == CellKind::Const0) {
            ov = nv = false;
        } else if (cell.kind == CellKind::Const1) {
            ov = nv = true;
        } else {
            ov = evalCell(cell.kind, oa, ob, oc);
            nv = evalCell(cell.kind, na, nb, nc);
        }
        oldVal_[id] = ov;
        newVal_[id] = nv;
        if (ov == nv) {
            // Approximation: a stable output is assumed hazard-free.
            arrival_[id] = 0.0;
        } else {
            // Last arrival = slowest *changed* fanin plus own delay.
            double worst = 0.0;
            unsigned arity = cellArity(cell.kind);
            for (unsigned i = 0; i < arity; ++i) {
                NetId fi = cell.fanin[i];
                if (oldVal_[fi] != newVal_[fi])
                    worst = std::max(worst, arrival_[fi]);
            }
            arrival_[id] = worst + delays_[id];
        }
    }

    DtaResult res;
    auto outs = nl_.flatOutputs();
    res.settled.reserve(outs.size());
    res.captured.reserve(outs.size());
    res.lastTransitionPs.reserve(outs.size());
    for (NetId net : outs) {
        bool changed = oldVal_[net] != newVal_[net];
        double arr = changed ? arrival_[net] : 0.0;
        bool capturedBit =
            (changed && arr > captureTimePs) ? oldVal_[net] : newVal_[net];
        res.settled.push_back(newVal_[net]);
        res.captured.push_back(capturedBit);
        res.lastTransitionPs.push_back(arr);
        res.maxArrivalPs = std::max(res.maxArrivalPs, arr);
    }
    return res;
}

namespace {

/**
 * Bitwise plane evaluation of one cell function: each bit position is
 * an independent lane. Must agree with evalCell() lane by lane.
 */
inline uint64_t
evalCellPlane(CellKind kind, uint64_t a, uint64_t b, uint64_t c)
{
    switch (kind) {
      case CellKind::Buf:
        return a;
      case CellKind::Not:
        return ~a;
      case CellKind::And2:
        return a & b;
      case CellKind::Or2:
        return a | b;
      case CellKind::Xor2:
        return a ^ b;
      case CellKind::Nand2:
        return ~(a & b);
      case CellKind::Nor2:
        return ~(a | b);
      case CellKind::Xnor2:
        return ~(a ^ b);
      case CellKind::Mux2:
        return (a & c) | (~a & b); // sel ? b-input : a-input
      case CellKind::Maj3:
        return (a & b) | (a & c) | (b & c);
      default:
        panic("evalCellPlane: unexpected cell kind %d",
              static_cast<int>(kind));
    }
}

} // namespace

LaneDta::LaneDta(const Netlist &nl, const DelayAnnotation &annot,
                 double delayScale)
    : nl_(nl), delays_(annot.delays()),
      clkToQ_(annot.library().clkToQPs * delayScale),
      outs_(nl.flatOutputs())
{
    for (auto &d : delays_)
        d *= delayScale;
    arity_.reserve(nl_.numCells());
    for (const Cell &cell : nl_.cells())
        arity_.push_back(static_cast<uint8_t>(cellArity(cell.kind)));
}

void
LaneDta::rebuildRiskyCone(double captureTimePs)
{
    // A lane's dynamic arrival at an output is the static length of
    // some toggling chain, so an arrival can only exceed the capture
    // time along a chain whose static length does: every cell of such
    // a chain has staticArr + remaining > captureTimePs. Restricting
    // the timing recurrence to these cells preserves every capture
    // decision (the maximizing late chain survives intact) and skips
    // the toggles that could never be late.
    size_t n = nl_.numCells();
    std::vector<double> staticArr(n, 0.0);
    remaining_.assign(n, 0.0);
    const auto &cells = nl_.cells();
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input) {
            staticArr[id] = clkToQ_;
            continue;
        }
        double worst = 0.0;
        for (unsigned i = 0; i < arity_[id]; ++i)
            worst = std::max(worst, staticArr[cell.fanin[i]]);
        staticArr[id] = worst + delays_[id];
    }
    for (NetId id = static_cast<NetId>(n); id-- > 0;) {
        double through = remaining_[id] + delays_[id];
        for (unsigned i = 0; i < arity_[id]; ++i) {
            NetId fi = cells[id].fanin[i];
            remaining_[fi] = std::max(remaining_[fi], through);
        }
    }
    riskyMask_.resize(n);
    for (NetId id = 0; id < n; ++id)
        riskyMask_[id] =
            staticArr[id] + remaining_[id] > captureTimePs ? ~0ULL : 0;
    riskyCaptureTimePs_ = captureTimePs;
}

const LaneBatch &
LaneDta::runBatch(const std::vector<uint64_t> &prev,
                  const std::vector<uint64_t> &cur, double captureTimePs,
                  unsigned lanes)
{
    panic_if(prev.size() != nl_.numInputs() ||
                 cur.size() != nl_.numInputs(),
             "LaneDta: bad input plane count");
    panic_if(lanes == 0 || lanes > kMaxLanes, "LaneDta: bad lane count %u",
             lanes);

    size_t n = nl_.numCells();
    oldPlane_.resize(n);
    newPlane_.resize(n);
    togglePlane_.resize(n);
    toggled_.clear();
    if (tpos_.size() != n) {
        // Every input shares arrival row 0 (the constant clk-to-Q
        // row), so input cells never need a timing-pass visit.
        tpos_.assign(n, 0);
    }

    if (captureTimePs != riskyCaptureTimePs_)
        rebuildRiskyCone(captureTimePs);

    // Unused high lanes carry garbage; masking the toggle plane keeps
    // them out of the (expensive) timing pass and out of toggled_.
    const uint64_t laneMask =
        lanes == 64 ? ~0ULL : (1ULL << lanes) - 1;

    // SWAR value sweep: both value planes of every net in one pass.
    const auto &cells = nl_.cells();
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        uint64_t ov, nv;
        switch (cell.kind) {
          case CellKind::Input:
            ov = prev[id];
            nv = cur[id];
            break;
          case CellKind::Const0:
            ov = nv = 0;
            break;
          case CellKind::Const1:
            ov = nv = ~0ULL;
            break;
          default: {
            uint64_t oa = cell.fanin[0] != invalidNet
                              ? oldPlane_[cell.fanin[0]] : 0;
            uint64_t ob = cell.fanin[1] != invalidNet
                              ? oldPlane_[cell.fanin[1]] : 0;
            uint64_t oc = cell.fanin[2] != invalidNet
                              ? oldPlane_[cell.fanin[2]] : 0;
            uint64_t na = cell.fanin[0] != invalidNet
                              ? newPlane_[cell.fanin[0]] : 0;
            uint64_t nb = cell.fanin[1] != invalidNet
                              ? newPlane_[cell.fanin[1]] : 0;
            uint64_t nc = cell.fanin[2] != invalidNet
                              ? newPlane_[cell.fanin[2]] : 0;
            ov = evalCellPlane(cell.kind, oa, ob, oc);
            nv = evalCellPlane(cell.kind, na, nb, nc);
            break;
          }
        }
        oldPlane_[id] = ov;
        newPlane_[id] = nv;
        // Toggles outside the capture-risky cone never produce a late
        // arrival; masking them here keeps them out of the timing pass
        // and out of the recurrence's fanin maxima (that restriction
        // is what makes the pass sparse — see rebuildRiskyCone).
        uint64_t t = (ov ^ nv) & laneMask & riskyMask_[id];
        togglePlane_[id] = t;
        // Inputs keep their toggle bits (fanin reads below need them)
        // but skip the visit list: they map to the shared clk-to-Q
        // arrival row instead.
        if (t && cell.kind != CellKind::Input) {
            tpos_[id] = static_cast<uint32_t>(toggled_.size()) + 1;
            toggled_.push_back(id);
        }
    }

    batch_.settled.resize(outs_.size());
    batch_.captured.resize(outs_.size());
    for (size_t k = 0; k < outs_.size(); ++k) {
        batch_.settled[k] = newPlane_[outs_[k]];
        batch_.captured[k] = newPlane_[outs_[k]];
    }
    batch_.maxArrivalPs.fill(0.0);

    // Sparse transposed timing pass: the scalar LevelizedDta arrival
    // recurrence, visiting only set toggle bits (cell-major, ctz over
    // the cell's toggle plane) so no iteration is spent on lanes a
    // cell is quiet in. Arrivals live in 64-lane rows compacted over
    // the toggled set: a fanin's row is only read when its toggle bit
    // is set, and that row was written earlier in this pass
    // (topological order), so rows need no clearing between calls.
    laneArrival_.resize((toggled_.size() + 1) * 64);
    for (unsigned l = 0; l < 64; ++l)
        laneArrival_[l] = clkToQ_; // shared input row
    const uint64_t *tp = togglePlane_.data();
    for (NetId id : toggled_) {
        uint64_t t = tp[id];
        const Cell &cell = cells[id];
        const unsigned arity = arity_[id];
        const double d = delays_[id];
        const double rem = remaining_[id];
        double *row = &laneArrival_[size_t{tpos_[id]} * 64];
        NetId fi[3] = {0, 0, 0};
        const double *frow[3] = {nullptr, nullptr, nullptr};
        for (unsigned i = 0; i < arity; ++i) {
            fi[i] = cell.fanin[i];
            frow[i] = &laneArrival_[size_t{tpos_[fi[i]]} * 64];
        }
        while (t) {
            const unsigned l = __builtin_ctzll(t);
            const uint64_t bit = t & (~t + 1);
            t &= t - 1;
            double worst = 0.0;
            for (unsigned i = 0; i < arity; ++i)
                if (tp[fi[i]] & bit)
                    worst = std::max(worst, frow[i][l]);
            double arr = worst + d;
            // Dynamic slack pruning: once a toggle's arrival plus its
            // remaining static path cannot exceed the capture time, no
            // chain through it can be late — drop the lane bit so
            // downstream cells skip it, and let the pruning cascade.
            // The maximizing late chain satisfies arr + remaining >
            // captureTimePs at every cell, so faulty lanes keep exact
            // arrivals and every capture decision is unchanged.
            if (arr + rem <= captureTimePs) {
                togglePlane_[id] &= ~bit;
                continue;
            }
            row[l] = arr;
        }
    }
    for (unsigned l = 0; l < lanes; ++l) {
        const uint64_t bit = 1ULL << l;
        double worstOut = 0.0;
        for (size_t k = 0; k < outs_.size(); ++k) {
            NetId net = outs_[k];
            if (!(togglePlane_[net] & bit))
                continue;
            double arr = laneArrival_[size_t{tpos_[net]} * 64 + l];
            worstOut = std::max(worstOut, arr);
            // A toggled output's old value is the complement of its
            // new one: a late arrival flips the captured bit back.
            if (arr > captureTimePs)
                batch_.captured[k] ^= bit;
        }
        batch_.maxArrivalPs[l] = worstOut;
    }
    return batch_;
}

const std::vector<uint64_t> &
LaneDta::evalBatch(const std::vector<uint64_t> &cur)
{
    panic_if(cur.size() != nl_.numInputs(),
             "LaneDta: bad input plane count");
    size_t n = nl_.numCells();
    evalPlane_.resize(n);
    const auto &cells = nl_.cells();
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        switch (cell.kind) {
          case CellKind::Input:
            evalPlane_[id] = cur[id];
            break;
          case CellKind::Const0:
            evalPlane_[id] = 0;
            break;
          case CellKind::Const1:
            evalPlane_[id] = ~0ULL;
            break;
          default: {
            uint64_t a = cell.fanin[0] != invalidNet
                             ? evalPlane_[cell.fanin[0]] : 0;
            uint64_t b = cell.fanin[1] != invalidNet
                             ? evalPlane_[cell.fanin[1]] : 0;
            uint64_t c = cell.fanin[2] != invalidNet
                             ? evalPlane_[cell.fanin[2]] : 0;
            evalPlane_[id] = evalCellPlane(cell.kind, a, b, c);
            break;
          }
        }
    }
    evalOut_.resize(outs_.size());
    for (size_t k = 0; k < outs_.size(); ++k)
        evalOut_[k] = evalPlane_[outs_[k]];
    return evalOut_;
}

} // namespace tea::circuit
