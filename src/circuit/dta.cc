#include "circuit/dta.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace tea::circuit {

bool
DtaResult::anyError() const
{
    for (size_t i = 0; i < settled.size(); ++i)
        if (settled[i] != captured[i])
            return true;
    return false;
}

uint64_t
DtaResult::errorMask64() const
{
    uint64_t mask = 0;
    size_t n = std::min<size_t>(settled.size(), 64);
    for (size_t i = 0; i < n; ++i)
        if (settled[i] != captured[i])
            mask |= 1ULL << i;
    return mask;
}

namespace {

/** Clamp event explosion: a runaway glitch train is a bug. */
constexpr size_t kMaxEvents = 100'000'000;

} // namespace

EventDrivenDta::EventDrivenDta(const Netlist &nl,
                               const DelayAnnotation &annot,
                               double delayScale)
    : nl_(nl), delays_(annot.delays()),
      clkToQ_(annot.library().clkToQPs * delayScale)
{
    for (auto &d : delays_)
        d *= delayScale;
}

DtaResult
EventDrivenDta::run(const std::vector<bool> &prev,
                    const std::vector<bool> &cur, double captureTimePs)
{
    panic_if(prev.size() != nl_.numInputs() ||
                 cur.size() != nl_.numInputs(),
             "EventDrivenDta: bad input vector size");

    // Steady state of the previous operation.
    std::vector<bool> values = evaluate(nl_, prev);
    std::vector<bool> capturedVals = values;
    std::vector<double> lastTransition(nl_.numCells(), 0.0);

    struct Event
    {
        double time;
        uint64_t serial; // total order tie-break for determinism
        NetId cell;
        bool value;
        bool operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            return serial > o.serial;
        }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
    uint64_t serial = 0;

    for (NetId i = 0; i < nl_.numInputs(); ++i)
        if (cur[i] != prev[i])
            pq.push(Event{clkToQ_, serial++, i, cur[i]});

    const auto &fanouts = nl_.fanouts();
    const auto &cells = nl_.cells();
    size_t processed = 0;

    while (!pq.empty()) {
        Event ev = pq.top();
        pq.pop();
        if (values[ev.cell] == ev.value)
            continue; // superseded by an earlier opposite transition
        panic_if(++processed > kMaxEvents,
                 "event explosion in netlist '%s'", nl_.name().c_str());

        values[ev.cell] = ev.value;
        lastTransition[ev.cell] = ev.time;
        if (ev.time <= captureTimePs)
            capturedVals[ev.cell] = ev.value;

        for (NetId f : fanouts[ev.cell]) {
            const Cell &cell = cells[f];
            bool a = cell.fanin[0] != invalidNet && values[cell.fanin[0]];
            bool b = cell.fanin[1] != invalidNet && values[cell.fanin[1]];
            bool c = cell.fanin[2] != invalidNet && values[cell.fanin[2]];
            bool out = evalCell(cell.kind, a, b, c);
            pq.push(Event{ev.time + delays_[f], serial++, f, out});
        }
    }

    DtaResult res;
    auto outs = nl_.flatOutputs();
    res.settled.reserve(outs.size());
    res.captured.reserve(outs.size());
    res.lastTransitionPs.reserve(outs.size());
    for (NetId n : outs) {
        res.settled.push_back(values[n]);
        res.captured.push_back(capturedVals[n]);
        res.lastTransitionPs.push_back(lastTransition[n]);
        res.maxArrivalPs = std::max(res.maxArrivalPs, lastTransition[n]);
    }
    res.events = processed;
    return res;
}

LevelizedDta::LevelizedDta(const Netlist &nl, const DelayAnnotation &annot,
                           double delayScale)
    : nl_(nl), delays_(annot.delays()),
      clkToQ_(annot.library().clkToQPs * delayScale)
{
    for (auto &d : delays_)
        d *= delayScale;
}

DtaResult
LevelizedDta::run(const std::vector<bool> &prev,
                  const std::vector<bool> &cur, double captureTimePs)
{
    panic_if(prev.size() != nl_.numInputs() ||
                 cur.size() != nl_.numInputs(),
             "LevelizedDta: bad input vector size");

    size_t n = nl_.numCells();
    oldVal_.resize(n);
    newVal_.resize(n);
    arrival_.resize(n);

    const auto &cells = nl_.cells();
    for (NetId id = 0; id < n; ++id) {
        const Cell &cell = cells[id];
        if (cell.kind == CellKind::Input) {
            oldVal_[id] = prev[id];
            newVal_[id] = cur[id];
            arrival_[id] =
                (prev[id] != cur[id]) ? static_cast<float>(clkToQ_) : 0.0f;
            continue;
        }
        bool oa = cell.fanin[0] != invalidNet && oldVal_[cell.fanin[0]];
        bool ob = cell.fanin[1] != invalidNet && oldVal_[cell.fanin[1]];
        bool oc = cell.fanin[2] != invalidNet && oldVal_[cell.fanin[2]];
        bool na = cell.fanin[0] != invalidNet && newVal_[cell.fanin[0]];
        bool nb = cell.fanin[1] != invalidNet && newVal_[cell.fanin[1]];
        bool nc = cell.fanin[2] != invalidNet && newVal_[cell.fanin[2]];
        bool ov, nv;
        if (cell.kind == CellKind::Const0) {
            ov = nv = false;
        } else if (cell.kind == CellKind::Const1) {
            ov = nv = true;
        } else {
            ov = evalCell(cell.kind, oa, ob, oc);
            nv = evalCell(cell.kind, na, nb, nc);
        }
        oldVal_[id] = ov;
        newVal_[id] = nv;
        if (ov == nv) {
            // Approximation: a stable output is assumed hazard-free.
            arrival_[id] = 0.0f;
        } else {
            // Last arrival = slowest *changed* fanin plus own delay.
            float worst = 0.0f;
            unsigned arity = cellArity(cell.kind);
            for (unsigned i = 0; i < arity; ++i) {
                NetId fi = cell.fanin[i];
                if (oldVal_[fi] != newVal_[fi])
                    worst = std::max(worst, arrival_[fi]);
            }
            arrival_[id] = worst + static_cast<float>(delays_[id]);
        }
    }

    DtaResult res;
    auto outs = nl_.flatOutputs();
    res.settled.reserve(outs.size());
    res.captured.reserve(outs.size());
    res.lastTransitionPs.reserve(outs.size());
    for (NetId net : outs) {
        bool changed = oldVal_[net] != newVal_[net];
        double arr = changed ? arrival_[net] : 0.0;
        bool capturedBit =
            (changed && arr > captureTimePs) ? oldVal_[net] : newVal_[net];
        res.settled.push_back(newVal_[net]);
        res.captured.push_back(capturedBit);
        res.lastTransitionPs.push_back(arr);
        res.maxArrivalPs = std::max(res.maxArrivalPs, arr);
    }
    return res;
}

} // namespace tea::circuit
