/**
 * @file
 * Static timing analysis over an annotated netlist.
 *
 * Computes per-net worst-case arrival times (inputs launch at the
 * register clock-to-Q) and per-output-endpoint path delays, with
 * predecessor links so the worst path through any endpoint can be
 * extracted. Used to pick the clock period (Eq. 1 of the paper) and to
 * regenerate Fig. 4's longest-path distribution.
 */

#ifndef TEA_CIRCUIT_STA_HH
#define TEA_CIRCUIT_STA_HH

#include <string>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/netlist.hh"

namespace tea::circuit {

/** One capture endpoint (an output bit) and its worst path delay. */
struct PathEndpoint
{
    NetId net;
    std::string busName;
    unsigned bitIndex;
    /** Worst arrival incl. launch clk-to-Q and capture setup. */
    double pathDelayPs;
};

/** Result of a static timing pass. */
class StaResult
{
  public:
    StaResult(std::vector<double> arrival, std::vector<NetId> worstFanin,
              std::vector<PathEndpoint> endpoints, double setupPs);

    /** Worst arrival time of a net (ps, incl. clk-to-Q). */
    double arrivalPs(NetId n) const { return arrival_[n]; }

    /** All capture endpoints, sorted by descending path delay. */
    const std::vector<PathEndpoint> &endpoints() const
    {
        return endpoints_;
    }

    /** The critical (maximum) path delay across all endpoints. */
    double criticalPathPs() const;

    /** Cells on the worst path into a net, input first. */
    std::vector<NetId> worstPath(NetId endpoint) const;

    /** Slack of an endpoint at a given clock period. */
    double slackPs(const PathEndpoint &ep, double clkPs) const
    {
        return clkPs - ep.pathDelayPs;
    }

  private:
    std::vector<double> arrival_;
    std::vector<NetId> worstFanin_;
    std::vector<PathEndpoint> endpoints_;
    double setupPs_;
};

/** Run STA on an annotated netlist at nominal voltage. */
StaResult staAnalyze(const Netlist &nl, const DelayAnnotation &annot);

} // namespace tea::circuit

#endif // TEA_CIRCUIT_STA_HH
