/**
 * @file
 * Structural gate-level netlist representation.
 *
 * A Netlist is a combinational network between two pipeline-register
 * boundaries: primary inputs launch at t=0 (the register clock edge) and
 * primary outputs are captured at the (voltage-scaled) clock period.
 * Cells are stored in construction order, which the builders guarantee
 * to be topological (every fanin id is smaller than the cell's own id);
 * this lets every analysis run as a single forward pass.
 *
 * This plays the role of the post-place-and-route Verilog netlist in the
 * paper's flow; the DelayAnnotation (celllib.hh) plays the role of the
 * SDF file.
 */

#ifndef TEA_CIRCUIT_NETLIST_HH
#define TEA_CIRCUIT_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tea::circuit {

/** Net identifier; each cell drives exactly one net with the same id. */
using NetId = uint32_t;

/** An ordered group of nets, LSB first. */
using Bus = std::vector<NetId>;

constexpr NetId invalidNet = ~static_cast<NetId>(0);

/** Primitive cell types of the synthetic standard-cell library. */
enum class CellKind : uint8_t
{
    Input, ///< primary input (pipeline register output)
    Const0,
    Const1,
    Buf,
    Not,
    And2,
    Or2,
    Xor2,
    Nand2,
    Nor2,
    Xnor2,
    Mux2, ///< fanin order: sel, a (sel=0), b (sel=1)
    Maj3, ///< majority-of-3 (full-adder carry)
};

/** Number of fanins a cell kind consumes. */
unsigned cellArity(CellKind kind);

/** Human-readable cell kind name. */
const char *cellKindName(CellKind kind);

/** Evaluate a cell function over up-to-3 boolean fanin values. */
bool evalCell(CellKind kind, bool a, bool b, bool c);

/** A single cell instance. */
struct Cell
{
    CellKind kind;
    NetId fanin[3];
};

/**
 * A named primary-output bus (e.g. the 64 result bits of an FPU stage).
 */
struct OutputBus
{
    std::string name;
    Bus nets;
};

/**
 * Combinational gate-level netlist. Build with addInput()/addGate(),
 * finish with addOutputBus(); construction order must be topological
 * (enforced by assertions).
 */
class Netlist
{
  public:
    explicit Netlist(std::string name);

    const std::string &name() const { return name_; }

    /** Add a primary input; returns the net it drives. */
    NetId addInput(const std::string &name);
    /** Add a whole input bus (LSB first). */
    Bus addInputBus(const std::string &name, unsigned width);

    /** Add a gate; fanins must already exist. Returns the output net. */
    NetId addGate(CellKind kind, NetId a = invalidNet,
                  NetId b = invalidNet, NetId c = invalidNet);

    /** Register an output bus; outputs are captured by the DTA engines. */
    void addOutputBus(const std::string &name, Bus nets);

    size_t numCells() const { return cells_.size(); }
    size_t numInputs() const { return numInputs_; }
    const Cell &cell(NetId id) const { return cells_[id]; }
    const std::vector<Cell> &cells() const { return cells_; }

    const std::vector<OutputBus> &outputBuses() const { return outputs_; }
    /** Total number of output bits across all buses. */
    size_t numOutputBits() const;
    /** Flattened output nets in bus order. */
    std::vector<NetId> flatOutputs() const;

    /** Name of input i (inputs are cells [0, numInputs)). */
    const std::string &inputName(size_t i) const { return inputNames_[i]; }

    /**
     * Fanout list per net (lazy-built, cached). fanouts()[n] lists the
     * cell ids that read net n.
     */
    const std::vector<std::vector<NetId>> &fanouts() const;

    /** Count of gates by kind (for reporting). */
    std::vector<size_t> kindCounts() const;

  private:
    std::string name_;
    std::vector<Cell> cells_;
    std::vector<std::string> inputNames_;
    size_t numInputs_ = 0;
    bool inputsClosed_ = false;
    std::vector<OutputBus> outputs_;
    mutable std::vector<std::vector<NetId>> fanouts_;
};

/**
 * Levelized functional evaluation: compute all net values for one input
 * vector. `inputs` must have numInputs() entries; returns one bool per
 * net. This is the zero-delay reference ("golden") evaluation.
 */
std::vector<bool> evaluate(const Netlist &nl,
                           const std::vector<bool> &inputs);

/** Extract an output bus value (LSB first) from a net-value vector. */
uint64_t busValue(const std::vector<bool> &values, const Bus &bus);

/** Expand a uint64 into per-net bool assignments over a bus. */
void setBusValue(std::vector<bool> &values, const Bus &bus, uint64_t v);

/** Gather a net-value vector's output bits in flat bus order. */
std::vector<bool> flattenOutputs(const Netlist &nl,
                                 const std::vector<bool> &values);

} // namespace tea::circuit

#endif // TEA_CIRCUIT_NETLIST_HH
