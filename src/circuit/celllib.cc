#include "circuit/celllib.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace tea::circuit {

CellLibrary
CellLibrary::nangate45Like()
{
    CellLibrary lib{};
    for (auto &d : lib.intrinsicPs)
        d = 0.0;
    auto set = [&](CellKind k, double ps) {
        lib.intrinsicPs[static_cast<size_t>(k)] = ps;
    };
    set(CellKind::Input, 0.0);
    set(CellKind::Const0, 0.0);
    set(CellKind::Const1, 0.0);
    set(CellKind::Buf, 22.0);
    set(CellKind::Not, 14.0);
    set(CellKind::And2, 28.0);
    set(CellKind::Or2, 30.0);
    set(CellKind::Xor2, 46.0);
    set(CellKind::Nand2, 18.0);
    set(CellKind::Nor2, 24.0);
    set(CellKind::Xnor2, 48.0);
    set(CellKind::Mux2, 42.0);
    set(CellKind::Maj3, 52.0);
    return lib;
}

double
VoltageModel::delayFactor(double v) const
{
    fatal_if(v <= vth, "supply voltage %.3f V is at or below Vth %.3f V",
             v, vth);
    double nom = nominalV / std::pow(nominalV - vth, alpha);
    double cur = v / std::pow(v - vth, alpha);
    return cur / nom;
}

double
VoltageModel::voltageFor(double reductionFrac) const
{
    return nominalV * (1.0 - reductionFrac);
}

double
VoltageModel::delayFactorAtReduction(double reductionFrac) const
{
    return delayFactor(voltageFor(reductionFrac));
}

double
VoltageModel::dynamicPowerFactor(double v) const
{
    double r = v / nominalV;
    return r * r;
}

double
VoltageModel::leakagePowerFactor(double v) const
{
    double r = v / nominalV;
    return r * r * r;
}

double
VoltageModel::totalPowerFactor(double v, double leakageShare) const
{
    return (1.0 - leakageShare) * dynamicPowerFactor(v) +
           leakageShare * leakagePowerFactor(v);
}

DelayAnnotation::DelayAnnotation(const Netlist &nl, const CellLibrary &lib,
                                 uint64_t seed)
    : lib_(lib), delays_(nl.numCells(), 0.0)
{
    Rng rng(seed ^ 0x5eed5eedULL);
    const auto &fanouts = nl.fanouts();
    for (NetId id = 0; id < nl.numCells(); ++id) {
        const Cell &cell = nl.cell(id);
        double base = lib.intrinsicPs[static_cast<size_t>(cell.kind)];
        if (base == 0.0)
            continue;
        // Per-instance process variation (multiplicative, clamped so a
        // cell can never get faster than 3 sigma below nominal).
        double jitter = 1.0 + lib.variationSigma * rng.nextGaussian();
        jitter = std::max(jitter, 1.0 - 3.0 * lib.variationSigma);
        double wire =
            lib.wirePerFanoutPs * static_cast<double>(fanouts[id].size());
        delays_[id] = base * jitter + wire;
    }
}

} // namespace tea::circuit
