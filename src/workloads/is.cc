/**
 * @file
 * is — NAS Integer Sort (class-S flavour): keys are generated on-core
 * with the NAS `randlc` linear congruential generator, which performs
 * exact 46-bit arithmetic in double precision (fp-mul plus f2i/i2f
 * truncations — this is why IS shows FP timing errors in the paper
 * despite being an "integer" benchmark). Keys are then bucket-sorted
 * and the program performs partial verification (sortedness and key
 * checksum). Classification: Verification checking.
 */

#include "isa/asmbuilder.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildIs(uint64_t seed, int scale)
{
    const int N = 512 * scale;
    const int kMaxKey = 1024; // 2^10 buckets

    AsmBuilder b("is");
    b.dataSpace("keys", static_cast<uint64_t>(N) * 8);
    b.dataSpace("sorted", static_cast<uint64_t>(N) * 8);
    b.dataSpace("buckets", static_cast<uint64_t>(kMaxKey) * 8);
    b.dataSpace("verify", 24);
    // randlc constants: r23 = 2^-23, r46 = 2^-46, t23 = 2^23, t46 = 2^46,
    // seed, a = 5^13, maxkey/4 as double.
    b.dataDoubles("consts",
                  {0x1.0p-23, 0x1.0p-46, 0x1.0p23, 0x1.0p46,
                   314159265.0 + static_cast<double>(seed % 1000) * 2.0,
                   1220703125.0, static_cast<double>(kMaxKey) / 4.0});

    b.la(5, "keys");
    b.la(6, "sorted");
    b.la(7, "buckets");
    b.la(8, "consts");
    b.fld(20, 8, 0);  // r23
    b.fld(21, 8, 8);  // r46
    b.fld(22, 8, 16); // t23
    b.fld(23, 8, 24); // t46
    b.fld(24, 8, 32); // x (seed, state)
    b.fld(25, 8, 40); // a
    b.fld(26, 8, 48); // maxkey/4

    // randlc subroutine: advances f24, leaves the uniform value in f19.
    // Uses f1..f8 as temporaries. Clobbers x30 via truncation helper.
    auto randlc = b.newLabel();
    auto start = b.newLabel();
    b.j(start);
    b.bind(randlc);
    {
        auto trunc = [&](uint8_t dst, uint8_t src) {
            // dst = floor-toward-zero(src) as a double (values here are
            // non-negative, so RTZ == floor).
            b.fcvt_l_d(30, src);
            b.fcvt_d_l(dst, 30);
        };
        // Break a into a1*2^23 + a2.
        b.fmul_d(1, 20, 25); // r23*a
        trunc(2, 1);         // a1
        b.fmul_d(3, 22, 2);  // t23*a1
        b.fsub_d(3, 25, 3);  // a2
        // Break x similarly.
        b.fmul_d(1, 20, 24); // r23*x
        trunc(4, 1);         // x1
        b.fmul_d(5, 22, 4);
        b.fsub_d(5, 24, 5); // x2
        // t1 = a1*x2 + a2*x1 ; z = t1 - t23*trunc(r23*t1)
        b.fmul_d(6, 2, 5);
        b.fmul_d(7, 3, 4);
        b.fadd_d(6, 6, 7);
        b.fmul_d(1, 20, 6);
        trunc(7, 1);
        b.fmul_d(7, 22, 7);
        b.fsub_d(6, 6, 7); // z
        // t3 = t23*z + a2*x2 ; x = t3 - t46*trunc(r46*t3)
        b.fmul_d(6, 22, 6);
        b.fmul_d(7, 3, 5);
        b.fadd_d(6, 6, 7);
        b.fmul_d(1, 21, 6);
        trunc(7, 1);
        b.fmul_d(7, 23, 7);
        b.fsub_d(24, 6, 7); // new x
        b.fmul_d(19, 21, 24); // uniform in [0,1)
        b.ret();
    }

    b.bind(start);
    // Key generation: key[i] = int(maxkey/4 * (u1+u2+u3+u4)).
    b.li(10, 0);
    b.li(11, N);
    b.mv(12, 5);
    auto genLoop = b.newLabel();
    b.bind(genLoop);
    {
        b.fmv_d_x(18, 0);
        for (int k = 0; k < 4; ++k) {
            b.call(randlc);
            b.fadd_d(18, 18, 19);
        }
        b.fmul_d(18, 18, 26);
        b.fcvt_l_d(13, 18); // key
        b.sd(13, 12, 0);
        b.addi(12, 12, 8);
        b.addi(10, 10, 1);
        b.blt(10, 11, genLoop);
    }

    // Bucket count.
    b.li(10, 0);
    b.li(11, N);
    b.mv(12, 5);
    auto cntLoop = b.newLabel();
    b.bind(cntLoop);
    {
        b.ld(13, 12, 0);
        b.slli(13, 13, 3);
        b.add(13, 13, 7);
        b.ld(14, 13, 0);
        b.addi(14, 14, 1);
        b.sd(14, 13, 0);
        b.addi(12, 12, 8);
        b.addi(10, 10, 1);
        b.blt(10, 11, cntLoop);
    }

    // Emit sorted keys from the buckets.
    b.li(10, 0);          // bucket
    b.li(11, kMaxKey);
    b.mv(12, 6);          // out ptr
    b.mv(15, 7);          // bucket ptr
    auto emitLoop = b.newLabel();
    b.bind(emitLoop);
    {
        b.ld(13, 15, 0); // count
        auto innerDone = b.newLabel();
        auto inner = b.newLabel();
        b.bind(inner);
        b.beq(13, 0, innerDone);
        b.sd(10, 12, 0);
        b.addi(12, 12, 8);
        b.addi(13, 13, -1);
        b.j(inner);
        b.bind(innerDone);
        b.addi(15, 15, 8);
        b.addi(10, 10, 1);
        b.blt(10, 11, emitLoop);
    }

    // Partial verification: sortedness and checksum.
    b.li(10, 1);  // ok flag
    b.li(11, N - 1);
    b.li(12, 0);
    b.mv(13, 6);
    b.li(16, 0); // checksum
    auto verLoop = b.newLabel();
    b.bind(verLoop);
    {
        b.ld(14, 13, 0);
        b.ld(15, 13, 8);
        b.add(16, 16, 14);
        auto ok = b.newLabel();
        b.bge(15, 14, ok);
        b.li(10, 0);
        b.bind(ok);
        b.addi(13, 13, 8);
        b.addi(12, 12, 1);
        b.blt(12, 11, verLoop);
    }
    b.ld(14, 13, 0); // last key into the checksum
    b.add(16, 16, 14);

    b.la(17, "verify");
    b.sd(10, 17, 0);
    b.sd(16, 17, 8);
    b.printInt(10);
    b.printInt(16);
    b.halt();

    Workload w;
    w.name = "is";
    w.program = b.build();
    w.inputDesc = "S (n=" + std::to_string(N) + ")";
    w.classification = "Verification checking";
    w.outputSymbols = {"verify", "sorted"};
    return w;
}

} // namespace tea::workloads
