/**
 * @file
 * mg — geometric multigrid V-cycles for a 2-D Poisson problem (NAS MG
 * flavour, reduced to 2-D): Gauss-Seidel smoothing, residual
 * computation, injection restriction and prolongation over a 3-level
 * hierarchy (33 -> 17 -> 9). The program verifies that two V-cycles
 * shrink the residual norm. Classification: Verification checking.
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

namespace {

/** Grid sizes per level (finest first). */
constexpr int kLevels = 3;

struct LevelInfo
{
    int n;            ///< grid side
    std::string u, f, r;
};

} // namespace

Workload
buildMg(uint64_t seed, int scale)
{
    // scale enlarges the finest grid: 33, 65, ...
    const int n0 = 32 * scale + 1;
    Rng rng(seed ^ 0x309fULL);

    AsmBuilder b("mg");

    LevelInfo lv[kLevels];
    for (int k = 0; k < kLevels; ++k) {
        lv[k].n = ((n0 - 1) >> k) + 1;
        lv[k].u = "u" + std::to_string(k);
        lv[k].f = "f" + std::to_string(k);
        lv[k].r = "r" + std::to_string(k);
    }

    // Finest right-hand side: a few point sources.
    {
        std::vector<double> f0(static_cast<size_t>(lv[0].n) * lv[0].n,
                               0.0);
        for (int s = 0; s < 8; ++s) {
            int x = 2 + static_cast<int>(rng.nextBounded(lv[0].n - 4));
            int y = 2 + static_cast<int>(rng.nextBounded(lv[0].n - 4));
            f0[static_cast<size_t>(y) * lv[0].n + x] =
                (s % 2) ? 1.0 : -1.0;
        }
        b.dataDoubles(lv[0].f, f0);
    }
    for (int k = 0; k < kLevels; ++k) {
        uint64_t cells = static_cast<uint64_t>(lv[k].n) * lv[k].n * 8;
        b.dataSpace(lv[k].u, cells);
        b.dataSpace(lv[k].r, cells);
        if (k > 0)
            b.dataSpace(lv[k].f, cells);
    }
    b.dataSpace("verify", 24);
    // 0.25, h^2 per level (h doubles each level), 4.0
    b.dataDoubles("consts", {0.25, 1.0, 4.0, 16.0, 4.0});

    b.la(28, "consts");
    b.fld(25, 28, 0); // 0.25
    b.fld(26, 28, 32); // 4.0 (for the verification factor)

    // ---- emission helpers (each uses x10..x19 and f1..f9) -----------
    // Gauss-Seidel sweeps: u[i,j] = 0.25*(u_n+u_s+u_w+u_e + h2*f)
    auto emitSmooth = [&](const LevelInfo &l, int h2ConstIdx,
                          int sweeps) {
        const int rowB = l.n * 8;
        b.la(10, l.u);
        b.la(11, l.f);
        b.la(28, "consts");
        b.fld(9, 28, 8 * (1 + h2ConstIdx)); // h^2
        for (int s = 0; s < sweeps; ++s) {
            b.li(12, 1); // y
            b.li(13, l.n - 1);
            auto yL = b.newLabel();
            b.bind(yL);
            {
                b.li(14, rowB);
                b.mul(15, 12, 14);
                b.addi(15, 15, 8);
                b.add(16, 15, 10); // &u[y][1]
                b.add(17, 15, 11); // &f[y][1]
                b.li(18, 1);
                auto xL = b.newLabel();
                b.bind(xL);
                {
                    b.fld(1, 16, -rowB);
                    b.fld(2, 16, rowB);
                    b.fld(3, 16, -8);
                    b.fld(4, 16, 8);
                    b.fld(5, 17, 0);
                    b.fadd_d(1, 1, 2);
                    b.fadd_d(1, 1, 3);
                    b.fadd_d(1, 1, 4);
                    b.fmul_d(5, 5, 9);
                    b.fadd_d(1, 1, 5);
                    b.fmul_d(1, 1, 25);
                    b.fsd(1, 16, 0);
                    b.addi(16, 16, 8);
                    b.addi(17, 17, 8);
                    b.addi(18, 18, 1);
                    b.blt(18, 13, xL);
                }
                b.addi(12, 12, 1);
                b.blt(12, 13, yL);
            }
        }
    };

    // Residual: r = f - (4u - nbrs)/h^2, interior only (borders stay 0).
    auto emitResidual = [&](const LevelInfo &l, int h2ConstIdx) {
        const int rowB = l.n * 8;
        b.la(10, l.u);
        b.la(11, l.f);
        b.la(19, l.r);
        b.la(28, "consts");
        b.fld(9, 28, 8 * (1 + h2ConstIdx));
        b.li(12, 1);
        b.li(13, l.n - 1);
        auto yL = b.newLabel();
        b.bind(yL);
        {
            b.li(14, rowB);
            b.mul(15, 12, 14);
            b.addi(15, 15, 8);
            b.add(16, 15, 10);
            b.add(17, 15, 11);
            b.add(14, 15, 19);
            b.li(18, 1);
            auto xL = b.newLabel();
            b.bind(xL);
            {
                b.fld(1, 16, -rowB);
                b.fld(2, 16, rowB);
                b.fadd_d(1, 1, 2);
                b.fld(2, 16, -8);
                b.fadd_d(1, 1, 2);
                b.fld(2, 16, 8);
                b.fadd_d(1, 1, 2); // nbrs
                b.fld(3, 16, 0);
                b.fadd_d(4, 3, 3);
                b.fadd_d(4, 4, 4); // 4u
                b.fsub_d(1, 4, 1); // 4u - nbrs
                b.fdiv_d(1, 1, 9); // /h^2
                b.fld(5, 17, 0);
                b.fsub_d(1, 5, 1);
                b.fsd(1, 14, 0);
                b.addi(16, 16, 8);
                b.addi(17, 17, 8);
                b.addi(14, 14, 8);
                b.addi(18, 18, 1);
                b.blt(18, 13, xL);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, yL);
        }
    };

    // Restriction by injection: fCoarse[I,J] = rFine[2I,2J]; also zeroes
    // uCoarse.
    auto emitRestrict = [&](const LevelInfo &fine,
                            const LevelInfo &coarse) {
        const int rowBF = fine.n * 8;
        const int rowBC = coarse.n * 8;
        b.la(10, fine.r);
        b.la(11, coarse.f);
        b.la(19, coarse.u);
        b.li(12, 0); // J
        b.li(13, coarse.n);
        auto yL = b.newLabel();
        b.bind(yL);
        {
            b.li(14, rowBC);
            b.mul(15, 12, 14);
            b.add(16, 15, 11); // coarse f row
            b.add(17, 15, 19); // coarse u row
            b.li(14, 2 * rowBF);
            b.mul(15, 12, 14);
            b.add(15, 15, 10); // fine r row (2J)
            b.li(18, 0);
            auto xL = b.newLabel();
            b.bind(xL);
            {
                b.fld(1, 15, 0);
                b.fsd(1, 16, 0);
                b.sd(0, 17, 0);
                b.addi(15, 15, 16);
                b.addi(16, 16, 8);
                b.addi(17, 17, 8);
                b.addi(18, 18, 1);
                b.blt(18, 13, xL);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, yL);
        }
    };

    // Prolongation by injection: uFine[2I,2J] += uCoarse[I,J].
    auto emitProlong = [&](const LevelInfo &fine,
                           const LevelInfo &coarse) {
        const int rowBF = fine.n * 8;
        const int rowBC = coarse.n * 8;
        b.la(10, fine.u);
        b.la(11, coarse.u);
        b.li(12, 0);
        b.li(13, coarse.n);
        auto yL = b.newLabel();
        b.bind(yL);
        {
            b.li(14, rowBC);
            b.mul(15, 12, 14);
            b.add(16, 15, 11);
            b.li(14, 2 * rowBF);
            b.mul(15, 12, 14);
            b.add(15, 15, 10);
            b.li(18, 0);
            auto xL = b.newLabel();
            b.bind(xL);
            {
                b.fld(1, 16, 0);
                b.fld(2, 15, 0);
                b.fadd_d(2, 2, 1);
                b.fsd(2, 15, 0);
                b.addi(15, 15, 16);
                b.addi(16, 16, 8);
                b.addi(18, 18, 1);
                b.blt(18, 13, xL);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, yL);
        }
    };

    // Residual norm over the finest grid -> f-register 27.
    auto emitNorm = [&]() {
        emitResidual(lv[0], 0);
        const auto &l = lv[0];
        b.la(19, l.r);
        b.fmv_d_x(27, 0);
        b.li(12, 0);
        b.li(13, l.n * l.n);
        auto nL = b.newLabel();
        b.bind(nL);
        {
            b.fld(1, 19, 0);
            b.fmul_d(1, 1, 1);
            b.fadd_d(27, 27, 1);
            b.addi(19, 19, 8);
            b.addi(12, 12, 1);
            b.blt(12, 13, nL);
        }
    };

    // ---- program -----------------------------------------------------
    emitNorm();
    b.fmv(24, 27); // norm0

    for (int cycle = 0; cycle < 2; ++cycle) {
        emitSmooth(lv[0], 0, 2);
        emitResidual(lv[0], 0);
        emitRestrict(lv[0], lv[1]);
        emitSmooth(lv[1], 1, 2);
        emitResidual(lv[1], 1);
        emitRestrict(lv[1], lv[2]);
        emitSmooth(lv[2], 2, 8);
        emitProlong(lv[1], lv[2]);
        emitSmooth(lv[1], 1, 2);
        emitProlong(lv[0], lv[1]);
        emitSmooth(lv[0], 0, 2);
    }

    emitNorm(); // norm1 in f27

    // pass = (norm1 * 4 < norm0)
    b.fmul_d(1, 27, 26);
    b.flt_d(12, 1, 24);
    b.la(13, "verify");
    b.sd(12, 13, 0);
    b.fsd(24, 13, 8);
    b.fsd(27, 13, 16);
    b.printInt(12);
    b.printFp(24);
    b.printFp(27);
    b.halt();

    Workload w;
    w.name = "mg";
    w.program = b.build();
    w.inputDesc = "S (" + std::to_string(n0) + "^2, 3 levels)";
    w.classification = "Verification checking";
    w.outputSymbols = {"verify", "u0"};
    return w;
}

} // namespace tea::workloads
