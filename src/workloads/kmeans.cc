/**
 * @file
 * k-means — Lloyd's clustering of 2-D points (distance computations are
 * fp-mul/sub/add; centroid updates use integer-to-float conversion and
 * fp-div). Classification: Clustering (the final assignment vector and
 * centroids).
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildKmeans(uint64_t seed, int scale)
{
    const int N = 256 * scale;
    const int K = 4;
    const int kIters = 5;
    Rng rng(seed ^ 0x3a6e5ULL);

    // Points drawn around K true centers.
    const double cx[K] = {2.0, 8.0, 2.5, 9.0};
    const double cy[K] = {3.0, 1.5, 8.5, 7.5};
    std::vector<double> pts(static_cast<size_t>(N) * 2);
    for (int i = 0; i < N; ++i) {
        int c = static_cast<int>(rng.nextBounded(K));
        pts[2 * i] = cx[c] + (rng.nextDouble() - 0.5) * 2.0;
        pts[2 * i + 1] = cy[c] + (rng.nextDouble() - 0.5) * 2.0;
    }
    // Initial centroids: the first K points.
    std::vector<double> cent0(static_cast<size_t>(K) * 2);
    for (int c = 0; c < K; ++c) {
        cent0[2 * c] = pts[2 * c];
        cent0[2 * c + 1] = pts[2 * c + 1];
    }

    AsmBuilder b("k-means");
    b.dataDoubles("pts", pts);
    b.dataDoubles("cent", cent0);
    b.dataSpace("assign", static_cast<uint64_t>(N) * 8);
    b.dataSpace("sums", K * 2 * 8);
    b.dataSpace("counts", K * 8);
    b.dataDoubles("big", {1e30});

    b.la(5, "pts");
    b.la(6, "cent");
    b.la(7, "assign");
    b.la(8, "sums");
    b.la(9, "counts");
    b.la(10, "big");
    b.fld(30, 10, 0); // f30 = big

    b.li(20, kIters);
    auto iterLoop = b.newLabel();
    b.bind(iterLoop);
    {
        // Zero sums and counts.
        b.li(11, 0);
        b.li(12, K);
        auto zeroLoop = b.newLabel();
        b.bind(zeroLoop);
        {
            b.slli(13, 11, 4);
            b.add(13, 13, 8);
            b.sd(0, 13, 0);
            b.sd(0, 13, 8);
            b.slli(13, 11, 3);
            b.add(13, 13, 9);
            b.sd(0, 13, 0);
            b.addi(11, 11, 1);
            b.blt(11, 12, zeroLoop);
        }

        // Assignment pass.
        b.li(11, 0); // point index
        b.li(12, N);
        b.mv(14, 5); // point ptr
        auto ptLoop = b.newLabel();
        b.bind(ptLoop);
        {
            b.fld(1, 14, 0); // px
            b.fld(2, 14, 8); // py
            b.fmv(3, 30);    // best dist
            b.li(15, 0);     // best cluster
            b.li(16, 0);     // c
            b.li(17, K);
            b.mv(18, 6); // centroid ptr
            auto cLoop = b.newLabel();
            b.bind(cLoop);
            {
                b.fld(4, 18, 0);
                b.fld(5, 18, 8);
                b.fsub_d(6, 1, 4);
                b.fsub_d(7, 2, 5);
                b.fmul_d(6, 6, 6);
                b.fmul_d(7, 7, 7);
                b.fadd_d(6, 6, 7); // dist
                auto notBetter = b.newLabel();
                b.flt_d(19, 6, 3);
                b.beq(19, 0, notBetter);
                b.fmv(3, 6);
                b.mv(15, 16);
                b.bind(notBetter);
                b.addi(18, 18, 16);
                b.addi(16, 16, 1);
                b.blt(16, 17, cLoop);
            }
            // assign[i] = best; sums[best] += p; counts[best]++
            b.slli(13, 11, 3);
            b.add(13, 13, 7);
            b.sd(15, 13, 0);
            b.slli(13, 15, 4);
            b.add(13, 13, 8);
            b.fld(4, 13, 0);
            b.fadd_d(4, 4, 1);
            b.fsd(4, 13, 0);
            b.fld(4, 13, 8);
            b.fadd_d(4, 4, 2);
            b.fsd(4, 13, 8);
            b.slli(13, 15, 3);
            b.add(13, 13, 9);
            b.ld(16, 13, 0);
            b.addi(16, 16, 1);
            b.sd(16, 13, 0);

            b.addi(14, 14, 16);
            b.addi(11, 11, 1);
            b.blt(11, 12, ptLoop);
        }

        // Update pass: cent[c] = sums[c] / counts[c] (skip empty).
        b.li(11, 0);
        b.li(12, K);
        auto upLoop = b.newLabel();
        b.bind(upLoop);
        {
            b.slli(13, 11, 3);
            b.add(13, 13, 9);
            b.ld(16, 13, 0); // count
            auto skip = b.newLabel();
            b.beq(16, 0, skip);
            b.fcvt_d_l(5, 16); // i2f
            b.slli(13, 11, 4);
            b.add(17, 13, 8); // &sums[c]
            b.add(18, 13, 6); // &cent[c]
            b.fld(3, 17, 0);
            b.fdiv_d(3, 3, 5);
            b.fsd(3, 18, 0);
            b.fld(3, 17, 8);
            b.fdiv_d(3, 3, 5);
            b.fsd(3, 18, 8);
            b.bind(skip);
            b.addi(11, 11, 1);
            b.blt(11, 12, upLoop);
        }

        b.addi(20, 20, -1);
        b.bne(20, 0, iterLoop);
    }

    // Print the final centroids.
    b.li(11, 0);
    b.li(12, 2 * K);
    auto prLoop = b.newLabel();
    b.bind(prLoop);
    {
        b.slli(13, 11, 3);
        b.add(13, 13, 6);
        b.fld(1, 13, 0);
        b.printFp(1);
        b.addi(11, 11, 1);
        b.blt(11, 12, prLoop);
    }
    b.halt();

    Workload w;
    w.name = "k-means";
    w.program = b.build();
    w.inputDesc = std::to_string(N) + " pts, k=" + std::to_string(K);
    w.classification = "Clustering";
    w.outputSymbols = {"assign", "cent"};
    return w;
}

} // namespace tea::workloads
