/**
 * @file
 * srad_v1 — speckle-reducing anisotropic diffusion (Rodinia flavour):
 * per-iteration global statistics, per-pixel diffusion coefficients
 * with multiple fp-divs, and a second pass applying the divergence.
 * The division-heavy inner loop makes this the fp-div workload of the
 * suite. Classification: Image Output.
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildSrad(uint64_t seed, int scale)
{
    const int N = 16 * scale; // square image
    const int kIters = 2;
    Rng rng(seed ^ 0x52adULL);

    // Positive speckled image (ultrasound-like).
    std::vector<double> img(static_cast<size_t>(N) * N);
    for (int y = 0; y < N; ++y) {
        for (int x = 0; x < N; ++x) {
            double base = 1.0 + 0.5 * ((x > N / 3 && y > N / 3) ? 1 : 0);
            img[static_cast<size_t>(y) * N + x] =
                base * (0.8 + 0.4 * rng.nextDouble());
        }
    }

    AsmBuilder b("srad_v1");
    const uint64_t cells = static_cast<uint64_t>(N) * N;
    b.dataDoubles("J", img);
    b.dataSpace("dN", cells * 8);
    b.dataSpace("dS", cells * 8);
    b.dataSpace("dW", cells * 8);
    b.dataSpace("dE", cells * 8);
    b.dataSpace("C", cells * 8);
    // lambda*0.25, 1.0, count (as double), 1/16, 0.5
    b.dataDoubles("consts",
                  {0.125, 1.0, static_cast<double>((N - 2) * (N - 2)),
                   0.0625, 0.5});

    const int rowB = N * 8;

    b.la(5, "J");
    b.la(6, "dN");
    b.la(7, "dS");
    b.la(8, "dW");
    b.la(9, "dE");
    b.la(10, "C");
    b.la(11, "consts");
    b.fld(25, 11, 0);  // lambda/4
    b.fld(26, 11, 8);  // 1.0
    b.fld(27, 11, 16); // #interior cells
    b.fld(28, 11, 24); // 1/16
    b.fld(29, 11, 32); // 0.5

    b.li(20, kIters);
    auto iterLoop = b.newLabel();
    b.bind(iterLoop);
    {
        // Pass 0: image statistics over the interior -> q0sqr (f24).
        b.fmv_d_x(21, 0); // sum
        b.fmv_d_x(22, 0); // sum of squares
        b.li(12, 1);
        b.li(13, N - 1);
        auto sLoopY = b.newLabel();
        b.bind(sLoopY);
        {
            b.li(14, rowB);
            b.mul(15, 12, 14);
            b.addi(15, 15, 8);
            b.add(15, 15, 5);
            b.li(16, 1);
            auto sLoopX = b.newLabel();
            b.bind(sLoopX);
            {
                b.fld(1, 15, 0);
                b.fadd_d(21, 21, 1);
                b.fmul_d(2, 1, 1);
                b.fadd_d(22, 22, 2);
                b.addi(15, 15, 8);
                b.addi(16, 16, 1);
                b.blt(16, 13, sLoopX);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, sLoopY);
        }
        // mean = sum/n ; var = sum2/n - mean^2 ; q0sqr = var / mean^2
        b.fdiv_d(1, 21, 27);  // mean
        b.fdiv_d(2, 22, 27);  // E[x^2]
        b.fmul_d(3, 1, 1);    // mean^2
        b.fsub_d(2, 2, 3);    // var
        b.fdiv_d(24, 2, 3);   // q0sqr

        // Pass 1: gradients and diffusion coefficient per pixel.
        b.li(12, 1);
        auto p1Y = b.newLabel();
        b.bind(p1Y);
        {
            b.li(14, rowB);
            b.mul(15, 12, 14);
            b.addi(15, 15, 8);
            b.mv(19, 15);   // linear byte offset of (y,1)
            b.add(15, 15, 5);
            b.li(16, 1);
            auto p1X = b.newLabel();
            b.bind(p1X);
            {
                b.fld(1, 15, 0);      // Jc
                b.fld(2, 15, -rowB);  // n
                b.fld(3, 15, rowB);   // s
                b.fld(4, 15, -8);     // w
                b.fld(5, 15, 8);      // e
                b.fsub_d(2, 2, 1);    // dN
                b.fsub_d(3, 3, 1);    // dS
                b.fsub_d(4, 4, 1);    // dW
                b.fsub_d(5, 5, 1);    // dE

                // G2 = (dN^2+dS^2+dW^2+dE^2) / Jc^2
                b.fmul_d(6, 2, 2);
                b.fmul_d(7, 3, 3);
                b.fadd_d(6, 6, 7);
                b.fmul_d(7, 4, 4);
                b.fadd_d(6, 6, 7);
                b.fmul_d(7, 5, 5);
                b.fadd_d(6, 6, 7);
                b.fmul_d(8, 1, 1);
                b.fdiv_d(6, 6, 8); // G2

                // L = (dN+dS+dW+dE) / Jc
                b.fadd_d(7, 2, 3);
                b.fadd_d(7, 7, 4);
                b.fadd_d(7, 7, 5);
                b.fdiv_d(7, 7, 1);

                // num = 0.5*G2 - (1/16)*L^2 ; den = (1 + 0.25 L)^2
                b.fmul_d(9, 6, 29);
                b.fmul_d(10 + 0, 7, 7); // f10 = L^2
                b.fmul_d(10, 10, 28);
                b.fsub_d(9, 9, 10); // num
                b.fmul_d(10, 7, 29);
                b.fmul_d(10, 10, 29); // 0.25 L
                b.fadd_d(10, 10, 26);
                b.fmul_d(10, 10, 10); // den

                // qsqr = num/den ; c = 1 / (1 + (qsqr-q0)/(q0*(1+q0)))
                b.fdiv_d(9, 9, 10);
                b.fsub_d(9, 9, 24);
                b.fadd_d(10, 26, 24);
                b.fmul_d(10, 10, 24);
                b.fdiv_d(9, 9, 10);
                b.fadd_d(9, 9, 26);
                b.fdiv_d(9, 26, 9); // c

                // clamp c to [0,1]
                b.fmv_d_x(10, 0);
                auto cNotNeg = b.newLabel();
                b.fle_d(17, 10, 9);
                b.bne(17, 0, cNotNeg);
                b.fmv(9, 10);
                b.bind(cNotNeg);
                auto cNotBig = b.newLabel();
                b.fle_d(17, 9, 26);
                b.bne(17, 0, cNotBig);
                b.fmv(9, 26);
                b.bind(cNotBig);

                // Store gradients and coefficient.
                b.add(18, 19, 6 + 0); // &dN[idx]  (x6 = dN base)
                b.fsd(2, 18, 0);
                b.add(18, 19, 7 + 0);
                b.fsd(3, 18, 0);
                b.add(18, 19, 8 + 0);
                b.fsd(4, 18, 0);
                b.add(18, 19, 9 + 0);
                b.fsd(5, 18, 0);
                b.add(18, 19, 10 + 0);
                b.fsd(9, 18, 0);

                b.addi(15, 15, 8);
                b.addi(19, 19, 8);
                b.addi(16, 16, 1);
                b.blt(16, 13, p1X);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, p1Y);
        }

        // Pass 2: J += lambda/4 * (cN dN + cS dS + cW dW + cE dE)
        // with cN = C[idx], cS = C[south], cW = C[idx], cE = C[east]
        // (the Rodinia v1 one-sided scheme).
        b.li(12, 1);
        auto p2Y = b.newLabel();
        b.bind(p2Y);
        {
            b.li(14, rowB);
            b.mul(15, 12, 14);
            b.addi(15, 15, 8);
            b.mv(19, 15);
            b.add(15, 15, 5);
            b.li(16, 1);
            auto p2X = b.newLabel();
            b.bind(p2X);
            {
                b.add(18, 19, 10); // &C[idx]
                b.fld(1, 18, 0);   // cC
                b.fld(2, 18, rowB);// cS
                b.fld(3, 18, 8);   // cE
                b.add(18, 19, 6);
                b.fld(4, 18, 0); // dN
                b.add(18, 19, 7);
                b.fld(5, 18, 0); // dS
                b.add(18, 19, 8);
                b.fld(6, 18, 0); // dW
                b.add(18, 19, 9);
                b.fld(7, 18, 0); // dE

                b.fmul_d(8, 1, 4);  // cC*dN
                b.fmul_d(9, 2, 5);  // cS*dS
                b.fadd_d(8, 8, 9);
                b.fmul_d(9, 1, 6);  // cC*dW
                b.fadd_d(8, 8, 9);
                b.fmul_d(9, 3, 7);  // cE*dE
                b.fadd_d(8, 8, 9);
                b.fmul_d(8, 8, 25); // * lambda/4
                b.fld(9, 15, 0);
                b.fadd_d(9, 9, 8);
                b.fsd(9, 15, 0);

                b.addi(15, 15, 8);
                b.addi(19, 19, 8);
                b.addi(16, 16, 1);
                b.blt(16, 13, p2X);
            }
            b.addi(12, 12, 1);
            b.blt(12, 13, p2Y);
        }

        b.addi(20, 20, -1);
        b.bne(20, 0, iterLoop);
    }

    // Checksum of the processed image.
    b.fmv_d_x(1, 0);
    b.li(12, 0);
    b.li(13, static_cast<int32_t>(cells));
    b.mv(15, 5);
    auto ckLoop = b.newLabel();
    b.bind(ckLoop);
    {
        b.fld(2, 15, 0);
        b.fadd_d(1, 1, 2);
        b.addi(15, 15, 8);
        b.addi(12, 12, 1);
        b.blt(12, 13, ckLoop);
    }
    b.printFp(1);
    b.halt();

    Workload w;
    w.name = "srad_v1";
    w.program = b.build();
    w.inputDesc = std::to_string(kIters) + " iters, " +
                  std::to_string(N) + "x" + std::to_string(N);
    w.classification = "Image Output";
    w.outputSymbols = {"J"};
    return w;
}

} // namespace tea::workloads
