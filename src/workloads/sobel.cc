/**
 * @file
 * sobel — 3x3 edge-detection filter over a grayscale image, with the
 * gradient magnitude computed by a fixed-iteration Newton square root
 * (mul/div/add heavy, like the open-source C implementation the paper
 * uses). Classification: Image Output.
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildSobel(uint64_t seed, int scale)
{
    const int W = 24 * scale;
    const int H = 24 * scale;
    Rng rng(seed ^ 0x50be1ULL);

    // Synthetic image: smooth gradient plus bright blobs and noise.
    std::vector<double> img(static_cast<size_t>(W) * H);
    for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
            double v = 0.25 + 0.5 * x / W + 0.2 * y / H;
            if (((x / 6) + (y / 6)) % 2)
                v += 0.35;
            v += 0.05 * rng.nextDouble();
            img[static_cast<size_t>(y) * W + x] = v;
        }
    }

    AsmBuilder b("sobel");
    b.dataDoubles("img", img);
    b.dataSpace("out", static_cast<uint64_t>(W) * H * 8);
    b.dataDoubles("consts", {0.5, 1e-12, 2.0, 0.0});

    // f20 = 0.5, f21 = eps, f22 = 2.0, f23 = 0.0
    b.la(5, "consts");
    b.fld(20, 5, 0);
    b.fld(21, 5, 8);
    b.fld(22, 5, 16);
    b.fld(23, 5, 24);

    b.la(5, "img");
    b.la(6, "out");
    const int rowBytes = W * 8;

    // y in [1, H-2]
    b.li(10, 1); // y
    b.li(12, H - 1);
    auto yLoop = b.newLabel();
    b.bind(yLoop);
    {
        // p = img + (y*W + 1)*8 ; q = out + same
        b.li(13, rowBytes);
        b.mul(14, 10, 13);
        b.addi(14, 14, 8);
        b.add(15, 5, 14); // p
        b.add(16, 6, 14); // q
        b.li(11, 1);      // x
        b.li(17, W - 1);
        auto xLoop = b.newLabel();
        b.bind(xLoop);
        {
            // Neighbors around p: offsets in bytes.
            const int N = -rowBytes, S = rowBytes;
            b.fld(1, 15, N - 8);  // nw
            b.fld(2, 15, N);      // n
            b.fld(3, 15, N + 8);  // ne
            b.fld(4, 15, -8);     // w
            b.fld(5, 15, 8);      // e
            b.fld(6, 15, S - 8);  // sw
            b.fld(7, 15, S);      // s
            b.fld(8, 15, S + 8);  // se

            // gx = (ne + 2e + se) - (nw + 2w + sw)
            b.fmul_d(9, 5, 22);
            b.fadd_d(9, 9, 3);
            b.fadd_d(9, 9, 8);
            b.fmul_d(10 + 0, 4, 22); // f10 temp
            b.fadd_d(10, 10, 1);
            b.fadd_d(10, 10, 6);
            b.fsub_d(9, 9, 10); // gx

            // gy = (sw + 2s + se) - (nw + 2n + ne)
            b.fmul_d(11, 7, 22);
            b.fadd_d(11, 11, 6);
            b.fadd_d(11, 11, 8);
            b.fmul_d(12, 2, 22);
            b.fadd_d(12, 12, 1);
            b.fadd_d(12, 12, 3);
            b.fsub_d(11, 11, 12); // gy

            // v = gx*gx + gy*gy
            b.fmul_d(13, 9, 9);
            b.fmul_d(14, 11, 11);
            b.fadd_d(13, 13, 14);

            // mag = v < eps ? 0 : newton_sqrt(v)
            auto small = b.newLabel();
            auto store = b.newLabel();
            b.flt_d(18, 13, 21);
            b.bne(18, 0, small);
            // 5 Newton iterations from s = v.
            b.fmv(15, 13);
            for (int it = 0; it < 5; ++it) {
                b.fdiv_d(16, 13, 15);
                b.fadd_d(15, 15, 16);
                b.fmul_d(15, 15, 20);
            }
            b.j(store);
            b.bind(small);
            b.fmv(15, 23);
            b.bind(store);
            b.fsd(15, 16, 0);

            b.addi(15, 15, 8);
            b.addi(16, 16, 8);
            b.addi(11, 11, 1);
            b.blt(11, 17, xLoop);
        }
        b.addi(10, 10, 1);
        b.blt(10, 12, yLoop);
    }
    // Checksum to the console: sum of the output border-inner diagonal.
    b.la(7, "out");
    b.fmv(1, 23);
    b.li(8, std::min(W, H) - 1);
    b.li(9, 1);
    auto diag = b.newLabel();
    b.bind(diag);
    {
        b.li(13, rowBytes + 8);
        b.mul(14, 9, 13);
        b.add(14, 14, 7);
        b.fld(2, 14, 0);
        b.fadd_d(1, 1, 2);
        b.addi(9, 9, 1);
        b.blt(9, 8, diag);
    }
    b.printFp(1);
    b.halt();

    Workload w;
    w.name = "sobel";
    w.program = b.build();
    w.inputDesc = std::to_string(W) + " x " + std::to_string(H);
    w.classification = "Image Output";
    w.outputSymbols = {"out"};
    return w;
}

} // namespace tea::workloads
