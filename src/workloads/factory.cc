#include "workloads/workloads.hh"

#include "util/logging.hh"

namespace tea::workloads {

bool
isThreadedWorkload(const std::string &name)
{
    static const std::string suffix = "-mt";
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "sobel", "cg", "k-means", "srad_v1", "hotspot", "is", "mg",
    };
    return names;
}

Workload
buildWorkload(const std::string &name, uint64_t seed, int scale)
{
    fatal_if(scale < 1, "workload scale must be >= 1");
    if (name == "sobel")
        return buildSobel(seed, scale);
    if (name == "cg")
        return buildCg(seed, scale);
    if (name == "k-means")
        return buildKmeans(seed, scale);
    if (name == "srad_v1")
        return buildSrad(seed, scale);
    if (name == "hotspot")
        return buildHotspot(seed, scale);
    if (name == "is")
        return buildIs(seed, scale);
    if (name == "mg")
        return buildMg(seed, scale);
    if (name == "k-means-mt")
        return buildKmeansMt(seed, scale);
    if (name == "hotspot-mt")
        return buildHotspotMt(seed, scale);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace tea::workloads
