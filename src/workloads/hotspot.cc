/**
 * @file
 * hotspot — thermal simulation of a processor die: iterative stencil
 * update of a temperature grid driven by a per-cell power map
 * (add/mul dominated, like the Rodinia kernel). Classification: File
 * Output (the final temperature grid).
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildHotspot(uint64_t seed, int scale)
{
    const int N = 24 * scale; // grid side
    const int kIters = 4;
    Rng rng(seed ^ 0x407507ULL);

    std::vector<double> temp(static_cast<size_t>(N) * N);
    std::vector<double> power(static_cast<size_t>(N) * N);
    for (int y = 0; y < N; ++y) {
        for (int x = 0; x < N; ++x) {
            size_t i = static_cast<size_t>(y) * N + x;
            temp[i] = 323.0 + 2.0 * rng.nextDouble();
            // A few hot functional blocks.
            bool hot = (x > N / 4 && x < N / 2 && y > N / 2);
            power[i] = (hot ? 1.5 : 0.05) + 0.01 * rng.nextDouble();
        }
    }

    AsmBuilder b("hotspot");
    b.dataDoubles("temp", temp);
    b.dataDoubles("power", power);
    b.dataSpace("temp2", static_cast<uint64_t>(N) * N * 8);
    // rx, ry, step*capInv, ambient coupling
    b.dataDoubles("consts", {0.12, 0.09, 0.45, 0.0125, 345.0});

    const int rowB = N * 8;

    b.la(5, "consts");
    b.fld(24, 5, 0);  // rx
    b.fld(25, 5, 8);  // ry
    b.fld(26, 5, 16); // step
    b.fld(27, 5, 24); // amb coupling
    b.fld(28, 5, 32); // ambient temp

    b.la(5, "temp");
    b.la(6, "temp2");
    b.la(7, "power");

    b.li(20, kIters);
    auto iterLoop = b.newLabel();
    b.bind(iterLoop);
    {
        b.li(10, 1); // y
        b.li(11, N - 1);
        auto yLoop = b.newLabel();
        b.bind(yLoop);
        {
            b.li(13, rowB);
            b.mul(14, 10, 13);
            b.addi(14, 14, 8);
            b.add(15, 5, 14); // src ptr
            b.add(16, 6, 14); // dst ptr
            b.add(17, 7, 14); // power ptr
            b.li(12, 1);      // x
            b.li(18, N - 1);
            auto xLoop = b.newLabel();
            b.bind(xLoop);
            {
                b.fld(1, 15, 0);      // t
                b.fld(2, 15, -rowB);  // n
                b.fld(3, 15, rowB);   // s
                b.fld(4, 15, -8);     // w
                b.fld(5, 15, 8);      // e
                b.fld(6, 17, 0);      // p

                b.fadd_d(7, 2, 3);    // n+s
                b.fadd_d(8, 1, 1);    // 2t
                b.fsub_d(7, 7, 8);    // n+s-2t
                b.fmul_d(7, 7, 25);   // *ry
                b.fadd_d(9, 4, 5);    // w+e
                b.fsub_d(9, 9, 8);    // w+e-2t
                b.fmul_d(9, 9, 24);   // *rx
                b.fadd_d(7, 7, 9);
                b.fsub_d(10, 28, 1);  // amb - t
                b.fmul_d(10, 10, 27);
                b.fadd_d(7, 7, 10);
                b.fadd_d(7, 7, 6);    // + power
                b.fmul_d(7, 7, 26);   // * step
                b.fadd_d(7, 7, 1);    // t'
                b.fsd(7, 16, 0);

                b.addi(15, 15, 8);
                b.addi(16, 16, 8);
                b.addi(17, 17, 8);
                b.addi(12, 12, 1);
                b.blt(12, 18, xLoop);
            }
            b.addi(10, 10, 1);
            b.blt(10, 11, yLoop);
        }
        // Copy borders (replication of the old grid's edges).
        // Top and bottom rows, then left/right columns.
        b.li(10, 0);
        b.li(11, N);
        b.li(19, (N - 1) * rowB); // byte offset of the bottom row
        auto rowCopy = b.newLabel();
        b.bind(rowCopy);
        {
            b.slli(13, 10, 3);
            b.add(14, 5, 13);
            b.add(15, 6, 13);
            b.fld(1, 14, 0);
            b.fsd(1, 15, 0);
            b.add(14, 14, 19);
            b.add(15, 15, 19);
            b.fld(1, 14, 0);
            b.fsd(1, 15, 0);
            b.addi(10, 10, 1);
            b.blt(10, 11, rowCopy);
        }
        b.li(10, 0);
        auto colCopy = b.newLabel();
        b.bind(colCopy);
        {
            b.li(13, rowB);
            b.mul(14, 10, 13);
            b.add(15, 5, 14);
            b.add(16, 6, 14);
            b.fld(1, 15, 0);
            b.fsd(1, 16, 0);
            b.fld(1, 15, rowB - 8);
            b.fsd(1, 16, rowB - 8);
            b.addi(10, 10, 1);
            b.blt(10, 11, colCopy);
        }
        // Swap src/dst pointers.
        b.mv(13, 5);
        b.mv(5, 6);
        b.mv(6, 13);
        b.addi(20, 20, -1);
        b.bne(20, 0, iterLoop);
    }

    // Final grid lives in the buffer x5 points to; copy it to temp2 if
    // the iteration count is odd... kIters is even, so "temp" holds the
    // result. Print a checksum of the hot region.
    b.fmv_d_x(1, 0);
    b.li(10, N / 2);
    b.li(11, N - 1);
    auto sumLoop = b.newLabel();
    b.bind(sumLoop);
    {
        b.li(13, rowB);
        b.mul(14, 10, 13);
        b.add(14, 14, 5);
        b.fld(2, 14, (N / 3) * 8);
        b.fadd_d(1, 1, 2);
        b.addi(10, 10, 1);
        b.blt(10, 11, sumLoop);
    }
    b.printFp(1);
    b.halt();

    Workload w;
    w.name = "hotspot";
    w.program = b.build();
    w.inputDesc = std::to_string(N) + " " + std::to_string(N) + " " +
                  std::to_string(kIters);
    w.classification = "File Output";
    w.outputSymbols = {"temp", "temp2"};
    return w;
}

} // namespace tea::workloads
