/**
 * @file
 * k-means-mt — SPMD multi-core variant of the k-means workload.
 *
 * Core 0 spawns one worker per remaining core, then all M cores run
 * the same iteration body: each core shards the point set by striding
 * (point i belongs to core i mod M) and accumulates into a private
 * partial-sum slice, a barrier synchronizes, core 0 reduces the
 * per-core partials into the shared centroids (reading every worker's
 * slice — this is where a fault on a worker core propagates into
 * core 0's output), and a second barrier releases everyone into the
 * next iteration. Workers halt after the loop; core 0 joins and
 * prints the centroids.
 *
 * Requires mc::McSim / mc::McFuncSim (control page + spawn ABI); the
 * single-core simulators fault on the control-page load.
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildKmeansMt(uint64_t seed, int scale)
{
    const int N = 256 * scale;
    const int K = 4; // slice shifts below hard-code K == 4
    const int kIters = 5;
    Rng rng(seed ^ 0x3a6e5ULL);

    // Same synthetic input as the single-core k-means.
    const double cx[K] = {2.0, 8.0, 2.5, 9.0};
    const double cy[K] = {3.0, 1.5, 8.5, 7.5};
    std::vector<double> pts(static_cast<size_t>(N) * 2);
    for (int i = 0; i < N; ++i) {
        int c = static_cast<int>(rng.nextBounded(K));
        pts[2 * i] = cx[c] + (rng.nextDouble() - 0.5) * 2.0;
        pts[2 * i + 1] = cy[c] + (rng.nextDouble() - 0.5) * 2.0;
    }
    std::vector<double> cent0(static_cast<size_t>(K) * 2);
    for (int c = 0; c < K; ++c) {
        cent0[2 * c] = pts[2 * c];
        cent0[2 * c + 1] = pts[2 * c + 1];
    }

    AsmBuilder b("k-means-mt");
    b.dataDoubles("pts", pts);
    b.dataDoubles("cent", cent0);
    b.dataSpace("assign", static_cast<uint64_t>(N) * 8);
    // Per-core partial sums / counts: one K-entry slice per core.
    b.dataSpace("psums",
                static_cast<uint64_t>(isa::kMcMaxCores) * K * 2 * 8);
    b.dataSpace("pcounts",
                static_cast<uint64_t>(isa::kMcMaxCores) * K * 8);
    b.dataDoubles("big", {1e30});

    // ---- core-0 entry: spawn M-1 workers, then fall into the body.
    auto workerEntry = b.newLabel();
    b.mcNumCores(21); // x21 = M
    b.laCode(22, workerEntry);
    b.li(11, 1);
    auto spawnLoop = b.newLabel();
    auto spawnDone = b.newLabel();
    b.bind(spawnLoop);
    {
        b.bge(11, 21, spawnDone);
        b.spawn(22);
        b.addi(11, 11, 1);
        b.j(spawnLoop);
    }
    b.bind(spawnDone);

    // ---- shared SPMD body (all cores, core 0 falls through) ----
    b.bind(workerEntry);
    b.la(5, "pts");
    b.la(6, "cent");
    b.la(7, "assign");
    b.la(8, "psums");
    b.la(9, "pcounts");
    b.la(10, "big");
    b.fld(30, 10, 0); // f30 = big
    b.mcCoreId(22);   // x22 = c
    b.mcNumCores(21); // x21 = M
    // x23 = &psums[c*K], x24 = &pcounts[c*K] (K == 4).
    b.slli(13, 22, 6);
    b.add(23, 8, 13);
    b.slli(13, 22, 5);
    b.add(24, 9, 13);

    b.li(20, kIters);
    auto iterLoop = b.newLabel();
    b.bind(iterLoop);
    {
        // Zero this core's partial slice.
        b.li(11, 0);
        b.li(12, K);
        auto zeroLoop = b.newLabel();
        b.bind(zeroLoop);
        {
            b.slli(13, 11, 4);
            b.add(13, 13, 23);
            b.sd(0, 13, 0);
            b.sd(0, 13, 8);
            b.slli(13, 11, 3);
            b.add(13, 13, 24);
            b.sd(0, 13, 0);
            b.addi(11, 11, 1);
            b.blt(11, 12, zeroLoop);
        }

        // Assignment pass over this core's shard: i = c, c+M, c+2M, ...
        b.mv(11, 22);
        b.li(12, N);
        auto ptLoop = b.newLabel();
        auto ptDone = b.newLabel();
        b.bind(ptLoop);
        {
            b.bge(11, 12, ptDone);
            b.slli(13, 11, 4);
            b.add(14, 13, 5); // point ptr
            b.fld(1, 14, 0);  // px
            b.fld(2, 14, 8);  // py
            b.fmv(3, 30);     // best dist
            b.li(15, 0);      // best cluster
            b.li(16, 0);      // cluster index
            b.li(17, K);
            b.mv(18, 6); // centroid ptr
            auto cLoop = b.newLabel();
            b.bind(cLoop);
            {
                b.fld(4, 18, 0);
                b.fld(5, 18, 8);
                b.fsub_d(6, 1, 4);
                b.fsub_d(7, 2, 5);
                b.fmul_d(6, 6, 6);
                b.fmul_d(7, 7, 7);
                b.fadd_d(6, 6, 7); // dist
                auto notBetter = b.newLabel();
                b.flt_d(19, 6, 3);
                b.beq(19, 0, notBetter);
                b.fmv(3, 6);
                b.mv(15, 16);
                b.bind(notBetter);
                b.addi(18, 18, 16);
                b.addi(16, 16, 1);
                b.blt(16, 17, cLoop);
            }
            // assign[i] = best; private psums[best] += p; pcounts++.
            b.slli(13, 11, 3);
            b.add(13, 13, 7);
            b.sd(15, 13, 0);
            b.slli(13, 15, 4);
            b.add(13, 13, 23);
            b.fld(4, 13, 0);
            b.fadd_d(4, 4, 1);
            b.fsd(4, 13, 0);
            b.fld(4, 13, 8);
            b.fadd_d(4, 4, 2);
            b.fsd(4, 13, 8);
            b.slli(13, 15, 3);
            b.add(13, 13, 24);
            b.ld(16, 13, 0);
            b.addi(16, 16, 1);
            b.sd(16, 13, 0);

            b.add(11, 11, 21); // i += M
            b.j(ptLoop);
        }
        b.bind(ptDone);

        b.barrier();

        // Reduction (core 0 only): cent[k] = sum over cores / count.
        auto skipReduce = b.newLabel();
        b.bne(22, 0, skipReduce);
        {
            b.li(11, 0); // k
            b.li(12, K);
            auto kLoop = b.newLabel();
            b.bind(kLoop);
            {
                b.fmv_d_x(4, 0); // sumx
                b.fmv_d_x(5, 0); // sumy
                b.li(16, 0);     // count
                b.li(15, 0);     // source core
                auto cSum = b.newLabel();
                b.bind(cSum);
                {
                    b.slli(13, 15, 2); // c2*K
                    b.add(13, 13, 11); // + k
                    b.slli(14, 13, 4);
                    b.add(14, 14, 8); // &psums[c2*K + k]
                    b.fld(6, 14, 0);
                    b.fadd_d(4, 4, 6);
                    b.fld(6, 14, 8);
                    b.fadd_d(5, 5, 6);
                    b.slli(14, 13, 3);
                    b.add(14, 14, 9);
                    b.ld(17, 14, 0);
                    b.add(16, 16, 17);
                    b.addi(15, 15, 1);
                    b.blt(15, 21, cSum);
                }
                auto skipK = b.newLabel();
                b.beq(16, 0, skipK);
                b.fcvt_d_l(7, 16);
                b.slli(13, 11, 4);
                b.add(13, 13, 6); // &cent[k]
                b.fdiv_d(4, 4, 7);
                b.fsd(4, 13, 0);
                b.fdiv_d(5, 5, 7);
                b.fsd(5, 13, 8);
                b.bind(skipK);
                b.addi(11, 11, 1);
                b.blt(11, 12, kLoop);
            }
        }
        b.bind(skipReduce);

        b.barrier();

        b.addi(20, 20, -1);
        b.bne(20, 0, iterLoop);
    }

    // Epilogue: workers halt; core 0 joins and prints the centroids.
    auto workerHalt = b.newLabel();
    b.bne(22, 0, workerHalt);
    b.join();
    b.li(11, 0);
    b.li(12, 2 * K);
    auto prLoop = b.newLabel();
    b.bind(prLoop);
    {
        b.slli(13, 11, 3);
        b.add(13, 13, 6);
        b.fld(1, 13, 0);
        b.printFp(1);
        b.addi(11, 11, 1);
        b.blt(11, 12, prLoop);
    }
    b.halt();
    b.bind(workerHalt);
    b.halt();

    Workload w;
    w.name = "k-means-mt";
    w.program = b.build();
    w.inputDesc = std::to_string(N) + " pts, k=" + std::to_string(K);
    w.classification = "Clustering";
    w.outputSymbols = {"assign", "cent"};
    w.threaded = true;
    return w;
}

} // namespace tea::workloads
