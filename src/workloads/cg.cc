/**
 * @file
 * cg — conjugate-gradient solve of a dense symmetric positive-definite
 * system (NAS CG class-S flavour: dominated by fp-mul/fp-add inner
 * products, with per-iteration fp-div scalars). Classification:
 * Verification checking (the program itself checks the final residual
 * against a tolerance and prints PASS/FAIL plus the residual).
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildCg(uint64_t seed, int scale)
{
    const int N = 40 * scale;
    const int kIters = 8;
    Rng rng(seed ^ 0xc6ULL);

    // SPD matrix: random symmetric + strong diagonal.
    std::vector<double> A(static_cast<size_t>(N) * N, 0.0);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j <= i; ++j) {
            double v = (rng.nextDouble() - 0.5) * 0.2;
            A[static_cast<size_t>(i) * N + j] = v;
            A[static_cast<size_t>(j) * N + i] = v;
        }
        A[static_cast<size_t>(i) * N + i] = 2.0 + rng.nextDouble();
    }
    std::vector<double> rhs(N);
    for (int i = 0; i < N; ++i)
        rhs[i] = (rng.nextDouble() - 0.5) * 4.0;

    AsmBuilder b("cg");
    b.dataDoubles("A", A);
    b.dataDoubles("rhs", rhs);
    b.dataSpace("x", static_cast<uint64_t>(N) * 8);
    b.dataSpace("r", static_cast<uint64_t>(N) * 8);
    b.dataSpace("p", static_cast<uint64_t>(N) * 8);
    b.dataSpace("ap", static_cast<uint64_t>(N) * 8);
    b.dataSpace("verify", 16);
    b.dataDoubles("tol", {1e-8});

    const int rowB = N * 8;

    b.la(5, "A");
    b.la(6, "rhs");
    b.la(7, "x");
    b.la(8, "r");
    b.la(9, "p");
    b.la(10, "ap");

    // r = rhs; p = rhs; x = 0; rs_old (f20) = r.r
    b.fmv_d_x(20, 0);
    b.li(11, 0);
    b.li(12, N);
    auto initLoop = b.newLabel();
    b.bind(initLoop);
    {
        b.slli(13, 11, 3);
        b.add(14, 13, 6);
        b.fld(1, 14, 0);
        b.add(14, 13, 8);
        b.fsd(1, 14, 0);
        b.add(14, 13, 9);
        b.fsd(1, 14, 0);
        b.add(14, 13, 7);
        b.sd(0, 14, 0);
        b.fmul_d(2, 1, 1);
        b.fadd_d(20, 20, 2);
        b.addi(11, 11, 1);
        b.blt(11, 12, initLoop);
    }

    b.li(21, kIters);
    auto cgLoop = b.newLabel();
    b.bind(cgLoop);
    {
        // ap = A * p ; pap (f21) = p . ap
        b.fmv_d_x(21, 0);
        b.li(11, 0); // row
        b.mv(15, 5); // row ptr into A
        auto rowLoop = b.newLabel();
        b.bind(rowLoop);
        {
            b.fmv_d_x(1, 0); // acc
            b.li(13, 0);     // col
            b.mv(16, 9);     // p ptr
            b.mv(17, 15);    // A ptr
            auto colLoop = b.newLabel();
            b.bind(colLoop);
            {
                b.fld(2, 17, 0);
                b.fld(3, 16, 0);
                b.fmul_d(2, 2, 3);
                b.fadd_d(1, 1, 2);
                b.addi(17, 17, 8);
                b.addi(16, 16, 8);
                b.addi(13, 13, 1);
                b.blt(13, 12, colLoop);
            }
            b.slli(13, 11, 3);
            b.add(14, 13, 10);
            b.fsd(1, 14, 0); // ap[row]
            b.add(14, 13, 9);
            b.fld(3, 14, 0);
            b.fmul_d(2, 1, 3);
            b.fadd_d(21, 21, 2); // pap += p[row]*ap[row]
            b.li(13, rowB);
            b.add(15, 15, 13);
            b.addi(11, 11, 1);
            b.blt(11, 12, rowLoop);
        }

        // alpha (f22) = rs_old / pap
        b.fdiv_d(22, 20, 21);

        // x += alpha p ; r -= alpha ap ; rs_new (f23) = r.r
        b.fmv_d_x(23, 0);
        b.li(11, 0);
        auto updLoop = b.newLabel();
        b.bind(updLoop);
        {
            b.slli(13, 11, 3);
            b.add(14, 13, 9);
            b.fld(1, 14, 0); // p
            b.add(14, 13, 10);
            b.fld(2, 14, 0); // ap
            b.add(14, 13, 7);
            b.fld(3, 14, 0); // x
            b.fmul_d(4, 22, 1);
            b.fadd_d(3, 3, 4);
            b.fsd(3, 14, 0);
            b.add(14, 13, 8);
            b.fld(3, 14, 0); // r
            b.fmul_d(4, 22, 2);
            b.fsub_d(3, 3, 4);
            b.fsd(3, 14, 0);
            b.fmul_d(4, 3, 3);
            b.fadd_d(23, 23, 4);
            b.addi(11, 11, 1);
            b.blt(11, 12, updLoop);
        }

        // beta (f24) = rs_new / rs_old ; p = r + beta p
        b.fdiv_d(24, 23, 20);
        b.li(11, 0);
        auto pLoop = b.newLabel();
        b.bind(pLoop);
        {
            b.slli(13, 11, 3);
            b.add(14, 13, 9);
            b.fld(1, 14, 0);
            b.fmul_d(1, 1, 24);
            b.add(15, 13, 8);
            b.fld(2, 15, 0);
            b.fadd_d(1, 1, 2);
            b.fsd(1, 14, 0);
            b.addi(11, 11, 1);
            b.blt(11, 12, pLoop);
        }
        b.fmv(20, 23); // rs_old = rs_new

        b.addi(21, 21, -1);
        b.bne(21, 0, cgLoop);
    }

    // Verification: PASS if rs_new < tol.
    b.la(11, "tol");
    b.fld(1, 11, 0);
    b.flt_d(12, 23, 1);
    b.la(11, "verify");
    b.sd(12, 11, 0);
    b.fsd(23, 11, 8);
    b.printInt(12);
    b.printFp(23);
    b.halt();

    Workload w;
    w.name = "cg";
    w.program = b.build();
    w.inputDesc = "S (n=" + std::to_string(N) + ")";
    w.classification = "Verification checking";
    w.outputSymbols = {"verify", "x"};
    return w;
}

} // namespace tea::workloads
