/**
 * @file
 * hotspot-mt — SPMD multi-core variant of the hotspot stencil.
 *
 * Rows are sharded round-robin across cores (interior row y belongs
 * to core (y-1) mod M), so every stencil update reads north/south
 * neighbor rows that another core produced in the previous iteration
 * — a fault on any core diffuses into its neighbors' rows within two
 * iterations. A barrier separates the stencil from the border copy
 * (core 0 only), a second barrier separates the border copy from the
 * buffer swap, and every core swaps its private src/dst pointers in
 * lockstep. Workers halt after the loop; core 0 joins and prints the
 * hot-region checksum.
 *
 * Requires mc::McSim / mc::McFuncSim (control page + spawn ABI); the
 * single-core simulators fault on the control-page load.
 */

#include "isa/asmbuilder.hh"
#include "util/rng.hh"
#include "workloads/workloads.hh"

namespace tea::workloads {

using isa::AsmBuilder;

Workload
buildHotspotMt(uint64_t seed, int scale)
{
    const int N = 24 * scale; // grid side
    const int kIters = 4;     // even: "temp" holds the final grid
    Rng rng(seed ^ 0x407507ULL);

    // Same synthetic input as the single-core hotspot.
    std::vector<double> temp(static_cast<size_t>(N) * N);
    std::vector<double> power(static_cast<size_t>(N) * N);
    for (int y = 0; y < N; ++y) {
        for (int x = 0; x < N; ++x) {
            size_t i = static_cast<size_t>(y) * N + x;
            temp[i] = 323.0 + 2.0 * rng.nextDouble();
            bool hot = (x > N / 4 && x < N / 2 && y > N / 2);
            power[i] = (hot ? 1.5 : 0.05) + 0.01 * rng.nextDouble();
        }
    }

    AsmBuilder b("hotspot-mt");
    b.dataDoubles("temp", temp);
    b.dataDoubles("power", power);
    b.dataSpace("temp2", static_cast<uint64_t>(N) * N * 8);
    b.dataDoubles("consts", {0.12, 0.09, 0.45, 0.0125, 345.0});

    const int rowB = N * 8;

    // ---- core-0 entry: spawn M-1 workers, then fall into the body.
    auto workerEntry = b.newLabel();
    b.mcNumCores(21); // x21 = M
    b.laCode(22, workerEntry);
    b.li(11, 1);
    auto spawnLoop = b.newLabel();
    auto spawnDone = b.newLabel();
    b.bind(spawnLoop);
    {
        b.bge(11, 21, spawnDone);
        b.spawn(22);
        b.addi(11, 11, 1);
        b.j(spawnLoop);
    }
    b.bind(spawnDone);

    // ---- shared SPMD body (all cores, core 0 falls through) ----
    b.bind(workerEntry);
    b.la(5, "consts");
    b.fld(24, 5, 0);  // rx
    b.fld(25, 5, 8);  // ry
    b.fld(26, 5, 16); // step
    b.fld(27, 5, 24); // amb coupling
    b.fld(28, 5, 32); // ambient temp
    b.la(5, "temp");
    b.la(6, "temp2");
    b.la(7, "power");
    b.mcCoreId(22);   // x22 = c
    b.mcNumCores(21); // x21 = M

    b.li(20, kIters);
    auto iterLoop = b.newLabel();
    b.bind(iterLoop);
    {
        // Stencil over this core's rows: y = 1+c, 1+c+M, ...
        b.addi(10, 22, 1); // y
        b.li(11, N - 1);
        auto yLoop = b.newLabel();
        auto yDone = b.newLabel();
        b.bind(yLoop);
        {
            b.bge(10, 11, yDone);
            b.li(13, rowB);
            b.mul(14, 10, 13);
            b.addi(14, 14, 8);
            b.add(15, 5, 14); // src ptr
            b.add(16, 6, 14); // dst ptr
            b.add(17, 7, 14); // power ptr
            b.li(12, 1);      // x
            b.li(18, N - 1);
            auto xLoop = b.newLabel();
            b.bind(xLoop);
            {
                b.fld(1, 15, 0);     // t
                b.fld(2, 15, -rowB); // n (a neighbor core's row)
                b.fld(3, 15, rowB);  // s (a neighbor core's row)
                b.fld(4, 15, -8);    // w
                b.fld(5, 15, 8);     // e
                b.fld(6, 17, 0);     // p

                b.fadd_d(7, 2, 3);   // n+s
                b.fadd_d(8, 1, 1);   // 2t
                b.fsub_d(7, 7, 8);   // n+s-2t
                b.fmul_d(7, 7, 25);  // *ry
                b.fadd_d(9, 4, 5);   // w+e
                b.fsub_d(9, 9, 8);   // w+e-2t
                b.fmul_d(9, 9, 24);  // *rx
                b.fadd_d(7, 7, 9);
                b.fsub_d(10, 28, 1); // amb - t
                b.fmul_d(10, 10, 27);
                b.fadd_d(7, 7, 10);
                b.fadd_d(7, 7, 6);   // + power
                b.fmul_d(7, 7, 26);  // * step
                b.fadd_d(7, 7, 1);   // t'
                b.fsd(7, 16, 0);

                b.addi(15, 15, 8);
                b.addi(16, 16, 8);
                b.addi(17, 17, 8);
                b.addi(12, 12, 1);
                b.blt(12, 18, xLoop);
            }
            b.add(10, 10, 21); // y += M
            b.j(yLoop);
        }
        b.bind(yDone);

        b.barrier();

        // Border replication (core 0 only, on the freshly written dst).
        auto skipBorders = b.newLabel();
        b.bne(22, 0, skipBorders);
        {
            b.li(10, 0);
            b.li(11, N);
            b.li(19, (N - 1) * rowB);
            auto rowCopy = b.newLabel();
            b.bind(rowCopy);
            {
                b.slli(13, 10, 3);
                b.add(14, 5, 13);
                b.add(15, 6, 13);
                b.fld(1, 14, 0);
                b.fsd(1, 15, 0);
                b.add(14, 14, 19);
                b.add(15, 15, 19);
                b.fld(1, 14, 0);
                b.fsd(1, 15, 0);
                b.addi(10, 10, 1);
                b.blt(10, 11, rowCopy);
            }
            b.li(10, 0);
            auto colCopy = b.newLabel();
            b.bind(colCopy);
            {
                b.li(13, rowB);
                b.mul(14, 10, 13);
                b.add(15, 5, 14);
                b.add(16, 6, 14);
                b.fld(1, 15, 0);
                b.fsd(1, 16, 0);
                b.fld(1, 15, rowB - 8);
                b.fsd(1, 16, rowB - 8);
                b.addi(10, 10, 1);
                b.blt(10, 11, colCopy);
            }
        }
        b.bind(skipBorders);

        b.barrier();

        // Every core swaps its private src/dst pointers in lockstep.
        b.mv(13, 5);
        b.mv(5, 6);
        b.mv(6, 13);
        b.addi(20, 20, -1);
        b.bne(20, 0, iterLoop);
    }

    // Epilogue: workers halt; core 0 joins and prints the checksum of
    // the hot region (kIters is even, so x5 points back at "temp").
    auto workerHalt = b.newLabel();
    b.bne(22, 0, workerHalt);
    b.join();
    b.fmv_d_x(1, 0);
    b.li(10, N / 2);
    b.li(11, N - 1);
    auto sumLoop = b.newLabel();
    b.bind(sumLoop);
    {
        b.li(13, rowB);
        b.mul(14, 10, 13);
        b.add(14, 14, 5);
        b.fld(2, 14, (N / 3) * 8);
        b.fadd_d(1, 1, 2);
        b.addi(10, 10, 1);
        b.blt(10, 11, sumLoop);
    }
    b.printFp(1);
    b.halt();
    b.bind(workerHalt);
    b.halt();

    Workload w;
    w.name = "hotspot-mt";
    w.program = b.build();
    w.inputDesc = std::to_string(N) + " " + std::to_string(N) + " " +
                  std::to_string(kIters);
    w.classification = "File Output";
    w.outputSymbols = {"temp", "temp2"};
    w.threaded = true;
    return w;
}

} // namespace tea::workloads
