/**
 * @file
 * The seven evaluated workloads (Table II), re-implemented for TRISC-64.
 *
 * Each factory builds a Program via the AsmBuilder DSL together with
 * host-generated synthetic inputs (seeded, deterministic) and the
 * classification metadata the paper's Table II lists: which memory
 * regions constitute the checked output ("Image Output", "Verification
 * checking", "Clustering", "File Output") — SDC detection compares
 * those regions plus the console against the golden run.
 *
 * Inputs are scaled down from the paper's (which run up to 35.5e9
 * instructions on gem5) so that thousands of injection runs complete on
 * one laptop core; the `scale` parameter grows them back when more
 * fidelity is wanted.
 */

#ifndef TEA_WORKLOADS_WORKLOADS_HH
#define TEA_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace tea::workloads {

struct Workload
{
    std::string name;
    isa::Program program;
    std::string inputDesc;      ///< Table II "Input" column
    std::string classification; ///< Table II "Classification Criteria"
    /** Symbols whose memory regions are compared against the golden. */
    std::vector<std::string> outputSymbols;
    /**
     * True for the "-mt" variants that use the spawn/join/barrier ABI
     * and the per-core control page; they require the multi-core
     * simulators (mc::McSim / mc::McFuncSim) and trap on the
     * single-core ones.
     */
    bool threaded = false;
};

/** True when `name` denotes a threaded ("-mt") workload variant. */
bool isThreadedWorkload(const std::string &name);

/** The seven benchmark names, in the paper's Table II order. */
const std::vector<std::string> &workloadNames();

/**
 * Build a workload by name ("sobel", "cg", "k-means", "srad_v1",
 * "hotspot", "is", "mg"). The seed makes the synthetic input
 * deterministic; scale >= 1 enlarges the input.
 */
Workload buildWorkload(const std::string &name, uint64_t seed = 1,
                       int scale = 1);

// Individual builders (exposed for tests).
Workload buildSobel(uint64_t seed, int scale);
Workload buildCg(uint64_t seed, int scale);
Workload buildKmeans(uint64_t seed, int scale);
Workload buildSrad(uint64_t seed, int scale);
Workload buildHotspot(uint64_t seed, int scale);
Workload buildIs(uint64_t seed, int scale);
Workload buildMg(uint64_t seed, int scale);

// Multi-threaded (SPMD) variants; not part of the Table II seven, so
// they are buildable by name but absent from workloadNames().
Workload buildKmeansMt(uint64_t seed, int scale);
Workload buildHotspotMt(uint64_t seed, int scale);

} // namespace tea::workloads

#endif // TEA_WORKLOADS_WORKLOADS_HH
