#include "mc/mc_sim.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "util/logging.hh"

namespace tea::mc {

using sim::CorePipeline;
using sim::CorePort;
using sim::L1Cache;
using sim::TrapKind;

namespace {

/**
 * MESI-style directory: per-line sharer vector plus a single
 * modified-owner. Lines live in a hash map keyed by line address;
 * lookups only — iteration order never matters, so determinism holds.
 */
struct CoherenceDir
{
    struct Line
    {
        uint32_t sharers = 0;
        int owner = -1;
        bool modified = false;
    };

    unsigned lineBits;
    std::unordered_map<uint64_t, Line> lines;

    explicit CoherenceDir(unsigned lineBytes)
        : lineBits(static_cast<unsigned>(__builtin_ctz(lineBytes)))
    {
    }

    Line &line(uint64_t addr) { return lines[addr >> lineBits]; }
};

/** Word-granular (8-byte) origin-core taint over shared memory. */
struct TaintMap
{
    std::unordered_map<uint64_t, uint32_t> words;

    uint32_t get(uint64_t addr) const
    {
        auto it = words.find(addr >> 3);
        return it == words.end() ? 0 : it->second;
    }
    /** Returns true when a clean store overwrote a tainted word. */
    bool set(uint64_t addr, uint32_t taint)
    {
        uint64_t key = addr >> 3;
        if (taint == 0) {
            auto it = words.find(key);
            if (it == words.end())
                return false;
            words.erase(it);
            return true;
        }
        words[key] = taint;
        return false;
    }
};

} // namespace

struct McSim::Impl
{
    const isa::Program &prog;
    McConfig cfg;
    sim::Memory mem;
    sim::Console console;

    // Per-core machinery (ports must outlive the pipelines).
    struct McPort;
    std::vector<std::unique_ptr<McPort>> ports;
    std::vector<std::unique_ptr<CorePipeline>> pipes;
    std::vector<L1Cache> l1s;
    L1Cache l2;
    CoherenceDir dir;
    TaintMap taint;
    CoherenceStats coh;

    // Scheduler / sync-hub state.
    std::vector<uint8_t> active; ///< stepping (core 0 until HALT)
    // Barrier: per-core passed-phase vs. globally released phase.
    std::vector<uint64_t> barPhase;
    std::vector<uint8_t> inBarrier;
    uint64_t barGlobalPhase = 0;
    unsigned barArrived = 0;

    /** Port for one core: ctrl page, coherent loads/stores, syscalls. */
    struct McPort final : CorePort
    {
        Impl &m;
        unsigned core;

        McPort(Impl &impl, unsigned coreId) : m(impl), core(coreId) {}

        static bool inCtrl(uint64_t addr, unsigned size)
        {
            return addr >= isa::kMcCtrlBase &&
                   addr + size <= isa::kMcCtrlBase + isa::kMcCtrlSize;
        }

        LoadResult load(uint64_t addr, unsigned size) override
        {
            if (inCtrl(addr, size)) {
                uint64_t v = 0;
                if (addr == isa::kMcCtrlCoreId)
                    v = core;
                else if (addr == isa::kMcCtrlNumCores)
                    v = m.cfg.cores;
                return {v, m.cfg.core.latCacheHit, 0};
            }
            unsigned lat = m.loadLatency(core, addr);
            return {m.mem.read(addr, size), lat, m.taint.get(addr)};
        }

        void store(uint64_t addr, unsigned size, uint64_t value,
                   uint32_t taint) override
        {
            m.storeAccess(core, addr);
            m.mem.write(addr, size, value);
            if (m.taint.set(addr, taint))
                ++m.coh.overwriteMasks;
        }

        bool mapped(uint64_t addr, unsigned size,
                    bool isStore) const override
        {
            if (inCtrl(addr, size))
                return !isStore; // control page is read-only
            return m.mem.isMapped(addr, size);
        }

        Sys syscall(int func, uint64_t arg, TrapKind &trap) override
        {
            return m.syscall(core, func, arg, trap);
        }
    };

    Impl(const isa::Program &p, const McConfig &c,
         std::vector<sim::InjectionPlan> plans)
        : prog(p), cfg(c),
          l2(c.l2Sets, c.l2Ways, c.core.l1LineBytes),
          dir(c.core.l1LineBytes)
    {
        mem.loadProgram(prog);
        plans.resize(cfg.cores);
        l1s.reserve(cfg.cores);
        ports.reserve(cfg.cores);
        pipes.reserve(cfg.cores);
        for (unsigned k = 0; k < cfg.cores; ++k) {
            l1s.emplace_back(cfg.core.l1Sets, cfg.core.l1Ways,
                             cfg.core.l1LineBytes);
            ports.push_back(std::make_unique<McPort>(*this, k));
            pipes.push_back(std::make_unique<CorePipeline>(
                prog, cfg.core, std::move(plans[k]), *ports[k], k));
        }
        active.assign(cfg.cores, 0);
        active[0] = 1; // workers park until spawned
        barPhase.assign(cfg.cores, 0);
        inBarrier.assign(cfg.cores, 0);
    }

    uint64_t stackFor(unsigned core) const
    {
        return isa::kStackTop - 64 -
               static_cast<uint64_t>(core) * isa::kMcStackBytes;
    }

    unsigned numActive() const
    {
        unsigned n = 0;
        for (uint8_t a : active)
            n += a;
        return n;
    }

    // ---- coherence timing --------------------------------------------
    unsigned loadLatency(unsigned core, uint64_t addr)
    {
        bool l1Hit = l1s[core].access(addr, true);
        auto &ln = dir.line(addr);
        if (l1Hit && (ln.sharers >> core) & 1)
            return cfg.core.latCacheHit;
        unsigned lat;
        if (ln.modified && ln.owner != static_cast<int>(core)) {
            // Dirty in another L1: cache-to-cache fill + downgrade.
            ++coh.c2cTransfers;
            ln.modified = false;
            lat = cfg.latC2c;
        } else {
            ++coh.l2Accesses;
            lat = l2.access(addr, true) ? cfg.latL2Hit
                                        : cfg.core.latCacheMiss;
            if (lat == cfg.core.latCacheMiss)
                ++coh.l2Misses;
        }
        ln.sharers |= 1u << core;
        return lat;
    }

    void storeAccess(unsigned core, uint64_t addr)
    {
        auto &ln = dir.line(addr);
        uint32_t others = ln.sharers & ~(1u << core);
        if (others) {
            coh.invalidations +=
                static_cast<unsigned>(std::popcount(others));
            for (unsigned k = 0; k < cfg.cores; ++k)
                if ((others >> k) & 1)
                    l1s[k].invalidate(addr);
        }
        if (!(ln.modified && ln.owner == static_cast<int>(core)))
            ++coh.upgrades;
        ln.sharers = 1u << core;
        ln.owner = static_cast<int>(core);
        ln.modified = true;
        l1s[core].access(addr, true);
        l2.access(addr, true);
    }

    // ---- spawn / join / barrier hub ----------------------------------
    CorePort::Sys syscall(unsigned core, int func, uint64_t arg,
                          TrapKind &trap)
    {
        using isa::Syscall;
        switch (static_cast<Syscall>(func)) {
          case Syscall::PrintInt:
          case Syscall::PrintFp:
            console.push_back(arg);
            return CorePort::Sys::Proceed;
          case Syscall::Spawn: {
            ++coh.spawns;
            if (arg < isa::kCodeBase || (arg & 3) ||
                (arg - isa::kCodeBase) / 4 >= prog.code.size()) {
                trap = TrapKind::SyncFault;
                return CorePort::Sys::Fault;
            }
            int target = -1;
            for (unsigned k = 1; k < cfg.cores; ++k) {
                if (!active[k]) {
                    target = static_cast<int>(k);
                    break;
                }
            }
            if (target < 0) {
                // Nothing left to spawn onto (or a corrupted spawn
                // loop): a real runtime would abort here too.
                trap = TrapKind::SyncFault;
                return CorePort::Sys::Fault;
            }
            pipes[target]->restart((arg - isa::kCodeBase) / 4,
                                   stackFor(target));
            active[target] = 1;
            return CorePort::Sys::Proceed;
          }
          case Syscall::Join: {
            for (unsigned k = 1; k < cfg.cores; ++k)
                if (active[k])
                    return CorePort::Sys::Stall;
            ++coh.joins;
            return CorePort::Sys::Proceed;
          }
          case Syscall::Barrier: {
            if (barPhase[core] < barGlobalPhase) {
                // Released while this core was stalled.
                ++barPhase[core];
                return CorePort::Sys::Proceed;
            }
            if (!inBarrier[core]) {
                inBarrier[core] = 1;
                ++barArrived;
            }
            if (barArrived >= numActive()) {
                ++barGlobalPhase;
                barArrived = 0;
                std::fill(inBarrier.begin(), inBarrier.end(), 0);
                ++barPhase[core];
                ++coh.barriers;
                return CorePort::Sys::Proceed;
            }
            return CorePort::Sys::Stall;
          }
          default:
            return CorePort::Sys::Proceed;
        }
    }
};

McSim::McSim(isa::Program prog, McConfig cfg,
             std::vector<sim::InjectionPlan> plans)
    : prog_(std::move(prog))
{
    cfg.cores = std::clamp(cfg.cores, 1u, isa::kMcMaxCores);
    cfg.quantum = std::max(cfg.quantum, 1u);
    panic_if(plans.size() > cfg.cores,
             "more injection plans (%zu) than cores (%u)", plans.size(),
             cfg.cores);
    impl_ = std::make_unique<Impl>(prog_, cfg, std::move(plans));
}

McSim::~McSim() = default;

const sim::Memory &
McSim::memory() const
{
    return impl_->mem;
}

const sim::Console &
McSim::console() const
{
    return impl_->console;
}

unsigned
McSim::cores() const
{
    return impl_->cfg.cores;
}

McSim::Result
McSim::run(uint64_t maxCycles, const Watchdog *watchdog)
{
    Impl &m = *impl_;
    Result res{};
    res.status = Status::CycleLimit;

    constexpr uint64_t kPollMask = 0xFFF;
    uint64_t steps = 0;
    uint64_t lastCommitStep = 0;
    bool done = false;

    while (!done) {
        for (unsigned k = 0; k < m.cfg.cores && !done; ++k) {
            if (!m.active[k])
                continue;
            for (unsigned q = 0; q < m.cfg.quantum; ++q) {
                if (watchdog && (steps & kPollMask) == 0) {
                    Watchdog::Stop stop = watchdog->poll();
                    if (stop != Watchdog::Stop::None) {
                        res.status = Status::Interrupted;
                        res.stop = stop;
                        done = true;
                        break;
                    }
                }
                if (steps >= maxCycles) {
                    res.status = Status::CycleLimit;
                    done = true;
                    break;
                }
                if (steps - lastCommitStep > m.cfg.deadlockWindow) {
                    res.status = Status::Deadlock;
                    done = true;
                    break;
                }
                uint64_t before = m.pipes[k]->committed();
                TrapKind trap = TrapKind::None;
                auto st = m.pipes[k]->step(trap);
                ++steps;
                if (m.pipes[k]->committed() != before)
                    lastCommitStep = steps;
                if (st == CorePipeline::Step::Halted) {
                    if (k == 0) {
                        res.status = Status::Halted;
                        done = true;
                    } else {
                        m.active[k] = 0; // park until next spawn
                    }
                    break;
                }
                if (st == CorePipeline::Step::Crashed) {
                    res.status = Status::Crashed;
                    res.trap = trap;
                    res.trapCore = static_cast<int>(k);
                    done = true;
                    break;
                }
            }
        }
    }

    res.cycles = steps;
    res.perCoreCommitted.resize(m.cfg.cores);
    res.perCoreInjected.resize(m.cfg.cores);
    for (unsigned k = 0; k < m.cfg.cores; ++k) {
        const CorePipeline &p = *m.pipes[k];
        res.committed += p.committed();
        res.executed += p.executed();
        res.injectionsApplied += p.injectionsApplied();
        res.injectionsOnWrongPath += p.injectionsOnWrongPath();
        res.branchMispredicts += p.branchMispredicts();
        res.squashedInstructions += p.squashedInstructions();
        res.crossTaintedLoads += p.crossTaintedLoads();
        res.l1Misses += m.l1s[k].misses;
        res.l1Accesses += m.l1s[k].accesses;
        res.perCoreCommitted[k] = p.committed();
        res.perCoreInjected[k] = p.injectionsApplied();
    }
    res.coh = m.coh;
    return res;
}

} // namespace tea::mc
