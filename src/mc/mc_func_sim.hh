/**
 * @file
 * Functional N-core interpreter.
 *
 * The multi-core analogue of FuncSim: architectural execution only, a
 * fixed one-instruction round-robin interleave over active cores, and
 * full spawn/join/barrier + control-page semantics. Used for golden
 * profiles (per-core dynamic op counts feed per-core injection
 * planning) and for merged FP operand traces (workload-aware model).
 * Stalled syscall retries are not counted as instructions, so the
 * per-core counts match what each core architecturally executes.
 */

#ifndef TEA_MC_MC_FUNC_SIM_HH
#define TEA_MC_MC_FUNC_SIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sim/func_sim.hh"
#include "sim/memory.hh"
#include "sim/sim_types.hh"

namespace tea::mc {

class McFuncSim
{
  public:
    struct Config
    {
        unsigned cores = 2; ///< clamped to [1, isa::kMcMaxCores]
        bool trapOnSevereFp = true;
        uint64_t maxInstructions = 2'000'000'000ULL;
    };

    McFuncSim(isa::Program prog, Config cfg);

    enum class Status
    {
        Halted,
        Trapped,
        LimitReached,
        Deadlock, ///< every runnable core stalled on a syscall
    };

    struct Result
    {
        Status status;
        sim::TrapKind trap;
        int trapCore;
        uint64_t instructions; ///< total across cores
    };

    Result run();

    /** Optional merged FP trace sink, in interleave order. */
    void setFpTrace(std::vector<sim::FpTraceEntry> *sink)
    {
        fpTrace_ = sink;
    }

    unsigned cores() const { return cfg_.cores; }
    const sim::Memory &memory() const { return mem_; }
    const sim::Console &console() const { return console_; }
    uint64_t instructions(unsigned core) const
    {
        return cores_[core].instructions;
    }
    uint64_t opCount(unsigned core, isa::Op op) const
    {
        return cores_[core].opCounts[static_cast<size_t>(op)];
    }

  private:
    struct Core
    {
        std::array<uint64_t, 32> xreg{};
        std::array<uint64_t, 32> freg{};
        uint64_t idx = 0;
        bool running = false;
        bool halted = false;
        uint64_t instructions = 0;
        std::array<uint64_t, isa::kNumOps> opCounts{};
    };

    enum class StepOut { Advanced, Stalled, Halted, Trapped };
    StepOut stepCore(unsigned k, sim::TrapKind &trap);

    isa::Program prog_;
    Config cfg_;
    sim::Memory mem_;
    sim::Console console_;
    std::vector<Core> cores_;
    std::vector<sim::FpTraceEntry> *fpTrace_ = nullptr;

    // Barrier state (same scheme as McSim's hub).
    std::vector<uint64_t> barPhase_;
    std::vector<uint8_t> inBarrier_;
    uint64_t barGlobalPhase_ = 0;
    unsigned barArrived_ = 0;
};

} // namespace tea::mc

#endif // TEA_MC_MC_FUNC_SIM_HH
