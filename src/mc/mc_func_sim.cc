#include "mc/mc_func_sim.hh"

#include <algorithm>

#include "sim/exec.hh"
#include "util/logging.hh"

namespace tea::mc {

using isa::Op;
using sim::TrapKind;

McFuncSim::McFuncSim(isa::Program prog, Config cfg)
    : prog_(std::move(prog)), cfg_(cfg)
{
    cfg_.cores = std::clamp(cfg_.cores, 1u, isa::kMcMaxCores);
    mem_.loadProgram(prog_);
    cores_.resize(cfg_.cores);
    cores_[0].running = true;
    cores_[0].idx = prog_.entryIndex;
    cores_[0].xreg[2] = isa::kStackTop - 64;
    barPhase_.assign(cfg_.cores, 0);
    inBarrier_.assign(cfg_.cores, 0);
}

McFuncSim::StepOut
McFuncSim::stepCore(unsigned k, TrapKind &trap)
{
    Core &c = cores_[k];
    const auto &code = prog_.code;
    if (c.idx >= code.size()) {
        trap = TrapKind::BadJump;
        return StepOut::Trapped;
    }
    const isa::Instruction &insn = code[c.idx];
    uint64_t next = c.idx + 1;

    auto countAndAdvance = [&]() {
        ++c.instructions;
        ++c.opCounts[static_cast<size_t>(insn.op)];
        c.idx = next;
        return StepOut::Advanced;
    };

    switch (insn.op) {
      case Op::HALT:
        ++c.instructions;
        ++c.opCounts[static_cast<size_t>(insn.op)];
        c.halted = true;
        c.running = false;
        return StepOut::Halted;
      case Op::NOP:
        break;
      case Op::ECALL: {
        using isa::Syscall;
        switch (static_cast<Syscall>(insn.imm)) {
          case Syscall::PrintInt:
            console_.push_back(c.xreg[insn.rs1]);
            break;
          case Syscall::PrintFp:
            console_.push_back(c.freg[insn.rs1]);
            break;
          case Syscall::Spawn: {
            uint64_t arg = c.xreg[insn.rs1];
            if (arg < isa::kCodeBase || (arg & 3) ||
                (arg - isa::kCodeBase) / 4 >= code.size()) {
                trap = TrapKind::SyncFault;
                return StepOut::Trapped;
            }
            int target = -1;
            for (unsigned j = 1; j < cfg_.cores; ++j) {
                if (!cores_[j].running) {
                    target = static_cast<int>(j);
                    break;
                }
            }
            if (target < 0) {
                trap = TrapKind::SyncFault;
                return StepOut::Trapped;
            }
            Core &w = cores_[static_cast<size_t>(target)];
            w.running = true;
            w.halted = false;
            w.idx = (arg - isa::kCodeBase) / 4;
            w.xreg[2] = isa::kStackTop - 64 -
                        static_cast<uint64_t>(target) *
                            isa::kMcStackBytes;
            break;
          }
          case Syscall::Join: {
            for (unsigned j = 1; j < cfg_.cores; ++j)
                if (cores_[j].running)
                    return StepOut::Stalled;
            break;
          }
          case Syscall::Barrier: {
            if (barPhase_[k] < barGlobalPhase_) {
                ++barPhase_[k];
                break;
            }
            unsigned nActive = 0;
            for (const Core &cc : cores_)
                nActive += cc.running ? 1 : 0;
            if (!inBarrier_[k]) {
                inBarrier_[k] = 1;
                ++barArrived_;
            }
            if (barArrived_ >= nActive) {
                ++barGlobalPhase_;
                barArrived_ = 0;
                std::fill(inBarrier_.begin(), inBarrier_.end(), 0);
                ++barPhase_[k];
                break;
            }
            return StepOut::Stalled;
          }
          default:
            break;
        }
        break;
      }
      case Op::JAL:
        c.xreg[insn.rd] = (c.idx + 1) * 4 + isa::kCodeBase;
        if (insn.rd == 0)
            c.xreg[0] = 0;
        next = c.idx + static_cast<int64_t>(insn.imm);
        break;
      case Op::JALR: {
        uint64_t target =
            c.xreg[insn.rs1] + static_cast<int64_t>(insn.imm);
        c.xreg[insn.rd] = (c.idx + 1) * 4 + isa::kCodeBase;
        c.xreg[0] = 0;
        if (target < isa::kCodeBase || (target & 3) ||
            (target - isa::kCodeBase) / 4 >= code.size()) {
            trap = TrapKind::BadJump;
            return StepOut::Trapped;
        }
        next = (target - isa::kCodeBase) / 4;
        break;
      }
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BLTU: case Op::BGEU:
        if (sim::branchTaken(insn.op, c.xreg[insn.rs1], c.xreg[insn.rs2]))
            next = c.idx + static_cast<int64_t>(insn.imm);
        break;
      case Op::LD: case Op::LW: case Op::FLD: {
        uint64_t addr =
            c.xreg[insn.rs1] + static_cast<int64_t>(insn.imm);
        unsigned size = sim::memAccessSize(insn.op);
        if (addr & (size - 1)) {
            trap = TrapKind::Misaligned;
            return StepOut::Trapped;
        }
        if (addr < isa::kProtectedTop) {
            trap = TrapKind::ProtectedAccess;
            return StepOut::Trapped;
        }
        uint64_t v;
        if (addr >= isa::kMcCtrlBase &&
            addr + size <= isa::kMcCtrlBase + isa::kMcCtrlSize) {
            v = addr == isa::kMcCtrlCoreId     ? k
                : addr == isa::kMcCtrlNumCores ? cfg_.cores
                                               : 0;
        } else if (!mem_.isMapped(addr, size)) {
            trap = TrapKind::MemFault;
            return StepOut::Trapped;
        } else {
            v = mem_.read(addr, size);
        }
        if (insn.op == Op::LW)
            v = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int32_t>(v)));
        if (insn.op == Op::FLD)
            c.freg[insn.rd] = v;
        else
            c.xreg[insn.rd] = v;
        break;
      }
      case Op::SD: case Op::SW: case Op::FSD: {
        uint64_t addr =
            c.xreg[insn.rs1] + static_cast<int64_t>(insn.imm);
        unsigned size = sim::memAccessSize(insn.op);
        if (addr & (size - 1)) {
            trap = TrapKind::Misaligned;
            return StepOut::Trapped;
        }
        if (addr < isa::kProtectedTop) {
            trap = TrapKind::ProtectedAccess;
            return StepOut::Trapped;
        }
        // The control page is read-only and unmapped for stores, so a
        // write lands here like McSim's port: a MemFault.
        if (!mem_.isMapped(addr, size)) {
            trap = TrapKind::MemFault;
            return StepOut::Trapped;
        }
        uint64_t data =
            (insn.op == Op::FSD) ? c.freg[insn.rd] : c.xreg[insn.rd];
        mem_.write(addr, size, data);
        break;
      }
      default: {
        uint64_t a, b = 0;
        if (isa::readsFpRs1(insn.op))
            a = c.freg[insn.rs1];
        else
            a = c.xreg[insn.rs1];
        if (isa::readsFpRs2(insn.op))
            b = c.freg[insn.rs2];
        else if (isa::readsIntRs2(insn.op))
            b = c.xreg[insn.rs2];
        if (fpTrace_ && isa::isFpArith(insn.op))
            fpTrace_->push_back(
                sim::FpTraceEntry{isa::fpuOpFor(insn.op), a, b});
        sim::ExecOut out = sim::execArith(insn, a, b);
        if (out.fpSevere && cfg_.trapOnSevereFp &&
            isa::isFpArith(insn.op)) {
            trap = TrapKind::FpException;
            return StepOut::Trapped;
        }
        if (isa::writesFpReg(insn.op)) {
            c.freg[insn.rd] = out.value;
        } else if (isa::writesIntReg(insn.op)) {
            c.xreg[insn.rd] = out.value;
            c.xreg[0] = 0;
        }
        break;
      }
    }
    return countAndAdvance();
}

McFuncSim::Result
McFuncSim::run()
{
    uint64_t total = 0;
    while (total < cfg_.maxInstructions) {
        bool progressed = false;
        bool anyRunning = false;
        for (unsigned k = 0; k < cfg_.cores; ++k) {
            if (!cores_[k].running)
                continue;
            anyRunning = true;
            TrapKind trap = TrapKind::None;
            StepOut out = stepCore(k, trap);
            switch (out) {
              case StepOut::Advanced:
                ++total;
                progressed = true;
                break;
              case StepOut::Halted:
                ++total;
                progressed = true;
                if (k == 0)
                    return {Status::Halted, TrapKind::None, -1, total};
                break;
              case StepOut::Trapped:
                return {Status::Trapped, trap, static_cast<int>(k),
                        total};
              case StepOut::Stalled:
                break;
            }
        }
        panic_if(!anyRunning, "mc funcsim: no runnable core");
        if (!progressed)
            return {Status::Deadlock, TrapKind::None, -1, total};
    }
    return {Status::LimitReached, TrapKind::None, -1, total};
}

} // namespace tea::mc
