/**
 * @file
 * N-core shared-memory cycle-level simulator.
 *
 * `McSim` instantiates N `CorePipeline` cores (the same machine OooSim
 * wraps) behind private L1 tag models, a shared L2, and a MESI-style
 * coherence layer: line-granularity state with per-line sharer
 * vectors, invalidate-on-write, and cache-to-cache transfer latency
 * for dirty lines. Functional data always flows through the one
 * shared `Memory` in global interleave order, so coherence is a
 * timing/statistics model — never a second source of truth.
 *
 * Determinism rule: the scheduler is a fixed round-robin over cores
 * with a configurable quantum (`REPRO_MC_CORES`/`REPRO_MC_QUANTUM`),
 * and a whole N-core simulation steps on ONE host thread. Campaign
 * parallelism stays at the run level, exactly like single-core
 * campaigns — so any injection replays bit-identically regardless of
 * host thread count, fleet sharding, or daemon scheduling.
 *
 * Programs use the spawn/join/barrier ECALLs (src/isa) and the
 * per-core control page (kMcCtrlBase) for SPMD sharding. Syscalls
 * execute non-speculatively at commit: an injected error that corrupts
 * a spawn target or loop bound produces a genuine SyncFault crash or a
 * barrier deadlock, which the bounded-progress watchdog converts into
 * a distinct `Deadlock` status (no commit on any core for a window).
 */

#ifndef TEA_MC_MC_SIM_HH
#define TEA_MC_MC_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "sim/ooo_sim.hh"
#include "sim/sim_types.hh"
#include "util/watchdog.hh"

namespace tea::mc {

struct McConfig
{
    unsigned cores = 2;   ///< clamped to [1, isa::kMcMaxCores]
    unsigned quantum = 64; ///< cycles per core per round-robin turn

    // Shared-L2 / coherence timing.
    unsigned l2Sets = 512;
    unsigned l2Ways = 8;
    unsigned latL2Hit = 20;  ///< L1 miss that hits in the shared L2
    unsigned latC2c = 30;    ///< dirty line forwarded from another L1

    /**
     * Bounded-progress watchdog: if no core commits an instruction
     * for this many global cycles while the machine is not done, the
     * run ends with Status::Deadlock (e.g. a barrier whose arrival
     * count was corrupted). Livelock that still commits falls through
     * to the ordinary cycle limit instead.
     */
    uint64_t deadlockWindow = 250'000;

    sim::OooConfig core; ///< per-core pipeline configuration
};

/** Coherence / synchronization statistics for one run. */
struct CoherenceStats
{
    uint64_t invalidations = 0;  ///< sharer lines killed by stores
    uint64_t c2cTransfers = 0;   ///< dirty-line cache-to-cache fills
    uint64_t upgrades = 0;       ///< S->M ownership acquisitions
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    /** Clean committed stores that overwrote a tainted word. */
    uint64_t overwriteMasks = 0;
    uint64_t spawns = 0;
    uint64_t joins = 0;
    uint64_t barriers = 0; ///< completed barrier episodes
};

class McSim
{
  public:
    /**
     * `plans[k]` is core k's injection plan ("the n-th FP op on core
     * k"); missing entries mean no injections on that core.
     */
    McSim(isa::Program prog, McConfig cfg = McConfig{},
          std::vector<sim::InjectionPlan> plans = {});
    ~McSim();

    enum class Status
    {
        Halted,    ///< core 0 committed HALT
        Crashed,   ///< a trap reached commit on some core
        CycleLimit,
        Deadlock,  ///< bounded-progress watchdog fired
        Interrupted,
    };

    struct Result
    {
        Status status;
        sim::TrapKind trap = sim::TrapKind::None;
        int trapCore = -1; ///< core that crashed (Crashed only)
        Watchdog::Stop stop = Watchdog::Stop::None;
        /** Total stepped core-cycles (the scheduler's clock). */
        uint64_t cycles = 0;
        uint64_t committed = 0;
        uint64_t executed = 0;
        uint64_t injectionsApplied = 0;
        uint64_t injectionsOnWrongPath = 0;
        uint64_t branchMispredicts = 0;
        uint64_t squashedInstructions = 0;
        uint64_t l1Misses = 0;
        uint64_t l1Accesses = 0;
        /** Committed loads of words tainted by *another* core. */
        uint64_t crossTaintedLoads = 0;
        CoherenceStats coh;
        std::vector<uint64_t> perCoreCommitted;
        std::vector<uint64_t> perCoreInjected;
    };

    Result run(uint64_t maxCycles, const Watchdog *watchdog = nullptr);

    const sim::Memory &memory() const;
    const sim::Console &console() const;
    unsigned cores() const;

  private:
    struct Impl;
    isa::Program prog_; ///< owned copy; callers may pass temporaries
    std::unique_ptr<Impl> impl_;
};

} // namespace tea::mc

#endif // TEA_MC_MC_SIM_HH
