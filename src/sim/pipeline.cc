#include "sim/pipeline.hh"

#include <algorithm>

#include "isa/isa.hh"
#include "sim/exec.hh"
#include "util/logging.hh"

namespace tea::sim {

using isa::Instruction;
using isa::Op;

CorePort::~CorePort() = default;

CorePipeline::CorePipeline(const isa::Program &prog, const OooConfig &cfg,
                           InjectionPlan plan, CorePort &port,
                           unsigned coreId)
    : prog_(prog), cfg_(cfg), plan_(std::move(plan)), port_(port),
      coreId_(coreId), coreMask_(1u << (coreId & 31)),
      rob_(cfg.robSize), fetchIdx_(prog.entryIndex)
{
    mapInt_.fill(-1);
    mapFp_.fill(-1);
    xreg_[2] = isa::kStackTop - 64;
}

void
CorePipeline::restart(uint64_t entryIdx, uint64_t sp)
{
    head_ = tail_ = count_ = 0;
    iq_.clear();
    fetchBuf_.clear();
    mapInt_.fill(-1);
    mapFp_.fill(-1);
    loadsInFlight_ = storesInFlight_ = 0;
    fetchIdx_ = entryIdx;
    fetchStopped_ = false;
    xreg_[2] = sp;
    xregTaint_[2] = 0;
}

// ---- fetch -------------------------------------------------------------
void
CorePipeline::fetch()
{
    for (unsigned i = 0; i < cfg_.fetchWidth; ++i) {
        if (fetchStopped_ || fetchBuf_.size() >= 2 * cfg_.fetchWidth)
            return;
        if (fetchIdx_ >= prog_.code.size()) {
            // Wrong-path runaway; wait for a redirect.
            return;
        }
        const Instruction &insn = prog_.code[fetchIdx_];
        uint64_t next = fetchIdx_ + 1;
        if (isa::isBranch(insn.op)) {
            if (pred_.predictTaken(fetchIdx_))
                next = fetchIdx_ + static_cast<int64_t>(insn.imm);
        } else if (insn.op == Op::JAL) {
            next = fetchIdx_ + static_cast<int64_t>(insn.imm);
        } else if (insn.op == Op::JALR) {
            uint64_t t = pred_.predictTarget(fetchIdx_);
            next = (t == ~0ULL) ? fetchIdx_ + 1 : t;
        } else if (insn.op == Op::HALT) {
            fetchBuf_.push_back({fetchIdx_, fetchIdx_});
            fetchStopped_ = true;
            return;
        }
        fetchBuf_.push_back({fetchIdx_, next});
        fetchIdx_ = next;
    }
}

// ---- rename / dispatch -------------------------------------------------
void
CorePipeline::captureSource(RobEntry &e, int slot, unsigned reg,
                            bool isFp)
{
    e.srcIsFp[slot] = isFp;
    int producer = isFp ? mapFp_[reg] : (reg ? mapInt_[reg] : -1);
    if (producer >= 0) {
        e.src[slot] = producer;
        e.srcVal[slot] = 0;
        e.srcTaint[slot] = 0;
    } else {
        e.src[slot] = -1;
        e.srcVal[slot] = isFp ? freg_[reg] : readIntNow(reg);
        e.srcTaint[slot] =
            isFp ? fregTaint_[reg] : (reg ? xregTaint_[reg] : 0);
    }
}

void
CorePipeline::rename()
{
    for (unsigned i = 0; i < cfg_.renameWidth; ++i) {
        if (fetchBuf_.empty() || count_ == rob_.size() ||
            iq_.size() >= cfg_.iqSize)
            return;
        auto [pcIdx, predNext] = fetchBuf_.front();
        const Instruction &insn = prog_.code[pcIdx];
        if (isa::isLoad(insn.op) && loadsInFlight_ >= cfg_.maxLoads)
            return;
        if (isa::isStore(insn.op) && storesInFlight_ >= cfg_.maxStores)
            return;
        fetchBuf_.pop_front();

        size_t slot = tail_;
        tail_ = robNext(tail_);
        ++count_;
        RobEntry &e = rob_[slot];
        e = RobEntry{};
        e.insn = insn;
        e.pcIdx = pcIdx;
        e.seq = nextSeq_++;
        e.predNextIdx = predNext;
        e.stage = Stage::InIQ;
        e.src[0] = e.src[1] = -1;
        e.isLoad = isa::isLoad(insn.op);
        e.isStore = isa::isStore(insn.op);
        e.isCtrl = isa::isBranch(insn.op) || isa::isJump(insn.op);
        e.trap = TrapKind::None;

        // Sources.
        bool ecallFp =
            insn.op == Op::ECALL &&
            insn.imm == static_cast<int>(isa::Syscall::PrintFp);
        if (isa::readsFpRs1(insn.op) || ecallFp)
            captureSource(e, 0, insn.rs1, true);
        else if (isa::readsIntRs1(insn.op) && !ecallFp)
            captureSource(e, 0, insn.rs1, false);
        if (isa::readsFpRs2(insn.op))
            captureSource(e, 1, insn.rs2, true);
        else if (isa::readsIntRs2(insn.op))
            captureSource(e, 1, insn.rs2, false);
        if (e.isStore)
            captureSource(e, 1, insn.rd, isa::storeDataIsFp(insn.op));

        // Destination.
        e.destIsFp = isa::writesFpReg(insn.op);
        e.destReg = insn.rd;
        e.hasDest =
            isa::hasDest(insn.op) && !(!e.destIsFp && insn.rd == 0);
        if (e.hasDest) {
            if (e.destIsFp)
                mapFp_[e.destReg] = static_cast<int>(slot);
            else
                mapInt_[e.destReg] = static_cast<int>(slot);
        }

        if (e.isLoad)
            ++loadsInFlight_;
        if (e.isStore)
            ++storesInFlight_;
        iq_.push_back(static_cast<int>(slot));
    }
}

// ---- issue -------------------------------------------------------------
bool
CorePipeline::sourcesReady(const RobEntry &e) const
{
    for (int s = 0; s < 2; ++s) {
        if (e.src[s] >= 0 &&
            rob_[static_cast<size_t>(e.src[s])].stage != Stage::Done)
            return false;
    }
    return true;
}

uint64_t
CorePipeline::sourceValue(const RobEntry &e, int s) const
{
    if (e.src[s] >= 0)
        return rob_[static_cast<size_t>(e.src[s])].result;
    return e.srcVal[s];
}

uint32_t
CorePipeline::sourceTaint(const RobEntry &e, int s) const
{
    if (e.src[s] >= 0)
        return rob_[static_cast<size_t>(e.src[s])].taint;
    return e.srcTaint[s];
}

unsigned
CorePipeline::latencyOf(Op op) const
{
    if (op == Op::MUL)
        return cfg_.latMul;
    if (op == Op::DIV || op == Op::DIVU || op == Op::REM ||
        op == Op::REMU)
        return cfg_.latDiv;
    if (isa::isFpArith(op)) {
        switch (op) {
          case Op::FADD_D: case Op::FSUB_D:
          case Op::FADD_S: case Op::FSUB_S:
            return cfg_.latFpAdd;
          case Op::FMUL_D: case Op::FMUL_S:
            return cfg_.latFpMul;
          case Op::FDIV_D: case Op::FDIV_S:
            return cfg_.latFpDiv;
          default:
            return cfg_.latFpCvt;
        }
    }
    return cfg_.latAlu;
}

void
CorePipeline::checkMemFault(RobEntry &e)
{
    if (e.addr & (e.size - 1))
        e.trap = TrapKind::Misaligned;
    else if (e.addr < isa::kProtectedTop)
        e.trap = TrapKind::ProtectedAccess;
    else if (!port_.mapped(e.addr, e.size, e.isStore))
        e.trap = TrapKind::MemFault;
}

void
CorePipeline::issue()
{
    unsigned issued = 0;
    for (auto it = iq_.begin();
         it != iq_.end() && issued < cfg_.issueWidth;) {
        RobEntry &e = rob_[static_cast<size_t>(*it)];
        if (!sourcesReady(e)) {
            ++it;
            continue;
        }
        Op op = e.insn.op;
        bool intDiv = op == Op::DIV || op == Op::DIVU ||
                      op == Op::REM || op == Op::REMU;
        bool fpDiv = op == Op::FDIV_D || op == Op::FDIV_S;
        if (intDiv && cycles_ < intDivBusyUntil_) {
            ++it;
            continue;
        }
        if (fpDiv && cycles_ < fpDivBusyUntil_) {
            ++it;
            continue;
        }

        uint64_t a = sourceValue(e, 0);
        uint64_t b = sourceValue(e, 1);
        e.taint = sourceTaint(e, 0) | sourceTaint(e, 1);
        e.countdown = latencyOf(op);
        e.stage = Stage::Exec;

        if (e.isLoad || e.isStore) {
            e.addr = a + static_cast<int64_t>(e.insn.imm);
            e.size = memAccessSize(op);
            checkMemFault(e);
            if (e.isStore)
                e.result = b; // store data
            e.countdown = cfg_.latAgen;
        } else if (isa::isBranch(op)) {
            bool taken = branchTaken(op, a, b);
            e.actualNextIdx =
                taken ? e.pcIdx + static_cast<int64_t>(e.insn.imm)
                      : e.pcIdx + 1;
            e.countdown = cfg_.latAlu;
        } else if (op == Op::JAL) {
            e.actualNextIdx = e.pcIdx + static_cast<int64_t>(e.insn.imm);
            e.result = (e.pcIdx + 1) * 4 + isa::kCodeBase;
            e.countdown = cfg_.latAlu;
        } else if (op == Op::JALR) {
            uint64_t target = a + static_cast<int64_t>(e.insn.imm);
            e.result = (e.pcIdx + 1) * 4 + isa::kCodeBase;
            if (target < isa::kCodeBase || (target & 3) ||
                (target - isa::kCodeBase) / 4 >= prog_.code.size()) {
                e.trap = TrapKind::BadJump;
                e.actualNextIdx = e.pcIdx + 1; // never used
            } else {
                e.actualNextIdx = (target - isa::kCodeBase) / 4;
            }
            e.countdown = cfg_.latAlu;
        } else if (op == Op::ECALL) {
            e.result = a; // value captured for commit
            e.countdown = cfg_.latAlu;
        } else if (op == Op::HALT || op == Op::NOP) {
            e.countdown = 1;
        } else {
            ExecOut out = execArith(e.insn, a, b);
            e.result = out.value;
            if (out.fpSevere && cfg_.trapOnSevereFp &&
                isa::isFpArith(op))
                e.trap = TrapKind::FpException;
            if (intDiv)
                intDivBusyUntil_ = cycles_ + cfg_.latDiv;
            if (fpDiv)
                fpDivBusyUntil_ = cycles_ + cfg_.latFpDiv;
        }
        it = iq_.erase(it);
        ++issued;
    }
}

// ---- injection at writeback --------------------------------------------
void
CorePipeline::applyInjection(RobEntry &e)
{
    if (e.hasDest) {
        const auto &events = plan_.anyDest();
        while (anyDestPtr_ < events.size() &&
               events[anyDestPtr_].first == anyDestCount_) {
            e.result ^= events[anyDestPtr_].second;
            e.injected = true;
            e.taint |= coreMask_;
            ++injApplied_;
            ++anyDestPtr_;
        }
        ++anyDestCount_;
    }
    if (isa::isFpArith(e.insn.op)) {
        auto op = isa::fpuOpFor(e.insn.op);
        auto idx = static_cast<size_t>(op);
        const auto &events = plan_.fpOp(op);
        while (fpOpPtr_[idx] < events.size() &&
               events[fpOpPtr_[idx]].first == fpOpCount_[idx]) {
            e.result ^= events[fpOpPtr_[idx]].second;
            e.injected = true;
            e.taint |= coreMask_;
            ++injApplied_;
            ++fpOpPtr_[idx];
        }
        ++fpOpCount_[idx];
    }
}

// ---- squash ------------------------------------------------------------
void
CorePipeline::squashAfter(size_t slot, uint64_t redirectIdx,
                          bool stopFetch)
{
    // Kill everything younger than `slot`.
    while (tail_ != robNext(slot)) {
        size_t last = (tail_ + rob_.size() - 1) % rob_.size();
        RobEntry &e = rob_[last];
        if (e.isLoad)
            --loadsInFlight_;
        if (e.isStore)
            --storesInFlight_;
        if (e.injected)
            ++injWrongPath_;
        ++squashed_;
        tail_ = last;
        --count_;
    }
    // Drop IQ entries that no longer exist.
    uint64_t maxSeq = rob_[slot].seq;
    std::erase_if(iq_, [&](int s) {
        return rob_[static_cast<size_t>(s)].seq > maxSeq ||
               rob_[static_cast<size_t>(s)].stage != Stage::InIQ;
    });
    // Rebuild the rename tables from the surviving entries.
    mapInt_.fill(-1);
    mapFp_.fill(-1);
    for (size_t i = head_, n = 0; n < count_; i = robNext(i), ++n) {
        RobEntry &e = rob_[i];
        if (e.hasDest) {
            if (e.destIsFp)
                mapFp_[e.destReg] = static_cast<int>(i);
            else
                mapInt_[e.destReg] = static_cast<int>(i);
        }
    }
    fetchBuf_.clear();
    fetchIdx_ = redirectIdx;
    fetchStopped_ = stopFetch;
}

// ---- writeback / memory progression ------------------------------------
void
CorePipeline::finishExec(size_t slot)
{
    RobEntry &e = rob_[slot];
    e.stage = Stage::Done;
    ++executed_;
    applyInjection(e);
    if (e.isCtrl && !e.resolved) {
        e.resolved = true;
        if (isa::isBranch(e.insn.op))
            pred_.update(e.pcIdx, e.actualNextIdx != e.pcIdx + 1);
        if (e.insn.op == Op::JALR && e.trap == TrapKind::None)
            pred_.updateTarget(e.pcIdx, e.actualNextIdx);
        if (e.trap != TrapKind::None) {
            // Bad jump: stop fetching down this path entirely.
            ++mispredicts_;
            squashAfter(slot, 0, true);
        } else if (e.actualNextIdx != e.predNextIdx) {
            ++mispredicts_;
            squashAfter(slot, e.actualNextIdx, false);
        }
    }
}

/** Disambiguate a load against older in-flight stores. */
CorePipeline::MemCheck
CorePipeline::checkLoad(size_t slot, uint64_t &forwardValue,
                        uint32_t &forwardTaint)
{
    const RobEntry &ld = rob_[slot];
    // Walk older entries from youngest to oldest.
    size_t i = slot;
    MemCheck result = MemCheck::Ready;
    while (i != head_) {
        i = (i + rob_.size() - 1) % rob_.size();
        const RobEntry &st = rob_[i];
        if (!st.isStore)
            continue;
        if (st.stage != Stage::Done)
            return MemCheck::Wait; // address unknown
        if (st.trap != TrapKind::None)
            return MemCheck::Wait; // will crash at commit
        bool overlap = st.addr < ld.addr + ld.size &&
                       ld.addr < st.addr + st.size;
        if (!overlap)
            continue;
        if (st.addr == ld.addr && st.size == ld.size) {
            forwardValue = st.result;
            forwardTaint = st.taint;
            return MemCheck::Forward;
        }
        return MemCheck::Wait; // partial overlap: wait for commit
    }
    return result;
}

void
CorePipeline::writeback()
{
    for (size_t i = head_, n = 0; n < count_; i = robNext(i), ++n) {
        RobEntry &e = rob_[i];
        switch (e.stage) {
          case Stage::Exec:
            if (--e.countdown == 0) {
                if (e.isLoad && e.trap == TrapKind::None) {
                    e.stage = Stage::MemPending;
                } else {
                    finishExec(i);
                    // finishExec may squash; restart conservatively.
                    if (rob_[i].stage != Stage::Done)
                        return;
                }
            }
            break;
          case Stage::MemPending: {
            uint64_t fwd = 0;
            uint32_t fwdTaint = 0;
            MemCheck c = checkLoad(i, fwd, fwdTaint);
            if (c == MemCheck::Forward) {
                e.result = fwd;
                e.memTaint = fwdTaint;
                e.taint |= fwdTaint;
                e.stage = Stage::MemAccess;
                e.countdown = 1;
            } else if (c == MemCheck::Ready) {
                CorePort::LoadResult lr = port_.load(e.addr, e.size);
                e.result = lr.value;
                e.memTaint = lr.taint;
                e.taint |= lr.taint;
                e.stage = Stage::MemAccess;
                e.countdown = lr.latency;
            }
            break;
          }
          case Stage::MemAccess:
            if (--e.countdown == 0) {
                if (e.insn.op == Op::LW) {
                    e.result = static_cast<uint64_t>(
                        static_cast<int64_t>(
                            static_cast<int32_t>(e.result)));
                }
                finishExec(i);
            }
            break;
          default:
            break;
        }
    }
}

// ---- commit ------------------------------------------------------------
/** Patch IQ waiters whose producer leaves the ROB. */
void
CorePipeline::patchWaiters(size_t slot, uint64_t value, uint32_t taint)
{
    for (int s : iq_) {
        RobEntry &e = rob_[static_cast<size_t>(s)];
        for (int k = 0; k < 2; ++k) {
            if (e.src[k] == static_cast<int>(slot)) {
                e.src[k] = -1;
                e.srcVal[k] = value;
                e.srcTaint[k] = taint;
            }
        }
    }
}

CorePipeline::CommitOutcome
CorePipeline::commit(TrapKind &trapOut)
{
    for (unsigned i = 0; i < cfg_.commitWidth; ++i) {
        if (count_ == 0)
            return CommitOutcome::Continue;
        RobEntry &e = rob_[head_];
        if (e.stage != Stage::Done)
            return CommitOutcome::Continue;
        if (e.trap != TrapKind::None) {
            trapOut = e.trap;
            return CommitOutcome::Crash;
        }
        if (e.insn.op == Op::HALT) {
            ++committed_;
            return CommitOutcome::Halt;
        }
        if (e.insn.op == Op::ECALL) {
            TrapKind sysTrap = TrapKind::None;
            CorePort::Sys act =
                port_.syscall(e.insn.imm, e.result, sysTrap);
            if (act == CorePort::Sys::Stall)
                return CommitOutcome::Continue;
            if (act == CorePort::Sys::Fault) {
                trapOut = sysTrap;
                return CommitOutcome::Crash;
            }
            if (e.insn.imm >=
                    static_cast<int32_t>(isa::Syscall::Spawn) &&
                e.insn.imm <=
                    static_cast<int32_t>(isa::Syscall::Barrier)) {
                // Synchronization syscalls are fences: younger
                // instructions may have speculatively loaded memory
                // that another core rewrites while this core is
                // parked at the barrier/join, so their results are
                // stale the moment the syscall proceeds. Squash and
                // refetch from the next instruction.
                squashAfter(head_, e.pcIdx + 1, false);
                head_ = robNext(head_);
                --count_;
                ++committed_;
                return CommitOutcome::Continue;
            }
        }
        if (e.isStore) {
            port_.store(e.addr, e.size, e.result, e.taint);
            --storesInFlight_;
        }
        if (e.isLoad) {
            --loadsInFlight_;
            if (e.memTaint & ~coreMask_)
                ++crossLoads_;
        }
        if (e.hasDest) {
            patchWaiters(head_, e.result, e.taint);
            if (e.destIsFp) {
                freg_[e.destReg] = e.result;
                fregTaint_[e.destReg] = e.taint;
                if (mapFp_[e.destReg] == static_cast<int>(head_))
                    mapFp_[e.destReg] = -1;
            } else {
                xreg_[e.destReg] = e.result;
                xregTaint_[e.destReg] = e.taint;
                if (mapInt_[e.destReg] == static_cast<int>(head_))
                    mapInt_[e.destReg] = -1;
            }
        }
        head_ = robNext(head_);
        --count_;
        ++committed_;
    }
    return CommitOutcome::Continue;
}

CorePipeline::Step
CorePipeline::step(TrapKind &trap)
{
    ++cycles_;
    auto outcome = commit(trap);
    if (outcome == CommitOutcome::Halt)
        return Step::Halted;
    if (outcome == CommitOutcome::Crash)
        return Step::Crashed;
    writeback();
    issue();
    rename();
    fetch();
    return Step::Running;
}

} // namespace tea::sim
