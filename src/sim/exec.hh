/**
 * @file
 * Architectural execution semantics shared by the functional and the
 * out-of-order simulators. One definition of every op's behaviour
 * guarantees the two models can never drift apart.
 */

#ifndef TEA_SIM_EXEC_HH
#define TEA_SIM_EXEC_HH

#include <cstdint>

#include "isa/isa.hh"
#include "softfloat/softfloat.hh"

namespace tea::sim {

/** Result of executing a computational (non-memory, non-control) op. */
struct ExecOut
{
    uint64_t value = 0;
    bool fpSevere = false; ///< invalid/div-by-zero/overflow raised
};

/**
 * Execute a computational op over operand values. For FP ops the
 * operands are raw f-register bits (or the integer source for
 * conversions); integer division follows RISC-V semantics (no trap).
 */
inline ExecOut
execArith(const isa::Instruction &insn, uint64_t a, uint64_t b)
{
    using isa::Op;
    namespace sf = tea::sf;
    ExecOut out;
    sf::Flags fl;
    auto sa = static_cast<int64_t>(a);
    auto sb = static_cast<int64_t>(b);
    switch (insn.op) {
      case Op::ADD: out.value = a + b; break;
      case Op::SUB: out.value = a - b; break;
      case Op::AND_: out.value = a & b; break;
      case Op::OR_: out.value = a | b; break;
      case Op::XOR_: out.value = a ^ b; break;
      case Op::SLL: out.value = a << (b & 63); break;
      case Op::SRL: out.value = a >> (b & 63); break;
      case Op::SRA:
        out.value = static_cast<uint64_t>(sa >> (b & 63));
        break;
      case Op::SLT: out.value = sa < sb; break;
      case Op::SLTU: out.value = a < b; break;
      case Op::MUL: out.value = a * b; break;
      case Op::DIV:
        if (b == 0)
            out.value = ~0ULL;
        else if (sa == INT64_MIN && sb == -1)
            out.value = a;
        else
            out.value = static_cast<uint64_t>(sa / sb);
        break;
      case Op::DIVU: out.value = b ? a / b : ~0ULL; break;
      case Op::REM:
        if (b == 0)
            out.value = a;
        else if (sa == INT64_MIN && sb == -1)
            out.value = 0;
        else
            out.value = static_cast<uint64_t>(sa % sb);
        break;
      case Op::REMU: out.value = b ? a % b : a; break;
      case Op::ADDI: out.value = a + static_cast<uint64_t>(
                                         static_cast<int64_t>(insn.imm));
        break;
      case Op::ANDI: out.value = a & static_cast<uint64_t>(
                                         static_cast<int64_t>(insn.imm));
        break;
      case Op::ORI: out.value = a | static_cast<uint64_t>(
                                        static_cast<int64_t>(insn.imm));
        break;
      case Op::XORI: out.value = a ^ static_cast<uint64_t>(
                                         static_cast<int64_t>(insn.imm));
        break;
      case Op::SLLI: out.value = a << (insn.imm & 63); break;
      case Op::SRLI: out.value = a >> (insn.imm & 63); break;
      case Op::SRAI:
        out.value = static_cast<uint64_t>(sa >> (insn.imm & 63));
        break;
      case Op::SLTI:
        out.value = sa < static_cast<int64_t>(insn.imm);
        break;
      case Op::LIW:
        out.value = static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
        break;
      case Op::FADD_D: out.value = sf::add64(a, b, &fl); break;
      case Op::FSUB_D: out.value = sf::sub64(a, b, &fl); break;
      case Op::FMUL_D: out.value = sf::mul64(a, b, &fl); break;
      case Op::FDIV_D: out.value = sf::div64(a, b, &fl); break;
      case Op::FCVT_D_L:
        out.value = sf::i2f64(static_cast<int64_t>(a), &fl);
        break;
      case Op::FCVT_L_D:
        out.value = static_cast<uint64_t>(sf::f2i64(a, &fl));
        break;
      case Op::FADD_S:
        out.value = sf::add32(static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b), &fl);
        break;
      case Op::FSUB_S:
        out.value = sf::sub32(static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b), &fl);
        break;
      case Op::FMUL_S:
        out.value = sf::mul32(static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b), &fl);
        break;
      case Op::FDIV_S:
        out.value = sf::div32(static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b), &fl);
        break;
      case Op::FCVT_S_W:
        out.value = sf::i2f32(static_cast<int32_t>(a), &fl);
        break;
      case Op::FCVT_W_S:
        out.value = static_cast<uint64_t>(static_cast<int64_t>(
            sf::f2i32(static_cast<uint32_t>(a), &fl)));
        break;
      case Op::FMV: out.value = a; break;
      case Op::FNEG_D: out.value = a ^ (1ULL << 63); break;
      case Op::FABS_D: out.value = a & ~(1ULL << 63); break;
      case Op::FMV_X_D: out.value = a; break;
      case Op::FMV_D_X: out.value = a; break;
      case Op::FEQ_D: out.value = sf::eq64(a, b); break;
      case Op::FLT_D: out.value = sf::lt64(a, b, &fl); break;
      case Op::FLE_D: out.value = sf::le64(a, b, &fl); break;
      default:
        // Memory/control/system ops are handled by the pipelines.
        break;
    }
    out.fpSevere = fl.severe();
    return out;
}

/** Evaluate a conditional branch. */
inline bool
branchTaken(isa::Op op, uint64_t a, uint64_t b)
{
    using isa::Op;
    auto sa = static_cast<int64_t>(a);
    auto sb = static_cast<int64_t>(b);
    switch (op) {
      case Op::BEQ: return a == b;
      case Op::BNE: return a != b;
      case Op::BLT: return sa < sb;
      case Op::BGE: return sa >= sb;
      case Op::BLTU: return a < b;
      case Op::BGEU: return a >= b;
      default: return false;
    }
}

/** Access size in bytes of a memory op. */
inline unsigned
memAccessSize(isa::Op op)
{
    using isa::Op;
    return (op == Op::LW || op == Op::SW) ? 4 : 8;
}

} // namespace tea::sim

#endif // TEA_SIM_EXEC_HH
