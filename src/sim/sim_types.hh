/**
 * @file
 * Shared simulator types: trap taxonomy and run status.
 *
 * The trap kinds realize the paper's Crash category: process crashes
 * (memory faults, bad jumps, illegal instructions), kernel panics
 * (stores into the protected low region), and floating-point
 * exceptions.
 */

#ifndef TEA_SIM_SIM_TYPES_HH
#define TEA_SIM_SIM_TYPES_HH

#include <cstdint>
#include <vector>

namespace tea::sim {

enum class TrapKind : uint8_t
{
    None,
    MemFault,        ///< access to unmapped memory (process crash)
    Misaligned,      ///< misaligned access (process crash)
    ProtectedAccess, ///< touch of the kernel region (kernel panic)
    BadJump,         ///< control transfer outside the code segment
    IllegalInsn,     ///< undecodable instruction
    FpException,     ///< severe IEEE flag with FP traps enabled
    SyncFault,       ///< bad spawn/join/barrier use (multi-core)
};

const char *trapName(TrapKind kind);

/** Values printed by the program (ECALL); part of the checked output. */
using Console = std::vector<uint64_t>;

} // namespace tea::sim

#endif // TEA_SIM_SIM_TYPES_HH
