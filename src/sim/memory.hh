/**
 * @file
 * Sparse paged memory image with explicit mapping (ECC-protected per
 * the paper's assumption, so never a source of errors itself).
 */

#ifndef TEA_SIM_MEMORY_HH
#define TEA_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace tea::sim {

class Memory
{
  public:
    static constexpr uint64_t kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageBits;

    /** Map [base, base+size) zero-filled (page granularity). */
    void mapRange(uint64_t base, uint64_t size);

    /** True if [addr, addr+size) lies entirely in mapped pages. */
    bool isMapped(uint64_t addr, unsigned size) const;

    /** Raw little-endian access; the caller must have checked mapping. */
    uint64_t read(uint64_t addr, unsigned size) const;
    void write(uint64_t addr, unsigned size, uint64_t value);

    /** Copy out a block (unmapped bytes read as 0). */
    std::vector<uint8_t> readBlock(uint64_t addr, uint64_t len) const;

    /** Map data segments and the stack for a program. */
    void loadProgram(const isa::Program &prog);

  private:
    uint8_t *pageFor(uint64_t addr);
    const uint8_t *pageFor(uint64_t addr) const;

    std::unordered_map<uint64_t, std::unique_ptr<std::vector<uint8_t>>>
        pages_;
};

} // namespace tea::sim

#endif // TEA_SIM_MEMORY_HH
