#include "sim/memory.hh"

#include <cstring>

#include "util/logging.hh"

namespace tea::sim {

void
Memory::mapRange(uint64_t base, uint64_t size)
{
    uint64_t first = base >> kPageBits;
    uint64_t last = (base + size - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p) {
        auto &page = pages_[p];
        if (!page)
            page = std::make_unique<std::vector<uint8_t>>(kPageSize, 0);
    }
}

bool
Memory::isMapped(uint64_t addr, unsigned size) const
{
    uint64_t first = addr >> kPageBits;
    uint64_t last = (addr + size - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p)
        if (!pages_.count(p))
            return false;
    return true;
}

uint8_t *
Memory::pageFor(uint64_t addr)
{
    auto it = pages_.find(addr >> kPageBits);
    panic_if(it == pages_.end(), "unchecked access to unmapped 0x%llx",
             static_cast<unsigned long long>(addr));
    return it->second->data();
}

const uint8_t *
Memory::pageFor(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageBits);
    panic_if(it == pages_.end(), "unchecked access to unmapped 0x%llx",
             static_cast<unsigned long long>(addr));
    return it->second->data();
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    // Aligned accesses (the common case — the simulators trap
    // misalignment first) stay within one page; byte-granularity
    // callers like loadProgram may straddle, so fall back to a byte
    // loop rather than run a memcpy off the end of a page.
    uint64_t off = addr & (kPageSize - 1);
    uint64_t v = 0;
    if (off + size <= kPageSize) {
        std::memcpy(&v, pageFor(addr) + off, size);
    } else {
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(
                     pageFor(addr + i)[(addr + i) & (kPageSize - 1)])
                 << (8 * i);
    }
    return v;
}

void
Memory::write(uint64_t addr, unsigned size, uint64_t value)
{
    uint64_t off = addr & (kPageSize - 1);
    if (off + size <= kPageSize) {
        std::memcpy(pageFor(addr) + off, &value, size);
    } else {
        for (unsigned i = 0; i < size; ++i)
            pageFor(addr + i)[(addr + i) & (kPageSize - 1)] =
                static_cast<uint8_t>(value >> (8 * i));
    }
}

std::vector<uint8_t>
Memory::readBlock(uint64_t addr, uint64_t len) const
{
    std::vector<uint8_t> out(len, 0);
    for (uint64_t i = 0; i < len; ++i) {
        uint64_t a = addr + i;
        auto it = pages_.find(a >> kPageBits);
        if (it != pages_.end())
            out[i] = (*it->second)[a & (kPageSize - 1)];
    }
    return out;
}

void
Memory::loadProgram(const isa::Program &prog)
{
    for (const auto &seg : prog.data) {
        mapRange(seg.addr, seg.bytes.size());
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write(seg.addr + i, 1, seg.bytes[i]);
    }
    mapRange(isa::kStackTop - isa::kStackSize, isa::kStackSize);
}

} // namespace tea::sim
