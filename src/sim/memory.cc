#include "sim/memory.hh"

#include <cstring>

#include "util/logging.hh"

namespace tea::sim {

void
Memory::mapRange(uint64_t base, uint64_t size)
{
    uint64_t first = base >> kPageBits;
    uint64_t last = (base + size - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p) {
        auto &page = pages_[p];
        if (!page)
            page = std::make_unique<std::vector<uint8_t>>(kPageSize, 0);
    }
}

bool
Memory::isMapped(uint64_t addr, unsigned size) const
{
    uint64_t first = addr >> kPageBits;
    uint64_t last = (addr + size - 1) >> kPageBits;
    for (uint64_t p = first; p <= last; ++p)
        if (!pages_.count(p))
            return false;
    return true;
}

uint8_t *
Memory::pageFor(uint64_t addr)
{
    auto it = pages_.find(addr >> kPageBits);
    panic_if(it == pages_.end(), "unchecked access to unmapped 0x%llx",
             static_cast<unsigned long long>(addr));
    return it->second->data();
}

const uint8_t *
Memory::pageFor(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageBits);
    panic_if(it == pages_.end(), "unchecked access to unmapped 0x%llx",
             static_cast<unsigned long long>(addr));
    return it->second->data();
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    // Accesses are aligned (the simulators trap misalignment first), so
    // they never straddle a page.
    const uint8_t *p = pageFor(addr) + (addr & (kPageSize - 1));
    uint64_t v = 0;
    std::memcpy(&v, p, size);
    return v;
}

void
Memory::write(uint64_t addr, unsigned size, uint64_t value)
{
    uint8_t *p = pageFor(addr) + (addr & (kPageSize - 1));
    std::memcpy(p, &value, size);
}

std::vector<uint8_t>
Memory::readBlock(uint64_t addr, uint64_t len) const
{
    std::vector<uint8_t> out(len, 0);
    for (uint64_t i = 0; i < len; ++i) {
        uint64_t a = addr + i;
        auto it = pages_.find(a >> kPageBits);
        if (it != pages_.end())
            out[i] = (*it->second)[a & (kPageSize - 1)];
    }
    return out;
}

void
Memory::loadProgram(const isa::Program &prog)
{
    for (const auto &seg : prog.data) {
        mapRange(seg.addr, seg.bytes.size());
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write(seg.addr + i, 1, seg.bytes[i]);
    }
    mapRange(isa::kStackTop - isa::kStackSize, isa::kStackSize);
}

} // namespace tea::sim
