#include "sim/func_sim.hh"

#include "sim/exec.hh"
#include "util/logging.hh"

namespace tea::sim {

const char *
trapName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::None: return "none";
      case TrapKind::MemFault: return "mem-fault";
      case TrapKind::Misaligned: return "misaligned";
      case TrapKind::ProtectedAccess: return "protected-access";
      case TrapKind::BadJump: return "bad-jump";
      case TrapKind::IllegalInsn: return "illegal-insn";
      case TrapKind::FpException: return "fp-exception";
      case TrapKind::SyncFault: return "sync-fault";
    }
    return "?";
}

FuncSim::FuncSim(isa::Program prog, Config cfg)
    : prog_(std::move(prog)), cfg_(cfg)
{
    mem_.loadProgram(prog_);
    xreg_[2] = isa::kStackTop - 64; // sp
}

uint64_t
FuncSim::fpArithCount() const
{
    uint64_t n = 0;
    for (unsigned i = 0; i < isa::kNumOps; ++i)
        if (isa::isFpArith(static_cast<isa::Op>(i)))
            n += opCounts_[i];
    return n;
}

FuncSim::Result
FuncSim::run()
{
    using isa::Op;
    const auto &code = prog_.code;
    uint64_t idx = prog_.entryIndex;
    uint64_t count = 0;

    auto trapOut = [&](TrapKind kind) {
        return Result{Status::Trapped, kind, count, idx};
    };

    while (count < cfg_.maxInstructions) {
        if (idx >= code.size())
            return trapOut(TrapKind::BadJump);
        const isa::Instruction &insn = code[idx];
        ++count;
        ++opCounts_[static_cast<size_t>(insn.op)];
        uint64_t next = idx + 1;

        switch (insn.op) {
          case Op::HALT:
            return Result{Status::Halted, TrapKind::None, count, idx};
          case Op::NOP:
            break;
          case Op::ECALL: {
            if (insn.imm == static_cast<int>(isa::Syscall::PrintInt))
                console_.push_back(xreg_[insn.rs1]);
            else if (insn.imm == static_cast<int>(isa::Syscall::PrintFp))
                console_.push_back(freg_[insn.rs1]);
            break;
          }
          case Op::JAL:
            xreg_[insn.rd] = (idx + 1) * 4 + isa::kCodeBase;
            if (insn.rd == 0)
                xreg_[0] = 0;
            next = idx + static_cast<int64_t>(insn.imm);
            break;
          case Op::JALR: {
            uint64_t target = xreg_[insn.rs1] +
                              static_cast<int64_t>(insn.imm);
            xreg_[insn.rd] = (idx + 1) * 4 + isa::kCodeBase;
            xreg_[0] = 0;
            if (target < isa::kCodeBase || (target & 3) ||
                (target - isa::kCodeBase) / 4 >= code.size()) {
                return trapOut(TrapKind::BadJump);
            }
            next = (target - isa::kCodeBase) / 4;
            break;
          }
          case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
          case Op::BLTU: case Op::BGEU:
            if (branchTaken(insn.op, xreg_[insn.rs1], xreg_[insn.rs2]))
                next = idx + static_cast<int64_t>(insn.imm);
            break;
          case Op::LD: case Op::LW: case Op::FLD: {
            uint64_t addr = xreg_[insn.rs1] +
                            static_cast<int64_t>(insn.imm);
            unsigned size = memAccessSize(insn.op);
            if (addr & (size - 1))
                return trapOut(TrapKind::Misaligned);
            if (addr < isa::kProtectedTop)
                return trapOut(TrapKind::ProtectedAccess);
            if (!mem_.isMapped(addr, size))
                return trapOut(TrapKind::MemFault);
            uint64_t v = mem_.read(addr, size);
            if (insn.op == Op::LW)
                v = static_cast<uint64_t>(
                    static_cast<int64_t>(static_cast<int32_t>(v)));
            if (insn.op == Op::FLD)
                freg_[insn.rd] = v;
            else
                xreg_[insn.rd] = v;
            break;
          }
          case Op::SD: case Op::SW: case Op::FSD: {
            uint64_t addr = xreg_[insn.rs1] +
                            static_cast<int64_t>(insn.imm);
            unsigned size = memAccessSize(insn.op);
            if (addr & (size - 1))
                return trapOut(TrapKind::Misaligned);
            if (addr < isa::kProtectedTop)
                return trapOut(TrapKind::ProtectedAccess);
            if (!mem_.isMapped(addr, size))
                return trapOut(TrapKind::MemFault);
            uint64_t data = (insn.op == Op::FSD) ? freg_[insn.rd]
                                                 : xreg_[insn.rd];
            mem_.write(addr, size, data);
            break;
          }
          default: {
            uint64_t a, b = 0;
            if (isa::readsFpRs1(insn.op))
                a = freg_[insn.rs1];
            else
                a = xreg_[insn.rs1];
            if (isa::readsFpRs2(insn.op))
                b = freg_[insn.rs2];
            else if (isa::readsIntRs2(insn.op))
                b = xreg_[insn.rs2];
            if (fpTrace_ && isa::isFpArith(insn.op))
                fpTrace_->push_back(
                    FpTraceEntry{isa::fpuOpFor(insn.op), a, b});
            ExecOut out = execArith(insn, a, b);
            if (out.fpSevere && cfg_.trapOnSevereFp &&
                isa::isFpArith(insn.op)) {
                return trapOut(TrapKind::FpException);
            }
            if (isa::writesFpReg(insn.op)) {
                freg_[insn.rd] = out.value;
            } else if (isa::writesIntReg(insn.op)) {
                xreg_[insn.rd] = out.value;
                xreg_[0] = 0;
            }
            break;
          }
        }
        idx = next;
    }
    return Result{Status::LimitReached, TrapKind::None, count, idx};
}

} // namespace tea::sim
