/**
 * @file
 * Cycle-level out-of-order CPU model (the gem5 stand-in).
 *
 * Front end with bimodal branch prediction, register renaming onto a
 * reorder buffer, an issue queue, latency-modelled functional units, a
 * load/store queue with store-to-load forwarding and conservative
 * disambiguation, an L1 data cache, and in-order commit. Timing-error
 * bitmasks are injected into destination values at execute/writeback —
 * so wrong-path victims get squashed (microarchitectural masking) and
 * dead values can be overwritten before use, the effects the paper says
 * instruction-level injection misses.
 */

#ifndef TEA_SIM_OOO_SIM_HH
#define TEA_SIM_OOO_SIM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "fpu/fpu_types.hh"
#include "isa/program.hh"
#include "sim/memory.hh"
#include "sim/sim_types.hh"
#include "util/watchdog.hh"

namespace tea::sim {

struct OooConfig
{
    unsigned fetchWidth = 2;
    unsigned renameWidth = 2;
    unsigned issueWidth = 2;
    unsigned commitWidth = 2;
    unsigned robSize = 64;
    unsigned iqSize = 32;
    unsigned maxLoads = 16;
    unsigned maxStores = 16;

    // Execution latencies (cycles). FP latencies mirror the gate FPU's
    // pipeline depths.
    unsigned latAlu = 1;
    unsigned latMul = 3;
    unsigned latDiv = 12;
    unsigned latFpAdd = 5;
    unsigned latFpMul = 5;
    unsigned latFpDiv = 12;
    unsigned latFpCvt = 3;
    unsigned latAgen = 1;

    // L1 data cache (ECC protected; never a fault source).
    unsigned l1Sets = 64;
    unsigned l1Ways = 4;
    unsigned l1LineBytes = 64;
    unsigned latCacheHit = 2;
    unsigned latCacheMiss = 60;

    bool trapOnSevereFp = true;
};

/**
 * A timing-error injection to perform during a run. Targets are counted
 * over *executed* dynamic instances (wrong-path instances included, as
 * they also occupy the real pipeline).
 */
struct InjectionEvent
{
    enum class Kind : uint8_t
    {
        AnyDest, ///< DA-model: any instruction with a destination
        FpOp,    ///< IA/WA-models: the n-th executed FP op of a type
    };
    Kind kind;
    fpu::FpuOp op;  ///< valid for Kind::FpOp
    uint64_t index; ///< occurrence index within the category
    uint64_t mask;  ///< XORed into the destination value
    /**
     * Target core for multi-core campaigns: the occurrence index
     * counts events on this core only ("the n-th FP op on core k").
     * Single-core simulation ignores it (always core 0).
     */
    uint32_t core = 0;
};

/** Events grouped per counter category and sorted by index. */
class InjectionPlan
{
  public:
    InjectionPlan() = default;
    explicit InjectionPlan(const std::vector<InjectionEvent> &events);

    bool empty() const;

    const std::vector<std::pair<uint64_t, uint64_t>> &anyDest() const
    {
        return anyDest_;
    }
    const std::vector<std::pair<uint64_t, uint64_t>> &
    fpOp(fpu::FpuOp op) const
    {
        return fpOp_[static_cast<size_t>(op)];
    }
    size_t totalEvents() const;

  private:
    std::vector<std::pair<uint64_t, uint64_t>> anyDest_;
    std::array<std::vector<std::pair<uint64_t, uint64_t>>,
               fpu::kNumFpuOps>
        fpOp_;
};

class OooSim
{
  public:
    OooSim(isa::Program prog, OooConfig cfg = OooConfig{},
           InjectionPlan plan = InjectionPlan{});
    ~OooSim();

    enum class Status
    {
        Halted,
        Crashed,
        CycleLimit,
        /** Cut off by the watchdog (cancellation or wall-clock). */
        Interrupted,
    };

    struct Result
    {
        Status status;
        TrapKind trap;
        /** Why the run was Interrupted (None otherwise). */
        Watchdog::Stop stop = Watchdog::Stop::None;
        uint64_t cycles;
        uint64_t committed;
        uint64_t executed;
        uint64_t injectionsApplied;
        uint64_t injectionsOnWrongPath;
        uint64_t branchMispredicts;
        uint64_t cacheMisses;
        uint64_t cacheAccesses;
        uint64_t squashedInstructions;
    };

    /**
     * Simulate until halt, crash, the cycle limit, or — when a
     * watchdog is given — a cooperative stop (polled every few
     * thousand cycles, so a hung run never freezes a worker thread).
     */
    Result run(uint64_t maxCycles, const Watchdog *watchdog = nullptr);

    const Memory &memory() const { return mem_; }
    const Console &console() const { return console_; }

  private:
    struct Impl;
    isa::Program prog_; ///< owned copy; callers may pass temporaries
    std::unique_ptr<Impl> impl_;
    Memory mem_;
    Console console_;
};

} // namespace tea::sim

#endif // TEA_SIM_OOO_SIM_HH
