/**
 * @file
 * Fast functional simulator.
 *
 * Executes a program architecturally (no timing) for golden runs,
 * dynamic instruction counting (Table II), and FP operand trace
 * collection for the workload-aware error model. Semantics are shared
 * with the OoO model through sim/exec.hh.
 */

#ifndef TEA_SIM_FUNC_SIM_HH
#define TEA_SIM_FUNC_SIM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <utility>

#include "fpu/fpu_types.hh"
#include "isa/program.hh"
#include "sim/memory.hh"
#include "sim/sim_types.hh"

namespace tea::sim {

/** One FP-arithmetic dynamic instance (for DTA operand replay). */
struct FpTraceEntry
{
    fpu::FpuOp op;
    uint64_t a;
    uint64_t b;
};

class FuncSim
{
  public:
    struct Config
    {
        bool trapOnSevereFp = true;
        uint64_t maxInstructions = 2'000'000'000ULL;
    };

    FuncSim(isa::Program prog, Config cfg);
    explicit FuncSim(isa::Program prog)
        : FuncSim(std::move(prog), Config{})
    {
    }

    enum class Status
    {
        Halted,
        Trapped,
        LimitReached,
    };

    struct Result
    {
        Status status;
        TrapKind trap;
        uint64_t instructions;
        uint64_t pcIndex; ///< index of the last attempted instruction
    };

    /** Run to completion (or trap / instruction limit). */
    Result run();

    /** Optional FP operand trace sink (set before run()). */
    void setFpTrace(std::vector<FpTraceEntry> *sink) { fpTrace_ = sink; }

    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }
    const Console &console() const { return console_; }
    uint64_t opCount(isa::Op op) const
    {
        return opCounts_[static_cast<size_t>(op)];
    }
    uint64_t fpArithCount() const;
    uint64_t intRegValue(unsigned r) const { return xreg_[r]; }

  private:
    isa::Program prog_; ///< owned copy; callers may pass temporaries
    Config cfg_;
    Memory mem_;
    std::array<uint64_t, 32> xreg_{};
    std::array<uint64_t, 32> freg_{};
    Console console_;
    std::array<uint64_t, isa::kNumOps> opCounts_{};
    std::vector<FpTraceEntry> *fpTrace_ = nullptr;
};

} // namespace tea::sim

#endif // TEA_SIM_FUNC_SIM_HH
