/**
 * @file
 * Reusable out-of-order core pipeline, factored out of OooSim.
 *
 * `CorePipeline` is the cycle-level machine — fetch, bimodal branch
 * prediction, rename onto a ROB, issue queue, latency-modelled
 * functional units, a load/store queue with store-to-load forwarding,
 * injection at writeback, and in-order commit. Everything outside the
 * core proper goes through a `CorePort`: data-memory timing and values,
 * mapping checks, and commit-time system calls. A flat port over one
 * `Memory` plus a private L1 reproduces the original single-core
 * `OooSim` bit-for-bit; the multi-core subsystem (`src/mc`) supplies a
 * port that routes the same requests through private-L1 MESI state, a
 * shared L2, and the spawn/join/barrier hub.
 *
 * The pipeline also carries an origin-core taint bit per value
 * (registers, ROB entries, and — via the port — memory words) so the
 * campaign layer can tell whether a corrupted value ever crossed cores
 * before reaching architectural state. Single-core ports return taint 0
 * for every load, so the machinery is inert there.
 */

#ifndef TEA_SIM_PIPELINE_HH
#define TEA_SIM_PIPELINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "fpu/fpu_types.hh"
#include "isa/program.hh"
#include "sim/ooo_sim.hh"
#include "sim/sim_types.hh"

namespace tea::sim {

/**
 * Everything a core pipeline asks of the outside world. One port
 * instance per core; implementations are not required to be
 * thread-safe (a whole multi-core simulation steps on one thread).
 */
class CorePort
{
  public:
    virtual ~CorePort();

    struct LoadResult
    {
        uint64_t value;
        unsigned latency; ///< cycles until the value is usable
        uint32_t taint;   ///< origin-core bitmask of the loaded word
    };

    /** Perform a (committed-path) data load: value + timing + taint. */
    virtual LoadResult load(uint64_t addr, unsigned size) = 0;

    /** Commit a store: write memory, update cache/coherence state. */
    virtual void store(uint64_t addr, unsigned size, uint64_t value,
                       uint32_t taint) = 0;

    /** Mapping check for a prospective access (loads and stores). */
    virtual bool mapped(uint64_t addr, unsigned size,
                        bool isStore) const = 0;

    enum class Sys : uint8_t
    {
        Proceed, ///< side effects done; retire the ECALL
        Stall,   ///< not ready (join/barrier); retry next cycle
        Fault,   ///< raise `trap` and crash at commit
    };

    /**
     * Commit-time system call. `func` is the ECALL immediate, `arg`
     * the captured rs1 value. Called non-speculatively at ROB head;
     * a Stall answer leaves the ECALL at the head to retry.
     */
    virtual Sys syscall(int func, uint64_t arg, TrapKind &trap) = 0;
};

/** Simple 2-bit bimodal predictor plus a last-target table for JALR. */
struct Predictor
{
    static constexpr size_t kBimodal = 4096;
    static constexpr size_t kTargets = 1024;
    std::vector<uint8_t> counters = std::vector<uint8_t>(kBimodal, 1);
    std::vector<uint64_t> lastTarget =
        std::vector<uint64_t>(kTargets, ~0ULL);

    bool predictTaken(uint64_t pcIdx) const
    {
        return counters[pcIdx % kBimodal] >= 2;
    }
    void update(uint64_t pcIdx, bool taken)
    {
        uint8_t &c = counters[pcIdx % kBimodal];
        if (taken && c < 3)
            ++c;
        if (!taken && c > 0)
            --c;
    }
    uint64_t predictTarget(uint64_t pcIdx) const
    {
        return lastTarget[pcIdx % kTargets];
    }
    void updateTarget(uint64_t pcIdx, uint64_t target)
    {
        lastTarget[pcIdx % kTargets] = target;
    }
};

/** L1 data cache tag model (set-associative, LRU). */
struct L1Cache
{
    unsigned sets, ways, lineBits;
    std::vector<uint64_t> tags;
    std::vector<uint32_t> lru;
    uint32_t tick = 0;
    uint64_t misses = 0, accesses = 0;

    L1Cache(unsigned sets_, unsigned ways_, unsigned lineBytes)
        : sets(sets_), ways(ways_),
          lineBits(static_cast<unsigned>(__builtin_ctz(lineBytes))),
          tags(sets_ * ways_, ~0ULL), lru(sets_ * ways_, 0)
    {
    }

    bool access(uint64_t addr, bool allocate)
    {
        ++accesses;
        uint64_t line = addr >> lineBits;
        unsigned set = line % sets;
        ++tick;
        for (unsigned w = 0; w < ways; ++w) {
            if (tags[set * ways + w] == line) {
                lru[set * ways + w] = tick;
                return true;
            }
        }
        ++misses;
        if (allocate) {
            unsigned victim = 0;
            uint32_t best = UINT32_MAX;
            for (unsigned w = 0; w < ways; ++w) {
                if (lru[set * ways + w] < best) {
                    best = lru[set * ways + w];
                    victim = w;
                }
            }
            tags[set * ways + victim] = line;
            lru[set * ways + victim] = tick;
        }
        return false;
    }

    /** Coherence invalidation: drop the line if present. */
    void invalidate(uint64_t addr)
    {
        uint64_t line = addr >> lineBits;
        unsigned set = line % sets;
        for (unsigned w = 0; w < ways; ++w) {
            if (tags[set * ways + w] == line) {
                tags[set * ways + w] = ~0ULL;
                lru[set * ways + w] = 0;
            }
        }
    }

    bool present(uint64_t addr) const
    {
        uint64_t line = addr >> lineBits;
        unsigned set = line % sets;
        for (unsigned w = 0; w < ways; ++w)
            if (tags[set * ways + w] == line)
                return true;
        return false;
    }
};

/**
 * One out-of-order core. Stepped one cycle at a time by its owner
 * (OooSim's run loop, or the multi-core round-robin scheduler).
 */
class CorePipeline
{
  public:
    CorePipeline(const isa::Program &prog, const OooConfig &cfg,
                 InjectionPlan plan, CorePort &port, unsigned coreId = 0);

    enum class Step : uint8_t
    {
        Running,
        Halted,  ///< HALT reached commit
        Crashed, ///< a trap reached commit (see `trap` out-param)
    };

    /** Advance one cycle: commit, writeback, issue, rename, fetch. */
    Step step(TrapKind &trap);

    /**
     * Re-arm a parked (halted) core at a new entry point with a fresh
     * stack pointer — the spawn path. Predictor, cache state, stats,
     * and injection counters persist across restarts (they model
     * persistent hardware structures and whole-run injection indices).
     */
    void restart(uint64_t entryIdx, uint64_t sp);

    unsigned coreId() const { return coreId_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t committed() const { return committed_; }
    uint64_t executed() const { return executed_; }
    uint64_t injectionsApplied() const { return injApplied_; }
    uint64_t injectionsOnWrongPath() const { return injWrongPath_; }
    uint64_t branchMispredicts() const { return mispredicts_; }
    uint64_t squashedInstructions() const { return squashed_; }
    /** Committed loads whose memory word carried a foreign taint. */
    uint64_t crossTaintedLoads() const { return crossLoads_; }

  private:
    enum class Stage : uint8_t
    {
        InIQ,       ///< waiting for operands / FU
        Exec,       ///< in a functional unit (countdown)
        MemPending, ///< load waiting for disambiguation
        MemAccess,  ///< load accessing the cache (countdown)
        Done,
    };

    struct RobEntry
    {
        isa::Instruction insn;
        uint64_t pcIdx;
        uint64_t seq;
        uint64_t predNextIdx;
        Stage stage;
        unsigned countdown;
        // Sources: [0] = rs1-class, [1] = rs2 / store data.
        int src[2];          ///< ROB slot of the producer, or -1
        uint64_t srcVal[2];  ///< value when src == -1 (or after patch)
        uint32_t srcTaint[2];
        bool srcIsFp[2];
        // Destination.
        bool hasDest;
        bool destIsFp;
        uint8_t destReg;
        uint64_t result;
        uint32_t taint;    ///< origin-core bitmask of `result`
        uint32_t memTaint; ///< taint of the loaded memory word
        // Memory.
        bool isLoad, isStore;
        uint64_t addr;
        unsigned size;
        // Control.
        bool isCtrl;
        uint64_t actualNextIdx;
        bool resolved;
        // Faults & bookkeeping.
        TrapKind trap;
        bool injected;
    };

    enum class CommitOutcome { Continue, Halt, Crash };
    enum class MemCheck { Ready, Forward, Wait };

    size_t robNext(size_t i) const { return (i + 1) % rob_.size(); }
    uint64_t readIntNow(unsigned r) const
    {
        return r == 0 ? 0 : xreg_[r];
    }
    void captureSource(RobEntry &e, int slot, unsigned reg, bool isFp);
    void fetch();
    void rename();
    bool sourcesReady(const RobEntry &e) const;
    uint64_t sourceValue(const RobEntry &e, int s) const;
    uint32_t sourceTaint(const RobEntry &e, int s) const;
    unsigned latencyOf(isa::Op op) const;
    void checkMemFault(RobEntry &e);
    void issue();
    void applyInjection(RobEntry &e);
    void squashAfter(size_t slot, uint64_t redirectIdx, bool stopFetch);
    void finishExec(size_t slot);
    MemCheck checkLoad(size_t slot, uint64_t &forwardValue,
                       uint32_t &forwardTaint);
    void writeback();
    void patchWaiters(size_t slot, uint64_t value, uint32_t taint);
    CommitOutcome commit(TrapKind &trapOut);

    const isa::Program &prog_;
    OooConfig cfg_;
    InjectionPlan plan_;
    CorePort &port_;
    unsigned coreId_;
    uint32_t coreMask_;

    // ROB.
    std::vector<RobEntry> rob_;
    size_t head_ = 0, tail_ = 0, count_ = 0;
    uint64_t nextSeq_ = 0;

    // Rename tables: ROB slot of the latest producer, or -1.
    std::array<int, 32> mapInt_;
    std::array<int, 32> mapFp_;
    std::array<uint64_t, 32> xreg_{};
    std::array<uint64_t, 32> freg_{};
    std::array<uint32_t, 32> xregTaint_{};
    std::array<uint32_t, 32> fregTaint_{};

    std::vector<int> iq_; // ROB slots, program order
    std::deque<std::pair<uint64_t, uint64_t>> fetchBuf_; // (pcIdx, pred)

    uint64_t fetchIdx_;
    bool fetchStopped_ = false;

    Predictor pred_;

    unsigned loadsInFlight_ = 0, storesInFlight_ = 0;
    uint64_t intDivBusyUntil_ = 0, fpDivBusyUntil_ = 0;

    // Injection counters.
    uint64_t anyDestCount_ = 0;
    size_t anyDestPtr_ = 0;
    std::array<uint64_t, fpu::kNumFpuOps> fpOpCount_{};
    std::array<size_t, fpu::kNumFpuOps> fpOpPtr_{};

    // Stats.
    uint64_t cycles_ = 0, committed_ = 0, executed_ = 0;
    uint64_t injApplied_ = 0, injWrongPath_ = 0;
    uint64_t mispredicts_ = 0, squashed_ = 0;
    uint64_t crossLoads_ = 0;
};

} // namespace tea::sim

#endif // TEA_SIM_PIPELINE_HH
