#include "sim/ooo_sim.hh"

#include <algorithm>
#include <deque>

#include "sim/exec.hh"
#include "util/logging.hh"

namespace tea::sim {

using isa::Instruction;
using isa::Op;

InjectionPlan::InjectionPlan(const std::vector<InjectionEvent> &events)
{
    for (const auto &ev : events) {
        if (ev.kind == InjectionEvent::Kind::AnyDest)
            anyDest_.push_back({ev.index, ev.mask});
        else
            fpOp_[static_cast<size_t>(ev.op)].push_back(
                {ev.index, ev.mask});
    }
    auto cmp = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(anyDest_.begin(), anyDest_.end(), cmp);
    for (auto &v : fpOp_)
        std::sort(v.begin(), v.end(), cmp);
}

bool
InjectionPlan::empty() const
{
    if (!anyDest_.empty())
        return false;
    for (const auto &v : fpOp_)
        if (!v.empty())
            return false;
    return true;
}

size_t
InjectionPlan::totalEvents() const
{
    size_t n = anyDest_.size();
    for (const auto &v : fpOp_)
        n += v.size();
    return n;
}

namespace {

enum class Stage : uint8_t
{
    InIQ,       ///< waiting for operands / FU
    Exec,       ///< in a functional unit (countdown)
    MemPending, ///< load waiting for disambiguation
    MemAccess,  ///< load accessing the cache (countdown)
    Done,
};

struct RobEntry
{
    Instruction insn;
    uint64_t pcIdx;
    uint64_t seq;
    uint64_t predNextIdx;
    Stage stage;
    unsigned countdown;
    // Sources: [0] = rs1-class, [1] = rs2 / store data.
    int src[2];          ///< ROB slot of the producer, or -1
    uint64_t srcVal[2];  ///< value when src == -1 (or after patch)
    bool srcIsFp[2];
    // Destination.
    bool hasDest;
    bool destIsFp;
    uint8_t destReg;
    uint64_t result;
    // Memory.
    bool isLoad, isStore;
    uint64_t addr;
    unsigned size;
    // Control.
    bool isCtrl;
    uint64_t actualNextIdx;
    bool resolved;
    // Faults & bookkeeping.
    TrapKind trap;
    bool injected;
};

/** Simple 2-bit bimodal predictor plus a last-target table for JALR. */
struct Predictor
{
    static constexpr size_t kBimodal = 4096;
    static constexpr size_t kTargets = 1024;
    std::vector<uint8_t> counters = std::vector<uint8_t>(kBimodal, 1);
    std::vector<uint64_t> lastTarget =
        std::vector<uint64_t>(kTargets, ~0ULL);

    bool predictTaken(uint64_t pcIdx) const
    {
        return counters[pcIdx % kBimodal] >= 2;
    }
    void update(uint64_t pcIdx, bool taken)
    {
        uint8_t &c = counters[pcIdx % kBimodal];
        if (taken && c < 3)
            ++c;
        if (!taken && c > 0)
            --c;
    }
    uint64_t predictTarget(uint64_t pcIdx) const
    {
        return lastTarget[pcIdx % kTargets];
    }
    void updateTarget(uint64_t pcIdx, uint64_t target)
    {
        lastTarget[pcIdx % kTargets] = target;
    }
};

/** L1 data cache tag model (set-associative, LRU). */
struct L1Cache
{
    unsigned sets, ways, lineBits;
    std::vector<uint64_t> tags;
    std::vector<uint32_t> lru;
    uint32_t tick = 0;
    uint64_t misses = 0, accesses = 0;

    L1Cache(unsigned sets_, unsigned ways_, unsigned lineBytes)
        : sets(sets_), ways(ways_),
          lineBits(static_cast<unsigned>(__builtin_ctz(lineBytes))),
          tags(sets_ * ways_, ~0ULL), lru(sets_ * ways_, 0)
    {
    }

    bool access(uint64_t addr, bool allocate)
    {
        ++accesses;
        uint64_t line = addr >> lineBits;
        unsigned set = line % sets;
        ++tick;
        for (unsigned w = 0; w < ways; ++w) {
            if (tags[set * ways + w] == line) {
                lru[set * ways + w] = tick;
                return true;
            }
        }
        ++misses;
        if (allocate) {
            unsigned victim = 0;
            uint32_t best = UINT32_MAX;
            for (unsigned w = 0; w < ways; ++w) {
                if (lru[set * ways + w] < best) {
                    best = lru[set * ways + w];
                    victim = w;
                }
            }
            tags[set * ways + victim] = line;
            lru[set * ways + victim] = tick;
        }
        return false;
    }
};

} // namespace

struct OooSim::Impl
{
    const isa::Program &prog;
    OooConfig cfg;
    InjectionPlan plan;
    Memory &mem;
    Console &console;

    // ROB.
    std::vector<RobEntry> rob;
    size_t head = 0, tail = 0, count = 0;
    uint64_t nextSeq = 0;

    // Rename tables: ROB slot of the latest producer, or -1.
    std::array<int, 32> mapInt;
    std::array<int, 32> mapFp;
    std::array<uint64_t, 32> xreg{};
    std::array<uint64_t, 32> freg{};

    std::vector<int> iq; // ROB slots, program order
    std::deque<std::pair<uint64_t, uint64_t>> fetchBuf; // (pcIdx, pred)

    uint64_t fetchIdx;
    bool fetchStopped = false;

    Predictor pred;
    L1Cache cache;

    unsigned loadsInFlight = 0, storesInFlight = 0;
    uint64_t intDivBusyUntil = 0, fpDivBusyUntil = 0;

    // Injection counters.
    uint64_t anyDestCount = 0;
    size_t anyDestPtr = 0;
    std::array<uint64_t, fpu::kNumFpuOps> fpOpCount{};
    std::array<size_t, fpu::kNumFpuOps> fpOpPtr{};

    // Stats.
    uint64_t cycles = 0, committed = 0, executed = 0;
    uint64_t injApplied = 0, injWrongPath = 0;
    uint64_t mispredicts = 0, squashed = 0;

    Impl(const isa::Program &p, OooConfig c, InjectionPlan pl,
         Memory &m, Console &con)
        : prog(p), cfg(c), plan(std::move(pl)), mem(m), console(con),
          rob(c.robSize), fetchIdx(p.entryIndex),
          cache(c.l1Sets, c.l1Ways, c.l1LineBytes)
    {
        mapInt.fill(-1);
        mapFp.fill(-1);
        xreg[2] = isa::kStackTop - 64;
    }

    size_t robNext(size_t i) const { return (i + 1) % rob.size(); }

    // ---- fetch -------------------------------------------------------
    void
    fetch()
    {
        for (unsigned i = 0; i < cfg.fetchWidth; ++i) {
            if (fetchStopped || fetchBuf.size() >= 2 * cfg.fetchWidth)
                return;
            if (fetchIdx >= prog.code.size()) {
                // Wrong-path runaway; wait for a redirect.
                return;
            }
            const Instruction &insn = prog.code[fetchIdx];
            uint64_t next = fetchIdx + 1;
            if (isa::isBranch(insn.op)) {
                if (pred.predictTaken(fetchIdx))
                    next = fetchIdx + static_cast<int64_t>(insn.imm);
            } else if (insn.op == Op::JAL) {
                next = fetchIdx + static_cast<int64_t>(insn.imm);
            } else if (insn.op == Op::JALR) {
                uint64_t t = pred.predictTarget(fetchIdx);
                next = (t == ~0ULL) ? fetchIdx + 1 : t;
            } else if (insn.op == Op::HALT) {
                fetchBuf.push_back({fetchIdx, fetchIdx});
                fetchStopped = true;
                return;
            }
            fetchBuf.push_back({fetchIdx, next});
            fetchIdx = next;
        }
    }

    // ---- rename / dispatch --------------------------------------------
    uint64_t
    readIntNow(unsigned r) const
    {
        return r == 0 ? 0 : xreg[r];
    }

    void
    captureSource(RobEntry &e, int slot, unsigned reg, bool isFp)
    {
        e.srcIsFp[slot] = isFp;
        int producer = isFp ? mapFp[reg] : (reg ? mapInt[reg] : -1);
        if (producer >= 0) {
            e.src[slot] = producer;
            e.srcVal[slot] = 0;
        } else {
            e.src[slot] = -1;
            e.srcVal[slot] = isFp ? freg[reg] : readIntNow(reg);
        }
    }

    void
    rename()
    {
        for (unsigned i = 0; i < cfg.renameWidth; ++i) {
            if (fetchBuf.empty() || count == rob.size() ||
                iq.size() >= cfg.iqSize)
                return;
            auto [pcIdx, predNext] = fetchBuf.front();
            const Instruction &insn = prog.code[pcIdx];
            if (isa::isLoad(insn.op) && loadsInFlight >= cfg.maxLoads)
                return;
            if (isa::isStore(insn.op) &&
                storesInFlight >= cfg.maxStores)
                return;
            fetchBuf.pop_front();

            size_t slot = tail;
            tail = robNext(tail);
            ++count;
            RobEntry &e = rob[slot];
            e = RobEntry{};
            e.insn = insn;
            e.pcIdx = pcIdx;
            e.seq = nextSeq++;
            e.predNextIdx = predNext;
            e.stage = Stage::InIQ;
            e.src[0] = e.src[1] = -1;
            e.isLoad = isa::isLoad(insn.op);
            e.isStore = isa::isStore(insn.op);
            e.isCtrl = isa::isBranch(insn.op) || isa::isJump(insn.op);
            e.trap = TrapKind::None;

            // Sources.
            bool ecallFp = insn.op == Op::ECALL &&
                           insn.imm ==
                               static_cast<int>(isa::Syscall::PrintFp);
            if (isa::readsFpRs1(insn.op) || ecallFp)
                captureSource(e, 0, insn.rs1, true);
            else if (isa::readsIntRs1(insn.op) && !ecallFp)
                captureSource(e, 0, insn.rs1, false);
            if (isa::readsFpRs2(insn.op))
                captureSource(e, 1, insn.rs2, true);
            else if (isa::readsIntRs2(insn.op))
                captureSource(e, 1, insn.rs2, false);
            if (e.isStore)
                captureSource(e, 1, insn.rd, isa::storeDataIsFp(insn.op));

            // Destination.
            e.destIsFp = isa::writesFpReg(insn.op);
            e.destReg = insn.rd;
            e.hasDest = isa::hasDest(insn.op) &&
                        !(!e.destIsFp && insn.rd == 0);
            if (e.hasDest) {
                if (e.destIsFp)
                    mapFp[e.destReg] = static_cast<int>(slot);
                else
                    mapInt[e.destReg] = static_cast<int>(slot);
            }

            if (e.isLoad)
                ++loadsInFlight;
            if (e.isStore)
                ++storesInFlight;
            iq.push_back(static_cast<int>(slot));
        }
    }

    // ---- issue ---------------------------------------------------------
    bool
    sourcesReady(const RobEntry &e) const
    {
        for (int s = 0; s < 2; ++s) {
            if (e.src[s] >= 0 &&
                rob[static_cast<size_t>(e.src[s])].stage != Stage::Done)
                return false;
        }
        return true;
    }

    uint64_t
    sourceValue(const RobEntry &e, int s) const
    {
        if (e.src[s] >= 0)
            return rob[static_cast<size_t>(e.src[s])].result;
        return e.srcVal[s];
    }

    unsigned
    latencyOf(Op op) const
    {
        if (op == Op::MUL)
            return cfg.latMul;
        if (op == Op::DIV || op == Op::DIVU || op == Op::REM ||
            op == Op::REMU)
            return cfg.latDiv;
        if (isa::isFpArith(op)) {
            switch (op) {
              case Op::FADD_D: case Op::FSUB_D:
              case Op::FADD_S: case Op::FSUB_S:
                return cfg.latFpAdd;
              case Op::FMUL_D: case Op::FMUL_S:
                return cfg.latFpMul;
              case Op::FDIV_D: case Op::FDIV_S:
                return cfg.latFpDiv;
              default:
                return cfg.latFpCvt;
            }
        }
        return cfg.latAlu;
    }

    void
    checkMemFault(RobEntry &e)
    {
        if (e.addr & (e.size - 1))
            e.trap = TrapKind::Misaligned;
        else if (e.addr < isa::kProtectedTop)
            e.trap = TrapKind::ProtectedAccess;
        else if (!mem.isMapped(e.addr, e.size))
            e.trap = TrapKind::MemFault;
    }

    void
    issue()
    {
        unsigned issued = 0;
        for (auto it = iq.begin(); it != iq.end() &&
                                   issued < cfg.issueWidth;) {
            RobEntry &e = rob[static_cast<size_t>(*it)];
            if (!sourcesReady(e)) {
                ++it;
                continue;
            }
            Op op = e.insn.op;
            bool intDiv = op == Op::DIV || op == Op::DIVU ||
                          op == Op::REM || op == Op::REMU;
            bool fpDiv = op == Op::FDIV_D || op == Op::FDIV_S;
            if (intDiv && cycles < intDivBusyUntil) {
                ++it;
                continue;
            }
            if (fpDiv && cycles < fpDivBusyUntil) {
                ++it;
                continue;
            }

            uint64_t a = sourceValue(e, 0);
            uint64_t b = sourceValue(e, 1);
            e.countdown = latencyOf(op);
            e.stage = Stage::Exec;

            if (e.isLoad || e.isStore) {
                e.addr = a + static_cast<int64_t>(e.insn.imm);
                e.size = memAccessSize(op);
                checkMemFault(e);
                if (e.isStore)
                    e.result = b; // store data
                e.countdown = cfg.latAgen;
            } else if (isa::isBranch(op)) {
                bool taken = branchTaken(op, a, b);
                e.actualNextIdx =
                    taken ? e.pcIdx + static_cast<int64_t>(e.insn.imm)
                          : e.pcIdx + 1;
                e.countdown = cfg.latAlu;
            } else if (op == Op::JAL) {
                e.actualNextIdx =
                    e.pcIdx + static_cast<int64_t>(e.insn.imm);
                e.result = (e.pcIdx + 1) * 4 + isa::kCodeBase;
                e.countdown = cfg.latAlu;
            } else if (op == Op::JALR) {
                uint64_t target = a + static_cast<int64_t>(e.insn.imm);
                e.result = (e.pcIdx + 1) * 4 + isa::kCodeBase;
                if (target < isa::kCodeBase || (target & 3) ||
                    (target - isa::kCodeBase) / 4 >= prog.code.size()) {
                    e.trap = TrapKind::BadJump;
                    e.actualNextIdx = e.pcIdx + 1; // never used
                } else {
                    e.actualNextIdx = (target - isa::kCodeBase) / 4;
                }
                e.countdown = cfg.latAlu;
            } else if (op == Op::ECALL) {
                e.result = a; // value captured for commit
                e.countdown = cfg.latAlu;
            } else if (op == Op::HALT || op == Op::NOP) {
                e.countdown = 1;
            } else {
                ExecOut out = execArith(e.insn, a, b);
                e.result = out.value;
                if (out.fpSevere && cfg.trapOnSevereFp &&
                    isa::isFpArith(op))
                    e.trap = TrapKind::FpException;
                if (intDiv)
                    intDivBusyUntil = cycles + cfg.latDiv;
                if (fpDiv)
                    fpDivBusyUntil = cycles + cfg.latFpDiv;
            }
            it = iq.erase(it);
            ++issued;
        }
    }

    // ---- injection at writeback -----------------------------------------
    void
    applyInjection(RobEntry &e)
    {
        if (e.hasDest) {
            const auto &events = plan.anyDest();
            while (anyDestPtr < events.size() &&
                   events[anyDestPtr].first == anyDestCount) {
                e.result ^= events[anyDestPtr].second;
                e.injected = true;
                ++injApplied;
                ++anyDestPtr;
            }
            ++anyDestCount;
        }
        if (isa::isFpArith(e.insn.op)) {
            auto op = isa::fpuOpFor(e.insn.op);
            auto idx = static_cast<size_t>(op);
            const auto &events = plan.fpOp(op);
            while (fpOpPtr[idx] < events.size() &&
                   events[fpOpPtr[idx]].first == fpOpCount[idx]) {
                e.result ^= events[fpOpPtr[idx]].second;
                e.injected = true;
                ++injApplied;
                ++fpOpPtr[idx];
            }
            ++fpOpCount[idx];
        }
    }

    // ---- squash ---------------------------------------------------------
    void
    squashAfter(size_t slot, uint64_t redirectIdx, bool stopFetch)
    {
        // Kill everything younger than `slot`.
        while (tail != robNext(slot)) {
            size_t last = (tail + rob.size() - 1) % rob.size();
            RobEntry &e = rob[last];
            if (e.isLoad)
                --loadsInFlight;
            if (e.isStore)
                --storesInFlight;
            if (e.injected)
                ++injWrongPath;
            ++squashed;
            tail = last;
            --count;
        }
        // Drop IQ entries that no longer exist.
        uint64_t maxSeq = rob[slot].seq;
        std::erase_if(iq, [&](int s) {
            return rob[static_cast<size_t>(s)].seq > maxSeq ||
                   rob[static_cast<size_t>(s)].stage != Stage::InIQ;
        });
        // Rebuild the rename tables from the surviving entries.
        mapInt.fill(-1);
        mapFp.fill(-1);
        for (size_t i = head, n = 0; n < count; i = robNext(i), ++n) {
            RobEntry &e = rob[i];
            if (e.hasDest) {
                if (e.destIsFp)
                    mapFp[e.destReg] = static_cast<int>(i);
                else
                    mapInt[e.destReg] = static_cast<int>(i);
            }
        }
        fetchBuf.clear();
        fetchIdx = redirectIdx;
        fetchStopped = stopFetch;
    }

    // ---- writeback / memory progression -----------------------------------
    void
    finishExec(size_t slot)
    {
        RobEntry &e = rob[slot];
        e.stage = Stage::Done;
        ++executed;
        applyInjection(e);
        if (e.isCtrl && !e.resolved) {
            e.resolved = true;
            if (isa::isBranch(e.insn.op))
                pred.update(e.pcIdx,
                            e.actualNextIdx != e.pcIdx + 1);
            if (e.insn.op == Op::JALR && e.trap == TrapKind::None)
                pred.updateTarget(e.pcIdx, e.actualNextIdx);
            if (e.trap != TrapKind::None) {
                // Bad jump: stop fetching down this path entirely.
                ++mispredicts;
                squashAfter(slot, 0, true);
            } else if (e.actualNextIdx != e.predNextIdx) {
                ++mispredicts;
                squashAfter(slot, e.actualNextIdx, false);
            }
        }
    }

    /** Disambiguate a load against older in-flight stores. */
    enum class MemCheck { Ready, Forward, Wait };

    MemCheck
    checkLoad(size_t slot, uint64_t &forwardValue)
    {
        const RobEntry &ld = rob[slot];
        // Walk older entries from youngest to oldest.
        size_t i = slot;
        MemCheck result = MemCheck::Ready;
        while (i != head) {
            i = (i + rob.size() - 1) % rob.size();
            const RobEntry &st = rob[i];
            if (!st.isStore)
                continue;
            if (st.stage != Stage::Done)
                return MemCheck::Wait; // address unknown
            if (st.trap != TrapKind::None)
                return MemCheck::Wait; // will crash at commit
            bool overlap = st.addr < ld.addr + ld.size &&
                           ld.addr < st.addr + st.size;
            if (!overlap)
                continue;
            if (st.addr == ld.addr && st.size == ld.size) {
                forwardValue = st.result;
                return MemCheck::Forward;
            }
            return MemCheck::Wait; // partial overlap: wait for commit
        }
        return result;
    }

    void
    writeback()
    {
        for (size_t i = head, n = 0; n < count; i = robNext(i), ++n) {
            RobEntry &e = rob[i];
            switch (e.stage) {
              case Stage::Exec:
                if (--e.countdown == 0) {
                    if (e.isLoad && e.trap == TrapKind::None) {
                        e.stage = Stage::MemPending;
                    } else {
                        finishExec(i);
                        // finishExec may squash; restart conservatively.
                        if (rob[i].stage != Stage::Done)
                            return;
                    }
                }
                break;
              case Stage::MemPending: {
                uint64_t fwd = 0;
                MemCheck c = checkLoad(i, fwd);
                if (c == MemCheck::Forward) {
                    e.result = fwd;
                    e.stage = Stage::MemAccess;
                    e.countdown = 1;
                } else if (c == MemCheck::Ready) {
                    bool hit = cache.access(e.addr, true);
                    e.result = mem.read(e.addr, e.size);
                    e.stage = Stage::MemAccess;
                    e.countdown =
                        hit ? cfg.latCacheHit : cfg.latCacheMiss;
                }
                break;
              }
              case Stage::MemAccess:
                if (--e.countdown == 0) {
                    if (e.insn.op == Op::LW) {
                        e.result = static_cast<uint64_t>(
                            static_cast<int64_t>(
                                static_cast<int32_t>(e.result)));
                    }
                    finishExec(i);
                }
                break;
              default:
                break;
            }
        }
    }

    // ---- commit ----------------------------------------------------------
    /** Patch IQ waiters whose producer leaves the ROB. */
    void
    patchWaiters(size_t slot, uint64_t value)
    {
        for (int s : iq) {
            RobEntry &e = rob[static_cast<size_t>(s)];
            for (int k = 0; k < 2; ++k) {
                if (e.src[k] == static_cast<int>(slot)) {
                    e.src[k] = -1;
                    e.srcVal[k] = value;
                }
            }
        }
    }

    enum class CommitOutcome { Continue, Halt, Crash };

    CommitOutcome
    commit(TrapKind &trapOut)
    {
        for (unsigned i = 0; i < cfg.commitWidth; ++i) {
            if (count == 0)
                return CommitOutcome::Continue;
            RobEntry &e = rob[head];
            if (e.stage != Stage::Done)
                return CommitOutcome::Continue;
            if (e.trap != TrapKind::None) {
                trapOut = e.trap;
                return CommitOutcome::Crash;
            }
            if (e.insn.op == Op::HALT) {
                ++committed;
                return CommitOutcome::Halt;
            }
            if (e.isStore) {
                mem.write(e.addr, e.size, e.result);
                cache.access(e.addr, true);
                --storesInFlight;
            }
            if (e.isLoad)
                --loadsInFlight;
            if (e.insn.op == Op::ECALL &&
                (e.insn.imm ==
                     static_cast<int>(isa::Syscall::PrintInt) ||
                 e.insn.imm ==
                     static_cast<int>(isa::Syscall::PrintFp))) {
                console.push_back(e.result);
            }
            if (e.hasDest) {
                patchWaiters(head, e.result);
                if (e.destIsFp) {
                    freg[e.destReg] = e.result;
                    if (mapFp[e.destReg] == static_cast<int>(head))
                        mapFp[e.destReg] = -1;
                } else {
                    xreg[e.destReg] = e.result;
                    if (mapInt[e.destReg] == static_cast<int>(head))
                        mapInt[e.destReg] = -1;
                }
            }
            head = robNext(head);
            --count;
            ++committed;
        }
        return CommitOutcome::Continue;
    }
};

OooSim::OooSim(isa::Program prog, OooConfig cfg, InjectionPlan plan)
    : prog_(std::move(prog))
{
    mem_.loadProgram(prog_);
    impl_ = new Impl(prog_, cfg, std::move(plan), mem_, console_);
}

OooSim::~OooSim()
{
    delete impl_;
}

OooSim::Result
OooSim::run(uint64_t maxCycles, const Watchdog *watchdog)
{
    Impl &s = *impl_;
    Result res{};
    res.status = Status::CycleLimit;
    res.trap = TrapKind::None;

    // ~4k cycles between polls keeps the steady_clock read off the
    // per-cycle path while still bounding a hung run to milliseconds
    // of overshoot.
    constexpr uint64_t kPollMask = 0xFFF;

    while (s.cycles < maxCycles) {
        if (watchdog && (s.cycles & kPollMask) == 0) {
            Watchdog::Stop stop = watchdog->poll();
            if (stop != Watchdog::Stop::None) {
                res.status = Status::Interrupted;
                res.stop = stop;
                break;
            }
        }
        ++s.cycles;
        TrapKind trap = TrapKind::None;
        auto outcome = s.commit(trap);
        if (outcome == Impl::CommitOutcome::Halt) {
            res.status = Status::Halted;
            break;
        }
        if (outcome == Impl::CommitOutcome::Crash) {
            res.status = Status::Crashed;
            res.trap = trap;
            break;
        }
        s.writeback();
        s.issue();
        s.rename();
        s.fetch();
    }

    res.cycles = s.cycles;
    res.committed = s.committed;
    res.executed = s.executed;
    res.injectionsApplied = s.injApplied;
    res.injectionsOnWrongPath = s.injWrongPath;
    res.branchMispredicts = s.mispredicts;
    res.cacheMisses = s.cache.misses;
    res.cacheAccesses = s.cache.accesses;
    res.squashedInstructions = s.squashed;
    return res;
}

} // namespace tea::sim
