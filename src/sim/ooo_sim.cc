#include "sim/ooo_sim.hh"

#include <algorithm>

#include "sim/pipeline.hh"
#include "util/logging.hh"

namespace tea::sim {

InjectionPlan::InjectionPlan(const std::vector<InjectionEvent> &events)
{
    for (const auto &ev : events) {
        if (ev.kind == InjectionEvent::Kind::AnyDest)
            anyDest_.push_back({ev.index, ev.mask});
        else
            fpOp_[static_cast<size_t>(ev.op)].push_back(
                {ev.index, ev.mask});
    }
    auto cmp = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(anyDest_.begin(), anyDest_.end(), cmp);
    for (auto &v : fpOp_)
        std::sort(v.begin(), v.end(), cmp);
}

bool
InjectionPlan::empty() const
{
    if (!anyDest_.empty())
        return false;
    for (const auto &v : fpOp_)
        if (!v.empty())
            return false;
    return true;
}

size_t
InjectionPlan::totalEvents() const
{
    size_t n = anyDest_.size();
    for (const auto &v : fpOp_)
        n += v.size();
    return n;
}

namespace {

/**
 * Single-core port: one flat Memory behind a private L1, console
 * syscalls only. Reproduces the pre-refactor OooSim bit-for-bit.
 */
class FlatPort final : public CorePort
{
  public:
    FlatPort(Memory &mem, Console &console, const OooConfig &cfg)
        : mem_(mem), console_(console),
          cache_(cfg.l1Sets, cfg.l1Ways, cfg.l1LineBytes),
          latHit_(cfg.latCacheHit), latMiss_(cfg.latCacheMiss)
    {
    }

    LoadResult load(uint64_t addr, unsigned size) override
    {
        bool hit = cache_.access(addr, true);
        return {mem_.read(addr, size), hit ? latHit_ : latMiss_, 0};
    }

    void store(uint64_t addr, unsigned size, uint64_t value,
               uint32_t /*taint*/) override
    {
        mem_.write(addr, size, value);
        cache_.access(addr, true);
    }

    bool mapped(uint64_t addr, unsigned size,
                bool /*isStore*/) const override
    {
        return mem_.isMapped(addr, size);
    }

    Sys syscall(int func, uint64_t arg, TrapKind & /*trap*/) override
    {
        if (func == static_cast<int>(isa::Syscall::PrintInt) ||
            func == static_cast<int>(isa::Syscall::PrintFp))
            console_.push_back(arg);
        return Sys::Proceed;
    }

    const L1Cache &cache() const { return cache_; }

  private:
    Memory &mem_;
    Console &console_;
    L1Cache cache_;
    unsigned latHit_, latMiss_;
};

} // namespace

struct OooSim::Impl
{
    FlatPort port;
    CorePipeline pipe;

    Impl(const isa::Program &prog, const OooConfig &cfg,
         InjectionPlan plan, Memory &mem, Console &console)
        : port(mem, console, cfg),
          pipe(prog, cfg, std::move(plan), port, 0)
    {
    }
};

OooSim::OooSim(isa::Program prog, OooConfig cfg, InjectionPlan plan)
    : prog_(std::move(prog))
{
    mem_.loadProgram(prog_);
    impl_ = std::make_unique<Impl>(prog_, cfg, std::move(plan), mem_,
                                   console_);
}

OooSim::~OooSim() = default;

OooSim::Result
OooSim::run(uint64_t maxCycles, const Watchdog *watchdog)
{
    CorePipeline &pipe = impl_->pipe;
    Result res{};
    res.status = Status::CycleLimit;
    res.trap = TrapKind::None;

    // ~4k cycles between polls keeps the steady_clock read off the
    // per-cycle path while still bounding a hung run to milliseconds
    // of overshoot.
    constexpr uint64_t kPollMask = 0xFFF;

    while (pipe.cycles() < maxCycles) {
        if (watchdog && (pipe.cycles() & kPollMask) == 0) {
            Watchdog::Stop stop = watchdog->poll();
            if (stop != Watchdog::Stop::None) {
                res.status = Status::Interrupted;
                res.stop = stop;
                break;
            }
        }
        TrapKind trap = TrapKind::None;
        auto step = pipe.step(trap);
        if (step == CorePipeline::Step::Halted) {
            res.status = Status::Halted;
            break;
        }
        if (step == CorePipeline::Step::Crashed) {
            res.status = Status::Crashed;
            res.trap = trap;
            break;
        }
    }

    res.cycles = pipe.cycles();
    res.committed = pipe.committed();
    res.executed = pipe.executed();
    res.injectionsApplied = pipe.injectionsApplied();
    res.injectionsOnWrongPath = pipe.injectionsOnWrongPath();
    res.branchMispredicts = pipe.branchMispredicts();
    res.cacheMisses = impl_->port.cache().misses;
    res.cacheAccesses = impl_->port.cache().accesses;
    res.squashedInstructions = pipe.squashedInstructions();
    return res;
}

} // namespace tea::sim
