#include "isa/program.hh"

#include "util/logging.hh"

namespace tea::isa {

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatal_if(it == symbols.end(), "program '%s' has no symbol '%s'",
             this->name.c_str(), name.c_str());
    return it->second;
}

uint64_t
Program::symbolSize(const std::string &name) const
{
    auto it = symbolSizes.find(name);
    fatal_if(it == symbolSizes.end(),
             "program '%s' has no symbol size for '%s'",
             this->name.c_str(), name.c_str());
    return it->second;
}

uint64_t
Program::dataEnd() const
{
    uint64_t end = kDataBase;
    for (const auto &seg : data)
        end = std::max(end, seg.addr + seg.bytes.size());
    return end;
}

} // namespace tea::isa
