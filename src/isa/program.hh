/**
 * @file
 * A loaded program image: decoded code, initialized data segments, and
 * the symbol table workload checkers use to locate input/output
 * buffers.
 */

#ifndef TEA_ISA_PROGRAM_HH
#define TEA_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace tea::isa {

/** Default memory map (see DESIGN.md "crash taxonomy"). */
constexpr uint64_t kProtectedTop = 0x1000;   ///< [0, 4K): kernel region
constexpr uint64_t kCodeBase = 0x1000;
constexpr uint64_t kDataBase = 0x100000;     ///< 1 MiB
constexpr uint64_t kStackTop = 0x4000000;    ///< 64 MiB
constexpr uint64_t kStackSize = 0x100000;    ///< 1 MiB mapped

/**
 * Multi-core control page: a read-only page below the data segment
 * that the multi-core simulator (src/mc) maps per core, so one SPMD
 * program image can ask "who am I / how many of us are there". Loads
 * from it hit the single-core simulators as plain unmapped memory —
 * single-core programs simply never touch it.
 */
constexpr uint64_t kMcCtrlBase = 0xF0000;
constexpr uint64_t kMcCtrlSize = 0x1000;
constexpr uint64_t kMcCtrlCoreId = kMcCtrlBase + 0;   ///< this core's id
constexpr uint64_t kMcCtrlNumCores = kMcCtrlBase + 8; ///< core count

/** Per-core stack carve used by the spawn ABI (cores fit in 1 MiB). */
constexpr uint64_t kMcStackBytes = 0x10000; ///< 64 KiB per core
constexpr unsigned kMcMaxCores = 8;

struct Program
{
    std::string name;
    std::vector<Instruction> code; ///< at kCodeBase, 4 bytes each
    struct DataSegment
    {
        uint64_t addr;
        std::vector<uint8_t> bytes;
    };
    std::vector<DataSegment> data;
    std::map<std::string, uint64_t> symbols;
    /** Byte sizes of named symbols (for checkers reading buffers). */
    std::map<std::string, uint64_t> symbolSizes;
    uint64_t entryIndex = 0;

    /** Address of a named symbol; fatal() if absent. */
    uint64_t symbol(const std::string &name) const;
    /** Size in bytes of a named symbol; fatal() if absent. */
    uint64_t symbolSize(const std::string &name) const;
    /** Highest data address used (exclusive). */
    uint64_t dataEnd() const;
};

} // namespace tea::isa

#endif // TEA_ISA_PROGRAM_HH
