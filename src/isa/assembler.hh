/**
 * @file
 * Two-pass text assembler for TRISC-64.
 *
 * Accepts the syntax the disassembler emits plus the usual conveniences
 * (labels, `.data`/`.text` sections, `.double/.i64/.i32/.space`
 * directives, and the li/la/mv/j/ret pseudo-instructions). Used by the
 * examples and tests; the workloads use the AsmBuilder DSL directly.
 */

#ifndef TEA_ISA_ASSEMBLER_HH
#define TEA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace tea::isa {

/** Assemble source text into a Program; fatal() with a line number on
 * syntax errors. */
Program assemble(const std::string &source,
                 const std::string &programName = "asm");

} // namespace tea::isa

#endif // TEA_ISA_ASSEMBLER_HH
