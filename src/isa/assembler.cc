#include "isa/assembler.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "isa/asmbuilder.hh"
#include "util/logging.hh"

namespace tea::isa {

namespace {

struct Token
{
    std::string text;
};

std::vector<std::string>
tokenizeLine(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : line) {
        if (ch == '#' || ch == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',' ||
            ch == '(' || ch == ')') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
            continue;
        }
        cur.push_back(ch);
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
parseReg(const std::string &tok, char cls, uint8_t &reg)
{
    if (tok.size() < 2 || tok[0] != cls)
        return false;
    for (size_t i = 1; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    int v = std::stoi(tok.substr(1));
    if (v < 0 || v > 31)
        return false;
    reg = static_cast<uint8_t>(v);
    return true;
}

bool
parseInt(const std::string &tok, int64_t &value)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 0);
    if (errno || end != tok.c_str() + tok.size())
        return false;
    value = v;
    return true;
}

bool
parseDouble(const std::string &tok, double &value)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (errno || end != tok.c_str() + tok.size())
        return false;
    value = v;
    return true;
}

/** The known ops by mnemonic. */
const std::map<std::string, Op> &
opTable()
{
    static std::map<std::string, Op> table = [] {
        std::map<std::string, Op> t;
        for (unsigned i = 0; i < kNumOps; ++i) {
            auto op = static_cast<Op>(i);
            t[opName(op)] = op;
        }
        return t;
    }();
    return table;
}

} // namespace

Program
assemble(const std::string &source, const std::string &programName)
{
    AsmBuilder b(programName);
    std::map<std::string, AsmBuilder::Label> labels;
    auto getLabel = [&](const std::string &name) {
        auto it = labels.find(name);
        if (it != labels.end())
            return it->second;
        AsmBuilder::Label l = b.newLabel();
        labels[name] = l;
        return l;
    };

    // Pass 1: collect data directives so la/li can resolve addresses,
    // and remember code lines.
    std::istringstream in(source);
    std::string line;
    int lineNo = 0;
    bool inData = false;
    std::vector<std::pair<int, std::vector<std::string>>> codeLines;
    std::string pendingDataLabel;

    while (std::getline(in, line)) {
        ++lineNo;
        auto toks = tokenizeLine(line);
        if (toks.empty())
            continue;
        // Label prefix?
        while (!toks.empty() && toks[0].back() == ':') {
            std::string name = toks[0].substr(0, toks[0].size() - 1);
            if (inData)
                pendingDataLabel = name;
            else
                codeLines.push_back(
                    {lineNo, {std::string("label:") + name}});
            toks.erase(toks.begin());
        }
        if (toks.empty())
            continue;
        const std::string &head = toks[0];
        if (head == ".data") {
            inData = true;
            continue;
        }
        if (head == ".text") {
            inData = false;
            continue;
        }
        if (inData) {
            fatal_if(pendingDataLabel.empty(),
                     "line %d: data directive without a label", lineNo);
            std::string name = pendingDataLabel;
            pendingDataLabel.clear();
            if (head == ".double") {
                std::vector<double> vals;
                for (size_t i = 1; i < toks.size(); ++i) {
                    double v;
                    fatal_if(!parseDouble(toks[i], v),
                             "line %d: bad double '%s'", lineNo,
                             toks[i].c_str());
                    vals.push_back(v);
                }
                b.dataDoubles(name, vals);
            } else if (head == ".i64") {
                std::vector<int64_t> vals;
                for (size_t i = 1; i < toks.size(); ++i) {
                    int64_t v;
                    fatal_if(!parseInt(toks[i], v),
                             "line %d: bad integer '%s'", lineNo,
                             toks[i].c_str());
                    vals.push_back(v);
                }
                b.dataI64(name, vals);
            } else if (head == ".i32") {
                std::vector<int32_t> vals;
                for (size_t i = 1; i < toks.size(); ++i) {
                    int64_t v;
                    fatal_if(!parseInt(toks[i], v),
                             "line %d: bad integer '%s'", lineNo,
                             toks[i].c_str());
                    vals.push_back(static_cast<int32_t>(v));
                }
                b.dataI32(name, vals);
            } else if (head == ".space") {
                int64_t v;
                fatal_if(toks.size() != 2 || !parseInt(toks[1], v) ||
                             v < 0,
                         "line %d: bad .space", lineNo);
                b.dataSpace(name, static_cast<uint64_t>(v));
            } else {
                fatal("line %d: unknown data directive '%s'", lineNo,
                      head.c_str());
            }
            continue;
        }
        codeLines.push_back({lineNo, toks});
    }

    // Pass 2: emit code.
    auto reg = [&](const std::string &tok, char cls, int ln) {
        uint8_t r;
        fatal_if(!parseReg(tok, cls, r), "line %d: expected %c-register, got '%s'",
                 ln, cls, tok.c_str());
        return r;
    };
    auto imm = [&](const std::string &tok, int ln) {
        int64_t v;
        fatal_if(!parseInt(tok, v), "line %d: bad immediate '%s'", ln,
                 tok.c_str());
        return v;
    };

    for (auto &[ln, toks] : codeLines) {
        const std::string &head = toks[0];
        if (head.rfind("label:", 0) == 0) {
            b.bind(getLabel(head.substr(6)));
            continue;
        }
        // Pseudo-instructions first.
        if (head == "li") {
            fatal_if(toks.size() != 3, "line %d: li rd, imm", ln);
            b.li(reg(toks[1], 'x', ln), imm(toks[2], ln));
            continue;
        }
        if (head == "la") {
            fatal_if(toks.size() != 3, "line %d: la rd, symbol", ln);
            b.la(reg(toks[1], 'x', ln), toks[2]);
            continue;
        }
        if (head == "mv") {
            fatal_if(toks.size() != 3, "line %d: mv rd, rs", ln);
            b.mv(reg(toks[1], 'x', ln), reg(toks[2], 'x', ln));
            continue;
        }
        if (head == "j") {
            fatal_if(toks.size() != 2, "line %d: j label", ln);
            b.j(getLabel(toks[1]));
            continue;
        }
        if (head == "call") {
            fatal_if(toks.size() != 2, "line %d: call label", ln);
            b.call(getLabel(toks[1]));
            continue;
        }
        if (head == "ret") {
            b.ret();
            continue;
        }
        if (head == "print.int") {
            b.printInt(reg(toks[1], 'x', ln));
            continue;
        }
        if (head == "print.fp") {
            b.printFp(reg(toks[1], 'f', ln));
            continue;
        }

        auto it = opTable().find(head);
        fatal_if(it == opTable().end(), "line %d: unknown mnemonic '%s'",
                 ln, head.c_str());
        Op op = it->second;

        if (op == Op::HALT || op == Op::NOP) {
            b.emit(op);
        } else if (isBranch(op)) {
            fatal_if(toks.size() != 4, "line %d: branch rs1, rs2, label",
                     ln);
            AsmBuilder::Label l = getLabel(toks[3]);
            switch (op) {
              case Op::BEQ: b.beq(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
              case Op::BNE: b.bne(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
              case Op::BLT: b.blt(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
              case Op::BGE: b.bge(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
              case Op::BLTU: b.bltu(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
              default: b.bgeu(reg(toks[1],'x',ln), reg(toks[2],'x',ln), l); break;
            }
        } else if (op == Op::JAL) {
            fatal_if(toks.size() != 3, "line %d: jal rd, label", ln);
            b.jal(reg(toks[1], 'x', ln), getLabel(toks[2]));
        } else if (op == Op::JALR) {
            fatal_if(toks.size() < 3, "line %d: jalr rd, rs1[, imm]", ln);
            int64_t off = toks.size() > 3 ? imm(toks[3], ln) : 0;
            b.jalr(reg(toks[1], 'x', ln), reg(toks[2], 'x', ln),
                   static_cast<int32_t>(off));
        } else if (isLoad(op) || isStore(op)) {
            // mnemonics: ld xD, off(xB) -> tokens {op, xD, off, xB}
            fatal_if(toks.size() != 4, "line %d: %s rd, off(base)", ln,
                     head.c_str());
            char cls = (op == Op::FLD || op == Op::FSD) ? 'f' : 'x';
            uint8_t r = reg(toks[1], cls, ln);
            auto off = static_cast<int32_t>(imm(toks[2], ln));
            uint8_t base = reg(toks[3], 'x', ln);
            b.emit(op, r, base, 0, off);
        } else if (op == Op::LIW) {
            b.emit(op, reg(toks[1], 'x', ln), 0, 0,
                   static_cast<int32_t>(imm(toks[2], ln)));
        } else if (op == Op::ECALL) {
            fatal_if(toks.size() != 3, "line %d: ecall fn, reg", ln);
            auto fn = static_cast<int32_t>(imm(toks[1], ln));
            char cls = (fn == 2) ? 'f' : 'x';
            b.emit(op, 0, reg(toks[2], cls, ln), 0, fn);
        } else {
            // Register-format and immediate-format ops.
            bool isImmOp = false;
            switch (op) {
              case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
              case Op::SLLI: case Op::SRLI: case Op::SRAI: case Op::SLTI:
                isImmOp = true;
                break;
              default:
                break;
            }
            char cd = writesFpReg(op) ? 'f' : 'x';
            char c1 = readsFpRs1(op) ? 'f' : 'x';
            if (isImmOp) {
                fatal_if(toks.size() != 4, "line %d: %s rd, rs1, imm",
                         ln, head.c_str());
                b.emit(op, reg(toks[1], 'x', ln), reg(toks[2], 'x', ln),
                       0, static_cast<int32_t>(imm(toks[3], ln)));
            } else if (toks.size() == 4) {
                char c2 = readsFpRs2(op) ? 'f' : 'x';
                b.emit(op, reg(toks[1], cd, ln), reg(toks[2], c1, ln),
                       reg(toks[3], c2, ln));
            } else if (toks.size() == 3) {
                b.emit(op, reg(toks[1], cd, ln), reg(toks[2], c1, ln));
            } else {
                fatal("line %d: bad operand count for '%s'", ln,
                      head.c_str());
            }
        }
    }
    return b.build();
}

} // namespace tea::isa
