#include "isa/isa.hh"

#include <cstdio>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tea::isa {

const char *
opName(Op op)
{
    switch (op) {
      case Op::ADD: return "add";
      case Op::SUB: return "sub";
      case Op::AND_: return "and";
      case Op::OR_: return "or";
      case Op::XOR_: return "xor";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SRA: return "sra";
      case Op::SLT: return "slt";
      case Op::SLTU: return "sltu";
      case Op::MUL: return "mul";
      case Op::DIV: return "div";
      case Op::DIVU: return "divu";
      case Op::REM: return "rem";
      case Op::REMU: return "remu";
      case Op::ADDI: return "addi";
      case Op::ANDI: return "andi";
      case Op::ORI: return "ori";
      case Op::XORI: return "xori";
      case Op::SLLI: return "slli";
      case Op::SRLI: return "srli";
      case Op::SRAI: return "srai";
      case Op::SLTI: return "slti";
      case Op::LIW: return "liw";
      case Op::LD: return "ld";
      case Op::LW: return "lw";
      case Op::SD: return "sd";
      case Op::SW: return "sw";
      case Op::FLD: return "fld";
      case Op::FSD: return "fsd";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLT: return "blt";
      case Op::BGE: return "bge";
      case Op::BLTU: return "bltu";
      case Op::BGEU: return "bgeu";
      case Op::JAL: return "jal";
      case Op::JALR: return "jalr";
      case Op::FADD_D: return "fadd.d";
      case Op::FSUB_D: return "fsub.d";
      case Op::FMUL_D: return "fmul.d";
      case Op::FDIV_D: return "fdiv.d";
      case Op::FCVT_D_L: return "fcvt.d.l";
      case Op::FCVT_L_D: return "fcvt.l.d";
      case Op::FADD_S: return "fadd.s";
      case Op::FSUB_S: return "fsub.s";
      case Op::FMUL_S: return "fmul.s";
      case Op::FDIV_S: return "fdiv.s";
      case Op::FCVT_S_W: return "fcvt.s.w";
      case Op::FCVT_W_S: return "fcvt.w.s";
      case Op::FMV: return "fmv";
      case Op::FNEG_D: return "fneg.d";
      case Op::FABS_D: return "fabs.d";
      case Op::FMV_X_D: return "fmv.x.d";
      case Op::FMV_D_X: return "fmv.d.x";
      case Op::FEQ_D: return "feq.d";
      case Op::FLT_D: return "flt.d";
      case Op::FLE_D: return "fle.d";
      case Op::ECALL: return "ecall";
      case Op::HALT: return "halt";
      case Op::NOP: return "nop";
    }
    return "?";
}

bool
isBranch(Op op)
{
    switch (op) {
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
      case Op::BLTU:
      case Op::BGEU:
        return true;
      default:
        return false;
    }
}

bool
isJump(Op op)
{
    return op == Op::JAL || op == Op::JALR;
}

bool
isLoad(Op op)
{
    return op == Op::LD || op == Op::LW || op == Op::FLD;
}

bool
isStore(Op op)
{
    return op == Op::SD || op == Op::SW || op == Op::FSD;
}

bool
isFpArith(Op op)
{
    switch (op) {
      case Op::FADD_D:
      case Op::FSUB_D:
      case Op::FMUL_D:
      case Op::FDIV_D:
      case Op::FCVT_D_L:
      case Op::FCVT_L_D:
      case Op::FADD_S:
      case Op::FSUB_S:
      case Op::FMUL_S:
      case Op::FDIV_S:
      case Op::FCVT_S_W:
      case Op::FCVT_W_S:
        return true;
      default:
        return false;
    }
}

bool
writesIntReg(Op op)
{
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
      case Op::XOR_: case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLT: case Op::SLTU: case Op::MUL: case Op::DIV:
      case Op::DIVU: case Op::REM: case Op::REMU:
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLLI: case Op::SRLI: case Op::SRAI: case Op::SLTI:
      case Op::LIW: case Op::LD: case Op::LW:
      case Op::JAL: case Op::JALR:
      case Op::FCVT_L_D: case Op::FCVT_W_S:
      case Op::FMV_X_D:
      case Op::FEQ_D: case Op::FLT_D: case Op::FLE_D:
        return true;
      default:
        return false;
    }
}

bool
writesFpReg(Op op)
{
    switch (op) {
      case Op::FLD:
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D: case Op::FCVT_D_L:
      case Op::FADD_S: case Op::FSUB_S: case Op::FMUL_S:
      case Op::FDIV_S: case Op::FCVT_S_W:
      case Op::FMV: case Op::FNEG_D: case Op::FABS_D:
      case Op::FMV_D_X:
        return true;
      default:
        return false;
    }
}

bool
readsFpRs1(Op op)
{
    switch (op) {
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D: case Op::FCVT_L_D:
      case Op::FADD_S: case Op::FSUB_S: case Op::FMUL_S:
      case Op::FDIV_S: case Op::FCVT_W_S:
      case Op::FMV: case Op::FNEG_D: case Op::FABS_D:
      case Op::FMV_X_D:
      case Op::FEQ_D: case Op::FLT_D: case Op::FLE_D:
        return true;
      default:
        return false;
    }
}

bool
readsFpRs2(Op op)
{
    switch (op) {
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D:
      case Op::FADD_S: case Op::FSUB_S: case Op::FMUL_S:
      case Op::FDIV_S:
      case Op::FEQ_D: case Op::FLT_D: case Op::FLE_D:
        return true;
      default:
        return false;
    }
}
// Note: store data travels in the rd field (see storeDataIsFp); stores
// are not covered by the readsFpRs2/readsIntRs2 predicates.

bool
readsIntRs1(Op op)
{
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
      case Op::XOR_: case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLT: case Op::SLTU: case Op::MUL: case Op::DIV:
      case Op::DIVU: case Op::REM: case Op::REMU:
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLLI: case Op::SRLI: case Op::SRAI: case Op::SLTI:
      case Op::LD: case Op::LW: case Op::SD: case Op::SW:
      case Op::FLD: case Op::FSD:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BLTU: case Op::BGEU:
      case Op::JALR:
      case Op::FCVT_D_L: case Op::FCVT_S_W:
      case Op::FMV_D_X:
      case Op::ECALL:
        return true;
      default:
        return false;
    }
}

bool
readsIntRs2(Op op)
{
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
      case Op::XOR_: case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLT: case Op::SLTU: case Op::MUL: case Op::DIV:
      case Op::DIVU: case Op::REM: case Op::REMU:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BLTU: case Op::BGEU:
        return true;
      default:
        return false;
    }
}

bool
hasDest(Op op)
{
    return writesIntReg(op) || writesFpReg(op);
}

fpu::FpuOp
fpuOpFor(Op op)
{
    using fpu::FpuOp;
    switch (op) {
      case Op::FADD_D: return FpuOp::AddD;
      case Op::FSUB_D: return FpuOp::SubD;
      case Op::FMUL_D: return FpuOp::MulD;
      case Op::FDIV_D: return FpuOp::DivD;
      case Op::FCVT_D_L: return FpuOp::I2FD;
      case Op::FCVT_L_D: return FpuOp::F2ID;
      case Op::FADD_S: return FpuOp::AddS;
      case Op::FSUB_S: return FpuOp::SubS;
      case Op::FMUL_S: return FpuOp::MulS;
      case Op::FDIV_S: return FpuOp::DivS;
      case Op::FCVT_S_W: return FpuOp::I2FS;
      case Op::FCVT_W_S: return FpuOp::F2IS;
      default:
        panic("fpuOpFor on non-FP op %s", opName(op));
    }
}

Op
isaOpFor(fpu::FpuOp op)
{
    using fpu::FpuOp;
    switch (op) {
      case FpuOp::AddD: return Op::FADD_D;
      case FpuOp::SubD: return Op::FSUB_D;
      case FpuOp::MulD: return Op::FMUL_D;
      case FpuOp::DivD: return Op::FDIV_D;
      case FpuOp::I2FD: return Op::FCVT_D_L;
      case FpuOp::F2ID: return Op::FCVT_L_D;
      case FpuOp::AddS: return Op::FADD_S;
      case FpuOp::SubS: return Op::FSUB_S;
      case FpuOp::MulS: return Op::FMUL_S;
      case FpuOp::DivS: return Op::FDIV_S;
      case FpuOp::I2FS: return Op::FCVT_S_W;
      case FpuOp::F2IS: return Op::FCVT_W_S;
    }
    panic("bad FpuOp");
}

namespace {

enum class Fmt { R, I, B, J, N };

Fmt
fmtOf(Op op)
{
    if (isBranch(op))
        return Fmt::B;
    if (op == Op::JAL || op == Op::LIW)
        return Fmt::J;
    switch (op) {
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLLI: case Op::SRLI: case Op::SRAI: case Op::SLTI:
      case Op::LD: case Op::LW: case Op::SD: case Op::SW:
      case Op::FLD: case Op::FSD: case Op::JALR: case Op::ECALL:
        return Fmt::I;
      case Op::HALT: case Op::NOP:
        return Fmt::N;
      default:
        return Fmt::R;
    }
}

} // namespace

bool
fitsImm14(int64_t v)
{
    return v >= -(1 << 13) && v < (1 << 13);
}

bool
fitsImm19(int64_t v)
{
    return v >= -(1 << 18) && v < (1 << 18);
}

uint32_t
encode(const Instruction &insn)
{
    uint32_t w = static_cast<uint32_t>(insn.op) << 24;
    switch (fmtOf(insn.op)) {
      case Fmt::R:
        w |= static_cast<uint32_t>(insn.rd) << 19;
        w |= static_cast<uint32_t>(insn.rs1) << 14;
        w |= static_cast<uint32_t>(insn.rs2) << 9;
        break;
      case Fmt::I:
        panic_if(!fitsImm14(insn.imm), "imm14 overflow in %s: %d",
                 opName(insn.op), insn.imm);
        w |= static_cast<uint32_t>(insn.rd) << 19;
        w |= static_cast<uint32_t>(insn.rs1) << 14;
        w |= static_cast<uint32_t>(insn.imm) & 0x3fff;
        break;
      case Fmt::B:
        panic_if(!fitsImm14(insn.imm), "imm14 overflow in %s: %d",
                 opName(insn.op), insn.imm);
        w |= static_cast<uint32_t>(insn.rs1) << 19;
        w |= static_cast<uint32_t>(insn.rs2) << 14;
        w |= static_cast<uint32_t>(insn.imm) & 0x3fff;
        break;
      case Fmt::J:
        panic_if(!fitsImm19(insn.imm), "imm19 overflow in %s: %d",
                 opName(insn.op), insn.imm);
        w |= static_cast<uint32_t>(insn.rd) << 19;
        w |= static_cast<uint32_t>(insn.imm) & 0x7ffff;
        break;
      case Fmt::N:
        break;
    }
    return w;
}

std::optional<Instruction>
decode(uint32_t word)
{
    uint32_t opByte = word >> 24;
    if (opByte >= kNumOps)
        return std::nullopt;
    Instruction insn;
    insn.op = static_cast<Op>(opByte);
    switch (fmtOf(insn.op)) {
      case Fmt::R:
        insn.rd = static_cast<uint8_t>(bits(word, 19, 5));
        insn.rs1 = static_cast<uint8_t>(bits(word, 14, 5));
        insn.rs2 = static_cast<uint8_t>(bits(word, 9, 5));
        break;
      case Fmt::I:
        insn.rd = static_cast<uint8_t>(bits(word, 19, 5));
        insn.rs1 = static_cast<uint8_t>(bits(word, 14, 5));
        insn.imm = static_cast<int32_t>(sext(bits(word, 0, 14), 14));
        break;
      case Fmt::B:
        insn.rs1 = static_cast<uint8_t>(bits(word, 19, 5));
        insn.rs2 = static_cast<uint8_t>(bits(word, 14, 5));
        insn.imm = static_cast<int32_t>(sext(bits(word, 0, 14), 14));
        break;
      case Fmt::J:
        insn.rd = static_cast<uint8_t>(bits(word, 19, 5));
        insn.imm = static_cast<int32_t>(sext(bits(word, 0, 19), 19));
        break;
      case Fmt::N:
        break;
    }
    return insn;
}

std::string
disassemble(const Instruction &insn)
{
    char buf[80];
    const char *n = opName(insn.op);
    switch (fmtOf(insn.op)) {
      case Fmt::R: {
        char c1 = writesFpReg(insn.op) ? 'f' : 'x';
        char c2 = readsFpRs1(insn.op) ? 'f' : 'x';
        char c3 = readsFpRs2(insn.op) ? 'f' : 'x';
        std::snprintf(buf, sizeof(buf), "%s %c%d, %c%d, %c%d", n, c1,
                      insn.rd, c2, insn.rs1, c3, insn.rs2);
        break;
      }
      case Fmt::I:
        if (isLoad(insn.op) || isStore(insn.op)) {
            char c = (insn.op == Op::FLD || insn.op == Op::FSD) ? 'f'
                                                                : 'x';
            std::snprintf(buf, sizeof(buf), "%s %c%d, %d(x%d)", n, c,
                          insn.rd, insn.imm, insn.rs1);
        } else {
            std::snprintf(buf, sizeof(buf), "%s x%d, x%d, %d", n,
                          insn.rd, insn.rs1, insn.imm);
        }
        break;
      case Fmt::B:
        std::snprintf(buf, sizeof(buf), "%s x%d, x%d, %d", n, insn.rs1,
                      insn.rs2, insn.imm);
        break;
      case Fmt::J:
        std::snprintf(buf, sizeof(buf), "%s x%d, %d", n, insn.rd,
                      insn.imm);
        break;
      case Fmt::N:
        std::snprintf(buf, sizeof(buf), "%s", n);
        break;
    }
    return buf;
}

} // namespace tea::isa
