/**
 * @file
 * C++ macro-assembler DSL.
 *
 * The seven evaluated workloads are written against this builder: data
 * buffers are declared up front (addresses are assigned eagerly so
 * `la` needs no fixups), labels give structured control flow, and the
 * `li` pseudo-instruction expands to LIW/SLLI/ORI sequences for wide
 * constants. A build() call resolves branch labels and produces a
 * Program.
 */

#ifndef TEA_ISA_ASMBUILDER_HH
#define TEA_ISA_ASMBUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace tea::isa {

class AsmBuilder
{
  public:
    explicit AsmBuilder(std::string name);

    // ---- data section (declare before emitting code that uses it) ----
    uint64_t dataDoubles(const std::string &name,
                         const std::vector<double> &values);
    uint64_t dataI64(const std::string &name,
                     const std::vector<int64_t> &values);
    uint64_t dataI32(const std::string &name,
                     const std::vector<int32_t> &values);
    uint64_t dataBytes(const std::string &name,
                       const std::vector<uint8_t> &bytes);
    /** Zero-initialized buffer. */
    uint64_t dataSpace(const std::string &name, uint64_t bytes);

    // ---- labels ----
    using Label = size_t;
    Label newLabel();
    void bind(Label l);
    /** Convenience: fresh label bound here. */
    Label here();

    // ---- raw emission ----
    void emit(Op op, uint8_t rd = 0, uint8_t rs1 = 0, uint8_t rs2 = 0,
              int32_t imm = 0);
    size_t numInstructions() const { return code_.size(); }

    // ---- integer ----
    void add(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::ADD, rd, rs1, rs2); }
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SUB, rd, rs1, rs2); }
    void and_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::AND_, rd, rs1, rs2); }
    void or_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::OR_, rd, rs1, rs2); }
    void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::XOR_, rd, rs1, rs2); }
    void sll(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SLL, rd, rs1, rs2); }
    void srl(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SRL, rd, rs1, rs2); }
    void sra(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SRA, rd, rs1, rs2); }
    void slt(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SLT, rd, rs1, rs2); }
    void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::SLTU, rd, rs1, rs2); }
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::MUL, rd, rs1, rs2); }
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::DIV, rd, rs1, rs2); }
    void divu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::DIVU, rd, rs1, rs2); }
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::REM, rd, rs1, rs2); }
    void remu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit(Op::REMU, rd, rs1, rs2); }

    void addi(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::ADDI, rd, rs1, 0, imm); }
    void andi(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::ANDI, rd, rs1, 0, imm); }
    void ori(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::ORI, rd, rs1, 0, imm); }
    void xori(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::XORI, rd, rs1, 0, imm); }
    void slli(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::SLLI, rd, rs1, 0, imm); }
    void srli(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::SRLI, rd, rs1, 0, imm); }
    void srai(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::SRAI, rd, rs1, 0, imm); }
    void slti(uint8_t rd, uint8_t rs1, int32_t imm) { emit(Op::SLTI, rd, rs1, 0, imm); }

    /** Load an arbitrary 64-bit constant (expands as needed). */
    void li(uint8_t rd, int64_t value);
    /** Load the address of a previously declared data symbol. */
    void la(uint8_t rd, const std::string &symbol);
    /** Register move. */
    void mv(uint8_t rd, uint8_t rs1) { addi(rd, rs1, 0); }

    // ---- memory ----
    void ld(uint8_t rd, uint8_t base, int32_t off) { emit(Op::LD, rd, base, 0, off); }
    void lw(uint8_t rd, uint8_t base, int32_t off) { emit(Op::LW, rd, base, 0, off); }
    void sd(uint8_t rsData, uint8_t base, int32_t off) { emit(Op::SD, rsData, base, 0, off); }
    void sw(uint8_t rsData, uint8_t base, int32_t off) { emit(Op::SW, rsData, base, 0, off); }
    void fld(uint8_t fd, uint8_t base, int32_t off) { emit(Op::FLD, fd, base, 0, off); }
    void fsd(uint8_t fsData, uint8_t base, int32_t off) { emit(Op::FSD, fsData, base, 0, off); }

    // ---- control flow (label-resolved) ----
    void beq(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BEQ, rs1, rs2, l); }
    void bne(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BNE, rs1, rs2, l); }
    void blt(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BLT, rs1, rs2, l); }
    void bge(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BGE, rs1, rs2, l); }
    void bltu(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BLTU, rs1, rs2, l); }
    void bgeu(uint8_t rs1, uint8_t rs2, Label l) { emitBranch(Op::BGEU, rs1, rs2, l); }
    void jal(uint8_t rd, Label l);
    void j(Label l) { jal(0, l); }
    void jalr(uint8_t rd, uint8_t rs1, int32_t imm = 0) { emit(Op::JALR, rd, rs1, 0, imm); }
    void ret() { jalr(0, 1); }
    /** Call a label, linking through x1 (ra). */
    void call(Label l) { jal(1, l); }

    // ---- floating point ----
    void fadd_d(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FADD_D, fd, fs1, fs2); }
    void fsub_d(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FSUB_D, fd, fs1, fs2); }
    void fmul_d(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FMUL_D, fd, fs1, fs2); }
    void fdiv_d(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FDIV_D, fd, fs1, fs2); }
    void fcvt_d_l(uint8_t fd, uint8_t rs1) { emit(Op::FCVT_D_L, fd, rs1); }
    void fcvt_l_d(uint8_t rd, uint8_t fs1) { emit(Op::FCVT_L_D, rd, fs1); }
    void fadd_s(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FADD_S, fd, fs1, fs2); }
    void fsub_s(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FSUB_S, fd, fs1, fs2); }
    void fmul_s(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FMUL_S, fd, fs1, fs2); }
    void fdiv_s(uint8_t fd, uint8_t fs1, uint8_t fs2) { emit(Op::FDIV_S, fd, fs1, fs2); }
    void fcvt_s_w(uint8_t fd, uint8_t rs1) { emit(Op::FCVT_S_W, fd, rs1); }
    void fcvt_w_s(uint8_t rd, uint8_t fs1) { emit(Op::FCVT_W_S, rd, fs1); }
    void fmv(uint8_t fd, uint8_t fs1) { emit(Op::FMV, fd, fs1); }
    void fneg_d(uint8_t fd, uint8_t fs1) { emit(Op::FNEG_D, fd, fs1); }
    void fabs_d(uint8_t fd, uint8_t fs1) { emit(Op::FABS_D, fd, fs1); }
    void fmv_x_d(uint8_t rd, uint8_t fs1) { emit(Op::FMV_X_D, rd, fs1); }
    void fmv_d_x(uint8_t fd, uint8_t rs1) { emit(Op::FMV_D_X, fd, rs1); }
    void feq_d(uint8_t rd, uint8_t fs1, uint8_t fs2) { emit(Op::FEQ_D, rd, fs1, fs2); }
    void flt_d(uint8_t rd, uint8_t fs1, uint8_t fs2) { emit(Op::FLT_D, rd, fs1, fs2); }
    void fle_d(uint8_t rd, uint8_t fs1, uint8_t fs2) { emit(Op::FLE_D, rd, fs1, fs2); }

    // ---- system ----
    void printInt(uint8_t rs1) { emit(Op::ECALL, 0, rs1, 0, 1); }
    void printFp(uint8_t fs1) { emit(Op::ECALL, 0, fs1, 0, 2); }
    void halt() { emit(Op::HALT); }
    void nop() { emit(Op::NOP); }

    // ---- multi-core ABI (no-ops on the single-core simulators) ----
    /** Start the lowest parked core at the code address in x[rs1]. */
    void spawn(uint8_t rs1) { emit(Op::ECALL, 0, rs1, 0, 3); }
    /** Stall until every spawned core has halted. */
    void join() { emit(Op::ECALL, 0, 0, 0, 4); }
    /** Stall until every running core arrives. */
    void barrier() { emit(Op::ECALL, 0, 0, 0, 5); }
    /** rd = this core's id (0 on the main core). */
    void mcCoreId(uint8_t rd)
    {
        li(rd, static_cast<int64_t>(kMcCtrlCoreId));
        ld(rd, rd, 0);
    }
    /** rd = number of cores in the machine. */
    void mcNumCores(uint8_t rd)
    {
        li(rd, static_cast<int64_t>(kMcCtrlBase));
        ld(rd, rd, static_cast<int32_t>(kMcCtrlNumCores - kMcCtrlBase));
    }
    /** Load the absolute byte address of a code label (for spawn). */
    void laCode(uint8_t rd, Label l);

    /** Resolve labels and produce the program. */
    Program build();

  private:
    void emitBranch(Op op, uint8_t rs1, uint8_t rs2, Label l);
    uint64_t addData(const std::string &name, std::vector<uint8_t> bytes);

    std::string name_;
    std::vector<Instruction> code_;
    struct Fixup
    {
        size_t index;
        Label label;
        /** Patch the absolute code byte address, not a PC offset. */
        bool absolute = false;
    };
    std::vector<Fixup> fixups_;
    std::vector<int64_t> labelPos_; // -1 = unbound
    Program prog_;
    uint64_t dataCursor_ = kDataBase;
    bool built_ = false;
};

} // namespace tea::isa

#endif // TEA_ISA_ASMBUILDER_HH
