#include "isa/asmbuilder.hh"

#include <cstring>

#include "util/logging.hh"

namespace tea::isa {

AsmBuilder::AsmBuilder(std::string name) : name_(std::move(name))
{
    prog_.name = name_;
}

uint64_t
AsmBuilder::addData(const std::string &name, std::vector<uint8_t> bytes)
{
    panic_if(built_, "AsmBuilder already built");
    fatal_if(prog_.symbols.count(name), "duplicate data symbol '%s'",
             name.c_str());
    // Keep everything 8-byte aligned.
    dataCursor_ = (dataCursor_ + 7) & ~7ULL;
    uint64_t addr = dataCursor_;
    prog_.symbols[name] = addr;
    prog_.symbolSizes[name] = bytes.size();
    dataCursor_ += bytes.size();
    prog_.data.push_back(Program::DataSegment{addr, std::move(bytes)});
    return addr;
}

uint64_t
AsmBuilder::dataDoubles(const std::string &name,
                        const std::vector<double> &values)
{
    std::vector<uint8_t> bytes(values.size() * 8);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return addData(name, std::move(bytes));
}

uint64_t
AsmBuilder::dataI64(const std::string &name,
                    const std::vector<int64_t> &values)
{
    std::vector<uint8_t> bytes(values.size() * 8);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return addData(name, std::move(bytes));
}

uint64_t
AsmBuilder::dataI32(const std::string &name,
                    const std::vector<int32_t> &values)
{
    std::vector<uint8_t> bytes(values.size() * 4);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return addData(name, std::move(bytes));
}

uint64_t
AsmBuilder::dataBytes(const std::string &name,
                      const std::vector<uint8_t> &bytes)
{
    return addData(name, bytes);
}

uint64_t
AsmBuilder::dataSpace(const std::string &name, uint64_t bytes)
{
    return addData(name, std::vector<uint8_t>(bytes, 0));
}

AsmBuilder::Label
AsmBuilder::newLabel()
{
    labelPos_.push_back(-1);
    return labelPos_.size() - 1;
}

void
AsmBuilder::bind(Label l)
{
    panic_if(l >= labelPos_.size(), "bad label");
    panic_if(labelPos_[l] >= 0, "label bound twice");
    labelPos_[l] = static_cast<int64_t>(code_.size());
}

AsmBuilder::Label
AsmBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
AsmBuilder::emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm)
{
    panic_if(built_, "AsmBuilder already built");
    code_.push_back(Instruction{op, rd, rs1, rs2, imm});
}

void
AsmBuilder::li(uint8_t rd, int64_t value)
{
    if (fitsImm19(value)) {
        emit(Op::LIW, rd, 0, 0, static_cast<int32_t>(value));
        return;
    }
    if (value < 0) {
        li(rd, ~value);
        xori(rd, rd, -1);
        return;
    }
    // Positive wide constant: 13-bit chunks, MSB first.
    int bitsNeeded = 64 - __builtin_clzll(static_cast<uint64_t>(value));
    int chunks = (bitsNeeded + 12) / 13;
    int top = (chunks - 1) * 13;
    emit(Op::LIW, rd, 0, 0, static_cast<int32_t>(value >> top));
    for (int c = chunks - 2; c >= 0; --c) {
        slli(rd, rd, 13);
        auto chunk = static_cast<int32_t>((value >> (c * 13)) & 0x1fff);
        if (chunk)
            ori(rd, rd, chunk);
    }
}

void
AsmBuilder::la(uint8_t rd, const std::string &symbol)
{
    li(rd, static_cast<int64_t>(prog_.symbol(symbol)));
}

void
AsmBuilder::emitBranch(Op op, uint8_t rs1, uint8_t rs2, Label l)
{
    fixups_.push_back(Fixup{code_.size(), l});
    emit(op, 0, rs1, rs2, 0);
}

void
AsmBuilder::jal(uint8_t rd, Label l)
{
    fixups_.push_back(Fixup{code_.size(), l});
    emit(Op::JAL, rd, 0, 0, 0);
}

void
AsmBuilder::laCode(uint8_t rd, Label l)
{
    fixups_.push_back(Fixup{code_.size(), l, true});
    emit(Op::LIW, rd, 0, 0, 0);
}

Program
AsmBuilder::build()
{
    panic_if(built_, "AsmBuilder already built");
    for (const auto &fx : fixups_) {
        int64_t pos = labelPos_[fx.label];
        fatal_if(pos < 0, "unbound label %zu in '%s'", fx.label,
                 name_.c_str());
        Instruction &insn = code_[fx.index];
        if (fx.absolute) {
            int64_t addr =
                static_cast<int64_t>(kCodeBase) + pos * 4;
            fatal_if(!fitsImm19(addr), "code address %lld overflows LIW",
                     static_cast<long long>(addr));
            insn.imm = static_cast<int32_t>(addr);
            continue;
        }
        int64_t off = pos - static_cast<int64_t>(fx.index);
        if (insn.op == Op::JAL)
            fatal_if(!fitsImm19(off), "jump offset %lld overflows",
                     static_cast<long long>(off));
        else
            fatal_if(!fitsImm14(off), "branch offset %lld overflows",
                     static_cast<long long>(off));
        insn.imm = static_cast<int32_t>(off);
    }
    // Round-trip every instruction through the binary encoding so the
    // DSL cannot produce anything the decoder would reject.
    for (auto &insn : code_) {
        auto decoded = decode(encode(insn));
        panic_if(!decoded, "encode/decode round trip failed");
        insn = *decoded;
    }
    prog_.code = std::move(code_);
    built_ = true;
    return std::move(prog_);
}

} // namespace tea::isa
