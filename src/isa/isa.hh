/**
 * @file
 * TRISC-64: the RISC ISA executed by the simulators.
 *
 * A compact 64-bit load/store ISA (32 x-regs with x0 hardwired to zero,
 * 32 64-bit f-regs) playing the role the ARM ISA plays in the paper's
 * gem5 experiments. Its 12 arithmetic FP instructions correspond 1-to-1
 * to the ops of the characterized FPU (Section IV.B's "1-to-1
 * correspondence" between the gem5 CPU's FP instructions and the
 * OpenRISC FPU), so circuit-level error models transfer directly.
 *
 * Encoding (32-bit):
 *   R-type:  op[31:24] rd[23:19] rs1[18:14] rs2[13:9] 0[8:0]
 *   I-type:  op[31:24] rd[23:19] rs1[18:14] imm14[13:0] (signed)
 *   B-type:  op[31:24] rs1[23:19] rs2[18:14] imm14[13:0] (instr offset)
 *   J-type:  op[31:24] rd[23:19] imm19[18:0] (signed)
 */

#ifndef TEA_ISA_ISA_HH
#define TEA_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

#include "fpu/fpu_types.hh"

namespace tea::isa {

enum class Op : uint8_t
{
    // Integer register-register.
    ADD, SUB, AND_, OR_, XOR_, SLL, SRL, SRA, SLT, SLTU,
    MUL, DIV, DIVU, REM, REMU,
    // Integer immediate (I-type).
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // Load signed 19-bit immediate (J-type layout).
    LIW,
    // Memory (I-type, offset addressing).
    LD, LW, SD, SW, FLD, FSD,
    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, // B-type
    JAL,                            // J-type
    JALR,                           // I-type
    // Floating point, double precision (map to the gate FPU).
    FADD_D, FSUB_D, FMUL_D, FDIV_D,
    FCVT_D_L, // i2f: f[rd] = double(x[rs1])
    FCVT_L_D, // f2i: x[rd] = int64(f[rs1]), RTZ
    // Floating point, single precision (low 32 bits of f-regs).
    FADD_S, FSUB_S, FMUL_S, FDIV_S,
    FCVT_S_W, // i2f32
    FCVT_W_S, // f2i32
    // FP plumbing (short paths; never incur timing errors).
    FMV,     // f[rd] = f[rs1]
    FNEG_D, FABS_D,
    FMV_X_D, // x[rd] = raw bits of f[rs1]
    FMV_D_X, // f[rd] = raw bits of x[rs1]
    FEQ_D, FLT_D, FLE_D, // x[rd] = compare(f[rs1], f[rs2])
    // System.
    ECALL, // imm = function, rs1 = argument register
    HALT,
    NOP,
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::NOP) + 1;

/** ECALL functions. */
enum class Syscall : int
{
    PrintInt = 1, ///< append x[rs1] to the console stream
    PrintFp = 2,  ///< append raw bits of f[rs1] to the console stream
    // Multi-core ABI (executed non-speculatively at commit; no-ops on
    // the single-core functional/OoO simulators).
    Spawn = 3,   ///< start the lowest parked core at code addr x[rs1]
    Join = 4,    ///< stall until every spawned core has halted
    Barrier = 5, ///< stall until all running cores arrive
};

/** A decoded instruction. */
struct Instruction
{
    Op op = Op::NOP;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
};

const char *opName(Op op);

/** Instruction class predicates used by decode/rename and injection. */
bool isBranch(Op op);         ///< conditional branches
bool isJump(Op op);           ///< JAL / JALR
bool isLoad(Op op);
bool isStore(Op op);
bool isFpArith(Op op);        ///< the 12 error-modelled FP instructions
bool writesIntReg(Op op);
bool writesFpReg(Op op);
bool readsFpRs1(Op op);
bool readsFpRs2(Op op);
bool readsIntRs1(Op op);
bool readsIntRs2(Op op);
/** True if the op has any destination register at all. */
bool hasDest(Op op);
/** Stores carry their data register in the rd field; true if it is an
 * f-register (FSD). */
inline bool storeDataIsFp(Op op) { return op == Op::FSD; }

/** The FPU op implementing an FP-arithmetic instruction. */
fpu::FpuOp fpuOpFor(Op op);
/** The ISA op carrying out an FPU op (inverse of fpuOpFor). */
Op isaOpFor(fpu::FpuOp op);

/** Encode to the 32-bit binary format. */
uint32_t encode(const Instruction &insn);
/** Decode; returns nullopt for an illegal opcode byte. */
std::optional<Instruction> decode(uint32_t word);

/** Render one instruction as assembly text. */
std::string disassemble(const Instruction &insn);

/** Immediate range checks used by the encoder and the assembler. */
bool fitsImm14(int64_t v);
bool fitsImm19(int64_t v);

} // namespace tea::isa

#endif // TEA_ISA_ISA_HH
