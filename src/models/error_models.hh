/**
 * @file
 * The three timing-error injection models of Table I.
 *
 *  - DaModel: data-agnostic, a fixed error ratio per voltage level;
 *    every injection flips one uniformly-chosen bit of a random
 *    instruction's destination register (soft-error style).
 *  - IaModel: instruction-aware, per-type statistics characterized by
 *    DTA over random operands.
 *  - WaModel: instruction- and workload-aware (the paper's proposal),
 *    characterized by DTA over the target workload's own operand trace.
 *
 * A model turns a program's golden profile into an InjectionPlan for
 * the microarchitectural injector: which dynamic instructions get
 * corrupted and with which bitmasks.
 */

#ifndef TEA_MODELS_ERROR_MODELS_HH
#define TEA_MODELS_ERROR_MODELS_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/func_sim.hh"
#include "sim/ooo_sim.hh"
#include "timing/dta_campaign.hh"
#include "util/rng.hh"

namespace tea::models {

enum class ModelKind
{
    DA,
    IA,
    WA,
};

const char *modelKindName(ModelKind kind);

/** Golden-run profile of a program (from the functional simulator). */
struct ProgramProfile
{
    uint64_t totalInstructions = 0;
    uint64_t instructionsWithDest = 0;
    std::array<uint64_t, fpu::kNumFpuOps> fpOpCounts{};

    static ProgramProfile fromFuncSim(const sim::FuncSim &sim,
                                      uint64_t totalInstructions);
};

class ErrorModel
{
  public:
    virtual ~ErrorModel() = default;

    virtual ModelKind kind() const = 0;
    virtual std::string describe() const = 0;

    /** Produce the injection events for one evaluation run. */
    virtual std::vector<sim::InjectionEvent>
    plan(const ProgramProfile &profile, Rng &rng) const = 0;

    /**
     * Plan one run under a (possibly reweighted) proposal
     * distribution. `logWeight` receives the natural log of the
     * likelihood ratio target/proposal of the produced plan — the
     * importance-sampling weight campaigns fold into weighted AVM
     * estimation. The base implementation samples from the target
     * itself, so the weight is exactly 1 (log 0.0) and campaigns over
     * plain models are bit-identical to the unweighted path.
     */
    virtual std::vector<sim::InjectionEvent>
    planWeighted(const ProgramProfile &profile, Rng &rng,
                 double &logWeight) const
    {
        logWeight = 0.0;
        return plan(profile, rng);
    }

    /**
     * True when planWeighted() samples from a proposal other than the
     * target measure (i.e. produced weights can differ from 1). Drives
     * the weighted-estimation path in campaigns.
     */
    virtual bool weightedProposal() const { return false; }

    /** Expected number of injected errors for a program (for Fig. 10). */
    virtual double expectedErrors(const ProgramProfile &profile) const = 0;
};

/** Data-agnostic model: fixed ER, uniform single-bit flips. */
class DaModel final : public ErrorModel
{
  public:
    explicit DaModel(double errorRatio);

    ModelKind kind() const override { return ModelKind::DA; }
    std::string describe() const override;
    std::vector<sim::InjectionEvent> plan(const ProgramProfile &profile,
                                          Rng &rng) const override;
    double expectedErrors(const ProgramProfile &profile) const override;

    double errorRatio() const { return errorRatio_; }

  private:
    double errorRatio_;
};

/** Per-type statistics shared by the IA and WA models. */
struct OpModelStats
{
    double faultyProb = 0.0;
    std::array<double, 64> ber{};
    std::vector<uint64_t> maskPool;
};

/** Statistical model base: per-type probabilities + bitmask pools. */
class StatisticalModel : public ErrorModel
{
  public:
    StatisticalModel(ModelKind kind, std::string name,
                     std::array<OpModelStats, fpu::kNumFpuOps> stats);

    ModelKind kind() const override { return kind_; }
    std::string describe() const override { return name_; }
    std::vector<sim::InjectionEvent> plan(const ProgramProfile &profile,
                                          Rng &rng) const override;
    double expectedErrors(const ProgramProfile &profile) const override;

    const OpModelStats &opStats(fpu::FpuOp op) const
    {
        return stats_[static_cast<size_t>(op)];
    }

    /** Full per-type statistics (importance-sampling wrappers copy it). */
    const std::array<OpModelStats, fpu::kNumFpuOps> &allStats() const
    {
        return stats_;
    }

    /** Convert DTA campaign statistics into model statistics. */
    static std::array<OpModelStats, fpu::kNumFpuOps>
    fromCampaign(const timing::CampaignStats &stats);

  private:
    ModelKind kind_;
    std::string name_;
    std::array<OpModelStats, fpu::kNumFpuOps> stats_;
};

class IaModel final : public StatisticalModel
{
  public:
    explicit IaModel(const timing::CampaignStats &stats)
        : StatisticalModel(ModelKind::IA, "IA-model",
                           fromCampaign(stats))
    {
    }
};

class WaModel final : public StatisticalModel
{
  public:
    WaModel(const std::string &workload,
            const timing::CampaignStats &stats)
        : StatisticalModel(ModelKind::WA, "WA-model(" + workload + ")",
                           fromCampaign(stats))
    {
    }
};

// ---------------------------------------------------------------------
// Campaign-statistics caching (model development is expensive; benches
// share characterizations through these files). The file format is
// integrity-checked: a versioned magic line plus a CRC-32 over the
// whole body, so a torn write or bit rot is detected as Corrupt rather
// than silently parsed into wrong statistics.
// ---------------------------------------------------------------------

/** What loadCampaignStats found at the path. */
enum class CacheLoad
{
    Loaded,  ///< Intact file, stats filled in.
    Missing, ///< No file — the quiet cold-cache case.
    Corrupt, ///< File exists but fails magic/CRC/parse checks.
};

/**
 * Save campaign statistics as a CRC-guarded text file. An I/O failure
 * is a warn (the campaign results still stand; only caching is lost),
 * and the function returns false.
 */
bool saveCampaignStats(const std::string &path,
                       const timing::CampaignStats &stats);
/** Load them back, distinguishing a cold cache from a damaged one. */
CacheLoad loadCampaignStats(const std::string &path,
                            timing::CampaignStats &stats);

} // namespace tea::models

#endif // TEA_MODELS_ERROR_MODELS_HH
