#include "models/error_models.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>

#include "util/crc32.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"

namespace tea::models {

using fpu::FpuOp;
using sim::InjectionEvent;

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::DA: return "DA-model";
      case ModelKind::IA: return "IA-model";
      case ModelKind::WA: return "WA-model";
    }
    return "?";
}

ProgramProfile
ProgramProfile::fromFuncSim(const sim::FuncSim &sim,
                            uint64_t totalInstructions)
{
    ProgramProfile p;
    p.totalInstructions = totalInstructions;
    for (unsigned i = 0; i < isa::kNumOps; ++i) {
        auto op = static_cast<isa::Op>(i);
        if (isa::hasDest(op))
            p.instructionsWithDest += sim.opCount(op);
        if (isa::isFpArith(op))
            p.fpOpCounts[static_cast<size_t>(isa::fpuOpFor(op))] +=
                sim.opCount(op);
    }
    return p;
}

// ---------------------------------------------------------------------
// DA model
// ---------------------------------------------------------------------

DaModel::DaModel(double errorRatio) : errorRatio_(errorRatio)
{
    fatal_if(errorRatio < 0.0 || errorRatio > 1.0,
             "DA error ratio %f out of range", errorRatio);
}

std::string
DaModel::describe() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "DA-model(ER=%.2e)", errorRatio_);
    return buf;
}

double
DaModel::expectedErrors(const ProgramProfile &profile) const
{
    return std::ceil(static_cast<double>(profile.totalInstructions) *
                     errorRatio_);
}

std::vector<InjectionEvent>
DaModel::plan(const ProgramProfile &profile, Rng &rng) const
{
    // #errors = ceil(#instructions x fixed ER), each a single uniform
    // bit flip in a random destination register.
    auto k = static_cast<uint64_t>(expectedErrors(profile));
    k = std::min(k, profile.instructionsWithDest);
    std::set<uint64_t> indices;
    while (indices.size() < k)
        indices.insert(rng.nextBounded(profile.instructionsWithDest));
    std::vector<InjectionEvent> events;
    events.reserve(k);
    for (uint64_t idx : indices) {
        InjectionEvent ev{};
        ev.kind = InjectionEvent::Kind::AnyDest;
        ev.index = idx;
        ev.mask = 1ULL << rng.nextBounded(64);
        events.push_back(ev);
    }
    return events;
}

// ---------------------------------------------------------------------
// Statistical models (IA / WA)
// ---------------------------------------------------------------------

StatisticalModel::StatisticalModel(
    ModelKind kind, std::string name,
    std::array<OpModelStats, fpu::kNumFpuOps> stats)
    : kind_(kind), name_(std::move(name)), stats_(std::move(stats))
{
}

std::array<OpModelStats, fpu::kNumFpuOps>
StatisticalModel::fromCampaign(const timing::CampaignStats &stats)
{
    std::array<OpModelStats, fpu::kNumFpuOps> out;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &s = stats.perOp[o];
        OpModelStats &m = out[o];
        m.faultyProb = s.errorRatio();
        for (unsigned b = 0; b < 64; ++b)
            m.ber[b] = s.ber(b);
        m.maskPool = s.maskPool;
    }
    return out;
}

double
StatisticalModel::expectedErrors(const ProgramProfile &profile) const
{
    double e = 0.0;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o)
        e += static_cast<double>(profile.fpOpCounts[o]) *
             stats_[o].faultyProb;
    return e;
}

std::vector<InjectionEvent>
StatisticalModel::plan(const ProgramProfile &profile, Rng &rng) const
{
    std::vector<InjectionEvent> events;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const OpModelStats &m = stats_[o];
        uint64_t n = profile.fpOpCounts[o];
        if (n == 0 || m.faultyProb <= 0.0 || m.maskPool.empty())
            continue;
        uint64_t k = rng.nextBinomial(n, m.faultyProb);
        if (k == 0)
            continue;
        std::set<uint64_t> indices;
        k = std::min(k, n);
        while (indices.size() < k)
            indices.insert(rng.nextBounded(n));
        for (uint64_t idx : indices) {
            InjectionEvent ev{};
            ev.kind = InjectionEvent::Kind::FpOp;
            ev.op = static_cast<FpuOp>(o);
            ev.index = idx;
            ev.mask = m.maskPool[rng.nextBounded(m.maskPool.size())];
            events.push_back(ev);
        }
    }
    return events;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace {

constexpr size_t kMaxStoredMasks = 4096;
// The campaign reservoir shares the cap, so pooled masks always
// round-trip through the cache without loss.
static_assert(kMaxStoredMasks == timing::OpErrorStats::kMaskPoolCap);
// v2 adds the CRC-guarded envelope; v1 files (no CRC) are treated as
// Corrupt if ever encountered, but the cache revision suffix in the
// path keeps them from being opened in the first place.
constexpr const char *kMagic = "tea-campaign-stats-v2";

std::string
renderStatsBody(const timing::CampaignStats &stats)
{
    std::ostringstream out;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &s = stats.perOp[o];
        out << fpu::fpuOpName(static_cast<FpuOp>(o)) << " " << s.total
            << " " << s.faulty << "\n";
        for (unsigned b = 0; b < 64; ++b)
            out << s.bitErrors[b] << (b == 63 ? "\n" : " ");
        size_t nMasks = std::min(s.maskPool.size(), kMaxStoredMasks);
        out << nMasks << "\n";
        for (size_t i = 0; i < nMasks; ++i)
            out << std::hex << s.maskPool[i] << std::dec
                << (i + 1 == nMasks ? "\n" : " ");
        if (nMasks == 0)
            out << "\n";
    }
    return out.str();
}

bool
parseStatsBody(std::istream &in, timing::CampaignStats &stats)
{
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        auto &s = stats.perOp[o];
        std::string name;
        if (!(in >> name >> s.total >> s.faulty))
            return false;
        if (name != fpu::fpuOpName(static_cast<FpuOp>(o)))
            return false;
        for (unsigned b = 0; b < 64; ++b)
            if (!(in >> s.bitErrors[b]))
                return false;
        size_t nMasks;
        if (!(in >> nMasks) || nMasks > kMaxStoredMasks)
            return false;
        s.maskPool.resize(nMasks);
        for (size_t i = 0; i < nMasks; ++i)
            if (!(in >> std::hex >> s.maskPool[i] >> std::dec))
                return false;
        s.sealLoadedPool();
    }
    return true;
}

} // namespace

bool
saveCampaignStats(const std::string &path,
                  const timing::CampaignStats &stats)
{
    std::string body = renderStatsBody(stats);
    char crcLine[48];
    std::snprintf(crcLine, sizeof(crcLine), "crc %08x %zu\n",
                  crc32(body.data(), body.size()), body.size());
    // Staged + renamed: concurrent fleet workers racing to fill the
    // same cold cache can interleave freely — each publishes a
    // complete file or nothing, and last-writer-wins is benign because
    // every writer produces identical (deterministic) statistics.
    if (!atomicWriteFile(path,
                         kMagic + std::string("\n") + crcLine + body)) {
        warn("cannot write campaign stats cache '%s'", path.c_str());
        return false;
    }
    return true;
}

CacheLoad
loadCampaignStats(const std::string &path, timing::CampaignStats &stats)
{
    std::ifstream in(path);
    if (!in)
        return CacheLoad::Missing;
    std::string magic;
    std::getline(in, magic);
    if (magic != kMagic)
        return CacheLoad::Corrupt;
    std::string tag;
    uint32_t storedCrc = 0;
    size_t storedLen = 0;
    if (!(in >> tag >> std::hex >> storedCrc >> std::dec >> storedLen) ||
        tag != "crc")
        return CacheLoad::Corrupt;
    in.ignore(1); // the newline after the crc line
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (body.size() != storedLen ||
        crc32(body.data(), body.size()) != storedCrc)
        return CacheLoad::Corrupt;
    std::istringstream bodyIn(body);
    if (!parseStatsBody(bodyIn, stats))
        return CacheLoad::Corrupt;
    return CacheLoad::Loaded;
}

} // namespace tea::models
