#include "fleet/workunit.hh"

#include <cstdio>
#include <sstream>

#include "util/crc32.hh"

namespace tea::fleet {

std::string
spoolNamespace(const FleetPlan &plan)
{
    std::string bytes = plan.serialize();
    char buf[16];
    std::snprintf(buf, sizeof(buf), "c%08x",
                  crc32(bytes.data(), bytes.size()));
    return buf;
}

std::string
sealBody(const std::string &body)
{
    char line[24];
    std::snprintf(line, sizeof(line), "crc %08x\n",
                  crc32(body.data(), body.size()));
    return body + line;
}

std::optional<std::string>
unsealBody(const std::string &content)
{
    // The seal is the final "crc <8hex>\n" line.
    size_t tail = content.rfind("crc ");
    if (tail == std::string::npos ||
        (tail != 0 && content[tail - 1] != '\n'))
        return std::nullopt;
    uint32_t stored = 0;
    if (std::sscanf(content.c_str() + tail + 4, "%8x", &stored) != 1)
        return std::nullopt;
    std::string body = content.substr(0, tail);
    if (crc32(body.data(), body.size()) != stored)
        return std::nullopt;
    return body;
}

namespace {

/** %.17g — doubles round-trip bit-exactly through the plan file. */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal line scanner: `key` = first word, `value` = rest of line.
 * Unknown keys are ignored so the format can grow.
 */
struct LineScanner
{
    std::istringstream in;
    explicit LineScanner(const std::string &body) : in(body) {}

    bool next(std::string &key, std::string &value)
    {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            size_t sp = line.find(' ');
            key = line.substr(0, sp);
            value = sp == std::string::npos ? "" : line.substr(sp + 1);
            return true;
        }
        return false;
    }
};

uint64_t
toU64(const std::string &v)
{
    return std::strtoull(v.c_str(), nullptr, 10);
}

} // namespace

std::string
WorkUnit::serialize() const
{
    std::ostringstream out;
    out << "tea-fleet-unit-v1\n";
    out << "unit " << id << "\n";
    out << "kind " << (kind == Kind::Cell ? "cell" : "range") << "\n";
    out << "cell " << cell << "\n";
    if (kind == Kind::Range)
        out << "lo " << lo << "\nhi " << hi << "\n";
    return sealBody(out.str());
}

std::optional<WorkUnit>
WorkUnit::parse(const std::string &content)
{
    auto body = unsealBody(content);
    if (!body || body->rfind("tea-fleet-unit-v1\n", 0) != 0)
        return std::nullopt;
    WorkUnit u;
    LineScanner sc(body->substr(body->find('\n') + 1));
    std::string key, value;
    bool sawKind = false;
    while (sc.next(key, value)) {
        if (key == "unit")
            u.id = toU64(value);
        else if (key == "kind") {
            if (value == "cell")
                u.kind = Kind::Cell;
            else if (value == "range")
                u.kind = Kind::Range;
            else
                return std::nullopt;
            sawKind = true;
        } else if (key == "cell")
            u.cell = toU64(value);
        else if (key == "lo")
            u.lo = toU64(value);
        else if (key == "hi")
            u.hi = toU64(value);
    }
    if (!sawKind)
        return std::nullopt;
    return u;
}

std::string
FleetPlan::serialize() const
{
    std::ostringstream out;
    out << "tea-fleet-plan-v1\n";
    out << "seed " << opt.seed << "\n";
    out << "runs " << opt.runsPerCell << "\n";
    out << "scale " << opt.workloadScale << "\n";
    out << "iacount " << opt.iaCountPerOp << "\n";
    out << "wamaxops " << opt.waMaxOps << "\n";
    out << "dasampleops " << opt.daSampleOps << "\n";
    out << "threads " << opt.threads << "\n";
    out << "resume " << (opt.resume ? 1 : 0) << "\n";
    out << "deadlinems " << opt.runDeadlineMs << "\n";
    out << "maxattempts " << opt.maxRunAttempts << "\n";
    out << "citarget " << fmtDouble(opt.ciTarget) << "\n";
    out << "ciconf " << fmtDouble(opt.ciConf) << "\n";
    out << "maxadaptive " << opt.maxAdaptiveRuns << "\n";
    out << "dtabackend " << static_cast<int>(opt.dtaBackend) << "\n";
    out << "isenable " << (opt.isEnable ? 1 : 0) << "\n";
    out << "isboost " << fmtDouble(opt.isBoost) << "\n";
    out << "isfloor " << fmtDouble(opt.isFloor) << "\n";
    out << "ismaxtilt " << fmtDouble(opt.isMaxTilted) << "\n";
    out << "iscorpus " << opt.isCorpusPerOp << "\n";
    out << "mccores " << opt.mcCores << "\n";
    out << "mcquantum " << opt.mcQuantum << "\n";
    out << "cachedir " << opt.cacheDir << "\n";
    out << "leasems " << leaseMs << "\n";
    out << "usecache " << (spec.useCache ? 1 : 0) << "\n";
    out << "vrlevels";
    for (double vr : opt.vrLevels)
        out << " " << fmtDouble(vr);
    out << "\n";
    out << "workloads";
    for (const auto &w : spec.workloads)
        out << " " << w;
    out << "\n";
    return sealBody(out.str());
}

std::optional<FleetPlan>
FleetPlan::parse(const std::string &content)
{
    auto body = unsealBody(content);
    if (!body || body->rfind("tea-fleet-plan-v1\n", 0) != 0)
        return std::nullopt;
    FleetPlan p;
    p.opt.vrLevels.clear();
    LineScanner sc(body->substr(body->find('\n') + 1));
    std::string key, value;
    while (sc.next(key, value)) {
        if (key == "seed")
            p.opt.seed = toU64(value);
        else if (key == "runs")
            p.opt.runsPerCell = static_cast<int>(toU64(value));
        else if (key == "scale")
            p.opt.workloadScale = static_cast<int>(toU64(value));
        else if (key == "iacount")
            p.opt.iaCountPerOp = toU64(value);
        else if (key == "wamaxops")
            p.opt.waMaxOps = toU64(value);
        else if (key == "dasampleops")
            p.opt.daSampleOps = toU64(value);
        else if (key == "threads")
            p.opt.threads = static_cast<unsigned>(toU64(value));
        else if (key == "resume")
            p.opt.resume = value == "1";
        else if (key == "deadlinems")
            p.opt.runDeadlineMs = static_cast<int64_t>(toU64(value));
        else if (key == "maxattempts")
            p.opt.maxRunAttempts = static_cast<int>(toU64(value));
        else if (key == "citarget")
            p.opt.ciTarget = std::strtod(value.c_str(), nullptr);
        else if (key == "ciconf")
            p.opt.ciConf = std::strtod(value.c_str(), nullptr);
        else if (key == "maxadaptive")
            p.opt.maxAdaptiveRuns = toU64(value);
        else if (key == "dtabackend")
            p.opt.dtaBackend =
                static_cast<circuit::DtaBackend>(toU64(value));
        else if (key == "isenable")
            p.opt.isEnable = value == "1";
        else if (key == "isboost")
            p.opt.isBoost = std::strtod(value.c_str(), nullptr);
        else if (key == "isfloor")
            p.opt.isFloor = std::strtod(value.c_str(), nullptr);
        else if (key == "ismaxtilt")
            p.opt.isMaxTilted = std::strtod(value.c_str(), nullptr);
        else if (key == "iscorpus")
            p.opt.isCorpusPerOp = toU64(value);
        else if (key == "mccores")
            p.opt.mcCores = static_cast<unsigned>(toU64(value));
        else if (key == "mcquantum")
            p.opt.mcQuantum = static_cast<unsigned>(toU64(value));
        else if (key == "cachedir")
            p.opt.cacheDir = value;
        else if (key == "leasems")
            p.leaseMs = static_cast<int64_t>(toU64(value));
        else if (key == "usecache")
            p.spec.useCache = value == "1";
        else if (key == "vrlevels") {
            std::istringstream vs(value);
            double vr;
            while (vs >> vr)
                p.opt.vrLevels.push_back(vr);
        } else if (key == "workloads") {
            std::istringstream ws(value);
            std::string w;
            while (ws >> w)
                p.spec.workloads.push_back(w);
        }
    }
    if (p.opt.vrLevels.empty())
        return std::nullopt;
    return p;
}

std::string
UnitResult::serialize() const
{
    std::ostringstream out;
    out << "tea-fleet-done-v1\n";
    out << "unit " << unit << "\n";
    out << "fresh " << fresh << "\n";
    out << "runs " << result.runs << "\n";
    out << "masked " << result.masked << "\n";
    out << "sdc " << result.sdc << "\n";
    out << "crash " << result.crash << "\n";
    out << "timeout " << result.timeout << "\n";
    out << "enginefault " << result.engineFault << "\n";
    out << "retries " << result.retries << "\n";
    out << "injected " << result.injectedErrors << "\n";
    out << "committed " << result.committedInstructions << "\n";
    out << "wrongpath " << result.wrongPathInjections << "\n";
    out << "weighted " << (result.weightedModel ? 1 : 0) << "\n";
    out << "wsum " << fmtDouble(result.weightSum) << "\n";
    out << "wunsafe " << fmtDouble(result.weightUnsafe) << "\n";
    out << "wsqsum " << fmtDouble(result.weightSqSum) << "\n";
    out << "wusqsum " << fmtDouble(result.weightUnsafeSqSum) << "\n";
    out << "mcchm " << result.mcCoherenceMasked << "\n";
    out << "mcscs " << result.mcSdcSameCore << "\n";
    out << "mcccs " << result.mcSdcCrossCore << "\n";
    out << "mcsync " << result.mcSyncCrash << "\n";
    out << "mcdead " << result.mcDeadlock << "\n";
    return sealBody(out.str());
}

std::optional<UnitResult>
UnitResult::parse(const std::string &content)
{
    auto body = unsealBody(content);
    if (!body || body->rfind("tea-fleet-done-v1\n", 0) != 0)
        return std::nullopt;
    UnitResult r;
    LineScanner sc(body->substr(body->find('\n') + 1));
    std::string key, value;
    while (sc.next(key, value)) {
        if (key == "unit")
            r.unit = toU64(value);
        else if (key == "fresh")
            r.fresh = toU64(value);
        else if (key == "runs")
            r.result.runs = toU64(value);
        else if (key == "masked")
            r.result.masked = toU64(value);
        else if (key == "sdc")
            r.result.sdc = toU64(value);
        else if (key == "crash")
            r.result.crash = toU64(value);
        else if (key == "timeout")
            r.result.timeout = toU64(value);
        else if (key == "enginefault")
            r.result.engineFault = toU64(value);
        else if (key == "retries")
            r.result.retries = toU64(value);
        else if (key == "injected")
            r.result.injectedErrors = toU64(value);
        else if (key == "committed")
            r.result.committedInstructions = toU64(value);
        else if (key == "wrongpath")
            r.result.wrongPathInjections = toU64(value);
        else if (key == "weighted")
            r.result.weightedModel = value == "1";
        else if (key == "wsum")
            r.result.weightSum = std::strtod(value.c_str(), nullptr);
        else if (key == "wunsafe")
            r.result.weightUnsafe = std::strtod(value.c_str(), nullptr);
        else if (key == "wsqsum")
            r.result.weightSqSum = std::strtod(value.c_str(), nullptr);
        else if (key == "wusqsum")
            r.result.weightUnsafeSqSum =
                std::strtod(value.c_str(), nullptr);
        else if (key == "mcchm")
            r.result.mcCoherenceMasked = toU64(value);
        else if (key == "mcscs")
            r.result.mcSdcSameCore = toU64(value);
        else if (key == "mcccs")
            r.result.mcSdcCrossCore = toU64(value);
        else if (key == "mcsync")
            r.result.mcSyncCrash = toU64(value);
        else if (key == "mcdead")
            r.result.mcDeadlock = toU64(value);
    }
    return r;
}

} // namespace tea::fleet
