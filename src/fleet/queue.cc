#include "fleet/queue.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/fsatomic.hh"
#include "util/logging.hh"

namespace tea::fleet {

namespace fs = std::filesystem;

namespace {

std::string
unitName(uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "u%06llu",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::string
leaseBody(int64_t pid)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "pid %lld\nbeat %lld\n",
                  static_cast<long long>(pid),
                  static_cast<long long>(wallClockMs()));
    return buf;
}

} // namespace

WorkQueue::WorkQueue(std::string dir) : dir_(std::move(dir)) {}

std::string
WorkQueue::planPath() const
{
    return dir_ + "/plan.tfp";
}

std::string
WorkQueue::unitPath(uint64_t id) const
{
    return dir_ + "/units/" + unitName(id);
}

std::string
WorkQueue::leasePath(uint64_t id) const
{
    return dir_ + "/leases/" + unitName(id);
}

std::string
WorkQueue::donePath(uint64_t id) const
{
    return dir_ + "/done/" + unitName(id);
}

std::string
WorkQueue::triesPath(uint64_t id) const
{
    return dir_ + "/tries/" + unitName(id);
}

std::string
WorkQueue::poisonPath(uint64_t id) const
{
    return dir_ + "/poison/" + unitName(id);
}

std::string
WorkQueue::shardJournalPath(uint64_t id) const
{
    return dir_ + "/shards/" + unitName(id) + ".jnl";
}

bool
WorkQueue::publish(const FleetPlan &plan,
                   const std::vector<WorkUnit> &units)
{
    std::error_code ec;
    for (const char *sub :
         {"", "/units", "/leases", "/done", "/tries", "/poison",
          "/shards"}) {
        fs::create_directories(dir_ + sub, ec);
        if (ec) {
            warn("fleet: cannot create spool '%s%s': %s", dir_.c_str(),
                 sub, ec.message().c_str());
            return false;
        }
    }
    // The spool encodes no plan identity in its path, so it may hold
    // the remains of a *different* campaign (other seed, spec, or
    // options). Those done/tries/poison records describe other work —
    // reusing them would silently splice a previous campaign's results
    // into this grid. The plan file is the identity check: byte-equal
    // means same campaign (resume), anything else means wipe.
    std::string planBytes = plan.serialize();
    auto prevPlan = readFileToString(planPath());
    if (prevPlan && *prevPlan != planBytes) {
        inform("fleet: spool '%s' holds a different campaign's plan; "
               "clearing it",
               dir_.c_str());
        if (!clearState())
            return false;
    }
    if (!atomicWriteFile(planPath(), planBytes))
        return false;
    // Unit ids are dense [0, N): drop files a previous, larger
    // decomposition left beyond this one — workers sweep units/ and
    // would otherwise execute stale definitions.
    for (uint64_t id : listUnits())
        if (id >= units.size() && !dropUnit(id))
            return false;
    for (const WorkUnit &u : units) {
        std::string path = unitPath(u.id);
        std::string bytes = u.serialize();
        if (createExclusive(path, bytes))
            continue;
        auto prev = readFileToString(path);
        if (prev && *prev == bytes)
            continue; // byte-identical re-publish: resume as-is
        // Same plan but different bytes: the decomposition changed
        // (e.g. another REPRO_FLEET_SHARD_RUNS) or the file is torn.
        // Any state recorded against the old definition is void.
        if (!dropUnit(u.id) || !atomicWriteFile(path, bytes))
            return false;
    }
    return true;
}

bool
WorkQueue::clearState()
{
    std::error_code ec;
    for (const char *sub :
         {"/units", "/leases", "/done", "/tries", "/poison",
          "/shards"}) {
        fs::remove_all(dir_ + sub, ec);
        if (ec) {
            warn("fleet: cannot clear spool '%s%s': %s", dir_.c_str(),
                 sub, ec.message().c_str());
            return false;
        }
        fs::create_directories(dir_ + sub, ec);
        if (ec) {
            warn("fleet: cannot recreate spool '%s%s': %s",
                 dir_.c_str(), sub, ec.message().c_str());
            return false;
        }
    }
    return true;
}

bool
WorkQueue::dropUnit(uint64_t id)
{
    return removeFile(unitPath(id)) && removeFile(leasePath(id)) &&
           removeFile(donePath(id)) && removeFile(triesPath(id)) &&
           removeFile(poisonPath(id)) &&
           removeFile(shardJournalPath(id));
}

std::optional<FleetPlan>
WorkQueue::loadPlan() const
{
    auto content = readFileToString(planPath());
    if (!content)
        return std::nullopt;
    return FleetPlan::parse(*content);
}

std::vector<uint64_t>
WorkQueue::listUnits() const
{
    std::vector<uint64_t> ids;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(dir_ + "/units", ec)) {
        std::string name = entry.path().filename().string();
        if (name.size() > 1 && name[0] == 'u')
            ids.push_back(std::strtoull(name.c_str() + 1, nullptr, 10));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::optional<WorkUnit>
WorkQueue::loadUnit(uint64_t id) const
{
    auto content = readFileToString(unitPath(id));
    if (!content)
        return std::nullopt;
    return WorkUnit::parse(*content);
}

bool
WorkQueue::claim(uint64_t id, int64_t pid)
{
    return createExclusive(leasePath(id), leaseBody(pid));
}

bool
WorkQueue::renew(uint64_t id, int64_t pid)
{
    // Atomic rename: the lease file exists continuously through a
    // renewal, so the coordinator never mistakes a renewing worker for
    // a vanished one. Not durable: a heartbeat lost to power failure
    // just re-expires, and fsync at heartbeat rate would throttle
    // every worker.
    return atomicWriteFile(leasePath(id), leaseBody(pid),
                           /*durable=*/false);
}

bool
WorkQueue::release(uint64_t id)
{
    return removeFile(leasePath(id));
}

bool
WorkQueue::releaseIfOwner(uint64_t id, int64_t pid)
{
    auto lease = loadLease(id);
    if (!lease || lease->pid != pid)
        return false;
    // Benign TOCTOU: if the coordinator reissues between the read and
    // the unlink, the successor's next heartbeat recreates its lease
    // and the unit is at worst double-executed — which determinism
    // makes byte-identical.
    return removeFile(leasePath(id));
}

std::optional<Lease>
WorkQueue::loadLease(uint64_t id) const
{
    auto content = readFileToString(leasePath(id));
    if (!content)
        return std::nullopt;
    Lease l;
    long long pid = 0, beat = 0;
    if (std::sscanf(content->c_str(), "pid %lld beat %lld", &pid,
                    &beat) != 2)
        return std::nullopt;
    l.pid = pid;
    l.beat = beat;
    return l;
}

bool
WorkQueue::isDone(uint64_t id) const
{
    std::error_code ec;
    return fs::exists(donePath(id), ec);
}

bool
WorkQueue::isPoisoned(uint64_t id) const
{
    std::error_code ec;
    return fs::exists(poisonPath(id), ec);
}

bool
WorkQueue::markDone(const UnitResult &result)
{
    return atomicWriteFile(donePath(result.unit), result.serialize());
}

std::optional<UnitResult>
WorkQueue::loadDone(uint64_t id) const
{
    auto content = readFileToString(donePath(id));
    if (!content)
        return std::nullopt;
    return UnitResult::parse(*content);
}

int
WorkQueue::tries(uint64_t id) const
{
    auto content = readFileToString(triesPath(id));
    if (!content)
        return 0;
    return static_cast<int>(std::strtol(content->c_str(), nullptr, 10));
}

void
WorkQueue::setTries(uint64_t id, int n)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d\n", n);
    atomicWriteFile(triesPath(id), buf);
}

bool
WorkQueue::poison(uint64_t id)
{
    return createExclusive(poisonPath(id), "poisoned\n");
}

} // namespace tea::fleet
