/**
 * @file
 * `tea-worker <spool-dir>` — one fleet worker process.
 *
 * Spawned (and respawned) by the fleet coordinator; claims work units
 * under expiring leases from the spool directory and exits when no
 * claimable work remains. Safe to run by hand against a live spool
 * for debugging — an extra worker only adds capacity.
 */

#include <cstdio>

#include "fleet/worker.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: tea-worker <spool-dir>\n");
        return 2;
    }
    return tea::fleet::workerMain(argv[1]);
}
