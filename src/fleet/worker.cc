#include "fleet/worker.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "core/journal.hh"
#include "core/results.hh"
#include "fleet/queue.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/watchdog.hh"

namespace tea::fleet {

namespace {

using core::CellPlan;
using inject::InjectionCampaign;

/** Renew the lease at a third of its TTL (floor 25 ms). */
int64_t
heartbeatPeriod(int64_t leaseMs)
{
    return std::max<int64_t>(25, leaseMs / 3);
}

/**
 * Background heartbeat for the one unit this worker is executing.
 * Renewal keeps going even if the coordinator reaped us (we would be
 * the zombie then — renewals recreate the lease, the successor's work
 * is byte-identical, and the done file is still atomic last-wins).
 */
class Heartbeat
{
  public:
    Heartbeat(WorkQueue &q, uint64_t unit, int64_t leaseMs)
        : q_(q), unit_(unit),
          thread_([this, leaseMs] { loop(leaseMs); })
    {
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void loop(int64_t leaseMs)
    {
        obs::Counter renewals = obs::Registry::global().counter(
            obs::metric::kFleetLeaseRenewals, "",
            "lease heartbeat renewals sent by this worker");
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(
            lock, std::chrono::milliseconds(heartbeatPeriod(leaseMs)),
            [this] { return stop_; })) {
            if (q_.renew(unit_, getpid()))
                renewals.inc(1);
        }
    }

    WorkQueue &q_;
    uint64_t unit_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

/** Test-only fault injection (see file header). */
struct TestHooks
{
    int64_t crashAfterRuns = 0; ///< 0 = disabled
    int64_t poisonUnit = -1;    ///< -1 = disabled

    static TestHooks fromEnv()
    {
        TestHooks h;
        if (const char *v = std::getenv("TEA_FLEET_TEST_CRASH_RUNS"))
            h.crashAfterRuns = std::strtoll(v, nullptr, 10);
        if (const char *v = std::getenv("TEA_FLEET_TEST_POISON_UNIT"))
            h.poisonUnit = std::strtoll(v, nullptr, 10);
        return h;
    }
};

struct ExecOutcome
{
    bool complete = false;
    uint64_t fresh = 0;
    inject::CampaignResult result;
};

ExecOutcome
executeCell(core::Toolflow &tf, const WorkUnit &unit,
            const std::vector<CellPlan> &cells,
            const std::string &gridCsv,
            const std::function<void()> &onFreshRun)
{
    ExecOutcome out;
    if (unit.cell >= cells.size())
        return out;
    std::atomic<uint64_t> fresh{0};
    core::CampaignCell cell = core::runGridCell(
        tf, cells[unit.cell], gridCsv,
        [&](uint64_t, const InjectionCampaign::RunRecord &) {
            fresh.fetch_add(1, std::memory_order_relaxed);
            if (onFreshRun)
                onFreshRun();
        });
    out.fresh = fresh.load();
    out.result = cell.result;
    out.complete = !cell.result.interrupted;
    return out;
}

ExecOutcome
executeRange(core::Toolflow &tf, WorkQueue &q, const WorkUnit &unit,
             const std::vector<CellPlan> &cells,
             const std::function<void()> &onFreshRun)
{
    ExecOutcome out;
    if (unit.cell >= cells.size() || unit.hi <= unit.lo)
        return out;
    const CellPlan &plan = cells[unit.cell];
    const auto &opt = tf.options();
    auto model = core::cellModel(tf, plan);
    auto &campaign = tf.campaign(plan.workload);

    core::ShardJournal journal(q.shardJournalPath(unit.id));
    size_t replayed = journal.open(
        core::cellIdentity(opt, plan.workload, *model, plan.vrFrac),
        /*resume=*/true);

    InjectionCampaign::RunOptions ro;
    ro.pool = &tf.pool();
    ro.cancel = &CancelToken::processWide();
    ro.runDeadlineMs = opt.runDeadlineMs;
    ro.maxAttempts = opt.maxRunAttempts;
    ro.replay = [&journal](uint64_t i,
                           InjectionCampaign::RunRecord &rec) {
        return journal.tryReplay(i, rec);
    };
    ro.onComplete = [&](uint64_t i,
                        const InjectionCampaign::RunRecord &rec) {
        journal.append(i, rec);
        if (onFreshRun)
            onFreshRun();
    };
    Rng rng = Rng::fromState(plan.rngState);
    out.fresh = campaign.runRange(*model, unit.lo, unit.hi, rng, ro);
    // A shard journal holds exactly this range's records, so the
    // range is complete when replay + fresh covers it.
    out.complete = replayed + out.fresh == unit.hi - unit.lo;
    return out;
}

} // namespace

int
workerMain(const std::string &spoolDir)
{
    installShutdownHandlers();
    obs::configureFromEnv();
    WorkQueue q(spoolDir);
    auto plan = q.loadPlan();
    if (!plan) {
        warn("fleet worker: unreadable plan in '%s'", spoolDir.c_str());
        return 2;
    }
    const TestHooks hooks = TestHooks::fromEnv();
    const CancelToken &cancel = CancelToken::processWide();

    core::Toolflow tf(plan->opt);
    std::vector<CellPlan> cells =
        core::planEvaluationGrid(plan->opt, plan->spec);
    std::string gridCsv = plan->spec.useCache
                              ? core::gridCachePath(plan->opt)
                              : std::string();

    obs::Registry &reg = obs::Registry::global();
    obs::Counter granted =
        reg.counter(obs::metric::kFleetLeasesGranted, "",
                    "work-unit leases this worker won");
    obs::Counter completed =
        reg.counter(obs::metric::kFleetUnitsCompleted, "",
                    "work units completed by this worker");
    obs::Histogram unitMs =
        reg.histogram(obs::metric::kFleetUnitMs,
                      obs::latencyBucketsMs(), "",
                      "wall time to execute one claimed work unit");

    // Keep sweeping the queue until a pass claims nothing: another
    // worker's in-flight lease is not our business (if it dies, the
    // coordinator reissues and respawns).
    bool claimedAny = true;
    while (claimedAny && !cancel.cancelled()) {
        claimedAny = false;
        for (uint64_t id : q.listUnits()) {
            if (cancel.cancelled())
                break;
            if (q.isDone(id) || q.isPoisoned(id))
                continue;
            if (!q.claim(id, getpid()))
                continue; // leased elsewhere (or just lost the race)
            granted.inc(1);
            claimedAny = true;
            if (q.isDone(id)) { // won a race against a finisher
                q.releaseIfOwner(id, getpid());
                continue;
            }
            if (hooks.poisonUnit >= 0 &&
                static_cast<uint64_t>(hooks.poisonUnit) == id)
                raise(SIGKILL); // test hook: a poison unit
            auto unit = q.loadUnit(id);
            if (!unit) {
                warn("fleet worker: unreadable unit u%06llu",
                     static_cast<unsigned long long>(id));
                q.releaseIfOwner(id, getpid());
                continue;
            }

            // Arm the crash hook only on a unit's first attempt so
            // its reissue completes (the chaos test's "every unit
            // dies once" schedule).
            std::atomic<int64_t> crashBudget{
                hooks.crashAfterRuns > 0 && q.tries(id) == 0
                    ? hooks.crashAfterRuns
                    : -1};
            auto onFreshRun = [&crashBudget] {
                if (crashBudget.load(std::memory_order_relaxed) < 0)
                    return;
                if (crashBudget.fetch_sub(
                        1, std::memory_order_relaxed) == 1)
                    raise(SIGKILL); // test hook: die mid-unit
            };

            int64_t t0 = wallClockMs();
            ExecOutcome out;
            {
                Heartbeat beat(q, id, plan->leaseMs);
                out = unit->kind == WorkUnit::Kind::Cell
                          ? executeCell(tf, *unit, cells, gridCsv,
                                        onFreshRun)
                          : executeRange(tf, q, *unit, cells,
                                         onFreshRun);
            }
            if (out.complete) {
                UnitResult done;
                done.unit = id;
                done.fresh = out.fresh;
                done.result = out.result;
                // The atomic commit point: after this rename the unit
                // is durably finished no matter what kills us next.
                q.markDone(done);
                completed.inc(1);
                unitMs.observe(
                    static_cast<double>(wallClockMs() - t0));
            }
            q.releaseIfOwner(id, getpid());
        }
    }
    obs::flush();
    return 0;
}

} // namespace tea::fleet
