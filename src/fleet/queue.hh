/**
 * @file
 * The file-based work queue (spool directory) behind the fleet.
 *
 * Layout of a spool directory:
 *
 *     plan.tfp          the sealed FleetPlan (atomicWriteFile)
 *     units/u%06llu     one sealed WorkUnit per leasable unit
 *     leases/u%06llu    claim file: O_CREAT|O_EXCL claim, atomic-rename
 *                       heartbeat renewals ("pid <p>\nbeat <ms>\n")
 *     done/u%06llu      sealed UnitResult; the unit's atomic commit
 *                       point — it exists iff the unit completed
 *     tries/u%06llu     failed-attempt count (coordinator-written)
 *     poison/u%06llu    quarantine marker: the unit killed workers
 *                       `tries` times and is excluded from execution
 *     shards/u%06llu.jnl  per-Range-unit shard journal
 *
 * Concurrency story, in one paragraph: exactly one process wins the
 * O_CREAT|O_EXCL lease claim; the coordinator is the *only* process
 * that ever removes or expires leases, so there are no reclaim races;
 * the done file is written atomically and never removed while the
 * campaign runs, so "is this unit finished?" has a stable answer; and
 * because every run's result is a pure function of the plan, a zombie
 * worker (lease expired, process still alive) double-executing a unit
 * writes byte-identical artifacts — harmless by determinism rather
 * than by exclusion.
 */

#ifndef TEA_FLEET_QUEUE_HH
#define TEA_FLEET_QUEUE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fleet/workunit.hh"

namespace tea::fleet {

/** A parsed lease file. */
struct Lease
{
    int64_t pid = 0;
    /** Last heartbeat, wallClockMs(). */
    int64_t beat = 0;
};

class WorkQueue
{
  public:
    explicit WorkQueue(std::string dir);

    const std::string &dir() const { return dir_; }

    // ---- paths ------------------------------------------------------
    std::string planPath() const;
    std::string unitPath(uint64_t id) const;
    std::string leasePath(uint64_t id) const;
    std::string donePath(uint64_t id) const;
    std::string triesPath(uint64_t id) const;
    std::string poisonPath(uint64_t id) const;
    std::string shardJournalPath(uint64_t id) const;

    // ---- coordinator side -------------------------------------------
    /**
     * Create the directory tree and publish plan + units. The plan
     * file doubles as the spool's identity: publishing a byte-equal
     * plan is an idempotent resume that preserves done/tries/poison
     * state, while a differing plan (or a unit whose bytes changed,
     * e.g. another shard size) wipes the stale state first — a spool
     * left by a different campaign must never leak its results into
     * this one.
     */
    bool publish(const FleetPlan &plan,
                 const std::vector<WorkUnit> &units);

    // ---- both sides -------------------------------------------------
    std::optional<FleetPlan> loadPlan() const;
    /** Unit ids present under units/, sorted. */
    std::vector<uint64_t> listUnits() const;
    std::optional<WorkUnit> loadUnit(uint64_t id) const;

    /**
     * Try to claim `id`: exactly one of N racing workers wins. The
     * caller must already have checked done/poison (racing a check is
     * fine — a claim of a finished unit just gets re-verified by the
     * claimer and released).
     */
    bool claim(uint64_t id, int64_t pid);
    /** Refresh the heartbeat timestamp (atomic rename). */
    bool renew(uint64_t id, int64_t pid);
    /** Drop a lease (worker done with it, or coordinator reaping). */
    bool release(uint64_t id);
    /**
     * Drop a lease only while `pid` still owns it — a zombie worker
     * (lease reaped and reissued under it) must not release its
     * successor's lease.
     */
    bool releaseIfOwner(uint64_t id, int64_t pid);
    std::optional<Lease> loadLease(uint64_t id) const;

    bool isDone(uint64_t id) const;
    bool isPoisoned(uint64_t id) const;
    /** Publish a unit's completion record (atomic; last-wins). */
    bool markDone(const UnitResult &result);
    std::optional<UnitResult> loadDone(uint64_t id) const;

    /** Failed-attempt counter (0 when never failed). */
    int tries(uint64_t id) const;
    void setTries(uint64_t id, int n);
    /** Quarantine: exclude the unit from all further claims. */
    bool poison(uint64_t id);

  private:
    /** Wipe all per-unit state (a different campaign owned it). */
    bool clearState();
    /** Remove one unit's file and every record attached to it. */
    bool dropUnit(uint64_t id);

    std::string dir_;
};

} // namespace tea::fleet

#endif // TEA_FLEET_QUEUE_HH
