/**
 * @file
 * The fleet worker: claim → heartbeat → execute → commit, in a loop.
 *
 * A worker is intentionally stateless between units: everything it
 * needs is in the spool directory's plan file, and everything it
 * produces lands in the shared cache dir (cell journals + manifests)
 * or the spool (shard journals + done files). Killing a worker at any
 * instruction loses at most the not-yet-journaled in-flight runs of
 * its current unit; a reissued lease resumes from the journal and
 * produces byte-identical results.
 *
 * Test-only fault hooks (never set outside tests/fleet):
 *  - TEA_FLEET_TEST_CRASH_RUNS=<n>: on a unit that has never failed
 *    (tries == 0), SIGKILL the process after n freshly-executed runs —
 *    the chaos test's way of making every unit die exactly once.
 *  - TEA_FLEET_TEST_POISON_UNIT=<id>: SIGKILL immediately after
 *    claiming unit <id>, every time — drives the poison-quarantine
 *    path.
 */

#ifndef TEA_FLEET_WORKER_HH
#define TEA_FLEET_WORKER_HH

#include <string>

namespace tea::fleet {

/**
 * Run the worker loop against `spoolDir` until no claimable work
 * remains. Returns the process exit code: 0 on a normal drain (or
 * cooperative cancellation), 2 when the spool/plan is unreadable —
 * the coordinator treats 2 as "do not respawn".
 */
int workerMain(const std::string &spoolDir);

} // namespace tea::fleet

#endif // TEA_FLEET_WORKER_HH
