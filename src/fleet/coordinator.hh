/**
 * @file
 * The fleet coordinator: publish, supervise, reap, merge.
 *
 * The coordinator turns an evaluation grid into leasable work units,
 * farms them out to `tea-worker` processes, and reassembles the
 * results so that the N-worker campaign is byte-identical to the
 * single-process `runEvaluationGrid`:
 *
 *  - every cell's randomness is pinned in the shared plan
 *    (planEvaluationGrid), so *where* it executes cannot matter;
 *  - whole-cell units run the same runGridCell code path a local grid
 *    runs, emitting the same journals and manifests;
 *  - run-range shards journal into per-unit shard journals that the
 *    coordinator merges into the canonical cell journal in run-index
 *    order — the byte order a single-threaded cell run would produce —
 *    before replaying them through the normal campaign aggregation;
 *  - the grid CSV is written once, by the coordinator, via the same
 *    saveGrid serializer.
 *
 * Fault handling is lease-based: workers heartbeat their leases, the
 * coordinator (the *only* process that ever revokes a lease) reaps
 * leases whose holder died or went silent, reissues them with capped
 * retry and exponential backoff, and after `maxAttempts` failures
 * quarantines the unit as poison. A poisoned cell degrades to a
 * synthetic all-EngineFault result — visible in the grid, excluded
 * from AVM (fraction(EngineFault) = 1, avm() = NaN) — instead of
 * stalling the campaign. If workers cannot run at all (missing
 * binary, restart budget exhausted), the coordinator falls back to
 * executing the remaining units in-process; determinism makes the
 * fallback indistinguishable in the output.
 */

#ifndef TEA_FLEET_COORDINATOR_HH
#define TEA_FLEET_COORDINATOR_HH

#include <cstdint>
#include <string>

#include "core/results.hh"

namespace tea::fleet {

struct FleetOptions
{
    /** Worker processes; <= 0 runs the grid in-process instead. */
    int workers = 0;
    /** Path to the tea-worker binary ("" disables the fleet). */
    std::string workerBin;
    /** Spool directory ("" = <cacheDir>/fleet). */
    std::string spoolDir;
    /** Lease TTL; a lease this stale is considered abandoned. */
    int64_t leaseMs = 10000;
    /** Worker-kill attempts before a unit is poisoned. */
    int maxAttempts = 3;
    /**
     * Injection runs per Range work unit; 0 = whole-cell units.
     * Ignored (with a warning) in adaptive mode, where stopping is a
     * whole-cell decision.
     */
    uint64_t shardRuns = 0;
    /** Thread count published to workers (0 = inherit the options'). */
    unsigned workerThreads = 0;
    /** First reissue backoff; doubles per failed attempt. */
    int64_t backoffMs = 250;
    /** Supervision poll period. */
    int64_t pollMs = 25;
};

/**
 * Read REPRO_FLEET_WORKERS / REPRO_FLEET_WORKER_BIN / REPRO_FLEET_DIR
 * / REPRO_FLEET_LEASE_MS / REPRO_FLEET_ATTEMPTS /
 * REPRO_FLEET_SHARD_RUNS / REPRO_FLEET_WORKER_THREADS overrides.
 * Malformed values warn and keep the default.
 */
FleetOptions fleetOptionsFromEnv();

/**
 * Run (or load from cache) the evaluation grid for `spec` across a
 * worker fleet. Byte-identical to runEvaluationGrid(tf, spec) for any
 * worker count, including under worker crashes; falls back to
 * in-process execution when `fopt` disables the fleet.
 */
core::EvaluationGrid runFleetGrid(const core::ToolflowOptions &opt,
                                  const FleetOptions &fopt,
                                  const core::GridSpec &spec = {});

} // namespace tea::fleet

#endif // TEA_FLEET_COORDINATOR_HH
