/**
 * @file
 * Fleet work units and the CRC-sealed key=value file format.
 *
 * Everything the coordinator and workers exchange on disk — the
 * campaign plan, the work units, the completion records — is a small
 * text file of `key value` lines sealed by a trailing `crc <8hex>`
 * line over everything before it. A torn or damaged file fails the
 * seal and is treated as absent, which the lease protocol already
 * handles (the unit is simply re-executed; determinism makes
 * re-execution free of side effects).
 *
 * A work unit is either a whole evaluation-grid cell or a contiguous
 * range of injection-run indices within one cell (a shard). Both carry
 * only coordinates — the unit's randomness is reconstructed from the
 * shared campaign plan (planEvaluationGrid), never shipped.
 */

#ifndef TEA_FLEET_WORKUNIT_HH
#define TEA_FLEET_WORKUNIT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/toolflow.hh"

namespace tea::fleet {

/** One leasable unit of campaign work. */
struct WorkUnit
{
    enum class Kind
    {
        /** One whole grid cell (journal + manifest + result). */
        Cell,
        /** Injection runs [lo, hi) of one cell (shard journal only). */
        Range,
    };

    uint64_t id = 0;
    Kind kind = Kind::Cell;
    /** Index into the campaign plan (CellPlan::index). */
    uint64_t cell = 0;
    /** Run range for Kind::Range (ignored for Kind::Cell). */
    uint64_t lo = 0, hi = 0;

    std::string serialize() const;
    static std::optional<WorkUnit> parse(const std::string &content);
};

/**
 * The campaign plan a coordinator publishes and every worker loads:
 * the full ToolflowOptions (so workers reconstruct byte-identical
 * Toolflows, caches, and RNG plans) plus the grid spec.
 */
struct FleetPlan
{
    core::ToolflowOptions opt;
    core::GridSpec spec;
    /** Lease TTL — workers heartbeat at a fraction of this. */
    int64_t leaseMs = 10000;

    std::string serialize() const;
    static std::optional<FleetPlan> parse(const std::string &content);
};

/** Outcome counters a worker publishes for a completed unit. */
struct UnitResult
{
    uint64_t unit = 0;
    /** Fresh (non-replayed) runs this execution performed. */
    uint64_t fresh = 0;
    inject::CampaignResult result;

    std::string serialize() const;
    static std::optional<UnitResult> parse(const std::string &content);
};

/**
 * Stable spool subdirectory name for a plan: "c<8hex>", the CRC-32 of
 * the serialized plan bytes. The daemon namespaces one spool root
 * across concurrent campaigns with it — a byte-identical resubmission
 * lands in the same spool (and resumes, by WorkQueue::publish's
 * plan-identity rule) while distinct campaigns can never collide on
 * unit ids.
 */
std::string spoolNamespace(const FleetPlan &plan);

/** Append the `crc` seal line to a key=value body. */
std::string sealBody(const std::string &body);
/** Verify and strip the seal; nullopt when damaged or missing. */
std::optional<std::string> unsealBody(const std::string &content);

} // namespace tea::fleet

#endif // TEA_FLEET_WORKUNIT_HH
