#include "fleet/coordinator.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/journal.hh"
#include "fleet/queue.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/watchdog.hh"

namespace tea::fleet {

using core::CellPlan;
using core::EvaluationGrid;
using core::GridSpec;
using core::ToolflowOptions;

namespace {

bool
envI64(const char *name, int64_t &out)
{
    const char *v = std::getenv(name);
    if (!v)
        return false;
    char *end = nullptr;
    errno = 0;
    long long parsed = std::strtoll(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0') {
        warn("ignoring malformed %s='%s'", name, v);
        return false;
    }
    out = parsed;
    return true;
}

/** All work units of a campaign, in canonical (plan) order. */
std::vector<WorkUnit>
planUnits(const ToolflowOptions &opt,
          const std::vector<CellPlan> &cells, uint64_t shardRuns)
{
    std::vector<WorkUnit> units;
    if (shardRuns > 0 && opt.adaptive()) {
        warn("fleet: run-range shards are incompatible with adaptive "
             "sizing (stopping is a whole-cell decision); using "
             "whole-cell units");
        shardRuns = 0;
    }
    for (const CellPlan &cell : cells) {
        if (shardRuns == 0) {
            WorkUnit u;
            u.id = units.size();
            u.kind = WorkUnit::Kind::Cell;
            u.cell = cell.index;
            units.push_back(u);
            continue;
        }
        for (uint64_t lo = 0;
             lo < static_cast<uint64_t>(cell.runCap);
             lo += shardRuns) {
            WorkUnit u;
            u.id = units.size();
            u.kind = WorkUnit::Kind::Range;
            u.cell = cell.index;
            u.lo = lo;
            u.hi = std::min<uint64_t>(lo + shardRuns,
                                      static_cast<uint64_t>(cell.runCap));
            units.push_back(u);
        }
    }
    return units;
}

/**
 * The graceful-degradation result for a cell whose units kept killing
 * workers: every run an EngineFault. fraction(EngineFault) = 1,
 * avm() = NaN, and the AVM aggregations established in the EngineFault
 * taxonomy exclude it — the campaign completes around the poison.
 */
core::CampaignCell
poisonedCell(const CellPlan &plan)
{
    core::CampaignCell cell;
    cell.workload = plan.workload;
    cell.model = plan.model;
    cell.vrFrac = plan.vrFrac;
    cell.result.workload = plan.workload;
    cell.result.model = models::modelKindName(plan.model);
    cell.result.runs = static_cast<uint64_t>(plan.runCap);
    cell.result.engineFault = static_cast<uint64_t>(plan.runCap);
    return cell;
}

/** One spawned tea-worker process. */
struct WorkerProc
{
    pid_t pid = -1;
    bool alive = false;
};

class Supervisor
{
  public:
    Supervisor(WorkQueue &q, const FleetOptions &fopt,
               const std::vector<WorkUnit> &units)
        : q_(q), fopt_(fopt), units_(units)
    {
    }

    ~Supervisor() { terminateAll(); }

    /**
     * Supervise until every unit is done or poisoned. Returns false
     * when the campaign must finish in-process: cooperative
     * cancellation, an unrespawnable worker, or an exhausted restart
     * budget.
     */
    bool superviseToCompletion();

    bool cancelled() const { return cancelled_; }

    /** Per-campaign cooperative stop (GridSpec::stopFlag). */
    void setStop(const std::atomic<bool> *stop) { stop_ = stop; }

  private:
    bool allResolved() const
    {
        for (const WorkUnit &u : units_)
            if (!q_.isDone(u.id) && !q_.isPoisoned(u.id))
                return false;
        return true;
    }

    bool spawn()
    {
        pid_t pid = fork();
        if (pid < 0) {
            warn("fleet: fork failed: %s", std::strerror(errno));
            return false;
        }
        if (pid == 0) {
            execl(fopt_.workerBin.c_str(), "tea-worker",
                  q_.dir().c_str(), static_cast<char *>(nullptr));
            // Exec failure: exit 2 tells the coordinator not to burn
            // the restart budget respawning a broken binary.
            _exit(2);
        }
        workers_.push_back({pid, true});
        // The kernel may hand this child a reaped worker's recycled
        // PID; it must not inherit the "instantly stale" verdict.
        deadPids_.erase(pid);
        return true;
    }

    size_t liveWorkers() const
    {
        size_t n = 0;
        for (const WorkerProc &w : workers_)
            n += w.alive;
        return n;
    }

    /** Collect exited children; respawn abnormal deaths. */
    bool reapWorkers();
    /** Expire silent/dead leases; reissue with backoff or poison. */
    void reapLeases();
    void terminateAll();

    WorkQueue &q_;
    const FleetOptions &fopt_;
    const std::vector<WorkUnit> &units_;
    std::vector<WorkerProc> workers_;
    /** Children that exited — their leases are instantly stale. */
    std::set<int64_t> deadPids_;
    /** unit id -> earliest reissue time (exponential backoff). */
    std::map<uint64_t, int64_t> reissueAt_;
    const std::atomic<bool> *stop_ = nullptr;
    int restartBudget_ = 0;
    bool cancelled_ = false;

  public:
    void setRestartBudget(int n) { restartBudget_ = n; }
    bool spawnInitial(int n)
    {
        for (int i = 0; i < n; ++i)
            if (!spawn())
                return false;
        return true;
    }
};

bool
Supervisor::reapWorkers()
{
    obs::Counter restarts = obs::Registry::global().counter(
        obs::metric::kFleetWorkerRestarts, "",
        "crashed or hung fleet workers restarted");
    // spawn() push_backs into workers_, so respawns are deferred
    // until after the scan — growing the vector mid-loop would
    // invalidate the references being iterated.
    int respawns = 0;
    for (size_t i = 0, n = workers_.size(); i < n; ++i) {
        WorkerProc &w = workers_[i];
        if (!w.alive)
            continue;
        int status = 0;
        pid_t r = waitpid(w.pid, &status, WNOHANG);
        if (r != w.pid)
            continue;
        w.alive = false;
        deadPids_.insert(w.pid);
        bool normal = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
            // The worker could not even read the spool/plan (or exec
            // failed): respawning would loop forever.
            warn("fleet: worker %d unusable (exit 2); finishing "
                 "in-process",
                 static_cast<int>(w.pid));
            return false;
        }
        if (normal || allResolved())
            continue;
        if (restartBudget_-- <= 0) {
            warn("fleet: worker restart budget exhausted; finishing "
                 "in-process");
            return false;
        }
        inform("fleet: worker %d died (%s); restarting",
               static_cast<int>(w.pid),
               WIFSIGNALED(status) ? "signal" : "nonzero exit");
        restarts.inc(1);
        ++respawns;
    }
    while (respawns-- > 0)
        if (!spawn())
            return false;
    return true;
}

void
Supervisor::reapLeases()
{
    obs::Registry &reg = obs::Registry::global();
    obs::Counter expired =
        reg.counter(obs::metric::kFleetLeasesExpired, "",
                    "leases whose holder died or stopped heartbeating");
    obs::Counter reissued =
        reg.counter(obs::metric::kFleetLeasesReissued, "",
                    "expired leases released for re-execution");
    obs::Counter poisoned =
        reg.counter(obs::metric::kFleetUnitsPoisoned, "",
                    "work units quarantined after repeated failures");
    int64_t now = wallClockMs();
    for (const WorkUnit &u : units_) {
        if (q_.isDone(u.id) || q_.isPoisoned(u.id)) {
            reissueAt_.erase(u.id);
            continue;
        }
        auto lease = q_.loadLease(u.id);
        if (!lease) {
            reissueAt_.erase(u.id);
            continue;
        }
        bool stale = deadPids_.count(lease->pid) ||
                     now - lease->beat > fopt_.leaseMs;
        auto pending = reissueAt_.find(u.id);
        if (!stale) {
            // A fresh heartbeat rescinds any scheduled reissue — the
            // holder was slow, not dead.
            if (pending != reissueAt_.end())
                reissueAt_.erase(pending);
            continue;
        }
        if (pending == reissueAt_.end()) {
            int tries = q_.tries(u.id) + 1;
            q_.setTries(u.id, tries);
            expired.inc(1);
            if (tries >= fopt_.maxAttempts) {
                q_.poison(u.id);
                q_.release(u.id);
                poisoned.inc(1);
                warn("fleet: unit u%06llu poisoned after %d failed "
                     "attempt(s); its cell degrades to EngineFault",
                     static_cast<unsigned long long>(u.id), tries);
                continue;
            }
            // Exponential backoff: the lease file itself blocks
            // re-claims until the coordinator releases it below.
            int shift = std::min(tries - 1, 16);
            reissueAt_[u.id] = now + (fopt_.backoffMs << shift);
            // A hung-but-alive holder would keep renewing and rescind
            // this; a dead child cannot. Kill hung children so they
            // stop burning a process slot.
            for (WorkerProc &w : workers_)
                if (w.alive && w.pid == lease->pid &&
                    !deadPids_.count(lease->pid))
                    kill(w.pid, SIGKILL);
        } else if (now >= pending->second) {
            reissueAt_.erase(pending);
            q_.release(u.id);
            reissued.inc(1);
            if (liveWorkers() == 0 && restartBudget_-- > 0)
                spawn();
        }
    }
}

void
Supervisor::terminateAll()
{
    for (WorkerProc &w : workers_) {
        if (!w.alive)
            continue;
        kill(w.pid, SIGTERM);
    }
    for (WorkerProc &w : workers_) {
        if (!w.alive)
            continue;
        // Workers poll the cancel token between runs; give them a
        // moment to flush journals, then force the issue.
        int status = 0;
        for (int i = 0; i < 200; ++i) {
            if (waitpid(w.pid, &status, WNOHANG) == w.pid) {
                w.alive = false;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (w.alive) {
            kill(w.pid, SIGKILL);
            waitpid(w.pid, &status, 0);
            w.alive = false;
        }
    }
}

bool
Supervisor::superviseToCompletion()
{
    const CancelToken &cancel = CancelToken::processWide();
    while (true) {
        if (cancel.cancelled() ||
            (stop_ && stop_->load(std::memory_order_relaxed))) {
            cancelled_ = true;
            terminateAll();
            return false;
        }
        if (allResolved()) {
            terminateAll();
            return true;
        }
        if (!reapWorkers()) {
            cancelled_ = cancel.cancelled();
            terminateAll();
            return false;
        }
        reapLeases();
        if (liveWorkers() == 0 && reissueAt_.empty() &&
            !allResolved()) {
            // Workers drained while leases still pend on nothing —
            // e.g. every remaining unit is poisoned-adjacent debris.
            // Respawn one if the budget allows, else fall back.
            if (restartBudget_-- > 0) {
                if (!spawn())
                    return false;
            } else {
                return false;
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fopt_.pollMs));
    }
}

/**
 * Merge a sharded cell's journals into the canonical cell journal in
 * run-index order — the exact byte order a single-threaded cell run
 * appends in — and leave it ready for replay.
 */
bool
mergeShardJournals(core::Toolflow &tf, const CellPlan &plan,
                   WorkQueue &q, const std::vector<WorkUnit> &units)
{
    const ToolflowOptions &opt = tf.options();
    auto model = core::cellModel(tf, plan);
    std::string identity = core::cellIdentity(opt, plan.workload,
                                              *model, plan.vrFrac);
    std::map<uint64_t, core::ShardJournal::RunRecord> merged;
    for (const WorkUnit &u : units) {
        if (u.kind != WorkUnit::Kind::Range || u.cell != plan.index)
            continue;
        core::ShardJournal shard(q.shardJournalPath(u.id));
        shard.open(identity, /*resume=*/true);
        for (const auto &[idx, rec] : shard.records())
            merged.emplace(idx, rec);
    }
    core::ShardJournal canonical(core::cellJournalPath(
        opt, plan.workload, plan.model, plan.vrFrac));
    canonical.open(identity, /*resume=*/false);
    for (const auto &[idx, rec] : merged)
        canonical.append(idx, rec);
    return true;
}

} // namespace

FleetOptions
fleetOptionsFromEnv()
{
    FleetOptions fopt;
    int64_t v;
    if (envI64("REPRO_FLEET_WORKERS", v))
        fopt.workers = static_cast<int>(std::clamp<int64_t>(v, 0, 256));
    if (const char *bin = std::getenv("REPRO_FLEET_WORKER_BIN"))
        fopt.workerBin = bin;
    if (const char *dir = std::getenv("REPRO_FLEET_DIR"))
        fopt.spoolDir = dir;
    if (envI64("REPRO_FLEET_LEASE_MS", v))
        fopt.leaseMs = std::clamp<int64_t>(v, 100, 3600000);
    if (envI64("REPRO_FLEET_ATTEMPTS", v))
        fopt.maxAttempts =
            static_cast<int>(std::clamp<int64_t>(v, 1, 100));
    if (envI64("REPRO_FLEET_SHARD_RUNS", v))
        fopt.shardRuns =
            static_cast<uint64_t>(std::clamp<int64_t>(v, 0, 1000000));
    if (envI64("REPRO_FLEET_WORKER_THREADS", v))
        fopt.workerThreads =
            static_cast<unsigned>(std::clamp<int64_t>(v, 0, 1024));
    return fopt;
}

EvaluationGrid
runFleetGrid(const ToolflowOptions &opt, const FleetOptions &fopt,
             const GridSpec &spec)
{
    std::string cachePath;
    if (spec.useCache && !opt.cacheDir.empty()) {
        cachePath = core::gridCachePath(opt);
        if (auto grid = core::loadGrid(cachePath)) {
            inform("loaded cached evaluation grid %s",
                   cachePath.c_str());
            return *grid;
        }
    }
    if (fopt.workers <= 0 || fopt.workerBin.empty()) {
        core::Toolflow tf(opt);
        return core::runEvaluationGrid(tf, spec);
    }

    obs::Span fleetSpan("fleet.grid", "fleet");
    std::vector<CellPlan> cells = core::planEvaluationGrid(opt, spec);
    std::vector<WorkUnit> units =
        planUnits(opt, cells, fopt.shardRuns);

    FleetPlan plan;
    plan.opt = opt;
    // Workers always resume: a reissued unit must pick up its
    // predecessor's journal instead of discarding it.
    plan.opt.resume = true;
    if (fopt.workerThreads > 0)
        plan.opt.threads = fopt.workerThreads;
    plan.spec = spec;
    plan.leaseMs = fopt.leaseMs;

    std::string spool = !fopt.spoolDir.empty() ? fopt.spoolDir
                        : !opt.cacheDir.empty()
                            ? opt.cacheDir + "/fleet"
                            : std::string("tea_fleet");
    WorkQueue q(spool);
    bool published = q.publish(plan, units);
    if (!published)
        warn("fleet: cannot publish spool '%s'; running in-process",
             spool.c_str());

    Supervisor sup(q, fopt, units);
    sup.setStop(spec.stopFlag);
    bool farmed = false;
    if (published) {
        int nWorkers = std::min<int>(
            fopt.workers, static_cast<int>(units.size()));
        sup.setRestartBudget(fopt.maxAttempts *
                                 static_cast<int>(units.size()) +
                             nWorkers + 8);
        inform("fleet: %zu unit(s) across %d worker(s), spool %s",
               units.size(), nWorkers, spool.c_str());
        sup.spawnInitial(nWorkers);
        farmed = sup.superviseToCompletion();
    }

    // Merge phase. A coordinator Toolflow (resume on, local threads)
    // replays sharded cells and executes whatever the fleet could not
    // finish — by determinism the in-process remainder is
    // byte-identical to what a worker would have produced.
    ToolflowOptions mergeOpt = opt;
    mergeOpt.resume = true;
    std::unique_ptr<core::Toolflow> mergeTf;
    auto tf = [&]() -> core::Toolflow & {
        if (!mergeTf)
            mergeTf = std::make_unique<core::Toolflow>(mergeOpt);
        return *mergeTf;
    };

    EvaluationGrid grid;
    std::vector<std::string> journalPaths, shardPaths;
    for (const CellPlan &cp : cells) {
        if (spec.stopFlag &&
            spec.stopFlag->load(std::memory_order_relaxed)) {
            grid.interrupted = true;
            break;
        }
        bool poisonedUnit = false, sharded = false;
        bool allUnitsDone = true;
        std::optional<UnitResult> cellDone;
        for (const WorkUnit &u : units) {
            if (u.cell != cp.index)
                continue;
            sharded = u.kind == WorkUnit::Kind::Range;
            if (q.isPoisoned(u.id))
                poisonedUnit = true;
            else if (!q.isDone(u.id))
                allUnitsDone = false;
            else if (!sharded)
                cellDone = q.loadDone(u.id);
            if (sharded)
                shardPaths.push_back(q.shardJournalPath(u.id));
        }
        if (sup.cancelled() && !allUnitsDone && !poisonedUnit) {
            // Cancelled with this cell incomplete: stop here with the
            // completed prefix, exactly like the in-process grid.
            grid.interrupted = true;
            break;
        }
        if (poisonedUnit) {
            grid.cells.push_back(poisonedCell(cp));
            if (spec.onCell)
                spec.onCell(grid.cells.back());
            continue;
        }
        core::CampaignCell cell;
        if (!sharded && cellDone && allUnitsDone) {
            // A worker ran the whole cell (journal + manifest
            // already on disk); only the counters travel back.
            cell.workload = cp.workload;
            cell.model = cp.model;
            cell.vrFrac = cp.vrFrac;
            cell.result = cellDone->result;
            cell.result.workload = cp.workload;
            cell.result.model = models::modelKindName(cp.model);
        } else {
            // Sharded cell, or one the fleet never finished: merge
            // whatever shard records exist (sharded case), then let
            // the canonical cell path replay them and execute any
            // gaps in-process.
            if (sharded)
                mergeShardJournals(tf(), cp, q, units);
            cell = core::runGridCell(tf(), cp, cachePath);
            if (cell.result.interrupted) {
                grid.interrupted = true;
                break;
            }
        }
        if (!opt.cacheDir.empty())
            journalPaths.push_back(core::cellJournalPath(
                opt, cp.workload, cp.model, cp.vrFrac));
        grid.cells.push_back(std::move(cell));
        if (spec.onCell)
            spec.onCell(grid.cells.back());
    }
    (void)farmed;
    if (grid.interrupted) {
        inform("fleet grid interrupted with %zu cell(s) complete; "
               "rerun with REPRO_RESUME=1 to pick up where it stopped",
               grid.cells.size());
        return grid;
    }
    if (!cachePath.empty())
        core::saveGrid(cachePath, grid);
    // Grid durable: journals (canonical and shard) have served their
    // purpose. Poisoned cells never made journals worth keeping here;
    // their spool debris stays for post-mortem.
    for (const auto &p : journalPaths)
        core::ShardJournal(p).remove();
    for (const auto &p : shardPaths)
        core::ShardJournal(p).remove();
    return grid;
}

} // namespace tea::fleet
