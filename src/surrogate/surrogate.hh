/**
 * @file
 * The learned timing-error surrogate (importance-sampling brain).
 *
 * An ErrorSurrogate is a logistic model over operand features
 * (surrogate/features.hh) trained on a gate-level DTA corpus: random
 * operands streamed through the real FPU at every studied VR level,
 * labeled by whether the instruction actually suffered a timing error.
 * Campaigns then score candidate injection sites cheaply — a dot
 * product instead of a gate-level simulation — and concentrate
 * injection runs on high-risk sites (surrogate/importance.hh), with
 * likelihood-ratio reweighting keeping the AVM estimate unbiased.
 *
 * Training is deterministic (fixed corpus RNG substreams, sequential
 * gradient descent), so a surrogate is a pure function of
 * (FPU, VR levels, seed, corpus size) — which is exactly the identity
 * its on-disk cache is keyed by.
 */

#ifndef TEA_SURROGATE_SURROGATE_HH
#define TEA_SURROGATE_SURROGATE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fpu/fpu_core.hh"
#include "surrogate/logistic.hh"

namespace tea::surrogate {

/** Corpus-building parameters. */
struct CorpusConfig
{
    uint64_t seed = 1;
    /** DTA ops per (instruction type, VR level). */
    uint64_t opsPerOpPerVr = 1500;
};

class ErrorSurrogate
{
  public:
    /**
     * Build the corpus and fit the model. `vrPoints` pairs each VR
     * fraction with its FpuCore operating-point index. Every
     * (VR, op) stream gets its own RNG substream and a reset pipeline,
     * so the corpus is independent of training order and of whatever
     * ran on the point before. Even-indexed ops train, odd-indexed
     * ops are held out for the calibration AUC.
     */
    void train(fpu::FpuCore &core,
               const std::vector<std::pair<double, size_t>> &vrPoints,
               const CorpusConfig &cfg);

    /** Predicted P(timing error) for one site. */
    double score(fpu::FpuOp op, uint64_t a, uint64_t b,
                 double vrFrac) const
    {
        return model_.predict(featurize(op, a, b, vrFrac));
    }

    bool trained() const { return trained_; }
    /** Held-out ranking quality (0.5 = uninformative). */
    double heldOutAuc() const { return auc_; }
    /** Gate-level DTA ops spent building the corpus. */
    uint64_t corpusOps() const { return corpusOps_; }
    const LogisticModel &model() const { return model_; }

    /**
     * CRC-guarded cache round-trip. `identity` must describe
     * everything the surrogate is a function of (seed, corpus size,
     * VR levels); load() rejects files written under a different
     * identity, a damaged body, or a format bump.
     */
    bool save(const std::string &path,
              const std::string &identity) const;
    bool load(const std::string &path, const std::string &identity);

  private:
    LogisticModel model_;
    double auc_ = 0.5;
    uint64_t corpusOps_ = 0;
    bool trained_ = false;
};

} // namespace tea::surrogate

#endif // TEA_SURROGATE_SURROGATE_HH
