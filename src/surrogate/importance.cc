#include "surrogate/importance.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tea::surrogate {

using fpu::FpuOp;
using sim::InjectionEvent;

namespace {

std::string
composeName(const models::StatisticalModel &base, double boost,
            double floorFrac, size_t traceOps)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "+is(b=%g,f=%g,n=%llu)", boost,
                  floorFrac,
                  static_cast<unsigned long long>(traceOps));
    return base.describe() + buf;
}

} // namespace

ImportanceModel::ImportanceModel(
    const models::StatisticalModel &base,
    const ErrorSurrogate &surrogate,
    const std::vector<sim::FpTraceEntry> &trace, double vrFrac,
    double boost, double floorFrac, double maxTilted)
    : StatisticalModel(base.kind(),
                       composeName(base, boost, floorFrac,
                                   trace.size()),
                       base.allStats())
{
    boost = std::clamp(boost, 1.0, 64.0);
    floorFrac = std::clamp(floorFrac, 1e-3, 1.0);
    maxTilted = std::clamp(maxTilted, 0.1, 1e18);

    // Pass 1: surrogate risk per site, grouped by op in trace order
    // (site i of op o = the i-th dynamic instance of o).
    std::array<std::vector<double>, fpu::kNumFpuOps> risk;
    for (const auto &t : trace)
        risk[static_cast<size_t>(t.op)].push_back(
            surrogate.score(t.op, t.a, t.b, vrFrac));

    // Pass 2: proposal q_i = clamp(p * boost * s_i / mean(s),
    // floor * p, 1/2) with a *tempered* risk s_i = sqrt(r_i). The
    // square root halves the log-spread of the tilt: a raw
    // risk-proportional proposal trusts the surrogate's ranking
    // absolutely, and every mis-ranked site it over-boosts becomes a
    // low-weight event that inflates the self-normalized variance —
    // measured on the convergence bench, tempering beats both the
    // raw (gamma = 1) and the uniform (gamma = 0) tilt. Sites the
    // model never injects (p <= 0) and already-frequent errors
    // (p >= 1/2) keep q = p: the likelihood ratio is then exactly 1
    // there, term by term.
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const auto &r = risk[o];
        if (r.empty())
            continue;
        double p = opStats(static_cast<FpuOp>(o)).faultyProb;
        SiteTable &tab = sites_[o];
        tab.q.resize(r.size());
        tab.dLog.resize(r.size());
        // Rare-regime guard: the tilted expectation sum(q) ~= b*n*p
        // must stay under maxTilted. An op already expecting that
        // many injections per run is left exactly on the target
        // measure (b = 1 => q = p => every log term 0.0); in the
        // transition band the boost shrinks proportionally.
        double expected = p * static_cast<double>(r.size());
        double b = boost;
        if (expected > 0.0)
            b = std::min(boost, maxTilted / expected);
        bool tilt = p > 0.0 && p < 0.5 && b > 1.0;
        double meanRisk = 0.0;
        if (tilt) {
            for (double ri : r)
                meanRisk += std::sqrt(ri);
            meanRisk /= static_cast<double>(r.size());
        }
        for (size_t i = 0; i < r.size(); ++i) {
            double q = p;
            if (tilt && meanRisk > 0.0)
                q = std::clamp(p * b * std::sqrt(r[i]) / meanRisk,
                               floorFrac * p, 0.5);
            tab.q[i] = q;
            if (q == p) {
                // log(1) is exactly 0.0: an untilted site leaves the
                // weight bit-identical to 1.
                tab.dLog[i] = 0.0;
            } else {
                double miss = std::log((1.0 - p) / (1.0 - q));
                tab.dLog[i] = std::log(p / q) - miss;
                tab.cLog += miss;
            }
        }
    }
}

std::vector<InjectionEvent>
ImportanceModel::planWeighted(const models::ProgramProfile &profile,
                              Rng &rng, double &logWeight) const
{
    // The tilt only applies when the trace covers every dynamic site
    // the profile can inject into; otherwise sample the target
    // measure itself (weight exactly 1).
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        uint64_t n = profile.fpOpCounts[o];
        const auto &m = opStats(static_cast<FpuOp>(o));
        if (n == 0 || m.faultyProb <= 0.0 || m.maskPool.empty())
            continue;
        if (sites_[o].q.size() != n) {
            logWeight = 0.0;
            return StatisticalModel::plan(profile, rng);
        }
    }

    logWeight = 0.0;
    std::vector<InjectionEvent> events;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        uint64_t n = profile.fpOpCounts[o];
        const auto &m = opStats(static_cast<FpuOp>(o));
        if (n == 0 || m.faultyProb <= 0.0 || m.maskPool.empty())
            continue;
        const SiteTable &tab = sites_[o];
        logWeight += tab.cLog;
        for (uint64_t i = 0; i < n; ++i) {
            if (!rng.nextBool(tab.q[i]))
                continue;
            InjectionEvent ev{};
            ev.kind = InjectionEvent::Kind::FpOp;
            ev.op = static_cast<FpuOp>(o);
            ev.index = i;
            // Mask drawn immediately after the site decision so the
            // stream layout is a pure function of the decisions.
            ev.mask = m.maskPool[rng.nextBounded(m.maskPool.size())];
            events.push_back(ev);
            logWeight += tab.dLog[i];
        }
    }
    return events;
}

} // namespace tea::surrogate
