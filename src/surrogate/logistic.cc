#include "surrogate/logistic.hh"

#include <algorithm>
#include <cmath>

namespace tea::surrogate {

namespace {

double
sigmoid(double z)
{
    // Split by sign so the exp() argument is always <= 0: no overflow,
    // and the symmetric formulation keeps predict() in (0, 1).
    if (z >= 0.0)
        return 1.0 / (1.0 + std::exp(-z));
    double e = std::exp(z);
    return e / (1.0 + e);
}

} // namespace

void
LogisticModel::train(const std::vector<Sample> &samples,
                     const TrainConfig &cfg)
{
    w_ = FeatureVec{};
    if (samples.empty())
        return;
    const double invN = 1.0 / static_cast<double>(samples.size());
    FeatureVec grad;
    for (unsigned it = 0; it < cfg.iterations; ++it) {
        grad = FeatureVec{};
        for (const Sample &s : samples) {
            double z = 0.0;
            for (unsigned j = 0; j < kNumFeatures; ++j)
                z += w_[j] * s.x[j];
            double err = sigmoid(z) - (s.label ? 1.0 : 0.0);
            for (unsigned j = 0; j < kNumFeatures; ++j)
                grad[j] += err * s.x[j];
        }
        for (unsigned j = 0; j < kNumFeatures; ++j) {
            double g = grad[j] * invN;
            if (j != 0) // never decay the bias
                g += cfg.l2 * w_[j];
            w_[j] -= cfg.learningRate * g;
        }
    }
}

double
LogisticModel::predict(const FeatureVec &x) const
{
    double z = 0.0;
    for (unsigned j = 0; j < kNumFeatures; ++j)
        z += w_[j] * x[j];
    return sigmoid(z);
}

double
modelAuc(const LogisticModel &model,
         const std::vector<Sample> &samples)
{
    struct Scored
    {
        double score;
        bool label;
    };
    std::vector<Scored> scored;
    scored.reserve(samples.size());
    size_t pos = 0;
    for (const Sample &s : samples) {
        scored.push_back({model.predict(s.x), s.label});
        if (s.label)
            ++pos;
    }
    size_t neg = scored.size() - pos;
    if (pos == 0 || neg == 0)
        return 0.5;
    // stable_sort keeps equal scores in input order; equal-score runs
    // then share their mean rank, so the result does not depend on the
    // sort's tie-breaking at all.
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored &a, const Scored &b) {
                         return a.score < b.score;
                     });
    double posRankSum = 0.0;
    size_t i = 0;
    while (i < scored.size()) {
        size_t j = i;
        while (j < scored.size() && scored[j].score == scored[i].score)
            ++j;
        // Ranks are 1-based; run [i, j) spans ranks i+1 .. j.
        double meanRank = (static_cast<double>(i + 1) +
                           static_cast<double>(j)) / 2.0;
        for (size_t k = i; k < j; ++k)
            if (scored[k].label)
                posRankSum += meanRank;
        i = j;
    }
    double u = posRankSum - static_cast<double>(pos) *
                                (static_cast<double>(pos) + 1.0) / 2.0;
    return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

} // namespace tea::surrogate
