#include "surrogate/surrogate.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "timing/dta_campaign.hh"
#include "util/crc32.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace tea::surrogate {

namespace {

// v1: weights + AUC as exact bit patterns. Any format change bumps
// this and old caches are regenerated (they fail the magic check).
constexpr const char *kSurrogateMagic = "tea-surrogate-v1";

/** Corpus RNG domain: distinct from every campaign/characterization
 *  salt so surrogate corpora never share a stream with them. */
constexpr uint64_t kCorpusSalt = 0x5a6b7c8d9eULL;

std::string
hexBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

bool
parseBits(const std::string &tok, double &v)
{
    unsigned long long bits;
    if (std::sscanf(tok.c_str(), "%llx", &bits) != 1)
        return false;
    uint64_t b = bits;
    std::memcpy(&v, &b, sizeof(v));
    return true;
}

} // namespace

void
ErrorSurrogate::train(
    fpu::FpuCore &core,
    const std::vector<std::pair<double, size_t>> &vrPoints,
    const CorpusConfig &cfg)
{
    std::vector<Sample> trainSet, heldOut;
    trainSet.reserve(vrPoints.size() * fpu::kNumFpuOps *
                     cfg.opsPerOpPerVr / 2 + 1);
    heldOut.reserve(trainSet.capacity());
    corpusOps_ = 0;
    Rng base(cfg.seed ^ kCorpusSalt);
    for (size_t vrIdx = 0; vrIdx < vrPoints.size(); ++vrIdx) {
        double vrFrac = vrPoints[vrIdx].first;
        size_t point = vrPoints[vrIdx].second;
        Rng vrRng = base.fork(vrIdx);
        for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
            auto op = static_cast<fpu::FpuOp>(o);
            Rng rng = vrRng.fork(o);
            // Fresh pipeline per (VR, op) stream: the corpus is then a
            // pure function of (seed, vrIdx, op), not of build order.
            core.reset(point);
            for (uint64_t i = 0; i < cfg.opsPerOpPerVr; ++i) {
                uint64_t a, b;
                timing::randomOperands(op, rng, a, b);
                auto exec = core.execute(point, op, a, b);
                Sample s{featurize(op, a, b, vrFrac),
                         exec.timingError};
                (i % 2 == 0 ? trainSet : heldOut).push_back(s);
                ++corpusOps_;
            }
        }
    }
    model_.train(trainSet);
    auc_ = modelAuc(model_, heldOut);
    trained_ = true;
}

bool
ErrorSurrogate::save(const std::string &path,
                     const std::string &identity) const
{
    std::ostringstream body;
    body << kSurrogateMagic << " c";
    {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%08x",
                      crc32(identity.data(), identity.size()));
        body << buf;
    }
    body << " " << identity << "\n";
    body << "w";
    for (double w : model_.weights())
        body << " " << hexBits(w);
    body << "\n";
    body << "a " << hexBits(auc_) << " o " << corpusOps_ << "\n";
    std::string s = body.str();
    char crcLine[16];
    std::snprintf(crcLine, sizeof(crcLine), "c%08x\n",
                  crc32(s.data(), s.size()));
    if (!atomicWriteFile(path, s + crcLine)) {
        warn("cannot write surrogate cache '%s'", path.c_str());
        return false;
    }
    return true;
}

bool
ErrorSurrogate::load(const std::string &path,
                     const std::string &identity)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    // Split the trailing "c<crc>\n" line off and verify the body.
    size_t tail = content.rfind("\nc");
    if (tail == std::string::npos || content.size() - tail != 11 ||
        content.back() != '\n')
        return false;
    uint32_t storedCrc = 0;
    if (std::sscanf(content.c_str() + tail + 2, "%8x", &storedCrc) != 1)
        return false;
    if (crc32(content.data(), tail + 1) != storedCrc)
        return false;
    std::istringstream body(content.substr(0, tail + 1));
    std::string magic, crcTok, storedIdentity;
    body >> magic >> crcTok;
    std::getline(body, storedIdentity);
    if (magic != kSurrogateMagic)
        return false;
    if (!storedIdentity.empty() && storedIdentity.front() == ' ')
        storedIdentity.erase(0, 1);
    if (storedIdentity != identity)
        return false;
    std::string tag;
    body >> tag;
    if (tag != "w")
        return false;
    FeatureVec w{};
    for (unsigned j = 0; j < kNumFeatures; ++j) {
        std::string tok;
        if (!(body >> tok) || !parseBits(tok, w[j]))
            return false;
    }
    std::string aTag, aTok, oTag;
    uint64_t ops = 0;
    if (!(body >> aTag >> aTok >> oTag >> ops) || aTag != "a" ||
        oTag != "o")
        return false;
    double auc;
    if (!parseBits(aTok, auc))
        return false;
    model_.setWeights(w);
    auc_ = auc;
    corpusOps_ = ops;
    trained_ = true;
    return true;
}

} // namespace tea::surrogate
