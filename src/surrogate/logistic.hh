/**
 * @file
 * Dependency-free logistic regression for the timing-error surrogate.
 *
 * Deliberately tiny: full-batch gradient descent with L2 weight decay,
 * a fixed iteration count, and no floating-point reductions whose
 * order depends on thread count — training the same corpus always
 * produces bit-identical weights, which keeps importance-sampled
 * campaigns reproducible end to end.
 */

#ifndef TEA_SURROGATE_LOGISTIC_HH
#define TEA_SURROGATE_LOGISTIC_HH

#include <cstdint>
#include <vector>

#include "surrogate/features.hh"

namespace tea::surrogate {

/** One labeled training example. */
struct Sample
{
    FeatureVec x;
    bool label = false; ///< true = timing error observed
};

struct TrainConfig
{
    unsigned iterations = 200;
    double learningRate = 0.5;
    double l2 = 1e-4;
};

class LogisticModel
{
  public:
    /**
     * Fit by full-batch gradient descent from zero weights. Sample
     * order matters only through the (sequential, deterministic)
     * gradient accumulation — same corpus, same weights, always.
     */
    void train(const std::vector<Sample> &samples,
               const TrainConfig &cfg = {});

    /** P(timing error | x) in (0, 1). */
    double predict(const FeatureVec &x) const;

    const FeatureVec &weights() const { return w_; }
    void setWeights(const FeatureVec &w) { w_ = w; }

  private:
    FeatureVec w_{};
};

/**
 * Rank-based AUC of `model` over `samples` with deterministic tie
 * handling (ties share the mean rank). Returns 0.5 when either class
 * is empty — no ranking information either way.
 */
double modelAuc(const LogisticModel &model,
                const std::vector<Sample> &samples);

} // namespace tea::surrogate

#endif // TEA_SURROGATE_LOGISTIC_HH
