/**
 * @file
 * Operand feature extraction for the timing-error surrogate.
 *
 * Timing errors at reduced voltage are strongly operand-dependent:
 * the paper's WA model exists precisely because an instruction's real
 * operands decide which circuit paths toggle (alignment shifts from
 * exponent deltas, carry chains from mantissa bit patterns, overflow
 * handling near the exponent rails). The surrogate turns one
 * (op, a, b, VR level) site into a small dense feature vector that a
 * logistic model can score — every feature a pure, branch-stable
 * function of its inputs, scaled into roughly [0, 1] so one fixed
 * learning rate trains all of them.
 */

#ifndef TEA_SURROGATE_FEATURES_HH
#define TEA_SURROGATE_FEATURES_HH

#include <array>
#include <cstdint>

#include "fpu/fpu_types.hh"

namespace tea::surrogate {

/** Dimension of the feature vector (bias term included). */
constexpr unsigned kNumFeatures = 22;

using FeatureVec = std::array<double, kNumFeatures>;

/**
 * Featurize one candidate injection site. `vrFrac` is the
 * voltage-reduction fraction of the operating point (0.15 for VR15).
 * Integer-operand conversions are decoded as two's-complement values
 * (bit length in place of the exponent); `b` is ignored for
 * single-operand ops, exactly as the FPU ignores it.
 */
FeatureVec featurize(fpu::FpuOp op, uint64_t a, uint64_t b,
                     double vrFrac);

/** Feature names, index-aligned with featurize() (reports/tests). */
const char *featureName(unsigned index);

} // namespace tea::surrogate

#endif // TEA_SURROGATE_FEATURES_HH
