/**
 * @file
 * Importance-sampled injection proposal built on the error surrogate.
 *
 * Wraps a characterized IA/WA model: instead of sampling injection
 * sites uniformly at the per-type error ratio p, each dynamic site i
 * draws Bernoulli(q_i) where q_i tilts p by the surrogate's risk score
 * for that site's actual operands. Every plan carries the exact log
 * likelihood ratio log(target/proposal); campaigns fold it into the
 * self-normalized weighted AVM estimator, so the tilt changes only the
 * variance, never the estimand.
 *
 * The target measure is the wrapped model's own plan distribution —
 * k ~ Binomial(n, p) followed by k uniform distinct sites, which is
 * exactly the iid per-site Bernoulli(p) product measure — so per-site
 * Bernoulli(q_i) with the product-form likelihood ratio is an unbiased
 * proposal for it.
 */

#ifndef TEA_SURROGATE_IMPORTANCE_HH
#define TEA_SURROGATE_IMPORTANCE_HH

#include <array>
#include <vector>

#include "models/error_models.hh"
#include "surrogate/surrogate.hh"

namespace tea::surrogate {

/** Default risk tilt: a top-scored site is boosted ~this factor. */
constexpr double kDefaultBoost = 4.0;
/** Default floor on q_i as a fraction of p (bounds the weights). */
constexpr double kDefaultFloor = 0.25;
/**
 * Default cap on an op's *tilted* expected injection count (sum of
 * q_i). Importance sampling pays off when injections are rare — most
 * target-measure runs inject nothing and learn nothing. When an op
 * already expects more injections per run than this cap, tilting its
 * thousands of sites only piles variance onto the likelihood weights
 * (the Kish ESS collapses), so the proposal keeps q_i = p there: the
 * weight contribution is exactly 1 term by term and the campaign
 * behaves like plain Monte Carlo. In between, the boost is scaled
 * down so sum(q_i) never exceeds the cap.
 */
constexpr double kDefaultMaxTilted = 2.0;

class ImportanceModel final : public models::StatisticalModel
{
  public:
    /**
     * `trace` is the workload's dynamic FP operand stream in program
     * order (Toolflow::trace); site i of op o is the i-th instance of
     * o in it. `boost` scales a mean-risk site's proposal to p (risk
     * above the mean raises q, below lowers it); `floorFrac` clamps
     * q_i >= floorFrac * p so no site's weight can exceed 1/floorFrac.
     * When the trace does not cover a profile's op counts,
     * planWeighted() falls back to the wrapped model's plan with
     * weight exactly 1 — still unbiased, just untilted.
     * `maxTilted` caps each op's tilted expected injection count
     * (see kDefaultMaxTilted): ops already saturated with injections
     * keep q_i = p exactly, so enabling IS can never make a
     * fast-converging cell slower than plain Monte Carlo.
     */
    ImportanceModel(const models::StatisticalModel &base,
                    const ErrorSurrogate &surrogate,
                    const std::vector<sim::FpTraceEntry> &trace,
                    double vrFrac, double boost = kDefaultBoost,
                    double floorFrac = kDefaultFloor,
                    double maxTilted = kDefaultMaxTilted);

    std::vector<sim::InjectionEvent>
    planWeighted(const models::ProgramProfile &profile, Rng &rng,
                 double &logWeight) const override;

    std::vector<sim::InjectionEvent>
    plan(const models::ProgramProfile &profile,
         Rng &rng) const override
    {
        double lw;
        return planWeighted(profile, rng, lw);
    }

    bool weightedProposal() const override { return true; }

    /** Proposal probabilities for one op type (tests). */
    const std::vector<double> &proposal(fpu::FpuOp op) const
    {
        return sites_[static_cast<size_t>(op)].q;
    }

  private:
    struct SiteTable
    {
        std::vector<double> q;    ///< per-site proposal probability
        /** Weight delta an *injected* site adds on top of cLog:
         *  log(p/q_i) - log((1-p)/(1-q_i)). */
        std::vector<double> dLog;
        /** Sum over all sites of log((1-p)/(1-q_i)) — the weight of
         *  the nothing-injected plan. */
        double cLog = 0.0;
    };

    std::array<SiteTable, fpu::kNumFpuOps> sites_;
};

} // namespace tea::surrogate

#endif // TEA_SURROGATE_IMPORTANCE_HH
