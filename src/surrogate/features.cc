#include "surrogate/features.hh"

#include <cmath>

namespace tea::surrogate {

using fpu::FpuOp;

namespace {

/** Scaled bit-level description of one operand. */
struct OperandView
{
    double sign = 0.0;    ///< sign bit
    double exponent = 0.0;///< biased exponent / max (or bit length / 64)
    double mantLz = 0.0;  ///< mantissa leading zeros / width
    double mantTz = 0.0;  ///< mantissa trailing zeros / width
    double mantPop = 0.0; ///< mantissa popcount / width
    double special = 0.0; ///< zero / denormal / integer-zero flag
};

unsigned
clz64(uint64_t v, unsigned width)
{
    if (v == 0)
        return width;
    unsigned lead = static_cast<unsigned>(__builtin_clzll(v));
    // v occupies the low `width` bits; discount the empty high part.
    return lead - (64 - width);
}

unsigned
ctz64(uint64_t v, unsigned width)
{
    if (v == 0)
        return width;
    unsigned t = static_cast<unsigned>(__builtin_ctzll(v));
    return t < width ? t : width;
}

OperandView
viewFloat(uint64_t bits, bool isDouble)
{
    const unsigned expBits = isDouble ? 11 : 8;
    const unsigned manBits = isDouble ? 52 : 23;
    const uint64_t manMask = (1ULL << manBits) - 1;
    uint64_t exp = (bits >> manBits) & ((1ULL << expBits) - 1);
    uint64_t man = bits & manMask;
    OperandView v;
    v.sign = (bits >> (expBits + manBits)) & 1 ? 1.0 : 0.0;
    v.exponent = static_cast<double>(exp) /
                 static_cast<double>((1ULL << expBits) - 1);
    v.mantLz = static_cast<double>(clz64(man, manBits)) /
               static_cast<double>(manBits);
    v.mantTz = static_cast<double>(ctz64(man, manBits)) /
               static_cast<double>(manBits);
    v.mantPop = static_cast<double>(__builtin_popcountll(man)) /
                static_cast<double>(manBits);
    v.special = exp == 0 ? 1.0 : 0.0; // zero or denormal
    return v;
}

OperandView
viewInt(uint64_t bits, unsigned width)
{
    // Two's-complement integer: magnitude bit length stands in for the
    // exponent, the magnitude bits for the mantissa.
    uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
    uint64_t v = bits & mask;
    bool neg = (v >> (width - 1)) & 1;
    uint64_t mag = neg ? (~v + 1) & mask : v;
    OperandView out;
    out.sign = neg ? 1.0 : 0.0;
    out.exponent =
        static_cast<double>(width - clz64(mag, width)) /
        static_cast<double>(width);
    out.mantLz = static_cast<double>(clz64(mag, width)) /
                 static_cast<double>(width);
    out.mantTz = static_cast<double>(ctz64(mag, width)) /
                 static_cast<double>(width);
    out.mantPop = static_cast<double>(__builtin_popcountll(mag)) /
                  static_cast<double>(width);
    out.special = mag == 0 ? 1.0 : 0.0;
    return out;
}

/** Unit-class index: 0 add/sub, 1 mul, 2 div, 3 convert. */
unsigned
opClass(FpuOp op)
{
    switch (op) {
      case FpuOp::AddD: case FpuOp::SubD:
      case FpuOp::AddS: case FpuOp::SubS: return 0;
      case FpuOp::MulD: case FpuOp::MulS: return 1;
      case FpuOp::DivD: case FpuOp::DivS: return 2;
      case FpuOp::I2FD: case FpuOp::F2ID:
      case FpuOp::I2FS: case FpuOp::F2IS: return 3;
    }
    return 3;
}

bool
isSingleOperand(FpuOp op)
{
    return opClass(op) == 3;
}

constexpr const char *kFeatureNames[kNumFeatures] = {
    "bias",       "vr",          "is_double",  "class_addsub",
    "class_mul",  "class_div",   "class_cvt",  "sign_a",
    "sign_b",     "sign_differs","exp_a",      "exp_b",
    "exp_delta",  "mant_lz_a",   "mant_lz_b",  "mant_tz_a",
    "mant_tz_b",  "mant_pop_a",  "mant_pop_b", "special_a",
    "special_b",  "exp_high_a",
};

} // namespace

const char *
featureName(unsigned index)
{
    return index < kNumFeatures ? kFeatureNames[index] : "?";
}

FeatureVec
featurize(FpuOp op, uint64_t a, uint64_t b, double vrFrac)
{
    bool isDouble = fpu::isDoubleOp(op);
    OperandView va, vb;
    switch (op) {
      case FpuOp::I2FD: va = viewInt(a, 64); break;
      case FpuOp::I2FS: va = viewInt(a, 32); break;
      default:          va = viewFloat(a, isDouble); break;
    }
    if (isSingleOperand(op))
        vb = OperandView{}; // the FPU ignores b; so does the model
    else
        vb = viewFloat(b, isDouble);

    unsigned cls = opClass(op);
    FeatureVec x{};
    x[0] = 1.0; // bias
    x[1] = vrFrac;
    x[2] = isDouble ? 1.0 : 0.0;
    x[3] = cls == 0 ? 1.0 : 0.0;
    x[4] = cls == 1 ? 1.0 : 0.0;
    x[5] = cls == 2 ? 1.0 : 0.0;
    x[6] = cls == 3 ? 1.0 : 0.0;
    x[7] = va.sign;
    x[8] = vb.sign;
    x[9] = va.sign != vb.sign ? 1.0 : 0.0;
    x[10] = va.exponent;
    x[11] = vb.exponent;
    // Alignment-shift magnitude: the add/sub path's datapath activity
    // is governed by |exp(a) - exp(b)|.
    x[12] = std::fabs(va.exponent - vb.exponent);
    x[13] = va.mantLz;
    x[14] = vb.mantLz;
    x[15] = va.mantTz;
    x[16] = vb.mantTz;
    x[17] = va.mantPop;
    x[18] = vb.mantPop;
    x[19] = va.special;
    x[20] = vb.special;
    x[21] = va.exponent > 0.9 ? 1.0 : 0.0; // near the overflow rail
    return x;
}

} // namespace tea::surrogate
