/**
 * @file
 * Binomial confidence intervals for campaign statistics.
 *
 * Every headline quantity of the reproduction — the DTA error ratio
 * (Eq. 2), per-bit BERs, and the Application Vulnerability Metric
 * (Eq. 4) — is a binomial proportion estimated from N Bernoulli
 * trials. These helpers turn (events, trials) pairs into intervals so
 * campaigns can report "AVM = 3.1% ± 0.9%" instead of a bare point
 * estimate, and so the adaptive planner can stop sampling once the
 * interval is tight enough.
 *
 * Three estimators, picked for the three jobs they do here:
 *  - **Wilson score**: well-centred at every p and cheap — the default
 *    for reporting and for the sequential stopping rule.
 *  - **Clopper-Pearson**: exact (conservative) coverage — used where a
 *    guarantee matters, i.e. the "is this voltage level safe" bound.
 *  - **Rule of three**: the zero-event upper bound 1-alpha^(1/n)
 *    (~3/n at 95%) — an observed AVM of 0 over n runs is *not* a
 *    proven zero, and this is exactly how unsafe it still might be.
 *
 * Everything is a pure function of its arguments (no RNG, no global
 * state), so interval-driven control flow stays bit-deterministic.
 */

#ifndef TEA_STATS_INTERVALS_HH
#define TEA_STATS_INTERVALS_HH

#include <cstdint>

namespace tea::stats {

/** A two-sided confidence interval on a proportion, in [0, 1]. */
struct Interval
{
    double lo = 0.0;
    double hi = 1.0;

    double halfWidth() const { return (hi - lo) / 2.0; }
    double center() const { return (hi + lo) / 2.0; }
    bool contains(double p) const { return p >= lo && p <= hi; }
};

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * |relative error| < 1.2e-9 over (0, 1)). Asserts p in (0, 1).
 */
double normalQuantile(double p);

/**
 * Wilson score interval for k events in n trials at two-sided
 * confidence `conf` (e.g. 0.95). n == 0 yields the vacuous [0, 1].
 */
Interval wilson(uint64_t k, uint64_t n, double conf);

/**
 * Wilson score interval over *real-valued* effective counts — the
 * weighted-sample generalisation used by importance-sampled campaigns,
 * where (k, n) are the effective event count and effective sample size
 * (ESS) of a self-normalized estimator. With integral k and n this is
 * bit-identical to wilson(): the integer overload delegates here.
 * n <= 0 yields the vacuous [0, 1]; k is clamped into [0, n].
 */
Interval wilsonReal(double k, double n, double conf);

/**
 * Clopper-Pearson "exact" interval: inverts the binomial CDF via the
 * regularized incomplete beta function, guaranteeing >= conf coverage
 * at every p (at the price of being conservative). n == 0 -> [0, 1].
 */
Interval clopperPearson(uint64_t k, uint64_t n, double conf);

/**
 * Clopper-Pearson interval over real-valued effective counts (the
 * beta-quantile form is already continuous in k and n). Bit-identical
 * to clopperPearson() at integral arguments — the integer overload
 * delegates here. n <= 0 -> [0, 1]; k is clamped into [0, n].
 */
Interval clopperPearsonReal(double k, double n, double conf);

/**
 * Interval on the self-normalized importance-sampling estimate of a
 * Bernoulli proportion, from the four weight sums a weighted campaign
 * accumulates: sum w over event trials, sum w, sum w^2, and sum w^2
 * over event trials. The delta-method variance of the SNIS ratio is
 * Var = sum w^2 (f - mu)^2 / (sum w)^2 — computable from the sums as
 * (wEventsSq (1 - 2 mu) + mu^2 wSq) / wSum^2 — and the interval is the
 * Wilson score at the *variance-matched* effective sample size
 * n_eff = mu (1 - mu) / Var (with k_eff = mu n_eff). Unlike the Kish
 * ESS, which charges the estimator for all weight dispersion, this
 * credits a proposal that concentrates events in low-weight trials:
 * exactly the regime where importance sampling beats plain Monte
 * Carlo. Degenerate inputs (no events, no weight mass, vanishing
 * variance, Kish ESS below ~10 — where the plug-in variance estimate
 * is itself untrustworthy) fall back to the Wilson interval at the
 * Kish effective counts, which is conservative — a zero-event stratum
 * keeps its rule-of-three guard semantics.
 */
Interval selfNormalizedWilson(double wEvents, double wSum, double wSq,
                              double wEventsSq, double conf);

/**
 * Upper confidence bound on p after observing ZERO events in n trials:
 * the exact value 1 - (1-conf)^(1/n) that the "rule of three" (3/n at
 * 95%) approximates. Returns 1.0 for n == 0.
 */
double ruleOfThreeUpper(uint64_t n, double conf = 0.95);

/**
 * Rule-of-three bound over a real-valued effective sample size (ESS of
 * a weighted zero-event stratum). Bit-identical to ruleOfThreeUpper()
 * at integral n, which delegates here. Returns 1.0 for n <= 0.
 */
double ruleOfThreeUpperReal(double n, double conf = 0.95);

/**
 * One-sided upper bound used for safety decisions: the exact
 * rule-of-three bound when k == 0, the Clopper-Pearson upper limit
 * otherwise.
 */
double upperBound(uint64_t k, uint64_t n, double conf = 0.95);

/**
 * A-priori fixed-N sizing: trials needed for a Wilson/normal interval
 * of half-width <= `halfWidth` at the worst case p = 0.5 — the count a
 * fixed-N campaign must commit to before seeing any data (Leveugle et
 * al.'s 1068 = worstCaseTrials(0.03, 0.95)). Adaptive campaigns beat
 * this precisely because real cells rarely sit at p = 0.5.
 */
uint64_t worstCaseTrials(double halfWidth, double conf = 0.95);

/**
 * Regularized incomplete beta function I_x(a, b) via the standard
 * Lentz continued-fraction evaluation; exposed for tests.
 */
double incompleteBeta(double a, double b, double x);

} // namespace tea::stats

#endif // TEA_STATS_INTERVALS_HH
