/**
 * @file
 * Adaptive campaign planning: deterministic rounds of work allocated
 * across strata by Neyman allocation, stopped by sequential interval
 * estimation.
 *
 * A planner owns one Estimator per stratum (FPU op types for DTA BER,
 * a single stratum for one injection cell's AVM) and alternates with
 * the campaign engine:
 *
 *     while (!planner.done()) {
 *         auto alloc = planner.planRound();     // trials per stratum
 *         ... execute alloc[s] trials of each stratum in parallel ...
 *         planner.record(s, events, trials);    // fold in, per stratum
 *     }
 *
 * Determinism argument: planRound() is a pure function of the counts
 * recorded so far and the fixed round geometry (initialRound *
 * growth^r). Campaign engines execute a round's allocation with the
 * same absolute-indexed Rng::fork substreams they use in fixed-N mode
 * and fold counts back in stratum order at the round barrier. Nothing
 * about scheduling, thread count, or lane width can leak into the
 * allocation, so adaptive campaigns are bit-identical at any
 * REPRO_THREADS x REPRO_DTA_LANES setting.
 *
 * Neyman allocation: round budget is split across unconverged strata
 * proportionally to the binomial standard deviation sqrt(p(1-p))
 * estimated with a Laplace-smoothed p — strata whose proportion is
 * still uncertain and variable get the samples; strata pinned near 0
 * or 1 (or already converged) stop costing anything.
 */

#ifndef TEA_STATS_PLANNER_HH
#define TEA_STATS_PLANNER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/estimator.hh"

namespace tea::stats {

struct PlannerConfig
{
    /** Target interval half-width per stratum (e.g. 0.01). */
    double ciTarget = 0.01;
    /** Two-sided interval confidence (e.g. 0.95). */
    double ciConf = 0.95;
    IntervalMethod method = IntervalMethod::Wilson;
    /** Hard cap on trials per stratum (safety net; >= 1). */
    uint64_t maxPerStratum = 1ULL << 20;
    /**
     * Total trials of round 0, split across strata. Later rounds grow
     * geometrically — the "fixed round geometry" of the determinism
     * argument.
     */
    uint64_t initialRound = 256;
    /** Geometric growth of the round budget (>= 1). */
    double roundGrowth = 2.0;
    /**
     * Allocation granularity: every per-stratum allocation is a
     * multiple of this (campaigns whose unit of work is a 512-op shard
     * pass 512), except where the per-stratum cap clips it.
     */
    uint64_t unit = 1;
};

class AdaptivePlanner
{
  public:
    AdaptivePlanner(PlannerConfig cfg, size_t numStrata);

    size_t numStrata() const { return strata_.size(); }
    const PlannerConfig &config() const { return cfg_; }
    const Estimator &stratum(size_t s) const { return strata_[s]; }

    /** Fold one round's counts of one stratum in. */
    void record(size_t s, uint64_t events, uint64_t trials);

    /**
     * Fold one round's likelihood-ratio-weighted counts in (see
     * Estimator::addWeighted). Raw counts still drive the per-stratum
     * cap and Neyman allocation; the weighted sums drive the interval
     * and the stop rule.
     */
    void recordWeighted(size_t s, double wEvents, double wSum,
                        double wSq, double wEventsSq, uint64_t events,
                        uint64_t trials);

    /**
     * Allocate the next round: trials per stratum (0 for strata that
     * are converged or capped). An all-zero vector means the campaign
     * is done; planRound() never returns all-zero while any stratum
     * still has work. Advances the round counter.
     */
    std::vector<uint64_t> planRound();

    /** All strata converged or at their cap. */
    bool done() const;

    /** Rounds planned so far. */
    unsigned rounds() const { return rounds_; }
    /** Trials allocated across all rounds and strata. */
    uint64_t totalAllocated() const { return totalAllocated_; }
    /** Trials recorded across all strata. */
    uint64_t totalRecorded() const;
    /** Strata that converged before hitting the per-stratum cap. */
    uint64_t earlyStops() const;

  private:
    bool stratumActive(size_t s) const;

    PlannerConfig cfg_;
    std::vector<Estimator> strata_;
    unsigned rounds_ = 0;
    uint64_t totalAllocated_ = 0;
};

} // namespace tea::stats

#endif // TEA_STATS_PLANNER_HH
