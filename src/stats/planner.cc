#include "stats/planner.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tea::stats {

AdaptivePlanner::AdaptivePlanner(PlannerConfig cfg, size_t numStrata)
    : cfg_(cfg)
{
    fatal_if(numStrata == 0, "AdaptivePlanner needs >= 1 stratum");
    fatal_if(!(cfg_.ciTarget > 0.0 && cfg_.ciTarget < 0.5),
             "AdaptivePlanner: ciTarget %g outside (0, 0.5)",
             cfg_.ciTarget);
    fatal_if(!(cfg_.ciConf > 0.5 && cfg_.ciConf < 1.0),
             "AdaptivePlanner: ciConf %g outside (0.5, 1)", cfg_.ciConf);
    if (cfg_.maxPerStratum == 0)
        cfg_.maxPerStratum = 1;
    if (cfg_.unit == 0)
        cfg_.unit = 1;
    if (cfg_.initialRound == 0)
        cfg_.initialRound = cfg_.unit;
    if (cfg_.roundGrowth < 1.0)
        cfg_.roundGrowth = 1.0;
    strata_.assign(numStrata,
                   Estimator(cfg_.ciTarget, cfg_.ciConf, cfg_.method));
}

void
AdaptivePlanner::record(size_t s, uint64_t events, uint64_t trials)
{
    fatal_if(s >= strata_.size(), "record: stratum %zu out of range", s);
    strata_[s].add(events, trials);
}

void
AdaptivePlanner::recordWeighted(size_t s, double wEvents, double wSum,
                                double wSq, double wEventsSq,
                                uint64_t events, uint64_t trials)
{
    fatal_if(s >= strata_.size(),
             "recordWeighted: stratum %zu out of range", s);
    strata_[s].addWeighted(wEvents, wSum, wSq, wEventsSq, events,
                           trials);
}

bool
AdaptivePlanner::stratumActive(size_t s) const
{
    const Estimator &e = strata_[s];
    return e.trials() < cfg_.maxPerStratum && !e.converged();
}

bool
AdaptivePlanner::done() const
{
    for (size_t s = 0; s < strata_.size(); ++s)
        if (stratumActive(s))
            return false;
    return true;
}

uint64_t
AdaptivePlanner::totalRecorded() const
{
    uint64_t n = 0;
    for (const auto &e : strata_)
        n += e.trials();
    return n;
}

uint64_t
AdaptivePlanner::earlyStops() const
{
    uint64_t n = 0;
    for (const auto &e : strata_)
        if (e.converged() && e.trials() < cfg_.maxPerStratum)
            ++n;
    return n;
}

std::vector<uint64_t>
AdaptivePlanner::planRound()
{
    std::vector<uint64_t> alloc(strata_.size(), 0);
    std::vector<size_t> active;
    for (size_t s = 0; s < strata_.size(); ++s)
        if (stratumActive(s))
            active.push_back(s);
    if (active.empty())
        return alloc;

    // Fixed round geometry: budget depends only on the round index.
    double budgetF = static_cast<double>(cfg_.initialRound) *
                     std::pow(cfg_.roundGrowth, rounds_);
    uint64_t budget = budgetF >= 1e18
                          ? (1ULL << 60)
                          : std::max<uint64_t>(
                                cfg_.unit,
                                static_cast<uint64_t>(budgetF));
    ++rounds_;

    // Neyman weights: sqrt(p(1-p)) with Laplace smoothing so strata
    // with no events yet (p-hat would be 0, weight 0) keep sampling
    // until their interval — not their point estimate — says stop.
    std::vector<double> weight(active.size());
    double wSum = 0.0;
    for (size_t i = 0; i < active.size(); ++i) {
        const Estimator &e = strata_[active[i]];
        double p = (static_cast<double>(e.events()) + 1.0) /
                   (static_cast<double>(e.trials()) + 2.0);
        weight[i] = std::sqrt(p * (1.0 - p));
        wSum += weight[i];
    }

    // Proportional shares in whole units, floored at one unit each,
    // capped at the stratum's remaining headroom. Largest-remainder
    // rounding keeps the split deterministic and the total close to
    // the budget.
    uint64_t units = std::max<uint64_t>(budget / cfg_.unit,
                                        active.size());
    std::vector<uint64_t> share(active.size());
    std::vector<double> remainder(active.size());
    uint64_t assigned = 0;
    for (size_t i = 0; i < active.size(); ++i) {
        double exact = static_cast<double>(units) * weight[i] / wSum;
        share[i] = std::max<uint64_t>(1, static_cast<uint64_t>(exact));
        remainder[i] = exact - static_cast<double>(share[i]);
        assigned += share[i];
    }
    while (assigned < units) {
        // Deterministic tie-break: highest remainder, lowest index.
        size_t best = 0;
        for (size_t i = 1; i < active.size(); ++i)
            if (remainder[i] > remainder[best])
                best = i;
        remainder[best] -= 1.0;
        ++share[best];
        ++assigned;
    }

    for (size_t i = 0; i < active.size(); ++i) {
        size_t s = active[i];
        uint64_t headroom =
            cfg_.maxPerStratum - strata_[s].trials(); // active => > 0
        alloc[s] = std::min(share[i] * cfg_.unit, headroom);
        totalAllocated_ += alloc[s];
    }
    return alloc;
}

} // namespace tea::stats
