#include "stats/intervals.hh"

#include <cmath>

#include "util/logging.hh"

namespace tea::stats {

namespace {

/** Natural log of the beta function via lgamma. */
double
logBeta(double a, double b)
{
    return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

/**
 * Continued fraction for the incomplete beta (Lentz's method with the
 * standard even/odd term pairing). Converges in a few dozen iterations
 * for the x < (a+1)/(a+b+2) regime incompleteBeta() routes here.
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int kMaxIter = 200;
    constexpr double kEps = 3e-15;
    constexpr double kTiny = 1e-300;

    double qab = a + b, qap = a + 1.0, qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny)
        d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEps)
            break;
    }
    return h;
}

/**
 * Inverse of incompleteBeta in x for fixed (a, b): bisection on the
 * monotone CDF. 100 halvings reach ~8e-31, far below double epsilon,
 * and are exactly reproducible (no Newton step-size heuristics).
 */
double
inverseIncompleteBeta(double a, double b, double p)
{
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 100; ++i) {
        double mid = 0.5 * (lo + hi);
        if (incompleteBeta(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    double front = std::exp(a * std::log(x) + b * std::log(1.0 - x) -
                            logBeta(a, b));
    // Symmetry keeps the continued fraction in its fast regime.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
normalQuantile(double p)
{
    fatal_if(!(p > 0.0 && p < 1.0),
             "normalQuantile: p=%g outside (0,1)", p);
    // Acklam's algorithm: rational approximations on a central region
    // and two tails.
    static const double A[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double B[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double C[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double D[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    constexpr double pLow = 0.02425;
    double q, r;
    if (p < pLow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q +
                 C[4]) *
                    q +
                C[5]) /
               ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
    }
    if (p <= 1.0 - pLow) {
        q = p - 0.5;
        r = q * q;
        return (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r +
                 A[4]) *
                    r +
                A[5]) *
               q /
               (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r +
                 B[4]) *
                    r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) *
                 q +
             C[5]) /
           ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
}

Interval
wilson(uint64_t k, uint64_t n, double conf)
{
    return wilsonReal(static_cast<double>(k), static_cast<double>(n),
                      conf);
}

Interval
wilsonReal(double k, double n, double conf)
{
    if (!(n > 0.0))
        return {0.0, 1.0};
    if (k < 0.0)
        k = 0.0;
    if (k > n)
        k = n;
    double z = normalQuantile(0.5 + conf / 2.0);
    double nn = n;
    double p = k / nn;
    double z2 = z * z;
    double denom = 1.0 + z2 / nn;
    double center = (p + z2 / (2.0 * nn)) / denom;
    double half =
        z *
        std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
    Interval iv;
    iv.lo = center - half;
    iv.hi = center + half;
    if (iv.lo < 0.0)
        iv.lo = 0.0;
    if (iv.hi > 1.0)
        iv.hi = 1.0;
    return iv;
}

Interval
selfNormalizedWilson(double wEvents, double wSum, double wSq,
                     double wEventsSq, double conf)
{
    if (!(wSum > 0.0) || !(wSq > 0.0))
        return {0.0, 1.0};
    // Kish effective counts: the conservative fallback whenever the
    // delta-method variance is unavailable or degenerate.
    double nKish = wSum * wSum / wSq;
    double kKish = wEvents * wSum / wSq;
    if (!(wEvents > 0.0))
        return wilsonReal(kKish, nKish, conf);
    // The delta-method variance is itself estimated from the weighted
    // sample; with only a handful of effective observations (e.g. one
    // run carrying nearly all the weight) it collapses toward zero and
    // the interval would be absurdly overconfident. Below ~10 effective
    // samples, trust Kish instead.
    if (nKish < 10.0)
        return wilsonReal(kKish, nKish, conf);
    double mu = wEvents / wSum;
    if (!(mu < 1.0))
        return wilsonReal(kKish, nKish, conf);
    // Sum w^2 (f - mu)^2 expanded over Bernoulli f (f^2 == f); tiny
    // negative values are cancellation noise around a true zero.
    double num = wEventsSq * (1.0 - 2.0 * mu) + mu * mu * wSq;
    double var = num / (wSum * wSum);
    if (!(var > 0.0) || !std::isfinite(var))
        return wilsonReal(kKish, nKish, conf);
    double nEff = mu * (1.0 - mu) / var;
    if (!std::isfinite(nEff) || !(nEff > 0.0))
        return wilsonReal(kKish, nKish, conf);
    return wilsonReal(mu * nEff, nEff, conf);
}

Interval
clopperPearson(uint64_t k, uint64_t n, double conf)
{
    return clopperPearsonReal(static_cast<double>(k),
                              static_cast<double>(n), conf);
}

Interval
clopperPearsonReal(double kk, double nn, double conf)
{
    if (!(nn > 0.0))
        return {0.0, 1.0};
    if (kk < 0.0)
        kk = 0.0;
    if (kk > nn)
        kk = nn;
    double alpha = 1.0 - conf;
    Interval iv;
    // Closed forms at the edges avoid the continued fraction entirely
    // (and are the exact zero-event bounds the planner leans on).
    if (kk == 0.0)
        iv.lo = 0.0;
    else if (kk == nn)
        iv.lo = std::pow(alpha / 2.0, 1.0 / nn);
    else
        iv.lo = inverseIncompleteBeta(kk, nn - kk + 1.0, alpha / 2.0);
    if (kk == nn)
        iv.hi = 1.0;
    else if (kk == 0.0)
        iv.hi = 1.0 - std::pow(alpha / 2.0, 1.0 / nn);
    else
        iv.hi =
            inverseIncompleteBeta(kk + 1.0, nn - kk, 1.0 - alpha / 2.0);
    return iv;
}

double
ruleOfThreeUpper(uint64_t n, double conf)
{
    return ruleOfThreeUpperReal(static_cast<double>(n), conf);
}

double
ruleOfThreeUpperReal(double n, double conf)
{
    if (!(n > 0.0))
        return 1.0;
    return 1.0 - std::pow(1.0 - conf, 1.0 / n);
}

double
upperBound(uint64_t k, uint64_t n, double conf)
{
    if (n == 0)
        return 1.0;
    if (k == 0)
        return ruleOfThreeUpper(n, conf);
    return clopperPearson(k, n, conf).hi;
}

uint64_t
worstCaseTrials(double halfWidth, double conf)
{
    fatal_if(!(halfWidth > 0.0 && halfWidth < 0.5),
             "worstCaseTrials: half-width %g outside (0, 0.5)",
             halfWidth);
    double z = normalQuantile(0.5 + conf / 2.0);
    double n = z / (2.0 * halfWidth);
    return static_cast<uint64_t>(std::ceil(n * n));
}

} // namespace tea::stats
