/**
 * @file
 * Sequential binomial estimation: fold in per-shard (events, trials)
 * counts as campaign rounds complete and decide stop / continue.
 *
 * The estimator is the bridge between the interval math and the
 * campaign engines: a campaign keeps sampling while the confidence
 * interval on its proportion is wider than the requested target, and
 * stops the moment the target (or a hard run cap) is reached. All
 * state is integer counts and the decision is a pure function of
 * them, so a sequential campaign is bit-deterministic at any thread
 * or lane count as long as counts are folded in at fixed round
 * boundaries — which is exactly what AdaptivePlanner enforces.
 */

#ifndef TEA_STATS_ESTIMATOR_HH
#define TEA_STATS_ESTIMATOR_HH

#include <cstdint>

#include "stats/intervals.hh"

namespace tea::stats {

/** Interval family a sequential rule measures width with. */
enum class IntervalMethod
{
    Wilson,
    ClopperPearson,
};

Interval makeInterval(IntervalMethod m, uint64_t k, uint64_t n,
                      double conf);

class Estimator
{
  public:
    /**
     * @param targetHalfWidth stop once the interval half-width is at
     *        or below this (e.g. 0.01).
     * @param conf two-sided confidence of the interval (e.g. 0.95).
     */
    Estimator(double targetHalfWidth, double conf,
              IntervalMethod method = IntervalMethod::Wilson)
        : target_(targetHalfWidth), conf_(conf), method_(method)
    {
    }

    /** Fold in one shard / round worth of counts. */
    void add(uint64_t events, uint64_t trials)
    {
        events_ += events;
        trials_ += trials;
    }

    uint64_t events() const { return events_; }
    uint64_t trials() const { return trials_; }
    double target() const { return target_; }
    double confidence() const { return conf_; }

    /** Point estimate events/trials (0 when no trials yet). */
    double mean() const
    {
        return trials_ ? static_cast<double>(events_) /
                             static_cast<double>(trials_)
                       : 0.0;
    }

    /** Current interval (vacuous [0, 1] before any trials). */
    Interval interval() const
    {
        return makeInterval(method_, events_, trials_, conf_);
    }

    /** True once the interval is at least as tight as the target. */
    bool converged() const
    {
        return trials_ > 0 && interval().halfWidth() <= target_;
    }

    /**
     * Stop / continue given a hard trial cap: stop on convergence or
     * once `maxTrials` trials have been consumed.
     */
    bool shouldStop(uint64_t maxTrials) const
    {
        return converged() || trials_ >= maxTrials;
    }

  private:
    double target_;
    double conf_;
    IntervalMethod method_;
    uint64_t events_ = 0;
    uint64_t trials_ = 0;
};

} // namespace tea::stats

#endif // TEA_STATS_ESTIMATOR_HH
