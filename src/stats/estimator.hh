/**
 * @file
 * Sequential binomial estimation: fold in per-shard (events, trials)
 * counts as campaign rounds complete and decide stop / continue.
 *
 * The estimator is the bridge between the interval math and the
 * campaign engines: a campaign keeps sampling while the confidence
 * interval on its proportion is wider than the requested target, and
 * stops the moment the target (or a hard run cap) is reached. All
 * state is plain counts/sums and the decision is a pure function of
 * them, so a sequential campaign is bit-deterministic at any thread
 * or lane count as long as counts are folded in at fixed round
 * boundaries — which is exactly what AdaptivePlanner enforces.
 *
 * Two accumulation modes share one object:
 *
 *  - **Unweighted** (`add`): classic integer (events, trials) counts.
 *  - **Weighted** (`addWeighted`): importance-sampled campaigns fold
 *    in likelihood-ratio weight sums (sum w over events, sum w, sum
 *    w^2, sum w^2 over events) alongside the raw counts. The point
 *    estimate becomes the self-normalized ratio and the interval is
 *    the variance-matched Wilson score of selfNormalizedWilson(): the
 *    delta-method SNIS variance sets the effective sample size, so a
 *    badly-matched proposal widens the interval instead of silently
 *    faking precision while a proposal that concentrates events in
 *    low-weight trials is *credited* for it — the property that lets
 *    an importance-sampled campaign stop earlier than plain Monte
 *    Carlo. When every weight is exactly 1.0 the weight sums equal
 *    the raw integer counts and the weighted path detects that and
 *    is bit-identical to the unweighted one.
 */

#ifndef TEA_STATS_ESTIMATOR_HH
#define TEA_STATS_ESTIMATOR_HH

#include <cmath>
#include <cstdint>
#include <limits>

#include "stats/intervals.hh"

namespace tea::stats {

/** Interval family a sequential rule measures width with. */
enum class IntervalMethod
{
    Wilson,
    ClopperPearson,
};

Interval makeInterval(IntervalMethod m, uint64_t k, uint64_t n,
                      double conf);

/** Real-valued (effective-count) variant of makeInterval. */
Interval makeIntervalReal(IntervalMethod m, double k, double n,
                          double conf);

class Estimator
{
  public:
    /**
     * @param targetHalfWidth stop once the interval half-width is at
     *        or below this (e.g. 0.01).
     * @param conf two-sided confidence of the interval (e.g. 0.95).
     */
    Estimator(double targetHalfWidth, double conf,
              IntervalMethod method = IntervalMethod::Wilson)
        : target_(targetHalfWidth), conf_(conf), method_(method)
    {
    }

    /** Fold in one shard / round worth of unweighted counts. */
    void add(uint64_t events, uint64_t trials)
    {
        events_ += events;
        trials_ += trials;
    }

    /**
     * Fold in one round of likelihood-ratio-weighted counts: the sum
     * of weights over event trials, the sum of weights over all
     * trials, the sum of squared weights, the sum of squared weights
     * over event trials, plus the raw integer counts (still tracked
     * for caps and the zero-event guard). Switches the estimator into
     * weighted (self-normalized) mode permanently.
     */
    void addWeighted(double wEvents, double wSum, double wSq,
                     double wEventsSq, uint64_t events,
                     uint64_t trials)
    {
        weighted_ = true;
        wEvents_ += wEvents;
        wSum_ += wSum;
        wSq_ += wSq;
        wEventsSq_ += wEventsSq;
        events_ += events;
        trials_ += trials;
    }

    uint64_t events() const { return events_; }
    uint64_t trials() const { return trials_; }
    double target() const { return target_; }
    double confidence() const { return conf_; }
    bool weighted() const { return weighted_; }

    /** True once at least one trial has been folded in. */
    bool hasData() const { return trials_ > 0; }

    /**
     * Effective event count: raw events when unweighted, the
     * ESS-scaled weighted event mass otherwise.
     */
    double effEvents() const
    {
        if (!weighted_)
            return static_cast<double>(events_);
        if (!(wSq_ > 0.0))
            return 0.0;
        return wEvents_ * wSum_ / wSq_;
    }

    /**
     * Effective sample size: raw trials when unweighted, Kish ESS
     * (sum w)^2 / sum w^2 otherwise.
     */
    double effTrials() const
    {
        if (!weighted_)
            return static_cast<double>(trials_);
        if (!(wSq_ > 0.0))
            return 0.0;
        return wSum_ * wSum_ / wSq_;
    }

    /**
     * Point estimate: events/trials unweighted, the self-normalized
     * ratio (sum w over events) / (sum w) weighted. NaN before any
     * trial — a cell that never ran has *no* estimate, not estimate
     * zero (callers test hasData() or std::isnan).
     */
    double mean() const
    {
        if (!hasData())
            return std::numeric_limits<double>::quiet_NaN();
        if (weighted_)
            return wSum_ > 0.0
                       ? wEvents_ / wSum_
                       : std::numeric_limits<double>::quiet_NaN();
        return static_cast<double>(events_) /
               static_cast<double>(trials_);
    }

    /**
     * True when every folded weight was exactly 1.0 (the weight sums
     * are bit-equal to the raw integer counts) — the importance model
     * degraded to the target measure, e.g. under the rare-regime
     * guard. The weighted estimator then takes the integer path so
     * its artifacts stay bit-identical to an unweighted campaign.
     */
    bool unitWeights() const
    {
        return wSum_ == static_cast<double>(trials_) &&
               wSq_ == static_cast<double>(trials_) &&
               wEvents_ == static_cast<double>(events_) &&
               wEventsSq_ == static_cast<double>(events_);
    }

    /** Current interval (vacuous [0, 1] before any trials). */
    Interval interval() const
    {
        if (weighted_ && !unitWeights() &&
            method_ == IntervalMethod::Wilson)
            return selfNormalizedWilson(wEvents_, wSum_, wSq_,
                                        wEventsSq_, conf_);
        if (weighted_ && !unitWeights())
            return makeIntervalReal(method_, effEvents(), effTrials(),
                                    conf_);
        return makeIntervalReal(method_,
                                static_cast<double>(events_),
                                static_cast<double>(trials_), conf_);
    }

    /**
     * True once the interval is at least as tight as the target.
     *
     * Zero-event guard: with k == 0 the Wilson half-width shrinks
     * faster than the exact one-sided bound, so a stratum could
     * "converge" while the true proportion may still exceed the
     * target with probability > alpha. Never declare a zero-event
     * stratum done while the exact rule-of-three upper bound (on the
     * effective sample size) still exceeds the target half-width.
     */
    bool converged() const
    {
        if (!hasData())
            return false;
        if (interval().halfWidth() > target_)
            return false;
        if (events_ == 0 &&
            ruleOfThreeUpperReal(effTrials(), conf_) > target_)
            return false;
        return true;
    }

    /**
     * Stop / continue given a hard trial cap: stop on convergence or
     * once `maxTrials` trials have been consumed.
     */
    bool shouldStop(uint64_t maxTrials) const
    {
        return converged() || trials_ >= maxTrials;
    }

  private:
    double target_;
    double conf_;
    IntervalMethod method_;
    uint64_t events_ = 0;
    uint64_t trials_ = 0;
    bool weighted_ = false;
    double wEvents_ = 0.0;
    double wSum_ = 0.0;
    double wSq_ = 0.0;
    double wEventsSq_ = 0.0;
};

} // namespace tea::stats

#endif // TEA_STATS_ESTIMATOR_HH
