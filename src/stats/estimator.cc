#include "stats/estimator.hh"

namespace tea::stats {

Interval
makeInterval(IntervalMethod m, uint64_t k, uint64_t n, double conf)
{
    return makeIntervalReal(m, static_cast<double>(k),
                            static_cast<double>(n), conf);
}

Interval
makeIntervalReal(IntervalMethod m, double k, double n, double conf)
{
    switch (m) {
      case IntervalMethod::Wilson:
        return wilsonReal(k, n, conf);
      case IntervalMethod::ClopperPearson:
        return clopperPearsonReal(k, n, conf);
    }
    return {0.0, 1.0};
}

} // namespace tea::stats
