#include "stats/estimator.hh"

namespace tea::stats {

Interval
makeInterval(IntervalMethod m, uint64_t k, uint64_t n, double conf)
{
    switch (m) {
      case IntervalMethod::Wilson:
        return wilson(k, n, conf);
      case IntervalMethod::ClopperPearson:
        return clopperPearson(k, n, conf);
    }
    return {0.0, 1.0};
}

} // namespace tea::stats
